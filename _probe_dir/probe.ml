let () =
  let open Bfly_networks in
  let b = Fabric.mesh_bounds ~dims:[1;3] in
  Printf.printf "mesh 1x3: lower=%d exact=%s method=%s\n" b.Fabric.lower
    (match b.Fabric.exact with Some v -> string_of_int v | None -> "-") b.Fabric.method_;
  let g = Bfly_graph.Generators.mesh ~dims:[1;3] in
  let bw, _ = Bfly_cuts.Exact.bisection_width g in
  Printf.printf "true BW(mesh 1x3) = %d\n" bw;
  (match Fabric.spec_of_string "mesh:1x3" with
   | Ok _ -> print_endline "spec mesh:1x3 validates OK"
   | Error m -> print_endline ("spec rejected: " ^ m));
  let b2 = Fabric.mesh_bounds ~dims:[1;3;3] in
  let g2 = Bfly_graph.Generators.mesh ~dims:[1;3;3] in
  let bw2, _ = Bfly_cuts.Exact.bisection_width g2 in
  Printf.printf "mesh 1x3x3: lower=%d exact=%s trueBW=%d\n" b2.Fabric.lower
    (match b2.Fabric.exact with Some v -> string_of_int v | None -> "-") bw2
