#!/bin/sh
# Tier-1 CI gate: build, tests (which include the bench --smoke --json
# pipeline as a runtest rule), and — where the toolchain provides odoc —
# the documentation build, so broken odoc markup in the .mli files fails
# the pipeline on dev machines even though minimal containers skip it.
set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

# Differential-oracle smoke gate. `dune runtest` already runs this via the
# bin/dune rule; running it explicitly keeps a visible, non-cached pass in
# the CI log and fails loudly (non-zero exit) on any solver disagreement.
echo "== bfly_tool check --smoke =="
dune exec -- bin/bfly_tool.exe check --smoke --seed 42 --rounds 5

# Chaos gate: the same differential suite with every fault class armed
# (disk I/O errors, corrupted cache entries, crashing pool tasks,
# spurious deadline expiry) at a fixed seed. Faults may cost work, never
# correctness: any changed oracle verdict, escaped injected exception, or
# shrunken domain pool fails the run.
echo "== bfly_tool check --smoke --chaos =="
dune exec -- bin/bfly_tool.exe check --smoke --chaos --seed 7 --rounds 5

if command -v odoc >/dev/null 2>&1; then
  echo "== dune build @doc =="
  dune build @doc
else
  echo "== odoc not installed; skipping @doc check =="
fi

# Warm-cache determinism gate: run the bench smoke suite twice against a
# fresh result-cache directory. The second (warm) run must serve from the
# cache — nonzero cache.hit, zero exact B&B search nodes — and both runs
# must produce byte-identical measured values.
echo "== warm-cache bench determinism =="
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

extract() { # extract FIELD FILE -> first integer value of "FIELD":N
  sed -n "s/.*\"$(printf '%s' "$1" | sed 's/\./\\./g')\":\([0-9][0-9]*\).*/\1/p" "$2" | head -n 1
}

BFLY_CACHE_DIR="$scratch/cache" dune exec -- bench/main.exe --smoke \
  --json "$scratch/cold.json" --values "$scratch/cold-values.json" \
  > "$scratch/cold.log"
BFLY_CACHE_DIR="$scratch/cache" dune exec -- bench/main.exe --smoke \
  --json "$scratch/warm.json" --values "$scratch/warm-values.json" \
  > "$scratch/warm.log"

cmp "$scratch/cold-values.json" "$scratch/warm-values.json" || {
  echo "FAIL: warm-cache run changed measured values" >&2
  exit 1
}

cold_nodes=$(extract 'exact.bb.nodes' "$scratch/cold.json")
warm_nodes=$(extract 'exact.bb.nodes' "$scratch/warm.json")
warm_hits=$(extract 'cache.hit' "$scratch/warm.json")
warm_misses=$(extract 'cache.miss' "$scratch/warm.json")
echo "cold: bb nodes $cold_nodes; warm: bb nodes $warm_nodes," \
  "cache hits $warm_hits, misses $warm_misses"
[ "$cold_nodes" -gt 0 ] || {
  echo "FAIL: cold run did not search (bb nodes = $cold_nodes)" >&2
  exit 1
}
[ "$warm_hits" -gt 0 ] || {
  echo "FAIL: warm run had no cache hits" >&2
  exit 1
}
[ "$warm_nodes" -eq 0 ] || {
  echo "FAIL: warm run re-searched (bb nodes = $warm_nodes)" >&2
  exit 1
}

# Deadline/resume determinism gate: an exact search interrupted by a step
# budget must return a certified interval, and resuming from its
# checkpoint must land on the same value an uninterrupted run computes.
echo "== deadline/resume determinism =="
baseline=$(BFLY_CACHE_DIR="$scratch/exact-a" dune exec -- \
  bin/bfly_tool.exe bw exact butterfly 8)
baseline_bw=${baseline##* = }
echo "baseline: $baseline"

first=$(BFLY_CACHE_DIR="$scratch/exact-b" dune exec -- \
  bin/bfly_tool.exe bw exact butterfly 8 --max-nodes 200)
echo "budgeted: $first"
case $first in
*"BW in ["*)
  resumed=$(BFLY_CACHE_DIR="$scratch/exact-b" dune exec -- \
    bin/bfly_tool.exe bw exact butterfly 8 --resume)
  echo "resumed:  $resumed"
  resumed_bw=${resumed##* = }
  [ "$resumed_bw" = "$baseline_bw" ] || {
    echo "FAIL: resumed value '$resumed_bw' != baseline '$baseline_bw'" >&2
    exit 1
  }
  ;;
*"BW = $baseline_bw"*)
  # the budget sufficed outright; the determinism claim is trivially met
  echo "budgeted run completed within budget"
  ;;
*)
  echo "FAIL: unexpected budgeted output '$first'" >&2
  exit 1
  ;;
esac

echo "CI OK"
