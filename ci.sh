#!/bin/sh
# Tier-1 CI pipeline, as named stages:
#
#   ./ci.sh              run every stage, in order
#   ./ci.sh build fmt    run only the named stages
#   ./ci.sh list         print the stage names and exit
#
# Stages (CI.md maps each gate to the invariant it protects):
#
#   build    dune build
#   fmt      dune build @fmt (skipped when ocamlformat is not installed)
#   runtest  dune runtest (alcotest/qcheck suites, bench+check smoke rules)
#   check    differential-oracle smoke battery, fixed seed, plus
#            multilevel and product-network (torus:4x4x4) CLI smokes
#   chaos    the same battery under fault injection — faults may cost
#            work, never correctness
#   doc      dune build @doc-private — the libraries are private, so the
#            plain @doc alias is empty (skipped when odoc is not
#            installed) — plus the perf-docs check: every gate counter
#            named in test/test_bench_json.ml's gate_fields must appear
#            backtick-quoted in PERFORMANCE.md
#   serve    bfly_serve smoke: coalescing, one-shot byte-identity,
#            admission control, and a concurrent 4-client TCP replay
#            byte-identical to the sequential one, drained by SIGTERM
#   loadgen  deterministic load replay: committed-baseline gate
#            (deterministic fields, cross-machine), the data-center
#            fabric mix against its own committed baseline, self-baseline
#            latency gate (p99/throughput within slack), and — on boxes
#            with enough cores — a concurrency speedup check
#   campaign random-regular bisection campaign smoke: a small seed x size
#            sub-grid at one domain, zero per-instance drift against the
#            committed CAMPAIGN_*.json full run, statistical oracle green
#   warm     warm-cache determinism: second bench run serves from cache,
#            values byte-identical
#   resume   interrupted exact search resumes to the uninterrupted value
#   compare  bench --compare against the committed baseline: experiment
#            outputs, gate counters and oracle summary must not drift
#
# Every run ends with a per-stage wall-clock summary; under GitHub
# Actions the same rows are appended to $GITHUB_STEP_SUMMARY as a
# markdown table (one row per stage, accumulated across the per-stage
# workflow steps).
set -eu

cd "$(dirname "$0")"

ALL_STAGES="build fmt runtest check chaos doc serve loadgen campaign warm resume compare"
BASELINE=BENCH_2026-08-08.json
CAMPAIGN_BASELINE=CAMPAIGN_2026-08-08.json
LOADGEN_BASELINE=LOADGEN_2026-08-08.json
LOADGEN_TRACE=bench/loadgen_trace.ndjson
LOADGEN_DC_BASELINE=LOADGEN_DC_2026-08-08.json
LOADGEN_DC_TRACE=bench/loadgen_dc_trace.ndjson

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

extract() { # extract FIELD FILE -> first integer value of "FIELD":N
  # the first occurrence in a bench JSON document is the pre-Bechamel
  # "gate" snapshot, which is the deterministic one. The document is a
  # single line, so this must be grep -o (all matches, in order), not a
  # greedy sed s///, which would land on the LAST occurrence — the
  # post-Bechamel metrics dump, polluted by micro-benchmark iterations.
  grep -o "\"$(printf '%s' "$1" | sed 's/\./\\./g')\":[0-9][0-9]*" "$2" \
    | head -n 1 | cut -d: -f2
}

# ---- stages ----

stage_build() {
  dune build
}

stage_fmt() {
  if command -v ocamlformat >/dev/null 2>&1; then
    dune build @fmt
  else
    echo "ocamlformat not installed; skipping @fmt check"
  fi
}

stage_runtest() {
  dune runtest
}

# `dune runtest` already runs the smoke battery via the bin/dune rule;
# running it explicitly keeps a visible, non-cached pass in the CI log and
# fails loudly (non-zero exit) on any solver disagreement.
stage_check() {
  dune exec -- bin/bfly_tool.exe check --smoke --seed 42 --rounds 5
  # multilevel partitioner smoke: must produce a validated bisection (the
  # subcommand exits non-zero when the witness fails Invariants) at a size
  # the flat kernels also handle, so regressions surface before the
  # bench-scale sweeps
  dune exec -- bin/bfly_tool.exe bw ml butterfly 64
  # product-network smoke: the heuristic on a small 3-D torus must land
  # exactly on the certified closed form 2N/a_max = 32 (the oracle battery
  # above already runs the full sandwich family; this pins the CLI path)
  out=$(dune exec -- bin/bfly_tool.exe bw ml --graph torus:4x4x4)
  echo "$out"
  case $out in
  *"BW <= 32"*) ;;
  *)
    echo "FAIL: torus:4x4x4 heuristic drifted from the certified width 32" >&2
    exit 1
    ;;
  esac
}

# Same differential suite with every fault class armed (disk I/O errors,
# corrupted cache entries, crashing pool tasks, spurious deadline expiry)
# at a fixed seed: any changed oracle verdict, escaped injected exception,
# or shrunken domain pool fails the run.
stage_chaos() {
  dune exec -- bin/bfly_tool.exe check --smoke --chaos --seed 7 --rounds 5
}

stage_doc() {
  if command -v odoc >/dev/null 2>&1; then
    # every library here is private (no public_name), so the plain @doc
    # alias builds nothing; @doc-private is the alias that renders them
    # all — lib/serve included
    dune build @doc-private
  else
    echo "odoc not installed; skipping @doc-private check"
  fi
  # perf-docs: PERFORMANCE.md documents the gate counters by name; keep
  # that list honest against the one the bench-JSON tests enforce
  # (gate_fields in test/test_bench_json.ml). Each counter must appear
  # backtick-quoted so renames fail CI instead of silently drifting.
  fields=$(sed -n '/^let gate_fields/,/\]/p' test/test_bench_json.ml \
    | grep -o '"[a-z._]*"' | tr -d '"')
  [ -n "$fields" ] || {
    echo "FAIL: could not extract gate_fields from test/test_bench_json.ml" >&2
    exit 1
  }
  for f in $fields; do
    grep -qF "\`$f\`" PERFORMANCE.md || {
      echo "FAIL: gate counter $f is not documented in PERFORMANCE.md" >&2
      exit 1
    }
  done
  echo "perf-docs: all $(printf '%s\n' $fields | wc -l) gate counters documented in PERFORMANCE.md"
}

# Query-service smoke: a small trace with six duplicate requests must
# coalesce into one solve ("batch":6 on every copy), the served output
# must be byte-identical to the one-shot subcommand's stdout, and a
# shrunken admission bound must produce explicit "overloaded" rejections.
stage_serve() {
  trace="$scratch/serve-trace.ndjson"
  out="$scratch/serve-out.ndjson"
  : > "$trace"
  i=1
  while [ "$i" -le 6 ]; do
    echo '{"id":"dup'"$i"'","job":"bw","solver":"kl","network":"butterfly","n":16,"seed":7}' >> "$trace"
    i=$((i + 1))
  done
  echo '{"id":"spec","job":"bw","solver":"spectral","network":"butterfly","n":16}' >> "$trace"
  echo '{"id":"mos","job":"mos","j":8}' >> "$trace"
  echo '{"id":"stats","job":"stats"}' >> "$trace"

  BFLY_CACHE_DIR="$scratch/serve-cache" dune exec -- bin/bfly_tool.exe serve \
    < "$trace" > "$out" 2> "$scratch/serve-err.log"
  cat "$scratch/serve-err.log"

  ok_count=$(grep -c '"ok":true' "$out")
  [ "$ok_count" -eq 9 ] || {
    echo "FAIL: expected 9 ok responses, got $ok_count" >&2
    cat "$out" >&2
    exit 1
  }
  batch6=$(grep -c '"batch":6' "$out")
  [ "$batch6" -eq 6 ] || {
    echo "FAIL: 6 duplicate requests should coalesce into one solve of width 6 (got $batch6 responses with \"batch\":6)" >&2
    cat "$out" >&2
    exit 1
  }

  # byte-identity: the served output field must contain exactly the
  # one-shot subcommand's stdout (JSON-escaped, trailing newline included)
  oneshot=$(BFLY_CACHE_DIR="$scratch/serve-cache" dune exec -- \
    bin/bfly_tool.exe bw spectral butterfly 16)
  grep -F "\"output\":\"$oneshot\\n\"" "$out" > /dev/null || {
    echo "FAIL: served output differs from one-shot '$oneshot'" >&2
    cat "$out" >&2
    exit 1
  }

  # admission control: 10 distinct jobs against a queue bound of 2 — the
  # transport reads the whole burst before solving, so exactly 8 must be
  # rejected with "overloaded"
  : > "$trace"
  j=1
  while [ "$j" -le 10 ]; do
    echo '{"id":"q'"$j"'","job":"mos","j":'"$j"'}' >> "$trace"
    j=$((j + 1))
  done
  BFLY_CACHE_DIR="$scratch/serve-cache" dune exec -- \
    bin/bfly_tool.exe serve --queue 2 < "$trace" > "$out" 2> /dev/null
  rejected=$(grep -c '"error":"overloaded"' "$out")
  [ "$rejected" -eq 8 ] || {
    echo "FAIL: queue bound 2 against 10 requests should reject 8, got $rejected" >&2
    cat "$out" >&2
    exit 1
  }

  # concurrent TCP smoke: a live server on an ephemeral port, 4 clients
  # replaying the committed trace concurrently. The replay's response
  # payloads must be byte-identical to the sequential in-process replay
  # of the same schedule (loadgen --compare diffs the fingerprints), and
  # SIGTERM must drain cleanly: exit 0 and a summary line on stderr.
  port_file="$scratch/serve-port"
  BFLY_CACHE_DIR="$scratch/serve-cache" dune exec -- bin/bfly_tool.exe serve \
    --tcp 127.0.0.1:0 --port-file "$port_file" \
    > /dev/null 2> "$scratch/serve-tcp.log" &
  serve_pid=$!
  i=0
  while [ ! -s "$port_file" ] && [ "$i" -lt 100 ]; do
    sleep 0.1
    i=$((i + 1))
  done
  [ -s "$port_file" ] || {
    echo "FAIL: serve --tcp never wrote its port file" >&2
    cat "$scratch/serve-tcp.log" >&2
    exit 1
  }
  addr=$(cat "$port_file")
  BFLY_CACHE_DIR="$scratch/serve-cache" dune exec -- bin/bfly_tool.exe \
    loadgen --trace "$LOADGEN_TRACE" --seed 2 --clients 4 --repeat 3 \
    --sequential --json "$scratch/lg-seq.json" > /dev/null
  BFLY_CACHE_DIR="$scratch/serve-cache" dune exec -- bin/bfly_tool.exe \
    loadgen --trace "$LOADGEN_TRACE" --seed 2 --clients 4 --repeat 3 \
    --connect "tcp:$addr" --compare "$scratch/lg-seq.json" --no-timing \
    > /dev/null || {
    echo "FAIL: concurrent TCP replay drifted from the sequential replay" >&2
    cat "$scratch/serve-tcp.log" >&2
    exit 1
  }
  kill -TERM "$serve_pid"
  wait "$serve_pid" || {
    echo "FAIL: serve --tcp did not drain cleanly on SIGTERM" >&2
    cat "$scratch/serve-tcp.log" >&2
    exit 1
  }
  grep -q "served" "$scratch/serve-tcp.log" || {
    echo "FAIL: drained server logged no summary line" >&2
    cat "$scratch/serve-tcp.log" >&2
    exit 1
  }
  echo "serve: coalescing, byte-identity, admission control and TCP drain OK"
}

# Deterministic load replay and the latency regression gate. Three parts:
# the committed baseline's deterministic fields (schedule and output
# fingerprints) must be reproducible on any machine; a self-recorded
# baseline must gate p99/throughput within the slack factor on this
# machine; and when the box has enough cores, concurrent serving must
# actually outrun the sequential replay.
stage_loadgen() {
  [ -f "$LOADGEN_BASELINE" ] || {
    echo "FAIL: committed baseline $LOADGEN_BASELINE is missing" >&2
    exit 1
  }
  # cross-machine deterministic gate against the committed document
  BFLY_CACHE_DIR="$scratch/lg-cache" dune exec -- bin/bfly_tool.exe \
    loadgen --trace "$LOADGEN_TRACE" --seed 1 --clients 4 --repeat 10 \
    --compare "$LOADGEN_BASELINE" --no-timing > /dev/null
  # data-center mix: the fabric-job trace (ml/exact/spectral on meshes,
  # tori, bcubes, plus malformed-request probes) against its own
  # committed baseline — deterministic fields only, cross-machine
  [ -f "$LOADGEN_DC_BASELINE" ] || {
    echo "FAIL: committed baseline $LOADGEN_DC_BASELINE is missing" >&2
    exit 1
  }
  BFLY_CACHE_DIR="$scratch/lg-dc-cache" dune exec -- bin/bfly_tool.exe \
    loadgen --trace "$LOADGEN_DC_TRACE" --seed 1 --clients 4 --repeat 10 \
    --compare "$LOADGEN_DC_BASELINE" --no-timing > /dev/null
  # same-machine latency gate: record, re-run, compare with slack — this
  # is the stage that fails on an injected p99/throughput regression
  BFLY_CACHE_DIR="$scratch/lg-cache" dune exec -- bin/bfly_tool.exe \
    loadgen --trace "$LOADGEN_TRACE" --seed 1 --clients 4 --repeat 10 \
    --json "$scratch/lg-here.json" > /dev/null
  BFLY_CACHE_DIR="$scratch/lg-cache" dune exec -- bin/bfly_tool.exe \
    loadgen --trace "$LOADGEN_TRACE" --seed 1 --clients 4 --repeat 10 \
    --compare "$scratch/lg-here.json" --slack 5 > /dev/null
  # concurrency speedup: 4 workers vs the 1-domain sequential replay,
  # cold caches both sides. Only meaningful with real cores to spread
  # over, so it is guarded — laptops and 1-core runners skip it.
  cores=$(nproc 2>/dev/null || echo 1)
  if [ "$cores" -ge 4 ]; then
    BFLY_DOMAINS=1 dune exec -- bin/bfly_tool.exe loadgen \
      --trace "$LOADGEN_TRACE" --seed 3 --clients 4 --repeat 3 \
      --sequential --no-cache --json "$scratch/lg-1.json" > /dev/null
    BFLY_DOMAINS=4 dune exec -- bin/bfly_tool.exe loadgen \
      --trace "$LOADGEN_TRACE" --seed 3 --clients 4 --repeat 3 \
      --workers 4 --no-cache --json "$scratch/lg-4.json" > /dev/null
    seq_qps=$(sed -n 's/.*"achieved_qps":\([0-9.]*\).*/\1/p' "$scratch/lg-1.json" | head -n 1)
    conc_qps=$(sed -n 's/.*"achieved_qps":\([0-9.]*\).*/\1/p' "$scratch/lg-4.json" | head -n 1)
    echo "sequential $seq_qps qps; 4-worker concurrent $conc_qps qps"
    awk "BEGIN { exit !($conc_qps >= 2 * $seq_qps) }" || {
      echo "FAIL: 4 workers did not reach 2x the sequential throughput" >&2
      exit 1
    }
  else
    echo "skipping speedup check ($cores cores < 4)"
  fi
  echo "loadgen: deterministic replay and latency gate OK"
}

# Campaign smoke: replay a small sub-grid of the committed full campaign
# at one domain with a fresh cache. The determinism contract makes the
# sub-grid's per-instance [edges, certified LB, ml, spectral] rows
# byte-comparable against the committed document (--compare exits
# non-zero on any drift), and the per-instance statistical oracle must
# stay green. The JSON lands in _build/ so the workflow can upload it as
# a per-compiler artifact.
stage_campaign() {
  [ -f "$CAMPAIGN_BASELINE" ] || {
    echo "FAIL: committed baseline $CAMPAIGN_BASELINE is missing" >&2
    exit 1
  }
  mkdir -p _build
  BFLY_DOMAINS=1 BFLY_CACHE_DIR="$scratch/campaign-cache" dune exec -- \
    bin/bfly_tool.exe campaign --degree 3 --sizes 64,128 --seeds 3 \
    --json _build/campaign_smoke.json --compare "$CAMPAIGN_BASELINE"
}

# Warm-cache determinism: run the bench smoke suite twice against a fresh
# result-cache directory. The second (warm) run must serve from the cache
# — nonzero cache.hit, zero exact B&B search nodes in the gate snapshot —
# and both runs must produce byte-identical measured values.
stage_warm() {
  BFLY_CACHE_DIR="$scratch/cache" dune exec -- bench/main.exe --smoke \
    --json "$scratch/cold.json" --values "$scratch/cold-values.json" \
    > "$scratch/cold.log"
  BFLY_CACHE_DIR="$scratch/cache" dune exec -- bench/main.exe --smoke \
    --json "$scratch/warm.json" --values "$scratch/warm-values.json" \
    > "$scratch/warm.log"

  cmp "$scratch/cold-values.json" "$scratch/warm-values.json" || {
    echo "FAIL: warm-cache run changed measured values" >&2
    exit 1
  }

  cold_nodes=$(extract 'exact.bb.nodes' "$scratch/cold.json")
  warm_nodes=$(extract 'exact.bb.nodes' "$scratch/warm.json")
  warm_hits=$(extract 'cache.hit' "$scratch/warm.json")
  warm_misses=$(extract 'cache.miss' "$scratch/warm.json")
  echo "cold: bb nodes $cold_nodes; warm: bb nodes $warm_nodes," \
    "cache hits $warm_hits, misses $warm_misses"
  [ "$cold_nodes" -gt 0 ] || {
    echo "FAIL: cold run did not search (bb nodes = $cold_nodes)" >&2
    exit 1
  }
  [ "$warm_hits" -gt 0 ] || {
    echo "FAIL: warm run had no cache hits" >&2
    exit 1
  }
  [ "$warm_nodes" -eq 0 ] || {
    echo "FAIL: warm run re-searched (bb nodes = $warm_nodes)" >&2
    exit 1
  }
}

# Deadline/resume determinism: an exact search interrupted by a step
# budget must return a certified interval, and resuming from its
# checkpoint must land on the same value an uninterrupted run computes.
stage_resume() {
  baseline=$(BFLY_CACHE_DIR="$scratch/exact-a" dune exec -- \
    bin/bfly_tool.exe bw exact butterfly 8)
  baseline_bw=${baseline##* = }
  echo "baseline: $baseline"

  first=$(BFLY_CACHE_DIR="$scratch/exact-b" dune exec -- \
    bin/bfly_tool.exe bw exact butterfly 8 --max-nodes 200)
  echo "budgeted: $first"
  case $first in
  *"BW in ["*)
    resumed=$(BFLY_CACHE_DIR="$scratch/exact-b" dune exec -- \
      bin/bfly_tool.exe bw exact butterfly 8 --resume)
    echo "resumed:  $resumed"
    resumed_bw=${resumed##* = }
    [ "$resumed_bw" = "$baseline_bw" ] || {
      echo "FAIL: resumed value '$resumed_bw' != baseline '$baseline_bw'" >&2
      exit 1
    }
    ;;
  *"BW = $baseline_bw"*)
    # the budget sufficed outright; the determinism claim is trivially met
    echo "budgeted run completed within budget"
    ;;
  *)
    echo "FAIL: unexpected budgeted output '$first'" >&2
    exit 1
    ;;
  esac
}

# Counter-based regression gate: re-run the deterministic bench stages
# (full reproduction tables + oracle battery, no Bechamel) and diff
# experiment outputs, gate counters and the oracle summary against the
# committed baseline. The domain count and cache state are pinned because
# both feed the compared counters.
stage_compare() {
  [ -f "$BASELINE" ] || {
    echo "FAIL: committed baseline $BASELINE is missing" >&2
    exit 1
  }
  BFLY_DOMAINS=1 BFLY_CACHE_DIR="$scratch/compare-cache" dune exec -- \
    bench/main.exe --compare "$BASELINE" > "$scratch/compare.log" || {
    tail -n 20 "$scratch/compare.log" >&2
    exit 1
  }
  tail -n 1 "$scratch/compare.log"
}

# ---- driver ----

case "${1-}" in
list)
  echo "$ALL_STAGES"
  exit 0
  ;;
esac

stages="$*"
[ -n "$stages" ] || stages=$ALL_STAGES
for s in $stages; do
  case " $ALL_STAGES " in
  *" $s "*) ;;
  *)
    echo "unknown stage '$s' (available: $ALL_STAGES)" >&2
    exit 2
    ;;
  esac
done

summary=""
for s in $stages; do
  echo "== $s =="
  t0=$(date +%s)
  "stage_$s"
  t1=$(date +%s)
  summary="$summary$(printf '  %-8s %4ds' "$s" $((t1 - t0)))
"
  # Under GitHub Actions, accumulate the same timings as one markdown
  # table in the job summary. The workflow runs one stage per step, each
  # a fresh ci.sh process, so the header is written only when the
  # summary file is still empty — later steps append bare rows and the
  # table joins up across steps.
  if [ -n "${GITHUB_STEP_SUMMARY-}" ]; then
    if [ ! -s "$GITHUB_STEP_SUMMARY" ]; then
      printf '| stage | wall |\n| --- | ---: |\n' >> "$GITHUB_STEP_SUMMARY"
    fi
    printf '| %s | %ss |\n' "$s" $((t1 - t0)) >> "$GITHUB_STEP_SUMMARY"
  fi
done

echo "---- stage timings ----"
printf '%s' "$summary"
echo "CI OK"
