#!/bin/sh
# Tier-1 CI gate: build, tests (which include the bench --smoke --json
# pipeline as a runtest rule), and — where the toolchain provides odoc —
# the documentation build, so broken odoc markup in the .mli files fails
# the pipeline on dev machines even though minimal containers skip it.
set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

if command -v odoc >/dev/null 2>&1; then
  echo "== dune build @doc =="
  dune build @doc
else
  echo "== odoc not installed; skipping @doc check =="
fi

echo "CI OK"
