#!/bin/sh
# Tier-1 CI gate: build, tests (which include the bench --smoke --json
# pipeline as a runtest rule), and — where the toolchain provides odoc —
# the documentation build, so broken odoc markup in the .mli files fails
# the pipeline on dev machines even though minimal containers skip it.
set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

# Differential-oracle smoke gate. `dune runtest` already runs this via the
# bin/dune rule; running it explicitly keeps a visible, non-cached pass in
# the CI log and fails loudly (non-zero exit) on any solver disagreement.
echo "== bfly_tool check --smoke =="
dune exec -- bin/bfly_tool.exe check --smoke --seed 42 --rounds 5

if command -v odoc >/dev/null 2>&1; then
  echo "== dune build @doc =="
  dune build @doc
else
  echo "== odoc not installed; skipping @doc check =="
fi

echo "CI OK"
