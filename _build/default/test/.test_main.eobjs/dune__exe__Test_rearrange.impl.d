test/test_rearrange.ml: Alcotest Array Bfly_cuts Bfly_embed Bfly_graph Bfly_networks List QCheck2 Random Tu
