test/test_butterfly.ml: Alcotest Bfly_graph Bfly_networks List Printf Tu
