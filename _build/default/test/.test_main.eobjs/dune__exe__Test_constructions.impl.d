test/test_constructions.ml: Alcotest Array Bfly_cuts Bfly_graph Bfly_networks Format List Tu
