test/test_networks_misc.ml: Alcotest Array Bfly_graph Bfly_networks List Random String Tu
