test/test_multibutterfly.ml: Alcotest Bfly_graph Bfly_networks List Random Tu
