test/test_flow_layout.ml: Alcotest Array Bfly_cuts Bfly_graph Bfly_mos Bfly_networks Hashtbl List QCheck2 Random Tu
