test/test_edge_cases.ml: Alcotest Array Bfly_core Bfly_cuts Bfly_expansion Bfly_graph Bfly_networks Bfly_routing List Random Tu Unix
