test/test_wrapped_ccc.ml: Array Bfly_graph Bfly_networks List Printf Tu
