test/test_final.ml: Alcotest Array Bfly_core Bfly_embed Bfly_expansion Bfly_graph Bfly_mos Bfly_networks List Random String Tu
