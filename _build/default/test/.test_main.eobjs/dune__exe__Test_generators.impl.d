test/test_generators.ml: Bfly_cuts Bfly_graph List QCheck2 Tu
