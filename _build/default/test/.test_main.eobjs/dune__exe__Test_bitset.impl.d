test/test_bitset.ml: Alcotest Bfly_graph List QCheck2 Tu
