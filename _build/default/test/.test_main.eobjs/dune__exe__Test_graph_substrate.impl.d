test/test_graph_substrate.ml: Alcotest Array Bfly_graph Fun Hashtbl List QCheck2 Tu
