test/test_integration.ml: Bfly_core Bfly_cuts Bfly_embed Bfly_expansion Bfly_graph Bfly_mos Bfly_networks Bfly_routing Filename Format List Random String Sys Tu
