test/test_traverse_extra.ml: Alcotest Array Bfly_cuts Bfly_graph Bfly_networks List QCheck2 Tu
