test/tu.ml: Alcotest Array Bfly_graph QCheck2 QCheck_alcotest Random
