test/test_mos_analysis.ml: Alcotest Bfly_cuts Bfly_graph Bfly_mos Bfly_networks List Printf Tu
