test/test_graph.ml: Alcotest Array Bfly_graph List QCheck2 Tu
