test/test_level_cut.ml: Alcotest Bfly_cuts Bfly_graph Bfly_networks List QCheck2 Random Tu
