test/test_core.ml: Alcotest Bfly_core Bfly_graph Bfly_networks List String Tu
