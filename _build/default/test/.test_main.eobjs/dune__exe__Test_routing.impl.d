test/test_routing.ml: Alcotest Array Bfly_cuts Bfly_graph Bfly_networks Bfly_routing List QCheck2 Random Tu
