test/test_cuts.ml: Alcotest Bfly_cuts Bfly_graph Bfly_networks List QCheck2 Random Tu
