test/test_embed.ml: Alcotest Array Bfly_embed Bfly_expansion Bfly_graph Bfly_networks List Tu
