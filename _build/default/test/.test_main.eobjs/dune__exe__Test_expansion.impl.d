test/test_expansion.ml: Alcotest Bfly_expansion Bfly_graph Bfly_networks List QCheck2 Random Tu
