module Bitset = Bfly_graph.Bitset
module Cut = Bfly_cuts.Cut
module Level_cut = Bfly_cuts.Level_cut
module B = Bfly_networks.Butterfly
open Tu

let random_bisection ~rng b =
  let size = B.size b in
  random_subset ~rng size (size / 2)

let test_on_column_cut () =
  let b = B.of_inputs 8 in
  let side = Bfly_cuts.Constructions.butterfly_column_cut b in
  let level, side' = Level_cut.bisect_some_level b side in
  let u = Bitset.create (B.size b) in
  List.iter (Bitset.add u) (B.level_nodes b level);
  checkb "bisects the level" true (Cut.bisects (Cut.make (B.graph b) side') u);
  (* the column cut already bisects every level: capacity must be preserved *)
  check "capacity unchanged" 8
    (Bfly_graph.Traverse.boundary_edges (B.graph b) side')

let prop_lemma_2_12 =
  qcheck ~count:100 "Lemma 2.12(1): transforms any bisection, capacity-safe"
    QCheck2.Gen.(pair (int_range 1 5) (int_range 0 10000))
    (fun (log_n, seed) ->
      let rng = Random.State.make [| seed |] in
      let b = B.create ~log_n in
      let side = random_bisection ~rng b in
      let before = Bfly_graph.Traverse.boundary_edges (B.graph b) side in
      let level, side' = Level_cut.bisect_some_level b side in
      let after = Bfly_graph.Traverse.boundary_edges (B.graph b) side' in
      let in_level =
        List.fold_left
          (fun acc v -> if Bitset.mem side' v then acc + 1 else acc)
          0
          (B.level_nodes b level)
      in
      after <= before && in_level = 1 lsl (log_n - 1))

let test_rejects_non_bisection () =
  let b = B.of_inputs 4 in
  let side = Bitset.create (B.size b) in
  Bitset.add side 0;
  Alcotest.check_raises "not a bisection"
    (Invalid_argument "Level_cut.bisect_some_level: not a bisection") (fun () ->
      ignore (Level_cut.bisect_some_level b side))

let test_level_bisection_width () =
  (* BW(B_n, L_i) <= BW(B_n) for some i (Lemma 2.12's conclusion); at B_4
     check every level's value directly *)
  let b = B.of_inputs 4 in
  let bw, _ = Bfly_cuts.Exact.bisection_width (B.graph b) in
  let values =
    List.map
      (fun level -> fst (Level_cut.level_bisection_width b ~level ()))
      [ 0; 1; 2 ]
  in
  checkb "some level-bisection width <= BW" true
    (List.exists (fun v -> v <= bw) values);
  (* level-bisection widths are cut capacities of real witnesses *)
  List.iteri
    (fun level v ->
      let v', side = Level_cut.level_bisection_width b ~level () in
      check "stable" v v';
      let u = Bitset.create (B.size b) in
      List.iter (Bitset.add u) (B.level_nodes b level);
      checkb "witness bisects level" true (Cut.bisects (Cut.make (B.graph b) side) u))
    values

let test_input_level_width_is_n () =
  (* Lemma 3.1: any cut bisecting the inputs has capacity >= n; so
     BW(B_n, L_0) = n exactly (the column cut achieves it) *)
  List.iter
    (fun log_n ->
      let b = B.create ~log_n in
      let v, _ = Level_cut.level_bisection_width b ~level:0 ~upper_bound:(1 lsl log_n) () in
      check "BW(B_n, L_0) = n" (1 lsl log_n) v)
    [ 1; 2; 3 ]

let suite =
  [
    case "column cut passes through unchanged" test_on_column_cut;
    prop_lemma_2_12;
    case "rejects non-bisections" test_rejects_non_bisection;
    case "level-bisection widths at B_4" test_level_bisection_width;
    case "BW(B_n, L_0) = n (Lemma 3.1)" test_input_level_width_is_n;
  ]
