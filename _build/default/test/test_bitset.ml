module Bitset = Bfly_graph.Bitset
open Tu

let test_empty () =
  let s = Bitset.create 100 in
  check "empty cardinal" 0 (Bitset.cardinal s);
  checkb "is_empty" true (Bitset.is_empty s);
  checkb "no member" false (Bitset.mem s 50);
  check "capacity" 100 (Bitset.capacity s)

let test_add_remove () =
  let s = Bitset.create 200 in
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 199;
  check "cardinal after adds" 4 (Bitset.cardinal s);
  checkb "mem 63 (word boundary)" true (Bitset.mem s 63);
  checkb "mem 64 (word boundary)" true (Bitset.mem s 64);
  Bitset.remove s 63;
  checkb "removed" false (Bitset.mem s 63);
  check "cardinal after remove" 3 (Bitset.cardinal s);
  Bitset.remove s 63;
  check "idempotent remove" 3 (Bitset.cardinal s);
  Bitset.add s 0;
  check "idempotent add" 3 (Bitset.cardinal s)

let test_flip_set () =
  let s = Bitset.create 10 in
  Bitset.flip s 3;
  checkb "flip on" true (Bitset.mem s 3);
  Bitset.flip s 3;
  checkb "flip off" false (Bitset.mem s 3);
  Bitset.set s 5 true;
  checkb "set true" true (Bitset.mem s 5);
  Bitset.set s 5 false;
  checkb "set false" false (Bitset.mem s 5)

let test_elements_order () =
  let s = Bitset.of_list 150 [ 149; 0; 77; 63; 64; 5 ] in
  Alcotest.(check (list int))
    "sorted elements" [ 0; 5; 63; 64; 77; 149 ] (Bitset.elements s)

let test_set_ops () =
  let a = Bitset.of_list 70 [ 1; 2; 3; 65 ] in
  let b = Bitset.of_list 70 [ 3; 4; 65; 69 ] in
  Alcotest.(check (list int))
    "union" [ 1; 2; 3; 4; 65; 69 ]
    (Bitset.elements (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 3; 65 ] (Bitset.elements (Bitset.inter a b));
  Alcotest.(check (list int)) "diff" [ 1; 2 ] (Bitset.elements (Bitset.diff a b));
  checkb "subset no" false (Bitset.subset a b);
  checkb "subset yes" true (Bitset.subset (Bitset.inter a b) a)

let test_complement () =
  let s = Bitset.of_list 5 [ 0; 2; 4 ] in
  Alcotest.(check (list int))
    "complement" [ 1; 3 ]
    (Bitset.elements (Bitset.complement s))

let test_copy_independent () =
  let s = Bitset.of_list 10 [ 1 ] in
  let c = Bitset.copy s in
  Bitset.add c 2;
  checkb "copy independent" false (Bitset.mem s 2);
  checkb "copy has" true (Bitset.mem c 2)

let test_fill_clear () =
  let s = Bitset.create 130 in
  Bitset.fill s;
  check "full" 130 (Bitset.cardinal s);
  checkb "equal to own copy" true (Bitset.equal s (Bitset.copy s));
  Bitset.clear s;
  check "cleared" 0 (Bitset.cardinal s)

let test_choose () =
  let s = Bitset.of_list 100 [ 42; 77 ] in
  check "choose smallest" 42 (Bitset.choose s);
  Alcotest.check_raises "choose empty" Not_found (fun () ->
      ignore (Bitset.choose (Bitset.create 4)))

let test_iter_fold () =
  let s = Bitset.of_list 300 [ 7; 250; 62; 63 ] in
  let sum = Bitset.fold s 0 ( + ) in
  check "fold sum" (7 + 250 + 62 + 63) sum

let prop_model =
  qcheck ~count:200 "bitset matches list model"
    QCheck2.Gen.(list (int_bound 199))
    (fun l ->
      let s = Bitset.of_list 200 l in
      let model = List.sort_uniq compare l in
      Bitset.elements s = model && Bitset.cardinal s = List.length model)

let prop_union_commutes =
  qcheck ~count:200 "union commutes, inter distributes"
    QCheck2.Gen.(pair (list (int_bound 99)) (list (int_bound 99)))
    (fun (la, lb) ->
      let a = Bitset.of_list 100 la and b = Bitset.of_list 100 lb in
      Bitset.equal (Bitset.union a b) (Bitset.union b a)
      && Bitset.equal (Bitset.inter a b) (Bitset.inter b a)
      && Bitset.equal
           (Bitset.diff a b)
           (Bitset.inter a (Bitset.complement b)))

let suite =
  [
    case "empty" test_empty;
    case "add/remove across word boundaries" test_add_remove;
    case "flip and set" test_flip_set;
    case "elements sorted" test_elements_order;
    case "union/inter/diff/subset" test_set_ops;
    case "complement" test_complement;
    case "copy independence" test_copy_independent;
    case "fill and clear" test_fill_clear;
    case "choose" test_choose;
    case "iter/fold" test_iter_fold;
    prop_model;
    prop_union_commutes;
  ]
