module MB = Bfly_networks.Multibutterfly
module B = Bfly_networks.Butterfly
module G = Bfly_graph.Graph
open Tu

let rng () = Random.State.make [| 0xfeed |]

let test_structure () =
  let mb = MB.create ~rng:(rng ()) ~log_n:4 ~d:2 () in
  check "size like a butterfly" 80 (MB.size mb);
  check "nodes" 80 (G.n_nodes (MB.graph mb));
  (* every non-output node sends d edges into each half: down-degree 2d,
     except where a half-cluster is smaller than d *)
  let g = MB.graph mb in
  for w = 0 to 15 do
    for level = 0 to 2 do
      let down =
        G.fold_neighbors g (MB.node mb ~col:w ~level) 0 (fun acc v ->
            if v / 16 = level + 1 then acc + 1 else acc)
      in
      check "down-degree 2d" 4 down
    done;
    (* at the last boundary the halves have a single column: capped at 1 *)
    let down =
      G.fold_neighbors g (MB.node mb ~col:w ~level:3) 0 (fun acc v ->
          if v / 16 = 4 then acc + 1 else acc)
    in
    check "capped down-degree" 2 down
  done

let test_connected () =
  let mb = MB.create ~rng:(rng ()) ~log_n:5 ~d:2 () in
  checkb "connected" true (Bfly_graph.Traverse.is_connected (MB.graph mb))

let test_edges_stay_in_clusters () =
  (* every boundary-i edge stays within the cluster defined by the top i
     bits — the butterfly skeleton *)
  let log_n = 5 in
  let mb = MB.create ~rng:(rng ()) ~log_n ~d:3 () in
  let n = 1 lsl log_n in
  let ok = ref true in
  G.iter_edges (MB.graph mb) (fun u v ->
      let u, v = if u / n <= v / n then (u, v) else (v, u) in
      let i = u / n in
      if v / n <> i + 1 then ok := false;
      let cu = u mod n and cv = v mod n in
      if cu lsr (log_n - i) <> cv lsr (log_n - i) then ok := false;
      (* and lands in a half determined by bit i+1, never the parent's own
         sub-column constraints beyond the cluster *)
      ());
  checkb "skeleton respected" true !ok

let test_splitter_expansion_butterfly_is_half () =
  (* the fixed wiring pairs inputs: worst ratio exactly 1/2 at every size *)
  List.iter
    (fun log_n ->
      let b = B.create ~log_n in
      Alcotest.(check (float 1e-9))
        "butterfly splitter expansion" 0.5
        (MB.splitter_expansion (B.graph b) ~log_n ~boundary:0 ~cluster_top:0
           ~max_k:4))
    [ 2; 3; 4; 5 ]

let test_multibutterfly_expands_more () =
  let log_n = 6 in
  let b = B.create ~log_n in
  let mb = MB.create ~rng:(rng ()) ~log_n ~d:3 () in
  let eb =
    MB.splitter_expansion (B.graph b) ~log_n ~boundary:0 ~cluster_top:0 ~max_k:3
  in
  let em =
    MB.splitter_expansion (MB.graph mb) ~log_n ~boundary:0 ~cluster_top:0
      ~max_k:3
  in
  checkb "random wiring beats fixed wiring" true (em > eb)

let test_inner_splitters () =
  (* deeper boundaries have smaller clusters but the same structure *)
  let log_n = 5 in
  let mb = MB.create ~rng:(rng ()) ~log_n ~d:2 () in
  List.iter
    (fun boundary ->
      for cluster_top = 0 to (1 lsl boundary) - 1 do
        let e =
          MB.splitter_expansion (MB.graph mb) ~log_n ~boundary ~cluster_top
            ~max_k:2
        in
        checkb "positive expansion" true (e > 0.0)
      done)
    [ 1; 2 ]

let test_validation () =
  Alcotest.check_raises "d >= 1"
    (Invalid_argument "Multibutterfly.create: d >= 1") (fun () ->
      ignore (MB.create ~log_n:3 ~d:0 ()))

let suite =
  [
    case "structure and degrees" test_structure;
    case "connectivity" test_connected;
    case "edges respect the cluster skeleton" test_edges_stay_in_clusters;
    case "butterfly splitter expansion is exactly 1/2" test_splitter_expansion_butterfly_is_half;
    case "multibutterfly expands more" test_multibutterfly_expands_more;
    case "inner splitters" test_inner_splitters;
    case "validation" test_validation;
  ]
