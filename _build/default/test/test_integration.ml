(* Cross-library integration tests: the pieces of the paper's arguments
   composed end to end. *)

module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module Perm = Bfly_graph.Perm
module B = Bfly_networks.Butterfly
module W = Bfly_networks.Wrapped
module Cons = Bfly_cuts.Constructions
module Cut = Bfly_cuts.Cut
open Tu

(* ---- the Theorem 2.20 sandwich, end to end ---- *)

let test_sandwich_consistency () =
  List.iter
    (fun log_n ->
      let n = 1 lsl log_n in
      let b = B.create ~log_n in
      let lb = Bfly_mos.Mos_analysis.butterfly_lower_bound n in
      let _, construction, side = Cons.best_mos_pullback b in
      let folklore =
        Bfly_graph.Traverse.boundary_edges (B.graph b)
          (Cons.butterfly_column_cut b)
      in
      checkb "LB <= construction" true (lb <= construction);
      checkb "construction <= folklore" true (construction <= folklore);
      checkb "witness is a bisection" true (Cut.is_bisection (Cut.make (B.graph b) side));
      (* the strict lower bound of Lemma 2.19 scaled by Lemma 2.13 *)
      checkb "LB > 2(sqrt2 - 1)n - 1" true
        (float_of_int lb > (Bfly_core.Bw.butterfly_constant *. float_of_int n) -. 1.0))
    [ 2; 3; 4; 5; 6; 7; 8 ]

(* ---- Lemma 2.12(2): BW(B_{n^2}, L_{log n})/n^2 <= BW(B_n)/n at n = 2 ---- *)

let test_lemma_2_12_part2 () =
  let b2 = B.of_inputs 2 in
  let b4 = B.of_inputs 4 in
  let bw2, _ = Bfly_cuts.Exact.bisection_width (B.graph b2) in
  let bw4_l1, _ = Bfly_cuts.Level_cut.level_bisection_width b4 ~level:1 () in
  checkb "BW(B_4, L_1)/4 <= BW(B_2)/2" true
    (float_of_int bw4_l1 /. 4. <= float_of_int bw2 /. 2. +. 1e-9)

(* ---- MOS pullback differential testing at larger sizes ---- *)

let test_mos_pullback_random_params_large () =
  let rng = Random.State.make [| 0xd1ff |] in
  List.iter
    (fun log_n ->
      let b = B.create ~log_n in
      for _ = 1 to 12 do
        let t1 = 1 + Random.State.int rng (log_n - 1) in
        let t3 = 1 + Random.State.int rng (log_n - t1) in
        let r1 = Random.State.int rng ((1 lsl t3) + 1) in
        let r3 = Random.State.int rng ((1 lsl t1) + 1) in
        let params = { Cons.t1; t3; r1; r3 } in
        match Cons.mos_predicted_cost b params with
        | None -> ()
        | Some predicted ->
            let side = Cons.mos_pullback_cut b params in
            check
              (Format.asprintf "B_2^%d %a" log_n Cons.pp_mos_params params)
              predicted
              (Bfly_graph.Traverse.boundary_edges (B.graph b) side);
            checkb "bisection" true (Cut.is_bisection (Cut.make (B.graph b) side))
      done)
    [ 7; 8; 9 ]

(* ---- experiment renderers carry the right headline numbers ---- *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_e2_contains_limit () =
  let s = Bfly_core.Experiments.e2_mos_convergence () in
  checkb "shows the sqrt2-1 density" true (contains ~needle:"0.41428" s);
  checkb "shows j=4096" true (contains ~needle:"6950400" s)

let test_e15_table () =
  let s = Bfly_core.Experiments.e15_io_separation () in
  checkb "all rows match" false (contains ~needle:"NO" s)

let test_e16_table () =
  let s = Bfly_core.Experiments.e16_level_bisection () in
  checkb "all capacity-safe" true (contains ~needle:"50/50" s)

(* ---- routing over the constructed minimum bisection ---- *)

let test_routing_respects_constructed_cut () =
  let rng = Random.State.make [| 77 |] in
  let b = B.of_inputs 32 in
  let _, cost, side = Cons.best_mos_pullback b in
  let paths = Bfly_routing.Workload.all_to_random ~rng b in
  let into, out = Bfly_routing.Router.crossings ~side paths in
  let stats = Bfly_routing.Router.run (B.graph b) ~paths in
  let lb =
    Bfly_routing.Router.time_lower_bound ~crossings_one_way:(max into out)
      ~bw:cost
  in
  checkb "T_sim >= crossings/capacity" true (stats.Bfly_routing.Router.steps >= lb)

(* ---- credit certificates vs embedding-based bounds ---- *)

let test_certificates_coexist () =
  (* both lower-bound techniques must sit below the exact value *)
  let w = W.of_inputs 8 in
  let g = W.graph w in
  let e = Bfly_embed.Classic.kn_into_wrapped w in
  List.iter
    (fun k ->
      let exact, witness = Bfly_expansion.Expansion.ee_exact g ~k in
      let credit = (Bfly_expansion.Credit.wn_edge w witness).Bfly_expansion.Credit.certified in
      let embed = Bfly_embed.Lower_bounds.ee_via_kn e ~k in
      checkb "credit <= exact" true (credit <= exact);
      checkb "embedding <= exact" true (embed <= exact))
    [ 2; 4; 6; 8 ]

(* ---- rendering a cut ---- *)

let test_render_with_cut () =
  let b = B.of_inputs 4 in
  let side = Cons.butterfly_column_cut b in
  let s = Bfly_networks.Render.butterfly_ascii ~side b in
  let hash = String.fold_left (fun a c -> if c = '#' then a + 1 else a) 0 s in
  let oh = String.fold_left (fun a c -> if c = 'o' then a + 1 else a) 0 s in
  check "side nodes drawn as #" 6 hash;
  check "other nodes drawn as o" 6 oh;
  let dot = Bfly_networks.Render.butterfly_dot ~side b in
  checkb "dot marks cut edges" true (contains ~needle:"color=red" dot)

let test_dot_write_roundtrip () =
  let b = B.of_inputs 4 in
  let file = Filename.temp_file "bfly" ".dot" in
  Bfly_graph.Dot.write ~label:(B.label b) file (B.graph b);
  let ic = open_in file in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove file;
  checkb "file written" true (len > 100)

(* ---- wrapped rotation composed with unfolding ---- *)

let test_rotation_preserves_cuts () =
  (* automorphisms preserve cut capacities *)
  let w = W.of_inputs 16 in
  let g = W.graph w in
  let rng = Random.State.make [| 12 |] in
  for _ = 1 to 20 do
    let side = random_subset ~rng (W.size w) (W.size w / 2) in
    let p = W.rotation_automorphism w in
    let image = Bitset.create (W.size w) in
    Bitset.iter side (fun v -> Bitset.add image (Perm.apply p v));
    check "capacity invariant under rotation"
      (Bfly_graph.Traverse.boundary_edges g side)
      (Bfly_graph.Traverse.boundary_edges g image)
  done

let suite =
  [
    case "Theorem 2.20 sandwich consistency" test_sandwich_consistency;
    case "Lemma 2.12(2) at n = 2" test_lemma_2_12_part2;
    slow_case "MOS pullback differential (log n = 7..9)" test_mos_pullback_random_params_large;
    case "E2 carries the limit value" test_e2_contains_limit;
    case "E15 rows all match" test_e15_table;
    slow_case "E16 rows all capacity-safe" test_e16_table;
    case "routing bound with the constructed cut" test_routing_respects_constructed_cut;
    case "credit and embedding certificates coexist" test_certificates_coexist;
    case "render with cut overlay" test_render_with_cut;
    case "DOT file writing" test_dot_write_roundtrip;
    case "automorphisms preserve capacities" test_rotation_preserves_cuts;
  ]
