(* Shared test utilities. *)

module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

let rng = Random.State.make [| 0x7e57 |]

(* Erdős–Rényi-ish random graph, made connected by a random spanning path. *)
let random_graph ?(rng = rng) n ~extra_edges =
  let edges = ref [] in
  let perm = Bfly_graph.Perm.random ~rng n in
  for i = 0 to n - 2 do
    edges := (Bfly_graph.Perm.apply perm i, Bfly_graph.Perm.apply perm (i + 1)) :: !edges
  done;
  for _ = 1 to extra_edges do
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if u <> v then edges := (u, v) :: !edges
  done;
  G.of_edge_list ~n !edges

let random_subset ?(rng = rng) n k =
  let p = Bfly_graph.Perm.random ~rng n in
  let s = Bitset.create n in
  for i = 0 to k - 1 do
    Bitset.add s (Bfly_graph.Perm.apply p i)
  done;
  s

(* brute-force bisection width for tiny graphs, independent of lib code *)
let brute_bw g =
  let n = G.n_nodes g in
  assert (n <= 20);
  let edges = G.edges g in
  let best = ref max_int in
  for m = 0 to (1 lsl n) - 1 do
    let size = ref 0 in
    for i = 0 to n - 1 do
      if (m lsr i) land 1 = 1 then incr size
    done;
    if !size = n / 2 || !size = (n + 1) / 2 then begin
      let c =
        Array.fold_left
          (fun acc (a, b) ->
            if (m lsr a) land 1 <> (m lsr b) land 1 then acc + 1 else acc)
          0 edges
      in
      if c < !best then best := c
    end
  done;
  !best
