(* Max-flow, directed I/O separation, grid layouts. *)

module Maxflow = Bfly_graph.Maxflow
module Bitset = Bfly_graph.Bitset
module Io_cut = Bfly_cuts.Io_cut
module Layout = Bfly_networks.Layout
module B = Bfly_networks.Butterfly
open Tu

(* ---- max flow ---- *)

let test_single_edge () =
  let net = Maxflow.create 2 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~cap:5;
  check "single edge" 5 (Maxflow.max_flow net ~s:0 ~t_:1)

let test_series_parallel () =
  (* two parallel 2-paths with caps 3,1 and 2,4: flow = min(3,1)+min(2,4) *)
  let net = Maxflow.create 4 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~cap:3;
  Maxflow.add_edge net ~src:1 ~dst:3 ~cap:1;
  Maxflow.add_edge net ~src:0 ~dst:2 ~cap:2;
  Maxflow.add_edge net ~src:2 ~dst:3 ~cap:4;
  check "series-parallel" 3 (Maxflow.max_flow net ~s:0 ~t_:3)

let test_classic_network () =
  (* CLRS-style example *)
  let net = Maxflow.create 6 in
  let e = Maxflow.add_edge net in
  e ~src:0 ~dst:1 ~cap:16;
  e ~src:0 ~dst:2 ~cap:13;
  e ~src:1 ~dst:2 ~cap:10;
  e ~src:2 ~dst:1 ~cap:4;
  e ~src:1 ~dst:3 ~cap:12;
  e ~src:3 ~dst:2 ~cap:9;
  e ~src:2 ~dst:4 ~cap:14;
  e ~src:4 ~dst:3 ~cap:7;
  e ~src:3 ~dst:5 ~cap:20;
  e ~src:4 ~dst:5 ~cap:4;
  check "CLRS max flow" 23 (Maxflow.max_flow net ~s:0 ~t_:5)

let test_min_cut_side () =
  let net = Maxflow.create 3 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~cap:1;
  Maxflow.add_edge net ~src:1 ~dst:2 ~cap:9;
  ignore (Maxflow.max_flow net ~s:0 ~t_:2);
  let side = Maxflow.min_cut_side net ~s:0 in
  Alcotest.(check (list int)) "source side" [ 0 ] (Bitset.elements side)

let test_no_path () =
  let net = Maxflow.create 3 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~cap:1;
  check "disconnected" 0 (Maxflow.max_flow net ~s:0 ~t_:2)

let test_rejects_s_eq_t () =
  let net = Maxflow.create 2 in
  Alcotest.check_raises "s = t" (Invalid_argument "Maxflow.max_flow: s = t")
    (fun () -> ignore (Maxflow.max_flow net ~s:0 ~t_:0))

let prop_flow_bounded_by_degree_cuts =
  qcheck ~count:60 "flow <= out-capacity of source and in-capacity of sink"
    QCheck2.Gen.(pair (int_range 3 10) (list (pair (int_bound 9) (int_bound 9))))
    (fun (n, edges) ->
      let net = Maxflow.create n in
      let out_s = ref 0 and in_t = ref 0 in
      List.iter
        (fun (u, v) ->
          if u < n && v < n && u <> v then begin
            Maxflow.add_edge net ~src:u ~dst:v ~cap:1;
            if u = 0 then incr out_s;
            if v = n - 1 then incr in_t
          end)
        edges;
      let f = Maxflow.max_flow net ~s:0 ~t_:(n - 1) in
      f <= !out_s && f <= !in_t)

(* ---- directed input/output separation ---- *)

let test_column_cut_value () =
  List.iter
    (fun log_n ->
      let b = B.create ~log_n in
      let side = Io_cut.column_cut b in
      check "value n/2"
        (max 1 ((1 lsl log_n) / 2))
        (Io_cut.directed_crossings b side);
      checkb "constraints" true (Io_cut.satisfies_constraints b side))
    [ 1; 2; 3; 4; 5 ]

let test_exact_small () =
  List.iter
    (fun log_n ->
      let b = B.create ~log_n in
      let v, side = Io_cut.exact b in
      check "exact = n/2" (max 1 ((1 lsl log_n) / 2)) v;
      checkb "witness constraints" true (Io_cut.satisfies_constraints b side);
      check "witness value" v (Io_cut.directed_crossings b side))
    [ 1; 2; 3 ]

let test_directed_vs_undirected () =
  (* directed crossings of a side <= undirected boundary *)
  let b = B.of_inputs 8 in
  let rng = Random.State.make [| 3 |] in
  for _ = 1 to 30 do
    let s = random_subset ~rng (B.size b) (Random.State.int rng (B.size b)) in
    checkb "directed <= undirected" true
      (Io_cut.directed_crossings b s
      <= Bfly_graph.Traverse.boundary_edges (B.graph b) s)
  done

(* ---- layout ---- *)

let test_layout_dimensions () =
  List.iter
    (fun log_n ->
      let b = B.create ~log_n in
      let l = Layout.butterfly_grid b in
      let n = 1 lsl log_n in
      check "width = 2n" (max 1 (2 * n)) l.Layout.width;
      (* all positions inside the box, distinct *)
      let seen = Hashtbl.create 64 in
      Array.iter
        (fun (x, y) ->
          checkb "inside" true (x >= 0 && x < l.Layout.width && y >= 0 && y < l.Layout.height);
          checkb "distinct" false (Hashtbl.mem seen (x, y));
          Hashtbl.replace seen (x, y) ())
        l.Layout.positions)
    [ 0; 1; 2; 3; 4 ]

let test_layout_tracks () =
  (* boundary i needs 2 * cross_mask tracks (max overlap of the X wires) *)
  let b = B.of_inputs 16 in
  let l = Layout.butterfly_grid b in
  Alcotest.(check (array int))
    "tracks halve per level" [| 16; 8; 4; 2 |] l.Layout.tracks_per_boundary

let test_layout_area_quadratic () =
  (* area / n^2 stays bounded (the construction is Theta(n^2)) *)
  List.iter
    (fun log_n ->
      let b = B.create ~log_n in
      let l = Layout.butterfly_grid b in
      let n = float_of_int (1 lsl log_n) in
      let ratio = float_of_int (Layout.area l) /. (n *. n) in
      checkb "area between n^2 and 5n^2" true (ratio >= 1.0 && ratio <= 5.0))
    [ 2; 3; 4; 5; 6; 7 ]

let test_thompson_consistent () =
  (* A >= BW^2 with the certified lower bound *)
  List.iter
    (fun log_n ->
      let n = 1 lsl log_n in
      let b = B.create ~log_n in
      let l = Layout.butterfly_grid b in
      let lb = Bfly_mos.Mos_analysis.butterfly_lower_bound n in
      checkb "layout area above Thompson" true
        (Layout.area l >= Layout.thompson_lower_bound ~bw:lb))
    [ 1; 2; 3; 4; 5; 6 ]

let suite =
  [
    case "maxflow: single edge" test_single_edge;
    case "maxflow: series-parallel" test_series_parallel;
    case "maxflow: classic example" test_classic_network;
    case "maxflow: min cut side" test_min_cut_side;
    case "maxflow: disconnected" test_no_path;
    case "maxflow: rejects s = t" test_rejects_s_eq_t;
    prop_flow_bounded_by_degree_cuts;
    case "E15: column cut has n/2 directed crossings" test_column_cut_value;
    case "E15: exact separation = n/2 (max-flow enumeration)" test_exact_small;
    case "directed crossings bounded by boundary" test_directed_vs_undirected;
    case "layout: dimensions and injectivity" test_layout_dimensions;
    case "layout: track counts halve per boundary" test_layout_tracks;
    case "layout: Theta(n^2) area" test_layout_area_quadratic;
    case "layout: Thompson bound respected" test_thompson_consistent;
  ]
