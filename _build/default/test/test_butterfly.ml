module B = Bfly_networks.Butterfly
module G = Bfly_graph.Graph
module Traverse = Bfly_graph.Traverse
open Tu

let test_sizes () =
  List.iter
    (fun log_n ->
      let b = B.create ~log_n in
      let n = 1 lsl log_n in
      check "n" n (B.n b);
      check "N = n(log n + 1)" (n * (log_n + 1)) (B.size b);
      check "nodes" (B.size b) (G.n_nodes (B.graph b));
      check "edges = 2 n log n" (2 * n * log_n) (G.n_edges (B.graph b)))
    [ 0; 1; 2; 3; 4; 5 ]

let test_degrees () =
  (* level 0 and log n have degree 2, inner levels degree 4 (Section 1.4) *)
  let b = B.of_inputs 8 in
  let g = B.graph b in
  List.iter (fun v -> check "input degree" 2 (G.degree g v)) (B.inputs b);
  List.iter (fun v -> check "output degree" 2 (G.degree g v)) (B.outputs b);
  List.iter (fun v -> check "inner degree" 4 (G.degree g v)) (B.level_nodes b 1)

let test_node_indexing () =
  let b = B.of_inputs 8 in
  for level = 0 to 3 do
    for col = 0 to 7 do
      let idx = B.node b ~col ~level in
      check "col roundtrip" col (B.col_of b idx);
      check "level roundtrip" level (B.level_of b idx)
    done
  done

let test_adjacency_rule () =
  (* ⟨w,i⟩ ~ ⟨w',i+1⟩ iff w = w' or w,w' differ exactly in bit position i+1 *)
  let b = B.of_inputs 16 in
  let g = B.graph b in
  let ok = ref true in
  G.iter_edges g (fun u v ->
      let u, v = if B.level_of b u <= B.level_of b v then (u, v) else (v, u) in
      let wu = B.col_of b u and wv = B.col_of b v in
      let i = B.level_of b u in
      if B.level_of b v <> i + 1 then ok := false;
      if wu <> wv && wu lxor wv <> B.cross_mask b i then ok := false);
  checkb "all edges follow the definition" true !ok

let test_diameter_formula () =
  List.iter
    (fun log_n ->
      let b = B.create ~log_n in
      check
        (Printf.sprintf "diameter of B_%d is 2 log n" (1 lsl log_n))
        (B.theoretical_diameter b)
        (Traverse.diameter (B.graph b)))
    [ 1; 2; 3; 4; 5 ]

let test_connected () =
  checkb "B_32 connected" true (Traverse.is_connected (B.graph (B.of_inputs 32)))

let test_monotone_path_unique_and_valid () =
  (* Lemma 2.3: exactly one monotonic input-output path; check validity and
     count all monotone paths by DFS for a small instance *)
  let b = B.of_inputs 8 in
  let g = B.graph b in
  for ic = 0 to 7 do
    for oc = 0 to 7 do
      let p = B.monotone_path b ~input_col:ic ~output_col:oc in
      check "path length = log n + 1" 4 (List.length p);
      let rec valid = function
        | a :: (bb :: _ as rest) -> G.mem_edge g a bb && valid rest
        | _ -> true
      in
      checkb "path valid" true (valid p);
      check "starts at input" (B.node b ~col:ic ~level:0) (List.hd p);
      check "ends at output"
        (B.node b ~col:oc ~level:3)
        (List.nth p 3)
    done
  done;
  (* count monotone paths between one input/output pair by brute force *)
  let target = B.node b ~col:5 ~level:3 in
  let rec count node level =
    if level = 3 then if node = target then 1 else 0
    else
      G.fold_neighbors g node 0 (fun acc w ->
          if B.level_of b w = level + 1 then acc + count w (level + 1) else acc)
  in
  check "exactly one monotone path" 1 (count (B.node b ~col:2 ~level:0) 0)

let test_component_structure () =
  (* Lemma 2.4: B_n[i,j] has n/2^(j-i) components, each iso to B_(2^(j-i)) *)
  let b = B.of_inputs 16 in
  let g = B.graph b in
  List.iter
    (fun (lo, hi) ->
      let expected = B.component_count b ~lo ~hi in
      check "component count formula" (16 lsr (hi - lo)) expected;
      (* collect the level-window subgraph and count its components *)
      let s = Bfly_graph.Bitset.create (B.size b) in
      for level = lo to hi do
        List.iter (Bfly_graph.Bitset.add s) (B.level_nodes b level)
      done;
      let sub, _ = G.induced g s in
      check "measured components" expected (Traverse.component_count sub);
      (* each component has (hi-lo+1) * 2^(hi-lo) nodes *)
      for cls = 0 to expected - 1 do
        check "component size"
          ((hi - lo + 1) * (1 lsl (hi - lo)))
          (List.length (B.component_nodes b ~lo ~hi cls))
      done)
    [ (0, 4); (1, 3); (2, 2); (0, 2); (2, 4) ]

let test_reversal_automorphism () =
  (* Lemma 2.1 *)
  List.iter
    (fun log_n ->
      let b = B.create ~log_n in
      let g = B.graph b in
      let p = B.reversal_automorphism b in
      checkb "reversal is an automorphism" true (G.equal g (G.relabel g p));
      (* maps L_i onto L_(log n - i) *)
      List.iter
        (fun v ->
          check "level reversed" (log_n - B.level_of b v)
            (B.level_of b (Bfly_graph.Perm.apply p v)))
        (B.level_nodes b 0))
    [ 1; 2; 3; 4 ]

let test_column_xor_automorphism () =
  (* Lemma 2.2: level-preserving transitive action on columns *)
  let b = B.of_inputs 16 in
  let g = B.graph b in
  for c = 0 to 15 do
    let p = B.column_xor_automorphism b c in
    checkb "xor is an automorphism" true (G.equal g (G.relabel g p));
    check "level preserved" 2 (B.level_of b (Bfly_graph.Perm.apply p (B.node b ~col:3 ~level:2)))
  done;
  (* transitivity within a level: any v maps to any v' *)
  let v = B.node b ~col:5 ~level:1 and v' = B.node b ~col:12 ~level:1 in
  let p = B.column_xor_automorphism b (5 lxor 12) in
  check "v maps to v'" v' (Bfly_graph.Perm.apply p v)

let test_sub_butterfly () =
  let b = B.of_inputs 16 in
  let nodes = B.sub_butterfly_nodes b ~top_level:1 ~dim:2 ~col:0 in
  check "sub-butterfly size" 12 (List.length nodes);
  (* induced subgraph is isomorphic to B_4: 12 nodes, 16 edges, connected *)
  let s = Bfly_graph.Bitset.create (B.size b) in
  List.iter (Bfly_graph.Bitset.add s) nodes;
  let sub, _ = G.induced (B.graph b) s in
  check "sub-butterfly edges" 16 (G.n_edges sub);
  checkb "connected" true (Traverse.is_connected sub)

let test_of_inputs_validation () =
  Alcotest.check_raises "not a power of two"
    (Invalid_argument "Butterfly.of_inputs: not a power of two") (fun () ->
      ignore (B.of_inputs 12))

let test_label () =
  let b = B.of_inputs 8 in
  Alcotest.(check string) "label" "<101,2>" (B.label b (B.node b ~col:5 ~level:2))

let suite =
  [
    case "sizes and edge counts" test_sizes;
    case "degree profile (Section 1.4)" test_degrees;
    case "node indexing roundtrip" test_node_indexing;
    case "adjacency matches the definition" test_adjacency_rule;
    case "diameter = 2 log n" test_diameter_formula;
    case "connectivity" test_connected;
    case "Lemma 2.3: unique monotone paths" test_monotone_path_unique_and_valid;
    case "Lemma 2.4: level-window components" test_component_structure;
    case "Lemma 2.1: reversal automorphism" test_reversal_automorphism;
    case "Lemma 2.2: column-xor automorphisms" test_column_xor_automorphism;
    case "sub-butterfly node sets" test_sub_butterfly;
    case "input validation" test_of_inputs_validation;
    case "labels" test_label;
  ]
