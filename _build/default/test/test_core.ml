module Bw = Bfly_core.Bw
module Report = Bfly_core.Report
open Tu

let test_bw_butterfly_small_exact () =
  List.iter
    (fun (n, expected) ->
      let br = Bw.butterfly n in
      checkb "exact" true (Bw.exact br);
      check "value" expected br.Bw.lower;
      (* the witness achieves the upper bound *)
      let b = Bfly_networks.Butterfly.of_inputs n in
      check "witness capacity" br.Bw.upper
        (Bfly_graph.Traverse.boundary_edges (Bfly_networks.Butterfly.graph b)
           br.Bw.witness))
    [ (2, 2); (4, 4); (8, 8) ]

let test_bw_butterfly_bracket_large () =
  let br = Bw.butterfly 1024 in
  checkb "lower <= upper" true (br.Bw.lower <= br.Bw.upper);
  checkb "lower near 0.828n" true (br.Bw.lower >= 840 && br.Bw.lower <= 860);
  checkb "upper below folklore" true (br.Bw.upper < 1024)

let test_bw_wrapped () =
  List.iter
    (fun n ->
      let br = Bw.wrapped n in
      checkb "exact" true (Bw.exact br);
      check "equals n (Lemma 3.2)" n br.Bw.upper)
    [ 4; 8; 16; 32; 128 ]

let test_bw_ccc () =
  List.iter
    (fun n ->
      let br = Bw.ccc n in
      checkb "exact" true (Bw.exact br);
      check "equals n/2 (Lemma 3.3)" (n / 2) br.Bw.upper)
    [ 4; 8; 16; 64; 128 ]

let test_constant () =
  Alcotest.(check (float 1e-9))
    "2(sqrt2 - 1)"
    (2.0 *. (sqrt 2.0 -. 1.0))
    Bw.butterfly_constant

let test_report_table () =
  let t =
    Report.table ~title:"T" ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "33"; "4" ] ]
  in
  checkb "title present" true (String.length t > 0 && t.[0] = 'T');
  check "five lines" 5
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' t)))

let test_report_formats () =
  Alcotest.(check string) "fint" "42" (Report.fint 42);
  Alcotest.(check string) "ffloat" "1.500" (Report.ffloat 1.5);
  Alcotest.(check string) "ffloat digits" "1.50" (Report.ffloat ~digits:2 1.5);
  Alcotest.(check string) "fbool" "yes" (Report.fbool true);
  Alcotest.(check string) "fopt none" "-" (Report.fopt Report.fint None);
  Alcotest.(check string) "fopt some" "7" (Report.fopt Report.fint (Some 7))

(* smoke: the cheap experiment renderers produce non-empty tables *)
let test_experiments_smoke () =
  List.iter
    (fun name ->
      let f = List.assoc name Bfly_core.Experiments.all in
      let s = f () in
      checkb (name ^ " non-empty") true (String.length s > 50))
    [ "E3"; "E4"; "E10"; "E12"; "E13"; "F1"; "F2" ]

let suite =
  [
    case "BW brackets: small butterflies exact" test_bw_butterfly_small_exact;
    case "BW bracket for B_1024" test_bw_butterfly_bracket_large;
    case "BW(W_n) = n" test_bw_wrapped;
    case "BW(CCC_n) = n/2" test_bw_ccc;
    case "theorem constant" test_constant;
    case "table rendering" test_report_table;
    case "format helpers" test_report_formats;
    slow_case "experiment renderers (smoke)" test_experiments_smoke;
  ]
