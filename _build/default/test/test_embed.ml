module G = Bfly_graph.Graph
module Emb = Bfly_embed.Embedding
module Classic = Bfly_embed.Classic
module LB = Bfly_embed.Lower_bounds
module B = Bfly_networks.Butterfly
module W = Bfly_networks.Wrapped
open Tu

(* ---- embedding type ---- *)

let tiny_embedding () =
  (* path of 3 into triangle *)
  let guest = G.of_edge_list ~n:3 [ (0, 1); (1, 2) ] in
  let host = G.of_edge_list ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  Emb.make ~guest ~host ~node_map:[| 0; 1; 2 |]
    ~edge_paths:[| [ 0; 1 ]; [ 1; 0; 2 ] |]

let test_measures () =
  let e = tiny_embedding () in
  check "load" 1 (Emb.load e);
  check "dilation" 2 (Emb.dilation e);
  check "congestion" 2 (Emb.congestion e);
  Alcotest.(check (option int)) "uniform load" (Some 1) (Emb.uniform_load e)

let test_validation_rejects_bad_path () =
  let guest = G.of_edge_list ~n:2 [ (0, 1) ] in
  let host = G.of_edge_list ~n:3 [ (0, 1); (1, 2) ] in
  Alcotest.check_raises "non-edge"
    (Invalid_argument "Embedding.make: path uses a non-edge") (fun () ->
      ignore
        (Emb.make ~guest ~host ~node_map:[| 0; 2 |] ~edge_paths:[| [ 0; 2 ] |]));
  Alcotest.check_raises "wrong endpoints"
    (Invalid_argument "Embedding.make: path endpoints mismatch") (fun () ->
      ignore
        (Emb.make ~guest ~host ~node_map:[| 0; 2 |] ~edge_paths:[| [ 0; 1 ] |]))

(* ---- Lemma 3.1: K_{n,n} into B_n ---- *)

let test_knn_into_butterfly () =
  List.iter
    (fun log_n ->
      let b = B.create ~log_n in
      let n = 1 lsl log_n in
      let e = Classic.knn_into_butterfly b in
      check "load 1" 1 (Emb.load e);
      check "dilation log n" log_n (Emb.dilation e);
      check "congestion n/2 (Lemma 3.1)" (max 1 (n / 2)) (Emb.congestion e))
    [ 1; 2; 3; 4; 5 ]

let test_input_bisection_bound () =
  (* the Lemma 3.1 bound equals n *)
  List.iter
    (fun log_n ->
      let b = B.create ~log_n in
      check "bound = n" (1 lsl log_n) (LB.input_bisection_bound b))
    [ 1; 2; 3; 4; 5; 6 ]

(* ---- Theorem 4.3 / Section 1.4: K_N embeddings ---- *)

let test_kn_into_wrapped () =
  let w = W.of_inputs 8 in
  let e = Classic.kn_into_wrapped w in
  check "load 1" 1 (Emb.load e);
  checkb "dilation <= 3 log n - 2" true (Emb.dilation e <= (3 * 3) - 2);
  (* expansion lower bound is sound: EE >= k(N-k)/c *)
  let g = W.graph w in
  List.iter
    (fun k ->
      let ee, _ = Bfly_expansion.Expansion.ee_exact g ~k in
      checkb "embedding EE bound sound" true (LB.ee_via_kn e ~k <= ee))
    [ 2; 4; 8; 12 ]

let test_kn_into_butterfly () =
  let b = B.of_inputs 8 in
  let e = Classic.kn_into_butterfly b in
  check "load 1" 1 (Emb.load e);
  checkb "dilation <= 3 log n" true (Emb.dilation e <= 9);
  let bw = 8 (* exact BW(B_8) *) in
  checkb "BW bound sound" true
    (LB.bw_via e ~guest_bw:(Bfly_networks.Complete.bw_k_n (B.size b)) <= bw)

let test_double_kn () =
  let b = B.of_inputs 4 in
  let e = Classic.double_kn_into_butterfly b in
  check "load 1" 1 (Emb.load e);
  check "guest is 2K_N" (12 * 11) (G.n_edges (Emb.guest e))

(* ---- Lemma 2.10: B_k into B_n ---- *)

let test_butterfly_into_butterfly () =
  List.iter
    (fun (i, j, log_n) ->
      let host = B.create ~log_n in
      let e, guest = Classic.butterfly_into_butterfly ~i ~j host in
      check "dilation 1 (property 1)" 1 (max 1 (Emb.dilation e));
      checkb "dilation at most 1" true (Emb.dilation e <= 1);
      (* property 2: congestion exactly 2^j *)
      let mn, mx, _ = Emb.congestion_stats e in
      check "congestion uniform min" (1 lsl j) mn;
      check "congestion uniform max" (1 lsl j) mx;
      check "guest dimension" (log_n + j) (B.log_n guest);
      (* property 5: level i of the host carries (j+1) 2^j guest nodes *)
      let counts = Array.make (B.size host) 0 in
      Array.iter (fun h -> counts.(h) <- counts.(h) + 1) (Emb.node_map e);
      List.iter
        (fun v -> check "middle load" ((j + 1) * (1 lsl j)) counts.(v))
        (B.level_nodes host i);
      (* properties 3-4: uniform load 2^j off the fold level *)
      if i > 0 then
        List.iter
          (fun v -> check "top load" (1 lsl j) counts.(v))
          (B.level_nodes host 0);
      if i < log_n then
        List.iter
          (fun v -> check "bottom load" (1 lsl j) counts.(v))
          (B.level_nodes host log_n))
    [ (1, 1, 2); (2, 1, 3); (0, 2, 2); (3, 1, 3); (1, 2, 2) ]

(* ---- Lemma 2.11: B_n into MOS ---- *)

let test_butterfly_into_mos () =
  List.iter
    (fun (t1, t3, log_n) ->
      let b = B.create ~log_n in
      let e, mos = Classic.butterfly_into_mos ~t1 ~t3 b in
      checkb "dilation <= 1" true (Emb.dilation e <= 1);
      let mn, mx, _ = Emb.congestion_stats e in
      let expected = 2 * (1 lsl (log_n - t1 - t3)) in
      check "congestion uniform (property 2)" expected mn;
      check "congestion uniform max" expected mx;
      (* property 3-5 loads *)
      let counts = Array.make (G.n_nodes (Bfly_networks.Mesh_of_stars.graph mos)) 0 in
      Array.iter (fun h -> counts.(h) <- counts.(h) + 1) (Emb.node_map e);
      let n = 1 lsl log_n in
      List.iter
        (fun v -> check "M1 load" (t1 * n / (1 lsl t3)) counts.(v))
        (Bfly_networks.Mesh_of_stars.m1_nodes mos);
      List.iter
        (fun v -> check "M3 load" (t3 * n / (1 lsl t1)) counts.(v))
        (Bfly_networks.Mesh_of_stars.m3_nodes mos);
      List.iter
        (fun v ->
          check "M2 load"
            ((log_n - t1 - t3 + 1) * n / (1 lsl (t1 + t3)))
            counts.(v))
        (Bfly_networks.Mesh_of_stars.m2_nodes mos))
    [ (1, 1, 2); (1, 1, 4); (2, 1, 4); (1, 2, 4); (2, 2, 4); (2, 2, 6) ]

(* ---- Lemma 3.3: W_n into CCC ---- *)

let test_wrapped_into_ccc () =
  List.iter
    (fun log_n ->
      let w = W.create ~log_n in
      let e, _ = Classic.wrapped_into_ccc w in
      check "load 1" 1 (Emb.load e);
      check "congestion 2 (Lemma 3.3)" 2 (Emb.congestion e);
      checkb "dilation <= 2" true (Emb.dilation e <= 2))
    [ 2; 3; 4; 5 ]

let test_ccc_bw_lower_bound () =
  List.iter
    (fun log_n ->
      let c = Bfly_networks.Ccc.create ~log_n in
      check "bound n/2" (1 lsl (log_n - 1)) (LB.ccc_bw_lower_bound c))
    [ 2; 3; 4 ]

(* ---- hypercube ---- *)

let test_butterfly_into_hypercube () =
  List.iter
    (fun log_n ->
      let b = B.create ~log_n in
      let e, q = Classic.butterfly_into_hypercube b in
      check "load 1" 1 (Emb.load e);
      checkb "constant dilation" true (Emb.dilation e <= 4);
      checkb "constant congestion" true (Emb.congestion e <= 6);
      checkb "host large enough" true
        (Bfly_networks.Hypercube.size q >= B.size b))
    [ 1; 2; 3; 4 ]

let suite =
  [
    case "measures on a tiny embedding" test_measures;
    case "validation" test_validation_rejects_bad_path;
    case "Lemma 3.1: K_{n,n} into B_n" test_knn_into_butterfly;
    case "Lemma 3.1: input-bisection bound = n" test_input_bisection_bound;
    case "Theorem 4.3: K_N into W_n" test_kn_into_wrapped;
    case "K_N into B_n" test_kn_into_butterfly;
    case "Section 1.4: 2K_N into B_n" test_double_kn;
    case "Lemma 2.10: B_k into B_n, all five properties" test_butterfly_into_butterfly;
    case "Lemma 2.11: B_n into MOS, properties 1-5" test_butterfly_into_mos;
    case "Lemma 3.3: W_n into CCC_n, congestion 2" test_wrapped_into_ccc;
    case "Lemma 3.3: CCC lower bound n/2" test_ccc_bw_lower_bound;
    case "B_n into hypercube, constant everything" test_butterfly_into_hypercube;
  ]
