(* Lemma 2.5 executable: the Beneš-into-butterfly embedding and the
   edge-disjoint port routing it powers, plus the Lemma 2.8 certificate. *)

module B = Bfly_networks.Butterfly
module R = Bfly_embed.Rearrange
module E = Bfly_embed.Embedding
module Bitset = Bfly_graph.Bitset
module Perm = Bfly_graph.Perm
open Tu

let test_embedding_properties () =
  (* Lemma 2.5's proof device: load 1, congestion 1, dilation 3 *)
  List.iter
    (fun log_n ->
      let b = B.create ~log_n in
      let e, benes = R.benes_into_butterfly b in
      check "load 1" 1 (E.load e);
      check "congestion 1" 1 (E.congestion e);
      check "dilation 3" 3 (E.dilation e);
      check "guest dimension" (log_n - 1) (Bfly_networks.Benes.dim benes))
    [ 2; 3; 4; 5; 6 ]

let test_io_partition () =
  let b = B.of_inputs 8 in
  let i, o = R.io_partition b in
  check "|I| = n/2" 4 (List.length i);
  check "|O| = n/2" 4 (List.length o);
  List.iter (fun v -> check "I on level 0" 0 (B.level_of b v)) i;
  List.iter
    (fun v -> check "I has even columns" 0 (B.col_of b v mod 2))
    i;
  List.iter
    (fun v -> check "O has odd columns" 1 (B.col_of b v mod 2))
    o

let test_route_identity () =
  let b = B.of_inputs 8 in
  let paths = R.route_ports b (Perm.identity 8) in
  check "n paths" 8 (Array.length paths);
  checkb "edge disjoint" true (R.paths_edge_disjoint b paths);
  Array.iteri
    (fun q path ->
      check "starts at I column" (2 * (q / 2)) (B.col_of b (List.hd path));
      let last = List.nth path (List.length path - 1) in
      check "ends at O column" ((2 * (q / 2)) + 1) (B.col_of b last);
      check "both ends on level 0" 0
        (B.level_of b (List.hd path) + B.level_of b last))
    paths

let prop_lemma_2_5 =
  qcheck ~count:60 "Lemma 2.5: every port bijection routes edge-disjointly"
    QCheck2.Gen.(pair (int_range 2 6) (int_range 0 100000))
    (fun (log_n, seed) ->
      let rng = Random.State.make [| seed |] in
      let b = B.create ~log_n in
      let p = Perm.random ~rng (B.n b) in
      let paths = R.route_ports b p in
      R.paths_edge_disjoint b paths
      && Array.for_all (fun path -> List.length path >= 1) paths
      && (let ok = ref true in
          Array.iteri
            (fun q path ->
              let last = List.nth path (List.length path - 1) in
              if
                B.col_of b last <> (2 * (Perm.apply p q / 2)) + 1
                || B.level_of b last <> 0
              then ok := false)
            paths;
          !ok))

let test_path_lengths () =
  (* through the dilation-3 embedding, every routed path has at most
     3·(2 log n - 2) hops *)
  let b = B.of_inputs 16 in
  let rng = Random.State.make [| 9 |] in
  let p = Perm.random ~rng 16 in
  let paths = R.route_ports b p in
  Array.iter
    (fun path ->
      checkb "bounded length" true (List.length path - 1 <= 3 * ((2 * 4) - 2)))
    paths

let prop_lemma_2_8_certificate =
  qcheck ~count:80 "Lemma 2.8: certified crossing paths bound any cut"
    QCheck2.Gen.(pair (int_range 2 5) (int_range 0 100000))
    (fun (log_n, seed) ->
      let rng = Random.State.make [| seed |] in
      let b = B.create ~log_n in
      let size = B.size b in
      let k = Random.State.int rng (size + 1) in
      let side = Bitset.create size in
      let p = Perm.random ~rng size in
      for i = 0 to k - 1 do
        Bitset.add side (Perm.apply p i)
      done;
      let bound, paths = R.input_cut_certificate b side in
      let cap = Bfly_graph.Traverse.boundary_edges (B.graph b) side in
      let l0 =
        List.fold_left
          (fun acc v -> if Bitset.mem side v then acc + 1 else acc)
          0 (B.inputs b)
      in
      bound = 2 * min l0 (B.n b - l0)
      && cap >= bound
      && R.paths_edge_disjoint b paths)

let test_certificate_on_input_bisections () =
  (* a cut bisecting the inputs is certified at >= n — Lemma 3.1 recovered
     constructively *)
  let b = B.of_inputs 8 in
  let side = Bfly_cuts.Constructions.butterfly_column_cut b in
  let bound, paths = R.input_cut_certificate b side in
  check "bound n" 8 bound;
  check "eight crossing paths" 8 (Array.length paths);
  checkb "disjoint" true (R.paths_edge_disjoint b paths)

let test_requires_dim_2 () =
  let b = B.of_inputs 2 in
  Alcotest.check_raises "log n >= 2"
    (Invalid_argument "Rearrange: requires log n >= 2") (fun () ->
      ignore (R.route_ports b (Perm.identity 2)))

let suite =
  [
    case "Lemma 2.5 embedding: load 1, congestion 1, dilation 3"
      test_embedding_properties;
    case "Lemma 2.5 I/O partition" test_io_partition;
    case "identity port routing" test_route_identity;
    prop_lemma_2_5;
    case "dilation bounds path lengths" test_path_lengths;
    prop_lemma_2_8_certificate;
    case "input bisections certified at n (Lemma 3.1)" test_certificate_on_input_bisections;
    case "dimension guard" test_requires_dim_2;
  ]
