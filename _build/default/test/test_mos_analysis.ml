module M = Bfly_mos.Mos_analysis
open Tu

let close = Alcotest.(check (float 1e-9))

let test_f_values () =
  close "f(1,1)" 1.0 (M.f 1.0 1.0);
  close "f(1/2,1/2)" 0.5 (M.f 0.5 0.5);
  close "f at argmin" M.f_min (M.f M.f_argmin M.f_argmin);
  close "f(1,0)" 1.0 (M.f 1.0 0.0)

let test_f_min_is_min_on_grid () =
  (* Lemma 2.18: sqrt 2 - 1 is the global minimum over D *)
  let ok = ref true in
  for a = 0 to 200 do
    for b = 0 to 200 do
      let x = float_of_int a /. 200. and y = float_of_int b /. 200. in
      if x +. y >= 1.0 && M.f x y < M.f_min -. 1e-12 then ok := false
    done
  done;
  checkb "no grid point beats sqrt 2 - 1" true !ok

let test_capacity_at_brute_force () =
  (* the greedy closed form equals brute-force placement of middles for a
     tiny mesh: j = 2, enumerate all middle subsets *)
  let j = 2 in
  let mos = Bfly_networks.Mesh_of_stars.create ~j ~k:j in
  let g = Bfly_networks.Mesh_of_stars.graph mos in
  for a = 0 to j do
    for b = 0 to j do
      for m2 = 0 to j * j do
        (* brute force: all placements with the given side counts *)
        let best = ref max_int in
        let size = Bfly_networks.Mesh_of_stars.size mos in
        for mask = 0 to (1 lsl size) - 1 do
          let count_in level_nodes =
            List.fold_left
              (fun acc v -> if (mask lsr v) land 1 = 1 then acc + 1 else acc)
              0 level_nodes
          in
          if
            count_in (Bfly_networks.Mesh_of_stars.m1_nodes mos) = a
            && count_in (Bfly_networks.Mesh_of_stars.m3_nodes mos) = b
            && count_in (Bfly_networks.Mesh_of_stars.m2_nodes mos) = m2
          then begin
            let side = Bfly_graph.Bitset.create size in
            for v = 0 to size - 1 do
              if (mask lsr v) land 1 = 1 then Bfly_graph.Bitset.add side v
            done;
            let c = Bfly_graph.Traverse.boundary_edges g side in
            if c < !best then best := c
          end
        done;
        check
          (Printf.sprintf "capacity_at a=%d b=%d m2=%d" a b m2)
          !best
          (M.capacity_at ~j ~a ~b ~m2_in_a:m2)
      done
    done
  done

let test_lemma_2_17_agrees () =
  (* for even j and x + y >= 1 the closed form matches f(x,y) j^2 at the
     balanced middle count *)
  List.iter
    (fun j ->
      for a = 0 to j do
        for b = 0 to j do
          if a + b >= j then
            check
              (Printf.sprintf "j=%d a=%d b=%d" j a b)
              (M.lemma_2_17_value j a b)
              (M.capacity_at ~j ~a ~b ~m2_in_a:(j * j / 2))
        done
      done)
    [ 2; 4; 8; 16 ]

let test_bw_m2_matches_brute () =
  List.iter
    (fun j -> check (Printf.sprintf "j=%d" j) (M.bw_m2_brute j) (M.bw_m2 j))
    [ 1; 2; 3 ]

let test_bw_m2_brute_j4 () =
  check "j=4" (M.bw_m2_brute 4) (M.bw_m2 4)

let test_density_above_limit () =
  (* Lemma 2.19: density strictly above sqrt 2 - 1, decreasing toward it *)
  let densities =
    List.map
      (fun j ->
        let _, d, _ = M.convergence_row j in
        d)
      [ 2; 8; 32; 128; 512 ]
  in
  List.iter
    (fun d -> checkb "above the limit" true (d > M.f_min))
    densities;
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-12 && non_increasing rest
    | _ -> true
  in
  checkb "monotone toward the limit on doubling j" true (non_increasing densities)

let test_butterfly_lower_bound () =
  check "LB(B_2)" 2 (M.butterfly_lower_bound 2);
  check "LB(B_8)" 7 (M.butterfly_lower_bound 8);
  (* the bound approaches 0.8284 n *)
  let lb = M.butterfly_lower_bound 1024 in
  checkb "LB(B_1024)/1024 in (0.82, 0.83)" true
    (float_of_int lb /. 1024. > 0.82 && float_of_int lb /. 1024. < 0.83);
  Alcotest.check_raises "rejects non powers of two"
    (Invalid_argument
       "Mos_analysis.butterfly_lower_bound: n must be a power of two >= 2")
    (fun () -> ignore (M.butterfly_lower_bound 12))

let test_lower_bound_below_construction () =
  (* soundness: certified LB <= capacity of every constructed bisection *)
  List.iter
    (fun log_n ->
      let b = Bfly_networks.Butterfly.create ~log_n in
      let n = 1 lsl log_n in
      let _, cost, _ = Bfly_cuts.Constructions.best_mos_pullback b in
      checkb "LB <= constructed UB" true (M.butterfly_lower_bound n <= cost))
    [ 2; 3; 4; 6; 8; 10 ]

let suite =
  [
    case "f values (Lemma 2.17)" test_f_values;
    case "Lemma 2.18: global minimum" test_f_min_is_min_on_grid;
    slow_case "closed form = brute force on MOS_{2,2}" test_capacity_at_brute_force;
    case "Lemma 2.17 formula agreement" test_lemma_2_17_agrees;
    case "bw_m2 = brute force (j <= 3)" test_bw_m2_matches_brute;
    slow_case "bw_m2 = brute force (j = 4)" test_bw_m2_brute_j4;
    case "Lemma 2.19: density decreasing toward sqrt 2 - 1" test_density_above_limit;
    case "Lemma 2.13: certified butterfly lower bound" test_butterfly_lower_bound;
    case "lower bound below constructions" test_lower_bound_below_construction;
  ]
