module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module Cut = Bfly_cuts.Cut
module Cons = Bfly_cuts.Constructions
module Compact = Bfly_cuts.Compact
module B = Bfly_networks.Butterfly
module W = Bfly_networks.Wrapped
module C = Bfly_networks.Ccc
open Tu

let cap g side = Bfly_graph.Traverse.boundary_edges g side

(* ---- folklore cuts ---- *)

let test_column_cut_butterfly () =
  List.iter
    (fun log_n ->
      let b = B.create ~log_n in
      let side = Cons.butterfly_column_cut b in
      let c = Cut.make (B.graph b) side in
      check "capacity n" (1 lsl log_n) (Cut.capacity c);
      checkb "bisection" true (Cut.is_bisection c))
    [ 1; 2; 3; 4; 5; 6 ]

let test_column_cut_wrapped () =
  List.iter
    (fun log_n ->
      let w = W.create ~log_n in
      let side = Cons.wrapped_column_cut w in
      let c = Cut.make (W.graph w) side in
      check "capacity n" (1 lsl log_n) (Cut.capacity c);
      checkb "bisection" true (Cut.is_bisection c))
    [ 2; 3; 4; 5; 6 ]

let test_dimension_cut_ccc () =
  List.iter
    (fun log_n ->
      let net = C.create ~log_n in
      let side = Cons.ccc_dimension_cut net in
      let c = Cut.make (C.graph net) side in
      check "capacity n/2" (1 lsl (log_n - 1)) (Cut.capacity c);
      checkb "bisection" true (Cut.is_bisection c))
    [ 2; 3; 4; 5 ]

let test_hypercube_cut () =
  let h = Bfly_networks.Hypercube.create ~dim:5 in
  let side = Cons.hypercube_cut h in
  check "capacity 2^(d-1)" 16 (cap (Bfly_networks.Hypercube.graph h) side)

(* ---- MOS pullback ---- *)

let test_mos_predicted_matches_measured () =
  (* the closed form must equal the measured capacity for every feasible
     parameter choice on mid-size instances *)
  List.iter
    (fun log_n ->
      let b = B.create ~log_n in
      for t1 = 1 to log_n - 1 do
        for t3 = 1 to log_n - t1 do
          let jj = 1 lsl t3 and kk = 1 lsl t1 in
          List.iter
            (fun (r1, r3) ->
              let params = { Cons.t1; t3; r1; r3 } in
              match Cons.mos_predicted_cost b params with
              | None -> ()
              | Some predicted ->
                  let side = Cons.mos_pullback_cut b params in
                  let cut = Cut.make (B.graph b) side in
                  check
                    (Format.asprintf "B_2^%d %a" log_n Cons.pp_mos_params params)
                    predicted (Cut.capacity cut);
                  checkb "bisection" true (Cut.is_bisection cut))
            [
              (jj / 2, kk / 2); (jj, kk); (0, 0); (jj, 0);
              ((jj / 2) + 1, kk / 2); (1, kk - 1);
            ]
        done
      done)
    [ 2; 3; 4; 5; 6 ]

let test_best_mos_pullback () =
  List.iter
    (fun log_n ->
      let b = B.create ~log_n in
      let _, cost, side = Cons.best_mos_pullback b in
      let cut = Cut.make (B.graph b) side in
      check "cost matches" cost (Cut.capacity cut);
      checkb "bisection" true (Cut.is_bisection cut);
      checkb "never worse than folklore" true (cost <= 1 lsl log_n))
    [ 2; 3; 4; 6; 8 ]

let test_mos_pullback_beats_folklore_large () =
  let b = B.create ~log_n:10 in
  let _, cost, _ = Cons.best_mos_pullback b in
  checkb "sub-n bisection at n = 1024 (Theorem 2.20)" true (cost < 1024)

let test_mos_param_validation () =
  let b = B.create ~log_n:4 in
  Alcotest.check_raises "t1 = 0 rejected"
    (Invalid_argument "Constructions.mos: need 1 <= t1, 1 <= t3, t1+t3 <= log n")
    (fun () -> ignore (Cons.mos_predicted_cost b { Cons.t1 = 0; t3 = 1; r1 = 0; r3 = 0 }))

(* ---- compactness (Lemmas 2.8, 2.9, 2.15) ---- *)

let test_lemma_2_8 () =
  (* U = levels 1..log n is compact in B_4 — verified over all cuts *)
  let b = B.of_inputs 4 in
  let u = Bitset.create (B.size b) in
  List.iter (fun l -> List.iter (Bitset.add u) (B.level_nodes b l)) [ 1; 2 ];
  checkb "Lemma 2.8 on B_4" true (Compact.is_compact (B.graph b) u)

let test_lemma_2_8_dual () =
  (* by the reversal automorphism, levels 0..log n - 1 are compact too *)
  let b = B.of_inputs 4 in
  let u = Bitset.create (B.size b) in
  List.iter (fun l -> List.iter (Bitset.add u) (B.level_nodes b l)) [ 0; 1 ];
  checkb "dual of Lemma 2.8" true (Compact.is_compact (B.graph b) u)

let test_lemma_2_9 () =
  let b = B.of_inputs 4 in
  List.iter
    (fun (lo, hi) ->
      for cls = 0 to B.component_count b ~lo ~hi - 1 do
        let s = Bitset.create (B.size b) in
        List.iter (Bitset.add s) (B.component_nodes b ~lo ~hi cls);
        checkb "component compact" true (Compact.is_compact (B.graph b) s)
      done)
    [ (1, 2); (2, 2) ]

let test_singletons_trivially_compact () =
  (* no cut can split a singleton, so every singleton is compact *)
  let b = B.of_inputs 4 in
  let u = Bitset.of_list (B.size b) [ B.node b ~col:0 ~level:1 ] in
  checkb "singleton compact" true (Compact.is_compact (B.graph b) u)

let test_non_compact_counterexample () =
  (* two inputs on opposite sides of the column cut are NOT compact:
     moving either across strands it deep in foreign territory *)
  let b = B.of_inputs 4 in
  let u =
    Bitset.of_list (B.size b)
      [ B.node b ~col:0 ~level:0; B.node b ~col:3 ~level:0 ]
  in
  match Compact.counterexample (B.graph b) u with
  | Some cut ->
      let base = cap (B.graph b) cut in
      let with_u = cap (B.graph b) (Bitset.union cut u) in
      let without_u = cap (B.graph b) (Bitset.diff cut u) in
      checkb "counterexample is genuine" true (min with_u without_u > base)
  | None -> Alcotest.fail "expected the antipodal input pair to be non-compact"

let test_lemma_2_6 () =
  (* U compact in the subgraph induced by U ∪ N(U) implies compact in G:
     verify both sides for the Lemma 2.9 components of B_4 *)
  let b = B.of_inputs 4 in
  let g = B.graph b in
  for cls = 0 to 1 do
    let u = Bitset.create (B.size b) in
    List.iter (Bitset.add u) (B.component_nodes b ~lo:1 ~hi:2 cls);
    let closure =
      Bitset.union u (Bfly_graph.Traverse.neighbors_of_set g u)
    in
    let sub, ids = G.induced g closure in
    let u_sub = Bitset.create (G.n_nodes sub) in
    Array.iteri (fun i id -> if Bitset.mem u id then Bitset.add u_sub i) ids;
    checkb "compact in the induced closure" true (Compact.is_compact sub u_sub);
    checkb "compact in G (Lemma 2.6's conclusion)" true (Compact.is_compact g u)
  done

let test_lemma_2_7 () =
  (* every connected component of a compact set is compact: U = levels 1..2
     of B_4 is compact; its components are the two middle blocks *)
  let b = B.of_inputs 4 in
  let g = B.graph b in
  let u = Bitset.create (B.size b) in
  List.iter (fun l -> List.iter (Bitset.add u) (B.level_nodes b l)) [ 1; 2 ];
  checkb "U compact" true (Compact.is_compact g u);
  let sub, ids = G.induced g u in
  let uf = Bfly_graph.Traverse.components sub in
  List.iter
    (fun members ->
      let comp = Bitset.create (B.size b) in
      List.iter (fun i -> Bitset.add comp ids.(i)) members;
      checkb "component compact (Lemma 2.7)" true (Compact.is_compact g comp))
    (Bfly_graph.Union_find.classes uf)

let test_lemma_2_15_amenable () =
  (* a middle component with upper neighbors in A and lower neighbors in
     A-bar is amenable for any such cut *)
  let b = B.of_inputs 8 in
  let g = B.graph b in
  let comp = B.component_nodes b ~lo:1 ~hi:2 1 in
  let u = Bitset.create (B.size b) in
  List.iter (Bitset.add u) comp;
  let nbrs = Bfly_graph.Traverse.neighbors_of_set g u in
  (* two different base cuts, both respecting the level-side condition *)
  List.iter
    (fun extra ->
      let cut = Bitset.create (B.size b) in
      Bitset.iter nbrs (fun v -> if B.level_of b v = 0 then Bitset.add cut v);
      List.iter (Bitset.add cut) extra;
      checkb "amenable" true (Compact.amenable_check g cut u))
    [ []; comp; [ B.node b ~col:7 ~level:3 ] ]

let suite =
  [
    case "folklore column cut of B_n has capacity n" test_column_cut_butterfly;
    case "column cut of W_n has capacity n (Lemma 3.2 UB)" test_column_cut_wrapped;
    case "dimension cut of CCC_n has capacity n/2 (Lemma 3.3 UB)" test_dimension_cut_ccc;
    case "hypercube dimension cut" test_hypercube_cut;
    slow_case "MOS pullback: closed form = measured, all params" test_mos_predicted_matches_measured;
    case "best MOS pullback is a valid bisection" test_best_mos_pullback;
    case "MOS pullback beats folklore at n=1024" test_mos_pullback_beats_folklore_large;
    case "MOS parameter validation" test_mos_param_validation;
    case "Lemma 2.8: inner levels compact (exhaustive)" test_lemma_2_8;
    case "Lemma 2.8 dual via reversal" test_lemma_2_8_dual;
    case "Lemma 2.9: components compact (exhaustive)" test_lemma_2_9;
    case "Lemma 2.6: compactness lifts from the closure" test_lemma_2_6;
    case "Lemma 2.7: components of compact sets" test_lemma_2_7;
    case "singletons are compact" test_singletons_trivially_compact;
    case "non-compact counterexample" test_non_compact_counterexample;
    case "Lemma 2.15: middle components amenable" test_lemma_2_15_amenable;
  ]
