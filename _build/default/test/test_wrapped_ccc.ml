module W = Bfly_networks.Wrapped
module C = Bfly_networks.Ccc
module B = Bfly_networks.Butterfly
module G = Bfly_graph.Graph
module Traverse = Bfly_graph.Traverse
module Perm = Bfly_graph.Perm
open Tu

(* ---- wrapped butterfly ---- *)

let test_w_sizes () =
  List.iter
    (fun log_n ->
      let w = W.create ~log_n in
      let n = 1 lsl log_n in
      check "N = n log n" (n * log_n) (W.size w);
      check "edges = 2 n log n" (2 * n * log_n) (G.n_edges (W.graph w)))
    [ 2; 3; 4; 5 ]

let test_w_regular () =
  (* every node of W_n has degree 4 (Section 1.4) *)
  let w = W.of_inputs 16 in
  let g = W.graph w in
  for v = 0 to W.size w - 1 do
    check "4-regular" 4 (G.degree g v)
  done

let test_w4_multigraph () =
  (* log n = 2: both boundaries connect levels 0 and 1; straight edges are
     parallel *)
  let w = W.create ~log_n:2 in
  checkb "W_4 is a multigraph" false (G.is_simple (W.graph w));
  checkb "W_8 is simple" true (G.is_simple (W.graph (W.create ~log_n:3)))

let test_w_diameter () =
  List.iter
    (fun log_n ->
      let w = W.create ~log_n in
      check
        (Printf.sprintf "diameter of W_%d = floor(3 log n/2)" (1 lsl log_n))
        (W.theoretical_diameter w)
        (Traverse.diameter (W.graph w)))
    [ 2; 3; 4; 5; 6 ]

let test_w_rotation_automorphism () =
  List.iter
    (fun log_n ->
      let w = W.create ~log_n in
      let g = W.graph w in
      let p = W.rotation_automorphism w in
      checkb "rotation is an automorphism" true (G.equal g (G.relabel g p));
      (* composing log n times yields the identity *)
      let rec iterate q k = if k = 0 then q else iterate (Perm.compose p q) (k - 1) in
      checkb "order divides log n" true
        (Perm.is_identity (iterate (Perm.identity (W.size w)) log_n)))
    [ 2; 3; 4 ]

let test_w_column_xor () =
  let w = W.of_inputs 8 in
  let g = W.graph w in
  for c = 0 to 7 do
    checkb "xor automorphism" true
      (G.equal g (G.relabel g (W.column_xor_automorphism w c)))
  done

let test_w_unfold () =
  let w = W.of_inputs 8 in
  let b, map = W.unfold_to_butterfly w in
  check "butterfly size" 32 (B.size b);
  check "map size" (W.size w) (Array.length map);
  (* every W_n edge must exist in B_n after splitting level 0, except the
     wrap edges which connect to the new output level *)
  let ok = ref true in
  G.iter_edges (W.graph w) (fun u v ->
      let exists_direct = G.mem_edge (B.graph b) map.(u) map.(v) in
      let exists_wrapped =
        (* wrap edge: one endpoint on level 0; its image may be the output
           copy instead *)
        let relocate x =
          if W.level_of w x = 0 then
            B.node b ~col:(W.col_of w x) ~level:(B.log_n b)
          else map.(x)
        in
        G.mem_edge (B.graph b) (relocate u) map.(v)
        || G.mem_edge (B.graph b) map.(u) (relocate v)
      in
      if not (exists_direct || exists_wrapped) then ok := false);
  checkb "unfolding preserves edges" true !ok

let test_w_sub_butterfly () =
  let w = W.of_inputs 32 in
  let nodes = W.sub_butterfly_nodes w ~top_level:2 ~dim:2 ~col:0 in
  check "size (dim+1) 2^dim" 12 (List.length nodes);
  (* wraps around the level boundary *)
  let nodes' = W.sub_butterfly_nodes w ~top_level:4 ~dim:2 ~col:0 in
  check "wrapping window size" 12 (List.length nodes')

(* ---- cube-connected cycles ---- *)

let test_ccc_sizes () =
  List.iter
    (fun log_n ->
      let c = C.create ~log_n in
      let n = 1 lsl log_n in
      check "N = n log n" (n * log_n) (C.size c);
      (* cycle edges n·log n plus cross edges n·log n / 2 *)
      check "edges" (n * log_n * 3 / 2) (G.n_edges (C.graph c)))
    [ 2; 3; 4; 5 ]

let test_ccc_3_regular () =
  let c = C.create ~log_n:3 in
  let g = C.graph c in
  for v = 0 to C.size c - 1 do
    check "3-regular" 3 (G.degree g v)
  done

let test_ccc_connected () =
  checkb "CCC_16 connected" true (Traverse.is_connected (C.graph (C.create ~log_n:4)))

let test_ccc_adjacency () =
  (* paper definition: ⟨w,i⟩ ~ ⟨w',i⟩ iff w,w' differ exactly in bit
     position i (1-based); plus cycle edges *)
  let c = C.create ~log_n:4 in
  let ok = ref true in
  G.iter_edges (C.graph c) (fun u v ->
      let wu = C.cycle_of c u and wv = C.cycle_of c v in
      let pu = C.pos_of c u and pv = C.pos_of c v in
      if wu = wv then begin
        (* cycle edge: positions adjacent mod log n *)
        if (pu + 1) mod 4 <> pv && (pv + 1) mod 4 <> pu then ok := false
      end
      else begin
        if pu <> pv then ok := false;
        if wu lxor wv <> C.cross_mask c pu then ok := false
      end);
  checkb "adjacency matches definition" true !ok

let suite =
  [
    case "W sizes" test_w_sizes;
    case "W is 4-regular" test_w_regular;
    case "W_4 multigraph, W_8 simple" test_w4_multigraph;
    case "W diameter = floor(3 log n / 2)" test_w_diameter;
    case "W rotation automorphism" test_w_rotation_automorphism;
    case "W column-xor automorphisms" test_w_column_xor;
    case "W unfolds into B (Lemma 3.2 transmutation)" test_w_unfold;
    case "W sub-butterflies" test_w_sub_butterfly;
    case "CCC sizes" test_ccc_sizes;
    case "CCC is 3-regular" test_ccc_3_regular;
    case "CCC connected" test_ccc_connected;
    case "CCC adjacency matches definition" test_ccc_adjacency;
  ]
