(* Beneš, mesh of stars, hypercube, shuffle-exchange, de Bruijn, complete
   graphs, port variants, rendering. *)

module Benes = Bfly_networks.Benes
module Mos = Bfly_networks.Mesh_of_stars
module H = Bfly_networks.Hypercube
module SE = Bfly_networks.Shuffle_exchange
module DB = Bfly_networks.De_bruijn
module Complete = Bfly_networks.Complete
module Variants = Bfly_networks.Variants
module Render = Bfly_networks.Render
module B = Bfly_networks.Butterfly
module G = Bfly_graph.Graph
module Traverse = Bfly_graph.Traverse
module Perm = Bfly_graph.Perm
module Bitset = Bfly_graph.Bitset
open Tu

(* ---- Beneš ---- *)

let test_benes_structure () =
  List.iter
    (fun dim ->
      let b = Benes.create ~dim in
      let n = 1 lsl dim in
      check "levels" ((2 * dim) + 1) (Benes.levels b);
      check "size" (n * ((2 * dim) + 1)) (Benes.size b);
      check "edges" (4 * n * dim) (G.n_edges (Benes.graph b));
      if dim >= 1 then
        checkb "connected" true (Traverse.is_connected (Benes.graph b)))
    [ 0; 1; 2; 3; 4 ]

let test_benes_identity_routing () =
  let b = Benes.create ~dim:3 in
  let paths = Benes.route_ports b (Perm.identity 16) in
  check "one path per port" 16 (Array.length paths);
  checkb "edge disjoint" true (Benes.paths_edge_disjoint b paths);
  Array.iteri
    (fun q path ->
      check "starts at input column" (q / 2) (Benes.col_of b (List.hd path));
      check "starts at level 0" 0 (Benes.level_of b (List.hd path));
      let last = List.nth path (List.length path - 1) in
      check "ends at own column" (q / 2) (Benes.col_of b last);
      check "ends at last level" 6 (Benes.level_of b last))
    paths

let test_benes_random_routing () =
  (* Lemma 2.5 / Section 1.5 rearrangeability *)
  let rng = Random.State.make [| 1234 |] in
  List.iter
    (fun dim ->
      let b = Benes.create ~dim in
      for _ = 1 to 25 do
        let p = Perm.random ~rng (2 * Benes.n b) in
        let paths = Benes.route_ports b p in
        checkb "edge disjoint" true (Benes.paths_edge_disjoint b paths);
        Array.iteri
          (fun q path ->
            let last = List.nth path (List.length path - 1) in
            check "delivered to p(q)/2" (Perm.apply p q / 2) (Benes.col_of b last))
          paths
      done)
    [ 1; 2; 3; 4; 5 ]

let test_benes_node_load () =
  (* every node carries at most 2 of the 2n paths *)
  let rng = Random.State.make [| 99 |] in
  let b = Benes.create ~dim:4 in
  let p = Perm.random ~rng 32 in
  let paths = Benes.route_ports b p in
  let load = Array.make (Benes.size b) 0 in
  Array.iter (List.iter (fun v -> load.(v) <- load.(v) + 1)) paths;
  checkb "node load at most 2" true (Array.for_all (fun l -> l <= 2) load)

let test_benes_column_routing () =
  let b = Benes.create ~dim:3 in
  let p = Perm.of_array [| 7; 6; 5; 4; 3; 2; 1; 0 |] in
  let paths = Benes.route_columns b p in
  checkb "edge disjoint" true (Benes.paths_edge_disjoint b paths);
  Array.iteri
    (fun q path ->
      let last = List.nth path (List.length path - 1) in
      check "column routed" (Perm.apply p (q / 2)) (Benes.col_of b last))
    paths

(* ---- mesh of stars ---- *)

let test_mos_structure () =
  let m = Mos.create ~j:3 ~k:5 in
  check "size" (3 + 15 + 5) (Mos.size m);
  check "edges = 2jk" 30 (G.n_edges (Mos.graph m));
  checkb "connected" true (Traverse.is_connected (Mos.graph m));
  (* M2 nodes have degree 2; M1 degree k; M3 degree j *)
  List.iter (fun v -> check "M1 degree" 5 (G.degree (Mos.graph m) v)) (Mos.m1_nodes m);
  List.iter (fun v -> check "M2 degree" 2 (G.degree (Mos.graph m) v)) (Mos.m2_nodes m);
  List.iter (fun v -> check "M3 degree" 3 (G.degree (Mos.graph m) v)) (Mos.m3_nodes m)

let test_mos_coords () =
  let m = Mos.create ~j:4 ~k:4 in
  for a = 0 to 3 do
    for b = 0 to 3 do
      let v = Mos.m2_node m ~a ~b in
      Alcotest.(check (pair int int)) "coords roundtrip" (a, b) (Mos.m2_coords m v);
      checkb "edge to M1" true (G.mem_edge (Mos.graph m) v (Mos.m1_node m a));
      checkb "edge to M3" true (G.mem_edge (Mos.graph m) v (Mos.m3_node m b))
    done
  done;
  check "m2 set size" 16 (Bitset.cardinal (Mos.m2_set m))

(* ---- hypercube, shuffle-exchange, de Bruijn ---- *)

let test_hypercube () =
  let h = H.create ~dim:4 in
  check "size" 16 (H.size h);
  check "edges = d 2^(d-1)" 32 (G.n_edges (H.graph h));
  check "diameter = d" 4 (Traverse.diameter (H.graph h));
  check "bw" 8 (H.theoretical_bw h);
  for v = 0 to 15 do
    check "d-regular" 4 (G.degree (H.graph h) v)
  done

let test_shuffle_exchange () =
  let s = SE.create ~dim:3 in
  check "size" 8 (SE.size s);
  checkb "connected" true (Traverse.is_connected (SE.graph s));
  checkb "degree at most 3" true (G.max_degree (SE.graph s) <= 3)

let test_de_bruijn () =
  let d = DB.create ~dim:3 in
  check "size" 8 (DB.size d);
  checkb "connected" true (Traverse.is_connected (DB.graph d));
  checkb "degree at most 4" true (G.max_degree (DB.graph d) <= 4);
  check "diameter at most dim" 3 (min 3 (Traverse.diameter (DB.graph d)))

(* ---- complete graphs ---- *)

let test_complete () =
  let g = Complete.k_n 6 in
  check "K_6 edges" 15 (G.n_edges g);
  check "BW(K_6)" 9 (Complete.bw_k_n 6);
  check "BW(K_7)" 12 (Complete.bw_k_n 7);
  check "EE(K_6, 2)" 8 (Complete.ee_k_n 6 2);
  let d = Complete.double_k_n 4 in
  check "2K_4 edges" 12 (G.n_edges d);
  checkb "2K multigraph" false (G.is_simple d);
  let kb = Complete.k_bipartite 3 4 in
  check "K_{3,4} edges" 12 (G.n_edges kb);
  check "left degree" 4 (G.degree kb 0);
  check "right degree" 3 (G.degree kb 3)

let test_brute_bw_k_n () =
  (* the closed form matches brute force *)
  for n = 2 to 8 do
    check "BW(K_n) brute" (brute_bw (Complete.k_n n)) (Complete.bw_k_n n)
  done

(* ---- port variants ---- *)

let test_omega () =
  let o = Variants.omega 16 in
  check "real nodes = |B_8|" 32 o.Variants.real_nodes;
  (* every input has 2 ports, every output 2 ports: 8+8 inputs/outputs of
     B_8, 32 port nodes *)
  check "total nodes" (32 + 32) (G.n_nodes o.Variants.graph);
  (* EE over the whole graph-restricted set counts all ports: 4n per paper *)
  let all_real = Bitset.create 32 in
  for v = 0 to 31 do
    Bitset.add all_real v
  done;
  check "EE(Omega, all) = 4(n/2)... = 2n" 32 (Variants.port_expansion o all_real)

let test_fft () =
  let f = Variants.fft 8 in
  check "real nodes" 32 f.Variants.real_nodes;
  check "ports" (32 + 16) (G.n_nodes f.Variants.graph);
  let s = Bitset.create 32 in
  Bitset.add s 0;
  (* one input node: degree-2 butterfly edges + 1 port = 3 *)
  check "single input port expansion" 3 (Variants.port_expansion f s)

let test_snir_inequality () =
  (* Snir: C log C >= 4k for Omega_n; check on sub-butterfly-like sets *)
  let o = Variants.omega 16 in
  let b = o.Variants.butterfly in
  let s = Bitset.create (B.size b) in
  List.iter (Bitset.add s) (B.sub_butterfly_nodes b ~top_level:0 ~dim:2 ~col:0);
  checkb "Snir inequality holds" true (Variants.snir_inequality_holds o s)

(* ---- rendering ---- *)

let test_figure_1 () =
  let s = Render.figure_1 () in
  checkb "mentions B_8" true
    (String.length s > 100 && String.sub s 0 10 = "The 32-nod");
  (* 4 node rows of 8 'o's *)
  let drawing =
    (* skip the title line, which itself contains 'o' characters *)
    match String.index_opt s '\n' with
    | Some i -> String.sub s (i + 1) (String.length s - i - 1)
    | None -> s
  in
  let count_char c str =
    String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 str
  in
  check "32 nodes drawn" 32 (count_char 'o' drawing)

let test_dot_render () =
  let b = B.of_inputs 4 in
  let dot = Render.butterfly_dot b in
  checkb "has graph header" true (String.length dot > 20);
  check "one line per edge at least"
    (G.n_edges (B.graph b))
    (List.length
       (List.filter
          (fun l -> String.length l > 3 && String.contains l '-')
          (String.split_on_char '\n' dot))
     |> min (G.n_edges (B.graph b)))

let suite =
  [
    case "Benes structure" test_benes_structure;
    case "Benes identity routing" test_benes_identity_routing;
    slow_case "Benes: 125 random permutations (Lemma 2.5)" test_benes_random_routing;
    case "Benes node load <= 2" test_benes_node_load;
    case "Benes column routing" test_benes_column_routing;
    case "mesh of stars structure" test_mos_structure;
    case "mesh of stars coordinates" test_mos_coords;
    case "hypercube" test_hypercube;
    case "shuffle-exchange" test_shuffle_exchange;
    case "de Bruijn" test_de_bruijn;
    case "complete graphs" test_complete;
    case "BW(K_n) closed form vs brute" test_brute_bw_k_n;
    case "Snir's Omega_n" test_omega;
    case "Hong-Kung FFT_n" test_fft;
    case "Snir inequality" test_snir_inequality;
    case "Figure 1 rendering" test_figure_1;
    case "DOT rendering" test_dot_render;
  ]
