lib/expansion/expansion.ml: Array Bfly_graph Hashtbl List Random
