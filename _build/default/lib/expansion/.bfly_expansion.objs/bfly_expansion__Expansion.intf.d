lib/expansion/expansion.mli: Bfly_graph Random
