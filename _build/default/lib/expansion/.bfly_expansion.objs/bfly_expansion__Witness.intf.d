lib/expansion/witness.mli: Bfly_graph Bfly_networks
