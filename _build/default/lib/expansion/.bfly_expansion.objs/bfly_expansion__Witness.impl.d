lib/expansion/witness.ml: Bfly_graph Bfly_networks List
