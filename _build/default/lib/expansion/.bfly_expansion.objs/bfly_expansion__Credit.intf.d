lib/expansion/credit.mli: Bfly_graph Bfly_networks Format
