lib/expansion/credit.ml: Bfly_graph Bfly_networks Float Format Hashtbl List Option
