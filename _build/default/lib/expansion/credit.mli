(** Executable credit-distribution schemes (Lemmas 4.2, 4.5, 4.8, 4.11).

    Each node of a set [A] distributes one unit of credit down/up the
    complete binary trees [T_u], [T'_u] rooted at it; credit halves at each
    tree level and is retained by the first cut edge (edge schemes) or the
    first node outside [A] (node schemes) it meets, or by the tree leaves.
    The paper shows (1) at least [|A|·(1 − o(1))] credit lands on the cut,
    and (2) no cut edge/outside node retains more than a [Θ(log k)] cap —
    together a certified lower bound on [EE] or [NE] of the specific set.

    Credits are dyadic rationals with denominator at most [2^(log n + 2)],
    hence exactly representable in floats for every practical [n]. *)

type result = {
  set_size : int;  (** [k = |A|] *)
  retained : float;  (** total credit retained on the cut / on [N(A)] *)
  leaked : float;  (** credit retained by tree leaves inside [A] *)
  max_retained : float;  (** largest credit on one cut edge / one node *)
  cap : float;  (** the paper's per-edge/per-node cap used for certification *)
  certified : int;  (** [⌈retained / cap⌉] — a true lower bound *)
  actual : int;  (** the measured [C(A,Ā)] or [|N(A)|] of the set *)
}

val pp_result : Format.formatter -> result -> unit

(** Lemma 4.2: edge scheme on [W_n]; each [u ∈ A] sends ½ down and ½ up;
    cap [(⌊log k⌋ + 1)/4]. Certifies [EE(W_n, ·) >= certified] for [A]. *)
val wn_edge : Bfly_networks.Wrapped.t -> Bfly_graph.Bitset.t -> result

(** Lemma 4.5: node scheme on [W_n]; cap [⌊log k⌋] (1 when [k = 1]). *)
val wn_node : Bfly_networks.Wrapped.t -> Bfly_graph.Bitset.t -> result

(** Lemma 4.8: edge scheme on [B_n]; nodes in the top half send one unit
    down, others one unit up; cap [(⌊log k⌋ + 1)/2]. *)
val bn_edge : Bfly_networks.Butterfly.t -> Bfly_graph.Bitset.t -> result

(** Lemma 4.11: node scheme on [B_n]; cap [2⌊log k⌋] (1 when [k <= 2]). *)
val bn_node : Bfly_networks.Butterfly.t -> Bfly_graph.Bitset.t -> result

(** Closed-form bounds of Section 4.3, for the experiment tables. All take
    [k] and return the asymptotic main term (no [o(1)] corrections). *)
module Bounds : sig
  val ee_wn_lower : int -> float (* 4k/log k *)
  val ee_wn_upper : int -> float
  val ne_wn_lower : int -> float (* k/log k *)
  val ne_wn_upper : int -> float (* 3k/log k *)
  val ee_bn_lower : int -> float (* 2k/log k *)
  val ee_bn_upper : int -> float
  val ne_bn_lower : int -> float (* k/(2 log k) *)
  val ne_bn_upper : int -> float (* k/log k *)
end
