(** Witness sets achieving the paper's expansion upper bounds.

    Lemma 4.1: a d-dimensional sub-butterfly of [W_n] has edge expansion
    exactly [4·2^d] (two cut edges per input and per output).
    Lemma 4.4: two sibling d-dimensional sub-butterflies inside a common
    (d+1)-dimensional one have [3·2^(d+1)] neighbors.
    Lemma 4.7: a sub-butterfly of [B_n] anchored at level 0 has edge
    expansion [2·2^d] (its inputs are real inputs).
    Lemma 4.10: two siblings anchored at level [log n] have [2^(d+1)]
    neighbors (their outputs are real outputs).

    Each witness has [k = (d+1)·2^d] nodes (single sub-butterfly) or
    [k = 2(d+1)·2^d] (sibling pair). *)

(** [wn_ee ~dim w]: sub-butterfly of [W_n] at levels [0..dim], column 0
    window. Requires [dim < log n]. *)
val wn_ee : dim:int -> Bfly_networks.Wrapped.t -> Bfly_graph.Bitset.t

(** [wn_ne ~dim w]: sibling pair inside a (dim+1)-dimensional sub-butterfly
    of [W_n]. Requires [dim + 2 < log n] — with fewer levels to spare the
    wraparound identifies the neighbor level below the pair with the
    neighbor level above it and the count degenerates. *)
val wn_ne : dim:int -> Bfly_networks.Wrapped.t -> Bfly_graph.Bitset.t

(** [bn_ee ~dim b]: sub-butterfly of [B_n] anchored at level 0.
    Requires [dim <= log n]. *)
val bn_ee : dim:int -> Bfly_networks.Butterfly.t -> Bfly_graph.Bitset.t

(** [bn_ne ~dim b]: sibling pair whose outputs lie on level [log n].
    Requires [dim + 1 <= log n]. *)
val bn_ne : dim:int -> Bfly_networks.Butterfly.t -> Bfly_graph.Bitset.t

(** Expected set sizes: [(dim+1)·2^dim] and [2(dim+1)·2^dim]. *)
val single_size : dim:int -> int

val pair_size : dim:int -> int
