module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module Butterfly = Bfly_networks.Butterfly
module Wrapped = Bfly_networks.Wrapped

type result = {
  set_size : int;
  retained : float;
  leaked : float;
  max_retained : float;
  cap : float;
  certified : int;
  actual : int;
}

let pp_result ppf r =
  Format.fprintf ppf
    "{k=%d; retained=%.4f; leaked=%.4f; max=%.4f; cap=%.3f; certified=%d; actual=%d}"
    r.set_size r.retained r.leaked r.max_retained r.cap r.certified r.actual

let log2_floor k =
  assert (k >= 1);
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
  go 0 k

type mode = Edge_scheme | Node_scheme

(* One flow from root [w, level] with initial credit [credit], taking
   [steps] halving steps. [child_cols ~level col] lists the two columns one
   step onward together with the next level; [member] tests A-membership by
   node index; [node] builds indices. Retention is accumulated into
   [acc_edge]/[acc_node]; leaf credit inside A into [leak]. *)
let flow ~mode ~node ~member ~child ~steps ~root_col ~root_level ~credit ~acc
    ~leak =
  let frontier = Hashtbl.create 16 in
  Hashtbl.replace frontier root_col credit;
  let level = ref root_level in
  for depth = 0 to steps - 1 do
    let next = Hashtbl.create (2 * Hashtbl.length frontier) in
    let next_level = ref !level in
    Hashtbl.iter
      (fun col c ->
        let parent = node ~col ~level:!level in
        let half = c /. 2.0 in
        List.iter
          (fun (ycol, ylevel) ->
            next_level := ylevel;
            let y = node ~col:ycol ~level:ylevel in
            let is_last = depth = steps - 1 in
            match mode with
            | Edge_scheme ->
                if member parent <> member y then begin
                  let key = (min parent y, max parent y) in
                  Hashtbl.replace acc key
                    (half +. Option.value ~default:0.0 (Hashtbl.find_opt acc key))
                end
                else if is_last then leak := !leak +. half
                else
                  Hashtbl.replace next ycol
                    (half +. Option.value ~default:0.0 (Hashtbl.find_opt next ycol))
            | Node_scheme ->
                if not (member y) then
                  Hashtbl.replace acc (y, y)
                    (half +. Option.value ~default:0.0 (Hashtbl.find_opt acc (y, y)))
                else if is_last then leak := !leak +. half
                else
                  Hashtbl.replace next ycol
                    (half +. Option.value ~default:0.0 (Hashtbl.find_opt next ycol)))
          (child ~level:!level ~col))
      frontier;
    Hashtbl.reset frontier;
    Hashtbl.iter (Hashtbl.replace frontier) next;
    level := !next_level
  done

let summarize ~mode ~g ~side ~cap_of_k acc leak =
  let k = Bitset.cardinal side in
  let retained = Hashtbl.fold (fun _ c a -> a +. c) acc 0.0 in
  let max_retained = Hashtbl.fold (fun _ c a -> Float.max a c) acc 0.0 in
  let cap = cap_of_k k in
  let certified =
    if retained <= 0.0 then 0 else int_of_float (ceil ((retained /. cap) -. 1e-9))
  in
  let actual =
    match mode with
    | Edge_scheme -> Bfly_graph.Traverse.boundary_edges g side
    | Node_scheme -> Bitset.cardinal (Bfly_graph.Traverse.neighbors_of_set g side)
  in
  { set_size = k; retained; leaked = !leak; max_retained; cap; certified; actual }

(* ------------------------------------------------------------------ *)
(* Wrapped butterfly schemes                                           *)
(* ------------------------------------------------------------------ *)

let wn_scheme mode w side =
  let ell = Wrapped.log_n w in
  assert (Bitset.capacity side = Wrapped.size w);
  let member = Bitset.mem side in
  let node ~col ~level = Wrapped.node w ~col ~level in
  let child_down ~level ~col =
    let mask = Wrapped.cross_mask w level in
    let nl = (level + 1) mod ell in
    [ (col, nl); (col lxor mask, nl) ]
  in
  let child_up ~level ~col =
    let nl = (level - 1 + ell) mod ell in
    let mask = Wrapped.cross_mask w nl in
    [ (col, nl); (col lxor mask, nl) ]
  in
  let acc = Hashtbl.create 256 in
  let leak = ref 0.0 in
  Bitset.iter side (fun u ->
      let col = Wrapped.col_of w u and level = Wrapped.level_of w u in
      flow ~mode ~node ~member ~child:child_down ~steps:ell ~root_col:col
        ~root_level:level ~credit:0.5 ~acc ~leak;
      flow ~mode ~node ~member ~child:child_up ~steps:ell ~root_col:col
        ~root_level:level ~credit:0.5 ~acc ~leak);
  (acc, leak)

let wn_edge w side =
  let acc, leak = wn_scheme Edge_scheme w side in
  let cap_of_k k = float_of_int (log2_floor (max 1 k) + 1) /. 4.0 in
  summarize ~mode:Edge_scheme ~g:(Wrapped.graph w) ~side ~cap_of_k acc leak

let wn_node w side =
  let acc, leak = wn_scheme Node_scheme w side in
  let cap_of_k k =
    if k <= 1 then 1.0 else float_of_int (log2_floor k) |> Float.max 1.0
  in
  summarize ~mode:Node_scheme ~g:(Wrapped.graph w) ~side ~cap_of_k acc leak

(* ------------------------------------------------------------------ *)
(* Plain butterfly schemes                                             *)
(* ------------------------------------------------------------------ *)

let bn_scheme mode b side =
  let ell = Butterfly.log_n b in
  assert (Bitset.capacity side = Butterfly.size b);
  let member = Bitset.mem side in
  let node ~col ~level = Butterfly.node b ~col ~level in
  let child_down ~level ~col =
    let mask = Butterfly.cross_mask b level in
    [ (col, level + 1); (col lxor mask, level + 1) ]
  in
  let child_up ~level ~col =
    let mask = Butterfly.cross_mask b (level - 1) in
    [ (col, level - 1); (col lxor mask, level - 1) ]
  in
  let acc = Hashtbl.create 256 in
  let leak = ref 0.0 in
  let half_point = (ell + 1) / 2 in
  Bitset.iter side (fun u ->
      let col = Butterfly.col_of b u and level = Butterfly.level_of b u in
      if level < half_point then
        flow ~mode ~node ~member ~child:child_down ~steps:(ell - level)
          ~root_col:col ~root_level:level ~credit:1.0 ~acc ~leak
      else
        flow ~mode ~node ~member ~child:child_up ~steps:level ~root_col:col
          ~root_level:level ~credit:1.0 ~acc ~leak);
  (acc, leak)

let bn_edge b side =
  let acc, leak = bn_scheme Edge_scheme b side in
  let cap_of_k k = float_of_int (log2_floor (max 1 k) + 1) /. 2.0 in
  summarize ~mode:Edge_scheme ~g:(Butterfly.graph b) ~side ~cap_of_k acc leak

let bn_node b side =
  let acc, leak = bn_scheme Node_scheme b side in
  let cap_of_k k =
    if k <= 2 then 1.0 else Float.max 1.0 (2.0 *. float_of_int (log2_floor k))
  in
  summarize ~mode:Node_scheme ~g:(Butterfly.graph b) ~side ~cap_of_k acc leak

module Bounds = struct
  let log2 k = log (float_of_int k) /. log 2.0
  let guard k f = if k < 2 then 0.0 else f (float_of_int k) (log2 k)
  let ee_wn_lower k = guard k (fun kf l -> 4.0 *. kf /. l)
  let ee_wn_upper = ee_wn_lower
  let ne_wn_lower k = guard k (fun kf l -> kf /. l)
  let ne_wn_upper k = guard k (fun kf l -> 3.0 *. kf /. l)
  let ee_bn_lower k = guard k (fun kf l -> 2.0 *. kf /. l)
  let ee_bn_upper = ee_bn_lower
  let ne_bn_lower k = guard k (fun kf l -> kf /. (2.0 *. l))
  let ne_bn_upper k = guard k (fun kf l -> kf /. l)
end
