module Bitset = Bfly_graph.Bitset
module Butterfly = Bfly_networks.Butterfly
module Wrapped = Bfly_networks.Wrapped

let single_size ~dim = (dim + 1) * (1 lsl dim)
let pair_size ~dim = 2 * single_size ~dim

let of_nodes capacity nodes =
  let s = Bitset.create capacity in
  List.iter (Bitset.add s) nodes;
  s

let wn_ee ~dim w =
  of_nodes (Wrapped.size w) (Wrapped.sub_butterfly_nodes w ~top_level:0 ~dim ~col:0)

let wn_ne ~dim w =
  (* the enclosing (dim+1)-dimensional sub-butterfly spans levels
     0..dim+1; its two lower components span levels 1..dim+1 and are
     separated by the bit crossed at boundary 0 *)
  assert (dim + 2 < Wrapped.log_n w);
  let sibling_mask = Wrapped.cross_mask w 0 in
  let b' = Wrapped.sub_butterfly_nodes w ~top_level:1 ~dim ~col:0 in
  let b'' = Wrapped.sub_butterfly_nodes w ~top_level:1 ~dim ~col:sibling_mask in
  of_nodes (Wrapped.size w) (b' @ b'')

let bn_ee ~dim b =
  of_nodes (Butterfly.size b) (Butterfly.sub_butterfly_nodes b ~top_level:0 ~dim ~col:0)

let bn_ne ~dim b =
  let ell = Butterfly.log_n b in
  (* anchor the enclosing (dim+1)-dimensional sub-butterfly so its outputs
     are the real outputs: levels (log n - dim - 1)..log n; the two lower
     components span levels (log n - dim)..log n *)
  let top = ell - dim in
  let sibling_mask = Butterfly.cross_mask b (top - 1) in
  let b' = Butterfly.sub_butterfly_nodes b ~top_level:top ~dim ~col:0 in
  let b'' = Butterfly.sub_butterfly_nodes b ~top_level:top ~dim ~col:sibling_mask in
  of_nodes (Butterfly.size b) (b' @ b'')
