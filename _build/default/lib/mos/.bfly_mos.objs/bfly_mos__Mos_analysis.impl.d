lib/mos/mos_analysis.ml: Bfly_cuts Bfly_networks Float List
