lib/mos/mos_analysis.mli:
