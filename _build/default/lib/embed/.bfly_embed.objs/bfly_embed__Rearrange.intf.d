lib/embed/rearrange.mli: Bfly_graph Bfly_networks Embedding
