lib/embed/embedding.mli: Bfly_graph
