lib/embed/lower_bounds.mli: Bfly_networks Embedding
