lib/embed/rearrange.ml: Array Bfly_graph Bfly_networks Embedding Hashtbl List
