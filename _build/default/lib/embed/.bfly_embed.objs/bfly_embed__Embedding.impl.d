lib/embed/embedding.ml: Array Bfly_graph Hashtbl List Option
