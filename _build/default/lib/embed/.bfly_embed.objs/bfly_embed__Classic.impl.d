lib/embed/classic.ml: Array Bfly_graph Bfly_networks Embedding Hashtbl List Option
