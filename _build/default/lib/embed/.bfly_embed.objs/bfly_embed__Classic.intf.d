lib/embed/classic.mli: Bfly_networks Embedding
