lib/embed/lower_bounds.ml: Bfly_graph Bfly_networks Classic Embedding
