module G = Bfly_graph.Graph

type t = {
  guest : G.t;
  host : G.t;
  node_map : int array;
  edge_paths : int list array;
  multiplicity : (int * int, int) Hashtbl.t; (* host pair -> #parallel edges *)
}

let host_multiplicity host =
  let tbl = Hashtbl.create (G.n_edges host) in
  G.iter_edges host (fun u v ->
      let key = (min u v, max u v) in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)));
  tbl

let make ~guest ~host ~node_map ~edge_paths =
  if Array.length node_map <> G.n_nodes guest then
    invalid_arg "Embedding.make: node_map size mismatch";
  Array.iter
    (fun h ->
      if h < 0 || h >= G.n_nodes host then
        invalid_arg "Embedding.make: node_map out of host range")
    node_map;
  let guest_edges = G.edges guest in
  if Array.length edge_paths <> Array.length guest_edges then
    invalid_arg "Embedding.make: edge_paths size mismatch";
  Array.iteri
    (fun i path ->
      let u, v = guest_edges.(i) in
      let mu = node_map.(u) and mv = node_map.(v) in
      (match path with
      | [] -> invalid_arg "Embedding.make: empty path"
      | first :: _ ->
          let last = List.nth path (List.length path - 1) in
          let endpoints_ok =
            (first = mu && last = mv) || (first = mv && last = mu)
          in
          if not endpoints_ok then
            invalid_arg "Embedding.make: path endpoints mismatch");
      let rec check = function
        | a :: (b :: _ as rest) ->
            if not (G.mem_edge host a b) then
              invalid_arg "Embedding.make: path uses a non-edge";
            check rest
        | [ _ ] | [] -> ()
      in
      check path)
    edge_paths;
  { guest; host; node_map; edge_paths; multiplicity = host_multiplicity host }

let guest e = e.guest
let host e = e.host
let node_map e = Array.copy e.node_map
let edge_paths e = Array.copy e.edge_paths

let load e =
  let counts = Array.make (G.n_nodes e.host) 0 in
  Array.iter (fun h -> counts.(h) <- counts.(h) + 1) e.node_map;
  Array.fold_left max 0 counts

let uniform_load e =
  let counts = Array.make (G.n_nodes e.host) 0 in
  Array.iter (fun h -> counts.(h) <- counts.(h) + 1) e.node_map;
  let loads =
    Array.to_list counts |> List.filter (fun c -> c > 0) |> List.sort_uniq compare
  in
  match loads with [ l ] -> Some l | _ -> None

let edge_usage e =
  let usage = Hashtbl.create 1024 in
  Array.iter
    (fun path ->
      let rec walk = function
        | a :: (b :: _ as rest) ->
            let key = (min a b, max a b) in
            Hashtbl.replace usage key
              (1 + Option.value ~default:0 (Hashtbl.find_opt usage key));
            walk rest
        | [ _ ] | [] -> ()
      in
      walk path)
    e.edge_paths;
  usage

let congestion e =
  let usage = edge_usage e in
  Hashtbl.fold
    (fun key count acc ->
      let mult = Option.value ~default:1 (Hashtbl.find_opt e.multiplicity key) in
      max acc ((count + mult - 1) / mult))
    usage 0

let congestion_stats e =
  let usage = edge_usage e in
  let per_edge =
    Hashtbl.fold
      (fun key count acc ->
        let mult = Option.value ~default:1 (Hashtbl.find_opt e.multiplicity key) in
        ((count + mult - 1) / mult) :: acc)
      usage []
  in
  (* host edges never used count as zero *)
  let unused = Hashtbl.length e.multiplicity - List.length per_edge in
  let all = List.rev_append (List.init (max 0 unused) (fun _ -> 0)) per_edge in
  match all with
  | [] -> (0, 0, 0.)
  | _ ->
      let mn = List.fold_left min max_int all in
      let mx = List.fold_left max 0 all in
      let sum = List.fold_left ( + ) 0 all in
      (mn, mx, float_of_int sum /. float_of_int (List.length all))

let dilation e =
  Array.fold_left (fun acc p -> max acc (List.length p - 1)) 0 e.edge_paths
