(** The embeddings used by the paper's lower-bound arguments. Each builder
    returns a validated {!Embedding.t}; properties (load, congestion,
    dilation) are measured, not assumed, and tests compare them against the
    paper's claims. *)

(** Lemma 3.1: [K_{n,n}] into [B_n]. Left nodes ↦ inputs, right ↦ outputs,
    each edge ↦ the unique monotone path. Load 1, congestion [n/2],
    dilation [log n]. *)
val knn_into_butterfly : Bfly_networks.Butterfly.t -> Embedding.t

(** Theorem 4.3: [K_N] into [W_n] ([N = n·log n]) by three-phase paths
    (up the source column to level 0, a length-[log n] monotone walk to the
    target column, down to the target). Congestion [O(N log n)]. *)
val kn_into_wrapped : Bfly_networks.Wrapped.t -> Embedding.t

(** The analogous [K_N] into [B_n] ([N = n(log n + 1)]) via level-0
    transit; used for the [Θ(k/log k)] expansion bounds on [B_n]. *)
val kn_into_butterfly : Bfly_networks.Butterfly.t -> Embedding.t

(** Section 1.4: [2K_N] into [B_n] — each parallel pair routed once in each
    direction of the three-phase scheme. *)
val double_kn_into_butterfly : Bfly_networks.Butterfly.t -> Embedding.t

(** Lemma 2.10: [B_k] into [B_n], [k = n·2^j], with dilation 1, uniform
    congestion [2^j], and the level-collapse around level [i]. *)
val butterfly_into_butterfly :
  i:int -> j:int -> Bfly_networks.Butterfly.t -> Embedding.t * Bfly_networks.Butterfly.t
(** [butterfly_into_butterfly ~i ~j host] builds the guest [B_(n·2^j)]
    internally and returns it alongside the embedding. *)

(** Lemma 2.11: [B_n] into [MOS_{j,k}] with [t1 = log k] input levels and
    [t3 = log j] output levels collapsing onto M1/M3. Dilation 1,
    congestion [2n/(jk)]. *)
val butterfly_into_mos :
  t1:int -> t3:int -> Bfly_networks.Butterfly.t -> Embedding.t * Bfly_networks.Mesh_of_stars.t

(** Lemma 3.3: [W_n] into [CCC_n] with congestion 2 (cross edges take the
    two-step detour through the target position). *)
val wrapped_into_ccc : Bfly_networks.Wrapped.t -> Embedding.t * Bfly_networks.Ccc.t

(** The three-phase walk in [B_n] from one node to another (up the source
    column to level 0, monotone to the target column's output, up to the
    target level) used by {!kn_into_butterfly}; exposed for the routing
    workloads. *)
val butterfly_three_phase : Bfly_networks.Butterfly.t -> int -> int -> int list

(** The analogous walk in [W_n] used by {!kn_into_wrapped}. *)
val wrapped_three_phase : Bfly_networks.Wrapped.t -> int -> int -> int list

(** Section 1.5: [B_n] into the hypercube of dimension
    [log n + ⌈log(log n + 1)⌉] with constant load/congestion/dilation. *)
val butterfly_into_hypercube :
  Bfly_networks.Butterfly.t -> Embedding.t * Bfly_networks.Hypercube.t
