(** Embeddings of a guest network into a host network (Section 1.4): a map
    of guest nodes to host nodes and of guest edges to host paths.

    [edge_paths] is indexed like [Graph.edges guest] (normalized order).
    Paths are node sequences in the host; a path may have length 0 (a
    single node) when both endpoints of a guest edge share a host image —
    this occurs in the Lemma 2.10 butterfly-into-butterfly embedding.

    The quality measures are those of the paper: {e load} (guest nodes per
    host node), {e congestion} (guest paths per host edge) and {e dilation}
    (longest path, in edges). On multigraph hosts a path occupies one of
    the parallel edges, so congestion divides per-pair usage by the
    multiplicity (rounding up). *)

type t

(** [make ~guest ~host ~node_map ~edge_paths] validates and wraps:
    each path must start at the image of one endpoint and end at the
    other's, and consecutive path nodes must be host edges.
    @raise Invalid_argument on any violation. *)
val make :
  guest:Bfly_graph.Graph.t ->
  host:Bfly_graph.Graph.t ->
  node_map:int array ->
  edge_paths:int list array ->
  t

val guest : t -> Bfly_graph.Graph.t
val host : t -> Bfly_graph.Graph.t
val node_map : t -> int array
val edge_paths : t -> int list array
val load : t -> int
val congestion : t -> int
val dilation : t -> int

(** [uniform_load e] is [Some l] when every host node carries exactly [l]
    guest nodes... every host node in the image; [None] when loads differ.
    Restricted to host nodes that carry at least one guest node. *)
val uniform_load : t -> int option

(** Edge congestion histogram: for each host edge (per unordered pair,
    multiplicity-adjusted) the number of paths using it; returns
    [(min, max, mean)] over host edges. *)
val congestion_stats : t -> int * int * float
