module G = Bfly_graph.Graph
module Butterfly = Bfly_networks.Butterfly
module Wrapped = Bfly_networks.Wrapped
module Ccc = Bfly_networks.Ccc
module Mos = Bfly_networks.Mesh_of_stars
module Complete = Bfly_networks.Complete
module Hypercube = Bfly_networks.Hypercube

(* Build edge paths in Graph.edges order; [f u v occ] receives the
   normalized endpoints and the occurrence index among parallel copies. *)
let paths_for guest f =
  let seen = Hashtbl.create 64 in
  Array.map
    (fun (u, v) ->
      let occ = Option.value ~default:0 (Hashtbl.find_opt seen (u, v)) in
      Hashtbl.replace seen (u, v) (occ + 1);
      f u v occ)
    (G.edges guest)

let knn_into_butterfly b =
  let n = Butterfly.n b in
  let guest = Complete.k_bipartite n n in
  let node_map =
    Array.init (2 * n) (fun u ->
        if u < n then Butterfly.node b ~col:u ~level:0
        else Butterfly.node b ~col:(u - n) ~level:(Butterfly.log_n b))
  in
  let edge_paths =
    paths_for guest (fun u v _ ->
        (* u is a left node, v a right node (normalized order) *)
        Butterfly.monotone_path b ~input_col:u ~output_col:(v - n))
  in
  Embedding.make ~guest ~host:(Butterfly.graph b) ~node_map ~edge_paths

(* three-phase path in W_n from node u to node v *)
let wrapped_three_phase w u v =
  let ell = Wrapped.log_n w in
  let cu = Wrapped.col_of w u and iu = Wrapped.level_of w u in
  let cv = Wrapped.col_of w v and iv = Wrapped.level_of w v in
  let up = List.init (iu + 1) (fun s -> Wrapped.node w ~col:cu ~level:(iu - s)) in
  (* monotone walk of length ell from (cu,0) back to level 0 at column cv *)
  let monotone =
    let rec go t col acc =
      if t > ell then List.rev acc
      else begin
        let next_col =
          if t = ell then col
          else begin
            let mask = Wrapped.cross_mask w t in
            if (cu lxor cv) land mask <> 0 then col lxor mask else col
          end
        in
        go (t + 1) next_col (Wrapped.node w ~col ~level:(t mod ell) :: acc)
      end
    in
    (* skip the first node (cu,0): already the last of [up] *)
    List.tl (go 0 cu [])
  in
  let down =
    if iv = 0 then []
    else List.init (ell - iv) (fun s -> Wrapped.node w ~col:cv ~level:(ell - 1 - s))
  in
  up @ monotone @ down

let kn_into_wrapped w =
  let size = Wrapped.size w in
  let guest = Complete.k_n size in
  let node_map = Array.init size (fun i -> i) in
  let edge_paths = paths_for guest (fun u v _ -> wrapped_three_phase w u v) in
  Embedding.make ~guest ~host:(Wrapped.graph w) ~node_map ~edge_paths

(* three-phase path in B_n: up to level 0, monotone down to level log n in
   the target column, then up the target column *)
let butterfly_three_phase b u v =
  let ell = Butterfly.log_n b in
  let cu = Butterfly.col_of b u and iu = Butterfly.level_of b u in
  let cv = Butterfly.col_of b v and iv = Butterfly.level_of b v in
  let up = List.init (iu + 1) (fun s -> Butterfly.node b ~col:cu ~level:(iu - s)) in
  let monotone = List.tl (Butterfly.monotone_path b ~input_col:cu ~output_col:cv) in
  let back =
    List.init (ell - iv) (fun s -> Butterfly.node b ~col:cv ~level:(ell - 1 - s))
  in
  up @ monotone @ back

let kn_into_butterfly b =
  let size = Butterfly.size b in
  let guest = Complete.k_n size in
  let node_map = Array.init size (fun i -> i) in
  let edge_paths = paths_for guest (fun u v _ -> butterfly_three_phase b u v) in
  Embedding.make ~guest ~host:(Butterfly.graph b) ~node_map ~edge_paths

let double_kn_into_butterfly b =
  let size = Butterfly.size b in
  let guest = Complete.double_k_n size in
  let node_map = Array.init size (fun i -> i) in
  let edge_paths =
    paths_for guest (fun u v occ ->
        if occ = 0 then butterfly_three_phase b u v
        else List.rev (butterfly_three_phase b v u))
  in
  Embedding.make ~guest ~host:(Butterfly.graph b) ~node_map ~edge_paths

let butterfly_into_butterfly ~i ~j host =
  let ell = Butterfly.log_n host in
  if i < 0 || i > ell || j < 0 then
    invalid_arg "Classic.butterfly_into_butterfly: need 0 <= i <= log n, j >= 0";
  let guest_log = ell + j in
  let guest_b = Butterfly.create ~log_n:guest_log in
  let low_bits = ell - i in
  let image idx =
    let w = Butterfly.col_of guest_b idx and l = Butterfly.level_of guest_b idx in
    let w' =
      ((w lsr (guest_log - i)) lsl low_bits) lor (w land ((1 lsl low_bits) - 1))
    in
    let l' = if l < i then l else if l <= i + j then i else l - j in
    Butterfly.node host ~col:w' ~level:l'
  in
  let node_map = Array.init (Butterfly.size guest_b) image in
  let edge_paths =
    paths_for (Butterfly.graph guest_b) (fun u v _ ->
        let mu = node_map.(u) and mv = node_map.(v) in
        if mu = mv then [ mu ] else [ mu; mv ])
  in
  let e =
    Embedding.make ~guest:(Butterfly.graph guest_b) ~host:(Butterfly.graph host)
      ~node_map ~edge_paths
  in
  (e, guest_b)

let butterfly_into_mos ~t1 ~t3 b =
  let ell = Butterfly.log_n b in
  if t1 < 1 || t3 < 1 || t1 + t3 > ell then
    invalid_arg "Classic.butterfly_into_mos: need 1 <= t1, t3 and t1+t3 <= log n";
  let jj = 1 lsl t3 and kk = 1 lsl t1 in
  let mos = Mos.create ~j:jj ~k:kk in
  let image idx =
    let w = Butterfly.col_of b idx and l = Butterfly.level_of b idx in
    let a = w land (jj - 1) in
    let h = w lsr (ell - t1) in
    if l < t1 then Mos.m1_node mos a
    else if l > ell - t3 then Mos.m3_node mos h
    else Mos.m2_node mos ~a ~b:h
  in
  let node_map = Array.init (Butterfly.size b) image in
  let edge_paths =
    paths_for (Butterfly.graph b) (fun u v _ ->
        let mu = node_map.(u) and mv = node_map.(v) in
        if mu = mv then [ mu ] else [ mu; mv ])
  in
  let e =
    Embedding.make ~guest:(Butterfly.graph b) ~host:(Mos.graph mos) ~node_map
      ~edge_paths
  in
  (e, mos)

let wrapped_into_ccc w =
  let ell = Wrapped.log_n w in
  let ccc = Ccc.create ~log_n:ell in
  let node_map =
    Array.init (Wrapped.size w) (fun idx ->
        Ccc.node ccc ~cycle:(Wrapped.col_of w idx) ~pos:(Wrapped.level_of w idx))
  in
  let edge_paths =
    paths_for (Wrapped.graph w) (fun u v _ ->
        let cu = Wrapped.col_of w u and iu = Wrapped.level_of w u in
        let cv = Wrapped.col_of w v and iv = Wrapped.level_of w v in
        if cu = cv then [ node_map.(u); node_map.(v) ]
        else begin
          (* cross edge at boundary [b]: identified by its column mask.
             Cross within position b first, then take the cycle edge. *)
          let d = cu lxor cv in
          let b, c_from, c_to, l_to =
            if d = Wrapped.cross_mask w iu && (iu + 1) mod ell = iv then
              (iu, cu, cv, iv)
            else begin
              assert (d = Wrapped.cross_mask w iv && (iv + 1) mod ell = iu);
              (iv, cv, cu, iu)
            end
          in
          [
            Ccc.node ccc ~cycle:c_from ~pos:b;
            Ccc.node ccc ~cycle:c_to ~pos:b;
            Ccc.node ccc ~cycle:c_to ~pos:l_to;
          ]
        end)
  in
  let e =
    Embedding.make ~guest:(Wrapped.graph w) ~host:(Ccc.graph ccc) ~node_map
      ~edge_paths
  in
  (e, ccc)

let butterfly_into_hypercube b =
  let ell = Butterfly.log_n b in
  let levels = ell + 1 in
  let level_bits =
    let rec go bits = if 1 lsl bits >= levels then bits else go (bits + 1) in
    go 0
  in
  let q = Hypercube.create ~dim:(ell + level_bits) in
  let code ~col ~level = col lor (level lsl ell) in
  let node_map =
    Array.init (Butterfly.size b) (fun idx ->
        code ~col:(Butterfly.col_of b idx) ~level:(Butterfly.level_of b idx))
  in
  let edge_paths =
    paths_for (Butterfly.graph b) (fun u v _ ->
        let cu = Butterfly.col_of b u and iu = Butterfly.level_of b u in
        let cv = Butterfly.col_of b v and iv = Butterfly.level_of b v in
        (* flip the column bit first (if any), then each differing level bit *)
        let start = code ~col:cu ~level:iu in
        let after_col = code ~col:cv ~level:iu in
        let path = ref [ start ] in
        if after_col <> start then path := after_col :: !path;
        let cur = ref after_col in
        for bitpos = 0 to level_bits - 1 do
          let mask = 1 lsl (ell + bitpos) in
          if (iu lxor iv) land (1 lsl bitpos) <> 0 then begin
            cur := !cur lxor mask;
            path := !cur :: !path
          end
        done;
        List.rev !path)
  in
  let e =
    Embedding.make ~guest:(Butterfly.graph b) ~host:(Hypercube.graph q) ~node_map
      ~edge_paths
  in
  (e, q)
