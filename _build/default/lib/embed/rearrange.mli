(** Lemma 2.5, executable: the butterfly is rearrangeable from level 0.

    A (log n − 1)-dimensional Beneš network embeds into [B_n] with load 1,
    congestion 1 and dilation 3: the forward half folds onto the even
    columns ([(u,ℓ) ↦ (2u,ℓ)]), the backward half onto the odd columns
    ([(u, 2d'−t) ↦ (2u+1, t)] where [d' = log n − 1]), and each middle
    junction edge expands to a three-hop path through level [log n].
    The Beneš I and O nodes both land on level 0 — the even columns are
    Lemma 2.5's input set [I], the odd columns its output set [O].

    Composing the embedding with the looping algorithm
    ({!Bfly_networks.Benes.route_ports}) realizes any bijection of the [n]
    input ports (two per even column) onto the [n] output ports (two per
    odd column) by [n] pairwise edge-disjoint paths inside [B_n] — the
    rearrangeability property that powers the compactness Lemma 2.8. *)

(** [benes_into_butterfly b] — the embedding and its Beneš guest.
    Requires [log n >= 2]. Measured load 1, congestion 1, dilation 3. *)
val benes_into_butterfly :
  Bfly_networks.Butterfly.t -> Embedding.t * Bfly_networks.Benes.t

(** Lemma 2.5's partition of level 0: [(I, O)] = (even-column node indices,
    odd-column node indices). *)
val io_partition : Bfly_networks.Butterfly.t -> int list * int list

(** [route_ports b p] routes the port bijection [p] (a permutation of
    [0..n−1]; input port [q] belongs to [I]-column [2(q/2)], output port
    [p(q)] to [O]-column [2(p(q)/2)+1]). Returns [n] pairwise edge-disjoint
    walks in [B_n] from the input node to the output node.
    Requires [log n >= 2]. *)
val route_ports :
  Bfly_networks.Butterfly.t -> Bfly_graph.Perm.t -> int list array

(** Validity check: every walk uses existing edges and no edge twice. *)
val paths_edge_disjoint :
  Bfly_networks.Butterfly.t -> int list array -> bool

(** Lemma 2.8's quantitative core, executable: for any cut side [a] of
    [B_n], produce a port bijection that pairs every level-0 node of the
    minority side with majority-side partners, route it, and return the
    certified bound together with the witness paths — every returned path
    has its endpoints on opposite sides of the cut, and the paths are
    pairwise edge-disjoint, so
    [C(A, Ā) >= 2 · min(|A ∩ L0|, |Ā ∩ L0|)].
    Requires [log n >= 2]. *)
val input_cut_certificate :
  Bfly_networks.Butterfly.t -> Bfly_graph.Bitset.t -> int * int list array
