module G = Bfly_graph.Graph
module Perm = Bfly_graph.Perm
module B = Bfly_networks.Butterfly
module Benes = Bfly_networks.Benes

(* Image of Beneš node (col u, level ℓ) in B_n; d' = Benes dimension. *)
let node_image b ~d' ~u ~level =
  if level <= d' then B.node b ~col:(2 * u) ~level
  else B.node b ~col:((2 * u) + 1) ~level:((2 * d') - level)

(* Image of the Beneš edge from (u, ℓ) to (u', ℓ+1), as a B_n walk from the
   image of the first to the image of the second. Junction edges (ℓ = d')
   expand to three hops through level d = log n. *)
let edge_image b ~d' ~u ~level ~u' =
  let d = B.log_n b in
  let a = node_image b ~d' ~u ~level in
  let c = node_image b ~d' ~u:u' ~level:(level + 1) in
  if level <> d' then [ a; c ]
  else begin
    (* a = (2u, d-1); c = (2u'+1, d-2) with u' in {u, u lxor 1} *)
    let even = 2 * u and odd = (2 * u) + 1 in
    if u' = u then
      [ a; B.node b ~col:even ~level:d; B.node b ~col:odd ~level:(d - 1); c ]
    else
      [ a; B.node b ~col:odd ~level:d; B.node b ~col:odd ~level:(d - 1); c ]
  end

let check_dim b =
  if B.log_n b < 2 then
    invalid_arg "Rearrange: requires log n >= 2"

let benes_into_butterfly b =
  check_dim b;
  let d' = B.log_n b - 1 in
  let benes = Benes.create ~dim:d' in
  let node_map =
    Array.init (Benes.size benes) (fun idx ->
        node_image b ~d' ~u:(Benes.col_of benes idx) ~level:(Benes.level_of benes idx))
  in
  let edge_paths =
    Array.map
      (fun (x, y) ->
        let x, y =
          if Benes.level_of benes x <= Benes.level_of benes y then (x, y)
          else (y, x)
        in
        edge_image b ~d' ~u:(Benes.col_of benes x)
          ~level:(Benes.level_of benes x) ~u':(Benes.col_of benes y))
      (G.edges (Benes.graph benes))
  in
  let e =
    Embedding.make ~guest:(Benes.graph benes) ~host:(B.graph b) ~node_map
      ~edge_paths
  in
  (e, benes)

let io_partition b =
  List.partition (fun v -> B.col_of b v mod 2 = 0) (B.inputs b)

let route_ports b perm =
  check_dim b;
  let d' = B.log_n b - 1 in
  if Perm.size perm <> B.n b then
    invalid_arg "Rearrange.route_ports: permutation must act on n ports";
  let benes = Benes.create ~dim:d' in
  let benes_paths = Benes.route_ports benes perm in
  Array.map
    (fun path ->
      (* expand a Beneš walk edge by edge *)
      let rec expand = function
        | x :: (y :: _ as rest) ->
            let x', y' =
              if Benes.level_of benes x <= Benes.level_of benes y then (x, y)
              else (y, x)
            in
            let img =
              edge_image b ~d' ~u:(Benes.col_of benes x')
                ~level:(Benes.level_of benes x') ~u':(Benes.col_of benes y')
            in
            (* orient the image to follow the walk *)
            let img = if x' = x then img else List.rev img in
            (* drop the leading node: it is the previous segment's tail *)
            List.tl img @ expand rest
        | [ _ ] | [] -> []
      in
      match path with
      | [] -> []
      | first :: _ ->
          node_image b ~d' ~u:(Benes.col_of benes first)
            ~level:(Benes.level_of benes first)
          :: expand path)
    benes_paths

let input_cut_certificate b side =
  check_dim b;
  let module Bitset = Bfly_graph.Bitset in
  let n = B.n b in
  (* orient so that the minority of level 0 lies in [minor] *)
  let in_minor v = not (Bitset.mem side v) in
  let l0_in_side =
    List.fold_left
      (fun acc v -> if Bitset.mem side v then acc + 1 else acc)
      0 (B.inputs b)
  in
  let in_minor = if 2 * l0_in_side <= n then Bitset.mem side else in_minor in
  (* ports: input port q belongs to column 2(q/2); output port p to column
     2(p/2)+1. Classify by the side of the owning level-0 node. *)
  let input_node q = B.node b ~col:(2 * (q / 2)) ~level:0 in
  let output_node p = B.node b ~col:((2 * (p / 2)) + 1) ~level:0 in
  let in_ports_minor = ref [] and in_ports_major = ref [] in
  let out_ports_minor = ref [] and out_ports_major = ref [] in
  for q = n - 1 downto 0 do
    if in_minor (input_node q) then in_ports_minor := q :: !in_ports_minor
    else in_ports_major := q :: !in_ports_major;
    if in_minor (output_node q) then out_ports_minor := q :: !out_ports_minor
    else out_ports_major := q :: !out_ports_major
  done;
  (* Lemma 2.8's counting guarantees the majority side can absorb the
     minority's ports on the opposite end *)
  assert (List.length !in_ports_minor <= List.length !out_ports_major);
  assert (List.length !out_ports_minor <= List.length !in_ports_major);
  let perm = Array.make n (-1) in
  let take lst k =
    let rec go acc rest k =
      if k = 0 then (List.rev acc, rest)
      else
        match rest with
        | [] -> assert false
        | x :: tl -> go (x :: acc) tl (k - 1)
    in
    go [] lst k
  in
  let minor_out_targets, rest_major_out =
    take !out_ports_major (List.length !in_ports_minor)
  in
  List.iter2 (fun q p -> perm.(q) <- p) !in_ports_minor minor_out_targets;
  let major_in_for_minor_out, rest_major_in =
    take !in_ports_major (List.length !out_ports_minor)
  in
  List.iter2 (fun q p -> perm.(q) <- p) major_in_for_minor_out !out_ports_minor;
  List.iter2 (fun q p -> perm.(q) <- p) rest_major_in rest_major_out;
  let perm = Perm.of_array perm in
  let paths = route_ports b perm in
  (* keep exactly the crossing paths: one endpoint each side *)
  let crossing =
    Array.to_list paths
    |> List.filteri (fun q _ ->
           in_minor (input_node q) <> in_minor (output_node (Perm.apply perm q)))
    |> Array.of_list
  in
  (Array.length crossing, crossing)

let paths_edge_disjoint b paths =
  let used = Hashtbl.create 1024 in
  let g = B.graph b in
  let ok = ref true in
  Array.iter
    (fun path ->
      let rec walk = function
        | a :: (c :: _ as rest) ->
            if not (G.mem_edge g a c) then ok := false
            else begin
              let key = (min a c, max a c) in
              if Hashtbl.mem used key then ok := false
              else Hashtbl.replace used key ()
            end;
            walk rest
        | [ _ ] | [] -> ()
      in
      walk path)
    paths;
  !ok
