module G = Bfly_graph.Graph

let ceil_div a b = (a + b - 1) / b
let bw_bound ~guest_bw ~congestion = ceil_div guest_bw congestion

let assert_load_1 e = assert (Embedding.load e = 1)

let bw_via e ~guest_bw =
  assert_load_1 e;
  bw_bound ~guest_bw ~congestion:(Embedding.congestion e)

let ee_via_kn e ~k =
  assert_load_1 e;
  let n = G.n_nodes (Embedding.guest e) in
  ceil_div (k * (n - k)) (Embedding.congestion e)

let input_bisection_bound b =
  let e = Classic.knn_into_butterfly b in
  assert_load_1 e;
  let n = Bfly_networks.Butterfly.n b in
  (* a cut of K_{n,n} bisecting one side has capacity >= n²/2 (Lemma 3.1) *)
  ceil_div (n * n / 2) (Embedding.congestion e)

let wrapped_bw_lower_bound w =
  let b, _ = Bfly_networks.Wrapped.unfold_to_butterfly w in
  input_bisection_bound b

let ccc_bw_lower_bound c =
  let w = Bfly_networks.Wrapped.create ~log_n:(Bfly_networks.Ccc.log_n c) in
  let e, _ = Classic.wrapped_into_ccc w in
  assert_load_1 e;
  ceil_div (wrapped_bw_lower_bound w) (Embedding.congestion e)
