(** Embedding-based lower bounds (Section 1.4).

    Given an embedding of a guest [G] into a host [H] with load 1 and
    congestion [c], removing the host edges of a cut disconnects, in [G],
    at most [c] guest edges per host edge; hence
    [BW(H) >= BW(G)/c] and [EE(H,k) >= EE(G,k)/c]. *)

(** [bw_bound ~guest_bw ~congestion] is [⌈guest_bw / congestion⌉]. *)
val bw_bound : guest_bw:int -> congestion:int -> int

(** [bw_via e ~guest_bw] measures the congestion of [e] and applies
    {!bw_bound}. The caller must ensure the node map is injective (load 1);
    checked by assertion. *)
val bw_via : Embedding.t -> guest_bw:int -> int

(** [ee_via_kn e ~k] is the lower bound [⌈k(N−k)/c⌉] on [EE(host, k)]
    obtained when the guest is the complete graph [K_N] embedded with
    load 1 (Section 1.4). *)
val ee_via_kn : Embedding.t -> k:int -> int

(** Lemma 3.1's quantitative core: from the [K_{n,n}]-into-[B_n] embedding,
    any cut of [B_n] bisecting its inputs (or outputs, or inputs and
    outputs together) has capacity at least [⌈(n²/2)/c⌉] where [c] is the
    measured congestion — equal to [n] since [c = n/2]. *)
val input_bisection_bound : Bfly_networks.Butterfly.t -> int

(** [wrapped_bw_lower_bound w] is the Lemma 3.2 lower bound [BW(W_n) >= n],
    derived computationally: the wraparound argument reduces any bisection
    of [W_n] to a cut of [B_n] bisecting level 0, bounded by
    {!input_bisection_bound}. *)
val wrapped_bw_lower_bound : Bfly_networks.Wrapped.t -> int

(** [ccc_bw_lower_bound c] is Lemma 3.3's bound [BW(CCC_n) >= n/2]: the
    measured congestion-2 embedding of [W_n] divides
    {!wrapped_bw_lower_bound}. *)
val ccc_bw_lower_bound : Bfly_networks.Ccc.t -> int
