module G = Bfly_graph.Graph

type t = { dim : int; graph : G.t }

let rotate_left dim w =
  let top = (w lsr (dim - 1)) land 1 in
  ((w lsl 1) land ((1 lsl dim) - 1)) lor top

let create ~dim =
  if dim < 1 then invalid_arg "Shuffle_exchange.create: dim must be >= 1";
  let n = 1 lsl dim in
  let edges = ref [] in
  for w = 0 to n - 1 do
    if w land 1 = 0 then edges := (w, w lxor 1) :: !edges;
    let s = rotate_left dim w in
    (* one edge per unordered pair, skipping fixed points of the rotation *)
    if s > w then edges := (w, s) :: !edges
  done;
  { dim; graph = G.of_edge_list ~n !edges }

let dim t = t.dim
let size t = 1 lsl t.dim
let graph t = t.graph
