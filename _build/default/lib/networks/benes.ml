module G = Bfly_graph.Graph
module Perm = Bfly_graph.Perm

type t = { dim : int; n : int; graph : G.t }

(* Boundary ℓ (levels ℓ to ℓ+1) flips column bit dim-1-ℓ in the forward half
   and bit ℓ-dim in the mirrored half. *)
let boundary_mask dim level =
  if level < dim then 1 lsl (dim - 1 - level) else 1 lsl (level - dim)

let build_graph dim =
  let n = 1 lsl dim in
  let node ~col ~level = (level * n) + col in
  let edges = ref [] in
  for level = 0 to (2 * dim) - 1 do
    let mask = boundary_mask dim level in
    for w = 0 to n - 1 do
      edges := (node ~col:w ~level, node ~col:w ~level:(level + 1)) :: !edges;
      edges :=
        (node ~col:w ~level, node ~col:(w lxor mask) ~level:(level + 1)) :: !edges
    done
  done;
  G.of_edge_list ~n:(n * ((2 * dim) + 1)) !edges

let create ~dim =
  if dim < 0 then invalid_arg "Benes.create: negative dimension";
  { dim; n = 1 lsl dim; graph = build_graph dim }

let dim t = t.dim
let n t = t.n
let levels t = (2 * t.dim) + 1
let size t = t.n * levels t
let graph t = t.graph

let node t ~col ~level =
  assert (col >= 0 && col < t.n && level >= 0 && level <= 2 * t.dim);
  (level * t.n) + col

let col_of t idx = idx mod t.n
let level_of t idx = idx / t.n

(* Looping algorithm. [hi] is the fixed top column bits of the current
   sub-network, [r] its first level, [dcur] its dimension; [perm] the port
   permutation of size 2·2^dcur. Returns one node-list path per port. *)
let rec route_rec t hi r dcur (perm : int array) =
  let m = 1 lsl dcur in
  assert (Array.length perm = 2 * m);
  if dcur = 0 then begin
    let single = [ node t ~col:hi ~level:t.dim ] in
    [| single; single |]
  end
  else begin
    let half = m / 2 in
    let inv = Array.make (2 * m) 0 in
    Array.iteri (fun p q -> inv.(q) <- p) perm;
    (* 2-color ports so that the two ports of each input column and the two
       ports arriving at each output column get different colors. The
       constraint graph (in-partner [p lxor 1], out-partner below) is a union
       of even alternating cycles; walk each one, alternating colors. *)
    let color = Array.make (2 * m) (-1) in
    let out_partner p = inv.(perm.(p) lxor 1) in
    for p0 = 0 to (2 * m) - 1 do
      if color.(p0) < 0 then begin
        let p = ref p0 and c = ref 0 in
        let continue = ref true in
        while !continue do
          color.(!p) <- !c;
          let q = !p lxor 1 in
          color.(q) <- 1 - !c;
          let next = out_partner q in
          if color.(next) >= 0 then begin
            assert (color.(next) = !c);
            continue := false
          end
          else p := next (* its color must differ from q's, i.e. equal !c *)
        done
      end
    done;
    (* build the two sub-permutations *)
    let sub_perm = [| Array.make m (-1); Array.make m (-1) |] in
    let sub_port col = (2 * (col land (half - 1))) lor (col lsr (dcur - 1)) in
    for p = 0 to (2 * m) - 1 do
      let s = color.(p) in
      let c_in = p / 2 and c_out = perm.(p) / 2 in
      sub_perm.(s).(sub_port c_in) <- sub_port c_out
    done;
    let sub_paths =
      Array.init 2 (fun s ->
          route_rec t ((hi lsl 1) lor s) (r + 1) (dcur - 1) sub_perm.(s))
    in
    Array.init (2 * m) (fun p ->
        let s = color.(p) in
        let c_in = p / 2 and c_out = perm.(p) / 2 in
        let entry = node t ~col:((hi lsl dcur) lor c_in) ~level:r in
        let exit = node t ~col:((hi lsl dcur) lor c_out) ~level:((2 * t.dim) - r) in
        let middle = sub_paths.(s).(sub_port c_in) in
        (entry :: middle) @ [ exit ])
  end

let route_ports t perm =
  if Perm.size perm <> 2 * t.n then
    invalid_arg "Benes.route_ports: permutation must act on 2n ports";
  route_rec t 0 0 t.dim (Perm.to_array perm)

let route_columns t perm =
  if Perm.size perm <> t.n then
    invalid_arg "Benes.route_columns: permutation must act on n columns";
  let ports =
    Array.init (2 * t.n) (fun q -> (2 * Perm.apply perm (q / 2)) + (q mod 2))
  in
  route_rec t 0 0 t.dim ports

let paths_edge_disjoint t paths =
  let used = Hashtbl.create 1024 in
  let ok = ref true in
  Array.iter
    (fun path ->
      let rec walk = function
        | a :: (b :: _ as rest) ->
            if not (G.mem_edge t.graph a b) then ok := false
            else begin
              let key = (min a b, max a b) in
              if Hashtbl.mem used key then ok := false
              else Hashtbl.replace used key ();
              walk rest
            end
        | [ _ ] | [] -> ()
      in
      walk path)
    paths;
  !ok
