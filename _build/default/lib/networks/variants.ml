module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset

type t = {
  butterfly : Butterfly.t;
  graph : G.t;
  real_nodes : int;
  ports_per_input : int;
  ports_per_output : int;
}

let augment butterfly ~ports_per_input ~ports_per_output =
  let real = Butterfly.size butterfly in
  let edges = ref (Array.to_list (G.edges (Butterfly.graph butterfly))) in
  let next = ref real in
  let attach node count =
    for _ = 1 to count do
      edges := (node, !next) :: !edges;
      incr next
    done
  in
  List.iter (fun u -> attach u ports_per_input) (Butterfly.inputs butterfly);
  List.iter (fun u -> attach u ports_per_output) (Butterfly.outputs butterfly);
  {
    butterfly;
    graph = G.of_edge_list ~n:!next !edges;
    real_nodes = real;
    ports_per_input;
    ports_per_output;
  }

let omega n =
  if n < 2 || n land (n - 1) <> 0 then
    invalid_arg "Variants.omega: n must be a power of two >= 2";
  augment (Butterfly.of_inputs (n / 2)) ~ports_per_input:2 ~ports_per_output:2

let fft n =
  augment (Butterfly.of_inputs n) ~ports_per_input:1 ~ports_per_output:1

let port_expansion t s =
  assert (Bitset.capacity s = G.n_nodes t.graph || Bitset.capacity s = t.real_nodes);
  let full =
    if Bitset.capacity s = G.n_nodes t.graph then s
    else begin
      let f = Bitset.create (G.n_nodes t.graph) in
      Bitset.iter s (Bitset.add f);
      f
    end
  in
  Bfly_graph.Traverse.boundary_edges t.graph full

let snir_inequality_holds t s =
  let c = float_of_int (port_expansion t s) in
  let k = float_of_int (Bitset.cardinal s) in
  if k = 0. then true else c *. (log c /. log 2.) >= (4. *. k) -. 1e-9
