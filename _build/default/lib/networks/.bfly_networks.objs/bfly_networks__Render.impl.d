lib/networks/render.ml: Bfly_graph Buffer Butterfly Bytes String
