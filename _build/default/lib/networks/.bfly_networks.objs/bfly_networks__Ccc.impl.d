lib/networks/ccc.ml: Bfly_graph Printf String
