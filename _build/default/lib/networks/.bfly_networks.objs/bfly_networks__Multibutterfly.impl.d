lib/networks/multibutterfly.ml: Array Bfly_graph List Random
