lib/networks/render.mli: Bfly_graph Butterfly
