lib/networks/layout.ml: Array Butterfly List
