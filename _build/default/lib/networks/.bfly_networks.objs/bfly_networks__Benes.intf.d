lib/networks/benes.mli: Bfly_graph
