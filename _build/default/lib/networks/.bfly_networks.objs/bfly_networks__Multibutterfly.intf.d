lib/networks/multibutterfly.mli: Bfly_graph Random
