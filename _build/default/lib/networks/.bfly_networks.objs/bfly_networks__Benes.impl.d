lib/networks/benes.ml: Array Bfly_graph Hashtbl
