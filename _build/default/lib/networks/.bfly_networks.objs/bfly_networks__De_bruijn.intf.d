lib/networks/de_bruijn.mli: Bfly_graph
