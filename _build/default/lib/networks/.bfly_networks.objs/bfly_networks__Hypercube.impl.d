lib/networks/hypercube.ml: Bfly_graph
