lib/networks/shuffle_exchange.ml: Bfly_graph
