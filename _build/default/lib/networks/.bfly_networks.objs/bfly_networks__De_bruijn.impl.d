lib/networks/de_bruijn.ml: Array Bfly_graph
