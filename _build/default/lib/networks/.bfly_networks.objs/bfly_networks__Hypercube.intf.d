lib/networks/hypercube.mli: Bfly_graph
