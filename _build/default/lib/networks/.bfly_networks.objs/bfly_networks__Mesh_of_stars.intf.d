lib/networks/mesh_of_stars.mli: Bfly_graph
