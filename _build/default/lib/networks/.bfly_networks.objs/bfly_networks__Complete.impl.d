lib/networks/complete.ml: Bfly_graph
