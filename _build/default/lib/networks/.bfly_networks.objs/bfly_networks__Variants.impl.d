lib/networks/variants.ml: Array Bfly_graph Butterfly List
