lib/networks/ccc.mli: Bfly_graph
