lib/networks/butterfly.mli: Bfly_graph
