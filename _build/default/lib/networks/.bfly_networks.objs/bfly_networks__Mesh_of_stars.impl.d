lib/networks/mesh_of_stars.ml: Bfly_graph List Printf
