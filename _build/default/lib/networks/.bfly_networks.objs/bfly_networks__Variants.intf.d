lib/networks/variants.mli: Bfly_graph Butterfly
