lib/networks/shuffle_exchange.mli: Bfly_graph
