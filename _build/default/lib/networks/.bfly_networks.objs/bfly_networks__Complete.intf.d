lib/networks/complete.mli: Bfly_graph
