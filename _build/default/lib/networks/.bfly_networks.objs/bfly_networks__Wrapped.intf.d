lib/networks/wrapped.mli: Bfly_graph Butterfly
