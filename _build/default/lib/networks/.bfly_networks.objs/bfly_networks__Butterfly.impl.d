lib/networks/butterfly.ml: Array Bfly_graph List Printf String
