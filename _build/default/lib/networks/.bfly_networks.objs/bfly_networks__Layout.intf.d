lib/networks/layout.mli: Butterfly
