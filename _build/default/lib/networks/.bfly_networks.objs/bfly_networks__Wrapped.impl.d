lib/networks/wrapped.ml: Array Bfly_graph Butterfly List Printf String
