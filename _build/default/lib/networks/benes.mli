(** The d-dimensional Beneš network (Section 1.5): two back-to-back
    d-dimensional butterflies sharing their level-d nodes. Levels [0..2d],
    [n = 2^d] columns, [n(2d+1)] nodes; node index of [⟨w,ℓ⟩] is [ℓ·n + w].

    Each input column (level 0) carries two {e ports}, as does each output
    column (level 2d). The network is {e rearrangeable}: for any bijection
    of the [2n] input ports onto the [2n] output ports there are [2n]
    pairwise edge-disjoint paths linking each input port to its image
    ({!route_ports} implements the classic looping algorithm). *)

type t

val create : dim:int -> t
val dim : t -> int

(** Columns per level, [n = 2^dim]. *)
val n : t -> int

(** Number of levels, [2·dim + 1]. *)
val levels : t -> int

(** Total node count [n·(2 dim + 1)]. *)
val size : t -> int

val graph : t -> Bfly_graph.Graph.t
val node : t -> col:int -> level:int -> int
val col_of : t -> int -> int
val level_of : t -> int -> int

(** [route_ports t p] routes the port permutation [p] (a permutation of
    [0 .. 2n−1]; input port [q] lives at input column [q/2], output port
    [p(q)] at output column [p(q)/2]). Returns one path per input port, as a
    node list from level 0 to level [2·dim]. The paths are pairwise
    edge-disjoint and each node carries at most two of them. *)
val route_ports : t -> Bfly_graph.Perm.t -> int list array

(** [route_columns t p] routes a permutation of the [n] columns by sending
    both ports of column [c] to the ports of column [p(c)]; returns the
    [2n] port paths. *)
val route_columns : t -> Bfly_graph.Perm.t -> int list array

(** [paths_edge_disjoint t paths] checks that every path is a valid walk in
    the graph and that no undirected edge is used by two paths. *)
val paths_edge_disjoint : t -> int list array -> bool
