module G = Bfly_graph.Graph
module Perm = Bfly_graph.Perm

type t = { log_n : int; n : int; graph : G.t }

let build_graph log_n =
  let n = 1 lsl log_n in
  let node ~col ~level = (level * n) + col in
  let edges = ref [] in
  for i = 0 to log_n - 1 do
    let mask = 1 lsl (log_n - i - 1) in
    let next = (i + 1) mod log_n in
    for w = 0 to n - 1 do
      edges := (node ~col:w ~level:i, node ~col:w ~level:next) :: !edges;
      edges :=
        (node ~col:w ~level:i, node ~col:(w lxor mask) ~level:next) :: !edges
    done
  done;
  G.of_edge_list ~n:(n * log_n) !edges

let create ~log_n =
  if log_n < 2 then invalid_arg "Wrapped.create: log_n must be >= 2";
  { log_n; n = 1 lsl log_n; graph = build_graph log_n }

let of_inputs n =
  let rec log2 l v = if v = n then Some l else if v > n then None else log2 (l + 1) (v * 2) in
  match log2 0 1 with
  | Some log_n when log_n >= 2 -> create ~log_n
  | _ -> invalid_arg "Wrapped.of_inputs: need a power of two with log n >= 2"

let log_n t = t.log_n
let n t = t.n
let size t = t.n * t.log_n
let levels t = t.log_n
let graph t = t.graph

let node t ~col ~level =
  assert (col >= 0 && col < t.n && level >= 0 && level < t.log_n);
  (level * t.n) + col

let col_of t idx = idx mod t.n
let level_of t idx = idx / t.n
let cross_mask t i = 1 lsl (t.log_n - i - 1)
let level_nodes t i = List.init t.n (fun w -> node t ~col:w ~level:i)
let column_nodes t w = List.init t.log_n (fun i -> node t ~col:w ~level:i)

(* rotate the log_n-bit word right by one in bit-index space: bit j moves to
   bit (j-1) mod log_n *)
let rotate_right t w =
  let low = w land 1 in
  (w lsr 1) lor (low lsl (t.log_n - 1))

let rotation_automorphism t =
  Perm.of_array
    (Array.init (size t) (fun idx ->
         let w = col_of t idx and i = level_of t idx in
         node t ~col:(rotate_right t w) ~level:((i + 1) mod t.log_n)))

let column_xor_automorphism t c =
  assert (c >= 0 && c < t.n);
  Perm.of_array
    (Array.init (size t) (fun idx ->
         let w = col_of t idx and i = level_of t idx in
         node t ~col:(w lxor c) ~level:i))

let theoretical_diameter t = 3 * t.log_n / 2

let sub_butterfly_nodes t ~top_level ~dim ~col =
  assert (dim >= 0 && dim < t.log_n);
  assert (top_level >= 0 && top_level < t.log_n);
  (* the window spans boundaries top_level .. top_level+dim-1 (mod log n),
     flipping masks at bit indices log_n-1-(top_level+j) mod log_n; columns in
     the component agree with [col] outside those bit indices *)
  let window_mask = ref 0 in
  for j = 0 to dim - 1 do
    let boundary = (top_level + j) mod t.log_n in
    window_mask := !window_mask lor cross_mask t boundary
  done;
  let fixed = col land lnot !window_mask in
  let cols =
    List.filter
      (fun w -> w land lnot !window_mask = fixed)
      (List.init t.n (fun w -> w))
  in
  List.concat_map
    (fun j ->
      let level = (top_level + j) mod t.log_n in
      List.map (fun w -> node t ~col:w ~level) cols)
    (List.init (dim + 1) (fun j -> j))

let unfold_to_butterfly t =
  let b = Butterfly.create ~log_n:t.log_n in
  let map =
    Array.init (size t) (fun idx ->
        Butterfly.node b ~col:(col_of t idx) ~level:(level_of t idx))
  in
  (b, map)

let label t idx =
  let w = col_of t idx and i = level_of t idx in
  let bits = String.init t.log_n (fun b ->
      if w land (1 lsl (t.log_n - 1 - b)) <> 0 then '1' else '0')
  in
  Printf.sprintf "<%s,%d>" bits i
