module G = Bfly_graph.Graph

let pairs n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  !edges

let k_n n = G.of_edge_list ~n (pairs n)
let double_k_n n = G.of_edge_list ~n (pairs n @ pairs n)

let k_bipartite j k =
  let edges = ref [] in
  for u = 0 to j - 1 do
    for v = j to j + k - 1 do
      edges := (u, v) :: !edges
    done
  done;
  G.of_edge_list ~n:(j + k) !edges

let bw_k_n n = n / 2 * ((n + 1) / 2)
let ee_k_n n k = k * (n - k)
