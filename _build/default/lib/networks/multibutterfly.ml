module G = Bfly_graph.Graph

type t = { log_n : int; n : int; d : int; graph : G.t }

(* sample [count] distinct values from [0, m) *)
let sample_without_replacement rng m count =
  let count = min count m in
  let chosen = Array.init m (fun i -> i) in
  for i = 0 to count - 1 do
    let j = i + Random.State.int rng (m - i) in
    let tmp = chosen.(i) in
    chosen.(i) <- chosen.(j);
    chosen.(j) <- tmp
  done;
  Array.sub chosen 0 count

let create ?rng ~log_n ~d () =
  if log_n < 0 then invalid_arg "Multibutterfly.create: negative dimension";
  if d < 1 then invalid_arg "Multibutterfly.create: d >= 1";
  let rng = match rng with Some r -> r | None -> Random.State.make [| 0x3b1f |] in
  let n = 1 lsl log_n in
  let node ~col ~level = (level * n) + col in
  let edges = ref [] in
  for i = 0 to log_n - 1 do
    let half_mask = 1 lsl (log_n - i - 1) in
    let cluster_cols = n lsr i in
    let half_cols = cluster_cols / 2 in
    for w = 0 to n - 1 do
      (* the two halves of w's cluster at level i+1: columns agreeing with w
         above bit position i+1, with that bit forced to 0 or 1 *)
      let cluster_base = w land lnot (cluster_cols - 1) in
      List.iter
        (fun half_bit ->
          let base = cluster_base lor (if half_bit = 1 then half_mask else 0) in
          let targets = sample_without_replacement rng half_cols d in
          Array.iter
            (fun t ->
              edges :=
                (node ~col:w ~level:i, node ~col:(base lor t) ~level:(i + 1))
                :: !edges)
            targets)
        [ 0; 1 ]
    done
  done;
  { log_n; n; d; graph = G.of_edge_list ~n:(n * (log_n + 1)) !edges }

let log_n t = t.log_n
let n t = t.n
let d t = t.d
let size t = t.n * (t.log_n + 1)
let graph t = t.graph

let node t ~col ~level =
  assert (col >= 0 && col < t.n && level >= 0 && level <= t.log_n);
  (level * t.n) + col

let inputs t = List.init t.n (fun w -> node t ~col:w ~level:0)

let splitter_expansion g ~log_n ~boundary ~cluster_top ~max_k =
  let n = 1 lsl log_n in
  let cluster_cols = n lsr boundary in
  assert (cluster_top >= 0 && cluster_top < 1 lsl boundary);
  let cluster_base = cluster_top lsl (log_n - boundary) in
  let half_mask = 1 lsl (log_n - boundary - 1) in
  let members =
    Array.init cluster_cols (fun c -> (boundary * n) + (cluster_base lor c))
  in
  let worst = ref infinity in
  let total_nodes = G.n_nodes g in
  let stamp = Array.make total_nodes (-1) in
  let round = ref 0 in
  List.iter
    (fun half_bit ->
      let in_half v =
        v / n = boundary + 1
        &&
        let col = v mod n in
        col land lnot (cluster_cols - 1) = cluster_base
        && (col land half_mask <> 0) = (half_bit = 1)
      in
      for k = 1 to min max_k cluster_cols do
        Bfly_graph.Subset.iter ~n:cluster_cols ~k (fun subset ->
            incr round;
            let count = ref 0 in
            Array.iter
              (fun idx ->
                G.iter_neighbors g members.(idx) (fun w ->
                    if in_half w && stamp.(w) <> !round then begin
                      stamp.(w) <- !round;
                      incr count
                    end))
              subset;
            let ratio = float_of_int !count /. float_of_int k in
            if ratio < !worst then worst := ratio)
      done)
    [ 0; 1 ];
  !worst
