type t = {
  width : int;
  height : int;
  positions : (int * int) array;
  tracks_per_boundary : int array;
}

let area t = t.width * t.height

(* Greedy left-edge packing of intervals onto tracks; optimal (equals the
   maximum overlap) for interval graphs. Intervals are [(lo, hi)] inclusive;
   two intervals sharing an endpoint conflict (the via point is occupied). *)
let pack_intervals intervals =
  let sorted = List.sort compare intervals in
  (* tracks hold the rightmost occupied column per track *)
  let tracks = ref [] in
  let place (lo, hi) =
    let rec go acc = function
      | [] -> List.rev ((hi : int) :: acc) (* new track *)
      | last :: rest when last < lo -> List.rev_append acc (hi :: rest)
      | last :: rest -> go (last :: acc) rest
    in
    tracks := go [] !tracks
  in
  List.iter place sorted;
  List.length !tracks

let butterfly_grid b =
  let n = Butterfly.n b in
  let log_n = Butterfly.log_n b in
  (* a node column plus a private vertical wiring track per column *)
  let width = max 1 (2 * n) in
  let xpos col = 2 * col in
  let tracks_per_boundary =
    Array.init log_n (fun i ->
        let mask = Butterfly.cross_mask b i in
        let intervals = ref [] in
        for w = 0 to n - 1 do
          let w' = w lxor mask in
          intervals := (xpos (min w w'), xpos (max w w')) :: !intervals
        done;
        pack_intervals !intervals)
  in
  (* node rows interleaved with routing blocks *)
  let row_of_level = Array.make (log_n + 1) 0 in
  let y = ref 0 in
  for level = 0 to log_n do
    row_of_level.(level) <- !y;
    incr y;
    if level < log_n then y := !y + tracks_per_boundary.(level)
  done;
  let height = !y in
  let positions =
    Array.init (Butterfly.size b) (fun idx ->
        (xpos (Butterfly.col_of b idx), row_of_level.(Butterfly.level_of b idx)))
  in
  { width; height; positions; tracks_per_boundary }

let thompson_lower_bound ~bw = bw * bw
let reference_area b = Butterfly.n b * Butterfly.n b
