module G = Bfly_graph.Graph

type t = { dim : int; graph : G.t }

let create ~dim =
  if dim < 1 then invalid_arg "De_bruijn.create: dim must be >= 1";
  let n = 1 lsl dim in
  let edges = ref [] in
  for w = 0 to n - 1 do
    let s0 = 2 * w mod n and s1 = ((2 * w) + 1) mod n in
    if s0 <> w then edges := (w, s0) :: !edges;
    if s1 <> w then edges := (w, s1) :: !edges
  done;
  { dim; graph = G.of_edges ~n (Array.of_list !edges) }

let dim t = t.dim
let size t = 1 lsl t.dim
let graph t = t.graph
