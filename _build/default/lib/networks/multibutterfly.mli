(** Multibutterflies (Section 1.3, after Leighton–Maggs [17] and
    Maggs–Vöcking [19]).

    The paper observes that the only bounded-degree networks known to route
    and sort deterministically in [O(log N)] time build {e expansion} into
    their structure. A multibutterfly has the butterfly's level/cluster
    skeleton, but each node sends [d] edges into {e each} half-cluster of
    the next level, wired at random — so small input sets of every splitter
    expand by a factor [> 1], where the butterfly's fixed wiring only
    achieves [1/2] (two inputs share each upper neighbor).

    [d = 1] with deterministic wiring degenerates to [B_n] (not produced
    here; use {!Butterfly}). Node indexing matches {!Butterfly}:
    [⟨w,i⟩ = i·n + w]. *)

type t

(** [create ?rng ~log_n ~d ()] — [d >= 1] edges from each node into each
    half-cluster below it (capped by the half-cluster size; sampling
    without replacement). *)
val create : ?rng:Random.State.t -> log_n:int -> d:int -> unit -> t

val log_n : t -> int
val n : t -> int
val d : t -> int
val size : t -> int
val graph : t -> Bfly_graph.Graph.t
val node : t -> col:int -> level:int -> int
val inputs : t -> int list

(** [splitter_expansion g ~boundary ~cluster_top ~max_k] measures, for the
    splitter at the given boundary whose cluster is identified by its top
    [boundary] column bits, the worst ratio [|N(S) ∩ half| / |S|] over all
    nonempty input sets [S] of at most [max_k] nodes and both halves —
    exhaustively. Works for any network with the butterfly skeleton
    (pass [Butterfly.graph] to compare). *)
val splitter_expansion :
  Bfly_graph.Graph.t ->
  log_n:int ->
  boundary:int ->
  cluster_top:int ->
  max_k:int ->
  float
