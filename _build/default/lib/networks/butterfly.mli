(** The (log n)-dimensional butterfly [B_n] without wraparound (Section 1.1).

    [B_n] has [N = n(log n + 1)] nodes arranged in [log n + 1] levels of [n]
    nodes each. A node is identified by its column [w ∈ {0,1}^(log n)] and
    level [i ∈ 0..log n]. Nodes [⟨w,i⟩] and [⟨w',i+1⟩] are adjacent iff
    [w = w'] (a {e straight} edge) or [w] and [w'] differ exactly in bit
    position [i+1] (a {e cross} edge), bit positions numbered 1..log n from
    the most significant bit.

    The node index of [⟨w,i⟩] in the underlying graph is [i·n + w]. *)

type t

(** [create ~log_n] is the (log_n)-dimensional butterfly, [log_n >= 0].
    [create ~log_n:0] is the single-node degenerate butterfly. *)
val create : log_n:int -> t

(** [of_inputs n] is [create ~log_n:(log2 n)].
    @raise Invalid_argument when [n] is not a power of two. *)
val of_inputs : int -> t

val log_n : t -> int

(** Number of inputs [n = 2^log_n] (columns per level). *)
val n : t -> int

(** Total node count [N = n(log n + 1)]. *)
val size : t -> int

(** Number of levels, [log n + 1]. *)
val levels : t -> int

val graph : t -> Bfly_graph.Graph.t

(** [node t ~col ~level] is the graph index of [⟨col, level⟩]. *)
val node : t -> col:int -> level:int -> int

val col_of : t -> int -> int
val level_of : t -> int -> int

(** [cross_mask t i] is the column-bit mask flipped by cross edges between
    levels [i] and [i+1]: bit position [i+1], i.e. [1 lsl (log_n - i - 1)]. *)
val cross_mask : t -> int -> int

(** All node indices on level [i], in column order. *)
val level_nodes : t -> int -> int list

(** All node indices in column [w], in level order. *)
val column_nodes : t -> int -> int list

(** Inputs = level 0; outputs = level log n. *)
val inputs : t -> int list

val outputs : t -> int list

(** [monotone_path t ~input_col ~output_col] is the unique monotonic path
    from [⟨input_col, 0⟩] to [⟨output_col, log n⟩] (Lemma 2.3), as node
    indices level by level. *)
val monotone_path : t -> input_col:int -> output_col:int -> int list

(** [component_class t ~lo ~hi w] identifies the connected component of
    [B_n[lo,hi]] (the subgraph induced by levels lo..hi) containing column
    [w]: components are classes of columns agreeing outside the bit window
    flipped by levels lo+1..hi (Lemma 2.4). Classes are densely numbered in
    [0, n / 2^(hi-lo)). *)
val component_class : t -> lo:int -> hi:int -> int -> int

(** Number of connected components of [B_n[lo,hi]]: [n / 2^(hi-lo)]. *)
val component_count : t -> lo:int -> hi:int -> int

(** Node indices of one component of [B_n[lo,hi]], given its class id. *)
val component_nodes : t -> lo:int -> hi:int -> int -> int list

(** The level-reversing automorphism of Lemma 2.1:
    [⟨w, i⟩ ↦ ⟨bit-reverse w, log n − i⟩]. *)
val reversal_automorphism : t -> Bfly_graph.Perm.t

(** The level-preserving automorphism of Lemma 2.2 translating column [w]
    to [w xor c]: [⟨w, i⟩ ↦ ⟨w xor c, i⟩]. *)
val column_xor_automorphism : t -> int -> Bfly_graph.Perm.t

(** Theoretical diameter [2 log n] (Section 1.1), for [log_n >= 1]. *)
val theoretical_diameter : t -> int

(** [sub_butterfly_nodes t ~top_level ~dim ~col] is the set of nodes of the
    [dim]-dimensional sub-butterfly spanning levels
    [top_level .. top_level+dim] whose columns agree with [col] outside the
    bit window flipped by those levels. Used for expansion witness sets
    (Section 4.2). *)
val sub_butterfly_nodes : t -> top_level:int -> dim:int -> col:int -> int list

(** Label for rendering: ["<w,i>"] with [w] in binary. *)
val label : t -> int -> string
