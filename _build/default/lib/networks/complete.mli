(** Complete graphs and their variants used as embedding guests
    (Sections 1.4 and 3): the complete graph [K_N], the doubled complete
    graph [2K_N] (two parallel edges between every pair), and the complete
    bipartite graph [K_{j,k}]. *)

(** [k_n n] is the complete graph on [n] nodes. *)
val k_n : int -> Bfly_graph.Graph.t

(** [double_k_n n] is [2K_n]: every pair joined by two parallel edges. *)
val double_k_n : int -> Bfly_graph.Graph.t

(** [k_bipartite j k] is [K_{j,k}]: left nodes [0..j-1], right nodes
    [j..j+k-1]. *)
val k_bipartite : int -> int -> Bfly_graph.Graph.t

(** [bw_k_n n] is the bisection width [⌊n/2⌋·⌈n/2⌉] of [K_n] (the paper
    states [N²/4] for even [N]). *)
val bw_k_n : int -> int

(** [ee_k_n n k] is the edge expansion [k(n−k)] of a k-set in [K_n]. *)
val ee_k_n : int -> int -> int
