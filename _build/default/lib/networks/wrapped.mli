(** The butterfly with wraparound [W_n] (Section 1.1): levels 0 and log n of
    [B_n] are identified, giving [n·log n] nodes in levels [0..log n − 1].

    For [log n = 2] the identification creates parallel straight edges
    (both boundaries connect the same column pair); [W_n] is then a
    multigraph, which the underlying {!Bfly_graph.Graph} supports.
    Node index of [⟨w,i⟩] is [i·n + w]. *)

type t

(** [create ~log_n] requires [log_n >= 2] (smaller wraparound butterflies
    degenerate to self-loops). *)
val create : log_n:int -> t

(** @raise Invalid_argument unless [n] is a power of two with [log n >= 2]. *)
val of_inputs : int -> t

val log_n : t -> int
val n : t -> int

(** Total node count [N = n·log n]. *)
val size : t -> int

(** Number of levels, [log n]. *)
val levels : t -> int

val graph : t -> Bfly_graph.Graph.t
val node : t -> col:int -> level:int -> int
val col_of : t -> int -> int
val level_of : t -> int -> int

(** Mask flipped by cross edges between level [i] and [(i+1) mod log n]. *)
val cross_mask : t -> int -> int

val level_nodes : t -> int -> int list
val column_nodes : t -> int -> int list

(** The level-rotation automorphism: [⟨w, i⟩ ↦ ⟨ror w, (i+1) mod log n⟩]
    where [ror] rotates the (log n)-bit column word right by one. Composing
    it [log n] times yields the identity. *)
val rotation_automorphism : t -> Bfly_graph.Perm.t

(** Column-translation automorphism [⟨w,i⟩ ↦ ⟨w xor c, i⟩]. *)
val column_xor_automorphism : t -> int -> Bfly_graph.Perm.t

(** Theoretical diameter [⌊3 log n / 2⌋] (Section 1.1). *)
val theoretical_diameter : t -> int

(** [sub_butterfly_nodes t ~top_level ~dim ~col]: nodes of a [dim]-dimensional
    sub-butterfly spanning levels [top_level .. top_level+dim] (mod log n),
    [dim < log n], whose columns agree with [col] outside the window. It has
    [(dim+1)·2^dim] nodes. Used for expansion witnesses (Section 4.1). *)
val sub_butterfly_nodes : t -> top_level:int -> dim:int -> col:int -> int list

(** [unfold_to_butterfly t] is the standard transmutation of [W_n] into
    [B_n] used in Lemma 3.2: level-0 nodes are split in two. Returns the
    butterfly together with the map sending each [W_n] node to its [B_n]
    node (level-0 nodes map to the level-0 copy; the level-(log n) copy is
    [B_n]'s output in the same column). *)
val unfold_to_butterfly : t -> Butterfly.t * int array

val label : t -> int -> string
