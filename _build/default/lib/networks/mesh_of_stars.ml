module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset

type t = { j : int; k : int; graph : G.t }
type level = M1 | M2 | M3

let create ~j ~k =
  if j < 1 || k < 1 then invalid_arg "Mesh_of_stars.create: need j, k >= 1";
  let m1 a = a in
  let m2 a b = j + (a * k) + b in
  let m3 b = j + (j * k) + b in
  let edges = ref [] in
  for a = 0 to j - 1 do
    for b = 0 to k - 1 do
      edges := (m1 a, m2 a b) :: (m2 a b, m3 b) :: !edges
    done
  done;
  { j; k; graph = G.of_edge_list ~n:(j + (j * k) + k) !edges }

let j t = t.j
let k t = t.k
let size t = t.j + (t.j * t.k) + t.k
let graph t = t.graph

let m1_node t a =
  assert (a >= 0 && a < t.j);
  a

let m2_node t ~a ~b =
  assert (a >= 0 && a < t.j && b >= 0 && b < t.k);
  t.j + (a * t.k) + b

let m3_node t b =
  assert (b >= 0 && b < t.k);
  t.j + (t.j * t.k) + b

let level_of t idx =
  if idx < t.j then M1 else if idx < t.j + (t.j * t.k) then M2 else M3

let m2_coords t idx =
  assert (level_of t idx = M2);
  let r = idx - t.j in
  (r / t.k, r mod t.k)

let m1_nodes t = List.init t.j (fun a -> m1_node t a)
let m2_nodes t = List.init (t.j * t.k) (fun r -> t.j + r)
let m3_nodes t = List.init t.k (fun b -> m3_node t b)

let m2_set t =
  let s = Bitset.create (size t) in
  List.iter (Bitset.add s) (m2_nodes t);
  s

let label t idx =
  match level_of t idx with
  | M1 -> Printf.sprintf "M1:%d" idx
  | M2 ->
      let a, b = m2_coords t idx in
      Printf.sprintf "M2:(%d,%d)" a b
  | M3 -> Printf.sprintf "M3:%d" (idx - t.j - (t.j * t.k))
