(** The d-dimensional shuffle-exchange network (Section 1.5): nodes are
    d-bit words; exchange edges join [w] and [w xor 1]; shuffle edges join
    [w] and its one-bit left rotation (self-loops at the all-0 and all-1
    words are omitted). *)

type t

val create : dim:int -> t
val dim : t -> int
val size : t -> int
val graph : t -> Bfly_graph.Graph.t
