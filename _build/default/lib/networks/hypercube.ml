module G = Bfly_graph.Graph

type t = { dim : int; graph : G.t }

let create ~dim =
  if dim < 0 then invalid_arg "Hypercube.create: negative dimension";
  let n = 1 lsl dim in
  let edges = ref [] in
  for w = 0 to n - 1 do
    for b = 0 to dim - 1 do
      if w land (1 lsl b) = 0 then edges := (w, w lxor (1 lsl b)) :: !edges
    done
  done;
  { dim; graph = G.of_edge_list ~n !edges }

let dim t = t.dim
let size t = 1 lsl t.dim
let graph t = t.graph
let theoretical_bw t = if t.dim = 0 then 0 else 1 lsl (t.dim - 1)
