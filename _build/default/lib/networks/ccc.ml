module G = Bfly_graph.Graph

type t = { log_n : int; n : int; graph : G.t }

let build_graph log_n =
  let n = 1 lsl log_n in
  let node ~cycle ~pos = (pos * n) + cycle in
  let edges = ref [] in
  for i = 0 to log_n - 1 do
    let mask = 1 lsl (log_n - i - 1) in
    let next = (i + 1) mod log_n in
    for w = 0 to n - 1 do
      edges := (node ~cycle:w ~pos:i, node ~cycle:w ~pos:next) :: !edges;
      (* one cross edge per unordered pair: emit from the smaller endpoint *)
      if w land mask = 0 then
        edges := (node ~cycle:w ~pos:i, node ~cycle:(w lxor mask) ~pos:i) :: !edges
    done
  done;
  G.of_edge_list ~n:(n * log_n) !edges

let create ~log_n =
  if log_n < 2 then invalid_arg "Ccc.create: log_n must be >= 2";
  { log_n; n = 1 lsl log_n; graph = build_graph log_n }

let log_n t = t.log_n
let n t = t.n
let size t = t.n * t.log_n
let graph t = t.graph

let node t ~cycle ~pos =
  assert (cycle >= 0 && cycle < t.n && pos >= 0 && pos < t.log_n);
  (pos * t.n) + cycle

let cycle_of t idx = idx mod t.n
let pos_of t idx = idx / t.n
let cross_mask t i = 1 lsl (t.log_n - i - 1)

let label t idx =
  let w = cycle_of t idx and i = pos_of t idx in
  let bits = String.init t.log_n (fun b ->
      if w land (1 lsl (t.log_n - 1 - b)) <> 0 then '1' else '0')
  in
  Printf.sprintf "<%s,%d>" bits i
