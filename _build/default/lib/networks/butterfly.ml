module G = Bfly_graph.Graph
module Perm = Bfly_graph.Perm

type t = { log_n : int; n : int; graph : G.t }

let build_graph log_n =
  let n = 1 lsl log_n in
  let node ~col ~level = (level * n) + col in
  let edges = ref [] in
  for i = 0 to log_n - 1 do
    let mask = 1 lsl (log_n - i - 1) in
    for w = 0 to n - 1 do
      edges := (node ~col:w ~level:i, node ~col:w ~level:(i + 1)) :: !edges;
      edges :=
        (node ~col:w ~level:i, node ~col:(w lxor mask) ~level:(i + 1)) :: !edges
    done
  done;
  G.of_edge_list ~n:(n * (log_n + 1)) !edges

let create ~log_n =
  if log_n < 0 then invalid_arg "Butterfly.create: negative dimension";
  { log_n; n = 1 lsl log_n; graph = build_graph log_n }

let log2_exact n =
  if n <= 0 then None
  else begin
    let rec go l v = if v = n then Some l else if v > n then None else go (l + 1) (v * 2) in
    go 0 1
  end

let of_inputs n =
  match log2_exact n with
  | Some log_n -> create ~log_n
  | None -> invalid_arg "Butterfly.of_inputs: not a power of two"

let log_n t = t.log_n
let n t = t.n
let size t = t.n * (t.log_n + 1)
let levels t = t.log_n + 1
let graph t = t.graph

let node t ~col ~level =
  assert (col >= 0 && col < t.n && level >= 0 && level <= t.log_n);
  (level * t.n) + col

let col_of t idx = idx mod t.n
let level_of t idx = idx / t.n
let cross_mask t i = 1 lsl (t.log_n - i - 1)

let level_nodes t i = List.init t.n (fun w -> node t ~col:w ~level:i)
let column_nodes t w = List.init (levels t) (fun i -> node t ~col:w ~level:i)
let inputs t = level_nodes t 0
let outputs t = level_nodes t t.log_n

let monotone_path t ~input_col ~output_col =
  (* descend level by level; at boundary i choose the cross edge exactly when
     input and output columns differ in bit position i+1 *)
  let rec go i col acc =
    if i > t.log_n then List.rev acc
    else begin
      let next_col =
        if i = t.log_n then col
        else begin
          let mask = cross_mask t i in
          if (input_col lxor output_col) land mask <> 0 then col lxor mask else col
        end
      in
      go (i + 1) next_col (node t ~col ~level:i :: acc)
    end
  in
  go 0 input_col []

let component_class t ~lo ~hi w =
  assert (0 <= lo && lo <= hi && hi <= t.log_n);
  let low_bits = t.log_n - hi in
  let top = w lsr (t.log_n - lo) in
  let bottom = w land ((1 lsl low_bits) - 1) in
  (top lsl low_bits) lor bottom

let component_count t ~lo ~hi = t.n lsr (hi - lo)

let component_nodes t ~lo ~hi cls =
  let out = ref [] in
  for w = t.n - 1 downto 0 do
    if component_class t ~lo ~hi w = cls then
      for level = hi downto lo do
        out := node t ~col:w ~level :: !out
      done
  done;
  !out

let bit_reverse log_n w =
  let r = ref 0 in
  for b = 0 to log_n - 1 do
    if w land (1 lsl b) <> 0 then r := !r lor (1 lsl (log_n - 1 - b))
  done;
  !r

let reversal_automorphism t =
  Perm.of_array
    (Array.init (size t) (fun idx ->
         let w = col_of t idx and i = level_of t idx in
         node t ~col:(bit_reverse t.log_n w) ~level:(t.log_n - i)))

let column_xor_automorphism t c =
  assert (c >= 0 && c < t.n);
  Perm.of_array
    (Array.init (size t) (fun idx ->
         let w = col_of t idx and i = level_of t idx in
         node t ~col:(w lxor c) ~level:i))

let theoretical_diameter t =
  assert (t.log_n >= 1);
  2 * t.log_n

let sub_butterfly_nodes t ~top_level ~dim ~col =
  let lo = top_level and hi = top_level + dim in
  assert (0 <= lo && hi <= t.log_n);
  component_nodes t ~lo ~hi (component_class t ~lo ~hi col)

let label t idx =
  let w = col_of t idx and i = level_of t idx in
  let bits = String.init t.log_n (fun b ->
      if w land (1 lsl (t.log_n - 1 - b)) <> 0 then '1' else '0')
  in
  Printf.sprintf "<%s,%d>" (if t.log_n = 0 then "·" else bits) i
