(** The d-dimensional de Bruijn network (Section 1.5): nodes are d-bit
    words; [w] is joined to [2w mod 2^d] and [2w+1 mod 2^d] (self-loops at
    the all-0 and all-1 words are omitted; the parallel pair between
    [01…] and [10…] is kept, matching the digraph's undirected shadow). *)

type t

val create : dim:int -> t
val dim : t -> int
val size : t -> int
val graph : t -> Bfly_graph.Graph.t
