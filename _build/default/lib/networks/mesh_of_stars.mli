(** The mesh of stars [MOS_{j,k}] (Section 2.1): the complete bipartite graph
    [K_{j,k}] with every edge subdivided by a middle node.

    Three levels: [M1] with [j] nodes, [M2] with [j·k] middle nodes, [M3]
    with [k] nodes. Node indexing: [M1] node [a] is [a]; [M2] node [(a,b)]
    is [j + a·k + b]; [M3] node [b] is [j + j·k + b]. *)

type t

val create : j:int -> k:int -> t
val j : t -> int
val k : t -> int

(** Total node count [j + jk + k]. *)
val size : t -> int

val graph : t -> Bfly_graph.Graph.t
val m1_node : t -> int -> int
val m2_node : t -> a:int -> b:int -> int
val m3_node : t -> int -> int

type level = M1 | M2 | M3

val level_of : t -> int -> level

(** For an M2 node, its [(a, b)] coordinates. *)
val m2_coords : t -> int -> int * int

val m1_nodes : t -> int list
val m2_nodes : t -> int list
val m3_nodes : t -> int list

(** The M2 nodes as a bitset over the graph's nodes (the set whose bisection
    defines [BW(MOS, M2)]). *)
val m2_set : t -> Bfly_graph.Bitset.t

val label : t -> int -> string
