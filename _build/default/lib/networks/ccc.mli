(** The (log n)-dimensional cube-connected cycles [CCC_n] (Section 1.1):
    [n = 2^log n] cycles of [log n] nodes each. Node [⟨w, i⟩] (cycle label
    [w], position [i], 0-based here vs. 1-based in the paper) has cycle edges
    to [⟨w, i±1 mod log n⟩] and a cross edge to [⟨w', i⟩] where [w'] differs
    from [w] exactly in bit position [i+1] (paper numbering).

    For [log n = 2] the two cycle edges between positions 0 and 1 are
    parallel edges. Node index of [⟨w,i⟩] is [i·n + w]. *)

type t

(** [create ~log_n] requires [log_n >= 2]. *)
val create : log_n:int -> t

val log_n : t -> int
val n : t -> int

(** Total node count [n · log n]. *)
val size : t -> int

val graph : t -> Bfly_graph.Graph.t
val node : t -> cycle:int -> pos:int -> int
val cycle_of : t -> int -> int
val pos_of : t -> int -> int

(** Mask of the hypercube dimension crossed at position [i]. *)
val cross_mask : t -> int -> int

val label : t -> int -> string
