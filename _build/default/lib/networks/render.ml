module Bitset = Bfly_graph.Bitset

let node_char side idx =
  match side with
  | Some s when Bitset.mem s idx -> '#'
  | Some _ -> 'o'
  | None -> 'o'

(* Column x-positions are spaced so that cross-edge diagonals of every
   block size can be drawn with one character per row of slack. *)
let butterfly_ascii ?side b =
  let n = Butterfly.n b in
  let log_n = Butterfly.log_n b in
  let spacing = 4 in
  let xpos w = 2 + (w * spacing) in
  let width = xpos (n - 1) + 2 in
  let buf = Buffer.create 1024 in
  let line () = Bytes.make width ' ' in
  let add_line l = Buffer.add_string buf (Bytes.to_string l); Buffer.add_char buf '\n' in
  (* column headers: binary column labels, one bit row per dimension *)
  for bit = 0 to log_n - 1 do
    let l = line () in
    for w = 0 to n - 1 do
      let c = if w land (1 lsl (log_n - 1 - bit)) <> 0 then '1' else '0' in
      Bytes.set l (xpos w) c
    done;
    add_line l
  done;
  for level = 0 to log_n do
    (* node row *)
    let l = line () in
    for w = 0 to n - 1 do
      Bytes.set l (xpos w) (node_char side (Butterfly.node b ~col:w ~level))
    done;
    Bytes.blit_string (string_of_int level) 0 l 0
      (String.length (string_of_int level));
    add_line l;
    (* edge rows between this level and the next *)
    if level < log_n then begin
      let mask = Butterfly.cross_mask b level in
      let rows = max 1 (mask * spacing / 2) in
      for r = 1 to rows do
        let l = line () in
        for w = 0 to n - 1 do
          (* straight edge *)
          Bytes.set l (xpos w) '|';
          (* cross edge from w toward w lxor mask: a diagonal *)
          let target = w lxor mask in
          let dir = if target > w then 1 else -1 in
          let x = xpos w + (dir * r * (xpos target - xpos w) * dir / rows) in
          let x = max 0 (min (width - 1) x) in
          if Bytes.get l x = ' ' then
            Bytes.set l x (if dir > 0 then '\\' else '/')
        done;
        add_line l
      done
    end
  done;
  Buffer.contents buf

let butterfly_dot ?side b =
  Bfly_graph.Dot.to_string ~name:"butterfly" ~label:(Butterfly.label b) ?side
    (Butterfly.graph b)

let figure_1 () =
  let b = Butterfly.of_inputs 8 in
  "The 32-node butterfly network B_8 (Figure 1):\n"
  ^ butterfly_ascii b
