(** Text renderings of butterfly networks, reproducing Figure 1 of the
    paper (the 32-node butterfly [B_8]) and optionally overlaying a cut. *)

(** [butterfly_ascii ?side b] draws [B_n] level by level, columns across.
    Straight edges are drawn as [|]; cross edges as [\ /] diagonals within
    each 4-cycle block. When [side] is given, nodes in the set are shown as
    [#] and the others as [o]. Practical up to [log n = 4] or so. *)
val butterfly_ascii : ?side:Bfly_graph.Bitset.t -> Butterfly.t -> string

(** [butterfly_dot ?side b] is a Graphviz rendering with columns/levels in
    the node labels. *)
val butterfly_dot : ?side:Bfly_graph.Bitset.t -> Butterfly.t -> string

(** [figure_1 ()] is the paper's Figure 1: [B_8] with [N = 32], [n = 8]. *)
val figure_1 : unit -> string
