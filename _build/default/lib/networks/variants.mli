(** Port-augmented butterfly variants used by prior work (Section 1.6).

    Snir's [Ω_n] is [B_{n/2}] with two input ports on each input node and
    two output ports on each output node; Hong and Kung's [FFT_n] is [B_n]
    with one input port per input and one output port per output. Ports are
    not edges of the underlying butterfly, but they count toward the edge
    expansion function. We model each port as a pendant node attached to
    its input/output, so that [C(S,S̄)] in the augmented graph equals the
    paper's port-counting expansion when [S] contains only real nodes. *)

type t = {
  butterfly : Butterfly.t;
  graph : Bfly_graph.Graph.t;  (** butterfly plus pendant port nodes *)
  real_nodes : int;  (** indices < real_nodes are butterfly nodes *)
  ports_per_input : int;
  ports_per_output : int;
}

(** [omega n] is Snir's [Ω_n], built from [B_{n/2}]; [n >= 2] a power of
    two. *)
val omega : int -> t

(** [fft n] is Hong and Kung's [FFT_n], built from [B_n]. *)
val fft : int -> t

(** [port_expansion t s] is [C(S,S̄)] in the augmented graph for a set [s]
    of {e real} node indices — i.e. cut edges of the butterfly plus the
    ports incident to members of [s] (the definition of [EE(Ω_n, k)] in
    Section 1.6). *)
val port_expansion : t -> Bfly_graph.Bitset.t -> int

(** Snir's inequality [C log₂ C >= 4k] where [C = port_expansion] and
    [k = |S|]; returns [true] when the bound holds for this set. *)
val snir_inequality_holds : t -> Bfly_graph.Bitset.t -> bool
