(** The d-dimensional hypercube [Q_d] (Section 1.5), with nodes [0..2^d−1]
    and edges between words at Hamming distance 1. *)

type t

val create : dim:int -> t
val dim : t -> int
val size : t -> int
val graph : t -> Bfly_graph.Graph.t

(** Bisection width [2^(d−1)] (split on the top bit). *)
val theoretical_bw : t -> int
