(** Grid (VLSI) layouts of butterflies (Section 1.1–1.2).

    The paper cites the layout area of [B_n] as [(1 ± o(1))n²] and uses
    Thompson's bound [A >= BW(G)²]. This module realizes the classical
    [Θ(n²)] layout concretely — levels as node rows, one horizontal
    routing track per overlapping cross-wire bundle — and measures its
    exact bounding-box area, so the upper construction and the
    Thompson lower bound can be compared numerically (experiment E14).

    The model is the standard Thompson grid: unit-width wires on grid
    tracks, nodes on grid points, at most one wire per track segment.
    Straight edges run vertically in the column's own track; the cross
    edges of boundary [i] are routed on a private block of horizontal
    tracks between the two node rows, one track per wire, using a
    left-edge greedy interval packing (optimal for interval graphs). *)

type t = {
  width : int;  (** grid columns *)
  height : int;  (** grid rows *)
  positions : (int * int) array;  (** node index -> (x, y) *)
  tracks_per_boundary : int array;  (** horizontal tracks used at each level boundary *)
}

(** Bounding-box area, [width · height]. *)
val area : t -> int

(** [butterfly_grid b] lays out [B_n]. *)
val butterfly_grid : Butterfly.t -> t

(** Thompson's lower bound [A >= bw²] for a graph of bisection width [bw]. *)
val thompson_lower_bound : bw:int -> int

(** The paper's cited asymptotic upper area for [B_n]: [n²(1 + o(1))];
    returned as plain [n²] for reference lines in tables. *)
val reference_area : Butterfly.t -> int
