(** Maximum flow / minimum cut on directed networks (Edmonds–Karp).

    Used to compute the directed input/output separation of Section 1.2
    exactly: the minimum number of forward edges separating chosen inputs
    from chosen outputs equals a unit-capacity max flow. *)

type t

(** [create n] is an empty flow network on nodes [0, n). *)
val create : int -> t

(** [add_edge t ~src ~dst ~cap] adds a directed edge (a reverse residual
    edge of capacity 0 is added automatically). Parallel edges allowed. *)
val add_edge : t -> src:int -> dst:int -> cap:int -> unit

(** [max_flow t ~s ~t_] is the maximum s→t flow value. Runs Edmonds–Karp
    (BFS augmenting paths); mutates the network's residual state. *)
val max_flow : t -> s:int -> t_:int -> int

(** After {!max_flow}, the source side of a minimum cut: nodes reachable
    from [s] in the residual network. *)
val min_cut_side : t -> s:int -> Bitset.t
