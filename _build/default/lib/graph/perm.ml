type t = int array

let of_array a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.iter
    (fun x ->
      if x < 0 || x >= n || seen.(x) then
        invalid_arg "Perm.of_array: not a bijection";
      seen.(x) <- true)
    a;
  Array.copy a

let to_array p = Array.copy p
let size = Array.length
let apply p i = p.(i)
let identity n = Array.init n (fun i -> i)

let inverse p =
  let inv = Array.make (Array.length p) 0 in
  Array.iteri (fun i x -> inv.(x) <- i) p;
  inv

let compose p q = Array.map (fun x -> p.(x)) q

let random ~rng n =
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let is_identity p =
  let ok = ref true in
  Array.iteri (fun i x -> if i <> x then ok := false) p;
  !ok

let equal (p : t) (q : t) = p = q

let cycles p =
  let n = Array.length p in
  let seen = Array.make n false in
  let out = ref [] in
  for i = 0 to n - 1 do
    if not seen.(i) then begin
      let rec walk j acc =
        if seen.(j) then List.rev acc
        else begin
          seen.(j) <- true;
          walk p.(j) (j :: acc)
        end
      in
      out := walk i [] :: !out
    end
  done;
  List.rev !out

let pp ppf p =
  let pp_cycle ppf c =
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
         Format.pp_print_int)
      c
  in
  Format.pp_print_list ~pp_sep:(fun _ () -> ()) pp_cycle ppf (cycles p)
