let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let rec go i acc =
      if i > k then acc
      else
        let next = acc * (n - k + i) in
        if next < 0 || next / (n - k + i) <> acc then max_int (* overflowed *)
        else go (i + 1) (next / i)
    in
    go 1 1
  end

let iter ~n ~k f =
  if k = 0 then f [||]
  else if k <= n then begin
    let a = Array.init k (fun i -> i) in
    let continue = ref true in
    while !continue do
      f a;
      (* advance to the next k-subset in lexicographic order *)
      let i = ref (k - 1) in
      while !i >= 0 && a.(!i) = n - k + !i do
        decr i
      done;
      if !i < 0 then continue := false
      else begin
        a.(!i) <- a.(!i) + 1;
        for j = !i + 1 to k - 1 do
          a.(j) <- a.(j - 1) + 1
        done
      end
    done
  end

(* Colexicographic unranking: the subset {c_1 < c_2 < ... < c_k} has rank
   sum_i binomial(c_i, i). *)
let unrank ~n ~k r =
  let total = binomial n k in
  if r < 0 || r >= total then invalid_arg "Subset.unrank: rank out of range";
  let a = Array.make k 0 in
  let r = ref r in
  for i = k downto 1 do
    (* largest c with binomial(c, i) <= r *)
    let c = ref (i - 1) in
    while binomial (!c + 1) i <= !r do
      incr c
    done;
    a.(i - 1) <- !c;
    r := !r - binomial !c i
  done;
  a

let rank ~n:_ subset =
  let r = ref 0 in
  Array.iteri (fun i c -> r := !r + binomial c (i + 1)) subset;
  !r

(* Advance a sorted subset to its colex successor. Returns false at the end. *)
let colex_next ~n a =
  let k = Array.length a in
  let rec go i =
    if i = k - 1 then
      if a.(i) + 1 < n then begin
        a.(i) <- a.(i) + 1;
        true
      end
      else false
    else if a.(i) + 1 < a.(i + 1) then begin
      a.(i) <- a.(i) + 1;
      true
    end
    else begin
      a.(i) <- i;
      go (i + 1)
    end
  in
  if k = 0 then false else go 0

let iter_range ~n ~k ~lo ~hi f =
  if hi > lo then begin
    if k = 0 then f [||]
    else begin
      let a = unrank ~n ~k lo in
      let count = ref (hi - lo) in
      let continue = ref true in
      while !continue && !count > 0 do
        f a;
        decr count;
        if !count > 0 then continue := colex_next ~n a
      done
    end
  end

let iter_masks ~n f =
  assert (n >= 0 && n <= 62);
  let limit = 1 lsl n in
  for m = 0 to limit - 1 do
    f m
  done
