let domain_count () =
  match Sys.getenv_opt "BFLY_DOMAINS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some d when d >= 1 -> d
      | _ -> 1)
  | None -> max 1 (min 8 (Domain.recommended_domain_count ()))

let run_chunks ~lo ~hi work =
  let len = hi - lo in
  if len <= 0 then []
  else begin
    let d = min (domain_count ()) len in
    if d = 1 then [ work ~lo ~hi ]
    else begin
      let chunk = (len + d - 1) / d in
      let bounds =
        List.init d (fun i ->
            let clo = lo + (i * chunk) in
            let chi = min hi (clo + chunk) in
            (clo, chi))
        |> List.filter (fun (clo, chi) -> chi > clo)
      in
      match bounds with
      | [] -> []
      | (first_lo, first_hi) :: rest ->
          let domains =
            List.map
              (fun (clo, chi) -> Domain.spawn (fun () -> work ~lo:clo ~hi:chi))
              rest
          in
          (* run the first chunk on the current domain *)
          let first = work ~lo:first_lo ~hi:first_hi in
          first :: List.map Domain.join domains
    end
  end

let map_range ~lo ~hi f =
  let chunks =
    run_chunks ~lo ~hi (fun ~lo ~hi -> Array.init (hi - lo) (fun i -> f (lo + i)))
  in
  Array.concat chunks

let reduce_range ~lo ~hi ~init ~f ~combine =
  let chunks =
    run_chunks ~lo ~hi (fun ~lo ~hi ->
        let acc = ref init in
        for i = lo to hi - 1 do
          acc := f !acc i
        done;
        !acc)
  in
  List.fold_left combine init chunks

let min_over ~lo ~hi f =
  let best a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some x, Some y -> Some (if compare y x < 0 then y else x)
  in
  reduce_range ~lo ~hi ~init:None
    ~f:(fun acc i -> best acc (Some (f i)))
    ~combine:best
