(** Permutations of [0, n), used for network automorphisms (Lemmas 2.1, 2.2),
    Beneš permutation routing, and random workloads. *)

type t

(** [of_array a] validates that [a] is a bijection of [0, length a) and wraps
    it. @raise Invalid_argument otherwise. *)
val of_array : int array -> t

(** Underlying array (a copy; mutating it does not affect the permutation). *)
val to_array : t -> int array

(** Domain size. *)
val size : t -> int

(** [apply p i] is the image of [i]. *)
val apply : t -> int -> int

(** Identity permutation on [0, n). *)
val identity : int -> t

(** Functional inverse. *)
val inverse : t -> t

(** [compose p q] maps [i] to [p (q i)]. *)
val compose : t -> t -> t

(** [random ~rng n] is a uniform permutation (Fisher–Yates) drawn from [rng]. *)
val random : rng:Random.State.t -> int -> t

(** [is_identity p]. *)
val is_identity : t -> bool

(** [equal p q]. *)
val equal : t -> t -> bool

(** Cycle decomposition, each cycle starting at its smallest element,
    cycles ordered by smallest element; fixed points included as
    singletons. *)
val cycles : t -> int list list

val pp : Format.formatter -> t -> unit
