(** Minimal Domain-based data parallelism for OCaml 5.

    The exact bisection and expansion searches are embarrassingly parallel
    over index ranges; this module spreads such ranges across domains. The
    environment variable [BFLY_DOMAINS] overrides the domain count (set it to
    [1] to force sequential execution, e.g. for deterministic profiling). *)

(** Number of worker domains used by the combinators below. At least 1;
    defaults to [Domain.recommended_domain_count], capped at 8. *)
val domain_count : unit -> int

(** [map_range ~lo ~hi f] computes [[| f lo; …; f (hi-1) |]] with the range
    split in contiguous chunks across domains. [f] must be safe to run
    concurrently. Returns [[||]] when [hi <= lo]. *)
val map_range : lo:int -> hi:int -> (int -> 'a) -> 'a array

(** [reduce_range ~lo ~hi ~init ~f ~combine] folds [f] over [lo, hi) within
    each chunk starting from [init], then combines the per-chunk results with
    [combine] (which must be associative with [init] as identity). *)
val reduce_range :
  lo:int -> hi:int -> init:'a -> f:('a -> int -> 'a) -> combine:('a -> 'a -> 'a) -> 'a

(** [min_over ~lo ~hi f] is the minimum of [f i] over the range (with respect
    to [compare]), or [None] for an empty range. *)
val min_over : lo:int -> hi:int -> (int -> 'a) -> 'a option

(** [run_chunks ~lo ~hi work] splits [lo, hi) into one contiguous chunk per
    domain and runs [work ~lo:chunk_lo ~hi:chunk_hi] on each, returning the
    per-chunk results in range order. Lower-level than {!map_range}: the
    worker sees the whole chunk, enabling e.g. {!Subset.iter_range}-based
    enumeration without per-index unranking. *)
val run_chunks : lo:int -> hi:int -> (lo:int -> hi:int -> 'a) -> 'a list
