lib/graph/maxflow.mli: Bitset
