lib/graph/dot.mli: Bitset Graph
