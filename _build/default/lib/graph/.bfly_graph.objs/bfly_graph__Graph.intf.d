lib/graph/graph.mli: Bitset Perm
