lib/graph/parallel.ml: Array Domain List Sys
