lib/graph/dot.ml: Bitset Buffer Fun Graph Printf
