lib/graph/traverse.ml: Array Bitset Graph List Queue Union_find
