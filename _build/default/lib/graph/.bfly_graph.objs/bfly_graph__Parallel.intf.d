lib/graph/parallel.mli:
