lib/graph/subset.ml: Array
