lib/graph/perm.ml: Array Format List Random
