lib/graph/generators.ml: Array Graph List Random
