lib/graph/maxflow.ml: Array Bitset Queue
