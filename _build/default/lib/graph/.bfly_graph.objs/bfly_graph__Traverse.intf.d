lib/graph/traverse.mli: Bitset Graph Union_find
