lib/graph/perm.mli: Format Random
