lib/graph/generators.mli: Graph Random
