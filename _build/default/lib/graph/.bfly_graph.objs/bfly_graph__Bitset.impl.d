lib/graph/bitset.ml: Array Format List
