lib/graph/bitset.mli: Format
