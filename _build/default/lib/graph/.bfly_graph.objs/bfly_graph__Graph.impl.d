lib/graph/graph.ml: Array Bitset Hashtbl Perm
