lib/graph/subset.mli:
