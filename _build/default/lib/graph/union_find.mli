(** Disjoint-set forests with union by rank and path compression.

    Used to compute connected components of sub-butterflies (Lemma 2.4) and
    to validate the mesh-of-stars quotient construction (Lemma 2.11). *)

type t

(** [create n] is [n] singleton classes [{0}, …, {n−1}]. *)
val create : int -> t

(** Representative of the class of [i] (with path compression). *)
val find : t -> int -> int

(** [union t i j] merges the classes of [i] and [j]; returns [true] when the
    classes were previously distinct. *)
val union : t -> int -> int -> bool

(** [same t i j] tests whether [i] and [j] share a class. *)
val same : t -> int -> int -> bool

(** Number of distinct classes. *)
val count : t -> int

(** [classes t] lists each class as a sorted list of members, ordered by
    smallest member. *)
val classes : t -> int list list

(** [labels t] assigns each node the dense index (in [0, count t)) of its
    class, classes numbered by smallest member. *)
val labels : t -> int array
