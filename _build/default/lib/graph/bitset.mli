(** Fixed-capacity bitsets over a universe [0, capacity).

    Used throughout the cut and expansion machinery to represent node sets
    and cut sides. All operations are bounds-checked by assertions. *)

type t

(** [create n] is the empty set over universe [0, n). *)
val create : int -> t

(** Capacity of the universe (the [n] given to {!create}). *)
val capacity : t -> int

(** [mem s i] tests membership of [i]. *)
val mem : t -> int -> bool

(** [add s i] inserts [i] (in place). *)
val add : t -> int -> unit

(** [remove s i] deletes [i] (in place). *)
val remove : t -> int -> unit

(** [set s i b] inserts [i] when [b], deletes it otherwise. *)
val set : t -> int -> bool -> unit

(** [flip s i] toggles membership of [i]. *)
val flip : t -> int -> unit

(** Number of elements in the set. O(capacity/64). *)
val cardinal : t -> int

(** [copy s] is an independent copy. *)
val copy : t -> t

(** [clear s] empties the set in place. *)
val clear : t -> unit

(** [fill s] makes [s] the full universe, in place. *)
val fill : t -> unit

(** [complement s] is a new set containing exactly the non-members. *)
val complement : t -> t

(** [union a b], [inter a b], [diff a b] are new sets; capacities must match. *)
val union : t -> t -> t

val inter : t -> t -> t
val diff : t -> t -> t

(** [equal a b] tests extensional equality (capacities must match). *)
val equal : t -> t -> bool

(** [subset a b] is [true] when every member of [a] is in [b]. *)
val subset : t -> t -> bool

(** [is_empty s] is [true] when [s] has no members. *)
val is_empty : t -> bool

(** [iter s f] applies [f] to members in increasing order. *)
val iter : t -> (int -> unit) -> unit

(** [fold s init f] folds over members in increasing order. *)
val fold : t -> 'a -> ('a -> int -> 'a) -> 'a

(** Members in increasing order. *)
val elements : t -> int list

(** [of_list n l] is the set over [0, n) containing exactly [l]. *)
val of_list : int -> int list -> t

(** [choose s] is the smallest member. @raise Not_found when empty. *)
val choose : t -> int

(** Pretty-printer, e.g. [{0, 3, 17}]. *)
val pp : Format.formatter -> t -> unit
