(** Synthetic graph generators.

    Used as workloads for validating the cut solvers and heuristics on
    graphs whose bisection widths are known in closed form (grids, cycles,
    complete bipartite) or statistically characterized (random regular). *)

(** [cycle n] — the n-cycle; bisection width 2 for [n >= 3]. *)
val cycle : int -> Graph.t

(** [path n] — the n-path; bisection width 1. *)
val path : int -> Graph.t

(** [grid ~rows ~cols] — the rows×cols mesh; [BW = min rows cols] (for even
    splits along the shorter side). *)
val grid : rows:int -> cols:int -> Graph.t

(** [torus ~rows ~cols] — the wraparound mesh; [BW = 2·min rows cols] for
    even dimensions. Requires [rows, cols >= 3] (smaller wraps degenerate
    to parallel edges, which are produced faithfully). *)
val torus : rows:int -> cols:int -> Graph.t

(** [random_regular ~rng ~n ~degree] — a random [degree]-regular multigraph
    by the configuration model ([n·degree] even). Self-loops are re-drawn;
    parallel edges may remain (they are legal in {!Graph}). *)
val random_regular : rng:Random.State.t -> n:int -> degree:int -> Graph.t

(** [gnp ~rng ~n ~p] — Erdős–Rényi G(n,p). *)
val gnp : rng:Random.State.t -> n:int -> p:float -> Graph.t

(** [binary_tree depth] — complete binary tree with [2^(depth+1) - 1]
    nodes; bisection width... the tree's bisection width is [O(1)]-ish but
    not 1; provided as a low-connectivity stress case. *)
val binary_tree : int -> Graph.t
