type t = {
  n : int;
  offsets : int array; (* length n+1 *)
  adj : int array; (* length 2m; adj.(offsets.(u)..offsets.(u+1)-1) = nbrs of u *)
  edge_list : (int * int) array; (* normalized u <= v, with multiplicity *)
}

let of_edges ~n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative node count";
  let check (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg "Graph.of_edges: endpoint out of range";
    if u = v then invalid_arg "Graph.of_edges: self-loop"
  in
  Array.iter check edges;
  let edge_list = Array.map (fun (u, v) -> if u <= v then (u, v) else (v, u)) edges in
  Array.sort compare edge_list;
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edge_list;
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + deg.(u)
  done;
  let adj = Array.make offsets.(n) 0 in
  let cursor = Array.copy offsets in
  Array.iter
    (fun (u, v) ->
      adj.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      adj.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1)
    edge_list;
  { n; offsets; adj; edge_list }

let of_edge_list ~n edges = of_edges ~n (Array.of_list edges)
let n_nodes g = g.n
let n_edges g = Array.length g.edge_list
let degree g u = g.offsets.(u + 1) - g.offsets.(u)

let max_degree g =
  let m = ref 0 in
  for u = 0 to g.n - 1 do
    m := max !m (degree g u)
  done;
  !m

let iter_neighbors g u f =
  for i = g.offsets.(u) to g.offsets.(u + 1) - 1 do
    f g.adj.(i)
  done

let fold_neighbors g u init f =
  let acc = ref init in
  iter_neighbors g u (fun v -> acc := f !acc v);
  !acc

let neighbors g u =
  Array.sub g.adj g.offsets.(u) (degree g u)

let iter_edges g f = Array.iter (fun (u, v) -> f u v) g.edge_list
let edges g = Array.copy g.edge_list

let mem_edge g u v =
  (* adjacency slices are sorted by construction (edge list sorted, then
     scattered in order), so binary search would be possible; degrees here
     are tiny (<= 4 for butterflies) so a scan is simpler. *)
  let found = ref false in
  iter_neighbors g u (fun w -> if w = v then found := true);
  !found

let is_simple g =
  let m = Array.length g.edge_list in
  let rec go i = i >= m - 1 || (g.edge_list.(i) <> g.edge_list.(i + 1) && go (i + 1)) in
  go 0

let induced g nodes =
  let ids = Array.of_list (Bitset.elements nodes) in
  let new_of_old = Hashtbl.create (Array.length ids) in
  Array.iteri (fun i id -> Hashtbl.replace new_of_old id i) ids;
  let edges = ref [] in
  iter_edges g (fun u v ->
      match (Hashtbl.find_opt new_of_old u, Hashtbl.find_opt new_of_old v) with
      | Some u', Some v' -> edges := (u', v') :: !edges
      | _ -> ());
  (of_edge_list ~n:(Array.length ids) !edges, ids)

let relabel g p =
  assert (Perm.size p = g.n);
  of_edges ~n:g.n
    (Array.map (fun (u, v) -> (Perm.apply p u, Perm.apply p v)) g.edge_list)

let union_disjoint a b =
  let shift = a.n in
  let eb = Array.map (fun (u, v) -> (u + shift, v + shift)) b.edge_list in
  of_edges ~n:(a.n + b.n) (Array.append a.edge_list eb)

let equal a b = a.n = b.n && a.edge_list = b.edge_list

let degree_histogram g =
  let h = Array.make (max_degree g + 1) 0 in
  for u = 0 to g.n - 1 do
    let d = degree g u in
    h.(d) <- h.(d) + 1
  done;
  h
