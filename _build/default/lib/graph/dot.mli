(** Graphviz DOT export for visual inspection of networks and cuts. *)

(** [to_string ?name ?label ?side g] renders [g]. [label u] names node [u]
    (defaults to its index); when [side] is given, nodes inside the set are
    filled, visualising a cut. *)
val to_string :
  ?name:string -> ?label:(int -> string) -> ?side:Bitset.t -> Graph.t -> string

(** [write ?name ?label ?side file g] writes the rendering to [file]. *)
val write :
  ?name:string -> ?label:(int -> string) -> ?side:Bitset.t -> string -> Graph.t -> unit
