type edge = { dst : int; mutable cap : int; rev : int (* index in adj.(dst) *) }

(* minimal growable edge vector *)
type vec = { mutable arr : edge array; mutable len : int }

type t = { n : int; adj : vec array }

let dummy_edge = { dst = -1; cap = 0; rev = -1 }

let vec_push v e =
  if v.len = Array.length v.arr then begin
    let arr' = Array.make (max 4 (2 * v.len)) dummy_edge in
    Array.blit v.arr 0 arr' 0 v.len;
    v.arr <- arr'
  end;
  v.arr.(v.len) <- e;
  v.len <- v.len + 1

let create n = { n; adj = Array.init n (fun _ -> { arr = [||]; len = 0 }) }

let add_edge t ~src ~dst ~cap =
  assert (src >= 0 && src < t.n && dst >= 0 && dst < t.n && cap >= 0);
  let fwd_index = t.adj.(src).len in
  let rev_index = t.adj.(dst).len in
  vec_push t.adj.(src) { dst; cap; rev = rev_index };
  vec_push t.adj.(dst) { dst = src; cap = 0; rev = fwd_index }

let iter_out t v f =
  let vec = t.adj.(v) in
  for i = 0 to vec.len - 1 do
    f i vec.arr.(i)
  done

(* BFS for a shortest augmenting path; fills parent pointers (node, edge
   index). *)
let bfs t ~s ~t_ parent =
  Array.fill parent 0 t.n None;
  let visited = Array.make t.n false in
  visited.(s) <- true;
  let q = Queue.create () in
  Queue.add s q;
  let found = ref false in
  while (not !found) && not (Queue.is_empty q) do
    let v = Queue.pop q in
    iter_out t v (fun i e ->
        if e.cap > 0 && not visited.(e.dst) then begin
          visited.(e.dst) <- true;
          parent.(e.dst) <- Some (v, i);
          if e.dst = t_ then found := true else Queue.add e.dst q
        end)
  done;
  !found

let max_flow t ~s ~t_ =
  if s = t_ then invalid_arg "Maxflow.max_flow: s = t";
  let parent = Array.make t.n None in
  let flow = ref 0 in
  let continue = ref true in
  while !continue do
    if not (bfs t ~s ~t_ parent) then continue := false
    else begin
      let rec bottleneck v acc =
        match parent.(v) with
        | None -> acc
        | Some (u, i) -> bottleneck u (min acc t.adj.(u).arr.(i).cap)
      in
      let aug = bottleneck t_ max_int in
      let rec push v =
        match parent.(v) with
        | None -> ()
        | Some (u, i) ->
            let e = t.adj.(u).arr.(i) in
            e.cap <- e.cap - aug;
            let r = t.adj.(e.dst).arr.(e.rev) in
            r.cap <- r.cap + aug;
            push u
      in
      push t_;
      flow := !flow + aug
    end
  done;
  !flow

let min_cut_side t ~s =
  let side = Bitset.create t.n in
  let visited = Array.make t.n false in
  visited.(s) <- true;
  Bitset.add side s;
  let q = Queue.create () in
  Queue.add s q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    iter_out t v (fun _ e ->
        if e.cap > 0 && not visited.(e.dst) then begin
          visited.(e.dst) <- true;
          Bitset.add side e.dst;
          Queue.add e.dst q
        end)
  done;
  side
