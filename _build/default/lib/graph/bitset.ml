type t = { n : int; words : int array }

let bits_per_word = 63 (* OCaml native ints: use 63 low bits, portable *)

let create n =
  assert (n >= 0);
  { n; words = Array.make ((n + bits_per_word - 1) / bits_per_word + 1) 0 }

let capacity s = s.n
let index i = (i / bits_per_word, i mod bits_per_word)

let check s i =
  assert (i >= 0 && i < s.n)

let mem s i =
  check s i;
  let w, b = index i in
  s.words.(w) land (1 lsl b) <> 0

let add s i =
  check s i;
  let w, b = index i in
  s.words.(w) <- s.words.(w) lor (1 lsl b)

let remove s i =
  check s i;
  let w, b = index i in
  s.words.(w) <- s.words.(w) land lnot (1 lsl b)

let set s i b = if b then add s i else remove s i

let flip s i =
  check s i;
  let w, b = index i in
  s.words.(w) <- s.words.(w) lxor (1 lsl b)

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words
let copy s = { s with words = Array.copy s.words }
let clear s = Array.fill s.words 0 (Array.length s.words) 0

let fill s =
  for i = 0 to s.n - 1 do
    add s i
  done

let complement s =
  let c = create s.n in
  for i = 0 to s.n - 1 do
    if not (mem s i) then add c i
  done;
  c

let zip_words op a b =
  assert (a.n = b.n);
  let r = create a.n in
  Array.iteri (fun i w -> r.words.(i) <- op w b.words.(i)) a.words;
  r

let union a b = zip_words ( lor ) a b
let inter a b = zip_words ( land ) a b
let diff a b = zip_words (fun x y -> x land lnot y) a b

let equal a b =
  assert (a.n = b.n);
  a.words = b.words

let subset a b =
  assert (a.n = b.n);
  let ok = ref true in
  Array.iteri (fun i w -> if w land lnot b.words.(i) <> 0 then ok := false) a.words;
  !ok

let is_empty s = Array.for_all (fun w -> w = 0) s.words

let iter s f =
  for w = 0 to Array.length s.words - 1 do
    let word = ref s.words.(w) in
    while !word <> 0 do
      let low = !word land - !word in
      let b =
        (* index of the single set bit in [low] *)
        let rec go b x = if x = 1 then b else go (b + 1) (x lsr 1) in
        go 0 low
      in
      f ((w * bits_per_word) + b);
      word := !word land lnot low
    done
  done

let fold s init f =
  let acc = ref init in
  iter s (fun i -> acc := f !acc i);
  !acc

let elements s = List.rev (fold s [] (fun acc i -> i :: acc))

let of_list n l =
  let s = create n in
  List.iter (add s) l;
  s

let choose s =
  let r = ref (-1) in
  (try
     iter s (fun i ->
         r := i;
         raise Exit)
   with Exit -> ());
  if !r < 0 then raise Not_found else !r

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (elements s)
