let to_string ?(name = "G") ?label ?side g =
  let label = match label with Some f -> f | None -> string_of_int in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  Buffer.add_string buf "  node [shape=circle, fontsize=10];\n";
  for u = 0 to Graph.n_nodes g - 1 do
    let attrs =
      match side with
      | Some s when Bitset.mem s u -> ", style=filled, fillcolor=lightblue"
      | _ -> ""
    in
    Buffer.add_string buf
      (Printf.sprintf "  %d [label=\"%s\"%s];\n" u (label u) attrs)
  done;
  Graph.iter_edges g (fun u v ->
      let attrs =
        match side with
        | Some s when Bitset.mem s u <> Bitset.mem s v -> " [color=red, penwidth=2]"
        | _ -> ""
      in
      Buffer.add_string buf (Printf.sprintf "  %d -- %d%s;\n" u v attrs));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write ?name ?label ?side file g =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?name ?label ?side g))
