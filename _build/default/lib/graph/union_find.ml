type t = { parent : int array; rank : int array; mutable count : int }

let create n =
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; count = n }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t i j =
  let ri = find t i and rj = find t j in
  if ri = rj then false
  else begin
    let ri, rj = if t.rank.(ri) < t.rank.(rj) then (rj, ri) else (ri, rj) in
    t.parent.(rj) <- ri;
    if t.rank.(ri) = t.rank.(rj) then t.rank.(ri) <- t.rank.(ri) + 1;
    t.count <- t.count - 1;
    true
  end

let same t i j = find t i = find t j
let count t = t.count

let labels t =
  let n = Array.length t.parent in
  let label = Array.make n (-1) in
  let next = ref 0 in
  for i = 0 to n - 1 do
    let r = find t i in
    if label.(r) < 0 then begin
      label.(r) <- !next;
      incr next
    end
  done;
  Array.init n (fun i -> label.(find t i))

let classes t =
  let n = Array.length t.parent in
  let lab = labels t in
  let buckets = Array.make t.count [] in
  for i = n - 1 downto 0 do
    buckets.(lab.(i)) <- i :: buckets.(lab.(i))
  done;
  Array.to_list buckets
