(** Enumeration of k-element subsets of [0, n), used by the exact expansion
    and bisection minimizers.

    Enumeration order is colexicographic on the sorted member arrays, which
    allows the range of subsets to be split evenly across domains (see
    {!Parallel}): subsets are indexed by their combinatorial rank. *)

(** [binomial n k] is [n choose k] as an [int]. Saturates at [max_int] on
    overflow (sufficient for guarding enumeration sizes). *)
val binomial : int -> int -> int

(** [iter ~n ~k f] applies [f] to each sorted k-subset of [0, n), in
    lexicographic order. The array passed to [f] is reused between calls;
    copy it to retain it. *)
val iter : n:int -> k:int -> (int array -> unit) -> unit

(** [unrank ~n ~k r] is the k-subset of [0, n) with colexicographic rank [r]
    (0-based), as a sorted array. @raise Invalid_argument if [r] is out of
    range. *)
val unrank : n:int -> k:int -> int -> int array

(** [rank ~n subset] is the colexicographic rank of the sorted [subset]. *)
val rank : n:int -> int array -> int

(** [iter_range ~n ~k ~lo ~hi f] applies [f] to subsets with colex ranks in
    [lo, hi), in rank order. The array is reused; copy to retain. *)
val iter_range : n:int -> k:int -> lo:int -> hi:int -> (int array -> unit) -> unit

(** [iter_masks ~n f] applies [f] to every subset of [0, n) encoded as a bit
    mask, for [n <= 62], in increasing mask order. *)
val iter_masks : n:int -> (int -> unit) -> unit
