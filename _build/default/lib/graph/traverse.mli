(** Breadth-first traversal, connected components, distances and diameters. *)

(** [bfs_distances g src] is the array of hop distances from [src];
    unreachable nodes get [-1]. *)
val bfs_distances : Graph.t -> int -> int array

(** [bfs_multi g srcs] is the distance to the nearest source. *)
val bfs_multi : Graph.t -> int list -> int array

(** [shortest_path g u v] is a node sequence from [u] to [v] of minimum hop
    count, or [None] when disconnected. *)
val shortest_path : Graph.t -> int -> int -> int list option

(** Connected components as a [Union_find.t] over the nodes. *)
val components : Graph.t -> Union_find.t

(** Number of connected components. *)
val component_count : Graph.t -> int

(** [is_connected g] — vacuously true for the empty graph. *)
val is_connected : Graph.t -> bool

(** Eccentricity of a node: greatest distance to any reachable node. *)
val eccentricity : Graph.t -> int -> int

(** Diameter: maximum eccentricity.
    @raise Invalid_argument if the graph is disconnected or empty. *)
val diameter : Graph.t -> int

(** All-pairs hop distances by repeated BFS ([-1] for unreachable);
    O(n·m). *)
val all_pairs_distances : Graph.t -> int array array

(** Mean distance over ordered reachable pairs (excluding self-pairs).
    @raise Invalid_argument on graphs with under two nodes. *)
val average_distance : Graph.t -> float

(** Minimum eccentricity. @raise Invalid_argument if disconnected/empty. *)
val radius : Graph.t -> int

(** [neighbors_of_set g s] is the set of nodes outside [s] adjacent to [s] —
    the set [N(S)] of Section 1.3. *)
val neighbors_of_set : Graph.t -> Bitset.t -> Bitset.t

(** [boundary_edges g s] counts edges with exactly one endpoint in [s]
    (with multiplicity) — the quantity [C(S, S̄)] of Section 1.2. *)
val boundary_edges : Graph.t -> Bitset.t -> int
