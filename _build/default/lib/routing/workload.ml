module Butterfly = Bfly_networks.Butterfly
module Wrapped = Bfly_networks.Wrapped
module Perm = Bfly_graph.Perm

let greedy_permutation b perm =
  if Perm.size perm <> Butterfly.n b then
    invalid_arg "Workload.greedy_permutation: permutation must act on columns";
  Array.init (Butterfly.n b) (fun w ->
      Butterfly.monotone_path b ~input_col:w ~output_col:(Perm.apply perm w))

let greedy_random ~rng b =
  Array.init (Butterfly.n b) (fun w ->
      Butterfly.monotone_path b ~input_col:w
        ~output_col:(Random.State.int rng (Butterfly.n b)))

let all_to_random ~rng b =
  let size = Butterfly.size b in
  Array.init size (fun src ->
      let dst = Random.State.int rng size in
      if src = dst then [ src ] else Bfly_embed.Classic.butterfly_three_phase b src dst)

let all_to_random_wrapped ~rng w =
  let size = Wrapped.size w in
  Array.init size (fun src ->
      let dst = Random.State.int rng size in
      if src = dst then [ src ] else Bfly_embed.Classic.wrapped_three_phase w src dst)
