lib/routing/router.ml: Array Bfly_graph Hashtbl List Option Queue
