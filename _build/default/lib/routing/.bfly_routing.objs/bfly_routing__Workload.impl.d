lib/routing/workload.ml: Array Bfly_embed Bfly_graph Bfly_networks Random
