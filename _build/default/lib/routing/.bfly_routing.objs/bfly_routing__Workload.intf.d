lib/routing/workload.mli: Bfly_graph Bfly_networks Random
