lib/routing/router.mli: Bfly_graph
