module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset

type stats = {
  steps : int;
  delivered : int;
  total_hops : int;
  max_edge_queue : int;
}

let run g ~paths =
  (* validate and set up per-packet cursors *)
  let n_packets = Array.length paths in
  let path_arr = Array.map Array.of_list paths in
  Array.iter
    (fun p ->
      if Array.length p = 0 then invalid_arg "Router.run: empty path";
      for i = 0 to Array.length p - 2 do
        if not (G.mem_edge g p.(i) p.(i + 1)) then
          invalid_arg "Router.run: path uses a non-edge"
      done)
    path_arr;
  (* capacity per directed pair = number of parallel edges *)
  let capacity = Hashtbl.create (G.n_edges g) in
  G.iter_edges g (fun u v ->
      List.iter
        (fun key ->
          Hashtbl.replace capacity key
            (1 + Option.value ~default:0 (Hashtbl.find_opt capacity key)))
        [ (u, v); (v, u) ]);
  (* queues keyed by directed edge *)
  let queues : (int * int, int Queue.t) Hashtbl.t = Hashtbl.create 1024 in
  let enqueue key pkt =
    let q =
      match Hashtbl.find_opt queues key with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          Hashtbl.replace queues key q;
          q
    in
    Queue.add pkt q
  in
  let cursor = Array.make n_packets 0 in
  let delivered = ref 0 in
  let total_hops = ref 0 in
  let max_edge_queue = ref 0 in
  Array.iteri
    (fun pkt p ->
      if Array.length p = 1 then incr delivered
      else enqueue (p.(0), p.(1)) pkt)
    path_arr;
  let steps = ref 0 in
  while !delivered < n_packets do
    incr steps;
    if !steps > 100 * n_packets * (1 + G.n_nodes g) then
      failwith "Router.run: no progress (internal error)";
    (* phase 1: each directed edge releases up to its capacity, FIFO *)
    let moved = ref [] in
    Hashtbl.iter
      (fun key q ->
        max_edge_queue := max !max_edge_queue (Queue.length q);
        let cap = Option.value ~default:1 (Hashtbl.find_opt capacity key) in
        for _ = 1 to min cap (Queue.length q) do
          moved := Queue.pop q :: !moved
        done)
      queues;
    (* phase 2: advance the released packets *)
    List.iter
      (fun pkt ->
        incr total_hops;
        cursor.(pkt) <- cursor.(pkt) + 1;
        let p = path_arr.(pkt) in
        let i = cursor.(pkt) in
        if i = Array.length p - 1 then incr delivered
        else enqueue (p.(i), p.(i + 1)) pkt)
      !moved
  done;
  {
    steps = !steps;
    delivered = !delivered;
    total_hops = !total_hops;
    max_edge_queue = !max_edge_queue;
  }

let crossings ~side paths =
  let into = ref 0 and out = ref 0 in
  Array.iter
    (fun path ->
      let rec walk = function
        | a :: (b :: _ as rest) ->
            (match (Bitset.mem side a, Bitset.mem side b) with
            | false, true -> incr into
            | true, false -> incr out
            | _ -> ());
            walk rest
        | [ _ ] | [] -> ()
      in
      walk path)
    paths;
  (!into, !out)

let time_lower_bound ~crossings_one_way ~bw =
  if bw <= 0 then invalid_arg "Router.time_lower_bound: bw must be positive";
  (crossings_one_way + bw - 1) / bw
