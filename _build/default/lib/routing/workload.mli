(** Routing workloads on butterflies (Section 1.2).

    [greedy_*] route input-to-output traffic along the unique monotone
    paths (Lemma 2.3); [all_to_random] is the paper's motivating workload —
    every node of the network sends one message to an independently uniform
    node — routed along the three-phase paths of Theorem 4.3's embedding. *)

(** One packet per input column, destination column given by the
    permutation; path = monotone path. *)
val greedy_permutation :
  Bfly_networks.Butterfly.t -> Bfly_graph.Perm.t -> int list array

(** One packet per input column, destinations drawn uniformly (with
    repetition). *)
val greedy_random :
  rng:Random.State.t -> Bfly_networks.Butterfly.t -> int list array

(** Every node sends one message to a uniformly random node. *)
val all_to_random :
  rng:Random.State.t -> Bfly_networks.Butterfly.t -> int list array

(** Same on the wraparound butterfly (three-phase paths through level 0). *)
val all_to_random_wrapped :
  rng:Random.State.t -> Bfly_networks.Wrapped.t -> int list array
