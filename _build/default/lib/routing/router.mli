(** Synchronous store-and-forward packet routing (Section 1.2).

    Each undirected edge transmits at most one packet per direction per
    time step (parallel edges add capacity). Packets follow fixed,
    precomputed paths; contended edges serve packets in FIFO arrival
    order. *)

type stats = {
  steps : int;  (** time to deliver every packet *)
  delivered : int;
  total_hops : int;
  max_edge_queue : int;  (** worst backlog on a directed edge *)
}

(** [run g ~paths] routes one packet per path. Paths must be walks in [g]
    (length 0 allowed — delivered at time 0).
    @raise Invalid_argument on malformed paths. *)
val run : Bfly_graph.Graph.t -> paths:int list array -> stats

(** [crossings ~side paths] counts hops that cross the cut, in each
    direction: [(into side, out of side)]. *)
val crossings : side:Bfly_graph.Bitset.t -> int list array -> int * int

(** The paper's routing-time lower bound: with [c] crossings in one
    direction and bisection width [bw], delivery needs at least
    [⌈c / bw⌉] steps. *)
val time_lower_bound : crossings_one_way:int -> bw:int -> int
