lib/cuts/level_cut.ml: Array Bfly_graph Bfly_networks Exact List Option Seq
