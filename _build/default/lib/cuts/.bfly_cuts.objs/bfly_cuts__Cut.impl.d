lib/cuts/cut.ml: Array Bfly_graph List
