lib/cuts/compact.mli: Bfly_graph
