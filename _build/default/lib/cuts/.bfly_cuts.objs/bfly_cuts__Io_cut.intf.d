lib/cuts/io_cut.mli: Bfly_graph Bfly_networks
