lib/cuts/compact.ml: Array Bfly_graph List
