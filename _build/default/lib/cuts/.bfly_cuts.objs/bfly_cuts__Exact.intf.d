lib/cuts/exact.mli: Bfly_graph
