lib/cuts/io_cut.ml: Array Bfly_graph Bfly_networks List
