lib/cuts/constructions.ml: Bfly_graph Bfly_networks Format
