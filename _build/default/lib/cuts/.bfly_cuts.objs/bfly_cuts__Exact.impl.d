lib/cuts/exact.ml: Array Atomic Bfly_graph List Mutex Queue
