lib/cuts/heuristics.ml: Array Bfly_graph Cut Float List Option Random
