lib/cuts/cut.mli: Bfly_graph
