lib/cuts/heuristics.mli: Bfly_graph Random
