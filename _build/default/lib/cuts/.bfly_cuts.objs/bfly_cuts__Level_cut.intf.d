lib/cuts/level_cut.mli: Bfly_graph Bfly_networks
