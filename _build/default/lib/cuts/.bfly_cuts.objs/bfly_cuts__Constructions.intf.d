lib/cuts/constructions.mli: Bfly_graph Bfly_networks Format
