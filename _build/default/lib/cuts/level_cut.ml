module Bitset = Bfly_graph.Bitset
module B = Bfly_networks.Butterfly

let level_counts b side =
  Array.init (B.levels b) (fun level ->
      List.fold_left
        (fun acc v -> if Bitset.mem side v then acc + 1 else acc)
        0
        (B.level_nodes b level))

(* move one node across the cut within the 4-cycles of boundary [i] so that
   the counts of levels i and i+1 approach n/2; the chosen move never
   increases the capacity (the two cycle edges pay for the other two). *)
let balance_step b side i ~increasing =
  let n = B.n b in
  let mask = B.cross_mask b i in
  let moved = ref false in
  let w = ref 0 in
  while (not !moved) && !w < n do
    if !w land mask = 0 then begin
      let v = B.node b ~col:!w ~level:i in
      let v' = B.node b ~col:(!w lxor mask) ~level:i in
      let u = B.node b ~col:!w ~level:(i + 1) in
      let u' = B.node b ~col:(!w lxor mask) ~level:(i + 1) in
      let bottom = (if Bitset.mem side v then 1 else 0) + (if Bitset.mem side v' then 1 else 0) in
      let top = (if Bitset.mem side u then 1 else 0) + (if Bitset.mem side u' then 1 else 0) in
      if increasing && bottom < top then begin
        (* counts rise across the boundary: either add a bottom node (when
           both tops are in A) or remove a top node (when no bottom is) *)
        if top = 2 then begin
          Bitset.add side (if Bitset.mem side v then v' else v);
          moved := true
        end
        else begin
          assert (bottom = 0);
          Bitset.remove side (if Bitset.mem side u then u else u');
          moved := true
        end
      end
      else if (not increasing) && bottom > top then begin
        (* mirrored: either add a top node (both bottoms in A, so its two
           up-edges stop being cut) or remove a bottom node (no top in A,
           so its two down-edges stop being cut) *)
        if bottom = 2 then begin
          Bitset.add side (if Bitset.mem side u then u' else u);
          moved := true
        end
        else begin
          assert (top = 0);
          Bitset.remove side (if Bitset.mem side v then v else v');
          moved := true
        end
      end
    end;
    incr w
  done;
  assert !moved

let bisect_some_level b side0 =
  if B.log_n b < 1 then
    invalid_arg "Level_cut.bisect_some_level: need log n >= 1";
  let g = B.graph b in
  let size = B.size b in
  let s0 = Bitset.cardinal side0 in
  if not (s0 <= (size + 1) / 2 && size - s0 <= (size + 1) / 2) then
    invalid_arg "Level_cut.bisect_some_level: not a bisection";
  let side = Bitset.copy side0 in
  let n = B.n b in
  let half = n / 2 in
  let initial_capacity = Bfly_graph.Traverse.boundary_edges g side in
  let result = ref None in
  let guard = ref (10 * size * size) in
  while !result = None do
    decr guard;
    if !guard < 0 then failwith "Level_cut: no convergence (internal error)";
    let counts = level_counts b side in
    match
      Array.to_seq counts
      |> Seq.mapi (fun i c -> (i, c))
      |> Seq.find (fun (_, c) -> c = half)
    with
    | Some (level, _) -> result := Some level
    | None ->
        (* find an adjacent crossing pair and push one node across *)
        let rec find i =
          if i >= B.log_n b then assert false
          else if counts.(i) < half && counts.(i + 1) > half then (i, true)
          else if counts.(i) > half && counts.(i + 1) < half then (i, false)
          else find (i + 1)
        in
        let i, increasing = find 0 in
        balance_step b side i ~increasing;
        (* the local move never increases capacity *)
        assert (Bfly_graph.Traverse.boundary_edges g side <= initial_capacity)
  done;
  let level = Option.get !result in
  assert (Bfly_graph.Traverse.boundary_edges g side <= initial_capacity);
  (level, side)

let level_bisection_width b ~level ?upper_bound () =
  let u = Bitset.create (B.size b) in
  List.iter (Bitset.add u) (B.level_nodes b level);
  Exact.bisection_width ~u ?upper_bound (B.graph b)
