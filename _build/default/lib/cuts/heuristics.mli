(** Heuristic minimum-bisection solvers for instances beyond exact reach.

    None of these are part of the paper; they provide independent upper
    bounds on [BW] that the experiments compare against the paper's
    constructions and certified lower bounds. All return balanced cuts
    (side sizes within one of [N/2]). *)

(** [kernighan_lin ?rng ?restarts g] — classic KL swap passes from random
    balanced starts. O(passes·n²); intended for [n <= ~2000]. *)
val kernighan_lin :
  ?rng:Random.State.t -> ?restarts:int -> Bfly_graph.Graph.t -> int * Bfly_graph.Bitset.t

(** [fiduccia_mattheyses ?rng ?restarts g] — FM single-node moves with
    bucketed gains and balance tolerance 1. O(passes·m); practical to
    hundreds of thousands of edges. *)
val fiduccia_mattheyses :
  ?rng:Random.State.t -> ?restarts:int -> Bfly_graph.Graph.t -> int * Bfly_graph.Bitset.t

(** [spectral g] — Fiedler-vector median split (power iteration on the
    Laplacian complement, ones-deflated), refined by one FM descent. *)
val spectral : Bfly_graph.Graph.t -> int * Bfly_graph.Bitset.t

(** [annealing ?rng ?steps g] — simulated annealing over balanced-swap
    moves with geometric cooling. *)
val annealing :
  ?rng:Random.State.t -> ?steps:int -> Bfly_graph.Graph.t -> int * Bfly_graph.Bitset.t

(** [best_of ?rng g] runs a portfolio appropriate to the graph's size and
    returns the best cut found, labeled by the winning method. *)
val best_of : ?rng:Random.State.t -> Bfly_graph.Graph.t -> int * Bfly_graph.Bitset.t * string
