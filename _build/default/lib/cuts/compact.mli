(** Compact node sets (Section 2): [U] is compact in [G] when any cut can be
    modified — moving all of [U] to one side, leaving the other nodes in
    place — without increasing its capacity.

    Because the modified cut must agree with the original outside [U], the
    only candidates are [A ∪ U] and [A − U]; compactness is therefore
    decidable by checking [min(C(A∪U), C(A−U)) ≤ C(A)] for every cut [A].
    The exhaustive check is exponential and intended for the small instances
    of experiment E13 (Lemmas 2.8 and 2.9 on [B_4]). *)

(** [is_compact g u] checks the definition over all [2^(n-1)] cuts.
    @raise Invalid_argument when the graph has more than 24 nodes. *)
val is_compact : Bfly_graph.Graph.t -> Bfly_graph.Bitset.t -> bool

(** [counterexample g u] is a cut witnessing non-compactness, if any. *)
val counterexample : Bfly_graph.Graph.t -> Bfly_graph.Bitset.t -> Bfly_graph.Bitset.t option

(** [amenable_check g cut u] checks the {e amenable} property of Section 2
    for the specific cut: for every [k] in [0..|U|] there is a repartition
    of [U] (others fixed) with [|A' ∩ U| = k] and capacity at most the
    original. Exhaustive over the [2^|U|] repartitions; [|U| <= 20]. *)
val amenable_check : Bfly_graph.Graph.t -> Bfly_graph.Bitset.t -> Bfly_graph.Bitset.t -> bool
