module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module Subset = Bfly_graph.Subset
module Maxflow = Bfly_graph.Maxflow
module B = Bfly_networks.Butterfly

let directed_crossings b side =
  let count = ref 0 in
  G.iter_edges (B.graph b) (fun u v ->
      (* orient from the lower level to the higher *)
      let tail, head = if B.level_of b u < B.level_of b v then (u, v) else (v, u) in
      if Bitset.mem side tail && not (Bitset.mem side head) then incr count);
  !count

let column_cut b =
  let side = Bitset.create (B.size b) in
  let top = max 1 (B.n b / 2) in
  for idx = 0 to B.size b - 1 do
    if B.col_of b idx < top then Bitset.add side idx
  done;
  side

let satisfies_constraints b side =
  let half = (B.n b + 1) / 2 in
  let inputs_in =
    List.fold_left
      (fun acc v -> if Bitset.mem side v then acc + 1 else acc)
      0 (B.inputs b)
  in
  let outputs_out =
    List.fold_left
      (fun acc v -> if Bitset.mem side v then acc else acc + 1)
      0 (B.outputs b)
  in
  inputs_in >= half && outputs_out >= half

(* Minimum directed cut separating a fixed input set from a fixed output
   set: unit-capacity max flow with a super source/sink. *)
let min_cut_for b ~inputs_in_s ~outputs_out =
  let size = B.size b in
  let s = size and t_ = size + 1 in
  let net = Maxflow.create (size + 2) in
  G.iter_edges (B.graph b) (fun u v ->
      let tail, head = if B.level_of b u < B.level_of b v then (u, v) else (v, u) in
      Maxflow.add_edge net ~src:tail ~dst:head ~cap:1);
  let inf = 4 * B.n b * (B.log_n b + 1) in
  List.iter
    (fun col -> Maxflow.add_edge net ~src:s ~dst:(B.node b ~col ~level:0) ~cap:inf)
    inputs_in_s;
  List.iter
    (fun col ->
      Maxflow.add_edge net ~src:(B.node b ~col ~level:(B.log_n b)) ~dst:t_ ~cap:inf)
    outputs_out;
  let value = Maxflow.max_flow net ~s ~t_ in
  let side_with_terminals = Maxflow.min_cut_side net ~s in
  let side = Bitset.create size in
  for v = 0 to size - 1 do
    if Bitset.mem side_with_terminals v then Bitset.add side v
  done;
  (value, side)

let exact b =
  let n = B.n b in
  if n > 8 then
    invalid_arg "Io_cut.exact: enumeration over input/output choices is \
                 practical only for n <= 8";
  let half = (n + 1) / 2 in
  let best = ref None in
  (* by the column-xor automorphism, the input set may be assumed to
     contain column 0 *)
  Subset.iter ~n:(n - 1) ~k:(half - 1) (fun rest_in ->
      let inputs_in_s = 0 :: List.map (fun c -> c + 1) (Array.to_list rest_in) in
      Subset.iter ~n ~k:half (fun outs ->
          let outputs_out = Array.to_list outs in
          let value, side = min_cut_for b ~inputs_in_s ~outputs_out in
          match !best with
          | Some (v, _) when v <= value -> ()
          | _ -> best := Some (value, side)))
      ;
  match !best with
  | Some (v, side) ->
      (* fill the side so the witness satisfies the constraints even on
         nodes the flow left unreached: unreached non-sink-side nodes are
         already outside; the constraints hold by construction *)
      assert (satisfies_constraints b side);
      assert (directed_crossings b side = v);
      (v, side)
  | None -> invalid_arg "Io_cut.exact: degenerate butterfly"
