(** Directed input/output separation (Section 1.2).

    Kruskal and Snir's bandwidth argument uses a variant bisection notion:
    every butterfly edge is directed from level [i] to level [i+1], and one
    minimizes the number of directed edges from [S] to [S̄] over cuts where
    [S] contains at least [n/2] inputs and [S̄] at least [n/2] outputs.
    The paper notes this value is exactly [n/2], achieved by the column
    cut. Here both halves are computational: an exact branch-and-bound for
    small [n] and the construction for all [n]. *)

(** Directed crossing count of a cut (edges oriented toward higher levels,
    counted when the tail is in [S] and the head outside). *)
val directed_crossings :
  Bfly_networks.Butterfly.t -> Bfly_graph.Bitset.t -> int

(** The column-split construction: value [n/2], constraints satisfied. *)
val column_cut : Bfly_networks.Butterfly.t -> Bfly_graph.Bitset.t

(** [exact b] is the minimum directed crossing count together with a
    witness, by branch and bound. Practical for [B_8] and below. *)
val exact : Bfly_networks.Butterfly.t -> int * Bfly_graph.Bitset.t

(** [satisfies_constraints b s] — at least [⌈n/2⌉] inputs in [s] and at
    least [⌈n/2⌉] outputs outside it. *)
val satisfies_constraints :
  Bfly_networks.Butterfly.t -> Bfly_graph.Bitset.t -> bool
