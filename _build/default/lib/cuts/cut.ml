module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset

type t = { graph : G.t; side : Bitset.t }

let make graph side =
  if Bitset.capacity side <> G.n_nodes graph then
    invalid_arg "Cut.make: side set capacity must match node count";
  { graph; side }

let graph c = c.graph
let side c = c.side
let capacity c = Bfly_graph.Traverse.boundary_edges c.graph c.side
let side_size c = Bitset.cardinal c.side

let is_bisection c =
  let n = G.n_nodes c.graph in
  let s = side_size c in
  let half = (n + 1) / 2 in
  s <= half && n - s <= half

let bisects c u =
  let total = Bitset.cardinal u in
  let a = Bitset.cardinal (Bitset.inter c.side u) in
  let b = total - a in
  abs (a - b) <= 1

let cut_edges c =
  let acc = ref [] in
  G.iter_edges c.graph (fun u v ->
      if Bitset.mem c.side u <> Bitset.mem c.side v then acc := (u, v) :: !acc);
  List.rev !acc

module State = struct
  type state = {
    g : G.t;
    in_a : Bitset.t;
    gains : int array;
    mutable cap : int;
    mutable size_a : int;
  }

  let create g side =
    if Bitset.capacity side <> G.n_nodes g then
      invalid_arg "Cut.State.create: side set capacity must match node count";
    let in_a = Bitset.copy side in
    let n = G.n_nodes g in
    let gains = Array.make n 0 in
    let cap = ref 0 in
    for v = 0 to n - 1 do
      let mv = Bitset.mem in_a v in
      G.iter_neighbors g v (fun w ->
          if Bitset.mem in_a w = mv then gains.(v) <- gains.(v) - 1
          else begin
            gains.(v) <- gains.(v) + 1;
            incr cap
          end)
    done;
    { g; in_a; gains; cap = !cap / 2; size_a = Bitset.cardinal in_a }

  let capacity st = st.cap
  let side_size st = st.size_a
  let in_side st v = Bitset.mem st.in_a v
  let gain st v = st.gains.(v)

  let flip st v =
    let was_a = Bitset.mem st.in_a v in
    st.cap <- st.cap - st.gains.(v);
    st.gains.(v) <- -st.gains.(v);
    Bitset.set st.in_a v (not was_a);
    st.size_a <- (if was_a then st.size_a - 1 else st.size_a + 1);
    G.iter_neighbors st.g v (fun w ->
        if w <> v then begin
          (* edge v-w: if w was on v's old side the edge becomes external
             for w (+2 to w's gain... gain counts ext - int) *)
          if Bitset.mem st.in_a w = was_a then st.gains.(w) <- st.gains.(w) + 2
          else st.gains.(w) <- st.gains.(w) - 2
        end)

  let side st = Bitset.copy st.in_a
end
