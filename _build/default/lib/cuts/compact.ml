module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset

let mask_of_bitset s = Bitset.fold s 0 (fun m i -> m lor (1 lsl i))

let capacity_of_mask edges m =
  Array.fold_left
    (fun acc (a, b) ->
      if (m lsr a) land 1 <> (m lsr b) land 1 then acc + 1 else acc)
    0 edges

let find_violation g u =
  let n = G.n_nodes g in
  if n > 24 then invalid_arg "Compact: graph too large for exhaustive check";
  let edges = G.edges g in
  let u_mask = mask_of_bitset u in
  let violation = ref None in
  (* complement symmetry: fix node 0's side *)
  (try
     for rest = 0 to (1 lsl (n - 1)) - 1 do
       let m = (rest lsl 1) lor 1 in
       let c = capacity_of_mask edges m in
       let with_u = capacity_of_mask edges (m lor u_mask) in
       let without_u = capacity_of_mask edges (m land lnot u_mask) in
       if min with_u without_u > c then begin
         violation := Some m;
         raise Exit
       end
     done
   with Exit -> ());
  !violation

let is_compact g u = find_violation g u = None

let counterexample g u =
  match find_violation g u with
  | None -> None
  | Some m ->
      let n = G.n_nodes g in
      let side = Bitset.create n in
      for i = 0 to n - 1 do
        if (m lsr i) land 1 = 1 then Bitset.add side i
      done;
      Some side

let amenable_check g cut u =
  let u_list = Bitset.elements u in
  let k_u = List.length u_list in
  if k_u > 20 then invalid_arg "Compact.amenable_check: |U| too large";
  let edges = G.edges g in
  let base = mask_of_bitset cut in
  let u_arr = Array.of_list u_list in
  let u_mask = mask_of_bitset u in
  let c0 = capacity_of_mask edges base in
  (* best achievable capacity for each |A' ∩ U| = k *)
  let best = Array.make (k_u + 1) max_int in
  for sub = 0 to (1 lsl k_u) - 1 do
    let m = ref (base land lnot u_mask) in
    let cnt = ref 0 in
    Array.iteri
      (fun i v ->
        if (sub lsr i) land 1 = 1 then begin
          m := !m lor (1 lsl v);
          incr cnt
        end)
      u_arr;
    let c = capacity_of_mask edges !m in
    if c < best.(!cnt) then best.(!cnt) <- c
  done;
  Array.for_all (fun b -> b <= c0) best
