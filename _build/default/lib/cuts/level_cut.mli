(** Constructive Lemma 2.12(1): any bisection of [B_n] can be transformed,
    without increasing its capacity, into a cut that bisects some level.

    The proof's local move is implemented literally: at a boundary [i] with
    [|A ∩ L_i| <= n/2 <= |A ∩ L_(i+1)|] and neither level bisected, the
    edges between the two levels decompose into node-disjoint 4-cycles
    [v–u–v'–u'] (the eponymous "butterflies"); some 4-cycle has fewer [A]
    nodes below than above, and moving one node across the cut shrinks the
    imbalance while the moved node's two cycle edges pay for its at most
    two other edges. *)

(** [bisect_some_level b side] — [side] must be a bisection of [B_n].
    Returns [(level, side')] where [side'] bisects level [level] and
    [C(side') <= C(side)]. The returned cut need no longer be a bisection
    of the whole node set (the lemma does not need it to be).
    @raise Invalid_argument if [side] is not a bisection. *)
val bisect_some_level :
  Bfly_networks.Butterfly.t -> Bfly_graph.Bitset.t -> int * Bfly_graph.Bitset.t

(** [level_bisection_width b ~level ?upper_bound ()] is [BW(B_n, L_level)]
    — the minimum capacity over cuts bisecting the given level — by branch
    and bound (small instances). *)
val level_bisection_width :
  Bfly_networks.Butterfly.t -> level:int -> ?upper_bound:int -> unit ->
  int * Bfly_graph.Bitset.t
