(** Plain-text table rendering for the experiment harness. *)

(** [table ~title ~header rows] renders an aligned monospace table. *)
val table : title:string -> header:string list -> string list list -> string

(** Format helpers. *)
val fint : int -> string

val ffloat : ?digits:int -> float -> string
val fbool : bool -> string
val fopt : ('a -> string) -> 'a option -> string
