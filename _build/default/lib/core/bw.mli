(** Best-known bisection-width brackets per network — the library's headline
    API, aggregating the paper's constructions (upper bounds), embedding and
    mesh-of-stars reductions (lower bounds), exact solvers (small instances)
    and heuristics. *)

type bracket = {
  lower : int;  (** certified lower bound *)
  upper : int;  (** capacity of a concrete bisection *)
  lower_method : string;
  upper_method : string;
  witness : Bfly_graph.Bitset.t;  (** a bisection achieving [upper] *)
}

(** [exact br] — the bracket pins the value. *)
val exact : bracket -> bool

val pp : Format.formatter -> bracket -> unit

(** [butterfly ?use_heuristics ?exact_limit n] brackets [BW(B_n)].
    Lower bound: Lemma 2.13 via [BW(MOS_{n,n}, M2)] (Theorem 2.20's
    [> 2(√2−1)n]). Upper: the best of the folklore column cut, the
    mesh-of-stars pullback construction and (optionally) heuristics.
    Instances with at most [exact_limit] nodes (default 32) are solved
    exactly by branch and bound. *)
val butterfly : ?use_heuristics:bool -> ?exact_limit:int -> int -> bracket

(** [wrapped n] — [BW(W_n) = n] (Lemma 3.2): column cut above, the
    [K_{n,n}]-embedding argument below (measured for [n <= 64], by the
    proved congestion value beyond). Always exact. *)
val wrapped : int -> bracket

(** [ccc n] — [BW(CCC_n) = n/2] (Lemma 3.3). Always exact. *)
val ccc : int -> bracket

(** The paper's asymptotic constant [2(√2−1)] ≈ 0.8284. *)
val butterfly_constant : float
