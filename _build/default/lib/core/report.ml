let table ~title ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> width.(i) <- max width.(i) (String.length cell)))
    all;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let render_row r =
    List.iteri
      (fun i cell ->
        Buffer.add_string buf (Printf.sprintf "%-*s" (width.(i) + 2) cell))
      r;
    Buffer.add_char buf '\n'
  in
  render_row header;
  let rule = List.map (fun h -> String.make (String.length h) '-') header in
  render_row rule;
  List.iter render_row rows;
  Buffer.contents buf

let fint = string_of_int
let ffloat ?(digits = 3) x = Printf.sprintf "%.*f" digits x
let fbool b = if b then "yes" else "NO"
let fopt f = function Some x -> f x | None -> "-"
