module Bitset = Bfly_graph.Bitset
module Butterfly = Bfly_networks.Butterfly
module Wrapped = Bfly_networks.Wrapped
module Ccc = Bfly_networks.Ccc
module Constructions = Bfly_cuts.Constructions

type bracket = {
  lower : int;
  upper : int;
  lower_method : string;
  upper_method : string;
  witness : Bfly_graph.Bitset.t;
}

let exact br = br.lower = br.upper

let pp ppf br =
  Format.fprintf ppf "[%d (%s), %d (%s)]%s" br.lower br.lower_method br.upper
    br.upper_method
    (if exact br then " exact" else "")

let butterfly_constant = 2.0 *. (sqrt 2.0 -. 1.0)

let capacity g side = Bfly_graph.Traverse.boundary_edges g side

let butterfly ?(use_heuristics = false) ?(exact_limit = 32) n =
  let b = Butterfly.of_inputs n in
  let g = Butterfly.graph b in
  let candidates = ref [] in
  let add name side = candidates := (capacity g side, name, side) :: !candidates in
  add "column cut" (Constructions.butterfly_column_cut b);
  if Butterfly.log_n b >= 2 then begin
    let params, cost, side = Constructions.best_mos_pullback b in
    ignore cost;
    add
      (Format.asprintf "MOS pullback %a" Constructions.pp_mos_params params)
      side
  end;
  if use_heuristics then begin
    let c, side, name = Bfly_cuts.Heuristics.best_of g in
    ignore c;
    add ("heuristic " ^ name) side
  end;
  let upper, upper_method, witness =
    List.fold_left
      (fun (bc, bn, bs) (c, name, side) ->
        if c < bc then (c, name, side) else (bc, bn, bs))
      (max_int, "", Bitset.create (Bfly_graph.Graph.n_nodes g))
      !candidates
  in
  let lower, lower_method =
    if n = 1 then (0, "trivial")
    else
      ( Bfly_mos.Mos_analysis.butterfly_lower_bound n,
        "Lemma 2.13 (mesh-of-stars reduction)" )
  in
  if Bfly_graph.Graph.n_nodes g <= exact_limit && n > 1 then begin
    let c, side = Bfly_cuts.Exact.bisection_width ~upper_bound:upper g in
    {
      lower = c;
      upper = c;
      lower_method = "branch and bound (exact)";
      upper_method = "branch and bound (exact)";
      witness = side;
    }
  end
  else { lower; upper; lower_method; upper_method; witness }

let wrapped n =
  let w = Wrapped.of_inputs n in
  let side = Constructions.wrapped_column_cut w in
  let upper = capacity (Wrapped.graph w) side in
  let lower, lower_method =
    if n <= 64 then
      ( Bfly_embed.Lower_bounds.wrapped_bw_lower_bound w,
        "Lemma 3.1 embedding (measured congestion)" )
    else (n, "Lemma 3.1 embedding (proved congestion n/2)")
  in
  {
    lower;
    upper;
    lower_method;
    upper_method = "column cut (Lemma 3.2)";
    witness = side;
  }

let ccc n =
  let rec log2 l v = if v >= n then l else log2 (l + 1) (2 * v) in
  let log_n = log2 0 1 in
  if 1 lsl log_n <> n then invalid_arg "Bw.ccc: n must be a power of two";
  let c = Ccc.create ~log_n in
  let side = Constructions.ccc_dimension_cut c in
  let upper = capacity (Ccc.graph c) side in
  let lower, lower_method =
    if n <= 64 then
      ( Bfly_embed.Lower_bounds.ccc_bw_lower_bound c,
        "Lemma 3.3 embedding (measured congestion)" )
    else (n / 2, "Lemma 3.3 embedding (proved congestion 2)")
  in
  {
    lower;
    upper;
    lower_method;
    upper_method = "dimension cut (Lemma 3.3)";
    witness = side;
  }
