lib/core/report.ml: Array Buffer List Printf String
