lib/core/bw.mli: Bfly_graph Format
