lib/core/experiments.mli:
