lib/core/report.mli:
