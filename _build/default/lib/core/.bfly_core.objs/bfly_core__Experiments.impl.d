lib/core/experiments.ml: Array Bfly_cuts Bfly_embed Bfly_expansion Bfly_graph Bfly_mos Bfly_networks Bfly_routing Buffer Bw Format Fun List Printf Random Report String
