lib/core/bw.ml: Bfly_cuts Bfly_embed Bfly_graph Bfly_mos Bfly_networks Format List
