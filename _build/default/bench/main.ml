(* Benchmark harness: regenerates every table and figure of the paper
   (experiments E1-E13, F1-F2 of DESIGN.md), then times the library's
   computational kernels with Bechamel — one Test per experiment's kernel. *)

open Bechamel
open Toolkit
module Butterfly = Bfly_networks.Butterfly
module Wrapped = Bfly_networks.Wrapped
module Benes = Bfly_networks.Benes
module Perm = Bfly_graph.Perm

let run_experiments () =
  print_endline "==============================================================";
  print_endline " Reproduction tables (per-experiment index in DESIGN.md)";
  print_endline "==============================================================";
  List.iter
    (fun (name, f) ->
      Printf.printf "\n--- %s ---\n%s%!" name (f ()))
    Bfly_core.Experiments.all

(* one Bechamel test per experiment kernel *)
let micro_tests =
  let rng = Random.State.make [| 0xbe9c4 |] in
  let b8 = Butterfly.of_inputs 8 in
  let b256 = Butterfly.of_inputs 256 in
  let b1024 = Butterfly.of_inputs 1024 in
  let w256 = Wrapped.of_inputs 256 in
  let column_cut = Bfly_cuts.Constructions.butterfly_column_cut b256 in
  let witness = Bfly_expansion.Witness.wn_ee ~dim:4 w256 in
  let benes = Benes.create ~dim:6 in
  let benes_perm = Perm.random ~rng (2 * Benes.n benes) in
  let greedy_paths =
    Bfly_routing.Workload.greedy_random ~rng (Butterfly.of_inputs 16)
  in
  let g16 = Butterfly.graph (Butterfly.of_inputs 16) in
  let stage = Staged.stage in
  Test.make_grouped ~name:"bfly"
    [
      Test.make ~name:"E10:build-butterfly-256"
        (stage (fun () -> ignore (Butterfly.of_inputs 256)));
      Test.make ~name:"E1:cut-capacity-B256"
        (stage (fun () ->
             ignore
               (Bfly_graph.Traverse.boundary_edges (Butterfly.graph b256)
                  column_cut)));
      Test.make ~name:"E1:mos-pullback-search-B1024"
        (stage (fun () -> ignore (Bfly_cuts.Constructions.best_mos_pullback b1024)));
      Test.make ~name:"E1:exact-bb-B4"
        (stage (fun () ->
             ignore
               (Bfly_cuts.Exact.bisection_width ~upper_bound:4
                  (Butterfly.graph (Butterfly.of_inputs 4)))));
      Test.make ~name:"E2:bw-mos-closed-form-j256"
        (stage (fun () -> ignore (Bfly_mos.Mos_analysis.bw_m2 256)));
      Test.make ~name:"E3:knn-embedding-congestion-B8"
        (stage (fun () ->
             ignore
               (Bfly_embed.Embedding.congestion
                  (Bfly_embed.Classic.knn_into_butterfly b8))));
      Test.make ~name:"E5:credit-scheme-W256"
        (stage (fun () -> ignore (Bfly_expansion.Credit.wn_edge w256 witness)));
      Test.make ~name:"E5:exact-EE-W8-k6"
        (stage (fun () ->
             ignore
               (Bfly_expansion.Expansion.ee_exact
                  (Wrapped.graph (Wrapped.of_inputs 8))
                  ~k:6)));
      Test.make ~name:"E11:route-random-B16"
        (stage (fun () -> ignore (Bfly_routing.Router.run g16 ~paths:greedy_paths)));
      Test.make ~name:"E12:benes-looping-dim6"
        (stage (fun () -> ignore (Benes.route_ports benes benes_perm)));
      Test.make ~name:"Lemma2.3:monotone-path-B1024"
        (stage (fun () ->
             ignore (Butterfly.monotone_path b1024 ~input_col:37 ~output_col:901)));
      Test.make ~name:"E17:rearrange-route-B64"
        (stage
           (let b64 = Butterfly.of_inputs 64 in
            let p = Perm.random ~rng 64 in
            fun () -> ignore (Bfly_embed.Rearrange.route_ports b64 p)));
      Test.make ~name:"E15:io-separation-maxflow-B8"
        (stage (fun () -> ignore (Bfly_cuts.Io_cut.exact b8)));
      Test.make ~name:"E16:level-bisect-B32"
        (stage
           (let b32 = Butterfly.of_inputs 32 in
            let side = Bfly_cuts.Constructions.butterfly_column_cut b32 in
            fun () -> ignore (Bfly_cuts.Level_cut.bisect_some_level b32 side)));
      Test.make ~name:"E14:layout-B256"
        (stage (fun () -> ignore (Bfly_networks.Layout.butterfly_grid b256)));
    ]

let run_micro () =
  print_endline "\n==============================================================";
  print_endline " Kernel micro-benchmarks (Bechamel, monotonic clock)";
  print_endline "==============================================================";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] micro_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let rows = List.sort compare rows in
  Printf.printf "%-42s %16s %8s\n" "kernel" "time/run" "r^2";
  Printf.printf "%s\n" (String.make 68 '-');
  List.iter
    (fun (name, est) ->
      let time =
        match Analyze.OLS.estimates est with
        | Some [ ns ] ->
            if ns >= 1e9 then Printf.sprintf "%10.3f s" (ns /. 1e9)
            else if ns >= 1e6 then Printf.sprintf "%10.3f ms" (ns /. 1e6)
            else if ns >= 1e3 then Printf.sprintf "%10.3f us" (ns /. 1e3)
            else Printf.sprintf "%10.1f ns" ns
        | _ -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square est with
        | Some r -> Printf.sprintf "%.3f" r
        | None -> "-"
      in
      Printf.printf "%-42s %16s %8s\n" name time r2)
    rows

let () =
  run_experiments ();
  run_micro ()
