(* Why expansion matters for routing (Section 1.3).

   The bit-reversal permutation is the classic adversary for the greedy
   butterfly: all monotone paths funnel through few middle-level nodes and
   some edge carries ~sqrt(n) packets. A multibutterfly offers d random
   choices into each half-cluster, so a load-aware path selector spreads
   the same traffic almost flat — the structural expansion the paper points
   to when explaining which networks route in O(log N) deterministically.

   Run with: dune exec examples/expander_routing.exe *)

module B = Bfly_networks.Butterfly
module MB = Bfly_networks.Multibutterfly
module G = Bfly_graph.Graph

let bit_reverse log_n w =
  let r = ref 0 in
  for b = 0 to log_n - 1 do
    if w land (1 lsl b) <> 0 then r := !r lor (1 lsl (log_n - 1 - b))
  done;
  !r

(* max per-edge load of the greedy monotone paths *)
let butterfly_congestion b perm_fn =
  let load = Hashtbl.create 1024 in
  let bump a c =
    let key = (min a c, max a c) in
    Hashtbl.replace load key (1 + Option.value ~default:0 (Hashtbl.find_opt load key))
  in
  for w = 0 to B.n b - 1 do
    let path = B.monotone_path b ~input_col:w ~output_col:(perm_fn w) in
    let rec walk = function
      | a :: (c :: _ as rest) ->
          bump a c;
          walk rest
      | _ -> ()
    in
    walk path
  done;
  Hashtbl.fold (fun _ v acc -> max v acc) load 0

(* load-aware greedy path selection on the multibutterfly: at each level
   pick the least-loaded edge into the half-cluster that matches the next
   destination bit *)
let multibutterfly_congestion mb perm_fn =
  let g = MB.graph mb in
  let n = MB.n mb in
  let log_n = MB.log_n mb in
  let load = Hashtbl.create 1024 in
  let edge_load a c =
    Option.value ~default:0 (Hashtbl.find_opt load (min a c, max a c))
  in
  let bump a c =
    let key = (min a c, max a c) in
    Hashtbl.replace load key (1 + edge_load a c)
  in
  let max_load = ref 0 in
  for w = 0 to n - 1 do
    let dest = perm_fn w in
    let cur = ref (MB.node mb ~col:w ~level:0) in
    for level = 0 to log_n - 1 do
      let half_mask = 1 lsl (log_n - level - 1) in
      let want = dest land half_mask <> 0 in
      (* candidate edges: neighbors one level down, in the wanted half *)
      let best = ref None in
      G.iter_neighbors g !cur (fun v ->
          if v / n = level + 1 && (v mod n) land half_mask <> 0 = want then begin
            let l = edge_load !cur v in
            match !best with
            | Some (bl, _) when bl <= l -> ()
            | _ -> best := Some (l, v)
          end);
      match !best with
      | None -> assert false
      | Some (_, v) ->
          bump !cur v;
          max_load := max !max_load (edge_load !cur v);
          cur := v
    done;
    assert (!cur mod n = dest)
  done;
  !max_load

let () =
  let rng = Random.State.make [| 0xe9a |] in
  Printf.printf
    "Greedy routing of the bit-reversal permutation: max edge congestion\n\n";
  Printf.printf "%6s %12s %18s %18s\n" "n" "butterfly" "multibfly d=2" "multibfly d=3";
  List.iter
    (fun log_n ->
      let n = 1 lsl log_n in
      let b = B.create ~log_n in
      let perm = bit_reverse log_n in
      let cb = butterfly_congestion b perm in
      let cm d =
        let mb = MB.create ~rng ~log_n ~d () in
        multibutterfly_congestion mb perm
      in
      Printf.printf "%6d %12d %18d %18d\n" n cb (cm 2) (cm 3))
    [ 4; 6; 8; 10 ];
  Printf.printf
    "\nThe butterfly's congestion grows like sqrt(n) (a single choice per\n\
     level); the multibutterfly's d-way choice keeps it near constant.\n"
