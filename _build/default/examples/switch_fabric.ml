(* Dimensioning an interconnect: the Section 1.2 workflow.

   A parallel machine or ATM switch designer choosing between a butterfly,
   a wraparound butterfly and cube-connected cycles cares about three
   numbers this library computes: the bisection width (communication
   bottleneck), the routing time N/(4 BW) under all-to-random traffic, and
   Thompson's VLSI area lower bound A >= BW^2.

   Run with: dune exec examples/switch_fabric.exe *)

module G = Bfly_graph.Graph
module Butterfly = Bfly_networks.Butterfly
module Wrapped = Bfly_networks.Wrapped
module Ccc = Bfly_networks.Ccc
module Bw = Bfly_core.Bw
module Report = Bfly_core.Report

let () =
  let rng = Random.State.make [| 0xfab |] in
  let rows =
    List.concat_map
      (fun log_n ->
        let n = 1 lsl log_n in
        let networks =
          [
            ( Printf.sprintf "B_%d" n,
              Butterfly.size (Butterfly.create ~log_n),
              Bw.butterfly n );
            ( Printf.sprintf "W_%d" n,
              Wrapped.size (Wrapped.create ~log_n),
              Bw.wrapped n );
            ( Printf.sprintf "CCC_%d" n,
              Ccc.size (Ccc.create ~log_n),
              Bw.ccc n );
          ]
        in
        List.map
          (fun (name, size, br) ->
            let bw = br.Bw.upper in
            [
              name;
              Report.fint size;
              Report.fint bw;
              Report.fint ((size + (4 * bw) - 1) / (4 * bw));
              Report.fint (bw * bw);
            ])
          networks)
      [ 4; 5; 6 ]
  in
  print_string
    (Report.table
       ~title:
         "Interconnect sizing: bisection width, routing-time bound \
          N/(4 BW), Thompson area bound BW^2"
       ~header:[ "network"; "N"; "BW"; "T >= N/4BW"; "A >= BW^2" ]
       rows);

  (* validate the routing-time bound against a simulated run on B_16 *)
  let b = Butterfly.of_inputs 16 in
  let paths = Bfly_routing.Workload.all_to_random ~rng b in
  let stats = Bfly_routing.Router.run (Butterfly.graph b) ~paths in
  let br = Bw.butterfly 16 in
  let into, out = Bfly_routing.Router.crossings ~side:br.Bw.witness paths in
  Printf.printf
    "\nSimulated all-to-random on B_16: %d messages crossed the minimum \
     bisection (N/4 = %d per direction), delivered in %d steps (bound: %d).\n"
    (into + out)
    (Butterfly.size b / 4)
    stats.Bfly_routing.Router.steps
    (Bfly_routing.Router.time_lower_bound
       ~crossings_one_way:(max into out)
       ~bw:br.Bw.upper)
