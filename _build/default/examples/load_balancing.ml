(* Information dissemination and the node-expansion function (Section 1.3).

   "If each node in a set of k nodes holds a small piece of information,
   they can increase the number of nodes holding the information to
   k + NE(G,k) in a single step."

   We broadcast a token from the worst-case starting sets (the paper's
   sub-butterfly witnesses, which minimize expansion) and from random sets
   of the same size, and watch the growth; NE(G,k) is the per-step growth
   guarantee.

   Run with: dune exec examples/load_balancing.exe *)

module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module W = Bfly_networks.Wrapped
module Expansion = Bfly_expansion.Expansion

let spread g set =
  let next = Bfly_graph.Traverse.neighbors_of_set g set in
  let merged = Bitset.union set next in
  merged

let run_broadcast g name start =
  Printf.printf "%-24s" name;
  let set = ref start in
  let steps = ref 0 in
  while Bitset.cardinal !set < G.n_nodes g do
    Printf.printf " %4d" (Bitset.cardinal !set);
    set := spread g !set;
    incr steps
  done;
  Printf.printf " %4d  (%d steps)\n" (Bitset.cardinal !set) !steps

let () =
  let w = W.of_inputs 64 in
  let g = W.graph w in
  Printf.printf "Broadcast on W_64 (%d nodes); holders per step:\n\n"
    (G.n_nodes g);
  (* worst-case start: the dim-3 sub-butterfly witness, k = 32 *)
  let witness = Bfly_expansion.Witness.wn_ee ~dim:3 w in
  let k = Bitset.cardinal witness in
  run_broadcast g "sub-butterfly (worst)" witness;
  (* random starting sets of the same size *)
  let rng = Random.State.make [| 0xbca57 |] in
  for i = 1 to 3 do
    let p = Bfly_graph.Perm.random ~rng (G.n_nodes g) in
    let s = Bitset.create (G.n_nodes g) in
    for j = 0 to k - 1 do
      Bitset.add s (Bfly_graph.Perm.apply p j)
    done;
    run_broadcast g (Printf.sprintf "random set %d" i) s
  done;
  Printf.printf
    "\nPer-step growth guarantee: k + NE(W_n, k). At k = %d the witness has \
     NE = %d neighbors — the minimum possible is what Lemma 4.5 bounds from \
     below: (1-o(1))k/log k = %.1f.\n"
    k
    (Expansion.node_expansion g witness)
    (Bfly_expansion.Credit.Bounds.ne_wn_lower k);
  (* certified per-set bound from the credit scheme *)
  let r = Bfly_expansion.Credit.wn_node w witness in
  Printf.printf
    "Credit scheme certificate for the witness set: NE >= %d (actual %d).\n"
    r.Bfly_expansion.Credit.certified r.Bfly_expansion.Credit.actual
