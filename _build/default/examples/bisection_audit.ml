(* Auditing the folklore: is BW(B_n) really n?

   The paper's surprise (Theorem 2.20) is that the folklore answer n is
   wrong by a constant factor: BW(B_n) = 2(sqrt 2 - 1) n + o(n) ~ 0.828 n.
   This example reproduces the full audit for one size: the certified lower
   bound through the mesh-of-stars reduction (Lemma 2.13), the explicit
   sub-n bisection from the pullback construction (Lemmas 2.11-2.16), and
   the folklore column cut they both beat.

   Run with: dune exec examples/bisection_audit.exe -- [log_n]  (default 10) *)

module B = Bfly_networks.Butterfly
module Cut = Bfly_cuts.Cut
module Cons = Bfly_cuts.Constructions

let () =
  let log_n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 10
  in
  let b = B.create ~log_n in
  let g = B.graph b in
  let n = B.n b in
  Printf.printf "Auditing BW(B_%d): N = %d nodes, %d edges.\n\n" n (B.size b)
    (Bfly_graph.Graph.n_edges g);

  (* 1. the folklore cut *)
  let folklore = Cons.butterfly_column_cut b in
  let fc = Cut.make g folklore in
  Printf.printf "Folklore column cut:       capacity %d  (= n)\n"
    (Cut.capacity fc);

  (* 2. the paper's construction *)
  let params, cost, side = Cons.best_mos_pullback b in
  let cut = Cut.make g side in
  assert (Cut.is_bisection cut);
  assert (Cut.capacity cut = cost);
  Format.printf
    "Mesh-of-stars pullback:    capacity %d  (params %a; %.4f n)@." cost
    Cons.pp_mos_params params
    (float_of_int cost /. float_of_int n);

  (* 3. the certified lower bound *)
  let lb = Bfly_mos.Mos_analysis.butterfly_lower_bound n in
  Printf.printf "Certified lower bound:     capacity %d  (Lemma 2.13; %.4f n)\n"
    lb
    (float_of_int lb /. float_of_int n);

  (* 4. the asymptote *)
  Printf.printf "Theorem 2.20 asymptote:    2(sqrt 2 - 1) n = %.1f\n\n"
    (Bfly_core.Bw.butterfly_constant *. float_of_int n);

  Printf.printf
    "Sandwich: %d <= BW(B_%d) <= %d.  The folklore value %d is %s.\n" lb n
    (min cost (Cut.capacity fc))
    n
    (if cost < n then "refuted at this size" else
       "still unbeaten at this size (the o(n) term dominates)");

  (* where does the constructed cut live? summarize by level *)
  print_endline "\nConstructed bisection, nodes in S per level:";
  for level = 0 to log_n do
    let in_s =
      List.fold_left
        (fun acc v -> if Bfly_graph.Bitset.mem side v then acc + 1 else acc)
        0 (B.level_nodes b level)
    in
    Printf.printf "  level %2d: %5d / %5d\n" level in_s n
  done
