examples/switch_fabric.ml: Bfly_core Bfly_graph Bfly_networks Bfly_routing List Printf Random
