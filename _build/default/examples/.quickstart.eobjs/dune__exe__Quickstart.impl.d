examples/quickstart.ml: Bfly_core Bfly_networks Format List Printf String
