examples/bisection_audit.ml: Array Bfly_core Bfly_cuts Bfly_graph Bfly_mos Bfly_networks Format List Printf Sys
