examples/expander_routing.ml: Bfly_graph Bfly_networks Hashtbl List Option Printf Random
