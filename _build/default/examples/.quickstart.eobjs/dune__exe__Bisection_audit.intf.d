examples/bisection_audit.mli:
