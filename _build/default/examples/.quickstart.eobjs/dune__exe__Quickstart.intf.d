examples/quickstart.mli:
