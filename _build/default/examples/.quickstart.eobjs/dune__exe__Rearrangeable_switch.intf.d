examples/rearrangeable_switch.mli:
