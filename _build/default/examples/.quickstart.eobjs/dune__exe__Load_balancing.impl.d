examples/load_balancing.ml: Bfly_expansion Bfly_graph Bfly_networks Printf Random
