examples/rearrangeable_switch.ml: Array Bfly_graph Bfly_networks List Printf Random
