examples/load_balancing.mli:
