examples/expander_routing.mli:
