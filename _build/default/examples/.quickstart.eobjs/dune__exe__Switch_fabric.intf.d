examples/switch_fabric.mli:
