(* Circuit switching on a Beneš network (Section 1.5).

   A rearrangeable switch must realize any permutation of its ports with
   edge-disjoint circuits. The looping algorithm computes the circuits; we
   route a batch of demand matrices through a 64-column Beneš network and
   verify the non-blocking property each time.

   Run with: dune exec examples/rearrangeable_switch.exe *)

module Benes = Bfly_networks.Benes
module Perm = Bfly_graph.Perm

let () =
  let dim = 6 in
  let bn = Benes.create ~dim in
  let ports = 2 * Benes.n bn in
  Printf.printf
    "Benes network: dimension %d, %d columns, %d nodes, %d ports.\n" dim
    (Benes.n bn) (Benes.size bn) ports;
  let rng = Random.State.make [| 0x5e7 |] in
  let batches = 20 in
  let hops = ref 0 in
  for batch = 1 to batches do
    let demand = Perm.random ~rng ports in
    let circuits = Benes.route_ports bn demand in
    assert (Benes.paths_edge_disjoint bn circuits);
    Array.iter (fun path -> hops := !hops + List.length path - 1) circuits;
    if batch = 1 then begin
      Printf.printf "First demand matrix routed; sample circuits:\n";
      Array.iteri
        (fun q path ->
          if q < 4 then
            Printf.printf "  port %2d -> port %2d via %d hops\n" q
              (Perm.apply demand q)
              (List.length path - 1))
        circuits
    end
  done;
  Printf.printf
    "Routed %d random demand matrices (%d circuits each), all edge-disjoint.\n"
    batches ports;
  Printf.printf "Every circuit has exactly %d hops; total %d circuit-hops.\n"
    (2 * dim) !hops;

  (* the switch is rearrangeable, not strictly non-blocking: routing the
     same matrix twice yields the same circuits (deterministic) *)
  let demand = Perm.random ~rng ports in
  let a = Benes.route_ports bn demand and b = Benes.route_ports bn demand in
  assert (a = b);
  print_endline "Routing is deterministic for a fixed demand matrix."
