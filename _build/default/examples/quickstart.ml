(* Quickstart: build a butterfly, look at it, and ask the paper's headline
   question — what is its bisection width?

   Run with: dune exec examples/quickstart.exe *)

module Butterfly = Bfly_networks.Butterfly
module Bw = Bfly_core.Bw

let () =
  (* the 32-node butterfly of the paper's Figure 1 *)
  let b = Butterfly.of_inputs 8 in
  print_string (Bfly_networks.Render.figure_1 ());
  Printf.printf "\nB_8 has %d nodes in %d levels of %d columns.\n"
    (Butterfly.size b) (Butterfly.levels b) (Butterfly.n b);

  (* the unique monotone input-output path of Lemma 2.3 *)
  let path = Butterfly.monotone_path b ~input_col:2 ~output_col:5 in
  Printf.printf "Monotone path from input 010 to output 101: %s\n"
    (String.concat " -> " (List.map (Butterfly.label b) path));

  (* bisection width: exact for this size *)
  let br = Bw.butterfly 8 in
  Format.printf "BW(B_8) = %a@." Bw.pp br;

  (* the folklore value n is correct at n = 8 — but not asymptotically *)
  let big = Bw.butterfly 4096 in
  Format.printf
    "BW(B_4096) bracket: %a@.(folklore says 4096; Theorem 2.20 says it tends \
     to 2(sqrt 2 - 1) n ~ %.0f)@."
    Bw.pp big
    (Bw.butterfly_constant *. 4096.);

  (* wraparound kills the effect: BW(W_n) = n exactly (Lemma 3.2) *)
  Format.printf "BW(W_64) = %a@." Bw.pp (Bw.wrapped 64);
  Format.printf "BW(CCC_64) = %a@." Bw.pp (Bw.ccc 64)
