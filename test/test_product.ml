(* The Cartesian product combinator and everything stacked on it: the
   qcheck product laws, the fabric specs, the parity-aware closed-form
   bounds (values pinned against the exact solver), the dimension-aligned
   cut construction, and the G x K_2 identity oracles.

   Every pinned BW value below was computed with the repo's own exact
   branch-and-bound solver; the mixed-parity cases (mesh 2x3x3 = 9 > 6)
   are the regression guard for the parity audit — the even-side formula
   must never be asserted on an odd largest side. *)

module Gen = Bfly_graph.Generators
module G = Bfly_graph.Graph
module Perm = Bfly_graph.Perm
module Fabric = Bfly_networks.Fabric
module Constructions = Bfly_cuts.Constructions
module Exact = Bfly_cuts.Exact
module Bounds = Bfly_check.Bounds
open Tu

let bw g = fst (Exact.bisection_width g)

(* ---- the combinator's laws (qcheck over random connected factors) ---- *)

let factor_gen = seeded QCheck2.Gen.(pair (int_range 2 7) (int_range 2 7))

let random_factors ((ng, nh), seed) =
  let rng = rng seed in
  ( random_graph ~rng ng ~extra_edges:2,
    random_graph ~rng nh ~extra_edges:2 )

let prop_product_counts =
  qcheck ~count:60 "product: |V| multiplies, |E| = |E(G)||V(H)| + |V(G)||E(H)|"
    factor_gen
    (fun inst ->
      let g, h = random_factors inst in
      let p = Gen.product g h in
      G.n_nodes p = G.n_nodes g * G.n_nodes h
      && G.n_edges p
         = (G.n_edges g * G.n_nodes h) + (G.n_nodes g * G.n_edges h))

let prop_product_degrees =
  qcheck ~count:60 "product: degrees add, deg(a,b) = deg(a) + deg(b)"
    factor_gen
    (fun inst ->
      let g, h = random_factors inst in
      let p = Gen.product g h in
      let nh = G.n_nodes h in
      let ok = ref true in
      for a = 0 to G.n_nodes g - 1 do
        for b = 0 to nh - 1 do
          if G.degree p ((a * nh) + b) <> G.degree g a + G.degree h b then
            ok := false
        done
      done;
      !ok)

let prop_product_commutes =
  qcheck ~count:60 "product: G x H isomorphic to H x G via (a,b) -> (b,a)"
    factor_gen
    (fun inst ->
      let g, h = random_factors inst in
      let ng = G.n_nodes g and nh = G.n_nodes h in
      let gh = Gen.product g h in
      let hg = Gen.product h g in
      (* node a*nh + b of G x H is node b*ng + a of H x G *)
      let p =
        Perm.of_array
          (Array.init (ng * nh) (fun v -> ((v mod nh) * ng) + (v / nh)))
      in
      G.equal (G.relabel gh p) hg)

let test_mesh_is_grid () =
  (* the 2-D special case must agree with the historical generator *)
  List.iter
    (fun (r, c) ->
      checkb
        (Printf.sprintf "mesh [%d;%d] = grid %dx%d" r c r c)
        true
        (G.equal (Gen.mesh ~dims:[ r; c ]) (Gen.grid ~rows:r ~cols:c)))
    [ (1, 1); (2, 3); (3, 3); (4, 5) ];
  List.iter
    (fun (r, c) ->
      checkb
        (Printf.sprintf "torus_nd [%d;%d] = torus %dx%d" r c r c)
        true
        (G.equal (Gen.torus_nd ~dims:[ r; c ]) (Gen.torus ~rows:r ~cols:c)))
    [ (3, 3); (3, 4); (4, 4) ]

let test_hamming () =
  (* H(1,q) = K_q; H(2,2) = C_4 *)
  checkb "H(1,5) = K5" true
    (G.equal (Gen.hamming ~dims:1 ~alphabet:5) (Gen.complete 5));
  checkb "H(2,2) = C4" true
    (let h = Gen.hamming ~dims:2 ~alphabet:2 in
     G.n_nodes h = 4 && G.n_edges h = 4 && G.max_degree h = 2);
  let h = Gen.hamming ~dims:3 ~alphabet:3 in
  check "H(3,3) nodes" 27 (G.n_nodes h);
  check "H(3,3) is 6-regular" 6 (G.max_degree h);
  check "H(3,3) edges" (27 * 6 / 2) (G.n_edges h)

(* ---- parity pins: exact values on both sides of every formula ---- *)

let test_mesh_parity_pins () =
  List.iter
    (fun (dims, expect) ->
      check
        (Printf.sprintf "BW(mesh %s) = %d"
           (String.concat "x" (List.map string_of_int dims))
           expect)
        expect
        (bw (Gen.mesh ~dims)))
    [
      (* even largest side: N/amax *)
      ([ 3; 4 ], 3);
      ([ 4; 4 ], 4);
      ([ 2; 2; 3 ], 6);
      (* all odd: prefix-sum closed form, NOT N/amax *)
      ([ 3; 3 ], 4);
      ([ 3; 5 ], 4);
      (* mixed parity, odd largest side: strictly above N/amax = 6 *)
      ([ 2; 3; 3 ], 9);
    ]

let test_torus_parity_pins () =
  List.iter
    (fun (dims, expect) ->
      check
        (Printf.sprintf "BW(torus %s) = %d"
           (String.concat "x" (List.map string_of_int dims))
           expect)
        expect
        (bw (Gen.torus_nd ~dims)))
    [ ([ 3; 4 ], 6); ([ 4; 4 ], 8); ([ 3; 3 ], 8); ([ 3; 5 ], 8) ]

let test_hamming_pin () =
  (* H(2,3) = C3 x C3, the all-odd torus: BW = 3^2 - 1 *)
  check "BW(H(2,3)) = 8" 8 (bw (Gen.hamming ~dims:2 ~alphabet:3))

let test_bounds_parity () =
  let pb lower exact = { Fabric.lower; exact; method_ = "" } in
  let same name (want : Fabric.bound) (got : Fabric.bound) =
    check (name ^ " lower") want.Fabric.lower got.Fabric.lower;
    Alcotest.(check (option int))
      (name ^ " exact") want.Fabric.exact got.Fabric.exact
  in
  same "mesh 4x4" (pb 4 (Some 4)) (Bounds.mesh_bounds ~dims:[ 4; 4 ]);
  same "mesh 3x3" (pb 4 (Some 4)) (Bounds.mesh_bounds ~dims:[ 3; 3 ]);
  same "mesh 3x5" (pb 4 (Some 4)) (Bounds.mesh_bounds ~dims:[ 3; 5 ]);
  same "mesh 3x3x3" (pb 13 (Some 13)) (Bounds.mesh_bounds ~dims:[ 3; 3; 3 ]);
  (* the parity audit: odd largest side with an even side somewhere must
     NOT be asserted exact (the true value 9 exceeds N/amax = 6) *)
  same "mesh 2x3x3" (pb 6 None) (Bounds.mesh_bounds ~dims:[ 2; 3; 3 ]);
  same "mesh 2x4x8" (pb 8 (Some 8)) (Bounds.mesh_bounds ~dims:[ 2; 4; 8 ]);
  (* dims order must not matter: the formulas sort internally *)
  same "mesh 8x2x4" (pb 8 (Some 8)) (Bounds.mesh_bounds ~dims:[ 8; 2; 4 ]);
  same "torus 3x3x3" (pb 26 (Some 26)) (Bounds.torus_bounds ~dims:[ 3; 3; 3 ]);
  same "torus 3x4" (pb 6 (Some 6)) (Bounds.torus_bounds ~dims:[ 3; 4 ]);
  same "bcube 2x3" (pb 4 (Some 4)) (Bounds.hamming_bounds ~ports:2 ~levels:3);
  same "bcube 4x2" (pb 16 (Some 16)) (Bounds.hamming_bounds ~ports:4 ~levels:2);
  same "bcube 3x2" (pb 8 (Some 8)) (Bounds.hamming_bounds ~ports:3 ~levels:2);
  (* odd alphabet > 3: lower bound only *)
  same "bcube 5x2" (pb 12 None) (Bounds.hamming_bounds ~ports:5 ~levels:2)

let test_bounds_are_lower_bounds () =
  (* on every small instance the certified bound really sits below the
     exact width, and equals it when claimed exact *)
  List.iter
    (fun spec ->
      let b = Bounds.fabric_bounds spec in
      let v = bw (Fabric.graph (Fabric.create spec)) in
      checkb
        (Fabric.name spec ^ ": certified LB <= exact")
        true
        (b.Fabric.lower <= v);
      match b.Fabric.exact with
      | Some e -> check (Fabric.name spec ^ ": formula exact") e v
      | None -> ())
    [
      Fabric.Mesh [ 3; 3 ];
      Fabric.Mesh [ 2; 3; 3 ];
      Fabric.Mesh [ 4; 4 ];
      Fabric.Torus [ 3; 4 ];
      Fabric.Bcube { ports = 2; levels = 3 };
      Fabric.Product [ Fabric.Fpath 2; Fabric.Fclique 4 ];
    ]

(* ---- dimension-aligned cuts ---- *)

let test_dimension_cut_balance () =
  List.iter
    (fun dims ->
      let n = List.fold_left ( * ) 1 dims in
      List.iteri
        (fun axis _ ->
          let side = Constructions.dimension_cut ~dims ~axis in
          let size = Bfly_graph.Bitset.cardinal side in
          check
            (Printf.sprintf "axis %d of %s: |side| = n/2" axis
               (String.concat "x" (List.map string_of_int dims)))
            (n / 2) size)
        dims)
    [ [ 4; 4 ]; [ 3; 3 ]; [ 2; 3; 3 ]; [ 3; 4; 5 ]; [ 7 ] ]

let test_dimension_cut_capacity () =
  (* on even-sided fabrics the best dimension cut achieves the closed
     form — the committed equality the sandwich oracle asserts *)
  List.iter
    (fun (spec, expect) ->
      let fab = Fabric.create spec in
      let _, cut, side =
        Constructions.best_dimension_cut ~dims:(Fabric.dims_of fab)
          (Fabric.graph fab)
      in
      check (Fabric.name spec ^ ": best dimension cut") expect cut;
      check
        (Fabric.name spec ^ ": capacity matches witness")
        expect
        (Bfly_graph.Traverse.boundary_edges (Fabric.graph fab) side))
    [
      (Fabric.Mesh [ 4; 4 ], 4);
      (Fabric.Mesh [ 2; 4; 8 ], 8);
      (Fabric.Torus [ 4; 4; 4 ], 32);
      (Fabric.Mesh [ 3; 3 ], 4);
      (Fabric.Torus [ 3; 3 ], 8);
    ]

let test_dimension_cut_errors () =
  let raises f =
    match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  checkb "axis out of range" true
    (raises (fun () -> Constructions.dimension_cut ~dims:[ 4; 4 ] ~axis:2));
  checkb "empty dims" true
    (raises (fun () -> Constructions.dimension_cut ~dims:[] ~axis:0));
  checkb "dims mismatch vs graph" true
    (raises (fun () ->
         Constructions.best_dimension_cut ~dims:[ 4; 4 ] (Gen.path 15)))

(* ---- fabric specs ---- *)

let test_fabric_spec_roundtrip () =
  List.iter
    (fun s ->
      match Fabric.spec_of_string s with
      | Error e -> Alcotest.failf "spec %s did not parse: %s" s e
      | Ok spec -> Alcotest.(check string) ("roundtrip " ^ s) s (Fabric.name spec))
    [ "mesh:2x4x8"; "torus:4x4x4"; "bcube:4x2"; "product:path2xring3xk4" ]

let test_fabric_spec_rejects () =
  List.iter
    (fun s ->
      match Fabric.spec_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "spec %s should not parse" s)
    [
      "mesh:"; "mesh:0x4"; "torus:2x2"; "torus3d:4x4"; "bcube:1x2";
      "product:zig3"; "ring:3"; "mesh:4096x4096"; "mesh:1"; "torus:3x-3";
    ];
  checkb "torus3d accepts exactly three dims" true
    (Result.is_ok (Fabric.spec_of_string "torus3d:3x4x5"));
  checkb "is_spec routes fabrics" true (Fabric.is_spec "mesh:4x4");
  checkb "is_spec ignores classics" false (Fabric.is_spec "butterfly")

(* ---- simple random regular graphs (satellite bugfix) ---- *)

let is_simple g =
  let n = G.n_nodes g in
  let seen = Hashtbl.create 64 in
  let ok = ref true in
  G.iter_edges g (fun u v ->
      if u = v then ok := false
      else begin
        let key = (min u v * n) + max u v in
        if Hashtbl.mem seen key then ok := false;
        Hashtbl.add seen key ()
      end);
  !ok

let prop_random_regular_simple =
  qcheck ~count:50 "simple:true yields exact degrees with no loop/parallel"
    (seeded QCheck2.Gen.(pair (int_range 6 20) (int_range 2 4)))
    (fun ((n, degree), seed) ->
      let n = if n * degree mod 2 = 1 then n + 1 else n in
      let g = Gen.random_regular ~simple:true ~rng:(rng seed) ~n ~degree in
      let degrees_ok = ref true in
      for v = 0 to n - 1 do
        if G.degree g v <> degree then degrees_ok := false
      done;
      !degrees_ok && is_simple g && G.n_edges g = n * degree / 2)

(* ---- the oracle entries themselves ---- *)

let test_sandwich_entries () =
  List.iter
    (fun (c : Bounds.check) ->
      checkb (c.Bounds.name ^ ": " ^ c.Bounds.detail) true c.Bounds.ok)
    (Bounds.product_networks ~smoke:true)

let test_k2_identity () =
  let c = Bounds.product_k2_identity ~name:"P5" (Gen.path 5) in
  checkb ("P5 x K2: " ^ c.Bounds.detail) true c.Bounds.ok;
  (* the odd-|V| guard is live: BW(P5 x K2) = 3 exceeds 2*BW(P5) = 2, so
     the identity must NOT claim the even-|V| bound *)
  check "BW(P5 x K2) = 3 > 2*BW(P5)" 3
    (bw (Gen.product (Gen.path 5) (Gen.complete 2)))

let suite =
  [
    prop_product_counts;
    prop_product_degrees;
    prop_product_commutes;
    case "mesh/torus agree with the 2-D generators" test_mesh_is_grid;
    case "hamming structure" test_hamming;
    case "mesh parity pins (exact solver)" test_mesh_parity_pins;
    case "torus parity pins (exact solver)" test_torus_parity_pins;
    case "H(2,3) pin (exact solver)" test_hamming_pin;
    case "closed-form bounds honour parity" test_bounds_parity;
    case "certified bounds bracket the exact widths"
      test_bounds_are_lower_bounds;
    case "dimension cuts are balanced" test_dimension_cut_balance;
    case "best dimension cut achieves the closed forms"
      test_dimension_cut_capacity;
    case "dimension cut input validation" test_dimension_cut_errors;
    case "fabric specs round-trip through their names"
      test_fabric_spec_roundtrip;
    case "fabric spec rejection" test_fabric_spec_rejects;
    prop_random_regular_simple;
    case "product sandwich oracle battery (smoke)" test_sandwich_entries;
    case "G x K2 identity honours odd |V|" test_k2_identity;
  ]
