(* Final cross-cutting checks: experiment registry, tiny-dimension Beneš,
   MOS degenerate cases, report invariants. *)

open Tu

let test_experiment_registry () =
  let ids = List.map fst Bfly_core.Experiments.all in
  check "25 experiments (E1-E18, A1-A4, F1-F2, D1)" 25 (List.length ids);
  check "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id -> checkb (id ^ " present") true (List.mem id ids))
    [
      "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11";
      "E12"; "E13"; "E14"; "E15"; "E16"; "E17"; "E18"; "A1"; "A2"; "A3"; "A4";
    ];
  checkb "F1 present" true (List.mem "F1" ids);
  checkb "F2 present" true (List.mem "F2" ids);
  checkb "D1 present" true (List.mem "D1" ids)

let test_benes_dim0 () =
  let b = Bfly_networks.Benes.create ~dim:0 in
  check "single node" 1 (Bfly_networks.Benes.size b);
  let paths =
    Bfly_networks.Benes.route_ports b (Bfly_graph.Perm.of_array [| 1; 0 |])
  in
  check "two trivial paths" 2 (Array.length paths);
  Array.iter (fun p -> check "single-node path" 1 (List.length p)) paths

let test_mos_degenerate () =
  check "bw_m2 of j=1 is 0" 0 (Bfly_mos.Mos_analysis.bw_m2 1);
  Alcotest.check_raises "j=0 rejected"
    (Invalid_argument "Mos_analysis.bw_m2: j must be >= 1") (fun () ->
      ignore (Bfly_mos.Mos_analysis.bw_m2 0))

let test_report_ragged_rows () =
  (* rows shorter than the header must render without raising *)
  let t = Bfly_core.Report.table ~title:"T" ~header:[ "a"; "b" ] [ [ "1" ] ] in
  checkb "rendered" true (String.length t > 0)

let test_credit_bn_witness_positive () =
  let b = Bfly_networks.Butterfly.of_inputs 64 in
  List.iter
    (fun dim ->
      let s = Bfly_expansion.Witness.bn_ee ~dim b in
      let r = Bfly_expansion.Credit.bn_edge b s in
      checkb "certificate positive" true (r.Bfly_expansion.Credit.certified > 0);
      checkb "certificate sound" true
        (r.Bfly_expansion.Credit.certified <= r.Bfly_expansion.Credit.actual))
    [ 1; 2; 3; 4 ]

let test_wrapped_three_phase_valid () =
  (* three-phase walks are valid walks of the right endpoints *)
  let w = Bfly_networks.Wrapped.of_inputs 16 in
  let g = Bfly_networks.Wrapped.graph w in
  let rng = Random.State.make [| 8 |] in
  for _ = 1 to 50 do
    let u = Random.State.int rng (Bfly_networks.Wrapped.size w) in
    let v = Random.State.int rng (Bfly_networks.Wrapped.size w) in
    if u <> v then begin
      let path = Bfly_embed.Classic.wrapped_three_phase w u v in
      check "starts at u" u (List.hd path);
      check "ends at v" v (List.nth path (List.length path - 1));
      let rec valid = function
        | a :: (b :: _ as rest) -> Bfly_graph.Graph.mem_edge g a b && valid rest
        | _ -> true
      in
      checkb "valid walk" true (valid path)
    end
  done

let test_butterfly_three_phase_valid () =
  let b = Bfly_networks.Butterfly.of_inputs 16 in
  let g = Bfly_networks.Butterfly.graph b in
  let rng = Random.State.make [| 9 |] in
  for _ = 1 to 50 do
    let u = Random.State.int rng (Bfly_networks.Butterfly.size b) in
    let v = Random.State.int rng (Bfly_networks.Butterfly.size b) in
    if u <> v then begin
      let path = Bfly_embed.Classic.butterfly_three_phase b u v in
      check "starts at u" u (List.hd path);
      check "ends at v" v (List.nth path (List.length path - 1));
      let rec valid = function
        | a :: (c :: _ as rest) -> Bfly_graph.Graph.mem_edge g a c && valid rest
        | _ -> true
      in
      checkb "valid walk" true (valid path)
    end
  done

let test_variants_whole_graph_sets () =
  (* port_expansion accepts full-graph bitsets too *)
  let o = Bfly_networks.Variants.omega 8 in
  let full = Bfly_graph.Bitset.create (Bfly_graph.Graph.n_nodes o.Bfly_networks.Variants.graph) in
  Bfly_graph.Bitset.add full 0;
  checkb "works on full-capacity sets" true
    (Bfly_networks.Variants.port_expansion o full >= 0)

let suite =
  [
    case "experiment registry complete" test_experiment_registry;
    case "Benes dimension 0" test_benes_dim0;
    case "MOS degenerate sizes" test_mos_degenerate;
    case "report tolerates ragged rows" test_report_ragged_rows;
    case "Bn credit certificates on witnesses" test_credit_bn_witness_positive;
    case "wrapped three-phase walks valid" test_wrapped_three_phase_valid;
    case "butterfly three-phase walks valid" test_butterfly_three_phase_valid;
    case "variants accept full-graph sets" test_variants_whole_graph_sets;
  ]
