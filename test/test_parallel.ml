(* The Bfly_graph.Parallel domain pool: reuse across calls, determinism
   across BFLY_DOMAINS settings, best_of tie-breaking, and the
   reduce_range init fix (init incorporated exactly once). *)

module Parallel = Bfly_graph.Parallel
module Metrics = Bfly_obs.Metrics
module B = Bfly_networks.Butterfly
module Heuristics = Bfly_cuts.Heuristics
open Tu

(* Run [f] with BFLY_DOMAINS=d, restoring the previous value after. An
   empty string behaves as unset (the library treats "" as default). *)
let with_domains_str s f =
  let old = Sys.getenv_opt "BFLY_DOMAINS" in
  Unix.putenv "BFLY_DOMAINS" s;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "BFLY_DOMAINS" (match old with Some s -> s | None -> ""))
    f

let with_domains d f = with_domains_str (string_of_int d) f

let c_spawned = Metrics.counter "parallel.domains_spawned"

(* ---- reduce_range regression: non-neutral init counted exactly once ---- *)

let test_reduce_range_init_once () =
  (* sum 0..99 = 4950; a seed of 5 must appear exactly once, whatever the
     chunking (this double-counted before the pool rework) *)
  let sum d =
    with_domains d (fun () ->
        Parallel.reduce_range ~lo:0 ~hi:100 ~init:5 ~f:Fun.id ~combine:( + ))
  in
  check "sequential" 4955 (sum 1);
  check "four domains" 4955 (sum 4);
  check "more domains than elements" 50
    (with_domains 64 (fun () ->
         Parallel.reduce_range ~lo:0 ~hi:10 ~init:5 ~f:Fun.id ~combine:( + )));
  check "empty range is init" 5
    (Parallel.reduce_range ~lo:3 ~hi:3 ~init:5 ~f:Fun.id ~combine:( + ))

(* ---- pool reuse: domains are spawned once, not per call ---- *)

let test_pool_reuse () =
  with_domains 4 (fun () ->
      ignore (Parallel.map_range ~lo:0 ~hi:1000 (fun i -> i * i));
      (* the pool is process-global, so the absolute count reflects the
         whole test run; what matters is that further calls don't respawn *)
      let after_first = Metrics.counter_value c_spawned in
      checkb "pool spawned workers" true (after_first >= 1);
      for _ = 1 to 10 do
        ignore (Parallel.map_range ~lo:0 ~hi:1000 (fun i -> i * i));
        ignore
          (Parallel.reduce_range ~lo:0 ~hi:1000 ~init:0 ~f:Fun.id
             ~combine:( + ))
      done;
      check "no respawn across calls" after_first
        (Metrics.counter_value c_spawned);
      checkb "pool alive" true (Parallel.pool_size () >= 1))

(* ---- results identical whatever the domain count ---- *)

let test_combinators_domain_invariant () =
  let everything () =
    let m = Parallel.map_range ~lo:3 ~hi:203 (fun i -> (i * i) mod 97) in
    let r =
      Parallel.reduce_range ~lo:0 ~hi:500 ~init:17 ~f:(fun i -> i mod 13)
        ~combine:( + )
    in
    let mn = Parallel.min_over ~lo:0 ~hi:300 (fun i -> abs (i - 131)) in
    (Array.to_list m, r, mn)
  in
  let seq = with_domains 1 everything in
  let par = with_domains 4 everything in
  checkb "map/reduce/min identical" true (seq = par)

let test_nested_batches () =
  (* a task that itself submits parallel work must not deadlock the pool *)
  with_domains 4 (fun () ->
      let outer =
        Parallel.map_range ~lo:0 ~hi:8 (fun i ->
            Parallel.reduce_range ~lo:0 ~hi:(50 + i) ~init:0 ~f:Fun.id
              ~combine:( + ))
      in
      check "nested results" 8 (Array.length outer);
      check "nested sum" (49 * 50 / 2) outer.(0))

(* ---- best_of: lowest value wins, ties keep the earliest restart ---- *)

let test_best_of () =
  let values = [| 5; 3; 9; 3; 7 |] in
  let pick d =
    with_domains d (fun () ->
        Parallel.best_of
          ~compare:(fun (a, _) (b, _) -> compare a b)
          ~restarts:5
          (fun i -> (values.(i), i)))
  in
  Alcotest.(check (pair int int)) "earliest min, sequential" (3, 1) (pick 1);
  Alcotest.(check (pair int int)) "earliest min, parallel" (3, 1) (pick 4);
  check "single restart" 5 (fst (with_domains 4 (fun () ->
      Parallel.best_of ~restarts:1 (fun _ -> (5, 0)))));
  Alcotest.check_raises "zero restarts rejected"
    (Invalid_argument "Parallel.best_of: restarts must be >= 1") (fun () ->
      ignore (Parallel.best_of ~restarts:0 (fun i -> i)))

let test_exceptions_propagate () =
  with_domains 4 (fun () ->
      Alcotest.check_raises "task failure reaches the caller"
        (Invalid_argument "boom") (fun () ->
          ignore
            (Parallel.map_range ~lo:0 ~hi:100 (fun i ->
                 if i = 63 then invalid_arg "boom" else i))))

(* ---- workers survive failing tasks (regression) ----
   A raising task used to kill its worker domain: the pool silently shrank
   and later batches hung. Two failing batches back to back on a 2-domain
   pool must leave the pool at full strength and computing correctly. *)

let test_workers_survive_failing_batches () =
  with_domains 2 (fun () ->
      ignore (Parallel.map_range ~lo:0 ~hi:64 Fun.id);
      let size0 = Parallel.pool_size () in
      checkb "pool warmed" true (size0 >= 1);
      for batch = 1 to 2 do
        match
          Parallel.map_range ~lo:0 ~hi:32 (fun i ->
              if i mod 3 = 0 then failwith "injected task failure" else i)
        with
        | _ -> Alcotest.failf "batch %d should have raised" batch
        | exception Failure _ -> ()
      done;
      check "pool at full strength after two failing batches" size0
        (Parallel.pool_size ());
      check "pool still computes correctly" 4950
        (Parallel.reduce_range ~lo:0 ~hi:100 ~init:0 ~f:Fun.id ~combine:( + )))

(* ---- BFLY_DOMAINS validation (regression) ----
   Garbage ("abc") and non-positive ("0") values used to silently degrade
   to a sequential run; they must fall back to the recommended default. *)

let test_bad_domains_env () =
  let dc s = with_domains_str s (fun () -> Parallel.domain_count ()) in
  let default = dc "" in
  checkb "default is positive" true (default >= 1);
  check "garbage falls back to the default" default (dc "abc");
  check "zero falls back to the default" default (dc "0");
  check "negative falls back to the default" default (dc "-4");
  check "valid count respected" 3 (dc "3");
  check "surrounding whitespace tolerated" 3 (dc " 3 ")

(* ---- cancellation: not-yet-started tasks are skipped ---- *)

let test_run_tasks_cancelled () =
  let module Cancel = Bfly_resil.Cancel in
  with_domains 2 (fun () ->
      let cancel = Cancel.create () in
      Cancel.cancel ~reason:"test stop" cancel;
      let ran = Atomic.make 0 in
      (match
         Parallel.run_tasks ~cancel
           (Array.init 16 (fun _ () -> ignore (Atomic.fetch_and_add ran 1)))
       with
      | () -> Alcotest.fail "cancelled batch should raise"
      | exception Cancel.Cancelled _ -> ());
      check "no task ran under a pre-triggered token" 0 (Atomic.get ran);
      (* an untriggered token lets everything through *)
      let ran2 = Atomic.make 0 in
      Parallel.run_tasks ~cancel:(Cancel.create ())
        (Array.init 16 (fun _ () -> ignore (Atomic.fetch_and_add ran2 1)));
      check "untriggered token runs every task" 16 (Atomic.get ran2))

(* ---- heuristics: same seed, same capacities, any domain count ---- *)

let test_heuristics_domain_invariant () =
  let g = B.graph (B.of_inputs 16) in
  let all_caps () =
    let kl =
      fst (Heuristics.kernighan_lin ~rng:(Random.State.make [| 42 |]) g)
    in
    let fm =
      fst (Heuristics.fiduccia_mattheyses ~rng:(Random.State.make [| 42 |]) g)
    in
    let sa =
      fst
        (Heuristics.annealing
           ~rng:(Random.State.make [| 42 |])
           ~steps:5_000 ~restarts:3 g)
    in
    let pc, _, pname = Heuristics.best_of ~rng:(Random.State.make [| 42 |]) g in
    (kl, fm, sa, pc, pname)
  in
  let seq = with_domains 1 all_caps in
  let par = with_domains 4 all_caps in
  checkb "kl/fm/sa/portfolio identical across domain counts" true (seq = par)

let test_exact_domain_invariant () =
  let g = B.graph (B.of_inputs 8) in
  let bw d = with_domains d (fun () -> fst (Bfly_cuts.Exact.bisection_width g)) in
  check "BW(B_8) sequential" 8 (bw 1);
  check "BW(B_8) parallel" 8 (bw 4)

let suite =
  [
    case "reduce_range init exactly once" test_reduce_range_init_once;
    case "pool reused across calls" test_pool_reuse;
    case "combinators domain-invariant" test_combinators_domain_invariant;
    case "nested batches don't deadlock" test_nested_batches;
    case "best_of ties to earliest restart" test_best_of;
    case "task exceptions propagate" test_exceptions_propagate;
    case "workers survive failing batches" test_workers_survive_failing_batches;
    case "invalid BFLY_DOMAINS falls back" test_bad_domains_env;
    case "run_tasks skips under cancellation" test_run_tasks_cancelled;
    case "heuristics domain-invariant" test_heuristics_domain_invariant;
    case "exact solver domain-invariant" test_exact_domain_invariant;
  ]
