module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module Router = Bfly_routing.Router
module Workload = Bfly_routing.Workload
module B = Bfly_networks.Butterfly
module Perm = Bfly_graph.Perm
open Tu

let path3 () = G.of_edge_list ~n:3 [ (0, 1); (1, 2) ]

let test_single_packet () =
  let stats = Router.run (path3 ()) ~paths:[| [ 0; 1; 2 ] |] in
  check "steps = path length" 2 stats.Router.steps;
  check "delivered" 1 stats.Router.delivered;
  check "hops" 2 stats.Router.total_hops

let test_zero_length () =
  let stats = Router.run (path3 ()) ~paths:[| [ 1 ] |] in
  check "instant delivery" 0 stats.Router.steps

let test_contention_serializes () =
  (* two packets over the same edge: the second waits one step *)
  let stats = Router.run (path3 ()) ~paths:[| [ 0; 1 ]; [ 0; 1; 2 ] |] in
  check "one extra step" 3 stats.Router.steps;
  check "max queue" 2 stats.Router.max_edge_queue

let test_opposite_directions_dont_contend () =
  let stats = Router.run (path3 ()) ~paths:[| [ 0; 1; 2 ]; [ 2; 1; 0 ] |] in
  check "full duplex" 2 stats.Router.steps

let test_parallel_edges_add_capacity () =
  let g = G.of_edge_list ~n:2 [ (0, 1); (0, 1) ] in
  let stats = Router.run g ~paths:[| [ 0; 1 ]; [ 0; 1 ] |] in
  check "both cross at once" 1 stats.Router.steps

let test_rejects_bad_path () =
  Alcotest.check_raises "non-edge"
    (Invalid_argument "Router.run: path uses a non-edge") (fun () ->
      ignore (Router.run (path3 ()) ~paths:[| [ 0; 2 ] |]))

let test_greedy_permutation_delivery () =
  let b = B.of_inputs 16 in
  let rng = Random.State.make [| 31337 |] in
  for _ = 1 to 10 do
    let p = Perm.random ~rng 16 in
    let paths = Workload.greedy_permutation b p in
    Array.iteri
      (fun w path ->
        let last = List.nth path (List.length path - 1) in
        check "delivered to p(w)" (Perm.apply p w) (B.col_of b last);
        check "at output level" 4 (B.level_of b last))
      paths;
    let stats = Router.run (B.graph b) ~paths in
    check "all delivered" 16 stats.Router.delivered;
    checkb "steps at least log n" true (stats.Router.steps >= 4)
  done

let test_identity_permutation_no_contention () =
  let b = B.of_inputs 16 in
  let paths = Workload.greedy_permutation b (Perm.identity 16) in
  let stats = Router.run (B.graph b) ~paths in
  check "straight wires, log n steps" 4 stats.Router.steps

let test_crossings_count () =
  let b = B.of_inputs 8 in
  let side = Bfly_cuts.Constructions.butterfly_column_cut b in
  (* reverse permutation sends every packet across the column cut *)
  let p = Perm.of_array [| 7; 6; 5; 4; 3; 2; 1; 0 |] in
  let paths = Workload.greedy_permutation b p in
  let into, out = Router.crossings ~side paths in
  check "every packet crosses once" 8 (into + out);
  check "balanced directions" 4 into

let test_time_lower_bound () =
  check "ceil division" 4 (Router.time_lower_bound ~crossings_one_way:13 ~bw:4);
  Alcotest.check_raises "bw 0"
    (Invalid_argument "Router.time_lower_bound: bw must be positive") (fun () ->
      ignore (Router.time_lower_bound ~crossings_one_way:1 ~bw:0))

let test_simulation_respects_bound () =
  (* T_sim >= crossings / capacity-of-cut for any cut, since each step moves
     at most one packet per cut edge per direction *)
  let rng = Random.State.make [| 4242 |] in
  let b = B.of_inputs 16 in
  let g = B.graph b in
  for _ = 1 to 5 do
    let paths = Workload.all_to_random ~rng b in
    let stats = Router.run g ~paths in
    let side = Bfly_cuts.Constructions.butterfly_column_cut b in
    let cut_cap = Bfly_graph.Traverse.boundary_edges g side in
    let into, out = Router.crossings ~side paths in
    let lb = Router.time_lower_bound ~crossings_one_way:(max into out) ~bw:cut_cap in
    checkb "T_sim >= crossings/cap" true (stats.Router.steps >= lb)
  done

let test_wrapped_workload () =
  let rng = Random.State.make [| 5150 |] in
  let w = Bfly_networks.Wrapped.of_inputs 8 in
  let paths = Workload.all_to_random_wrapped ~rng w in
  let stats = Router.run (Bfly_networks.Wrapped.graph w) ~paths in
  check "all delivered" (Bfly_networks.Wrapped.size w) stats.Router.delivered

(* ---- workload accounting (lib/routing/workload.ml) ---- *)

let recount_hops paths = Array.fold_left (fun acc p -> acc + List.length p - 1) 0 paths

let recount_crossings ~side paths =
  let into = ref 0 and out = ref 0 in
  let rec hops = function
    | u :: (v :: _ as rest) ->
        (match (Bitset.mem side u, Bitset.mem side v) with
        | false, true -> incr into
        | true, false -> incr out
        | _ -> ());
        hops rest
    | _ -> ()
  in
  Array.iter hops paths;
  (!into, !out)

let prop_permutation_workload_valid =
  qcheck ~count:30 "greedy permutation workloads are permutations on valid walks"
    (seeded QCheck2.Gen.(int_range 1 5))
    (fun (log_n, seed) ->
      let b = B.create ~log_n in
      let n = 1 lsl log_n in
      let p = Perm.random ~rng:(rng seed) n in
      let paths = Workload.greedy_permutation b p in
      let g = B.graph b in
      (* every path is a walk in the host graph *)
      Tu.checkb "walks" true
        (Bfly_check.Invariants.is_pass (Bfly_check.Invariants.paths_are_walks g paths));
      (* sources: packet w starts at <w, 0>; destinations form the permutation *)
      let dest_cols = Array.make n false in
      Array.iteri
        (fun w path ->
          let first = List.hd path in
          Tu.check "source column" w (B.col_of b first);
          Tu.check "source level" 0 (B.level_of b first);
          let last = List.nth path (List.length path - 1) in
          Tu.check "destination column" (Perm.apply p w) (B.col_of b last);
          Tu.check "destination level" log_n (B.level_of b last);
          dest_cols.(B.col_of b last) <- true)
        paths;
      Array.for_all Fun.id dest_cols)

let prop_all_to_random_sources =
  qcheck ~count:20 "all-to-random: one packet per node, starting at its source"
    (seeded QCheck2.Gen.(int_range 1 4))
    (fun (log_n, seed) ->
      let b = B.create ~log_n in
      let paths = Workload.all_to_random ~rng:(rng seed) b in
      let g = B.graph b in
      Array.length paths = B.size b
      && Bfly_check.Invariants.is_pass (Bfly_check.Invariants.paths_are_walks g paths)
      && Array.for_all Fun.id (Array.mapi (fun src p -> List.hd p = src) paths))

let prop_router_accounting_matches_recount =
  qcheck ~count:20 "router hop/crossing accounting matches a recount from raw paths"
    (seeded QCheck2.Gen.(int_range 1 4))
    (fun (log_n, seed) ->
      let rng = rng seed in
      let b = B.create ~log_n in
      let g = B.graph b in
      let paths = Workload.greedy_random ~rng b in
      let stats = Router.run g ~paths in
      let side = Bfly_cuts.Constructions.butterfly_column_cut b in
      let into, out = Router.crossings ~side paths in
      let into', out' = recount_crossings ~side paths in
      stats.Router.total_hops = recount_hops paths
      && stats.Router.delivered = Array.length paths
      && into = into' && out = out')

let prop_random_workload_delivers =
  qcheck ~count:20 "greedy random workloads always deliver"
    QCheck2.Gen.(int_range 1 5)
    (fun log_n ->
      let b = B.create ~log_n in
      let rng = Random.State.make [| log_n |] in
      let paths = Workload.greedy_random ~rng b in
      let stats = Router.run (B.graph b) ~paths in
      stats.Router.delivered = 1 lsl log_n)

let suite =
  [
    case "single packet" test_single_packet;
    case "zero-length path" test_zero_length;
    case "contention serializes" test_contention_serializes;
    case "directions are independent" test_opposite_directions_dont_contend;
    case "parallel edges add capacity" test_parallel_edges_add_capacity;
    case "rejects invalid paths" test_rejects_bad_path;
    case "greedy permutation delivery" test_greedy_permutation_delivery;
    case "identity permutation takes log n steps" test_identity_permutation_no_contention;
    case "crossing counters" test_crossings_count;
    case "time lower bound arithmetic" test_time_lower_bound;
    case "simulation respects the Section 1.2 bound" test_simulation_respects_bound;
    case "wrapped-butterfly workload" test_wrapped_workload;
    prop_permutation_workload_valid;
    prop_all_to_random_sources;
    prop_router_accounting_matches_recount;
    prop_random_workload_delivers;
  ]
