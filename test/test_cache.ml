(* Tests for the persistent content-addressed result cache (lib/cache):
   key derivation, the two-tier store, verify-on-hit eviction, the
   BFLY_CACHE=off bypass, and the solver integrations (exact, heuristics,
   MOS pullback, expansion, bw_m2) — including the rng-stream and
   counter-delta guarantees the integrations document. *)

module Store = Bfly_cache.Store
module Config = Bfly_cache.Config
module Key = Bfly_cache.Key
module Codec = Bfly_cache.Codec
module Fp = Bfly_cache.Fingerprint
module Metrics = Bfly_obs.Metrics
module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module Butterfly = Bfly_networks.Butterfly
open Tu

let counter name = Metrics.counter_value (Metrics.counter name)

(* run [f] and return (result, named counter delta) *)
let delta name f =
  let v0 = counter name in
  let r = f () in
  (r, counter name - v0)

(* Each case runs against its own empty on-disk store and a clean memory
   tier, then restores the previous configuration — cases can't see each
   other's entries and the rest of the test binary can't see theirs. *)
let fresh_id = ref 0

let with_fresh_cache f =
  incr fresh_id;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bfly-cache-test-%d-%d" (Unix.getpid ()) !fresh_id)
  in
  let was_enabled = Config.enabled () in
  let old_dir = Config.dir () in
  let old_cap = Config.lru_capacity () in
  let restore () =
    Config.set_enabled true;
    Config.set_dir dir;
    ignore (Store.clear ());
    (try Unix.rmdir dir with Unix.Unix_error _ | Sys_error _ -> ());
    Config.set_enabled was_enabled;
    Config.set_dir old_dir;
    Config.set_lru_capacity old_cap;
    Store.reset_memory ()
  in
  Config.set_enabled true;
  Config.set_dir dir;
  Config.set_lru_capacity 512;
  Store.reset_memory ();
  match f dir with
  | v ->
      restore ();
      v
  | exception e ->
      restore ();
      raise e

(* a small graph worth caching: B_4, 12 nodes *)
let b4_graph () = Butterfly.graph (Butterfly.of_inputs 4)

(* ---- store primitives ---- *)

let int_key ?(solver = "test.solver") ?(salt = "s/1") ?(params = []) tag =
  Key.make ~solver ~salt ~params ~fingerprint:(Fp.int Fp.seed tag)

let int_encode v = [ ("value", Codec.Int v) ]
let int_decode payload = Codec.get_int payload "value"

let memo_int ?verify key v =
  let verify = match verify with Some f -> f | None -> fun _ -> true in
  Store.memoize ~key ~encode:int_encode ~decode:int_decode ~verify
    ~compute:(fun () -> v)

let test_memoize_hit () =
  with_fresh_cache @@ fun _ ->
  let key = int_key 1 in
  let computes = ref 0 in
  let run () =
    Store.memoize ~key ~encode:int_encode ~decode:int_decode
      ~verify:(fun _ -> true)
      ~compute:(fun () ->
        incr computes;
        42)
  in
  let v1, miss1 = delta "cache.miss" run in
  let v2, hit2 = delta "cache.hit" run in
  check "first computes" 42 v1;
  check "second serves" 42 v2;
  check "one compute only" 1 !computes;
  check "first missed" 1 miss1;
  check "second hit" 1 hit2

let test_disk_tier_round_trip () =
  with_fresh_cache @@ fun _ ->
  let key = int_key 2 in
  ignore (memo_int key 7);
  Store.reset_memory ();
  let v, disk_hits = delta "cache.hit.disk" (fun () -> memo_int key 7) in
  check "served" 7 v;
  check "from disk" 1 disk_hits;
  (* the disk hit promoted the entry back into memory *)
  let v, mem_hits = delta "cache.hit.mem" (fun () -> memo_int key 0) in
  check "served again" 7 v;
  check "from memory" 1 mem_hits

let test_key_sensitivity () =
  let base = Key.digest (int_key 1) in
  checkb "same inputs, same digest" true
    (Key.digest (int_key 1) = base);
  checkb "fingerprint changes digest" false
    (Key.digest (int_key 2) = base);
  checkb "solver changes digest" false
    (Key.digest (int_key ~solver:"test.other" 1) = base);
  checkb "salt changes digest" false
    (Key.digest (int_key ~salt:"s/2" 1) = base);
  checkb "params change digest" false
    (Key.digest (int_key ~params:[ ("k", "3") ] 1) = base)

let test_graph_fingerprint_canonical () =
  (* same edge set presented in different orders must fingerprint alike *)
  let edges = [ (0, 1); (1, 2); (2, 3); (0, 3); (1, 3) ] in
  let g1 = G.of_edge_list ~n:4 edges in
  let g2 = G.of_edge_list ~n:4 (List.rev edges) in
  checkb "order-independent" true
    (Fp.graph Fp.seed g1 = Fp.graph Fp.seed g2);
  let g3 = G.of_edge_list ~n:4 [ (0, 1); (1, 2); (2, 3); (0, 3); (0, 2) ] in
  checkb "different edges differ" false
    (Fp.graph Fp.seed g1 = Fp.graph Fp.seed g3)

let test_corrupt_entry_recomputed () =
  with_fresh_cache @@ fun dir ->
  let key = int_key 3 in
  ignore (memo_int key 11);
  Store.reset_memory ();
  (* flip payload bytes on disk: checksum mismatch -> Corrupt *)
  let file = Filename.concat dir (Key.filename key) in
  let contents = In_channel.with_open_bin file In_channel.input_all in
  let corrupted =
    String.map (fun c -> if c = '1' then '9' else c) contents
  in
  Out_channel.with_open_bin file (fun oc -> output_string oc corrupted);
  let v, fails = delta "cache.verify_fail" (fun () -> memo_int key 11) in
  check "recomputed" 11 v;
  checkb "corruption detected" true (fails >= 1);
  (* the bad entry was evicted and replaced; next lookup serves clean *)
  Store.reset_memory ();
  let v, hits = delta "cache.hit" (fun () -> memo_int key 0) in
  check "replacement serves" 11 v;
  check "clean hit" 1 hits

let test_verify_failure_evicts () =
  with_fresh_cache @@ fun _ ->
  let key = int_key 4 in
  ignore (memo_int key 5);
  Store.reset_memory ();
  (* a verifier that rejects the (decodable) entry forces recompute *)
  let v, fails =
    delta "cache.verify_fail" (fun () ->
        Store.memoize ~key ~encode:int_encode ~decode:int_decode
          ~verify:(fun v -> v > 100)
          ~compute:(fun () -> 200))
  in
  check "recomputed past bad witness" 200 v;
  check "verify failure counted" 1 fails

let test_env_off_bypasses () =
  with_fresh_cache @@ fun dir ->
  let key = int_key 5 in
  Unix.putenv "BFLY_CACHE" "off";
  Config.reload ();
  (* reload also re-read BFLY_CACHE_DIR; point back at this case's dir *)
  Config.set_dir dir;
  let finish () =
    Unix.putenv "BFLY_CACHE" "1";
    Config.reload ();
    Config.set_enabled true;
    Config.set_dir dir;
    Config.set_lru_capacity 512
  in
  (match
     checkb "env disables" false (Config.enabled ());
     let computes = ref 0 in
     let run () =
       Store.memoize ~key ~encode:int_encode ~decode:int_decode
         ~verify:(fun _ -> true)
         ~compute:(fun () ->
           incr computes;
           9)
     in
     let v1, hits = delta "cache.hit" (fun () -> ignore (run ()); run ()) in
     check "still computes" 9 v1;
     check "computed both times" 2 !computes;
     check "no hits counted" 0 hits;
     check "stored nothing" 0 (Store.stats ()).disk.entries
   with
  | () -> finish ()
  | exception e ->
      finish ();
      raise e);
  checkb "re-enabled" true (Config.enabled ())

let test_lru_eviction () =
  with_fresh_cache @@ fun _ ->
  Config.set_lru_capacity 2;
  let _, evicted =
    delta "cache.evict" (fun () ->
        ignore (memo_int (int_key 10) 1);
        ignore (memo_int (int_key 11) 2);
        ignore (memo_int (int_key 12) 3))
  in
  checkb "memory bounded" true (Store.memory_length () <= 2);
  checkb "eviction counted" true (evicted >= 1);
  (* the evicted entry is still on disk *)
  let v, disk_hits = delta "cache.hit.disk" (fun () -> memo_int (int_key 10) 0) in
  check "evicted entry served from disk" 1 v;
  check "disk hit" 1 disk_hits

(* ---- solver integrations ---- *)

let test_exact_warm_identity () =
  with_fresh_cache @@ fun _ ->
  let g = b4_graph () in
  let (c1, s1), cold_nodes =
    delta "exact.bb.nodes" (fun () -> Bfly_cuts.Exact.bisection_width g)
  in
  let (c2, s2), warm_nodes =
    delta "exact.bb.nodes" (fun () -> Bfly_cuts.Exact.bisection_width g)
  in
  check "same width" c1 c2;
  checkb "identical witness" true (Bitset.equal s1 s2);
  checkb "cold run searched" true (cold_nodes > 0);
  check "warm run searched nothing" 0 warm_nodes

let test_exact_upper_bound_semantics () =
  with_fresh_cache @@ fun _ ->
  let g = b4_graph () in
  let c, _ = Bfly_cuts.Exact.bisection_width g in
  (* a satisfiable bound is served from cache *)
  let (c', _), hits =
    delta "cache.hit" (fun () ->
        Bfly_cuts.Exact.bisection_width ~upper_bound:c g)
  in
  check "bound satisfied from cache" c c';
  check "served as hit" 1 hits;
  (* an unsatisfiable bound raises the same error warm as cold *)
  checkb "unsatisfiable bound still raises" true
    (match Bfly_cuts.Exact.bisection_width ~upper_bound:(c - 1) g with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_exact_u_in_key () =
  with_fresh_cache @@ fun _ ->
  let g = b4_graph () in
  let u = Bitset.create (G.n_nodes g) in
  List.iter (Bitset.add u) [ 0; 1; 2; 3 ];
  let c_all, _ = Bfly_cuts.Exact.bisection_width g in
  let (c_u, _), misses =
    delta "cache.miss" (fun () -> Bfly_cuts.Exact.bisection_width ~u g)
  in
  check "distinct u misses" 1 misses;
  (* U-bisection of the inputs only: a different problem, typically a
     different optimum; either way both warm lookups stay consistent *)
  let c_all', _ = Bfly_cuts.Exact.bisection_width g in
  let c_u', _ = Bfly_cuts.Exact.bisection_width ~u g in
  check "full-bisection stable" c_all c_all';
  check "u-bisection stable" c_u c_u'

let test_heuristic_rng_stream_preserved () =
  with_fresh_cache @@ fun _ ->
  let g = b4_graph () in
  let run () =
    let rng = Random.State.make [| 0xfeed |] in
    let r = Bfly_cuts.Heuristics.kernighan_lin ~rng ~restarts:2 g in
    (r, Random.State.bits rng)
  in
  let (c1, s1), draw1 = run () in
  let ((c2, s2), draw2), hits = delta "cache.hit" (fun () -> run ()) in
  check "same capacity" c1 c2;
  checkb "same witness" true (Bitset.equal s1 s2);
  check "warm run hit" 1 hits;
  check "rng stream position identical after hit" draw1 draw2

let test_heuristic_params_in_key () =
  with_fresh_cache @@ fun _ ->
  let g = b4_graph () in
  let run restarts =
    Bfly_cuts.Heuristics.fiduccia_mattheyses
      ~rng:(Random.State.make [| 0xabc |])
      ~restarts g
  in
  ignore (run 2);
  let _, misses = delta "cache.miss" (fun () -> run 3) in
  check "different restarts is a different key" 1 misses;
  let _, hits = delta "cache.hit" (fun () -> run 2) in
  check "original key still hot" 1 hits

let test_spectral_and_sa_cached () =
  with_fresh_cache @@ fun _ ->
  let g = b4_graph () in
  let c1, _ = Bfly_cuts.Heuristics.spectral g in
  let (c2, _), hits = delta "cache.hit" (fun () -> Bfly_cuts.Heuristics.spectral g) in
  check "spectral stable" c1 c2;
  check "spectral cached" 1 hits;
  let sa () =
    Bfly_cuts.Heuristics.annealing
      ~rng:(Random.State.make [| 0x5a |])
      ~steps:500 g
  in
  let c3, _ = sa () in
  let (c4, _), hits = delta "cache.hit" (fun () -> sa ()) in
  check "annealing stable" c3 c4;
  check "annealing cached" 1 hits

let test_pullback_and_bw_m2_cached () =
  with_fresh_cache @@ fun _ ->
  let b = Butterfly.of_inputs 16 in
  let p1, cost1, s1 = Bfly_cuts.Constructions.best_mos_pullback b in
  let (p2, cost2, s2), hits =
    delta "cache.hit" (fun () -> Bfly_cuts.Constructions.best_mos_pullback b)
  in
  checkb "same parameters" true (p1 = p2);
  check "same cost" cost1 cost2;
  checkb "same witness" true (Bitset.equal s1 s2);
  check "pullback cached" 1 hits;
  let v1 = Bfly_mos.Mos_analysis.bw_m2 17 in
  let v2, hits = delta "cache.hit" (fun () -> Bfly_mos.Mos_analysis.bw_m2 17) in
  check "bw_m2 stable" v1 v2;
  check "bw_m2 cached" 1 hits

let test_expansion_cached () =
  with_fresh_cache @@ fun _ ->
  let g = b4_graph () in
  let ee1, ew1 = Bfly_expansion.Expansion.ee_exact g ~k:3 in
  let (ee2, ew2), hits =
    delta "cache.hit" (fun () -> Bfly_expansion.Expansion.ee_exact g ~k:3)
  in
  check "EE stable" ee1 ee2;
  checkb "EE witness stable" true (Bitset.equal ew1 ew2);
  check "EE cached" 1 hits;
  let ne1, _ = Bfly_expansion.Expansion.ne_exact g ~k:3 in
  let (ne2, _), hits =
    delta "cache.hit" (fun () -> Bfly_expansion.Expansion.ne_exact g ~k:3)
  in
  check "NE stable" ne1 ne2;
  check "NE cached" 1 hits;
  (* k is part of the key *)
  let _, misses =
    delta "cache.miss" (fun () -> Bfly_expansion.Expansion.ee_exact g ~k:4)
  in
  check "different k misses" 1 misses

(* ---- orphaned temp files (regression) ----
   A writer that died between temp-file creation and rename used to leak
   `.<digest>.<pid>.tmp` files forever. *)

let test_tmp_sweep () =
  with_fresh_cache @@ fun dir ->
  ignore (memo_int (int_key 80) 1);
  let orphan name =
    Out_channel.with_open_bin (Filename.concat dir name) (fun oc ->
        Out_channel.output_string oc "junk from a dead writer")
  in
  orphan ".deadbeef.99999.tmp";
  orphan ".cafebabe.99998.tmp";
  check "stats reports in-flight temp files" 2 (Store.stats ()).disk.tmp;
  (* fresh temp files belong to live writers: the age-gated default sweep
     must leave them alone *)
  check "age-gated sweep spares fresh files" 0 (Store.sweep_tmp ());
  check "both still present" 2 (Store.stats ()).disk.tmp;
  (* with the age gate dropped they are stale by definition *)
  check "zero-age sweep removes both" 2 (Store.sweep_tmp ~max_age_s:0. ());
  check "none left" 0 (Store.stats ()).disk.tmp;
  (* cache entries were never touched *)
  check "entry survived the sweep" 1 (Store.stats ()).disk.entries

(* ---- injected disk faults (chaos) ----
   Faults may cost recomputation, never correctness: a corrupted read is
   detected and refused, a failed read or write degrades to a miss. *)

let test_injected_disk_faults () =
  let module Fault = Bfly_resil.Fault in
  with_fresh_cache @@ fun _ ->
  let lookup key =
    Store.lookup ~key ~decode:int_decode ~verify:(fun _ -> true)
  in
  (* corruption of the on-disk bytes is caught by the checksum/format
     checks — a lookup never serves a corrupted payload *)
  let k1 = int_key 81 in
  ignore (memo_int k1 7);
  Store.reset_memory ();
  let v =
    Fault.scope ~rate:1.0 ~seed:5 [ Fault.Corrupt ] (fun () -> lookup k1)
  in
  Alcotest.(check (option int)) "corrupted read is never served" None v;
  Store.reset_memory ();
  (match lookup k1 with
  | None | Some 7 -> () (* evicted, or untouched when the flip hit the key line *)
  | Some v -> Alcotest.failf "corruption leaked a wrong value %d" v);
  (* an injected read error is just a miss; the entry survives *)
  let k2 = int_key 82 in
  ignore (memo_int k2 9);
  Store.reset_memory ();
  let v =
    Fault.scope ~rate:1.0 ~seed:6 [ Fault.Disk_io ] (fun () -> lookup k2)
  in
  Alcotest.(check (option int)) "I/O fault reads as a miss" None v;
  Store.reset_memory ();
  Alcotest.(check (option int)) "entry intact after the fault" (Some 9)
    (lookup k2);
  (* an injected write error drops the store; nothing partial appears *)
  let k3 = int_key 83 in
  Fault.scope ~rate:1.0 ~seed:7 [ Fault.Disk_io ] (fun () ->
      Store.put ~key:k3 ~encode:int_encode 11);
  Store.reset_memory ();
  Alcotest.(check (option int)) "failed store leaves no disk entry" None
    (lookup k3)

let test_fuzzer_agrees_cache_on_off () =
  with_fresh_cache @@ fun _ ->
  (* the differential-oracle suite must produce the identical document on
     a cold cache, a warm cache, and with the cache disabled *)
  let doc ~enabled =
    Config.set_enabled enabled;
    let json, ok = Bfly_check.Run.execute ~seed:11 ~rounds:2 ~smoke:true () in
    checkb "suite passes" true ok;
    Bfly_obs.Json.to_string json
  in
  let cold = doc ~enabled:true in
  let warm = doc ~enabled:true in
  let off = doc ~enabled:false in
  checkb "cold = warm" true (String.equal cold warm);
  checkb "warm = off" true (String.equal warm off)

let suite =
  [
    case "memoize: computes once, then serves" test_memoize_hit;
    case "disk tier round trip and promotion" test_disk_tier_round_trip;
    case "key digest tracks every component" test_key_sensitivity;
    case "graph fingerprint is edge-order canonical"
      test_graph_fingerprint_canonical;
    case "corrupted entry detected and recomputed" test_corrupt_entry_recomputed;
    case "verify failure evicts and recomputes" test_verify_failure_evicts;
    case "BFLY_CACHE=off bypasses both tiers" test_env_off_bypasses;
    case "LRU bounds memory; evicted entries stay on disk" test_lru_eviction;
    case "exact: warm hit is identical, zero search nodes"
      test_exact_warm_identity;
    case "exact: upper_bound re-applied at serve time"
      test_exact_upper_bound_semantics;
    case "exact: u-subset is part of the key" test_exact_u_in_key;
    case "heuristics: hit preserves caller's rng stream"
      test_heuristic_rng_stream_preserved;
    case "heuristics: parameters are part of the key"
      test_heuristic_params_in_key;
    case "heuristics: spectral and annealing cached" test_spectral_and_sa_cached;
    case "pullback sweep and bw_m2 cached" test_pullback_and_bw_m2_cached;
    case "expansion: exact minimizers cached per (graph, k)"
      test_expansion_cached;
    case "orphaned temp files swept, age-gated" test_tmp_sweep;
    case "injected disk faults never change served values"
      test_injected_disk_faults;
    slow_case "differential suite agrees cache on/warm/off"
      test_fuzzer_agrees_cache_on_off;
  ]
