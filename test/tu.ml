(* Shared test utilities. *)

module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Every randomized helper takes an explicit [rng]; [rng seed] makes one.
   There is deliberately no shared process-global state: suites used to
   mutate one [Random.State] in registration order, so adding a test case
   reseeded every generator registered after it. Seeding per case keeps
   each test's instances stable under suite growth. *)
let rng seed = Random.State.make [| seed; 0x7e57 |]

(* Append a per-case seed to a QCheck generator: randomized properties
   draw their instances from [rng seed], so every invocation owns its
   stream and the seed shrinks (toward 0) with the rest of the case. *)
let seeded gen = QCheck2.Gen.(pair gen (int_bound 0xffffff))

(* Erdős–Rényi-ish random graph, made connected by a random spanning path. *)
let random_graph ~rng n ~extra_edges =
  let edges = ref [] in
  let perm = Bfly_graph.Perm.random ~rng n in
  for i = 0 to n - 2 do
    edges := (Bfly_graph.Perm.apply perm i, Bfly_graph.Perm.apply perm (i + 1)) :: !edges
  done;
  for _ = 1 to extra_edges do
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if u <> v then edges := (u, v) :: !edges
  done;
  G.of_edge_list ~n !edges

let random_subset ~rng n k =
  let p = Bfly_graph.Perm.random ~rng n in
  let s = Bitset.create n in
  for i = 0 to k - 1 do
    Bitset.add s (Bfly_graph.Perm.apply p i)
  done;
  s

(* Brute-force bisection width for tiny graphs. The historical in-test
   implementation grew into [Bfly_check.Reference], which the whole
   differential-oracle layer now builds on; this alias keeps the test
   suites reading the same. *)
let brute_bw g = fst (Bfly_check.Reference.bisection_width g)
