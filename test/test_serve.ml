(* Tests for the batch query service (lib/serve): request parsing, the
   Job execution vocabulary, coalescing, admission control, per-request
   deadlines, drain semantics, and the headline guarantee — a served
   response's output field is byte-identical to the one-shot subcommand,
   warm or cold cache, whatever the concurrency. The later cases drive
   the real transports (Unix socket and TCP) from concurrent client
   threads: per-connection response ordering, single-flight coalescing
   under concurrency, disconnect/oversized/garbage fault paths, per-client
   admission, and a chaos run under injected worker faults. *)

module Server = Bfly_serve.Server
module Job = Bfly_serve.Job
module Protocol = Bfly_serve.Protocol
module Latency = Bfly_serve.Latency
module Json = Bfly_obs.Json
module Metrics = Bfly_obs.Metrics
module Config = Bfly_cache.Config
module Store = Bfly_cache.Store
open Tu

let counter name = Metrics.counter_value (Metrics.counter name)

(* Isolate each case in its own empty cache directory (same discipline as
   test_cache.ml): serve results must not depend on what earlier suites
   happened to compute. *)
let fresh_id = ref 0

let with_fresh_cache f =
  incr fresh_id;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bfly-serve-test-%d-%d" (Unix.getpid ()) !fresh_id)
  in
  let was_enabled = Config.enabled () in
  let old_dir = Config.dir () in
  let restore () =
    Config.set_enabled true;
    Config.set_dir dir;
    ignore (Store.clear ());
    (try Unix.rmdir dir with Unix.Unix_error _ | Sys_error _ -> ());
    Config.set_enabled was_enabled;
    Config.set_dir old_dir;
    Store.reset_memory ()
  in
  Config.set_enabled true;
  Config.set_dir dir;
  Store.reset_memory ();
  match f () with
  | v ->
      restore ();
      v
  | exception e ->
      restore ();
      raise e

(* submit a line and capture every response addressed to it *)
let replay server lines =
  let responses = ref [] in
  List.iter
    (fun line ->
      Server.submit server ~reply:(fun r -> responses := r :: !responses) line)
    lines;
  ignore (Server.run_pending server);
  List.rev !responses

let parse_response line =
  match Json.of_string line with
  | Ok obj -> obj
  | Error e -> Alcotest.failf "unparseable response %s: %s" line e

let str_field obj k =
  match Option.bind (Json.member k obj) Json.to_string_opt with
  | Some s -> s
  | None -> Alcotest.failf "response lacks string field %S: %s" k (Json.to_string obj)

let int_field obj k =
  match Option.bind (Json.member k obj) Json.to_int_opt with
  | Some i -> i
  | None -> Alcotest.failf "response lacks int field %S: %s" k (Json.to_string obj)

let bool_field obj k =
  match Option.bind (Json.member k obj) Json.to_bool_opt with
  | Some b -> b
  | None -> Alcotest.failf "response lacks bool field %S: %s" k (Json.to_string obj)

(* ---- the replay trace: 12 distinct jobs, each requested 10 times ---- *)

let bw solver ?(n = 16) ?(seed = 1) ?(restarts = 4) () =
  ( Printf.sprintf
      {|{"job":"bw","solver":"%s","network":"butterfly","n":%d,"seed":%d,"restarts":%d}|}
      (Job.solver_name solver) n seed restarts,
    Job.Bw
      {
        Job.solver;
        net = Job.Butterfly;
        n;
        seed;
        restarts;
        max_nodes = None;
        resume = false;
      } )

let distinct_jobs =
  [
    bw Job.Kl ();
    bw Job.Kl ~seed:2 ();
    bw Job.Kl ~seed:3 ();
    bw Job.Fm ();
    bw Job.Sa ~n:8 ~restarts:2 ();
    bw Job.Spectral ();
    bw Job.Exact ~n:8 ();
    ( {|{"job":"mos","j":2}|}, Job.Mos { j = 2 } );
    ( {|{"job":"mos","j":3}|}, Job.Mos { j = 3 } );
    ( {|{"job":"ee","network":"butterfly","n":8,"k":4,"exact":true}|},
      Job.Expansion
        { kind = `Ee; net = Job.Butterfly; n = 8; k = 4; exact = true; seed = 1 }
    );
    ( {|{"job":"ne","network":"butterfly","n":8,"k":4,"exact":true}|},
      Job.Expansion
        { kind = `Ne; net = Job.Butterfly; n = 8; k = 4; exact = true; seed = 1 }
    );
    ( {|{"job":"expansion","network":"wrapped","n":8,"k":6,"exact":true}|},
      Job.Expansion
        { kind = `Both; net = Job.Wrapped; n = 8; k = 6; exact = true; seed = 1 }
    );
  ]

let copies = 10

(* the duplicates are interleaved, not adjacent: request i of round r is
   distinct from its neighbours, the way concurrent clients look *)
let trace_lines () =
  List.concat_map
    (fun _round -> List.map fst distinct_jobs)
    (List.init copies Fun.id)

(* ---- cases ---- *)

(* The acceptance trace: 120 requests (12 distinct jobs x 10 copies)
   through a server. Every response must be ok with the exact bytes the
   one-shot subcommand prints (Job.run IS the one-shot execution path —
   ci.sh's serve stage closes the loop through the real CLI), every batch
   must have width 10, and the whole trace must cost 12 solves. *)
let test_replay_byte_identical () =
  with_fresh_cache @@ fun () ->
  (* one-shot outputs first (cold cache); the served replay then runs
     warm, so this also proves warm/cold byte-identity *)
  let expected =
    List.map
      (fun (_, spec) ->
        match Job.run spec with
        | Ok out -> (Job.fingerprint spec, out)
        | Error e -> Alcotest.failf "one-shot job failed: %s" e)
      distinct_jobs
  in
  let server = Server.create () in
  let lines = trace_lines () in
  check "trace length" 120 (List.length lines);
  let responses = replay server lines in
  check "one response per request" 120 (List.length responses);
  (* batches run in first-arrival order and answer all their waiters
     together, so responses come grouped: 10 for job 0, then 10 for job 1,
     ... — response i belongs to distinct_jobs.(i / copies) *)
  List.iteri
    (fun i line ->
      let obj = parse_response line in
      checkb (Printf.sprintf "response %d ok" i) true (bool_field obj "ok");
      check (Printf.sprintf "response %d batch width" i) copies
        (int_field obj "batch");
      let _, spec = List.nth distinct_jobs (i / copies) in
      let want = List.assoc (Job.fingerprint spec) expected in
      Alcotest.(check string)
        (Printf.sprintf "response %d output" i)
        want (str_field obj "output"))
    responses;
  (* coalescing: 120 requests, 12 solves *)
  let stats = Server.stats_json server in
  check "requests" 120 (int_field stats "requests");
  check "responses" 120 (int_field stats "responses");
  check "batches" (List.length distinct_jobs) (int_field stats "batches");
  check "coalesced" (120 - List.length distinct_jobs)
    (int_field stats "coalesced");
  check "nothing left queued" 0 (int_field stats "queue_depth");
  (* latency accounting saw every request *)
  let latency =
    match Json.member "latency" stats with
    | Some l -> l
    | None -> Alcotest.fail "stats lacks latency object"
  in
  check "latency count" 120 (int_field latency "count");
  checkb "p99 >= p50" true
    (int_field latency "p99_ns" >= int_field latency "p50_ns");
  (* warm replay: same trace on a fresh server, same bytes, and the cache
     answers everything — no new misses anywhere in the process *)
  let server2 = Server.create () in
  let miss0 = counter "cache.miss" in
  let responses2 = replay server2 (trace_lines ()) in
  check "warm replay misses" 0 (counter "cache.miss" - miss0);
  List.iter2
    (fun a b ->
      Alcotest.(check string)
        "warm replay byte-identical"
        (str_field (parse_response a) "output")
        (str_field (parse_response b) "output"))
    responses responses2

(* A full queue answers with an explicit "overloaded" verdict instead of
   buffering without bound: 10 distinct jobs against queue_bound 2 means
   exactly 8 immediate rejections, and the 2 admitted jobs still solve. *)
let test_overload () =
  with_fresh_cache @@ fun () ->
  let server = Server.create ~queue_bound:2 () in
  let responses = ref [] in
  for j = 1 to 10 do
    Server.submit server
      ~reply:(fun r -> responses := r :: !responses)
      (Printf.sprintf {|{"id":"q%d","job":"mos","j":%d}|} j j)
  done;
  let immediate = List.rev !responses in
  check "rejections are immediate" 8 (List.length immediate);
  List.iter
    (fun line ->
      let obj = parse_response line in
      checkb "rejected" false (bool_field obj "ok");
      Alcotest.(check string) "verdict" "overloaded" (str_field obj "error"))
    immediate;
  ignore (Server.run_pending server);
  let all = List.rev !responses in
  check "every request answered" 10 (List.length all);
  let ok_count =
    List.length
      (List.filter (fun l -> bool_field (parse_response l) "ok") all)
  in
  check "admitted jobs solved" 2 ok_count;
  let stats = Server.stats_json server in
  let rejected =
    match Json.member "rejected" stats with
    | Some r -> r
    | None -> Alcotest.fail "stats lacks rejected object"
  in
  check "overload tally" 8 (int_field rejected "overload");
  (* the two admitted requests were the first two to arrive, solved in
     arrival order (rejections are replied immediately, so they lead) *)
  let admitted =
    List.filter_map
      (fun l ->
        let obj = parse_response l in
        if bool_field obj "ok" then Some (str_field obj "id") else None)
      all
  in
  Alcotest.(check (list string)) "fifo order kept" [ "q1"; "q2" ] admitted

(* A per-request deadline (or step budget) makes the exact solver degrade
   to a certified interval — the same shape `bfly_tool bw exact
   --max-nodes` prints — rather than fail or overrun. *)
let test_deadline_degrades () =
  with_fresh_cache @@ fun () ->
  let server = Server.create () in
  let shapes =
    [
      (* step budget: fires at the first supervision poll *)
      {|{"id":"steps","job":"bw","network":"butterfly","n":8,"max_nodes":1}|};
      (* 1 microsecond of wall clock: expired before the search starts *)
      {|{"id":"wall","job":"bw","network":"butterfly","n":8,"deadline":"0.000001"}|};
    ]
  in
  List.iter
    (fun line ->
      let responses = replay server [ line ] in
      check "one response" 1 (List.length responses);
      let obj = parse_response (List.hd responses) in
      checkb "degraded run still ok" true (bool_field obj "ok");
      let out = str_field obj "output" in
      checkb
        (Printf.sprintf "interval shape in %S" out)
        true
        (String.length out >= 11 && String.sub out 0 11 = "B_8: BW in "))
    shapes

(* The deadline is part of the coalescing key: the same spec with and
   without a deadline must NOT share a solve, because the deadline decides
   whether the result may degrade. *)
let test_deadline_in_fingerprint () =
  with_fresh_cache @@ fun () ->
  let server = Server.create () in
  let line = {|{"job":"bw","solver":"kl","network":"butterfly","n":16}|} in
  let with_deadline =
    {|{"job":"bw","solver":"kl","network":"butterfly","n":16,"deadline":"10s"}|}
  in
  let responses = replay server [ line; with_deadline; line ] in
  check "three responses" 3 (List.length responses);
  let stats = Server.stats_json server in
  check "two solves" 2 (int_field stats "batches");
  check "only the exact duplicate coalesced" 1 (int_field stats "coalesced")

(* After drain, job submissions are rejected with "draining" but stats
   introspection still answers — that's what makes graceful shutdown
   observable. *)
let test_drain () =
  with_fresh_cache @@ fun () ->
  let server = Server.create () in
  (* queue one job before the drain signal lands *)
  let queued = ref [] in
  Server.submit server
    ~reply:(fun r -> queued := r :: !queued)
    {|{"id":"early","job":"mos","j":2}|};
  Server.drain server;
  checkb "draining latched" true (Server.draining server);
  let late = replay server [ {|{"id":"late","job":"mos","j":3}|} ] in
  let obj = parse_response (List.hd late) in
  checkb "late job rejected" false (bool_field obj "ok");
  Alcotest.(check string) "verdict" "draining" (str_field obj "error");
  let stats_reply = replay server [ {|{"id":"s","job":"stats"}|} ] in
  let sobj = parse_response (List.hd stats_reply) in
  checkb "stats still served" true (bool_field sobj "ok");
  checkb "stats reports draining" true (bool_field sobj "draining");
  (* the queued job still ran to completion during replay's run_pending *)
  check "early job answered" 1 (List.length !queued);
  checkb "early job ok" true
    (bool_field (parse_response (List.hd !queued)) "ok")

(* Malformed input costs an error response, never the server; the
   response reuses the request's own id whenever the line parsed far
   enough to have one. *)
let test_parse_errors () =
  with_fresh_cache @@ fun () ->
  let server = Server.create () in
  let cases =
    [
      ("not json at all", None);
      ({|[1,2,3]|}, None);
      ({|{"id":"x1","job":"teleport"}|}, Some "x1");
      ({|{"id":"x2","job":"bw","network":"butterfly"}|}, Some "x2");
      ({|{"id":"x3","job":"bw","solver":"kl","network":"moebius","n":8}|},
       Some "x3");
      ({|{"id":"x4","job":"mos","j":2,"deadline":"soonish"}|}, Some "x4");
      ({|{"id":"x5","job":"mos"}|}, Some "x5");
    ]
  in
  List.iter
    (fun (line, want_id) ->
      let responses = replay server [ line ] in
      check "answered" 1 (List.length responses);
      let obj = parse_response (List.hd responses) in
      checkb (Printf.sprintf "rejected %S" line) false (bool_field obj "ok");
      match want_id with
      | Some id -> Alcotest.(check string) "echoes request id" id (str_field obj "id")
      | None ->
          (* assigned id: non-empty, server-generated *)
          checkb "assigned an id" true (String.length (str_field obj "id") > 0))
    cases;
  let stats = Server.stats_json server in
  check "parse_errors tally" (List.length cases) (int_field stats "parse_errors");
  (* the server still works afterwards *)
  let after = replay server [ {|{"job":"mos","j":2}|} ] in
  checkb "server survived" true (bool_field (parse_response (List.hd after)) "ok")

(* Solver-level failures (bad arguments reaching Job.run) come back as
   per-request errors with the same message the one-shot CLI prints. *)
let test_solver_errors () =
  with_fresh_cache @@ fun () ->
  let server = Server.create () in
  let cases =
    [
      ({|{"id":"e1","job":"bw","solver":"kl","network":"butterfly","n":7}|},
       "n must be a power of two");
      ({|{"id":"e2","job":"mos","j":0}|}, "j must be >= 1");
      ({|{"id":"e3","job":"ee","network":"butterfly","n":8,"k":999}|},
       "k out of range");
    ]
  in
  List.iter
    (fun (line, want) ->
      let responses = replay server [ line ] in
      let obj = parse_response (List.hd responses) in
      checkb "not ok" false (bool_field obj "ok");
      Alcotest.(check string) "CLI error text" want (str_field obj "error"))
    cases

(* Ambiguous request documents must be rejected outright: Json.member is
   first-key-wins, so a duplicate key would silently drop the later value
   — a malformed request, not a preference (bugfix for json.mli's
   documented first-wins lookup). *)
let test_duplicate_key_rejected () =
  with_fresh_cache @@ fun () ->
  let server = Server.create () in
  List.iter
    (fun (line, key) ->
      let obj = parse_response (List.hd (replay server [ line ])) in
      checkb (Printf.sprintf "rejected %s" line) false (bool_field obj "ok");
      Alcotest.(check string)
        "names the duplicated key"
        (Printf.sprintf "duplicate key %S in request object" key)
        (str_field obj "error"))
    [
      ({|{"id":"d1","job":"bw","solver":"ml","network":"mesh:4x4","seed":1,"seed":2}|},
       "seed");
      ({|{"id":"d2","id":"d2b","job":"mos","j":2}|}, "id");
      (* nested duplicates are screened too: the scan is depth-first *)
      ({|{"id":"d3","job":"mos","j":2,"extra":{"a":1,"a":2}}|}, "a");
    ];
  (* same fields without duplication still parse *)
  let ok_line = {|{"id":"d4","job":"mos","j":2}|} in
  let obj = parse_response (List.hd (replay server [ ok_line ])) in
  checkb "distinct keys accepted" true (bool_field obj "ok")

(* Fabric jobs ride the same byte-identity contract as the classic
   families: the served output equals Job.run's text, and the [n] field
   is rejected rather than silently ignored (the spec fixes the size). *)
let test_fabric_jobs () =
  with_fresh_cache @@ fun () ->
  let server = Server.create () in
  let line =
    {|{"id":"f1","job":"bw","solver":"ml","network":"mesh:4x4","seed":1}|}
  in
  let spec =
    Job.Bw
      {
        Job.solver = Job.Ml;
        net = Job.Fabric (Bfly_networks.Fabric.Mesh [ 4; 4 ]);
        n = 0;
        seed = 1;
        restarts = 4;
        max_nodes = None;
        resume = false;
      }
  in
  let obj = parse_response (List.hd (replay server [ line ])) in
  checkb "fabric job ok" true (bool_field obj "ok");
  (match Job.run spec with
  | Ok text ->
      Alcotest.(check string)
        "served bytes = one-shot bytes" text (str_field obj "output")
  | Error e -> Alcotest.failf "one-shot run failed: %s" e);
  let with_n =
    {|{"id":"f2","job":"bw","solver":"ml","network":"mesh:4x4","n":16}|}
  in
  let obj = parse_response (List.hd (replay server [ with_n ])) in
  checkb "explicit n rejected" false (bool_field obj "ok");
  Alcotest.(check string)
    "n-rejection message"
    "field \"n\" must be omitted for fabric networks (the spec fixes the size)"
    (str_field obj "error");
  (* expansion jobs accept fabric specs through the same parser *)
  let exp_line = {|{"id":"f3","job":"ee","network":"mesh:3x3","k":4,"exact":true}|} in
  let obj = parse_response (List.hd (replay server [ exp_line ])) in
  checkb "fabric expansion ok" true (bool_field obj "ok");
  checkb "output names the canonical spec" true
    (let out = str_field obj "output" in
     String.length out >= 8 && String.sub out 0 8 = "mesh:3x3")

(* ---- concurrency: real transports, real client threads ---- *)

module Transport = Bfly_serve.Transport
module Dispatch = Bfly_serve.Dispatch
module Fault = Bfly_resil.Fault

let tmp_name base =
  incr fresh_id;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s-%d-%d" base (Unix.getpid ()) !fresh_id)

(* Run [f] against a serving transport on its own thread; [f] receives
   the connect address. Drains and joins on the way out, and re-raises
   [f]'s failure (Alcotest exceptions included) from the main thread. *)
let with_server ?workers ~server ~listen f =
  let path, serve_thread, addr_of =
    match listen with
    | `Unix ->
        let path = tmp_name "bfly-serve-sock" in
        ( path,
          (fun () ->
            Transport.socket ~block_timeout:0.05 ?workers server ~path),
          fun () ->
            let deadline = Unix.gettimeofday () +. 10. in
            while
              (not (Sys.file_exists path))
              && Unix.gettimeofday () < deadline
            do
              Thread.yield ()
            done;
            `Unix path )
    | `Tcp ->
        let port_file = tmp_name "bfly-serve-port" in
        ( port_file,
          (fun () ->
            Transport.serve ~block_timeout:0.05 ?workers
              ~tcp:("127.0.0.1", 0) ~port_file server),
          fun () ->
            let deadline = Unix.gettimeofday () +. 10. in
            let rec wait () =
              let line =
                try In_channel.with_open_text port_file In_channel.input_line
                with Sys_error _ -> None
              in
              match line with
              | Some l -> (
                  match String.rindex_opt l ':' with
                  | Some i ->
                      `Tcp
                        ( String.sub l 0 i,
                          int_of_string
                            (String.sub l (i + 1) (String.length l - i - 1))
                        )
                  | None -> Alcotest.failf "bad port file line %S" l)
              | None ->
                  if Unix.gettimeofday () > deadline then
                    Alcotest.fail "server did not write its port file";
                  Thread.yield ();
                  wait ()
            in
            wait () )
  in
  let t = Thread.create serve_thread () in
  let finish () =
    Server.drain server;
    Thread.join t;
    try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()
  in
  match f (addr_of ()) with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let connect = function
  | `Unix path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | `Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      fd

let send_all fd lines =
  let s = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write fd b !pos (len - !pos)
  done

let read_lines ic n =
  List.init n (fun _ ->
      match In_channel.input_line ic with
      | Some l -> l
      | None -> Alcotest.fail "server closed before answering")

(* One client session: pipeline [lines], half-close, read one response
   per request. Relies on — and therefore tests — the per-connection
   ordering guarantee. *)
let client_session addr lines =
  let fd = connect addr in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      send_all fd lines;
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      read_lines (Unix.in_channel_of_descr fd) (List.length lines))

(* Each concurrent client pipelines its own seeded interleaving of the
   distinct jobs (duplicates across clients land mid-flight on purpose)
   and must get every response ok, in ITS OWN request order, with output
   bytes equal to the one-shot subcommand's. *)
let stress_over listen () =
  with_fresh_cache @@ fun () ->
  let expected =
    List.map
      (fun (line, spec) ->
        match Job.run spec with
        | Ok out -> (line, out)
        | Error e -> Alcotest.failf "one-shot job failed: %s" e)
      distinct_jobs
  in
  let n_clients = 4 and rounds = 3 in
  let client_lines ci =
    let rng = Random.State.make [| 0xc11e; ci |] in
    List.concat_map
      (fun _ ->
        let a = Array.of_list (List.map fst distinct_jobs) in
        for i = Array.length a - 1 downto 1 do
          let j = Random.State.int rng (i + 1) in
          let tmp = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- tmp
        done;
        Array.to_list a)
      (List.init rounds Fun.id)
  in
  (* 144 requests arrive pipelined before the first solve finishes;
     admission must stay out of this test's way (it has its own cases) *)
  let server = Server.create ~queue_bound:1000 () in
  let resp0 = counter "serve.responses" in
  with_server ~workers:4 ~server ~listen (fun addr ->
      let results = Array.make n_clients [] in
      let failed = Atomic.make None in
      let run ci () =
        try results.(ci) <- client_session addr (client_lines ci)
        with e -> Atomic.set failed (Some e)
      in
      let threads =
        List.init n_clients (fun ci -> Thread.create (run ci) ())
      in
      List.iter Thread.join threads;
      (match Atomic.get failed with Some e -> raise e | None -> ());
      Array.iteri
        (fun ci responses ->
          List.iter2
            (fun line response ->
              let obj = parse_response response in
              checkb
                (Printf.sprintf "client %d response ok" ci)
                true (bool_field obj "ok");
              Alcotest.(check string)
                (Printf.sprintf "client %d ordered byte-identical output" ci)
                (List.assoc line expected)
                (str_field obj "output"))
            (client_lines ci) responses)
        results);
  let total = n_clients * rounds * List.length distinct_jobs in
  check "every pipelined request answered" total
    (counter "serve.responses" - resp0)

let test_concurrent_clients_unix () = stress_over `Unix ()
let test_concurrent_clients_tcp () = stress_over `Tcp ()

(* Cold-cache coalescing under concurrency: splitting the duplicate-heavy
   trace across concurrent socket clients must cost exactly the solves of
   the sequential in-process replay — a duplicate either joins the
   in-flight batch (single-flight) or hits the cache, never re-solves. *)
let test_concurrent_cold_solve_count () =
  let jobs =
    [
      {|{"job":"mos","j":2}|};
      {|{"job":"mos","j":3}|};
      {|{"job":"mos","j":4}|};
      {|{"job":"bw","solver":"kl","network":"butterfly","n":8,"seed":1}|};
      {|{"job":"bw","solver":"kl","network":"butterfly","n":8,"seed":2}|};
      {|{"job":"bw","solver":"spectral","network":"butterfly","n":8}|};
    ]
  in
  let copies = 5 in
  let full_trace = List.concat_map (fun _ -> jobs) (List.init copies Fun.id) in
  let miss_seq =
    with_fresh_cache @@ fun () ->
    let server = Server.create ~queue_bound:1000 () in
    let m0 = counter "cache.miss" in
    ignore (replay server full_trace);
    counter "cache.miss" - m0
  in
  let miss_conc =
    with_fresh_cache @@ fun () ->
    let server = Server.create ~queue_bound:1000 () in
    let m0 = counter "cache.miss" in
    with_server ~workers:4 ~server ~listen:`Unix (fun addr ->
        let failed = Atomic.make None in
        let run lines () =
          try
            List.iter
              (fun r ->
                checkb "cold concurrent response ok" true
                  (bool_field (parse_response r) "ok"))
              (client_session addr lines)
          with e -> Atomic.set failed (Some e)
        in
        (* two clients, each replaying the full trace minus what the
           other sends first — together the same multiset of requests *)
        let odd, even =
          List.partition (fun (i, _) -> i mod 2 = 0)
            (List.mapi (fun i l -> (i, l)) full_trace)
        in
        let threads =
          List.map
            (fun lines -> Thread.create (run (List.map snd lines)) ())
            [ odd; even ]
        in
        List.iter Thread.join threads;
        match Atomic.get failed with Some e -> raise e | None -> ());
    counter "cache.miss" - m0
  in
  check "concurrent cold replay solves exactly the sequential count"
    miss_seq miss_conc

(* A client that vanishes mid-solve costs counters, never the server: the
   write fails (serve.write_fail), and other clients are served on. *)
let test_disconnect_mid_batch () =
  with_fresh_cache @@ fun () ->
  let server = Server.create () in
  let fail0 = counter "serve.write_fail" in
  let drop0 = counter "serve.write_drop" in
  with_server ~workers:2 ~server ~listen:`Unix (fun addr ->
      (* a supervised exact search with a 200ms deadline: long enough
         that the close below always lands first, bounded so the test
         stays fast *)
      let fd = connect addr in
      send_all fd
        [ {|{"id":"gone","job":"bw","network":"butterfly","n":16,"deadline":"0.2"}|} ];
      Unix.close fd;
      (* a second client is served while (and after) the doomed solve *)
      let responses = client_session addr [ {|{"id":"alive","job":"mos","j":2}|} ] in
      let obj = parse_response (List.hd responses) in
      checkb "other client served" true (bool_field obj "ok");
      (* wait until the doomed batch's delivery actually failed *)
      let deadline = Unix.gettimeofday () +. 10. in
      while
        counter "serve.write_fail" - fail0 = 0
        && counter "serve.write_drop" - drop0 = 0
        && Unix.gettimeofday () < deadline
      do
        Thread.yield ()
      done);
  checkb "failed write was counted, not swallowed" true
    (counter "serve.write_fail" - fail0 > 0
    || counter "serve.write_drop" - drop0 > 0);
  (* the server survived to a clean drain; a fresh in-process request
     confirms the engine state is intact *)
  let after = Server.create () in
  checkb "engine fine after disconnect" true
    (bool_field (parse_response (List.hd (replay after [ {|{"job":"mos","j":2}|} ]))) "ok")

(* Oversized and garbage lines get structured errors on the wire — in
   request order — and the connection keeps working. *)
let test_oversized_and_garbage () =
  with_fresh_cache @@ fun () ->
  let server = Server.create () in
  let over0 = counter "serve.oversized" in
  with_server ~workers:2 ~server ~listen:`Unix (fun addr ->
      let big = String.make 300_000 'x' in
      let responses =
        client_session addr
          [ big; "this is not json"; {|{"id":"ok1","job":"mos","j":2}|} ]
      in
      check "three responses" 3 (List.length responses);
      let o1 = parse_response (List.nth responses 0) in
      checkb "oversized rejected" false (bool_field o1 "ok");
      Alcotest.(check string) "oversized id" "oversized" (str_field o1 "id");
      checkb "error names the bound" true
        (let e = str_field o1 "error" in
         let rec has i =
           i + 7 <= String.length e
           && (String.sub e i 7 = "exceeds" || has (i + 1))
         in
         has 0);
      checkb "garbage rejected" false
        (bool_field (parse_response (List.nth responses 1)) "ok");
      let o3 = parse_response (List.nth responses 2) in
      checkb "valid request after junk still served" true (bool_field o3 "ok");
      Alcotest.(check string) "its id" "ok1" (str_field o3 "id"));
  check "oversized tally" 1 (counter "serve.oversized" - over0)

(* Per-client admission: a flooding client is rejected at its own bound
   while another client keeps full service; rejections are immediate, so
   they are the flooder's LAST responses in it own order. *)
let test_per_client_overload () =
  with_fresh_cache @@ fun () ->
  let server = Server.create ~queue_bound:100 ~client_bound:2 () in
  let flooder = Server.client ~name:"flood" server in
  let other = Server.client ~name:"calm" server in
  let fr = ref [] and ok_other = ref [] in
  for j = 2 to 6 do
    Server.submit server ~client:flooder
      ~reply:(fun r -> fr := r :: !fr)
      (Printf.sprintf {|{"id":"f%d","job":"mos","j":%d}|} j j)
  done;
  Server.submit server ~client:other
    ~reply:(fun r -> ok_other := r :: !ok_other)
    {|{"id":"calm","job":"mos","j":7}|};
  check "three immediate per-client rejections" 3 (List.length !fr);
  List.iter
    (fun r ->
      let obj = parse_response r in
      checkb "flooder rejected" false (bool_field obj "ok");
      Alcotest.(check string) "verdict" "overloaded" (str_field obj "error"))
    !fr;
  ignore (Server.run_pending server);
  check "flooder's admitted two solved" 5 (List.length !fr);
  check "other client served in full" 1 (List.length !ok_other);
  checkb "other client ok" true
    (bool_field (parse_response (List.hd !ok_other)) "ok");
  let stats = Server.stats_json server in
  let rejected =
    match Json.member "rejected" stats with
    | Some r -> r
    | None -> Alcotest.fail "stats lacks rejected object"
  in
  check "client rejection tally" 3 (int_field rejected "client");
  check "no global rejections" 0 (int_field rejected "overload");
  (* released slots: the flooder may submit again after completion *)
  let again = ref [] in
  Server.submit server ~client:flooder
    ~reply:(fun r -> again := r :: !again)
    {|{"id":"f-again","job":"mos","j":2}|};
  ignore (Server.run_pending server);
  checkb "slots released after completion" true
    (bool_field (parse_response (List.hd !again)) "ok")

(* Chaos: with worker crashes and spurious deadline expiries injected,
   a dispatched replay still answers every request (ok or error), and
   the engine is clean afterwards. *)
let test_chaos_dispatch () =
  with_fresh_cache @@ fun () ->
  let lines =
    List.concat_map
      (fun j ->
        [
          Printf.sprintf {|{"job":"mos","j":%d}|} j;
          Printf.sprintf
            {|{"job":"bw","solver":"kl","network":"butterfly","n":8,"seed":%d}|}
            j;
        ])
      [ 2; 3; 4; 5; 6; 7 ]
  in
  let answered = ref 0 in
  Fault.scope ~rate:0.5 ~seed:1107 [ Fault.Worker; Fault.Deadline ]
    (fun () ->
      let server = Server.create () in
      let dispatch = Dispatch.create ~cap:4 server in
      List.iter
        (fun line ->
          Server.submit server ~reply:(fun _ -> incr answered) line;
          Dispatch.pump dispatch)
        lines;
      Dispatch.pump dispatch;
      Dispatch.wait_idle dispatch);
  check "every request answered under fault injection"
    (List.length lines) !answered;
  (* the pool and engine survive: a clean replay afterwards is all ok *)
  let server = Server.create () in
  List.iter
    (fun r -> checkb "clean replay ok" true (bool_field (parse_response r) "ok"))
    (replay server [ {|{"job":"mos","j":2}|}; {|{"job":"mos","j":3}|} ])

(* Latency reservoir: quantiles are ranks over the recorded window. *)
let test_latency_quantiles () =
  let l = Latency.create ~capacity:8 () in
  for i = 1 to 100 do
    Latency.record l ~ns:i
  done;
  check "lifetime count" 100 (Latency.count l);
  check "lifetime max" 100 (Latency.max_ns l);
  (* window holds 93..100; nearest rank of q=0.5 over 8 samples is index 4 *)
  check "p50 over window" 97 (Latency.p l ~q:0.5);
  check "p99 over window" 100 (Latency.p l ~q:0.99);
  check "empty reservoir" 0 (Latency.p (Latency.create ()) ~q:0.5)

let suite =
  [
    slow_case "replay: 120 requests coalesce, bytes match one-shot"
      test_replay_byte_identical;
    case "admission: queue bound rejects with overloaded" test_overload;
    case "deadline degrades exact search to certified interval"
      test_deadline_degrades;
    case "deadline is part of the coalescing key" test_deadline_in_fingerprint;
    case "drain rejects new work, serves stats, finishes queue" test_drain;
    case "parse errors are per-request, server survives" test_parse_errors;
    case "duplicate keys reject the request" test_duplicate_key_rejected;
    case "fabric jobs: byte-identity, n rejected, expansion"
      test_fabric_jobs;
    case "solver errors match the one-shot CLI" test_solver_errors;
    case "latency reservoir quantiles" test_latency_quantiles;
    slow_case "concurrent clients over unix socket: ordered, byte-identical"
      test_concurrent_clients_unix;
    slow_case "concurrent clients over tcp: ordered, byte-identical"
      test_concurrent_clients_tcp;
    slow_case "cold coalescing: concurrent solves = sequential solves"
      test_concurrent_cold_solve_count;
    case "client disconnect mid-batch: counted, server survives"
      test_disconnect_mid_batch;
    case "oversized and garbage lines: structured errors, bounded reads"
      test_oversized_and_garbage;
    case "per-client admission: flooder rejected, others served"
      test_per_client_overload;
    case "chaos: dispatched replay answers everything under injected faults"
      test_chaos_dispatch;
  ]
