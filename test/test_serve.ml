(* Tests for the batch query service (lib/serve): request parsing, the
   Job execution vocabulary, coalescing, admission control, per-request
   deadlines, drain semantics, and the headline guarantee — a served
   response's output field is byte-identical to the one-shot subcommand,
   warm or cold cache. *)

module Server = Bfly_serve.Server
module Job = Bfly_serve.Job
module Protocol = Bfly_serve.Protocol
module Latency = Bfly_serve.Latency
module Json = Bfly_obs.Json
module Metrics = Bfly_obs.Metrics
module Config = Bfly_cache.Config
module Store = Bfly_cache.Store
open Tu

let counter name = Metrics.counter_value (Metrics.counter name)

(* Isolate each case in its own empty cache directory (same discipline as
   test_cache.ml): serve results must not depend on what earlier suites
   happened to compute. *)
let fresh_id = ref 0

let with_fresh_cache f =
  incr fresh_id;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bfly-serve-test-%d-%d" (Unix.getpid ()) !fresh_id)
  in
  let was_enabled = Config.enabled () in
  let old_dir = Config.dir () in
  let restore () =
    Config.set_enabled true;
    Config.set_dir dir;
    ignore (Store.clear ());
    (try Unix.rmdir dir with Unix.Unix_error _ | Sys_error _ -> ());
    Config.set_enabled was_enabled;
    Config.set_dir old_dir;
    Store.reset_memory ()
  in
  Config.set_enabled true;
  Config.set_dir dir;
  Store.reset_memory ();
  match f () with
  | v ->
      restore ();
      v
  | exception e ->
      restore ();
      raise e

(* submit a line and capture every response addressed to it *)
let replay server lines =
  let responses = ref [] in
  List.iter
    (fun line ->
      Server.submit server ~reply:(fun r -> responses := r :: !responses) line)
    lines;
  ignore (Server.run_pending server);
  List.rev !responses

let parse_response line =
  match Json.of_string line with
  | Ok obj -> obj
  | Error e -> Alcotest.failf "unparseable response %s: %s" line e

let str_field obj k =
  match Option.bind (Json.member k obj) Json.to_string_opt with
  | Some s -> s
  | None -> Alcotest.failf "response lacks string field %S: %s" k (Json.to_string obj)

let int_field obj k =
  match Option.bind (Json.member k obj) Json.to_int_opt with
  | Some i -> i
  | None -> Alcotest.failf "response lacks int field %S: %s" k (Json.to_string obj)

let bool_field obj k =
  match Option.bind (Json.member k obj) Json.to_bool_opt with
  | Some b -> b
  | None -> Alcotest.failf "response lacks bool field %S: %s" k (Json.to_string obj)

(* ---- the replay trace: 12 distinct jobs, each requested 10 times ---- *)

let bw solver ?(n = 16) ?(seed = 1) ?(restarts = 4) () =
  ( Printf.sprintf
      {|{"job":"bw","solver":"%s","network":"butterfly","n":%d,"seed":%d,"restarts":%d}|}
      (Job.solver_name solver) n seed restarts,
    Job.Bw
      {
        Job.solver;
        net = Job.Butterfly;
        n;
        seed;
        restarts;
        max_nodes = None;
        resume = false;
      } )

let distinct_jobs =
  [
    bw Job.Kl ();
    bw Job.Kl ~seed:2 ();
    bw Job.Kl ~seed:3 ();
    bw Job.Fm ();
    bw Job.Sa ~n:8 ~restarts:2 ();
    bw Job.Spectral ();
    bw Job.Exact ~n:8 ();
    ( {|{"job":"mos","j":2}|}, Job.Mos { j = 2 } );
    ( {|{"job":"mos","j":3}|}, Job.Mos { j = 3 } );
    ( {|{"job":"ee","network":"butterfly","n":8,"k":4,"exact":true}|},
      Job.Expansion
        { kind = `Ee; net = Job.Butterfly; n = 8; k = 4; exact = true; seed = 1 }
    );
    ( {|{"job":"ne","network":"butterfly","n":8,"k":4,"exact":true}|},
      Job.Expansion
        { kind = `Ne; net = Job.Butterfly; n = 8; k = 4; exact = true; seed = 1 }
    );
    ( {|{"job":"expansion","network":"wrapped","n":8,"k":6,"exact":true}|},
      Job.Expansion
        { kind = `Both; net = Job.Wrapped; n = 8; k = 6; exact = true; seed = 1 }
    );
  ]

let copies = 10

(* the duplicates are interleaved, not adjacent: request i of round r is
   distinct from its neighbours, the way concurrent clients look *)
let trace_lines () =
  List.concat_map
    (fun _round -> List.map fst distinct_jobs)
    (List.init copies Fun.id)

(* ---- cases ---- *)

(* The acceptance trace: 120 requests (12 distinct jobs x 10 copies)
   through a server. Every response must be ok with the exact bytes the
   one-shot subcommand prints (Job.run IS the one-shot execution path —
   ci.sh's serve stage closes the loop through the real CLI), every batch
   must have width 10, and the whole trace must cost 12 solves. *)
let test_replay_byte_identical () =
  with_fresh_cache @@ fun () ->
  (* one-shot outputs first (cold cache); the served replay then runs
     warm, so this also proves warm/cold byte-identity *)
  let expected =
    List.map
      (fun (_, spec) ->
        match Job.run spec with
        | Ok out -> (Job.fingerprint spec, out)
        | Error e -> Alcotest.failf "one-shot job failed: %s" e)
      distinct_jobs
  in
  let server = Server.create () in
  let lines = trace_lines () in
  check "trace length" 120 (List.length lines);
  let responses = replay server lines in
  check "one response per request" 120 (List.length responses);
  (* batches run in first-arrival order and answer all their waiters
     together, so responses come grouped: 10 for job 0, then 10 for job 1,
     ... — response i belongs to distinct_jobs.(i / copies) *)
  List.iteri
    (fun i line ->
      let obj = parse_response line in
      checkb (Printf.sprintf "response %d ok" i) true (bool_field obj "ok");
      check (Printf.sprintf "response %d batch width" i) copies
        (int_field obj "batch");
      let _, spec = List.nth distinct_jobs (i / copies) in
      let want = List.assoc (Job.fingerprint spec) expected in
      Alcotest.(check string)
        (Printf.sprintf "response %d output" i)
        want (str_field obj "output"))
    responses;
  (* coalescing: 120 requests, 12 solves *)
  let stats = Server.stats_json server in
  check "requests" 120 (int_field stats "requests");
  check "responses" 120 (int_field stats "responses");
  check "batches" (List.length distinct_jobs) (int_field stats "batches");
  check "coalesced" (120 - List.length distinct_jobs)
    (int_field stats "coalesced");
  check "nothing left queued" 0 (int_field stats "queue_depth");
  (* latency accounting saw every request *)
  let latency =
    match Json.member "latency" stats with
    | Some l -> l
    | None -> Alcotest.fail "stats lacks latency object"
  in
  check "latency count" 120 (int_field latency "count");
  checkb "p99 >= p50" true
    (int_field latency "p99_ns" >= int_field latency "p50_ns");
  (* warm replay: same trace on a fresh server, same bytes, and the cache
     answers everything — no new misses anywhere in the process *)
  let server2 = Server.create () in
  let miss0 = counter "cache.miss" in
  let responses2 = replay server2 (trace_lines ()) in
  check "warm replay misses" 0 (counter "cache.miss" - miss0);
  List.iter2
    (fun a b ->
      Alcotest.(check string)
        "warm replay byte-identical"
        (str_field (parse_response a) "output")
        (str_field (parse_response b) "output"))
    responses responses2

(* A full queue answers with an explicit "overloaded" verdict instead of
   buffering without bound: 10 distinct jobs against queue_bound 2 means
   exactly 8 immediate rejections, and the 2 admitted jobs still solve. *)
let test_overload () =
  with_fresh_cache @@ fun () ->
  let server = Server.create ~queue_bound:2 () in
  let responses = ref [] in
  for j = 1 to 10 do
    Server.submit server
      ~reply:(fun r -> responses := r :: !responses)
      (Printf.sprintf {|{"id":"q%d","job":"mos","j":%d}|} j j)
  done;
  let immediate = List.rev !responses in
  check "rejections are immediate" 8 (List.length immediate);
  List.iter
    (fun line ->
      let obj = parse_response line in
      checkb "rejected" false (bool_field obj "ok");
      Alcotest.(check string) "verdict" "overloaded" (str_field obj "error"))
    immediate;
  ignore (Server.run_pending server);
  let all = List.rev !responses in
  check "every request answered" 10 (List.length all);
  let ok_count =
    List.length
      (List.filter (fun l -> bool_field (parse_response l) "ok") all)
  in
  check "admitted jobs solved" 2 ok_count;
  let stats = Server.stats_json server in
  let rejected =
    match Json.member "rejected" stats with
    | Some r -> r
    | None -> Alcotest.fail "stats lacks rejected object"
  in
  check "overload tally" 8 (int_field rejected "overload");
  (* the two admitted requests were the first two to arrive, solved in
     arrival order (rejections are replied immediately, so they lead) *)
  let admitted =
    List.filter_map
      (fun l ->
        let obj = parse_response l in
        if bool_field obj "ok" then Some (str_field obj "id") else None)
      all
  in
  Alcotest.(check (list string)) "fifo order kept" [ "q1"; "q2" ] admitted

(* A per-request deadline (or step budget) makes the exact solver degrade
   to a certified interval — the same shape `bfly_tool bw exact
   --max-nodes` prints — rather than fail or overrun. *)
let test_deadline_degrades () =
  with_fresh_cache @@ fun () ->
  let server = Server.create () in
  let shapes =
    [
      (* step budget: fires at the first supervision poll *)
      {|{"id":"steps","job":"bw","network":"butterfly","n":8,"max_nodes":1}|};
      (* 1 microsecond of wall clock: expired before the search starts *)
      {|{"id":"wall","job":"bw","network":"butterfly","n":8,"deadline":"0.000001"}|};
    ]
  in
  List.iter
    (fun line ->
      let responses = replay server [ line ] in
      check "one response" 1 (List.length responses);
      let obj = parse_response (List.hd responses) in
      checkb "degraded run still ok" true (bool_field obj "ok");
      let out = str_field obj "output" in
      checkb
        (Printf.sprintf "interval shape in %S" out)
        true
        (String.length out >= 11 && String.sub out 0 11 = "B_8: BW in "))
    shapes

(* The deadline is part of the coalescing key: the same spec with and
   without a deadline must NOT share a solve, because the deadline decides
   whether the result may degrade. *)
let test_deadline_in_fingerprint () =
  with_fresh_cache @@ fun () ->
  let server = Server.create () in
  let line = {|{"job":"bw","solver":"kl","network":"butterfly","n":16}|} in
  let with_deadline =
    {|{"job":"bw","solver":"kl","network":"butterfly","n":16,"deadline":"10s"}|}
  in
  let responses = replay server [ line; with_deadline; line ] in
  check "three responses" 3 (List.length responses);
  let stats = Server.stats_json server in
  check "two solves" 2 (int_field stats "batches");
  check "only the exact duplicate coalesced" 1 (int_field stats "coalesced")

(* After drain, job submissions are rejected with "draining" but stats
   introspection still answers — that's what makes graceful shutdown
   observable. *)
let test_drain () =
  with_fresh_cache @@ fun () ->
  let server = Server.create () in
  (* queue one job before the drain signal lands *)
  let queued = ref [] in
  Server.submit server
    ~reply:(fun r -> queued := r :: !queued)
    {|{"id":"early","job":"mos","j":2}|};
  Server.drain server;
  checkb "draining latched" true (Server.draining server);
  let late = replay server [ {|{"id":"late","job":"mos","j":3}|} ] in
  let obj = parse_response (List.hd late) in
  checkb "late job rejected" false (bool_field obj "ok");
  Alcotest.(check string) "verdict" "draining" (str_field obj "error");
  let stats_reply = replay server [ {|{"id":"s","job":"stats"}|} ] in
  let sobj = parse_response (List.hd stats_reply) in
  checkb "stats still served" true (bool_field sobj "ok");
  checkb "stats reports draining" true (bool_field sobj "draining");
  (* the queued job still ran to completion during replay's run_pending *)
  check "early job answered" 1 (List.length !queued);
  checkb "early job ok" true
    (bool_field (parse_response (List.hd !queued)) "ok")

(* Malformed input costs an error response, never the server; the
   response reuses the request's own id whenever the line parsed far
   enough to have one. *)
let test_parse_errors () =
  with_fresh_cache @@ fun () ->
  let server = Server.create () in
  let cases =
    [
      ("not json at all", None);
      ({|[1,2,3]|}, None);
      ({|{"id":"x1","job":"teleport"}|}, Some "x1");
      ({|{"id":"x2","job":"bw","network":"butterfly"}|}, Some "x2");
      ({|{"id":"x3","job":"bw","solver":"kl","network":"moebius","n":8}|},
       Some "x3");
      ({|{"id":"x4","job":"mos","j":2,"deadline":"soonish"}|}, Some "x4");
      ({|{"id":"x5","job":"mos"}|}, Some "x5");
    ]
  in
  List.iter
    (fun (line, want_id) ->
      let responses = replay server [ line ] in
      check "answered" 1 (List.length responses);
      let obj = parse_response (List.hd responses) in
      checkb (Printf.sprintf "rejected %S" line) false (bool_field obj "ok");
      match want_id with
      | Some id -> Alcotest.(check string) "echoes request id" id (str_field obj "id")
      | None ->
          (* assigned id: non-empty, server-generated *)
          checkb "assigned an id" true (String.length (str_field obj "id") > 0))
    cases;
  let stats = Server.stats_json server in
  check "parse_errors tally" (List.length cases) (int_field stats "parse_errors");
  (* the server still works afterwards *)
  let after = replay server [ {|{"job":"mos","j":2}|} ] in
  checkb "server survived" true (bool_field (parse_response (List.hd after)) "ok")

(* Solver-level failures (bad arguments reaching Job.run) come back as
   per-request errors with the same message the one-shot CLI prints. *)
let test_solver_errors () =
  with_fresh_cache @@ fun () ->
  let server = Server.create () in
  let cases =
    [
      ({|{"id":"e1","job":"bw","solver":"kl","network":"butterfly","n":7}|},
       "n must be a power of two");
      ({|{"id":"e2","job":"mos","j":0}|}, "j must be >= 1");
      ({|{"id":"e3","job":"ee","network":"butterfly","n":8,"k":999}|},
       "k out of range");
    ]
  in
  List.iter
    (fun (line, want) ->
      let responses = replay server [ line ] in
      let obj = parse_response (List.hd responses) in
      checkb "not ok" false (bool_field obj "ok");
      Alcotest.(check string) "CLI error text" want (str_field obj "error"))
    cases

(* Latency reservoir: quantiles are ranks over the recorded window. *)
let test_latency_quantiles () =
  let l = Latency.create ~capacity:8 () in
  for i = 1 to 100 do
    Latency.record l ~ns:i
  done;
  check "lifetime count" 100 (Latency.count l);
  check "lifetime max" 100 (Latency.max_ns l);
  (* window holds 93..100; nearest rank of q=0.5 over 8 samples is index 4 *)
  check "p50 over window" 97 (Latency.p l ~q:0.5);
  check "p99 over window" 100 (Latency.p l ~q:0.99);
  check "empty reservoir" 0 (Latency.p (Latency.create ()) ~q:0.5)

let suite =
  [
    slow_case "replay: 120 requests coalesce, bytes match one-shot"
      test_replay_byte_identical;
    case "admission: queue bound rejects with overloaded" test_overload;
    case "deadline degrades exact search to certified interval"
      test_deadline_degrades;
    case "deadline is part of the coalescing key" test_deadline_in_fingerprint;
    case "drain rejects new work, serves stats, finishes queue" test_drain;
    case "parse errors are per-request, server survives" test_parse_errors;
    case "solver errors match the one-shot CLI" test_solver_errors;
    case "latency reservoir quantiles" test_latency_quantiles;
  ]
