module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module Traverse = Bfly_graph.Traverse
open Tu

let path4 () = G.of_edge_list ~n:4 [ (0, 1); (1, 2); (2, 3) ]
let square () = G.of_edge_list ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ]

let test_basic_counts () =
  let g = path4 () in
  check "nodes" 4 (G.n_nodes g);
  check "edges" 3 (G.n_edges g);
  check "deg endpoint" 1 (G.degree g 0);
  check "deg middle" 2 (G.degree g 1);
  check "max degree" 2 (G.max_degree g)

let test_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.of_edges: self-loop")
    (fun () -> ignore (G.of_edge_list ~n:3 [ (1, 1) ]))

let test_rejects_out_of_range () =
  Alcotest.check_raises "range"
    (Invalid_argument "Graph.of_edges: endpoint out of range") (fun () ->
      ignore (G.of_edge_list ~n:3 [ (0, 3) ]))

let test_multigraph () =
  let g = G.of_edge_list ~n:2 [ (0, 1); (1, 0); (0, 1) ] in
  check "parallel edges kept" 3 (G.n_edges g);
  check "degree with multiplicity" 3 (G.degree g 0);
  checkb "not simple" false (G.is_simple g);
  checkb "simple graph is simple" true (G.is_simple (path4 ()))

let test_neighbors () =
  let g = square () in
  Alcotest.(check (list int))
    "sorted neighbor list" [ 1; 3 ]
    (List.sort compare (Array.to_list (G.neighbors g 0)));
  checkb "mem_edge yes" true (G.mem_edge g 3 0);
  checkb "mem_edge no" false (G.mem_edge g 0 2)

let test_iter_edges_normalized () =
  let g = G.of_edge_list ~n:3 [ (2, 0); (1, 0) ] in
  let collected = ref [] in
  G.iter_edges g (fun u v -> collected := (u, v) :: !collected);
  Alcotest.(check (list (pair int int)))
    "normalized sorted" [ (0, 2); (0, 1) ] !collected

let test_induced () =
  let g = square () in
  let sub, ids = G.induced g (Bitset.of_list 4 [ 0; 1; 2 ]) in
  check "induced nodes" 3 (G.n_nodes sub);
  check "induced edges" 2 (G.n_edges sub);
  Alcotest.(check (array int)) "id map" [| 0; 1; 2 |] ids

let test_relabel_preserves () =
  let g = square () in
  let p = Bfly_graph.Perm.of_array [| 1; 2; 3; 0 |] in
  let h = G.relabel g p in
  checkb "cycle relabel of cycle is equal" true (G.equal g h)

let test_union_disjoint () =
  let g = G.union_disjoint (path4 ()) (square ()) in
  check "nodes add" 8 (G.n_nodes g);
  check "edges add" 7 (G.n_edges g);
  checkb "shifted edge" true (G.mem_edge g 4 5);
  checkb "no cross edge" false (G.mem_edge g 3 4)

let test_degree_histogram () =
  let g = path4 () in
  Alcotest.(check (array int)) "histogram" [| 0; 2; 2 |] (G.degree_histogram g)

(* ---- traversal ---- *)

let test_bfs () =
  let g = path4 () in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3 |] (Traverse.bfs_distances g 0)

let test_bfs_unreachable () =
  let g = G.of_edge_list ~n:4 [ (0, 1) ] in
  Alcotest.(check (array int))
    "unreachable = -1" [| 0; 1; -1; -1 |] (Traverse.bfs_distances g 0)

let test_bfs_multi () =
  let g = path4 () in
  Alcotest.(check (array int))
    "multi-source" [| 0; 1; 1; 0 |] (Traverse.bfs_multi g [ 0; 3 ])

let test_shortest_path () =
  let g = square () in
  Alcotest.(check (option (list int)))
    "path" (Some [ 0; 3 ]) (Traverse.shortest_path g 0 3);
  let disconnected = G.of_edge_list ~n:4 [ (0, 1) ] in
  Alcotest.(check (option (list int)))
    "no path" None (Traverse.shortest_path disconnected 0 3)

let test_components_connectivity () =
  let g = G.of_edge_list ~n:5 [ (0, 1); (2, 3) ] in
  check "component count" 3 (Traverse.component_count g);
  checkb "disconnected" false (Traverse.is_connected g);
  checkb "path connected" true (Traverse.is_connected (path4 ()))

let test_diameter () =
  check "path diameter" 3 (Traverse.diameter (path4 ()));
  check "cycle diameter" 2 (Traverse.diameter (square ()));
  Alcotest.check_raises "disconnected diameter"
    (Invalid_argument "Traverse.diameter: disconnected") (fun () ->
      ignore (Traverse.diameter (G.of_edge_list ~n:3 [ (0, 1) ])))

let test_boundary_and_neighbors () =
  let g = square () in
  let s = Bitset.of_list 4 [ 0; 1 ] in
  check "boundary of half-square" 2 (Traverse.boundary_edges g s);
  Alcotest.(check (list int))
    "N(S)" [ 2; 3 ]
    (Bitset.elements (Traverse.neighbors_of_set g s))

let prop_degree_sum =
  qcheck ~count:100 "sum of degrees = 2m"
    (seeded QCheck2.Gen.(pair (int_range 2 30) (int_range 0 60)))
    (fun ((n, extra), seed) ->
      let g = random_graph ~rng:(rng seed) n ~extra_edges:extra in
      let sum = ref 0 in
      for v = 0 to n - 1 do
        sum := !sum + G.degree g v
      done;
      !sum = 2 * G.n_edges g)

let prop_boundary_symmetric =
  qcheck ~count:100 "C(S) = C(complement S)"
    (seeded QCheck2.Gen.(pair (int_range 2 30) (list (int_bound 29))))
    (fun ((n, l), seed) ->
      let g = random_graph ~rng:(rng seed) n ~extra_edges:n in
      let s = Bitset.of_list n (List.filter (fun x -> x < n) l) in
      Traverse.boundary_edges g s
      = Traverse.boundary_edges g (Bitset.complement s))

let prop_bfs_triangle =
  qcheck ~count:50 "bfs distances satisfy edge-triangle inequality"
    (seeded QCheck2.Gen.(int_range 2 40))
    (fun (n, seed) ->
      let g = random_graph ~rng:(rng seed) n ~extra_edges:n in
      let d = Traverse.bfs_distances g 0 in
      let ok = ref true in
      G.iter_edges g (fun u v -> if abs (d.(u) - d.(v)) > 1 then ok := false);
      !ok)

let suite =
  [
    case "counts" test_basic_counts;
    case "rejects self-loops" test_rejects_self_loop;
    case "rejects out-of-range" test_rejects_out_of_range;
    case "multigraph multiplicity" test_multigraph;
    case "neighbors and mem_edge" test_neighbors;
    case "iter_edges normalized" test_iter_edges_normalized;
    case "induced subgraph" test_induced;
    case "relabel preserves structure" test_relabel_preserves;
    case "disjoint union" test_union_disjoint;
    case "degree histogram" test_degree_histogram;
    case "bfs distances" test_bfs;
    case "bfs unreachable" test_bfs_unreachable;
    case "bfs multi-source" test_bfs_multi;
    case "shortest path" test_shortest_path;
    case "components" test_components_connectivity;
    case "diameter" test_diameter;
    case "boundary edges and N(S)" test_boundary_and_neighbors;
    prop_degree_sum;
    prop_boundary_symmetric;
    prop_bfs_triangle;
  ]
