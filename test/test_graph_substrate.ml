(* Union-find, permutations, subsets, parallel combinators. *)

module UF = Bfly_graph.Union_find
module Perm = Bfly_graph.Perm
module Subset = Bfly_graph.Subset
module Parallel = Bfly_graph.Parallel
open Tu

(* ---- union-find ---- *)

let test_uf_basics () =
  let t = UF.create 6 in
  check "initial count" 6 (UF.count t);
  checkb "union joins" true (UF.union t 0 1);
  checkb "redundant union" false (UF.union t 1 0);
  ignore (UF.union t 2 3);
  check "count after unions" 4 (UF.count t);
  checkb "same class" true (UF.same t 0 1);
  checkb "distinct class" false (UF.same t 0 2)

let test_uf_classes () =
  let t = UF.create 5 in
  ignore (UF.union t 0 4);
  ignore (UF.union t 1 3);
  Alcotest.(check (list (list int)))
    "classes by smallest member"
    [ [ 0; 4 ]; [ 1; 3 ]; [ 2 ] ]
    (UF.classes t)

let test_uf_labels () =
  let t = UF.create 4 in
  ignore (UF.union t 2 3);
  Alcotest.(check (array int)) "dense labels" [| 0; 1; 2; 2 |] (UF.labels t)

(* ---- permutations ---- *)

let test_perm_validation () =
  Alcotest.check_raises "not a bijection"
    (Invalid_argument "Perm.of_array: not a bijection") (fun () ->
      ignore (Perm.of_array [| 0; 0; 2 |]))

let test_perm_inverse_compose () =
  let p = Perm.of_array [| 2; 0; 1; 3 |] in
  let q = Perm.inverse p in
  checkb "p∘p⁻¹ = id" true (Perm.is_identity (Perm.compose p q));
  checkb "p⁻¹∘p = id" true (Perm.is_identity (Perm.compose q p));
  check "apply" 2 (Perm.apply p 0)

let test_perm_cycles () =
  let p = Perm.of_array [| 1; 0; 2; 4; 3 |] in
  Alcotest.(check (list (list int)))
    "cycle decomposition" [ [ 0; 1 ]; [ 2 ]; [ 3; 4 ] ] (Perm.cycles p)

let prop_perm_random_bijective =
  qcheck ~count:100 "random perms are bijections"
    (seeded QCheck2.Gen.(int_range 1 50))
    (fun (n, seed) ->
      let p = Perm.random ~rng:(rng seed) n in
      let seen = Array.make n false in
      Array.iter (fun x -> seen.(x) <- true) (Perm.to_array p);
      Array.for_all Fun.id seen)

(* ---- subsets ---- *)

let test_binomial () =
  check "C(5,2)" 10 (Subset.binomial 5 2);
  check "C(10,0)" 1 (Subset.binomial 10 0);
  check "C(10,10)" 1 (Subset.binomial 10 10);
  check "C(4,7)" 0 (Subset.binomial 4 7);
  check "C(24,12)" 2704156 (Subset.binomial 24 12)

let test_iter_count () =
  let count = ref 0 in
  Subset.iter ~n:7 ~k:3 (fun a ->
      incr count;
      assert (Array.length a = 3);
      assert (a.(0) < a.(1) && a.(1) < a.(2)));
  check "iter visits C(7,3)" 35 !count

let test_unrank_rank_roundtrip () =
  for r = 0 to Subset.binomial 8 3 - 1 do
    let s = Subset.unrank ~n:8 ~k:3 r in
    check "rank(unrank r) = r" r (Subset.rank ~n:8 s)
  done

let test_iter_range_partition () =
  (* splitting the rank space must enumerate every subset exactly once *)
  let total = Subset.binomial 9 4 in
  let seen = Hashtbl.create total in
  List.iter
    (fun (lo, hi) ->
      Subset.iter_range ~n:9 ~k:4 ~lo ~hi (fun a ->
          let key = Array.to_list a in
          assert (not (Hashtbl.mem seen key));
          Hashtbl.replace seen key ()))
    [ (0, 17); (17, 60); (60, total) ];
  check "all subsets covered" total (Hashtbl.length seen)

let test_iter_masks () =
  let c = ref 0 in
  Subset.iter_masks ~n:5 (fun _ -> incr c);
  check "2^5 masks" 32 !c

(* ---- parallel ---- *)

let test_map_range () =
  let a = Parallel.map_range ~lo:3 ~hi:103 (fun i -> i * i) in
  check "length" 100 (Array.length a);
  check "first" 9 a.(0);
  check "last" (102 * 102) a.(99)

let test_map_range_empty () =
  check "empty range" 0 (Array.length (Parallel.map_range ~lo:5 ~hi:5 Fun.id))

let test_reduce_range () =
  let sum =
    Parallel.reduce_range ~lo:1 ~hi:101 ~init:0 ~f:Fun.id ~combine:( + )
  in
  check "sum 1..100" 5050 sum

let test_min_over () =
  Alcotest.(check (option int))
    "min of (i-57)^2" (Some 0)
    (Parallel.min_over ~lo:0 ~hi:100 (fun i -> (i - 57) * (i - 57)));
  Alcotest.(check (option int))
    "empty" None
    (Parallel.min_over ~lo:0 ~hi:0 Fun.id)

let test_run_chunks_order () =
  let chunks = Parallel.run_chunks ~lo:0 ~hi:1000 (fun ~lo ~hi -> (lo, hi)) in
  let rec contiguous last = function
    | [] -> last = 1000
    | (lo, hi) :: rest -> lo = last && hi > lo && contiguous hi rest
  in
  checkb "chunks contiguous in order" true (contiguous 0 chunks)

let suite =
  [
    case "union-find basics" test_uf_basics;
    case "union-find classes" test_uf_classes;
    case "union-find labels" test_uf_labels;
    case "perm validation" test_perm_validation;
    case "perm inverse/compose" test_perm_inverse_compose;
    case "perm cycles" test_perm_cycles;
    prop_perm_random_bijective;
    case "binomial" test_binomial;
    case "subset iteration count" test_iter_count;
    case "subset rank/unrank roundtrip" test_unrank_rank_roundtrip;
    case "subset range partition" test_iter_range_partition;
    case "mask iteration" test_iter_masks;
    case "parallel map_range" test_map_range;
    case "parallel map_range empty" test_map_range_empty;
    case "parallel reduce_range" test_reduce_range;
    case "parallel min_over" test_min_over;
    case "parallel chunk order" test_run_chunks_order;
  ]
