module G = Bfly_graph.Graph
module Traverse = Bfly_graph.Traverse
module Gen = Bfly_graph.Generators
open Tu

let test_all_pairs () =
  let g = Gen.cycle 6 in
  let d = Traverse.all_pairs_distances g in
  check "d(0,3)" 3 d.(0).(3);
  check "d(0,5)" 1 d.(0).(5);
  check "symmetric" d.(2).(4) d.(4).(2);
  check "diagonal" 0 d.(3).(3)

let test_average_distance () =
  let g = Gen.path 3 in
  (* pairs: (0,1)=1 (0,2)=2 (1,2)=1 each direction: mean = 4/3 *)
  Alcotest.(check (float 1e-9)) "path mean" (4. /. 3.) (Traverse.average_distance g)

let test_radius () =
  let g = Gen.path 5 in
  check "path radius" 2 (Traverse.radius g);
  check "cycle radius" 3 (Traverse.radius (Gen.cycle 6));
  (* butterfly: radius <= diameter, both finite *)
  let b = Bfly_networks.Butterfly.of_inputs 8 in
  checkb "radius <= diameter" true
    (Traverse.radius (Bfly_networks.Butterfly.graph b)
    <= Traverse.diameter (Bfly_networks.Butterfly.graph b))

let prop_radius_diameter =
  qcheck ~count:50 "radius <= diameter <= 2 radius"
    (seeded QCheck2.Gen.(int_range 3 20))
    (fun (n, seed) ->
      let g = random_graph ~rng:(rng seed) n ~extra_edges:n in
      let r = Traverse.radius g and d = Traverse.diameter g in
      r <= d && d <= 2 * r)

(* instrumented exact solver *)

let test_instrumented_matches () =
  List.iter
    (fun g ->
      let v, side, visited = Bfly_cuts.Exact.bisection_width_instrumented g in
      let v', _ = Bfly_cuts.Exact.bisection_width g in
      check "same optimum" v' v;
      check "witness capacity" v (Traverse.boundary_edges g side);
      checkb "visited positive" true (visited > 0);
      (* disabling the bound never changes the optimum, only the work *)
      let v2, _, visited2 =
        Bfly_cuts.Exact.bisection_width_instrumented ~degree_bound:false g
      in
      check "ablated optimum equal" v v2;
      checkb "bound prunes" true (visited <= visited2))
    [
      Bfly_networks.Butterfly.graph (Bfly_networks.Butterfly.of_inputs 4);
      Gen.grid ~rows:3 ~cols:4;
      Gen.cycle 10;
    ]

let suite =
  [
    case "all-pairs distances" test_all_pairs;
    case "average distance" test_average_distance;
    case "radius" test_radius;
    prop_radius_diameter;
    case "instrumented solver consistent" test_instrumented_matches;
  ]
