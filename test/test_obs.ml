(* Bfly_obs: counter atomicity under domains, gauge/timer behavior, and
   the shape of the hand-rolled JSON. *)

module Json = Bfly_obs.Json
module Metrics = Bfly_obs.Metrics
module Span = Bfly_obs.Span
open Tu

(* ---- counters are atomic across domains ---- *)

let test_counter_atomic () =
  let c = Metrics.counter "test.obs.atomic" in
  let before = Metrics.counter_value c in
  let per_domain = 25_000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.incr c
            done))
  in
  List.iter Domain.join domains;
  check "no lost increments" (before + (4 * per_domain))
    (Metrics.counter_value c)

let test_counter_idempotent_registration () =
  let a = Metrics.counter "test.obs.same" in
  let b = Metrics.counter "test.obs.same" in
  Metrics.add a 3;
  Metrics.incr b;
  check "one cell behind one name" 4 (Metrics.counter_value a)

let test_gauge () =
  let g = Metrics.gauge "test.obs.gauge" in
  Metrics.set g 2.5;
  Alcotest.(check (float 0.0)) "last write wins" 2.5 (Metrics.gauge_value g);
  Metrics.set g 1.0;
  Alcotest.(check (float 0.0)) "overwritten" 1.0 (Metrics.gauge_value g)

let test_timer_and_span () =
  let before = (Metrics.timer_stat (Metrics.timer "test.obs.span")).count in
  let result = Span.time ~name:"test.obs.span" (fun () -> 1 + 1) in
  check "span returns the body's value" 2 result;
  (try Span.time ~name:"test.obs.span" (fun () -> failwith "x")
   with Failure _ -> ());
  let st = Metrics.timer_stat (Metrics.timer "test.obs.span") in
  check "both spans recorded (even the raising one)" (before + 2) st.count;
  checkb "total covers max" true (st.total_ns >= st.max_ns);
  checkb "durations non-negative" true (st.total_ns >= 0)

let test_reset () =
  let c = Metrics.counter "test.obs.reset" in
  Metrics.add c 7;
  ignore (Span.time ~name:"test.obs.reset_t" (fun () -> ()));
  Metrics.reset ();
  check "counter zeroed" 0 (Metrics.counter_value c);
  check "timer zeroed" 0
    (Metrics.timer_stat (Metrics.timer "test.obs.reset_t")).count

(* ---- JSON ---- *)

let test_json_serialization () =
  Alcotest.(check string)
    "escaping" "{\"a\":\"x\\\"y\\n\\\\z\"}"
    (Json.to_string (Json.Obj [ ("a", Json.Str "x\"y\n\\z") ]));
  Alcotest.(check string)
    "scalars" "[null,true,42,1.5,\"s\"]"
    (Json.to_string
       (Json.List [ Json.Null; Json.Bool true; Json.Int 42; Json.Float 1.5; Json.Str "s" ]));
  Alcotest.(check string)
    "non-finite floats become null" "[null,null]"
    (Json.to_string (Json.List [ Json.Float Float.nan; Json.Float Float.infinity ]));
  Alcotest.(check string)
    "control characters" "\"\\u0001\""
    (Json.to_string (Json.Str "\001"))

let test_metrics_json_shape () =
  Metrics.add (Metrics.counter "test.obs.json_c") 11;
  Metrics.set (Metrics.gauge "test.obs.json_g") 3.25;
  ignore (Span.time ~name:"test.obs.json_t" (fun () -> ()));
  let s = Metrics.to_json_string () in
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  checkb "counters section" true (contains "\"counters\":{");
  checkb "gauges section" true (contains "\"gauges\":{");
  checkb "timers section" true (contains "\"timers\":{");
  checkb "counter value" true (contains "\"test.obs.json_c\":11");
  checkb "gauge value" true (contains "\"test.obs.json_g\":3.25");
  checkb "timer fields" true (contains "\"test.obs.json_t\":{\"count\":1,");
  (* the snapshot, and hence the JSON, is sorted by name *)
  let snap = Metrics.snapshot () in
  let sorted l = List.sort compare l = l in
  checkb "counters sorted" true (sorted (List.map fst snap.Metrics.counters));
  checkb "timers sorted" true (sorted (List.map fst snap.Metrics.timers))

let suite =
  [
    case "counter atomic under domains" test_counter_atomic;
    case "registration idempotent" test_counter_idempotent_registration;
    case "gauge" test_gauge;
    case "timer spans" test_timer_and_span;
    case "reset" test_reset;
    case "json serialization" test_json_serialization;
    case "metrics json shape" test_metrics_json_shape;
  ]
