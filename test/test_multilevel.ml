(* Multilevel partitioner: the invariants bisect's V-cycle relies on
   (vertex-weight conservation, cut preservation under projection,
   per-level balance), the gain-bucket structure against a naive model,
   and the solver-level contract (upper bound on exact, determinism,
   cache hits preserving the rng stream, valid degraded results). *)

module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module Traverse = Bfly_graph.Traverse
module Butterfly = Bfly_networks.Butterfly
module Multilevel = Bfly_cuts.Multilevel
module Gain = Bfly_cuts.Gain
module Cut = Bfly_cuts.Cut
module Cancel = Bfly_resil.Cancel
open Tu

let cap g side = Traverse.boundary_edges g side

(* ---- gain buckets vs a naive model ---- *)

(* The model is just "which nodes are enqueued at which gain"; peek must
   return a maximum-gain node, and cardinal/gain/mem must agree. *)
let test_gain_vs_model =
  qcheck ~count:200 "gain buckets agree with a naive model"
    (seeded QCheck2.Gen.(pair (int_range 2 24) (int_range 20 120)))
    (fun ((n, ops), seed) ->
      let r = rng seed in
      let max_gain = 8 in
      let t = Gain.create ~max_gain n in
      let model = Array.make n None in
      let model_max () =
        Array.fold_left
          (fun acc g -> match g with Some g -> max acc g | None -> acc)
          min_int model
      in
      let model_cardinal () =
        Array.fold_left
          (fun acc g -> match g with Some _ -> acc + 1 | None -> acc)
          0 model
      in
      for _ = 1 to ops do
        let v = Random.State.int r n in
        let g = Random.State.int r (2 * max_gain + 1) - max_gain in
        (match Random.State.int r 4 with
        | 0 -> if model.(v) = None then (Gain.insert t v g; model.(v) <- Some g)
        | 1 -> if model.(v) <> None then (Gain.remove t v; model.(v) <- None)
        | 2 -> if model.(v) <> None then (Gain.update t v g; model.(v) <- Some g)
        | _ -> (
            match Gain.pop t with
            | None -> assert (model_cardinal () = 0)
            | Some (v, g) ->
                assert (model.(v) = Some g);
                assert (g = model_max ());
                model.(v) <- None));
        assert (Gain.cardinal t = model_cardinal ());
        Array.iteri
          (fun v m ->
            assert (Gain.mem t v = (m <> None));
            match m with Some g -> assert (Gain.gain t v = g) | None -> ())
          model;
        match Gain.peek t with
        | None -> assert (model_cardinal () = 0)
        | Some (v, g) -> assert (model.(v) = Some g && g = model_max ())
      done;
      true)

let test_gain_rejects_broken_invariants () =
  let t = Gain.create ~max_gain:3 4 in
  Gain.insert t 1 2;
  checkb "double insert raises" true
    (match Gain.insert t 1 0 with
    | () -> false
    | exception Invalid_argument _ -> true);
  checkb "out-of-range gain raises" true
    (match Gain.insert t 2 4 with
    | () -> false
    | exception Invalid_argument _ -> true);
  checkb "remove of absent node raises" true
    (match Gain.remove t 3 with
    | () -> false
    | exception Invalid_argument _ -> true)

(* ---- coarsening invariants ---- *)

let coarse_side_of ~map ~n_coarse side n_fine =
  let cs = Bitset.create n_coarse in
  for v = 0 to n_fine - 1 do
    if Bitset.mem side v then Bitset.add cs map.(v)
  done;
  cs

let test_coarsen_invariants =
  qcheck ~count:150 "coarsening conserves weight and preserves cuts"
    (seeded QCheck2.Gen.(pair (int_range 8 40) (int_range 0 60)))
    (fun ((n, extra_edges), seed) ->
      let r = rng seed in
      let g = random_graph ~rng:r n ~extra_edges in
      let vwgt = Multilevel.Coarsen.unit_weights g in
      match
        Multilevel.Coarsen.step ~matching_ratio:0.95 ~rng:r ~vwgt g
      with
      | None -> true (* matching stalled; nothing to check *)
      | Some { Multilevel.Coarsen.graph = cg; vwgt = cvwgt; map } ->
          let cn = G.n_nodes cg in
          (* vertex-weight conservation *)
          assert (Array.fold_left ( + ) 0 cvwgt = n);
          Array.iter (fun c -> assert (0 <= c && c < cn)) map;
          (* any coarse side's weighted cut equals its projection's cut *)
          let cside = random_subset ~rng:r cn (cn / 2) in
          let fside =
            Multilevel.Coarsen.project ~map ~n_fine:n cside
          in
          assert (cap cg cside = cap g fside);
          (* and projected weights match fine side sizes *)
          let w_coarse =
            Array.fold_left ( + ) 0
              (Array.mapi
                 (fun v w -> if Bitset.mem cside v then w else 0)
                 cvwgt)
          in
          assert (w_coarse = Bitset.cardinal fside);
          true)

let test_guided_coarsening_preserves_incumbent =
  qcheck ~count:100 "guided coarsening keeps the incumbent cut exactly"
    (seeded QCheck2.Gen.(pair (int_range 8 32) (int_range 0 40)))
    (fun ((n, extra_edges), seed) ->
      let r = rng seed in
      let g = random_graph ~rng:r n ~extra_edges in
      let vwgt = Multilevel.Coarsen.unit_weights g in
      let side = random_subset ~rng:r n (n / 2) in
      match
        Multilevel.Coarsen.step ~side ~matching_ratio:0.95 ~rng:r ~vwgt g
      with
      | None -> true
      | Some { Multilevel.Coarsen.graph = cg; vwgt = _; map } ->
          (* same-side matching: the incumbent survives contraction with
             its capacity unchanged, and projecting back is the identity *)
          let cside = coarse_side_of ~map ~n_coarse:(G.n_nodes cg) side n in
          assert (cap cg cside = cap g side);
          let back = Multilevel.Coarsen.project ~map ~n_fine:n cside in
          assert (Bitset.cardinal back = Bitset.cardinal side);
          Bitset.iter back (fun v -> assert (Bitset.mem side v));
          true)

(* ---- refinement: balance at every level ---- *)

let test_balance_at_every_level () =
  let r = rng 31 in
  let b = Butterfly.of_inputs 32 in
  let g = Butterfly.graph b in
  (* build a full hierarchy by hand, refining at each level on the way
     down, checking the tolerance invariant everywhere *)
  let rec build levels g vwgt =
    if G.n_nodes g <= 16 then (levels, g, vwgt)
    else
      match Multilevel.Coarsen.step ~matching_ratio:0.9 ~rng:r ~vwgt g with
      | None -> (levels, g, vwgt)
      | Some { Multilevel.Coarsen.graph = cg; vwgt = cvwgt; map } ->
          build ((g, vwgt, map) :: levels) cg cvwgt
  in
  let levels, cg, cvwgt = build [] g (Multilevel.Coarsen.unit_weights g) in
  checkb "hierarchy has at least two levels" true (List.length levels >= 2);
  let start = Multilevel.Refine.initial ~rng:r ~vwgt:cvwgt cg in
  let tol = Multilevel.Refine.tolerance ~vwgt:cvwgt in
  let side = Multilevel.Refine.refine ~vwgt:cvwgt ~tolerance:tol cg start in
  checkb "coarsest level is balanced" true
    (Multilevel.Refine.imbalance ~vwgt:cvwgt side <= tol);
  let finest =
    List.fold_left
      (fun cside (fg, fvwgt, map) ->
        let fside =
          Multilevel.Coarsen.project ~map ~n_fine:(G.n_nodes fg) cside
        in
        let tol = Multilevel.Refine.tolerance ~vwgt:fvwgt in
        let fside =
          Multilevel.Refine.refine ~vwgt:fvwgt ~tolerance:tol fg fside
        in
        checkb "level is balanced to its tolerance" true
          (Multilevel.Refine.imbalance ~vwgt:fvwgt fside <= tol);
        fside)
      side levels
  in
  (* unit weights at the finest level: a true bisection *)
  checkb "finest level is a bisection" true
    (Cut.is_bisection (Cut.make g finest))

let test_refine_never_worsens_a_balanced_cut =
  qcheck ~count:100 "refinement never worsens a balanced start"
    (seeded QCheck2.Gen.(pair (int_range 6 24) (int_range 0 40)))
    (fun ((half, extra_edges), seed) ->
      let r = rng seed in
      let n = 2 * half in
      let g = random_graph ~rng:r n ~extra_edges in
      let vwgt = Multilevel.Coarsen.unit_weights g in
      let side = random_subset ~rng:r n half in
      let before = cap g side in
      let side' = Multilevel.Refine.refine ~vwgt ~tolerance:1 g side in
      assert (Multilevel.Refine.imbalance ~vwgt side' <= 1);
      assert (cap g side' <= before);
      true)

(* ---- the solver-level contract ---- *)

let test_bisect_upper_bounds_exact =
  qcheck ~count:60 "bisect upper-bounds the exact optimum with a valid witness"
    (seeded QCheck2.Gen.(pair (int_range 4 10) (int_range 0 16)))
    (fun ((half, extra_edges), seed) ->
      let r = rng seed in
      let n = 2 * half in
      let g = random_graph ~rng:r n ~extra_edges in
      let c, side = Multilevel.bisect ~rng:r ~restarts:2 g in
      let cut = Cut.make g side in
      assert (Cut.is_bisection cut);
      assert (Cut.capacity cut = c);
      assert (c >= brute_bw g);
      true)

let test_bisect_deterministic () =
  let g = Butterfly.graph (Butterfly.of_inputs 64) in
  let run () =
    let r = rng 7 in
    let c, side = Multilevel.bisect ~rng:r g in
    (c, Bitset.cardinal side, Random.State.int r 1_000_000)
  in
  let c1, card1, draw1 = run () in
  let c2, card2, draw2 = run () in
  check "same capacity" c1 c2;
  check "same witness cardinality" card1 card2;
  check "same rng stream afterwards" draw1 draw2

let with_fresh_cache f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bfly-ml-test-%d" (Unix.getpid ()))
  in
  let module Config = Bfly_cache.Config in
  let module Store = Bfly_cache.Store in
  let was_enabled = Config.enabled () in
  let old_dir = Config.dir () in
  let restore () =
    Config.set_enabled true;
    Config.set_dir dir;
    ignore (Store.clear ());
    (try Unix.rmdir dir with Unix.Unix_error _ | Sys_error _ -> ());
    Config.set_enabled was_enabled;
    Config.set_dir old_dir;
    Store.reset_memory ()
  in
  Config.set_enabled true;
  Config.set_dir dir;
  Store.reset_memory ();
  Fun.protect ~finally:restore f

let test_cache_hit_preserves_stream () =
  with_fresh_cache @@ fun () ->
  let module Metrics = Bfly_obs.Metrics in
  let g = Butterfly.graph (Butterfly.of_inputs 32) in
  let hit = Metrics.counter "cache.hit" in
  let run () =
    let r = rng 11 in
    let c, side = Multilevel.bisect ~rng:r g in
    (c, side, Random.State.int r 1_000_000)
  in
  let c1, side1, draw1 = run () in
  let hits0 = Metrics.counter_value hit in
  let c2, side2, draw2 = run () in
  checkb "second run hits the cache" true (Metrics.counter_value hit > hits0);
  check "hit returns the identical capacity" c1 c2;
  check "hit leaves the rng stream identical" draw1 draw2;
  check "hit returns the identical witness" 0
    (let d = ref 0 in
     Bitset.iter side1 (fun v -> if not (Bitset.mem side2 v) then incr d);
     Bitset.iter side2 (fun v -> if not (Bitset.mem side1 v) then incr d);
     !d)

let test_cancelled_bisect_still_valid () =
  let g = Butterfly.graph (Butterfly.of_inputs 16) in
  let cancel = Cancel.create () in
  Cancel.cancel ~reason:"test" cancel;
  let c, side = Multilevel.bisect ~cancel ~rng:(rng 3) g in
  let cut = Cut.make g side in
  checkb "degraded result is still a bisection" true (Cut.is_bisection cut);
  check "degraded capacity matches its witness" c (Cut.capacity cut)

let suite =
  [
    test_gain_vs_model;
    case "gain buckets reject broken invariants"
      test_gain_rejects_broken_invariants;
    test_coarsen_invariants;
    test_guided_coarsening_preserves_incumbent;
    case "refined hierarchy is balanced at every level"
      test_balance_at_every_level;
    test_refine_never_worsens_a_balanced_cut;
    test_bisect_upper_bounds_exact;
    case "bisect is deterministic and leaves the rng stream fixed"
      test_bisect_deterministic;
    case "cache hits preserve result and rng stream"
      test_cache_hit_preserves_stream;
    case "cancelled bisect still returns a valid bisection"
      test_cancelled_bisect_still_valid;
  ]
