module Gen = Bfly_graph.Generators
module G = Bfly_graph.Graph
module Traverse = Bfly_graph.Traverse
module Exact = Bfly_cuts.Exact
open Tu

let test_cycle () =
  let g = Gen.cycle 8 in
  check "edges" 8 (G.n_edges g);
  checkb "connected" true (Traverse.is_connected g);
  check "2-regular" 2 (G.max_degree g);
  check "BW = 2" 2 (fst (Exact.bisection_width g))

let test_path () =
  let g = Gen.path 9 in
  check "edges" 8 (G.n_edges g);
  check "BW = 1" 1 (fst (Exact.bisection_width g));
  check "diameter" 8 (Traverse.diameter g)

let test_grid () =
  let g = Gen.grid ~rows:3 ~cols:4 in
  check "nodes" 12 (G.n_nodes g);
  check "edges" ((2 * 4) + (3 * 3)) (G.n_edges g);
  check "BW = min dim" 3 (fst (Exact.bisection_width g));
  check "diameter" 5 (Traverse.diameter g)

let test_grid_4x4 () =
  let g = Gen.grid ~rows:4 ~cols:4 in
  check "BW of even square grid" 4 (fst (Exact.bisection_width g))

let test_torus () =
  let g = Gen.torus ~rows:4 ~cols:4 in
  check "nodes" 16 (G.n_nodes g);
  check "edges" 32 (G.n_edges g);
  check "4-regular" 4 (G.max_degree g);
  check "BW = 2*min dim" 8 (fst (Exact.bisection_width g))

let test_binary_tree () =
  let g = Gen.binary_tree 3 in
  check "nodes" 15 (G.n_nodes g);
  check "edges" 14 (G.n_edges g);
  checkb "connected" true (Traverse.is_connected g);
  (* trees have small bisection width *)
  checkb "BW small" true (fst (Exact.bisection_width g) <= 2)

let prop_random_regular =
  qcheck ~count:50 "configuration model produces the requested degrees"
    (seeded QCheck2.Gen.(pair (int_range 4 20) (int_range 2 4)))
    (fun ((n, degree), seed) ->
      let n = max n (degree + 1) in
      let n = if n * degree mod 2 = 1 then n + 1 else n in
      let g = Gen.random_regular ~simple:false ~rng:(rng seed) ~n ~degree in
      let ok = ref true in
      for v = 0 to n - 1 do
        if G.degree g v <> degree then ok := false
      done;
      !ok && G.n_edges g = n * degree / 2)

let prop_gnp_bounds =
  qcheck ~count:50 "G(n,p) edge count within the binomial support"
    (seeded QCheck2.Gen.(int_range 2 25))
    (fun (n, seed) ->
      let g = Gen.gnp ~rng:(rng seed) ~n ~p:0.5 in
      G.n_edges g <= n * (n - 1) / 2)

let test_gnp_extremes () =
  let rng = rng 11 in
  let g0 = Gen.gnp ~rng ~n:10 ~p:0.0 in
  check "p=0 empty" 0 (G.n_edges g0);
  let g1 = Gen.gnp ~rng ~n:10 ~p:1.0 in
  check "p=1 complete" 45 (G.n_edges g1)

let test_heuristics_on_generators () =
  (* heuristics should match exact on structured families *)
  List.iter
    (fun (g, bw) ->
      let c, _, _ = Bfly_cuts.Heuristics.best_of g in
      check "portfolio finds the optimum" bw c)
    [
      (Gen.cycle 12, 2);
      (Gen.grid ~rows:4 ~cols:4, 4);
      (Gen.path 11, 1);
    ]

let suite =
  [
    case "cycle" test_cycle;
    case "path" test_path;
    case "grid 3x4" test_grid;
    case "grid 4x4" test_grid_4x4;
    case "torus" test_torus;
    case "binary tree" test_binary_tree;
    prop_random_regular;
    prop_gnp_bounds;
    case "gnp extremes" test_gnp_extremes;
    case "heuristic portfolio on known families" test_heuristics_on_generators;
  ]
