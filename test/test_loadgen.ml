(* Tests for the deterministic load generator (lib/serve/loadgen): the
   schedule is a pure function of (trace, seed, clients, repeat); repeated
   runs agree on every deterministic field of the bfly-loadgen/1 document;
   sequential and concurrent replays produce identical output bytes; and
   compare_docs gates exactly what it should — deterministic drift always,
   timing drift only beyond the slack factor (and not at all under
   timing:false, the cross-machine mode). *)

module Loadgen = Bfly_serve.Loadgen
module Json = Bfly_obs.Json
open Tu

let trace =
  [
    {|{"job":"mos","j":2}|};
    {|{"job":"mos","j":3}|};
    {|{"job":"bw","solver":"kl","network":"butterfly","n":8,"seed":1}|};
    {|{"job":"bw","solver":"spectral","network":"butterfly","n":8}|};
    (* a deterministic error: replies are part of the fingerprint too *)
    {|{"job":"mos","j":0}|};
  ]

let run ?(seed = 3) ?(clients = 3) ?(repeat = 4) ?mode () =
  match Loadgen.run ~seed ~clients ~repeat ?mode ~trace () with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "loadgen run failed: %s" e

let str doc k =
  match Option.bind (Json.member k doc) Json.to_string_opt with
  | Some s -> s
  | None -> Alcotest.failf "document lacks string field %S" k

let int_ doc k =
  match Option.bind (Json.member k doc) Json.to_int_opt with
  | Some i -> i
  | None -> Alcotest.failf "document lacks int field %S" k

let test_schedule_deterministic () =
  let s1 = Loadgen.schedule ~seed:7 ~clients:3 ~repeat:5 ~trace in
  let s2 = Loadgen.schedule ~seed:7 ~clients:3 ~repeat:5 ~trace in
  let s3 = Loadgen.schedule ~seed:8 ~clients:3 ~repeat:5 ~trace in
  check "length = repeat * trace" (5 * List.length trace) (Array.length s1);
  Alcotest.(check string)
    "same seed, same schedule"
    (Loadgen.schedule_fingerprint s1)
    (Loadgen.schedule_fingerprint s2);
  checkb "different seed, different schedule" true
    (Loadgen.schedule_fingerprint s1 <> Loadgen.schedule_fingerprint s3);
  Array.iter
    (fun ev ->
      checkb "client in range" true Loadgen.(ev.client >= 0 && ev.client < 3))
    s1;
  (* every round replays the full trace: each line appears exactly
     [repeat] times *)
  List.iter
    (fun line ->
      check "line multiplicity" 5
        (Array.fold_left
           (fun acc ev -> if Loadgen.(ev.line) = line then acc + 1 else acc)
           0 s1))
    trace

let test_repeat_runs_identical () =
  Test_serve.with_fresh_cache @@ fun () ->
  let d1 = run ~mode:Loadgen.Sequential () in
  let d2 = run ~mode:Loadgen.Sequential () in
  Alcotest.(check string)
    "deterministic views identical"
    (Json.to_string (Loadgen.deterministic_view d1))
    (Json.to_string (Loadgen.deterministic_view d2));
  (* and the error line is visible, deterministically *)
  check "errors counted" 4 (int_ d1 "errors");
  check "every request answered" (int_ d1 "requests") (int_ d1 "responses")

let test_modes_byte_identical () =
  Test_serve.with_fresh_cache @@ fun () ->
  let seq = run ~mode:Loadgen.Sequential () in
  let conc = run ~mode:Loadgen.Concurrent () in
  Alcotest.(check string)
    "outputs fingerprint equal across modes"
    (str seq "outputs_fingerprint")
    (str conc "outputs_fingerprint");
  Alcotest.(check (list string))
    "no deterministic drift between modes" []
    (Loadgen.compare_docs ~timing:false ~baseline:seq conc)

(* rebuild the document with one timing field scaled — the shape of an
   injected performance regression *)
let with_timing doc k f =
  match doc with
  | Json.Obj fields ->
      Json.Obj
        (List.map
           (function
             | "timing", Json.Obj tf ->
                 ( "timing",
                   Json.Obj
                     (List.map
                        (function
                          | k', v when k' = k -> (k', f v)
                          | kv -> kv)
                        tf) )
             | kv -> kv)
           fields)
  | other -> other

let scale_int factor = function
  | Json.Int i -> Json.Int (i * factor)
  | v -> v

let div_float factor = function
  | Json.Float f -> Json.Float (f /. factor)
  | Json.Int i -> Json.Float (float_of_int i /. factor)
  | v -> v

let test_compare_gates_timing () =
  Test_serve.with_fresh_cache @@ fun () ->
  let doc = run ~mode:Loadgen.Sequential () in
  Alcotest.(check (list string))
    "identical doc passes with timing" []
    (Loadgen.compare_docs ~baseline:doc doc);
  let slow = with_timing doc "p99_ns" (scale_int 10) in
  checkb "p99 regression caught" true
    (Loadgen.compare_docs ~slack:3.0 ~baseline:doc slow <> []);
  let starved = with_timing doc "achieved_qps" (div_float 10.) in
  checkb "throughput regression caught" true
    (Loadgen.compare_docs ~slack:3.0 ~baseline:doc starved <> []);
  (* generous slack forgives, no-timing ignores *)
  Alcotest.(check (list string))
    "within slack passes" []
    (Loadgen.compare_docs ~slack:100.0 ~baseline:doc slow);
  Alcotest.(check (list string))
    "no-timing ignores timing entirely" []
    (Loadgen.compare_docs ~timing:false ~baseline:doc slow)

let test_compare_gates_determinism () =
  Test_serve.with_fresh_cache @@ fun () ->
  let doc = run () in
  let other_seed = run ~seed:4 () in
  checkb "seed drift always fails, even under no-timing" true
    (Loadgen.compare_docs ~timing:false ~baseline:doc other_seed <> []);
  let forged =
    match doc with
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (function
               | "outputs_fingerprint", _ ->
                   ("outputs_fingerprint", Json.Str "0000000000000000")
               | kv -> kv)
             fields)
    | other -> other
  in
  checkb "output drift always fails" true
    (Loadgen.compare_docs ~timing:false ~baseline:forged doc <> [])

let test_fingerprint_primitives () =
  Alcotest.(check string)
    "fnv64 is stable" (Loadgen.fnv64 "butterfly") (Loadgen.fnv64 "butterfly");
  checkb "fnv64 separates" true
    (Loadgen.fnv64 "butterfly" <> Loadgen.fnv64 "butterflz");
  checkb "line digest order-sensitive" true
    (Loadgen.fingerprint_lines [ "a"; "b" ]
    <> Loadgen.fingerprint_lines [ "b"; "a" ])

let suite =
  [
    case "schedule is a pure function of its parameters"
      test_schedule_deterministic;
    slow_case "repeated runs agree on every deterministic field"
      test_repeat_runs_identical;
    slow_case "sequential and concurrent replays byte-identical"
      test_modes_byte_identical;
    slow_case "compare gates p99/throughput within slack"
      test_compare_gates_timing;
    slow_case "compare fails deterministic drift unconditionally"
      test_compare_gates_determinism;
    case "fingerprint primitives" test_fingerprint_primitives;
  ]
