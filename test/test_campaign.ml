(* The random-regular bisection campaign: the certificate's pinned exact
   values, grid-sweep contracts, end-to-end determinism across domain
   counts and cache states, the bfly-campaign/1 document schema, the
   statistical oracles' pass AND fail directions, and the committed
   CAMPAIGN_*.json baseline's reproducibility. *)

module G = Bfly_graph.Graph
module Generators = Bfly_graph.Generators
module Sweep = Bfly_graph.Sweep
module Certificate = Bfly_cuts.Certificate
module Campaign = Bfly_check.Campaign
module Bounds = Bfly_check.Bounds
module Json = Bfly_obs.Json
module Metrics = Bfly_obs.Metrics
module Job = Bfly_serve.Job
module Protocol = Bfly_serve.Protocol
open Tu

let with_domains_str s f =
  let old = Sys.getenv_opt "BFLY_DOMAINS" in
  Unix.putenv "BFLY_DOMAINS" s;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "BFLY_DOMAINS" (match old with Some s -> s | None -> ""))
    f

let with_domains d f = with_domains_str (string_of_int d) f

(* run [f] with the persistent cache disabled, so campaign solves are
   honest recomputations whatever earlier suites left cached *)
let without_cache f =
  let was = Bfly_cache.Config.enabled () in
  Bfly_cache.Config.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Bfly_cache.Config.set_enabled was)
    f

let counter name = Metrics.counter_value (Metrics.counter name)

(* ---- the K_N-embedding certificate ---- *)

let test_certificate_pins () =
  (* K_8: every BFS tree is a star, worst bundle congestion 2, so the
     bound is 2*4*4/2 = 16 — exactly BW(K_8) *)
  check "K_8 congestion" 2
    (Option.get (Certificate.kn_congestion (Generators.complete 8)));
  check "K_8 bound (exact)" 16 (Certificate.kn_bound (Generators.complete 8));
  (* a path's middle edge carries ceil(n/2)*floor(n/2) pairs each way, so
     the bound collapses to exactly 1 — the path's true bisection width *)
  check "path_8 bound (exact)" 1 (Certificate.kn_bound (Generators.path 8));
  check "cycle_8 bound (exact)" 2 (Certificate.kn_bound (Generators.cycle 8));
  (* disconnected graphs have a free bisection; the certificate must not
     claim otherwise *)
  let disconnected = G.of_edge_list ~n:4 [ (0, 1); (2, 3) ] in
  checkb "disconnected congestion is None" true
    (Certificate.kn_congestion disconnected = None);
  check "disconnected bound" 0 (Certificate.kn_bound disconnected);
  check "trivial graph bound" 0 (Certificate.kn_bound (G.of_edge_list ~n:1 []))

let test_certificate_sound =
  qcheck ~count:40 "certificate never exceeds the true bisection width"
    (seeded QCheck2.Gen.(pair (int_range 4 10) (int_range 0 8)))
    (fun ((n, extra), seed) ->
      let g = random_graph ~rng:(rng seed) n ~extra_edges:extra in
      Certificate.kn_bound g <= brute_bw g)

let test_certificate_deterministic_across_domains () =
  let g = Generators.random_regular ~simple:true ~rng:(rng 3) ~n:64 ~degree:3 in
  let at d = with_domains d (fun () -> Certificate.kn_bound g) in
  check "1 domain = 3 domains" (at 1) (at 3)

(* ---- the grid sweep ---- *)

let test_sweep_grid_order () =
  let pts = Sweep.points ~sizes:[ 8; 4 ] ~seeds:2 in
  checkb "size-major, seeds ascending from 1" true
    (pts
    = [
        { Sweep.n = 8; seed = 1 }; { Sweep.n = 8; seed = 2 };
        { Sweep.n = 4; seed = 1 }; { Sweep.n = 4; seed = 2 };
      ]);
  let results =
    Sweep.run ~sizes:[ 8; 4 ] ~seeds:2 (fun ~n ~seed -> (n, seed))
  in
  checkb "run returns points order" true
    (Array.to_list results = [ (8, 1); (8, 2); (4, 1); (4, 2) ]);
  check "empty grid" 0 (Array.length (Sweep.run ~sizes:[] ~seeds:5 (fun ~n:_ ~seed:_ -> ())))

let test_sweep_counts_points () =
  let before = counter "sweep.points" in
  ignore (Sweep.run ~sizes:[ 2; 3 ] ~seeds:3 (fun ~n ~seed -> n * seed));
  check "sweep.points ticked per point" 6 (counter "sweep.points" - before)

(* ---- pinned small-n regression ---- *)

let test_pinned_small_instance () =
  (* the campaign's (degree 3, n 14, seed 1) instance, pinned against the
     exact solver: the sampled graph, its certificate and the true width
     must never drift (the rng derivation and generator are contracts) *)
  let g = Campaign.instance_graph ~degree:3 ~n:14 ~seed:1 in
  check "edges" 21 (G.n_edges g);
  check "certified lb" 3 (Certificate.kn_bound g);
  check "exact bisection width" 3 (fst (Bfly_cuts.Exact.bisection_width g));
  (* the certificate is tight here — and must stay a lower bound *)
  checkb "lb <= exact" true (Certificate.kn_bound g <= 3)

(* ---- end-to-end determinism ---- *)

let campaign_exn ?restarts ~sizes ~seeds () =
  match Campaign.run ?restarts ~degree:3 ~sizes ~seeds () with
  | Ok t -> t
  | Error e -> Alcotest.failf "campaign failed: %s" e

let test_campaign_deterministic_across_domains () =
  without_cache @@ fun () ->
  let doc d =
    with_domains d (fun () ->
        Json.to_string
          (Campaign.to_json
             (campaign_exn ~restarts:2 ~sizes:[ 16; 24 ] ~seeds:2 ())))
  in
  Alcotest.(check string) "1 domain = 3 domains" (doc 1) (doc 3)

let test_campaign_warm_cache_identical () =
  (* a fresh cache directory: the cold run populates it (multilevel
     caches internally), the warm run must serve hits and produce the
     byte-identical document *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bfly-campaign-test-%d" (Unix.getpid ()))
  in
  let was_enabled = Bfly_cache.Config.enabled () in
  let old_dir = Bfly_cache.Config.dir () in
  let restore () =
    Bfly_cache.Config.set_enabled true;
    Bfly_cache.Config.set_dir dir;
    ignore (Bfly_cache.Store.clear ());
    (try Unix.rmdir dir with Unix.Unix_error _ | Sys_error _ -> ());
    Bfly_cache.Config.set_enabled was_enabled;
    Bfly_cache.Config.set_dir old_dir;
    Bfly_cache.Store.reset_memory ()
  in
  Bfly_cache.Config.set_enabled true;
  Bfly_cache.Config.set_dir dir;
  Bfly_cache.Store.reset_memory ();
  Fun.protect ~finally:restore @@ fun () ->
  let doc () =
    Json.to_string
      (Campaign.to_json (campaign_exn ~restarts:2 ~sizes:[ 16 ] ~seeds:2 ()))
  in
  let cold = doc () in
  let hit0 = counter "cache.hit" in
  let warm = doc () in
  Alcotest.(check string) "cold = warm" cold warm;
  checkb "warm run hit the cache" true (counter "cache.hit" > hit0)

(* ---- parameter validation ---- *)

let test_campaign_validation () =
  let err ?restarts ~degree ~sizes ~seeds () =
    match Campaign.run ?restarts ~degree ~sizes ~seeds () with
    | Ok _ -> Alcotest.fail "expected Error"
    | Error _ -> ()
  in
  err ~degree:1 ~sizes:[ 16 ] ~seeds:1 ();
  err ~degree:3 ~sizes:[] ~seeds:1 ();
  err ~degree:3 ~sizes:[ 16 ] ~seeds:0 ();
  err ~degree:3 ~sizes:[ 4 ] ~seeds:1 () (* n < 2*degree *);
  err ~degree:3 ~sizes:[ 15 ] ~seeds:1 () (* odd n*degree *);
  err ~degree:3 ~sizes:[ 32768 ] ~seeds:1 ();
  err ~restarts:0 ~degree:3 ~sizes:[ 16 ] ~seeds:1 ()

(* ---- the statistical oracles, both directions ---- *)

let mk ~n ~lb ~ml ~spectral =
  { Campaign.n; seed = 1; edges = 3 * n / 2; lb; ml; spectral }

let test_sanity_oracle () =
  let ok_instance = mk ~n:64 ~lb:5 ~ml:9 ~spectral:10 in
  checkb "clean instances pass" true
    (Campaign.sanity ~degree:3 [ ok_instance ]).Bounds.ok;
  checkb "lb > ml fails" false
    (Campaign.sanity ~degree:3 [ mk ~n:64 ~lb:10 ~ml:9 ~spectral:10 ]).Bounds.ok;
  checkb "lb > spectral fails" false
    (Campaign.sanity ~degree:3 [ mk ~n:64 ~lb:11 ~ml:12 ~spectral:10 ])
      .Bounds.ok;
  checkb "ml worse than the random cut fails" false
    (Campaign.sanity ~degree:3 [ mk ~n:64 ~lb:5 ~ml:49 ~spectral:50 ]).Bounds.ok;
  checkb "witness faults fail" false
    (Campaign.sanity ~degree:3 ~witness_faults:[ "n=64 seed=1: bad side" ]
       [ ok_instance ])
      .Bounds.ok

let summary_with ~n ~mean_ml ~mean_lb =
  {
    Campaign.s_n = n;
    count = 20;
    mean_lb;
    mean_ml;
    min_ml = mean_ml -. 0.005;
    max_ml = mean_ml +. 0.005;
    mean_spectral = mean_ml +. 0.01;
  }

let test_window_oracle () =
  (* in-window mean at a pinned size: both aggregate checks green *)
  let good = summary_with ~n:4096 ~mean_ml:0.136 ~mean_lb:0.059 in
  let checks = Campaign.aggregate ~degree:3 [ good ] in
  check "two checks at a windowed size" 2 (List.length checks);
  checkb "good summary passes" true
    (List.for_all (fun c -> c.Bounds.ok) checks);
  (* a heuristic collapse (mean above the bracket) must fail *)
  let high = summary_with ~n:4096 ~mean_ml:0.20 ~mean_lb:0.059 in
  checkb "mean above the window fails" true
    (List.exists
       (fun c -> not c.Bounds.ok)
       (Campaign.aggregate ~degree:3 [ high ]));
  (* a mean below the theorem's lower constant must fail too: the true
     width is a.a.s. >= mb_lower*n and ml upper-bounds it *)
  let low = summary_with ~n:4096 ~mean_ml:0.08 ~mean_lb:0.059 in
  checkb "mean below the window fails" true
    (List.exists
       (fun c -> not c.Bounds.ok)
       (Campaign.aggregate ~degree:3 [ low ]));
  (* an LB ratio crossing the upper constant would contradict the theorem *)
  let lb_bad = summary_with ~n:4096 ~mean_ml:0.136 ~mean_lb:0.145 in
  checkb "lb above mb_upper fails" true
    (List.exists
       (fun c -> not c.Bounds.ok)
       (Campaign.aggregate ~degree:3 [ lb_bad ]));
  (* no windows off the pinned sizes, or off degree 3 *)
  check "no checks at unpinned sizes" 0
    (List.length
       (Campaign.aggregate ~degree:3
          [ summary_with ~n:64 ~mean_ml:0.17 ~mean_lb:0.11 ]));
  check "no checks for other degrees" 0
    (List.length (Campaign.aggregate ~degree:4 [ good ]));
  checkb "window edges pinned" true
    (Campaign.window ~n:4096 = Some (Campaign.mb_lower, 0.140)
    && Campaign.window ~n:64 = None)

(* ---- the bfly-campaign/1 document ---- *)

let test_document_schema_and_roundtrip () =
  without_cache @@ fun () ->
  let t = campaign_exn ~restarts:2 ~sizes:[ 16 ] ~seeds:2 () in
  let doc = Campaign.to_json t in
  let str k = Option.bind (Json.member k doc) Json.to_string_opt in
  let int_ k = Option.bind (Json.member k doc) Json.to_int_opt in
  Alcotest.(check (option string)) "schema" (Some "bfly-campaign/1") (str "schema");
  Alcotest.(check (option int)) "degree" (Some 3) (int_ "degree");
  Alcotest.(check (option int)) "seeds" (Some 2) (int_ "seeds");
  Alcotest.(check (option int)) "restarts" (Some 2) (int_ "restarts");
  (match Json.member "constants" doc with
  | Some c ->
      checkb "constants carry the arXiv source" true
        (Option.bind (Json.member "source" c) Json.to_string_opt
        = Some "arXiv:2009.00598")
  | None -> Alcotest.fail "document has no constants object");
  (match Json.member "instances" doc with
  | Some (Json.List l) -> check "one instance row per grid point" 2 (List.length l)
  | _ -> Alcotest.fail "document has no instances list");
  (match Option.bind (Json.member "oracle" doc) (Json.member "ok") with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.fail "oracle verdict missing or false");
  (* byte-stable under our own parser/printer, like every committed doc *)
  let printed = Json.to_string doc in
  match Json.of_string printed with
  | Error e -> Alcotest.failf "reparse: %s" e
  | Ok doc2 ->
      Alcotest.(check string) "print/parse/print fixed point" printed
        (Json.to_string doc2)

let test_compare_docs_drift_directions () =
  without_cache @@ fun () ->
  let t = campaign_exn ~restarts:2 ~sizes:[ 16 ] ~seeds:2 () in
  let doc = Campaign.to_json t in
  Alcotest.(check (list string)) "self-compare is clean" []
    (Campaign.compare_docs ~baseline:doc doc);
  (* drifted ml on one instance must be reported *)
  let tampered =
    Campaign.to_json
      { t with
        Campaign.instances =
          (match t.Campaign.instances with
          | i :: rest -> { i with Campaign.ml = i.Campaign.ml + 1 } :: rest
          | [] -> []);
      }
  in
  checkb "per-instance drift detected" true
    (Campaign.compare_docs ~baseline:doc tampered <> []);
  (* an instance outside the baseline grid is drift, not silence *)
  let bigger =
    Campaign.to_json
      { t with
        Campaign.instances =
          t.Campaign.instances @ [ mk ~n:99 ~lb:1 ~ml:2 ~spectral:2 ];
      }
  in
  checkb "unknown instance detected" true
    (Campaign.compare_docs ~baseline:doc bigger <> []);
  checkb "schema mismatch detected" true
    (Campaign.compare_docs ~baseline:(Json.Obj [ ("schema", Json.Str "x") ]) doc
    <> [])

(* ---- serve wiring ---- *)

let test_job_fingerprint () =
  Alcotest.(check string) "pinned fingerprint" "campaign/3?sizes=32,64&seeds=3"
    (Job.fingerprint (Job.Campaign { degree = 3; sizes = [ 32; 64 ]; seeds = 3 }));
  checkb "different grids do not coalesce" true
    (Job.fingerprint (Job.Campaign { degree = 3; sizes = [ 32 ]; seeds = 3 })
    <> Job.fingerprint (Job.Campaign { degree = 3; sizes = [ 32 ]; seeds = 4 }))

let parse line =
  Protocol.parse_request ~default_id:"t" line

let test_protocol_campaign () =
  (match parse {|{"id":"c","job":"campaign","degree":3,"sizes":[16,24],"seeds":2}|} with
  | Ok
      {
        Protocol.payload =
          Protocol.Job { spec = Job.Campaign { degree; sizes; seeds }; _ };
        _;
      } ->
      checkb "parsed grid" true
        (degree = 3 && sizes = [ 16; 24 ] && seeds = 2)
  | _ -> Alcotest.fail "campaign request did not parse");
  (match parse {|{"id":"c","job":"campaign"}|} with
  | Ok
      {
        Protocol.payload =
          Protocol.Job { spec = Job.Campaign { degree; sizes; seeds }; _ };
        _;
      } ->
      checkb "defaults" true (degree = 3 && sizes = [ 32; 64 ] && seeds = 3)
  | _ -> Alcotest.fail "default campaign request did not parse");
  let rejected l =
    match parse l with Error _ -> true | Ok _ -> false
  in
  checkb "seeds capped when serving" true
    (rejected {|{"job":"campaign","seeds":17}|});
  checkb "size capped when serving" true
    (rejected {|{"job":"campaign","sizes":[2048]}|});
  checkb "sizes must be an int list" true
    (rejected {|{"job":"campaign","sizes":"16,24"}|})

let test_job_run_matches_render () =
  without_cache @@ fun () ->
  (* the served bytes are exactly the render of the same campaign — the
     serve/one-shot byte-identity contract, extended to campaign jobs *)
  match Job.run (Job.Campaign { degree = 3; sizes = [ 16 ]; seeds = 2 }) with
  | Error e -> Alcotest.failf "job failed: %s" e
  | Ok out ->
      let t =
        campaign_exn ~restarts:Campaign.default_restarts ~sizes:[ 16 ] ~seeds:2 ()
      in
      Alcotest.(check string) "served = rendered" (Campaign.render t) out

(* ---- the battery integration ---- *)

let test_check_battery_carries_campaign () =
  without_cache @@ fun () ->
  let json, ok = Bfly_check.Run.execute ~seed:1 ~rounds:1 ~smoke:true () in
  checkb "battery green" true ok;
  let text = Json.to_string json in
  checkb "campaign family in the battery" true
    (let needle = {|"campaign/sanity"|} in
     let lh = String.length text and ln = String.length needle in
     let rec go i = i + ln <= lh && (String.sub text i ln = needle || go (i + 1)) in
     go 0)

(* ---- the committed baseline ---- *)

let baseline_path = "../CAMPAIGN_2026-08-08.json"

let load_baseline () =
  let text = In_channel.with_open_text baseline_path In_channel.input_all in
  match Json.of_string text with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "campaign baseline is not valid JSON: %s" e

let test_baseline_contract () =
  let doc = load_baseline () in
  checkb "schema" true
    (Option.bind (Json.member "schema" doc) Json.to_string_opt
    = Some "bfly-campaign/1");
  checkb "degree 3" true
    (Option.bind (Json.member "degree" doc) Json.to_int_opt = Some 3);
  let instances =
    match Json.member "instances" doc with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "baseline has no instances"
  in
  check "full grid: 7 sizes x 20 seeds" 140 (List.length instances);
  (match Option.bind (Json.member "oracle" doc) (Json.member "ok") with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.fail "committed oracle verdict is not ok:true");
  Alcotest.(check (list string)) "baseline self-compare is clean" []
    (Campaign.compare_docs ~baseline:doc doc);
  (* recompute the largest-size mean ml ratio from the committed rows and
     re-judge it against the pinned window — the aggregate the oracle
     asserts is derivable from the instances it ships with *)
  let big =
    List.filter_map
      (fun i ->
        match
          ( Option.bind (Json.member "n" i) Json.to_int_opt,
            Option.bind (Json.member "ml" i) Json.to_int_opt )
        with
        | Some 4096, Some ml -> Some (float_of_int ml /. 4096.)
        | _ -> None)
      instances
  in
  check "20 seeds at n=4096" 20 (List.length big);
  let mean = List.fold_left ( +. ) 0. big /. 20. in
  let lo, hi = Option.get (Campaign.window ~n:4096) in
  checkb "recomputed mean inside the pinned window" true
    (mean >= lo && mean <= hi);
  (* byte-stable round-trip, like the other committed documents *)
  let text = In_channel.with_open_text baseline_path In_channel.input_all in
  let printed = Json.to_string (Result.get_ok (Json.of_string text)) in
  checkb "round-trip fixed point" true
    (Json.to_string (Result.get_ok (Json.of_string printed)) = printed)

let test_subgrid_reproduces_baseline () =
  without_cache @@ fun () ->
  (* the ci.sh campaign stage's property, in-process: a fresh sub-grid
     run must reproduce the committed per-instance triples exactly *)
  let t = campaign_exn ~sizes:[ 64 ] ~seeds:2 () in
  Alcotest.(check (list string)) "no drift against the committed baseline" []
    (Campaign.compare_docs ~baseline:(load_baseline ()) (Campaign.to_json t))

let suite =
  [
    case "certificate: pinned exact values" test_certificate_pins;
    test_certificate_sound;
    case "certificate: deterministic across domains"
      test_certificate_deterministic_across_domains;
    case "sweep: grid order is the contract" test_sweep_grid_order;
    case "sweep: counts completed points" test_sweep_counts_points;
    case "pinned small-n instance vs exact solver" test_pinned_small_instance;
    case "campaign: deterministic across BFLY_DOMAINS"
      test_campaign_deterministic_across_domains;
    case "campaign: warm cache is byte-identical"
      test_campaign_warm_cache_identical;
    case "campaign: parameter validation" test_campaign_validation;
    case "sanity oracle: pass and fail directions" test_sanity_oracle;
    case "window oracle: pass and fail directions" test_window_oracle;
    case "document: schema and byte-stable round-trip"
      test_document_schema_and_roundtrip;
    case "compare_docs: drift directions" test_compare_docs_drift_directions;
    case "serve: campaign fingerprints" test_job_fingerprint;
    case "serve: protocol parses and caps campaign jobs"
      test_protocol_campaign;
    case "serve: job output equals render" test_job_run_matches_render;
    case "check battery carries the campaign family"
      test_check_battery_carries_campaign;
    case "committed baseline: schema, oracle, windows" test_baseline_contract;
    slow_case "sub-grid run reproduces the committed baseline"
      test_subgrid_reproduces_baseline;
  ]
