module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module E = Bfly_expansion.Expansion
module Witness = Bfly_expansion.Witness
module Credit = Bfly_expansion.Credit
module B = Bfly_networks.Butterfly
module W = Bfly_networks.Wrapped
open Tu

let square () = G.of_edge_list ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ]

(* ---- exact minimizers ---- *)

let test_exact_on_square () =
  check "EE(C4,1)" 2 (fst (E.ee_exact (square ()) ~k:1));
  check "EE(C4,2)" 2 (fst (E.ee_exact (square ()) ~k:2));
  check "NE(C4,1)" 2 (fst (E.ne_exact (square ()) ~k:1));
  check "NE(C4,2)" 2 (fst (E.ne_exact (square ()) ~k:2));
  check "NE(C4,3)" 1 (fst (E.ne_exact (square ()) ~k:3))

let test_exact_witness_achieves () =
  let g = W.graph (W.of_inputs 8) in
  List.iter
    (fun k ->
      let v, s = E.ee_exact g ~k in
      check "witness cardinality" k (Bitset.cardinal s);
      check "witness achieves" v (E.edge_expansion g s);
      let v', s' = E.ne_exact g ~k in
      check "ne witness cardinality" k (Bitset.cardinal s');
      check "ne witness achieves" v' (E.node_expansion g s'))
    [ 1; 3; 5; 7 ]

let prop_exact_below_random_sets =
  qcheck ~count:60 "exact minimum is below random sets of the same size"
    (seeded QCheck2.Gen.(pair (int_range 4 14) (int_range 1 6)))
    (fun ((n, k), seed) ->
      let rng = rng seed in
      let k = min k (n - 1) in
      let g = random_graph ~rng n ~extra_edges:n in
      let s = random_subset ~rng n k in
      fst (E.ee_exact g ~k) <= E.edge_expansion g s
      && fst (E.ne_exact g ~k) <= E.node_expansion g s)

let test_anneal_upper_bounds () =
  let g = W.graph (W.of_inputs 8) in
  List.iter
    (fun k ->
      let exact, _ = E.ee_exact g ~k in
      let ub, s = E.ee_anneal ~steps:30_000 g ~k in
      check "anneal achieves its value" ub (E.edge_expansion g s);
      checkb "anneal >= exact" true (ub >= exact);
      let exact_n, _ = E.ne_exact g ~k in
      let ub_n, _ = E.ne_anneal ~steps:30_000 g ~k in
      checkb "ne anneal >= exact" true (ub_n >= exact_n))
    [ 2; 4; 6 ]

(* ---- witnesses (Lemmas 4.1, 4.4, 4.7, 4.10) ---- *)

let test_witness_sizes () =
  let w = W.of_inputs 64 in
  let b = B.of_inputs 64 in
  List.iter
    (fun dim ->
      check "wn_ee size" (Witness.single_size ~dim)
        (Bitset.cardinal (Witness.wn_ee ~dim w));
      check "bn_ee size" (Witness.single_size ~dim)
        (Bitset.cardinal (Witness.bn_ee ~dim b));
      check "bn_ne size" (Witness.pair_size ~dim)
        (Bitset.cardinal (Witness.bn_ne ~dim b)))
    [ 1; 2; 3 ];
  List.iter
    (fun dim ->
      check "wn_ne size" (Witness.pair_size ~dim)
        (Bitset.cardinal (Witness.wn_ne ~dim w)))
    [ 1; 2; 3 ]

let test_witness_values () =
  let w = W.of_inputs 64 in
  let b = B.of_inputs 64 in
  let gw = W.graph w and gb = B.graph b in
  List.iter
    (fun dim ->
      check "Lemma 4.1: EE witness = 4*2^d" (4 * (1 lsl dim))
        (E.edge_expansion gw (Witness.wn_ee ~dim w));
      check "Lemma 4.4: NE witness = 3*2^(d+1)" (3 * (1 lsl (dim + 1)))
        (E.node_expansion gw (Witness.wn_ne ~dim w));
      check "Lemma 4.7: EE witness = 2*2^d" (2 * (1 lsl dim))
        (E.edge_expansion gb (Witness.bn_ee ~dim b));
      check "Lemma 4.10: NE witness = 2^(d+1)" (1 lsl (dim + 1))
        (E.node_expansion gb (Witness.bn_ne ~dim b)))
    [ 1; 2; 3 ]

let test_witnesses_are_optimal_small () =
  (* at W_8, the k=8 sub-butterfly (dim 1... sizes don't align; use B_8's
     dim-1 EE witness of size 4 and compare with the exact minimum *)
  let b = B.of_inputs 8 in
  let g = B.graph b in
  let s = Witness.bn_ee ~dim:1 b in
  let k = Bitset.cardinal s in
  let exact, _ = E.ee_exact g ~k in
  check "witness optimal at k=4 in B_8" exact (E.edge_expansion g s)

(* ---- credit schemes (Lemmas 4.2, 4.5, 4.8, 4.11) ---- *)

let test_credit_soundness_random =
  qcheck ~count:150 "credit bounds never exceed the actual values"
    (seeded QCheck2.Gen.(int_range 1 40))
    (fun (k, seed) ->
      let rng = rng seed in
      let w = W.of_inputs 16 in
      let b = B.of_inputs 16 in
      let sw = random_subset ~rng (W.size w) (min k (W.size w)) in
      let sb = random_subset ~rng (B.size b) (min k (B.size b)) in
      let rw = Credit.wn_edge w sw and rwn = Credit.wn_node w sw in
      let rb = Credit.bn_edge b sb and rbn = Credit.bn_node b sb in
      rw.Credit.certified <= rw.Credit.actual
      && rwn.Credit.certified <= rwn.Credit.actual
      && rb.Credit.certified <= rb.Credit.actual
      && rbn.Credit.certified <= rbn.Credit.actual)

let test_credit_conservation () =
  (* distributed credit = retained + leaked, exactly (dyadic floats) *)
  let w = W.of_inputs 32 in
  let s = Witness.wn_ee ~dim:2 w in
  let r = Credit.wn_edge w s in
  Alcotest.(check (float 1e-9))
    "conservation" (float_of_int r.Credit.set_size)
    (r.Credit.retained +. r.Credit.leaked)

let test_credit_caps_respected () =
  (* the measured per-edge maximum never exceeds the paper's cap *)
  let w = W.of_inputs 32 in
  let b = B.of_inputs 32 in
  let rng = Random.State.make [| 21 |] in
  for _ = 1 to 50 do
    let k = 1 + Random.State.int rng 20 in
    let sw = random_subset ~rng (W.size w) k in
    let sb = random_subset ~rng (B.size b) k in
    let rw = Credit.wn_edge w sw in
    checkb "W edge cap (Lemma 4.2)" true (rw.Credit.max_retained <= rw.Credit.cap +. 1e-9);
    let rwn = Credit.wn_node w sw in
    checkb "W node cap (Lemma 4.5)" true
      (rwn.Credit.max_retained <= rwn.Credit.cap +. 1e-9);
    let rb = Credit.bn_edge b sb in
    checkb "B edge cap (Lemma 4.8)" true (rb.Credit.max_retained <= rb.Credit.cap +. 1e-9);
    let rbn = Credit.bn_node b sb in
    checkb "B node cap (Lemma 4.11)" true
      (rbn.Credit.max_retained <= rbn.Credit.cap +. 1e-9)
  done

let test_credit_leak_small_for_small_sets () =
  (* the Lemma 4.2 leak bound: leaked <= k^2/n *)
  let w = W.of_inputs 64 in
  let s = Witness.wn_ee ~dim:2 w in
  let r = Credit.wn_edge w s in
  let k = float_of_int r.Credit.set_size in
  checkb "leak <= k^2/n" true (r.Credit.leaked <= (k *. k /. 64.) +. 1e-9)

let test_credit_single_node () =
  let w = W.of_inputs 16 in
  let s = Bitset.create (W.size w) in
  Bitset.add s (W.node w ~col:3 ~level:1);
  let r = Credit.wn_edge w s in
  check "isolated node: all credit on its 4 edges" 4 r.Credit.certified;
  check "actual" 4 r.Credit.actual

let test_credit_whole_network_leaks () =
  (* A = everything: no cut edges, everything leaks *)
  let w = W.of_inputs 8 in
  let s = Bitset.create (W.size w) in
  Bitset.fill s;
  let r = Credit.wn_edge w s in
  check "no cut edges" 0 r.Credit.actual;
  check "certified zero" 0 r.Credit.certified;
  Alcotest.(check (float 1e-9))
    "everything leaked" (float_of_int (W.size w)) r.Credit.leaked

let test_bounds_formulas () =
  Alcotest.(check (float 1e-9)) "ee_wn at 16" 16.0 (Credit.Bounds.ee_wn_lower 16);
  Alcotest.(check (float 1e-9)) "ne_wn at 16" 4.0 (Credit.Bounds.ne_wn_lower 16);
  Alcotest.(check (float 1e-9)) "ee_bn at 16" 8.0 (Credit.Bounds.ee_bn_lower 16);
  Alcotest.(check (float 1e-9)) "ne_bn at 16" 2.0 (Credit.Bounds.ne_bn_lower 16);
  Alcotest.(check (float 1e-9)) "k=1 guard" 0.0 (Credit.Bounds.ee_wn_lower 1)

let suite =
  [
    case "exact minimizers on C4" test_exact_on_square;
    case "exact witnesses achieve their value" test_exact_witness_achieves;
    prop_exact_below_random_sets;
    case "annealing upper-bounds exact" test_anneal_upper_bounds;
    case "witness sizes" test_witness_sizes;
    case "witness values (Lemmas 4.1/4.4/4.7/4.10)" test_witness_values;
    case "EE witness optimal at its size in B_8" test_witnesses_are_optimal_small;
    test_credit_soundness_random;
    case "credit conservation" test_credit_conservation;
    case "credit caps (Lemmas 4.2/4.5/4.8/4.11)" test_credit_caps_respected;
    case "credit leak bound" test_credit_leak_small_for_small_sets;
    case "credit on a single node" test_credit_single_node;
    case "credit on the whole network" test_credit_whole_network_leaks;
    case "closed-form bound values" test_bounds_formulas;
  ]
