(* The CI pipeline greps bench --json documents for counter fields and
   diffs them against the committed baseline (ci.sh warm/compare stages).
   These tests pin both sides of that contract in-process:

   - the counters the gates key on keep their literal metric names, and
     solving actually ticks them into Metrics.to_json_string's output
     (which is the "metrics" field of the bench document);
   - the committed baseline document itself stays on schema bfly-bench/2
     with every field the gates read: mode, domains, experiments
     (name+output), the pre-Bechamel "gate" counter snapshot, and the
     embedded oracle summary;
   - the committed loadgen baseline (LOADGEN_*.json, schema
     bfly-loadgen/1) keeps the deterministic/timing field split the
     `loadgen --compare` latency gate reads, stays reproducible from the
     committed trace, and actually fails on an injected p99/throughput
     regression. *)

module Json = Bfly_obs.Json
module Metrics = Bfly_obs.Metrics
module Butterfly = Bfly_networks.Butterfly
open Tu

(* every counter ci.sh's extract() greps and bench --compare diffs *)
let gate_fields =
  [
    "exact.bb.nodes"; "cache.hit"; "cache.miss"; "ml.levels"; "ml.refine.moves";
    "fabric.builds"; "constructions.dimension.cuts"; "product.sandwich.checks";
    "campaign.instances"; "campaign.oracle.checks";
  ]

let counter name = Metrics.counter_value (Metrics.counter name)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_gate_counters_tick () =
  (* a fresh cache directory makes the solve's counter behaviour
     deterministic: first run misses and searches, second run hits *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bfly-benchjson-test-%d" (Unix.getpid ()))
  in
  let was_enabled = Bfly_cache.Config.enabled () in
  let old_dir = Bfly_cache.Config.dir () in
  let restore () =
    Bfly_cache.Config.set_enabled true;
    Bfly_cache.Config.set_dir dir;
    ignore (Bfly_cache.Store.clear ());
    (try Unix.rmdir dir with Unix.Unix_error _ | Sys_error _ -> ());
    Bfly_cache.Config.set_enabled was_enabled;
    Bfly_cache.Config.set_dir old_dir;
    Bfly_cache.Store.reset_memory ()
  in
  Bfly_cache.Config.set_enabled true;
  Bfly_cache.Config.set_dir dir;
  Bfly_cache.Store.reset_memory ();
  Fun.protect ~finally:restore @@ fun () ->
  let solve () =
    ignore
      (Bfly_cuts.Exact.bisection_width_supervised
         (Butterfly.graph (Butterfly.of_inputs 4)))
  in
  let nodes0 = counter "exact.bb.nodes" in
  let miss0 = counter "cache.miss" in
  solve ();
  checkb "cold exact solve ticks exact.bb.nodes" true
    (counter "exact.bb.nodes" > nodes0);
  checkb "cold exact solve misses the cache" true (counter "cache.miss" > miss0);
  let nodes1 = counter "exact.bb.nodes" in
  let hit0 = counter "cache.hit" in
  solve ();
  check "warm exact solve does not search" 0 (counter "exact.bb.nodes" - nodes1);
  checkb "warm exact solve hits the cache" true (counter "cache.hit" > hit0)

let test_metrics_json_carries_gate_fields () =
  (* to_json_string renders the bench document's "metrics" field; the sed
     pattern in ci.sh matches "NAME":INT, so the literal quoted names must
     appear *)
  let doc = Metrics.to_json_string () in
  List.iter
    (fun name ->
      checkb
        (Printf.sprintf "metrics JSON mentions %S" name)
        true
        (contains doc (Printf.sprintf "%S:" name)))
    gate_fields

(* ---- the committed baseline document ---- *)

let baseline_path =
  (* materialized in the build tree by the (deps ...) of test/dune; the
     test action runs in _build/default/test *)
  "../BENCH_2026-08-08.json"

let load_baseline () =
  let text = In_channel.with_open_text baseline_path In_channel.input_all in
  match Json.of_string text with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "baseline is not valid JSON: %s" e

let str doc k = Option.bind (Json.member k doc) Json.to_string_opt
let int_ doc k = Option.bind (Json.member k doc) Json.to_int_opt

let test_baseline_schema () =
  let doc = load_baseline () in
  Alcotest.(check (option string))
    "schema" (Some "bfly-bench/2") (str doc "schema");
  Alcotest.(check (option string)) "mode" (Some "full") (str doc "mode");
  (* the compare gate refuses to diff across pool widths, so the baseline
     must declare its own *)
  Alcotest.(check (option int)) "domains" (Some 1) (int_ doc "domains")

let test_baseline_gate_snapshot () =
  let doc = load_baseline () in
  match Json.member "gate" doc with
  | None -> Alcotest.fail "baseline has no gate object"
  | Some gate ->
      List.iter
        (fun name ->
          match int_ gate name with
          | None -> Alcotest.failf "gate snapshot lacks %s" name
          | Some v -> checkb (Printf.sprintf "%s >= 0" name) true (v >= 0))
        gate_fields;
      (* a full cold run certainly searched *)
      checkb "baseline searched" true
        (Option.value (int_ gate "exact.bb.nodes") ~default:0 > 0)

let test_baseline_experiments () =
  let doc = load_baseline () in
  match Json.member "experiments" doc with
  | Some (Json.List (_ :: _ as l)) ->
      List.iter
        (fun e ->
          match (str e "name", str e "output") with
          | Some name, Some out ->
              checkb
                (Printf.sprintf "experiment %s has output" name)
                true
                (String.length out > 0)
          | _ ->
              Alcotest.failf "experiment entry lacks name/output: %s"
                (Json.to_string e))
        l
  | _ -> Alcotest.fail "baseline has no non-empty experiments list"

let test_baseline_check_summary () =
  let doc = load_baseline () in
  match Json.member "check" doc with
  | None -> Alcotest.fail "baseline has no embedded oracle summary"
  | Some check ->
      Alcotest.(check (option string))
        "oracle tool" (Some "bfly_check") (str check "tool");
      (match Option.bind (Json.member "ok" check) Json.to_bool_opt with
      | Some true -> ()
      | _ -> Alcotest.fail "baseline oracle summary is not ok:true");
      (* fixed configuration, so smoke and full documents stay comparable *)
      Alcotest.(check (option int)) "oracle seed" (Some 42) (int_ check "seed")

(* round-trip: the values document fields ci.sh cmp's are reproducible
   through our own parser/printer (cmp compares bytes, so to_string must
   be stable under parse) *)
let test_baseline_roundtrip () =
  let text = In_channel.with_open_text baseline_path In_channel.input_all in
  match Json.of_string text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok doc -> (
      let printed = Json.to_string doc in
      match Json.of_string printed with
      | Error e -> Alcotest.failf "reparse: %s" e
      | Ok doc2 ->
          Alcotest.(check string)
            "print/parse/print is a fixed point" printed (Json.to_string doc2))

(* ---- the committed loadgen baseline (bfly-loadgen/1) ---- *)

let loadgen_baseline_path = "../LOADGEN_2026-08-08.json"
let loadgen_trace_path = "../bench/loadgen_trace.ndjson"

let load_loadgen_baseline () =
  let text =
    In_channel.with_open_text loadgen_baseline_path In_channel.input_all
  in
  match Json.of_string text with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "loadgen baseline is not valid JSON: %s" e

(* every deterministic field the loadgen --compare gate diffs, by its
   literal name; renaming one silently un-gates CI *)
let loadgen_deterministic_fields =
  [
    "seed"; "clients"; "repeat"; "requests"; "responses"; "ok"; "errors";
  ]

let loadgen_fingerprint_fields =
  [ "trace_fingerprint"; "schedule_fingerprint"; "outputs_fingerprint" ]

let loadgen_timing_fields =
  [ "wall_ns"; "p50_ns"; "p90_ns"; "p99_ns"; "max_ns" ]

let test_loadgen_baseline_schema () =
  let doc = load_loadgen_baseline () in
  Alcotest.(check (option string))
    "schema" (Some "bfly-loadgen/1") (str doc "schema");
  List.iter
    (fun name ->
      match int_ doc name with
      | None -> Alcotest.failf "baseline lacks int field %s" name
      | Some v -> checkb (Printf.sprintf "%s >= 0" name) true (v >= 0))
    loadgen_deterministic_fields;
  List.iter
    (fun name ->
      match str doc name with
      | None -> Alcotest.failf "baseline lacks fingerprint %s" name
      | Some fp -> check (name ^ " is a 64-bit hex digest") 16 (String.length fp))
    loadgen_fingerprint_fields;
  checkb "a real run: requests > 0" true
    (Option.value (int_ doc "requests") ~default:0 > 0);
  Alcotest.(check (option int))
    "every request answered" (int_ doc "requests") (int_ doc "responses");
  match Json.member "timing" doc with
  | None -> Alcotest.fail "baseline has no timing object"
  | Some t ->
      List.iter
        (fun name ->
          match int_ t name with
          | None -> Alcotest.failf "timing lacks %s" name
          | Some v -> checkb (Printf.sprintf "timing %s >= 0" name) true (v >= 0))
        loadgen_timing_fields;
      checkb "achieved_qps present and positive" true
        (match Json.member "achieved_qps" t with
        | Some (Json.Float f) -> f > 0.
        | Some (Json.Int i) -> i > 0
        | _ -> false)

(* the data-center fabric mix rides the same schema and gate; its trace
   exercises serve with product-network jobs (ml/exact/spectral on
   meshes, tori, bcubes) plus the malformed-request rejection paths *)
let dc_baseline_path = "../LOADGEN_DC_2026-08-08.json"
let dc_trace_path = "../bench/loadgen_dc_trace.ndjson"

(* the committed trace and the committed baseline describe the same
   replay: regenerating the document from the trace cannot drift its
   schedule unnoticed *)
let baseline_matches_trace ~baseline_path ~trace_path =
  let doc =
    let text = In_channel.with_open_text baseline_path In_channel.input_all in
    match Json.of_string text with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "loadgen baseline is not valid JSON: %s" e
  in
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (In_channel.with_open_text trace_path In_channel.input_lines)
  in
  Alcotest.(check (option string))
    "trace fingerprint matches committed trace"
    (Some (Bfly_serve.Loadgen.fingerprint_lines lines))
    (str doc "trace_fingerprint");
  let seed = Option.value (int_ doc "seed") ~default:0 in
  let clients = Option.value (int_ doc "clients") ~default:0 in
  let repeat = Option.value (int_ doc "repeat") ~default:0 in
  let events =
    Bfly_serve.Loadgen.schedule ~seed ~clients ~repeat ~trace:lines
  in
  Alcotest.(check (option string))
    "schedule fingerprint reproducible from (trace, seed, clients, repeat)"
    (Some (Bfly_serve.Loadgen.schedule_fingerprint events))
    (str doc "schedule_fingerprint");
  Alcotest.(check (option int))
    "request count is the schedule's length"
    (Some (Array.length events))
    (int_ doc "requests")

let test_loadgen_baseline_matches_trace () =
  baseline_matches_trace ~baseline_path:loadgen_baseline_path
    ~trace_path:loadgen_trace_path

let test_loadgen_dc_baseline_matches_trace () =
  baseline_matches_trace ~baseline_path:dc_baseline_path
    ~trace_path:dc_trace_path

(* the DC trace must actually contain fabric jobs and the malformed lines
   the serve protocol rejects — otherwise the gate stops covering the
   product-network serving path *)
let test_loadgen_dc_trace_mix () =
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (In_channel.with_open_text dc_trace_path In_channel.input_lines)
  in
  let count p = List.length (List.filter p lines) in
  checkb "has torus jobs" true (count (fun l -> contains l "torus:") >= 2);
  checkb "has mesh jobs" true (count (fun l -> contains l "mesh:") >= 2);
  checkb "has a bcube job" true (count (fun l -> contains l "bcube:") >= 1);
  checkb "has a mixed product job" true
    (count (fun l -> contains l "product:") >= 1);
  checkb "has exact solves" true (count (fun l -> contains l "exact") >= 2);
  (* every line must at least parse as JSON except the duplicate-key
     probe, which of_string accepts but the protocol screens out *)
  List.iter
    (fun l ->
      match Json.of_string l with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "unparseable trace line %s: %s" l e)
    lines;
  checkb "has a duplicate-key probe the protocol rejects" true
    (count
       (fun l ->
         match Json.of_string l with
         | Ok doc -> Json.duplicate_key doc <> None
         | Error _ -> false)
     >= 1)

(* the gate actually fires on an injected regression against the
   committed baseline — the end-to-end property ci.sh's loadgen stage
   relies on *)
let test_loadgen_baseline_gates_regression () =
  let doc = load_loadgen_baseline () in
  Alcotest.(check (list string))
    "baseline passes against itself" []
    (Bfly_serve.Loadgen.compare_docs ~baseline:doc doc);
  let degrade f =
    match doc with
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (function
               | "timing", Json.Obj tf -> ("timing", Json.Obj (List.map f tf))
               | kv -> kv)
             fields)
    | other -> other
  in
  let slow =
    degrade (function
      | "p99_ns", Json.Int v -> ("p99_ns", Json.Int (v * 10))
      | kv -> kv)
  in
  checkb "p99 x10 fails the gate" true
    (Bfly_serve.Loadgen.compare_docs ~slack:3.0 ~baseline:doc slow <> []);
  let starved =
    degrade (function
      | "achieved_qps", Json.Float v -> ("achieved_qps", Json.Float (v /. 10.))
      | "achieved_qps", Json.Int v ->
          ("achieved_qps", Json.Float (float_of_int v /. 10.))
      | kv -> kv)
  in
  checkb "throughput /10 fails the gate" true
    (Bfly_serve.Loadgen.compare_docs ~slack:3.0 ~baseline:doc starved <> []);
  checkb "no-timing mode ignores both" true
    (Bfly_serve.Loadgen.compare_docs ~timing:false ~baseline:doc slow = []
    && Bfly_serve.Loadgen.compare_docs ~timing:false ~baseline:doc starved = [])

let test_loadgen_baseline_roundtrip () =
  let text =
    In_channel.with_open_text loadgen_baseline_path In_channel.input_all
  in
  match Json.of_string text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok doc -> (
      let printed = Json.to_string doc in
      match Json.of_string printed with
      | Error e -> Alcotest.failf "reparse: %s" e
      | Ok doc2 ->
          Alcotest.(check string)
            "print/parse/print is a fixed point" printed (Json.to_string doc2))

let suite =
  [
    case "solving ticks the gate counters" test_gate_counters_tick;
    case "metrics JSON carries the grepped field names"
      test_metrics_json_carries_gate_fields;
    case "baseline: schema, mode, domains" test_baseline_schema;
    case "baseline: gate counter snapshot" test_baseline_gate_snapshot;
    case "baseline: experiments carry name+output" test_baseline_experiments;
    case "baseline: embedded oracle summary" test_baseline_check_summary;
    case "baseline: JSON round-trips byte-stably" test_baseline_roundtrip;
    case "loadgen baseline: schema and field names" test_loadgen_baseline_schema;
    case "loadgen baseline: reproducible from the committed trace"
      test_loadgen_baseline_matches_trace;
    case "loadgen DC baseline: reproducible from the committed trace"
      test_loadgen_dc_baseline_matches_trace;
    case "loadgen DC trace: fabric mix and malformed probes"
      test_loadgen_dc_trace_mix;
    case "loadgen baseline: injected regressions fail the gate"
      test_loadgen_baseline_gates_regression;
    case "loadgen baseline: JSON round-trips byte-stably"
      test_loadgen_baseline_roundtrip;
  ]
