(* The bfly_resil supervision layer: budget parsing, cancel-token
   semantics (latching, step budgets, the ambient slot), certified
   intervals from interrupted searches, checkpoint/resume determinism,
   cache-poisoning avoidance under cancellation, and fault injection —
   including chaos rounds of the differential fuzzer per fault class. *)

module Budget = Bfly_resil.Budget
module Cancel = Bfly_resil.Cancel
module Fault = Bfly_resil.Fault
module Exact = Bfly_cuts.Exact
module Heuristics = Bfly_cuts.Heuristics
module Invariants = Bfly_check.Invariants
module Store = Bfly_cache.Store
module Config = Bfly_cache.Config
module Metrics = Bfly_obs.Metrics
module B = Bfly_networks.Butterfly
open Tu

let counter name = Metrics.counter_value (Metrics.counter name)

(* Resume and chaos tests must not see (or leave) entries in whatever
   store the rest of the binary uses; same discipline as test_cache. *)
let fresh_id = ref 0

let with_fresh_cache f =
  incr fresh_id;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bfly-resil-test-%d-%d" (Unix.getpid ()) !fresh_id)
  in
  let was_enabled = Config.enabled () in
  let old_dir = Config.dir () in
  let restore () =
    Config.set_enabled true;
    Config.set_dir dir;
    ignore (Store.clear ());
    (try Unix.rmdir dir with Unix.Unix_error _ | Sys_error _ -> ());
    Config.set_enabled was_enabled;
    Config.set_dir old_dir;
    Store.reset_memory ()
  in
  Config.set_enabled true;
  Config.set_dir dir;
  Store.reset_memory ();
  match f () with
  | v ->
      restore ();
      v
  | exception e ->
      restore ();
      raise e

let pass name r =
  match r with
  | Invariants.Pass -> ()
  | Invariants.Fail m -> Alcotest.failf "%s: %s" name m

(* ---- budgets ---- *)

let wall_of s =
  match Budget.of_string s with
  | Ok b -> Budget.wall_ns b
  | Error m -> Alcotest.failf "of_string %S: %s" s m

let test_budget_parse () =
  Alcotest.(check (option int)) "250ms" (Some 250_000_000) (wall_of "250ms");
  Alcotest.(check (option int)) "1.5s" (Some 1_500_000_000) (wall_of "1.5s");
  Alcotest.(check (option int)) "2m" (Some 120_000_000_000) (wall_of "2m");
  Alcotest.(check (option int)) "1h" (Some 3_600_000_000_000) (wall_of "1h");
  Alcotest.(check (option int)) "bare number is seconds" (Some 3_000_000_000)
    (wall_of "3");
  List.iter
    (fun s ->
      match Budget.of_string s with
      | Ok _ -> Alcotest.failf "of_string %S should be rejected" s
      | Error _ -> ())
    [ ""; "abc"; "-1s"; "1.5.5s"; "10 parsecs" ];
  (* roundtrip through the printer *)
  Alcotest.(check (option int)) "to_string roundtrips" (Some 250_000_000)
    (wall_of (Budget.to_string (Budget.make ~wall_s:0.25 ())))

let test_budget_make () =
  checkb "unlimited" true (Budget.is_unlimited Budget.unlimited);
  let b = Budget.make ~steps:100 () in
  checkb "steps budget is limited" false (Budget.is_unlimited b);
  Alcotest.(check (option int)) "steps" (Some 100) (Budget.steps b);
  Alcotest.(check (option int)) "no wall" None (Budget.wall_ns b);
  List.iter
    (fun mk ->
      match mk () with
      | (_ : Budget.t) -> Alcotest.fail "non-positive budget accepted"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> Budget.make ~wall_s:0. ());
      (fun () -> Budget.make ~wall_s:(-1.) ());
      (fun () -> Budget.make ~steps:0 ());
    ]

(* ---- cancel tokens ---- *)

let test_cancel_latch () =
  let t = Cancel.create () in
  checkb "fresh token untriggered" false (Cancel.triggered t);
  Alcotest.(check (option string)) "no reason yet" None (Cancel.reason t);
  checkb "stop None" false (Cancel.stop None);
  checkb "stop untriggered" false (Cancel.stop (Some t));
  Cancel.cancel ~reason:"first" t;
  checkb "triggered" true (Cancel.triggered t);
  Cancel.cancel ~reason:"second" t;
  Alcotest.(check (option string)) "latched; first reason wins" (Some "first")
    (Cancel.reason t);
  checkb "stop triggered" true (Cancel.stop (Some t));
  Alcotest.check_raises "check raises with the reason"
    (Cancel.Cancelled "first") (fun () -> Cancel.check t)

let test_cancel_step_budget () =
  let t = Cancel.create ~budget:(Budget.make ~steps:100 ()) () in
  Cancel.add_steps t 64;
  checkb "under budget" false (Cancel.triggered t);
  Cancel.add_steps t 64;
  check "steps accumulated" 128 (Cancel.steps t);
  checkb "over budget" true (Cancel.triggered t);
  checkb "budget trigger has a reason" true (Cancel.reason t <> None)

let test_ambient () =
  Cancel.set_ambient None;
  checkb "no ambient by default" true (Cancel.resolve None = None);
  let t = Cancel.create () in
  let t2 = Cancel.create () in
  Cancel.with_ambient t (fun () ->
      (match Cancel.resolve None with
      | Some t' -> checkb "ambient resolves" true (t' == t)
      | None -> Alcotest.fail "ambient lost");
      match Cancel.resolve (Some t2) with
      | Some t' -> checkb "explicit beats ambient" true (t' == t2)
      | None -> Alcotest.fail "explicit lost");
  checkb "ambient restored" true (Cancel.ambient () = None)

(* ---- interrupted search: certified interval ---- *)

let test_interrupt_certified_interval () =
  with_fresh_cache @@ fun () ->
  let g = B.graph (B.of_inputs 8) in
  let stored0 = counter "resil.checkpoint.stored" in
  let cancel = Cancel.create ~budget:(Budget.make ~steps:64 ()) () in
  match Exact.bisection_width_supervised ~cancel g with
  | Complete _ -> Alcotest.fail "64 steps should not complete B_8"
  | Interval { lower; upper; witness; reason } ->
      checkb "a reason is reported" true (reason <> "");
      checkb "interval contains the answer" true (lower <= 8 && 8 <= upper);
      pass "certified interval"
        (Invariants.bisection_interval g ~lower ~upper ~witness);
      checkb "checkpoint stored" true
        (counter "resil.checkpoint.stored" > stored0)

(* ---- checkpoint/resume determinism ---- *)

let test_resume_equals_uninterrupted () =
  with_fresh_cache @@ fun () ->
  let g = B.graph (B.of_inputs 8) in
  let interrupted = ref 0 in
  let resumed0 = counter "resil.checkpoint.resumed" in
  (* grow the budget between resumes; per exact.mli this terminates once
     one pending subtree fits in a single run's budget *)
  let rec go steps tries =
    if tries = 0 then Alcotest.fail "budget never sufficed"
    else
      let cancel = Cancel.create ~budget:(Budget.make ~steps ()) () in
      match Exact.bisection_width_supervised ~cancel ~resume:true g with
      | Complete (v, w) ->
          pass "final cut" (Invariants.bisection_cut g ~value:v ~witness:w);
          v
      | Interval { lower; upper; witness; _ } ->
          incr interrupted;
          pass "intermediate interval"
            (Invariants.bisection_interval g ~lower ~upper ~witness);
          go (2 * steps) (tries - 1)
  in
  let v = go 64 24 in
  check "resumed run completes to the exact answer" 8 v;
  checkb "at least one run was interrupted" true (!interrupted >= 1);
  checkb "checkpoints were actually resumed" true
    (counter "resil.checkpoint.resumed" > resumed0);
  (* the cached result now served is the same exact value *)
  check "cached result agrees" 8 (fst (Exact.bisection_width g))

(* ---- cancellation never poisons the cache ---- *)

let test_cancelled_heuristic_not_cached () =
  with_fresh_cache @@ fun () ->
  let g = B.graph (B.of_inputs 4) in
  let cancel = Cancel.create () in
  Cancel.cancel ~reason:"pre-triggered" cancel;
  let v, w = Heuristics.kernighan_lin ~rng:(rng 42) ~cancel g in
  pass "degraded cut is still a real cut"
    (Invariants.bisection_cut g ~value:v ~witness:w);
  check "nothing written to the store" 0 (Store.stats ()).disk.entries;
  (* an uninterrupted run converges, and only then persists *)
  let v', _ = Heuristics.kernighan_lin ~rng:(rng 42) g in
  checkb "converged run is at least as good" true (v' <= v);
  checkb "converged run is cached" true ((Store.stats ()).disk.entries >= 1)

(* ---- fault injection ---- *)

let test_fault_units () =
  checkb "injection off by default" false (Fault.enabled ());
  checkb "disarmed kinds never fire" false (Fault.fire Fault.Worker);
  let before = Fault.injected_total () in
  Fault.scope ~rate:1.0 ~seed:3 [ Fault.Worker ] (fun () ->
      checkb "armed inside scope" true (Fault.enabled ());
      checkb "worker armed" true (Fault.active Fault.Worker);
      checkb "disk not armed" false (Fault.active Fault.Disk_io);
      checkb "rate 1.0 always fires" true (Fault.fire Fault.Worker);
      match Fault.maybe_raise Fault.Worker with
      | () -> Alcotest.fail "maybe_raise at rate 1.0 should raise"
      | exception Fault.Injected _ -> ());
  checkb "scope restores the disabled state" false (Fault.enabled ());
  checkb "injections were counted" true (Fault.injected_total () > before);
  (match Fault.configure ~rate:1.5 ~seed:0 [] with
  | () -> Alcotest.fail "rate 1.5 accepted"
  | exception Invalid_argument _ -> ());
  let s = "some cached payload" in
  let c = Fault.corrupt s in
  checkb "corrupt changes the bytes" true (c <> s);
  check "corrupt keeps the length" (String.length s) (String.length c)

let test_injected_deadline () =
  Fault.scope ~rate:1.0 ~seed:4 [ Fault.Deadline ] (fun () ->
      let t = Cancel.create () in
      checkb "token reports spurious expiry" true (Cancel.triggered t);
      checkb "with a reason" true (Cancel.reason t <> None))

(* ---- chaos rounds of the differential fuzzer, per fault class ---- *)

let test_chaos_fuzzer_per_class () =
  with_fresh_cache @@ fun () ->
  List.iteri
    (fun i kind ->
      let name = Fault.kind_name kind in
      let summary =
        Fault.scope ~rate:0.1 ~seed:(100 + i) [ kind ] (fun () ->
            Bfly_check.Fuzzer.run ~chaos:true ~seed:(200 + i) ~rounds:3 ())
      in
      check (name ^ ": no verdict changed") 0 summary.Bfly_check.Fuzzer.failed;
      checkb (name ^ ": pool intact") true summary.Bfly_check.Fuzzer.pool_stable;
      checkb (name ^ ": chaos flagged") true summary.Bfly_check.Fuzzer.chaos)
    Fault.all

let suite =
  [
    case "budget parsing" test_budget_parse;
    case "budget construction" test_budget_make;
    case "cancel tokens latch" test_cancel_latch;
    case "step budgets trigger" test_cancel_step_budget;
    case "ambient token resolution" test_ambient;
    case "interrupt yields a certified interval" test_interrupt_certified_interval;
    slow_case "resume completes to the uninterrupted answer"
      test_resume_equals_uninterrupted;
    case "cancelled heuristic is not cached" test_cancelled_heuristic_not_cached;
    case "fault injection units" test_fault_units;
    case "injected deadline expiry" test_injected_deadline;
    slow_case "chaos fuzzer survives every fault class"
      test_chaos_fuzzer_per_class;
  ]
