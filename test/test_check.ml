(* The oracle layer itself: reference implementations against the
   optimized solvers, invariant validators on good and deliberately bad
   claims, and the fuzzer — both that it is deterministic and that it
   actually catches a broken solver with a fully shrunk counterexample. *)

module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module Exact = Bfly_cuts.Exact
module Heuristics = Bfly_cuts.Heuristics
module E = Bfly_expansion.Expansion
module Ref = Bfly_check.Reference
module Inv = Bfly_check.Invariants
module Oracle = Bfly_check.Oracle
module Fuzzer = Bfly_check.Fuzzer
module Bounds = Bfly_check.Bounds
module B = Bfly_networks.Butterfly
module W = Bfly_networks.Wrapped
module Ccc = Bfly_networks.Ccc
open Tu

(* ---- reference implementations ---- *)

let test_reference_known () =
  let square = G.of_edge_list ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let v, side = Ref.bisection_width square in
  check "square bw" 2 v;
  checkb "witness validates" true
    (Inv.is_pass (Inv.bisection_cut square ~value:v ~witness:side));
  let k5 = Bfly_networks.Complete.k_n 5 in
  check "K5 bw" 6 (fst (Ref.bisection_width k5));
  let path = G.of_edge_list ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  check "EE(path,1) endpoints" 1 (fst (Ref.edge_expansion path ~k:1));
  check "NE(path,2)" 1 (fst (Ref.node_expansion path ~k:2))

let prop_exact_agrees_reference =
  qcheck ~count:40 "exact solver agrees with the reference, witnesses valid"
    (seeded QCheck2.Gen.(pair (int_range 4 12) (int_range 0 16)))
    (fun ((n, extra), seed) ->
      let g = random_graph ~rng:(rng seed) n ~extra_edges:extra in
      let v, side = Exact.bisection_width g in
      let v', side' = Ref.bisection_width g in
      v = v'
      && Inv.is_pass (Inv.bisection_cut g ~value:v ~witness:side)
      && Inv.is_pass (Inv.bisection_cut g ~value:v' ~witness:side'))

let prop_expansion_agrees_reference =
  qcheck ~count:25 "parallel expansion enumerators agree with the reference"
    (seeded QCheck2.Gen.(pair (int_range 4 10) (int_range 1 4)))
    (fun ((n, k), seed) ->
      let k = min k (n - 1) in
      let g = random_graph ~rng:(rng seed) n ~extra_edges:n in
      let ee, se = E.ee_exact g ~k in
      let ne, sn = E.ne_exact g ~k in
      ee = fst (Ref.edge_expansion g ~k)
      && ne = fst (Ref.node_expansion g ~k)
      && Inv.is_pass (Inv.expansion_witness ~kind:`Edge g ~k ~value:ee ~witness:se)
      && Inv.is_pass (Inv.expansion_witness ~kind:`Node g ~k ~value:ne ~witness:sn))

(* ---- cross-solver agreement on the paper's families ---- *)

let family_agrees g known_bw =
  let exact, exact_side = Exact.bisection_width ~upper_bound:known_bw g in
  check "exact matches the lemma" known_bw exact;
  checkb "exact witness valid" true
    (Inv.is_pass (Inv.bisection_cut g ~value:exact ~witness:exact_side));
  let c, side, _ = Heuristics.best_of g in
  checkb "portfolio >= exact" true (c >= exact);
  checkb "portfolio witness valid" true
    (Inv.is_pass (Inv.bisection_cut g ~value:c ~witness:side))

let test_families_small () =
  family_agrees (B.graph (B.create ~log_n:2)) 4;
  family_agrees (W.graph (W.create ~log_n:2)) 4;
  family_agrees (Ccc.graph (Ccc.create ~log_n:2)) 2

let test_families_log_n_3 () =
  family_agrees (B.graph (B.create ~log_n:3)) 8;
  family_agrees (W.graph (W.create ~log_n:3)) 8;
  family_agrees (Ccc.graph (Ccc.create ~log_n:3)) 4

(* ---- invariant validators reject bad claims ---- *)

let test_invariants_reject () =
  let square = G.of_edge_list ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let side = Bitset.of_list 4 [ 0; 1 ] in
  checkb "true claim passes" true
    (Inv.is_pass (Inv.bisection_cut square ~value:2 ~witness:side));
  checkb "wrong value fails" false
    (Inv.is_pass (Inv.bisection_cut square ~value:1 ~witness:side));
  checkb "unbalanced witness fails" false
    (Inv.is_pass
       (Inv.bisection_cut square ~value:3 ~witness:(Bitset.of_list 4 [ 0 ])));
  checkb "wrong expansion value fails" false
    (Inv.is_pass
       (Inv.expansion_witness ~kind:`Edge square ~k:2 ~value:0
          ~witness:(Bitset.of_list 4 [ 0; 1 ])));
  checkb "wrong witness size fails" false
    (Inv.is_pass
       (Inv.expansion_witness ~kind:`Edge square ~k:3 ~value:2
          ~witness:(Bitset.of_list 4 [ 0; 1 ])));
  checkb "walks pass" true
    (Inv.is_pass (Inv.paths_are_walks square [| [ 0; 1; 2 ]; [ 3 ] |]));
  checkb "non-edge hop fails" false
    (Inv.is_pass (Inv.paths_are_walks square [| [ 0; 2 ] |]));
  checkb "empty path fails" false
    (Inv.is_pass (Inv.paths_are_walks square [| [] |]));
  (* [all] reports the first failure *)
  (match Inv.all [ Inv.Pass; Inv.Fail "first"; Inv.Fail "second" ] with
  | Inv.Fail m -> Alcotest.(check string) "first failure wins" "first" m
  | Inv.Pass -> Alcotest.fail "expected a failure")

let test_embedding_checks () =
  let e = Bfly_embed.Classic.knn_into_butterfly (B.create ~log_n:2) in
  checkb "classic embedding revalidates" true (Inv.is_pass (Inv.embedding e));
  let l, c, d = Ref.embedding_measures e in
  check "recounted load" (Bfly_embed.Embedding.load e) l;
  check "recounted congestion" (Bfly_embed.Embedding.congestion e) c;
  check "recounted dilation" (Bfly_embed.Embedding.dilation e) d

(* ---- the fuzzer ---- *)

let test_fuzzer_deterministic () =
  let a = Fuzzer.run ~seed:7 ~rounds:6 () in
  let b = Fuzzer.run ~seed:7 ~rounds:6 () in
  Alcotest.(check string)
    "same seed, same summary"
    (Bfly_obs.Json.to_string (Fuzzer.summary_json a))
    (Bfly_obs.Json.to_string (Fuzzer.summary_json b));
  check "no failures on the real solvers" 0 a.Fuzzer.failed;
  checkb "oracles actually ran" true (a.Fuzzer.passed > 0)

let test_fuzzer_catches_broken_solver () =
  (* a solver with a pretend off-by-one: wrong on every instance that has
     an edge. The fuzzer must flag it and shrink each counterexample all
     the way down to the minimal failing instance: two nodes, one edge. *)
  let broken =
    {
      Oracle.name = "broken-off-by-one";
      run =
        (fun ~rng:_ g ->
          if G.n_edges g > 0 then Oracle.Fail "reports one below the optimum"
          else Oracle.Pass);
    }
  in
  let s = Fuzzer.run ~oracles:[ broken ] ~seed:3 ~rounds:8 () in
  checkb "failures detected" true (s.Fuzzer.failed > 0);
  check "one counterexample per failure" s.Fuzzer.failed
    (List.length s.Fuzzer.counterexamples);
  List.iter
    (fun cx ->
      check "shrunk to two nodes" 2 cx.Fuzzer.n;
      Alcotest.(check (list (pair int int)))
        "shrunk to a single edge" [ (0, 1) ] cx.Fuzzer.edges;
      checkb "shrinking did some work" true (cx.Fuzzer.shrink_steps > 0);
      Alcotest.(check string)
        "oracle named" "broken-off-by-one" cx.Fuzzer.oracle)
    s.Fuzzer.counterexamples

(* ---- theorem oracles and the CLI entry point ---- *)

let test_bounds_smoke () =
  List.iter
    (fun c ->
      if not c.Bounds.ok then
        Alcotest.failf "bound check %s failed: %s" c.Bounds.name c.Bounds.detail)
    (Bounds.all ~smoke:true)

let test_run_execute_smoke () =
  let json, ok = Bfly_check.Run.execute ~seed:1 ~rounds:2 ~smoke:true () in
  checkb "smoke run passes" true ok;
  let s = Bfly_obs.Json.to_string json in
  checkb "summary mentions the tool" true
    (String.length s > 0
    &&
    let re = "\"tool\"" in
    let rec find i =
      i + String.length re <= String.length s
      && (String.sub s i (String.length re) = re || find (i + 1))
    in
    find 0)

let suite =
  [
    case "reference values on known graphs" test_reference_known;
    prop_exact_agrees_reference;
    prop_expansion_agrees_reference;
    case "families log n = 2: heuristics vs exact" test_families_small;
    slow_case "families log n = 3: heuristics vs exact" test_families_log_n_3;
    case "invariants reject bad claims" test_invariants_reject;
    case "embedding revalidation" test_embedding_checks;
    case "fuzzer is deterministic" test_fuzzer_deterministic;
    case "fuzzer catches a broken solver" test_fuzzer_catches_broken_solver;
    case "theorem bounds (smoke)" test_bounds_smoke;
    case "check entry point (smoke)" test_run_execute_smoke;
  ]
