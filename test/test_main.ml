let () =
  Alcotest.run "butterfly_networks"
    [
      ("bitset", Test_bitset.suite);
      ("graph-substrate", Test_graph_substrate.suite);
      ("parallel-pool", Test_parallel.suite);
      ("obs", Test_obs.suite);
      ("graph", Test_graph.suite);
      ("butterfly", Test_butterfly.suite);
      ("wrapped-and-ccc", Test_wrapped_ccc.suite);
      ("networks-misc", Test_networks_misc.suite);
      ("multibutterfly", Test_multibutterfly.suite);
      ("cuts", Test_cuts.suite);
      ("multilevel", Test_multilevel.suite);
      ("kernels", Test_kernels.suite);
      ("cache", Test_cache.suite);
      ("resil", Test_resil.suite);
      ("flow-and-layout", Test_flow_layout.suite);
      ("generators", Test_generators.suite);
      ("product-networks", Test_product.suite);
      ("level-cut", Test_level_cut.suite);
      ("constructions", Test_constructions.suite);
      ("mos-analysis", Test_mos_analysis.suite);
      ("embeddings", Test_embed.suite);
      ("rearrange", Test_rearrange.suite);
      ("expansion", Test_expansion.suite);
      ("routing", Test_routing.suite);
      ("check", Test_check.suite);
      ("campaign", Test_campaign.suite);
      ("serve", Test_serve.suite);
      ("loadgen", Test_loadgen.suite);
      ("bench-json", Test_bench_json.suite);
      ("core", Test_core.suite);
      ("integration", Test_integration.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("traverse-extra", Test_traverse_extra.suite);
      ("final", Test_final.suite);
    ]
