(* Differential tests for the word-parallel cut kernels: every fast path
   (SWAR popcounts, packed-endpoint cut counting, Bigarray gain buckets,
   arena reuse) is checked bit-for-bit against a naive per-edge / per-bit
   reference, with explicit coverage of the 63-bit word boundaries (the
   last partial word, capacities of exactly 1/63/64/126 bits, and bit 62 —
   the native sign bit). *)

open Tu
module Cut = Bfly_cuts.Cut
module Gain = Bfly_cuts.Gain
module Arena = Bfly_cuts.Arena
module Traverse = Bfly_graph.Traverse

(* the reference the kernels must reproduce exactly: one membership test
   per edge endpoint, straight off the public bitset API *)
let naive_cut g side =
  let c = ref 0 in
  G.iter_edges g (fun u v ->
      if Bitset.mem side u <> Bitset.mem side v then incr c);
  !c

let naive_cardinal s =
  let c = ref 0 in
  for i = 0 to Bitset.capacity s - 1 do
    if Bitset.mem s i then incr c
  done;
  !c

(* capacities that straddle the 63-bit word layout *)
let boundary_sizes = [ 1; 2; 62; 63; 64; 125; 126; 127; 189 ]

let test_popcount_word_exhaustive_bits () =
  (* every single-bit word, including bit 62 = the sign bit *)
  for b = 0 to 62 do
    check (Printf.sprintf "popcount of bit %d" b) 1
      (Bitset.popcount_word (1 lsl b))
  done;
  check "popcount 0" 0 (Bitset.popcount_word 0);
  (* all 63 bits of a native int set: the word is -1, and bit 62 makes
     the word negative without perturbing the count *)
  check "popcount of all 63 bits" 63 (Bitset.popcount_word (-1));
  check "popcount max_int" 62 (Bitset.popcount_word max_int)

let prop_popcount_word =
  qcheck ~count:500 "SWAR popcount matches bit loop"
    (seeded QCheck2.Gen.unit)
    (fun ((), seed) ->
      let rng = rng seed in
      (* random 63-bit word, bias toward dense and sparse extremes *)
      let w =
        match Random.State.int rng 3 with
        | 0 -> Int64.to_int (Random.State.bits64 rng)
        | 1 -> (1 lsl Random.State.int rng 63) lor (1 lsl Random.State.int rng 63)
        | _ -> lnot (1 lsl Random.State.int rng 63)
      in
      let naive = ref 0 in
      for b = 0 to 62 do
        if (w lsr b) land 1 = 1 then incr naive
      done;
      Bitset.popcount_word w = !naive)

let prop_cardinal_and_boundaries =
  qcheck ~count:300 "word-wise cardinal/fill/complement respect the tail"
    (seeded QCheck2.Gen.(pair (int_range 1 200) (list (int_bound 199))))
    (fun ((n, elts), seed) ->
      ignore seed;
      let s = Bitset.create n in
      List.iter (fun e -> if e < n then Bitset.add s e) elts;
      let ok1 = Bitset.cardinal s = naive_cardinal s in
      let c = Bitset.complement s in
      let ok2 = Bitset.cardinal c = n - Bitset.cardinal s in
      Bitset.fill s;
      let ok3 = Bitset.cardinal s = n in
      (* tail bits must stay zero after word-wise fill/complement, or the
         popcount kernels overcount: re-derive via the naive reference *)
      ok1 && ok2 && ok3 && naive_cardinal s = n && naive_cardinal c = Bitset.cardinal c)

let test_cardinal_boundary_sizes () =
  List.iter
    (fun n ->
      let s = Bitset.create n in
      Bitset.fill s;
      check (Printf.sprintf "fill cardinal n=%d" n) n (Bitset.cardinal s);
      let e = Bitset.complement s in
      check (Printf.sprintf "complement of full n=%d" n) 0 (Bitset.cardinal e);
      let f = Bitset.complement e in
      check (Printf.sprintf "double complement n=%d" n) n (Bitset.cardinal f);
      if n > 1 then begin
        Bitset.remove s (n - 1);
        check
          (Printf.sprintf "last-bit remove n=%d" n)
          (n - 1) (Bitset.cardinal s)
      end)
    boundary_sizes

let prop_inter_cardinal =
  qcheck ~count:300 "inter_cardinal equals naive intersection count"
    (seeded QCheck2.Gen.(pair (int_range 1 200) (pair (list (int_bound 199)) (list (int_bound 199)))))
    (fun ((n, (ea, eb)), seed) ->
      ignore seed;
      let a = Bitset.create n and b = Bitset.create n in
      List.iter (fun e -> if e < n then Bitset.add a e) ea;
      List.iter (fun e -> if e < n then Bitset.add b e) eb;
      let naive = ref 0 in
      for i = 0 to n - 1 do
        if Bitset.mem a i && Bitset.mem b i then incr naive
      done;
      Bitset.inter_cardinal a b = !naive)

let prop_iter_ascending =
  qcheck ~count:300 "ntz-based iter yields members ascending, exactly once"
    (seeded QCheck2.Gen.(pair (int_range 1 200) (list (int_bound 199))))
    (fun ((n, elts), seed) ->
      ignore seed;
      let s = Bitset.create n in
      List.iter (fun e -> if e < n then Bitset.add s e) elts;
      let seen = ref [] in
      Bitset.iter s (fun i -> seen := i :: !seen);
      let got = List.rev !seen in
      let expect = ref [] in
      for i = n - 1 downto 0 do
        if Bitset.mem s i then expect := i :: !expect
      done;
      got = !expect)

let prop_cut_size_matches_naive =
  qcheck ~count:300 "packed-endpoint cut_size equals per-edge reference"
    (seeded QCheck2.Gen.(pair (int_range 2 200) (list (int_bound 199))))
    (fun ((n, elts), seed) ->
      let rng = rng seed in
      let g = random_graph ~rng n ~extra_edges:(2 * n) in
      let side = Bitset.create n in
      List.iter (fun e -> if e < n then Bitset.add side e) elts;
      G.cut_size g side = naive_cut g side)

let test_cut_size_boundary_sizes () =
  (* paths across word boundaries: the cut of a prefix side of a path is
     exactly the number of side borders, easy to enumerate *)
  List.iter
    (fun n ->
      if n >= 2 then begin
        let g =
          G.of_edge_list ~n (List.init (n - 1) (fun i -> (i, i + 1)))
        in
        for k = 0 to min n 4 do
          let side = Bitset.create n in
          for i = 0 to k - 1 do
            Bitset.add side i
          done;
          let expected = if k = 0 || k = n then 0 else 1 in
          check
            (Printf.sprintf "path prefix cut n=%d k=%d" n k)
            expected (G.cut_size g side)
        done;
        (* alternating side: every edge is cut *)
        let alt = Bitset.create n in
        for i = 0 to n - 1 do
          if i land 1 = 0 then Bitset.add alt i
        done;
        check
          (Printf.sprintf "alternating cut n=%d" n)
          (n - 1) (G.cut_size g alt)
      end)
    boundary_sizes

let prop_state_flip_sequences =
  qcheck ~count:300 "incremental flips track the word-parallel recount"
    (seeded QCheck2.Gen.(pair (int_range 2 150) (list (int_bound 149))))
    (fun ((n, flips), seed) ->
      let rng = rng seed in
      let g = random_graph ~rng n ~extra_edges:(3 * n) in
      let side = random_subset ~rng n (n / 2) in
      let st = Cut.State.create g side in
      List.for_all
        (fun v ->
          let v = v mod n in
          Cut.State.flip st v;
          Cut.State.capacity st
          = Traverse.boundary_edges g (Cut.State.side st))
        flips)

(* ------------------------------------------------------------------ *)
(* Gain buckets: Bigarray structure vs a naive recency-list model      *)
(* ------------------------------------------------------------------ *)

(* Model: newest-first list of (node, gain). Bucket LIFO order means the
   peek winner is the newest element among those of maximal gain. *)
module Model = struct
  type t = (int * int) list ref

  let create () : t = ref []
  let mem (m : t) v = List.mem_assoc v !m
  let insert (m : t) v g = m := (v, g) :: !m
  let remove (m : t) v = m := List.filter (fun (u, _) -> u <> v) !m

  let update (m : t) v g =
    (* the structure relinks only when the gain changes, which keeps the
       node's recency position otherwise *)
    if List.assoc v !m <> g then begin
      remove m v;
      insert m v g
    end

  let peek (m : t) =
    match !m with
    | [] -> None
    | l ->
        let gmax = List.fold_left (fun acc (_, g) -> max acc g) min_int l in
        Some (fst (List.find (fun (_, g) -> g = gmax) l), gmax)

  let cardinal (m : t) = List.length !m
end

(* one random op applied to both structure and model; ops are encoded as
   ints so qcheck can shrink the sequence *)
let apply_op gain model ~n ~max_gain op =
  let v = op mod n and kind = (op / n) mod 4 in
  let g = (op mod ((2 * max_gain) + 1)) - max_gain in
  match kind with
  | 0 ->
      if not (Gain.mem gain v) then begin
        Gain.insert gain v g;
        Model.insert model v g
      end
  | 1 ->
      if Gain.mem gain v then begin
        Gain.remove gain v;
        Model.remove model v
      end
  | 2 ->
      if Gain.mem gain v then begin
        Gain.update gain v g;
        Model.update model v g
      end
  | _ -> (
      match (Gain.pop gain, Model.peek model) with
      | None, None -> ()
      | Some (pv, pg), Some (mv, mg) when pv = mv && pg = mg ->
          Model.remove model pv
      | _ -> failwith "pop mismatch")

let run_ops gain model ~n ~max_gain ops =
  List.iter (fun op -> apply_op gain model ~n ~max_gain (abs op)) ops;
  (* final agreement: membership, gains, cardinal, and drain order *)
  let ok = ref (Gain.cardinal gain = Model.cardinal model) in
  for v = 0 to n - 1 do
    if Gain.mem gain v <> Model.mem model v then ok := false
    else if Gain.mem gain v && Gain.gain gain v <> List.assoc v !model then
      ok := false
  done;
  let continue = ref true in
  while !continue do
    match (Gain.pop gain, Model.peek model) with
    | None, None -> continue := false
    | Some (pv, pg), Some (mv, mg) when pv = mv && pg = mg ->
        Model.remove model pv
    | _ ->
        ok := false;
        continue := false
  done;
  !ok

let prop_gain_matches_model =
  qcheck ~count:300 "Bigarray gain buckets match the recency-list model"
    (seeded QCheck2.Gen.(pair (int_range 1 40) (list (int_bound 100000))))
    (fun ((n, ops), seed) ->
      ignore seed;
      let max_gain = 6 in
      let gain = Gain.create ~max_gain n in
      let model = Model.create () in
      run_ops gain model ~n ~max_gain ops)

let prop_gain_reset_is_fresh =
  qcheck ~count:200 "a reset gain structure behaves like a fresh create"
    (seeded
       QCheck2.Gen.(
         pair
           (pair (int_range 1 40) (list (int_bound 100000)))
           (pair (int_range 1 70) (list (int_bound 100000)))))
    (fun (((n1, ops1), (n2, ops2)), seed) ->
      ignore seed;
      (* dirty the structure with one workload, reset to different
         dimensions, then require model agreement on a second workload *)
      let gain = Gain.create ~max_gain:5 n1 in
      let model1 = Model.create () in
      ignore (run_ops gain model1 ~n:n1 ~max_gain:5 ops1);
      Gain.reset gain ~max_gain:8 n2;
      let model2 = Model.create () in
      run_ops gain model2 ~n:n2 ~max_gain:8 ops2)

let test_gain_invalid_args_preserved () =
  let g = Gain.create ~max_gain:2 4 in
  Alcotest.check_raises "out-of-range gain"
    (Invalid_argument "Gain.insert: gain out of range") (fun () ->
      Gain.insert g 0 3);
  Gain.insert g 0 1;
  Alcotest.check_raises "double insert"
    (Invalid_argument "Gain.insert: node already enqueued") (fun () ->
      Gain.insert g 0 0);
  Alcotest.check_raises "remove of absent"
    (Invalid_argument "Gain.remove: node not enqueued") (fun () ->
      Gain.remove g 1)

(* ------------------------------------------------------------------ *)
(* Arena: acquisition must be observationally fresh                    *)
(* ------------------------------------------------------------------ *)

let test_arena_reuse_is_clean () =
  let arena = Arena.create () in
  let a = Arena.ints arena ~slot:0 10 in
  Array.fill a 0 (Array.length a) 7;
  let b = Arena.ints arena ~slot:0 10 in
  checkb "same buffer reused" true (a == b);
  checkb "zeroed on reacquisition" true (Array.for_all (fun x -> x = 0) b);
  let s = Arena.set arena ~slot:0 100 in
  Bitset.add s 42;
  let s' = Arena.set arena ~slot:0 100 in
  checkb "same bitset reused" true (s == s');
  checkb "cleared on reacquisition" true (Bitset.is_empty s');
  (* distinct slots and capacities are distinct buffers *)
  let t = Arena.set arena ~slot:1 100 in
  checkb "slots are independent" true (not (t == s'));
  let u = Arena.set arena ~slot:0 101 in
  checkb "capacities are independent" true (not (u == s'))

let test_arena_growth_keeps_contents_disjoint () =
  let arena = Arena.create () in
  let a = Arena.raw_ints arena ~slot:3 4 in
  checkb "raw buffer at least requested" true (Array.length a >= 4);
  let b = Arena.raw_ints arena ~slot:3 4096 in
  checkb "grown buffer at least requested" true (Array.length b >= 4096)

let suite =
  [
    case "popcount single bits" test_popcount_word_exhaustive_bits;
    prop_popcount_word;
    prop_cardinal_and_boundaries;
    case "boundary capacities" test_cardinal_boundary_sizes;
    prop_inter_cardinal;
    prop_iter_ascending;
    prop_cut_size_matches_naive;
    case "path cuts at word boundaries" test_cut_size_boundary_sizes;
    prop_state_flip_sequences;
    prop_gain_matches_model;
    prop_gain_reset_is_fresh;
    case "gain invalid arguments" test_gain_invalid_args_preserved;
    case "arena reuse is clean" test_arena_reuse_is_clean;
    case "arena growth" test_arena_growth_keeps_contents_disjoint;
  ]
