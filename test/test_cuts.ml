module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module Cut = Bfly_cuts.Cut
module Exact = Bfly_cuts.Exact
module Heuristics = Bfly_cuts.Heuristics
module B = Bfly_networks.Butterfly
module W = Bfly_networks.Wrapped
open Tu

let square () = G.of_edge_list ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ]

(* ---- Cut basics ---- *)

let test_capacity () =
  let g = square () in
  let c = Cut.make g (Bitset.of_list 4 [ 0; 1 ]) in
  check "capacity" 2 (Cut.capacity c);
  check "side size" 2 (Cut.side_size c);
  checkb "bisection" true (Cut.is_bisection c);
  let c2 = Cut.make g (Bitset.of_list 4 [ 0 ]) in
  checkb "not a bisection" false (Cut.is_bisection c2)

let test_capacity_multigraph () =
  let g = G.of_edge_list ~n:2 [ (0, 1); (0, 1); (0, 1) ] in
  let c = Cut.make g (Bitset.of_list 2 [ 0 ]) in
  check "multiplicity counted" 3 (Cut.capacity c)

let test_bisects () =
  let g = square () in
  let u = Bitset.of_list 4 [ 0; 1; 2 ] in
  checkb "bisects odd set 2-1" true (Cut.bisects (Cut.make g (Bitset.of_list 4 [ 0; 1 ])) u);
  checkb "does not bisect 3-0" false (Cut.bisects (Cut.make g (Bitset.of_list 4 [ 0; 1; 2 ])) u)

let test_cut_edges () =
  let g = square () in
  let c = Cut.make g (Bitset.of_list 4 [ 0; 1 ]) in
  Alcotest.(check (list (pair int int))) "cut edges" [ (0, 3); (1, 2) ] (Cut.cut_edges c)

(* ---- incremental state ---- *)

let test_state_flip () =
  let g = square () in
  let st = Cut.State.create g (Bitset.of_list 4 [ 0; 1 ]) in
  check "initial cap" 2 (Cut.State.capacity st);
  check "gain of 0" 0 (Cut.State.gain st 0);
  Cut.State.flip st 0;
  check "cap after flip" 2 (Cut.State.capacity st);
  check "side size" 1 (Cut.State.side_size st);
  checkb "membership flipped" false (Cut.State.in_side st 0)

let prop_state_matches_recompute =
  qcheck ~count:200 "state capacity/gains match recomputation after flips"
    (seeded QCheck2.Gen.(pair (int_range 3 20) (list (int_bound 19))))
    (fun ((n, flips), seed) ->
      let rng = rng seed in
      let g = random_graph ~rng n ~extra_edges:(2 * n) in
      let side = random_subset ~rng n (n / 2) in
      let st = Cut.State.create g side in
      List.iter (fun v -> if v < n then Cut.State.flip st v) flips;
      let expected =
        Bfly_graph.Traverse.boundary_edges g (Cut.State.side st)
      in
      Cut.State.capacity st = expected
      && (let ok = ref true in
          for v = 0 to n - 1 do
            Cut.State.flip st v;
            let after = Bfly_graph.Traverse.boundary_edges g (Cut.State.side st) in
            Cut.State.flip st v;
            if expected - after <> Cut.State.gain st v then ok := false
          done;
          !ok))

(* ---- exact solvers ---- *)

let test_exhaustive_on_known () =
  check "square bw" 2 (fst (Exact.bisection_width_exhaustive (square ())));
  let k5 = Bfly_networks.Complete.k_n 5 in
  check "K5 bw" 6 (fst (Exact.bisection_width_exhaustive k5))

let test_bb_matches_exhaustive_small_nets () =
  List.iter
    (fun g ->
      let e, se = Exact.bisection_width_exhaustive g in
      let b, sb = Exact.bisection_width g in
      check "bb = exhaustive" e b;
      (* witnesses actually achieve the value and are balanced *)
      check "exhaustive witness" e (Cut.capacity (Cut.make g se));
      check "bb witness" b (Cut.capacity (Cut.make g sb));
      checkb "balanced" true (Cut.is_bisection (Cut.make g sb)))
    [
      B.graph (B.of_inputs 4);
      W.graph (W.of_inputs 4);
      Bfly_networks.Ccc.graph (Bfly_networks.Ccc.create ~log_n:2);
      Bfly_networks.Hypercube.graph (Bfly_networks.Hypercube.create ~dim:4);
    ]

let prop_bb_matches_brute =
  qcheck ~count:60 "branch and bound equals brute force on random graphs"
    (seeded QCheck2.Gen.(pair (int_range 4 12) (int_range 0 18)))
    (fun ((n, extra), seed) ->
      let g = random_graph ~rng:(rng seed) n ~extra_edges:extra in
      fst (Exact.bisection_width g) = brute_bw g)

let test_u_bisection () =
  (* minimize capacity while bisecting only the two middle nodes of a path *)
  let g = G.of_edge_list ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let u = Bitset.of_list 4 [ 1; 2 ] in
  let c, side = Exact.bisection_width ~u g in
  check "U-bisection capacity" 1 c;
  checkb "bisects U" true (Cut.bisects (Cut.make g side) u)

let test_u_bisection_exhaustive_matches () =
  let rng = rng 5 in
  for _ = 1 to 20 do
    let n = 6 + Random.State.int rng 6 in
    let g = random_graph ~rng n ~extra_edges:n in
    let u = random_subset ~rng n (2 + Random.State.int rng (n - 2)) in
    let e, _ = Exact.bisection_width_exhaustive ~u g in
    let b, _ = Exact.bisection_width ~u g in
    check "u-bisection: bb = exhaustive" e b
  done

let test_upper_bound_priming () =
  let g = B.graph (B.of_inputs 4) in
  let c, _ = Exact.bisection_width ~upper_bound:4 g in
  check "primed search still exact" 4 c

let test_known_bisection_widths () =
  (* Lemma 3.2 and 3.3 at the smallest sizes, plus hypercube *)
  check "BW(W_8) = 8" 8 (fst (Exact.bisection_width (W.graph (W.of_inputs 8))));
  check "BW(CCC_8) = 4" 4
    (fst (Exact.bisection_width (Bfly_networks.Ccc.graph (Bfly_networks.Ccc.create ~log_n:3))));
  check "BW(Q_4) = 8" 8
    (fst (Exact.bisection_width (Bfly_networks.Hypercube.graph (Bfly_networks.Hypercube.create ~dim:4))))

let test_bw_b8_is_8 () =
  (* the headline small case: the folklore value n is exact at n = 8; the
     2(sqrt 2 - 1)n asymptotics only bites for large n *)
  check "BW(B_8) = 8" 8 (fst (Exact.bisection_width ~upper_bound:8 (B.graph (B.of_inputs 8))))

(* ---- heuristics ---- *)

let heuristic_ok name run =
  qcheck ~count:30 (name ^ " returns balanced cuts no better than optimal")
    (seeded QCheck2.Gen.(pair (int_range 4 14) (int_range 2 20)))
    (fun ((n, extra), seed) ->
      let g = random_graph ~rng:(rng seed) n ~extra_edges:extra in
      let c, side = run g in
      let cut = Cut.make g side in
      Cut.is_bisection cut && Cut.capacity cut = c && c >= brute_bw g)

let prop_kl = heuristic_ok "kernighan-lin" (fun g -> Heuristics.kernighan_lin g)
let prop_fm = heuristic_ok "fiduccia-mattheyses" (fun g -> Heuristics.fiduccia_mattheyses g)
let prop_spectral = heuristic_ok "spectral" (fun g -> Heuristics.spectral g)
let prop_sa = heuristic_ok "annealing" (fun g -> Heuristics.annealing ~steps:20_000 g)

let test_heuristics_find_optimum_on_easy () =
  (* on the 4-cycle and on B_4 every heuristic should reach the optimum *)
  List.iter
    (fun (g, opt) ->
      check "kl optimal" opt (fst (Heuristics.kernighan_lin g));
      check "fm optimal" opt (fst (Heuristics.fiduccia_mattheyses g));
      check "spectral optimal" opt (fst (Heuristics.spectral g));
      check "best_of optimal" opt
        (let c, _, _ = Heuristics.best_of g in
         c))
    [ (square (), 2); (B.graph (B.of_inputs 4), 4) ]

let suite =
  [
    case "capacity and balance" test_capacity;
    case "multigraph capacity" test_capacity_multigraph;
    case "bisects predicate" test_bisects;
    case "cut edges" test_cut_edges;
    case "state flip" test_state_flip;
    prop_state_matches_recompute;
    case "exhaustive on known graphs" test_exhaustive_on_known;
    case "bb = exhaustive on small networks" test_bb_matches_exhaustive_small_nets;
    prop_bb_matches_brute;
    case "U-bisection" test_u_bisection;
    case "U-bisection: bb = exhaustive randomized" test_u_bisection_exhaustive_matches;
    case "upper-bound priming" test_upper_bound_priming;
    case "known bisection widths (Lemmas 3.2, 3.3)" test_known_bisection_widths;
    slow_case "BW(B_8) = 8 exactly" test_bw_b8_is_8;
    prop_kl;
    prop_fm;
    prop_spectral;
    prop_sa;
    case "heuristics reach optimum on easy instances" test_heuristics_find_optimum_on_easy;
  ]
