(* Edge cases and determinism guarantees across the library. *)

module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module B = Bfly_networks.Butterfly
open Tu

(* ---- degenerate butterflies ---- *)

let test_b1 () =
  let b = B.create ~log_n:0 in
  check "single node" 1 (B.size b);
  check "no edges" 0 (G.n_edges (B.graph b));
  Alcotest.(check (list int))
    "monotone path is the node itself" [ 0 ]
    (B.monotone_path b ~input_col:0 ~output_col:0)

let test_b2 () =
  let b = B.create ~log_n:1 in
  check "four nodes" 4 (B.size b);
  check "four edges" 4 (G.n_edges (B.graph b));
  check "BW(B_2)" 2 (fst (Bfly_cuts.Exact.bisection_width (B.graph b)))

(* ---- determinism with fixed seeds ---- *)

let test_heuristics_deterministic () =
  let g = B.graph (B.of_inputs 16) in
  let run () =
    let rng = Random.State.make [| 42 |] in
    fst (Bfly_cuts.Heuristics.kernighan_lin ~rng g)
  in
  check "same seed, same result" (run ()) (run ())

let test_experiments_deterministic () =
  let a = Bfly_core.Experiments.e4_ccc_bisection () in
  let b' = Bfly_core.Experiments.e4_ccc_bisection () in
  Alcotest.(check string) "stable table" a b'

let test_multibutterfly_deterministic () =
  let make () =
    Bfly_networks.Multibutterfly.create
      ~rng:(Random.State.make [| 3 |])
      ~log_n:4 ~d:2 ()
  in
  checkb "same wiring from the same seed" true
    (G.equal
       (Bfly_networks.Multibutterfly.graph (make ()))
       (Bfly_networks.Multibutterfly.graph (make ())))

(* ---- parallel substrate under forced sequential execution ---- *)

let test_parallel_env_sequential () =
  (* BFLY_DOMAINS=1 must not change results *)
  let compute () =
    Bfly_graph.Parallel.reduce_range ~lo:0 ~hi:1000 ~init:0 ~f:Fun.id
      ~combine:( + )
  in
  let base = compute () in
  Unix.putenv "BFLY_DOMAINS" "1";
  let seq = compute () in
  Unix.putenv "BFLY_DOMAINS" "";
  check "same sum" base seq

(* ---- subset boundary conditions ---- *)

let test_subset_extremes () =
  let count = ref 0 in
  Bfly_graph.Subset.iter ~n:5 ~k:0 (fun a ->
      incr count;
      check "empty subset" 0 (Array.length a));
  check "one empty subset" 1 !count;
  Alcotest.check_raises "unrank out of range"
    (Invalid_argument "Subset.unrank: rank out of range") (fun () ->
      ignore (Bfly_graph.Subset.unrank ~n:5 ~k:2 10))

(* ---- expansion limit guards ---- *)

let test_expansion_guards () =
  let g = B.graph (B.of_inputs 4) in
  Alcotest.check_raises "k out of range"
    (Invalid_argument "Expansion: k out of range") (fun () ->
      ignore (Bfly_expansion.Expansion.ee_exact g ~k:100))

(* ---- layout edges are routable ---- *)

let test_layout_has_room_per_boundary () =
  (* the number of tracks must cover the maximum wire overlap: every
     cross-wire interval at boundary i spans exactly cross_mask columns, and
     2*mask of them stack at the midpoint *)
  let b = B.of_inputs 32 in
  let l = Bfly_networks.Layout.butterfly_grid b in
  Array.iteri
    (fun i tracks -> check "tracks = 2 * mask" (2 * B.cross_mask b i) tracks)
    l.Bfly_networks.Layout.tracks_per_boundary

(* ---- router stress: many packets on one edge ---- *)

let test_router_heavy_contention () =
  let g = G.of_edge_list ~n:2 [ (0, 1) ] in
  let paths = Array.make 10 [ 0; 1 ] in
  let stats = Bfly_routing.Router.run g ~paths in
  check "serialized" 10 stats.Bfly_routing.Router.steps;
  check "queue depth" 10 stats.Bfly_routing.Router.max_edge_queue

(* ---- credit scheme on adversarial sets ---- *)

let test_credit_on_level_slab () =
  (* a full level of W_n: EE = 4n (all edges to both adjacent levels)...
     actually 2 levels' worth of edges = 4n edges cut when log n > 2 *)
  let w = Bfly_networks.Wrapped.of_inputs 16 in
  let side = Bitset.create (Bfly_networks.Wrapped.size w) in
  List.iter (Bitset.add side) (Bfly_networks.Wrapped.level_nodes w 1);
  let r = Bfly_expansion.Credit.wn_edge w side in
  check "boundary of one full level" (4 * 16) r.Bfly_expansion.Credit.actual;
  checkb "certificate below actual" true
    (r.Bfly_expansion.Credit.certified <= r.Bfly_expansion.Credit.actual);
  checkb "nothing leaks from a slab shorter than the trees" true
    (r.Bfly_expansion.Credit.leaked = 0.0)

(* ---- Bw bracket guards ---- *)

let test_bw_guards () =
  Alcotest.check_raises "ccc rejects non powers"
    (Invalid_argument "Bw.ccc: n must be a power of two") (fun () ->
      ignore (Bfly_core.Bw.ccc 12))

let suite =
  [
    case "degenerate B_1" test_b1;
    case "B_2" test_b2;
    case "heuristics are deterministic per seed" test_heuristics_deterministic;
    case "experiment tables are deterministic" test_experiments_deterministic;
    case "multibutterfly wiring deterministic per seed" test_multibutterfly_deterministic;
    case "BFLY_DOMAINS=1 equivalence" test_parallel_env_sequential;
    case "subset extremes" test_subset_extremes;
    case "expansion guards" test_expansion_guards;
    case "layout track formula" test_layout_has_room_per_boundary;
    case "router heavy contention" test_router_heavy_contention;
    case "credit on a level slab" test_credit_on_level_slab;
    case "bracket guards" test_bw_guards;
  ]
