(** The reproduction harness: one renderer per experiment of DESIGN.md's
    index. Each function computes the experiment's data and renders the
    table the paper's claim corresponds to. [all] lists them in order.

    Sizes are chosen so that the whole suite completes in minutes on a
    laptop; the underlying library functions scale further. *)

val e1_butterfly_bisection : unit -> string
(** Theorem 2.20: [BW(B_n)] — exact values for small [n], certified lower
    bounds and constructed bisections beyond, against [2(√2−1)n]. *)

val e2_mos_convergence : unit -> string
(** Lemmas 2.17–2.19: [BW(MOS_{j,j}, M2)/j² → √2−1]. *)

val e3_wrapped_bisection : unit -> string
(** Lemmas 3.1–3.2: [BW(W_n) = n]. *)

val e4_ccc_bisection : unit -> string
(** Lemma 3.3: [BW(CCC_n) = n/2]. *)

val e5_wn_edge_expansion : unit -> string
(** Lemmas 4.1–4.2: [EE(W_n, k)] vs [4k/log k]. *)

val e6_wn_node_expansion : unit -> string
(** Lemmas 4.4–4.5: [NE(W_n, k)] vs [[1,3]·k/log k]. *)

val e7_bn_edge_expansion : unit -> string
(** Lemmas 4.7–4.8: [EE(B_n, k)] vs [2k/log k]. *)

val e8_bn_node_expansion : unit -> string
(** Lemmas 4.10–4.11: [NE(B_n, k)] vs [[½,1]·k/log k]. *)

val e9_expansion_summary : unit -> string
(** The Section 4.3 summary tables: measured leading constants. *)

val e10_structure : unit -> string
(** Section 1.1: node counts, degrees, diameters. *)

val e11_routing : unit -> string
(** Section 1.2: random-destination routing vs the [N/(4·BW)] bound. *)

val e12_benes_rearrangeability : unit -> string
(** Lemma 2.5 substrate / Section 1.5: the looping algorithm routes random
    port permutations edge-disjointly. *)

val e13_compactness : unit -> string
(** Lemmas 2.8, 2.9, 2.15: compactness and amenability, exhaustively. *)

val e14_layout : unit -> string
(** Section 1.1–1.2: concrete grid layouts of [B_n] vs Thompson's
    [A >= BW²] bound. *)

val e15_io_separation : unit -> string
(** Section 1.2 (after Kruskal–Snir): the directed input/output separation
    of [B_n] is [n/2] — exact by max-flow enumeration at small [n], the
    column construction beyond. *)

val e16_level_bisection : unit -> string
(** Lemma 2.12(1), constructively: random bisections of [B_n] transformed
    into level-bisecting cuts of no greater capacity. *)

val e17_rearrangeability : unit -> string
(** Lemma 2.5 / Lemma 2.8: the Beneš-into-butterfly embedding (load 1,
    congestion 1, dilation 3), edge-disjoint port routing from level 0, and
    the crossing-path certificates it yields for arbitrary cuts. *)

val a1_mos_parameter_sweep : unit -> string
(** Ablation: capacity of the mesh-of-stars pullback across its [(t1,t3)]
    window choices at fixed [n], showing where the optimum sits. *)

val a2_heuristic_portfolio : unit -> string
(** Ablation: the four bisection heuristics head-to-head on [B_n], [W_n],
    [CCC_n]. *)

val a3_multibutterfly_expansion : unit -> string
(** Section 1.3's observation quantified: splitter expansion of the
    butterfly's fixed wiring (worst ratio 1/2) vs randomly-wired
    multibutterflies ([d = 2, 3]), measured exhaustively over small input
    sets. *)

val e18_lower_bound_techniques : unit -> string
(** The paper's two expansion lower-bound techniques side by side on
    [W_8]: credit-scheme certificates (tight for small k) vs the [K_N]
    embedding (covers all k), against the exact values. *)

val a4_branch_and_bound_pruning : unit -> string
(** Ablation: search nodes visited by the exact solver with and without
    its per-node degree lower bound. *)

val d1_datacenter_fabrics : unit -> string
(** Data-center capacity planning (arXiv:1202.6291): for each named
    fabric (meshes, tori, BCube-style Hamming graphs, mixed products),
    the sandwich [certified LB ≤ multilevel heuristic ≤ best
    dimension-aligned cut], with all three equal where a parity theorem
    covers the instance. *)

val f1_figure_1 : unit -> string
(** Figure 1: the 32-node butterfly [B_8]. *)

val f2_figure_2 : unit -> string
(** Figure 2: a credit-distribution trace down a down-tree. *)

val all : (string * (unit -> string)) list
