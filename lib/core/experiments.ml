module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module Traverse = Bfly_graph.Traverse
module Perm = Bfly_graph.Perm
module Butterfly = Bfly_networks.Butterfly
module Fabric = Bfly_networks.Fabric
module Wrapped = Bfly_networks.Wrapped
module Ccc = Bfly_networks.Ccc
module Benes = Bfly_networks.Benes
module Constructions = Bfly_cuts.Constructions
module Exact = Bfly_cuts.Exact
module Heuristics = Bfly_cuts.Heuristics
module Multilevel = Bfly_cuts.Multilevel
module Mos_analysis = Bfly_mos.Mos_analysis
module Classic = Bfly_embed.Classic
module Embedding = Bfly_embed.Embedding
module Lower_bounds = Bfly_embed.Lower_bounds
module Expansion = Bfly_expansion.Expansion
module Witness = Bfly_expansion.Witness
module Credit = Bfly_expansion.Credit
module Router = Bfly_routing.Router
module Workload = Bfly_routing.Workload

let rng () = Random.State.make [| 0xb15ec; 0x7101 |]
let cap g side = Traverse.boundary_edges g side
let fi = Report.fint
let ff = Report.ffloat

(* ------------------------------------------------------------------ *)

let e1_butterfly_bisection () =
  let row n =
    let b = Butterfly.of_inputs n in
    let g = Butterfly.graph b in
    let nf = float_of_int n in
    let folklore = cap g (Constructions.butterfly_column_cut b) in
    let construction =
      if Butterfly.log_n b >= 2 then begin
        let _, c, _ = Constructions.best_mos_pullback b in
        Some c
      end
      else None
    in
    let heuristic =
      (* the flat portfolio up to a few thousand nodes (unchanged, so the
         small rows stay byte-identical run to run); the multilevel
         partitioner from there out to n = 4096, where the flat kernels
         stop converging in useful time *)
      if n <= 2 then None
      else if Butterfly.size b <= 3000 then begin
        let c, _, _ = Heuristics.best_of ~rng:(rng ()) g in
        Some c
      end
      else begin
        let c, _ = Multilevel.bisect ~rng:(rng ()) g in
        Some c
      end
    in
    let exact =
      if Butterfly.size b <= 32 then begin
        let ub =
          List.fold_left min folklore
            (List.filter_map Fun.id [ construction; heuristic ])
        in
        let c, _ = Exact.bisection_width ~upper_bound:ub g in
        Some c
      end
      else None
    in
    let lower = Mos_analysis.butterfly_lower_bound n in
    let upper =
      match exact with
      | Some c -> c
      | None ->
          List.fold_left min folklore
            (List.filter_map Fun.id [ construction; heuristic ])
    in
    [
      fi n;
      fi (Butterfly.size b);
      fi folklore;
      Report.fopt fi construction;
      Report.fopt fi heuristic;
      fi lower;
      Report.fopt fi exact;
      ff (Bw.butterfly_constant *. nf);
      ff (float_of_int upper /. nf);
      ff (float_of_int lower /. nf);
    ]
  in
  Report.table
    ~title:
      "E1 (Theorem 2.20): BW(B_n) = 2(sqrt 2 - 1) n + o(n), against the \
       folklore value n"
    ~header:
      [
        "n"; "N"; "folklore"; "MOS-cut"; "heuristic"; "cert.LB"; "exact";
        "0.8284n"; "UB/n"; "LB/n";
      ]
    (List.map row [ 2; 4; 8; 16; 64; 256; 1024; 4096 ])

let e2_mos_convergence () =
  let row j =
    let bw, density, ratio = Mos_analysis.convergence_row j in
    let brute = if j <= 4 then Some (Mos_analysis.bw_m2_brute j) else None in
    [ fi j; fi bw; Report.fopt fi brute; ff ~digits:5 density;
      ff ~digits:5 Mos_analysis.f_min; ff ~digits:4 ratio ]
  in
  Report.table
    ~title:
      "E2 (Lemmas 2.17-2.19): BW(MOS_{j,j}, M2) / j^2 converges to sqrt 2 - 1 \
       from above"
    ~header:[ "j"; "BW(MOS,M2)"; "brute"; "density"; "sqrt2-1"; "ratio" ]
    (List.map row [ 2; 3; 4; 8; 16; 32; 64; 128; 256; 1024; 4096 ])

let e3_wrapped_bisection () =
  let row n =
    let br = Bw.wrapped n in
    let exact =
      if n <= 8 then begin
        let w = Wrapped.of_inputs n in
        let c, _ = Exact.bisection_width ~upper_bound:br.Bw.upper (Wrapped.graph w) in
        Some c
      end
      else None
    in
    [
      fi n; fi (n * (let rec l a v = if v = n then a else l (a+1) (2*v) in l 0 1));
      fi br.Bw.lower; fi br.Bw.upper; Report.fopt fi exact;
      Report.fbool (Bw.exact br && br.Bw.upper = n);
    ]
  in
  Report.table
    ~title:"E3 (Lemmas 3.1-3.2): BW(W_n) = n"
    ~header:[ "n"; "N"; "cert.LB"; "column cut"; "exact"; "= n" ]
    (List.map row [ 4; 8; 16; 32; 64 ])

let e4_ccc_bisection () =
  let row log_n =
    let n = 1 lsl log_n in
    let br = Bw.ccc n in
    let exact =
      if n * log_n <= 24 then begin
        let c = Ccc.create ~log_n in
        let v, _ = Exact.bisection_width ~upper_bound:br.Bw.upper (Ccc.graph c) in
        Some v
      end
      else None
    in
    [
      fi n; fi (n * log_n); fi br.Bw.lower; fi br.Bw.upper;
      Report.fopt fi exact; Report.fbool (Bw.exact br && 2 * br.Bw.upper = n);
    ]
  in
  Report.table
    ~title:"E4 (Lemma 3.3): BW(CCC_n) = n/2"
    ~header:[ "n"; "N"; "cert.LB"; "dim cut"; "exact"; "= n/2" ]
    (List.map row [ 2; 3; 4; 5; 6 ])

(* ---- expansion tables ------------------------------------------------ *)

(* exact expansion rows on a small instance *)
let exact_rows g net_credit ks exact_fn bound_lower bound_upper =
  List.map
    (fun k ->
      let v, witness = exact_fn g ~k in
      let certified = net_credit witness in
      [
        fi k; fi v; fi certified;
        ff (bound_lower k); ff (bound_upper k);
        (if k >= 2 then
           ff (float_of_int v *. (log (float_of_int k) /. log 2.) /. float_of_int k)
         else "-");
      ])
    ks

(* witness-driven rows on a larger instance *)
let witness_rows make_witness measure net_credit dims =
  List.map
    (fun dim ->
      let s = make_witness dim in
      let k = Bitset.cardinal s in
      let v = measure s in
      let certified = net_credit s in
      [
        fi dim; fi k; fi v; fi certified;
        (if k >= 2 then
           ff (float_of_int v *. (log (float_of_int k) /. log 2.) /. float_of_int k)
         else "-");
      ])
    dims

let small_header = [ "k"; "exact"; "credit-LB"; "paper LB"; "paper UB"; "v*logk/k" ]
let witness_header = [ "dim"; "k"; "witness"; "credit-LB"; "v*logk/k" ]

let e5_wn_edge_expansion () =
  let w8 = Wrapped.of_inputs 8 in
  let g8 = Wrapped.graph w8 in
  let small =
    exact_rows g8
      (fun s -> (Credit.wn_edge w8 s).Credit.certified)
      [ 1; 2; 3; 4; 5; 6; 8; 10; 12 ]
      Expansion.ee_exact Credit.Bounds.ee_wn_lower Credit.Bounds.ee_wn_upper
  in
  let w256 = Wrapped.of_inputs 256 in
  let big =
    witness_rows
      (fun dim -> Witness.wn_ee ~dim w256)
      (Expansion.edge_expansion (Wrapped.graph w256))
      (fun s -> (Credit.wn_edge w256 s).Credit.certified)
      [ 1; 2; 3; 4; 5 ]
  in
  Report.table
    ~title:
      "E5a (Lemmas 4.1-4.2): EE(W_8, k) exactly (N/2 = 12; the k = N/2 value \
       meets BW(W_8) = 8, below 4k/log k as Section 4.1 predicts)"
    ~header:small_header small
  ^ "\n"
  ^ Report.table
      ~title:
        "E5b: sub-butterfly witnesses in W_256 - EE = 4*2^dim = (4+o(1))k/log k"
      ~header:witness_header big

let e6_wn_node_expansion () =
  let w8 = Wrapped.of_inputs 8 in
  let g8 = Wrapped.graph w8 in
  let small =
    exact_rows g8
      (fun s -> (Credit.wn_node w8 s).Credit.certified)
      [ 1; 2; 3; 4; 5; 6; 8; 10; 12 ]
      Expansion.ne_exact Credit.Bounds.ne_wn_lower Credit.Bounds.ne_wn_upper
  in
  let w256 = Wrapped.of_inputs 256 in
  let big =
    witness_rows
      (fun dim -> Witness.wn_ne ~dim w256)
      (Expansion.node_expansion (Wrapped.graph w256))
      (fun s -> (Credit.wn_node w256 s).Credit.certified)
      [ 1; 2; 3; 4; 5 ]
  in
  Report.table
    ~title:"E6a (Lemmas 4.4-4.5): NE(W_8, k) exactly"
    ~header:small_header small
  ^ "\n"
  ^ Report.table
      ~title:
        "E6b: sibling-pair witnesses in W_256 - NE = 3*2^(dim+1) = \
         (3+o(1))k/log k"
      ~header:witness_header big

let e7_bn_edge_expansion () =
  let b8 = Butterfly.of_inputs 8 in
  let g8 = Butterfly.graph b8 in
  let small =
    exact_rows g8
      (fun s -> (Credit.bn_edge b8 s).Credit.certified)
      [ 1; 2; 3; 4; 5; 6; 8 ]
      Expansion.ee_exact Credit.Bounds.ee_bn_lower Credit.Bounds.ee_bn_upper
  in
  let b256 = Butterfly.of_inputs 256 in
  let big =
    witness_rows
      (fun dim -> Witness.bn_ee ~dim b256)
      (Expansion.edge_expansion (Butterfly.graph b256))
      (fun s -> (Credit.bn_edge b256 s).Credit.certified)
      [ 1; 2; 3; 4; 5 ]
  in
  Report.table
    ~title:"E7a (Lemmas 4.7-4.8): EE(B_8, k) exactly"
    ~header:small_header small
  ^ "\n"
  ^ Report.table
      ~title:
        "E7b: level-0-anchored sub-butterfly witnesses in B_256 - EE = \
         2*2^dim = (2+o(1))k/log k"
      ~header:witness_header big

let e8_bn_node_expansion () =
  let b8 = Butterfly.of_inputs 8 in
  let g8 = Butterfly.graph b8 in
  let small =
    exact_rows g8
      (fun s -> (Credit.bn_node b8 s).Credit.certified)
      [ 1; 2; 3; 4; 5; 6; 8 ]
      Expansion.ne_exact Credit.Bounds.ne_bn_lower Credit.Bounds.ne_bn_upper
  in
  let b256 = Butterfly.of_inputs 256 in
  let big =
    witness_rows
      (fun dim -> Witness.bn_ne ~dim b256)
      (Expansion.node_expansion (Butterfly.graph b256))
      (fun s -> (Credit.bn_node b256 s).Credit.certified)
      [ 1; 2; 3; 4; 5 ]
  in
  Report.table
    ~title:"E8a (Lemmas 4.10-4.11): NE(B_8, k) exactly"
    ~header:small_header small
  ^ "\n"
  ^ Report.table
      ~title:
        "E8b: output-anchored sibling pairs in B_256 - NE = 2^(dim+1) = \
         (1+o(1))k/log k"
      ~header:witness_header big

let e9_expansion_summary () =
  (* measured leading constants from the largest witnesses *)
  let w = Wrapped.of_inputs 256 and b = Butterfly.of_inputs 256 in
  let const v k = float_of_int v *. (log (float_of_int k) /. log 2.) /. float_of_int k in
  let dim = 5 in
  let row name measure witness_set paper_lo paper_hi =
    let s = witness_set in
    let k = Bitset.cardinal s in
    let v = measure s in
    [ name; fi k; fi v; ff (const v k); paper_lo; paper_hi ]
  in
  Report.table
    ~title:
      "E9 (Section 4.3 summary): measured constants c in value = c*k/log k at \
       the dim=5 witnesses, against the paper's bounds"
    ~header:[ "quantity"; "k"; "value"; "measured c"; "paper LB"; "paper UB" ]
    [
      row "EE(W_n,k)" (Expansion.edge_expansion (Wrapped.graph w))
        (Witness.wn_ee ~dim w) "4 - o(1)" "4 + o(1)";
      row "NE(W_n,k)" (Expansion.node_expansion (Wrapped.graph w))
        (Witness.wn_ne ~dim w) "1 - o(1)" "3 + o(1)";
      row "EE(B_n,k)" (Expansion.edge_expansion (Butterfly.graph b))
        (Witness.bn_ee ~dim b) "2 - o(1)" "2 + o(1)";
      row "NE(B_n,k)" (Expansion.node_expansion (Butterfly.graph b))
        (Witness.bn_ne ~dim b) "1/2 - o(1)" "1 + o(1)";
    ]

let e10_structure () =
  let rows =
    List.concat_map
      (fun log_n ->
        let n = 1 lsl log_n in
        let b = Butterfly.create ~log_n in
        let bg = Butterfly.graph b in
        let brow =
          [
            Printf.sprintf "B_%d" n; fi (Butterfly.size b); fi (G.n_edges bg);
            fi (Traverse.diameter bg); fi (Butterfly.theoretical_diameter b);
            fi (Traverse.radius bg); ff ~digits:2 (Traverse.average_distance bg);
            fi (G.max_degree bg);
          ]
        in
        if log_n >= 2 then begin
          let w = Wrapped.create ~log_n in
          let wg = Wrapped.graph w in
          [
            brow;
            [
              Printf.sprintf "W_%d" n; fi (Wrapped.size w); fi (G.n_edges wg);
              fi (Traverse.diameter wg); fi (Wrapped.theoretical_diameter w);
              fi (Traverse.radius wg); ff ~digits:2 (Traverse.average_distance wg);
              fi (G.max_degree wg);
            ];
          ]
        end
        else [ brow ])
      [ 1; 2; 3; 4; 5; 6 ]
  in
  Report.table
    ~title:
      "E10 (Section 1.1): sizes, measured diameter vs theory (2 log n for \
       B_n, floor(3 log n / 2) for W_n)"
    ~header:[ "net"; "N"; "edges"; "diam"; "theory"; "radius"; "avg-dist"; "maxdeg" ]
    rows

let e11_routing () =
  let r = rng () in
  let row n =
    let b = Butterfly.of_inputs n in
    let g = Butterfly.graph b in
    let paths = Workload.all_to_random ~rng:r b in
    let size = Butterfly.size b in
    let br = Bw.butterfly n in
    let side = br.Bw.witness in
    let into, out = Router.crossings ~side paths in
    let stats = Router.run g ~paths in
    let lb = Router.time_lower_bound ~crossings_one_way:(max into out) ~bw:br.Bw.upper in
    [
      fi n; fi size; fi into; fi out; ff (float_of_int size /. 4.);
      fi br.Bw.upper; fi lb; fi stats.Router.steps;
      Report.fbool (stats.Router.steps >= lb);
    ]
  in
  Report.table
    ~title:
      "E11 (Section 1.2): every node sends to a random node; messages \
       crossing a minimum bisection vs N/4 per direction; simulated \
       store-and-forward time vs the bound crossings/BW"
    ~header:[ "n"; "N"; "into"; "out"; "N/4"; "BW(UB)"; "T_LB"; "T_sim"; "T>=LB" ]
    (List.map row [ 8; 16; 32; 64 ])

let e12_benes_rearrangeability () =
  let r = rng () in
  let row dim =
    let bn = Benes.create ~dim in
    let trials = 50 in
    let ok = ref 0 in
    for _ = 1 to trials do
      let p = Perm.random ~rng:r (2 * Benes.n bn) in
      let paths = Benes.route_ports bn p in
      if Benes.paths_edge_disjoint bn paths then incr ok
    done;
    [
      fi dim; fi (Benes.n bn); fi (Benes.size bn); fi (2 * Benes.n bn);
      Printf.sprintf "%d/%d" !ok trials; Report.fbool (!ok = trials);
    ]
  in
  Report.table
    ~title:
      "E12 (Section 1.5 / Lemma 2.5 substrate): the looping algorithm routes \
       random port permutations through the Benes network edge-disjointly"
    ~header:[ "dim"; "cols"; "nodes"; "ports"; "routed"; "all disjoint" ]
    (List.map row [ 1; 2; 3; 4; 5; 6 ])

let e13_compactness () =
  let b4 = Butterfly.of_inputs 4 in
  let g4 = Butterfly.graph b4 in
  (* Lemma 2.8: U = all levels except level 0 *)
  let u_inner = Bitset.create (Butterfly.size b4) in
  List.iter
    (fun lvl -> List.iter (Bitset.add u_inner) (Butterfly.level_nodes b4 lvl))
    [ 1; 2 ];
  let lemma_2_8 = Bfly_cuts.Compact.is_compact g4 u_inner in
  (* Lemma 2.9: each connected component of B_4[1,2] *)
  let component_compact =
    List.for_all
      (fun cls ->
        let nodes = Butterfly.component_nodes b4 ~lo:1 ~hi:2 cls in
        let s = Bitset.create (Butterfly.size b4) in
        List.iter (Bitset.add s) nodes;
        Bfly_cuts.Compact.is_compact g4 s)
      [ 0; 1 ]
  in
  (* Lemma 2.15: a component of B_8[1,2] is amenable w.r.t. a cut with its
     upper neighbors in A and lower neighbors in A-bar *)
  let b8 = Butterfly.of_inputs 8 in
  let g8 = Butterfly.graph b8 in
  let comp = Butterfly.component_nodes b8 ~lo:1 ~hi:2 0 in
  let u = Bitset.create (Butterfly.size b8) in
  List.iter (Bitset.add u) comp;
  let nbrs = Traverse.neighbors_of_set g8 u in
  let cut = Bitset.create (Butterfly.size b8) in
  Bitset.iter nbrs (fun v ->
      if Butterfly.level_of b8 v = 0 then Bitset.add cut v);
  (* put the component itself in A too; Lemma 2.15 allows any split *)
  Bitset.iter u (Bitset.add cut);
  let amenable = Bfly_cuts.Compact.amenable_check g8 cut u in
  Report.table
    ~title:"E13 (Lemmas 2.8, 2.9, 2.15): compactness and amenability, exhaustive"
    ~header:[ "claim"; "instance"; "holds" ]
    [
      [ "Lemma 2.8: levels 1..log n compact"; "B_4, all 2^11 cuts";
        Report.fbool lemma_2_8 ];
      [ "Lemma 2.9: components of B_n[i, log n] compact"; "B_4[1,2]";
        Report.fbool component_compact ];
      [ "Lemma 2.15: middle component amenable"; "B_8[1,2], 2^12 repartitions";
        Report.fbool amenable ];
    ]

let e14_layout () =
  let row log_n =
    let n = 1 lsl log_n in
    let b = Butterfly.create ~log_n in
    let layout = Bfly_networks.Layout.butterfly_grid b in
    let area = Bfly_networks.Layout.area layout in
    let br = Bw.butterfly n in
    let thompson = Bfly_networks.Layout.thompson_lower_bound ~bw:br.Bw.lower in
    [
      fi n;
      fi layout.Bfly_networks.Layout.width;
      fi layout.Bfly_networks.Layout.height;
      fi area;
      ff (float_of_int area /. float_of_int (n * n));
      fi thompson;
      ff (float_of_int thompson /. float_of_int (n * n));
      Report.fbool (area >= thompson);
    ]
  in
  Report.table
    ~title:
      "E14 (Sections 1.1-1.2): measured grid-layout area of B_n vs \
       Thompson's A >= BW^2 (the track-per-wire layout gives ~4n^2; the \
       cited tight layout [3] achieves (1+o(1))n^2, between the two)"
    ~header:[ "n"; "width"; "height"; "area"; "area/n^2"; "BW^2"; "BW^2/n^2"; "A>=BW^2" ]
    (List.map row [ 2; 3; 4; 5; 6; 7; 8 ])

let e15_io_separation () =
  let row log_n =
    let n = 1 lsl log_n in
    let b = Butterfly.create ~log_n in
    let side = Bfly_cuts.Io_cut.column_cut b in
    let construction = Bfly_cuts.Io_cut.directed_crossings b side in
    let exact =
      if n <= 8 then Some (fst (Bfly_cuts.Io_cut.exact b)) else None
    in
    [
      fi n;
      fi construction;
      Report.fopt fi exact;
      fi (max 1 (n / 2));
      Report.fbool
        (construction = max 1 (n / 2)
        && match exact with Some e -> e = construction | None -> true);
    ]
  in
  Report.table
    ~title:
      "E15 (Section 1.2, after Kruskal-Snir): directed input/output \
       separation of B_n equals n/2 (exact by max-flow enumeration for \
       n <= 8)"
    ~header:[ "n"; "column cut"; "exact"; "n/2"; "match" ]
    (List.map row [ 1; 2; 3; 4; 5; 6 ])

let e16_level_bisection () =
  let r = rng () in
  let row log_n =
    let b = Butterfly.create ~log_n in
    let g = Butterfly.graph b in
    let size = Butterfly.size b in
    let trials = 50 in
    let preserved = ref 0 and improved = ref 0 in
    let levels_hit = Array.make (log_n + 1) 0 in
    for _ = 1 to trials do
      let side = Bitset.create size in
      let perm = Perm.random ~rng:r size in
      for i = 0 to (size / 2) - 1 do
        Bitset.add side (Perm.apply perm i)
      done;
      let before = cap g side in
      let level, side' = Bfly_cuts.Level_cut.bisect_some_level b side in
      let after = cap g side' in
      if after <= before then incr preserved;
      if after < before then incr improved;
      levels_hit.(level) <- levels_hit.(level) + 1
    done;
    [
      fi (1 lsl log_n);
      Printf.sprintf "%d/%d" !preserved trials;
      fi !improved;
      String.concat ","
        (Array.to_list (Array.map string_of_int levels_hit));
    ]
  in
  Report.table
    ~title:
      "E16 (Lemma 2.12(1)): random bisections pushed to level-bisecting \
       cuts; capacity never increases (and often drops, since the 4-cycle \
       moves remove cut edges)"
    ~header:[ "n"; "capacity-safe"; "strictly improved"; "levels hit" ]
    (List.map row [ 2; 3; 4; 5 ])

let e17_rearrangeability () =
  let r = rng () in
  let row log_n =
    let b = Butterfly.create ~log_n in
    let e, _ = Bfly_embed.Rearrange.benes_into_butterfly b in
    let trials = 25 in
    let routed = ref 0 in
    for _ = 1 to trials do
      let p = Perm.random ~rng:r (Butterfly.n b) in
      let paths = Bfly_embed.Rearrange.route_ports b p in
      if Bfly_embed.Rearrange.paths_edge_disjoint b paths then incr routed
    done;
    let certified = ref 0 in
    for _ = 1 to trials do
      let size = Butterfly.size b in
      let side = Bitset.create size in
      let p = Perm.random ~rng:r size in
      for i = 0 to Random.State.int r size do
        Bitset.add side (Perm.apply p i)
      done;
      let bound, paths = Bfly_embed.Rearrange.input_cut_certificate b side in
      if
        cap (Butterfly.graph b) side >= bound
        && Bfly_embed.Rearrange.paths_edge_disjoint b paths
      then incr certified
    done;
    [
      fi (1 lsl log_n);
      fi (Bfly_embed.Embedding.load e);
      fi (Bfly_embed.Embedding.congestion e);
      fi (Bfly_embed.Embedding.dilation e);
      Printf.sprintf "%d/%d" !routed trials;
      Printf.sprintf "%d/%d" !certified trials;
    ]
  in
  Report.table
    ~title:
      "E17 (Lemmas 2.5 and 2.8): Benes folds into B_n with load 1, \
       congestion 1, dilation 3; any level-0 port bijection routes \
       edge-disjointly; crossing-path certificates bound random cuts by \
       2*min(|A inter L0|, |A-bar inter L0|)"
    ~header:[ "n"; "load"; "congestion"; "dilation"; "bijections"; "cut certs" ]
    (List.map row [ 2; 3; 4; 5; 6 ])

let a1_mos_parameter_sweep () =
  let log_n = 10 in
  let b = Butterfly.create ~log_n in
  let n = 1 lsl log_n in
  let rows = ref [] in
  for t1 = 1 to log_n - 1 do
    for t3 = 1 to log_n - t1 do
      if 1 lsl t1 <= 256 && 1 lsl t3 <= 256 then begin
        (* best (r1, r3) for this window *)
        let best = ref None in
        for r1 = 0 to 1 lsl t3 do
          for r3 = 0 to 1 lsl t1 do
            match
              Bfly_cuts.Constructions.mos_predicted_cost b
                { Bfly_cuts.Constructions.t1; t3; r1; r3 }
            with
            | None -> ()
            | Some c -> (
                match !best with
                | Some (bc, _, _) when bc <= c -> ()
                | _ -> best := Some (c, r1, r3))
          done
        done;
        match !best with
        | None -> ()
        | Some (c, r1, r3) ->
            rows :=
              [
                fi t1; fi t3; fi r1; fi r3; fi c;
                ff (float_of_int c /. float_of_int n);
              ]
              :: !rows
      end
    done
  done;
  let rows =
    List.sort
      (fun a b -> compare (int_of_string (List.nth a 4)) (int_of_string (List.nth b 4)))
      !rows
  in
  Report.table
    ~title:
      "A1 (ablation of Lemma 2.16's parameters): best pullback capacity per \
       (t1,t3) window on B_1024 - wide middle regions win; degenerate \
       windows collapse to the folklore cut"
    ~header:[ "t1"; "t3"; "r1"; "r3"; "capacity"; "cap/n" ]
    (match rows with
    | a :: b :: c :: d :: e :: f :: g :: h :: _ -> [ a; b; c; d; e; f; g; h ]
    | shorter -> shorter)

let a2_heuristic_portfolio () =
  let r = rng () in
  let nets =
    [
      ("B_64", Butterfly.graph (Butterfly.create ~log_n:6));
      ("W_64", Wrapped.graph (Wrapped.create ~log_n:6));
      ("CCC_64", Ccc.graph (Ccc.create ~log_n:6));
    ]
  in
  let rows =
    List.map
      (fun (name, g) ->
        let kl = fst (Heuristics.kernighan_lin ~rng:r g) in
        let fm = fst (Heuristics.fiduccia_mattheyses ~rng:r g) in
        let sp = fst (Heuristics.spectral g) in
        let sa = fst (Heuristics.annealing ~rng:r g) in
        let ml = fst (Multilevel.bisect ~rng:r g) in
        [ name; fi kl; fi fm; fi sp; fi sa; fi ml ])
      nets
  in
  Report.table
    ~title:
      "A2 (ablation): bisection heuristics head-to-head (capacity found; \
       true values are 64, 64, 32)"
    ~header:[ "network"; "KL"; "FM"; "spectral"; "annealing"; "multilevel" ]
    rows

let a3_multibutterfly_expansion () =
  let r = rng () in
  let row log_n =
    let n = 1 lsl log_n in
    let b = Butterfly.create ~log_n in
    let eb =
      Bfly_networks.Multibutterfly.splitter_expansion (Butterfly.graph b)
        ~log_n ~boundary:0 ~cluster_top:0 ~max_k:4
    in
    let em d =
      let mb = Bfly_networks.Multibutterfly.create ~rng:r ~log_n ~d () in
      Bfly_networks.Multibutterfly.splitter_expansion
        (Bfly_networks.Multibutterfly.graph mb)
        ~log_n ~boundary:0 ~cluster_top:0 ~max_k:4
    in
    [ fi n; ff (eb); ff (em 2); ff (em 3) ]
  in
  Report.table
    ~title:
      "A3 (Section 1.3): worst splitter expansion |N(S) inter half|/|S| over \
       input sets |S| <= 4 - the butterfly's fixed wiring pairs inputs \
       (ratio 1/2); random multibutterfly wiring expands"
    ~header:[ "n"; "butterfly"; "multi d=2"; "multi d=3" ]
    (List.map row [ 3; 4; 5; 6 ])

let e18_lower_bound_techniques () =
  let w = Wrapped.of_inputs 8 in
  let g = Wrapped.graph w in
  let e = Classic.kn_into_wrapped w in
  let row k =
    let exact, witness = Expansion.ee_exact g ~k in
    let credit = (Credit.wn_edge w witness).Credit.certified in
    let embed = Lower_bounds.ee_via_kn e ~k in
    [
      fi k; fi exact; fi credit; fi embed;
      Report.fbool (credit <= exact && embed <= exact);
    ]
  in
  Report.table
    ~title:
      "E18 (Section 4 techniques): EE(W_8, k) vs the credit-scheme \
       certificate on the minimizing set (Lemma 4.2) and the K_N-embedding \
       bound ceil(k(N-k)/c) (Section 1.4) - both sound, with complementary \
       strengths"
    ~header:[ "k"; "exact EE"; "credit LB"; "embedding LB"; "sound" ]
    (List.map row [ 1; 2; 3; 4; 6; 8; 10; 12 ])

let a4_branch_and_bound_pruning () =
  let row (name, g) =
    let v1, _, with_bound =
      Exact.bisection_width_instrumented ~degree_bound:true g
    in
    let v2, _, without =
      Exact.bisection_width_instrumented ~degree_bound:false g
    in
    assert (v1 = v2);
    [
      name; fi v1; fi with_bound; fi without;
      ff (float_of_int without /. float_of_int (max 1 with_bound));
    ]
  in
  Report.table
    ~title:
      "A4 (ablation): branch-and-bound nodes visited with vs without the \
       per-node degree lower bound"
    ~header:[ "graph"; "BW"; "with bound"; "without"; "speedup" ]
    (List.map row
       [
         ("B_4", Butterfly.graph (Butterfly.of_inputs 4));
         ("B_8", Butterfly.graph (Butterfly.of_inputs 8));
         ("W_8", Wrapped.graph (Wrapped.of_inputs 8));
         ("CCC_8", Ccc.graph (Ccc.create ~log_n:3));
         ("Q_4", Bfly_networks.Hypercube.graph (Bfly_networks.Hypercube.create ~dim:4));
       ])

let d1_datacenter_fabrics () =
  (* the sandwich on each fabric: certified LB (Fabric.bounds, the
     arXiv:1202.6291 closed forms) <= multilevel heuristic <= best
     dimension-aligned planar cut; where a theorem covers the instance the
     three collapse to equality *)
  let row spec =
    let fab = Fabric.create spec in
    let g = Fabric.graph fab in
    let b = Fabric.bounds spec in
    let _axis, cut, _side =
      Constructions.best_dimension_cut ~dims:(Fabric.dims spec) g
    in
    let heur, _ =
      Multilevel.bisect ~rng:(Random.State.make [| 0xfab; 0x5eed |]) g
    in
    let ok =
      b.Fabric.lower <= heur && heur <= cut
      && (match b.Fabric.exact with
         | Some v -> v = b.Fabric.lower && v = cut
         | None -> true)
    in
    [
      Fabric.name spec;
      fi (Fabric.size fab);
      fi b.Fabric.lower;
      fi heur;
      fi cut;
      Report.fopt fi b.Fabric.exact;
      Report.fbool ok;
      b.Fabric.method_;
    ]
  in
  Report.table
    ~title:
      "D1 (arXiv:1202.6291): data-center fabrics — certified LB <= \
       multilevel <= dimension cut, with equality where a closed form \
       applies"
    ~header:
      [ "fabric"; "N"; "cert.LB"; "ml"; "dim-cut"; "exact"; "sandwich"; "method" ]
    (List.map row
       [
         Fabric.Mesh [ 4; 4 ];
         Fabric.Mesh [ 3; 3 ];
         Fabric.Mesh [ 3; 5 ];
         Fabric.Mesh [ 2; 3; 3 ];
         Fabric.Mesh [ 2; 4; 8 ];
         Fabric.Torus [ 4; 4 ];
         Fabric.Torus [ 3; 3; 3 ];
         Fabric.Torus [ 4; 4; 4 ];
         Fabric.Bcube { ports = 2; levels = 3 };
         Fabric.Bcube { ports = 4; levels = 2 };
         Fabric.Product [ Fabric.Fpath 2; Fabric.Fclique 4 ];
         Fabric.Product [ Fabric.Fring 4; Fabric.Fclique 3; Fabric.Fpath 2 ];
       ])

let f1_figure_1 () = Bfly_networks.Render.figure_1 ()

let f2_figure_2 () =
  (* the Figure 2 scenario: a column of A-nodes; u's half-unit flows down
     T_u, shedding 1/4, 1/8, ... at the cut edges bordering the column *)
  let w = Wrapped.of_inputs 16 in
  let side = Bitset.create (Wrapped.size w) in
  List.iter (Bitset.add side) (Wrapped.column_nodes w 0);
  let r = Credit.wn_edge w side in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "F2 (Figure 2): credit distribution for A = column 0 of W_16.\n";
  Buffer.add_string buf
    "Each node u in A sends 1/2 down T_u and 1/2 up T'_u; a cut edge at\n\
     tree depth d retains 1/2^(d+2) per unit entering it.\n";
  Buffer.add_string buf
    (Format.asprintf "Aggregate result: %a@." Credit.pp_result r);
  Buffer.add_string buf
    (Printf.sprintf
       "Certified EE lower bound %d vs actual boundary %d (Lemma 4.2 bound \
        (4-o(1))k/log k = %.2f at k=%d).\n"
       r.Credit.certified r.Credit.actual
       (Credit.Bounds.ee_wn_lower r.Credit.set_size)
       r.Credit.set_size);
  Buffer.contents buf

let all =
  [
    ("F1", f1_figure_1);
    ("E1", e1_butterfly_bisection);
    ("E2", e2_mos_convergence);
    ("E3", e3_wrapped_bisection);
    ("E4", e4_ccc_bisection);
    ("E5", e5_wn_edge_expansion);
    ("E6", e6_wn_node_expansion);
    ("E7", e7_bn_edge_expansion);
    ("E8", e8_bn_node_expansion);
    ("E9", e9_expansion_summary);
    ("E10", e10_structure);
    ("E11", e11_routing);
    ("E12", e12_benes_rearrangeability);
    ("E13", e13_compactness);
    ("E14", e14_layout);
    ("E15", e15_io_separation);
    ("E16", e16_level_bisection);
    ("E17", e17_rearrangeability);
    ("A1", a1_mos_parameter_sweep);
    ("A2", a2_heuristic_portfolio);
    ("A3", a3_multibutterfly_expansion);
    ("E18", e18_lower_bound_techniques);
    ("A4", a4_branch_and_bound_pruning);
    ("F2", f2_figure_2);
    ("D1", d1_datacenter_fabrics);
  ]
