(** Fixed-capacity bitsets over a universe [0, capacity).

    Used throughout the cut and expansion machinery to represent node sets
    and cut sides. All element-level operations are bounds-checked by
    assertions.

    {2 Word layout}

    Members are packed into native OCaml [int]s, 63 usable bits per word
    ({!bits_per_word}); element [i] lives at bit [i mod 63] of word
    [i / 63]. Bit 62 of a word is the native sign bit, so stored words may
    be negative — always treat them as raw 63-bit patterns (shift with
    [lsr], never [asr]). Every set maintains the invariant that bits at
    positions [>= capacity] are zero, and the backing array always holds one
    extra all-zero word past the last occupied one, so word-indexed kernels
    may read one word beyond the tail without bounds checks. *)

type t

(** Bits stored per backing word (63: native [int] minus the tag bit). *)
val bits_per_word : int

(** [create n] is the empty set over universe [0, n). *)
val create : int -> t

(** Capacity of the universe (the [n] given to {!create}). *)
val capacity : t -> int

(** Length of the backing word array, including the trailing spare word. *)
val word_count : t -> int

(** The backing word array itself — not a copy. Read-mostly escape hatch for
    word-parallel kernels ({!Graph.cut_size}, the partitioner inner loops).
    Callers that write through it must preserve the tail-zero invariant
    described above; breaking it silently corrupts {!cardinal}, {!iter} and
    every popcount-based consumer. *)
val unsafe_words : t -> int array

(** [popcount_word w] is the number of set bits in one backing word, treated
    as a 63-bit pattern. Branch-free SWAR; safe on negative words (bit 62
    set). *)
val popcount_word : int -> int

(** [word_index i] is [i / bits_per_word] and {!bit_index}[ i] is
    [i mod bits_per_word], computed by a multiply-shift reciprocal instead
    of hardware division. Valid for [0 <= i <= 2^30 - 1] — every graph
    node id ({!Graph.max_packed_n}); out of that range the result is
    silently wrong, so these are for kernel inner loops, not general
    arithmetic. *)
val word_index : int -> int

val bit_index : int -> int

(** [mem s i] tests membership of [i]. *)
val mem : t -> int -> bool

(** [add s i] inserts [i] (in place). *)
val add : t -> int -> unit

(** [remove s i] deletes [i] (in place). *)
val remove : t -> int -> unit

(** [set s i b] inserts [i] when [b], deletes it otherwise. *)
val set : t -> int -> bool -> unit

(** [flip s i] toggles membership of [i]. *)
val flip : t -> int -> unit

(** Number of elements in the set. Popcount over words, O(capacity/63). *)
val cardinal : t -> int

(** [inter_cardinal a b] is [cardinal (inter a b)] without allocating the
    intersection: popcount over pairwise ANDed words. Capacities must
    match. *)
val inter_cardinal : t -> t -> int

(** [copy s] is an independent copy. *)
val copy : t -> t

(** [clear s] empties the set in place. *)
val clear : t -> unit

(** [blit ~src ~dst] overwrites [dst] with the contents of [src] without
    allocating. Capacities must match. Used by the kernel arenas to reset
    scratch sides between restarts. *)
val blit : src:t -> dst:t -> unit

(** [fill s] makes [s] the full universe, in place. *)
val fill : t -> unit

(** [complement s] is a new set containing exactly the non-members. *)
val complement : t -> t

(** [union a b], [inter a b], [diff a b] are new sets; capacities must match. *)
val union : t -> t -> t

val inter : t -> t -> t
val diff : t -> t -> t

(** [equal a b] tests extensional equality (capacities must match). *)
val equal : t -> t -> bool

(** [subset a b] is [true] when every member of [a] is in [b]. *)
val subset : t -> t -> bool

(** [is_empty s] is [true] when [s] has no members. *)
val is_empty : t -> bool

(** [iter s f] applies [f] to members in increasing order (lowest-set-bit
    extraction per word; cost is proportional to members, not capacity). *)
val iter : t -> (int -> unit) -> unit

(** [fold s init f] folds over members in increasing order. *)
val fold : t -> 'a -> ('a -> int -> 'a) -> 'a

(** Members in increasing order. *)
val elements : t -> int list

(** [of_list n l] is the set over [0, n) containing exactly [l]. *)
val of_list : int -> int list -> t

(** [choose s] is the smallest member. @raise Not_found when empty. *)
val choose : t -> int

(** Pretty-printer, e.g. [{0, 3, 17}]. *)
val pp : Format.formatter -> t -> unit
