(** Synthetic graph generators.

    Used as workloads for validating the cut solvers and heuristics on
    graphs whose bisection widths are known in closed form (grids, cycles,
    complete bipartite) or statistically characterized (random regular). *)

(** [cycle n] — the n-cycle; bisection width 2 for [n >= 3]. *)
val cycle : int -> Graph.t

(** [path n] — the n-path; bisection width 1. *)
val path : int -> Graph.t

(** [grid ~rows ~cols] — the rows×cols mesh. [BW = min rows cols] holds
    only when the {e larger} dimension is even (the optimal cut runs across
    it); with both sides odd the bisection is strictly wider — e.g. the
    n×n grid with n odd has [BW = n + 1], not [n]
    (Azizoğlu–Eğecioğlu; see arXiv:1202.6291). Use
    {!Bfly_check.Bounds.mesh_bounds} rather than assuming the even-side
    formula. *)
val grid : rows:int -> cols:int -> Graph.t

(** [torus ~rows ~cols] — the wraparound mesh. [BW = 2·min rows cols] holds
    only when the larger dimension is even; odd×odd tori exceed it (e.g.
    the 3×3 torus has BW 8, not 6). Requires [rows, cols >= 3] (smaller
    wraps degenerate to parallel edges, which are produced faithfully). *)
val torus : rows:int -> cols:int -> Graph.t

(** [complete n] — the complete graph [K_n];
    [BW = ⌈n/2⌉·⌊n/2⌋]. *)
val complete : int -> Graph.t

(** [product g h] — the Cartesian product [g × h]. Node [(a, b)] (with
    [a] in [g], [b] in [h]) is numbered [a·|V(h)| + b]; edges are
    [(a,a')×{b}] for each edge of [g] and [{a}×(b,b')] for each edge of
    [h]. Hence [|V| = |V(g)|·|V(h)|],
    [|E| = |E(g)|·|V(h)| + |V(g)|·|E(h)|], and degrees add:
    [deg (a,b) = deg_g a + deg_h b]. Parallel edges in a factor are
    preserved with multiplicity. *)
val product : Graph.t -> Graph.t -> Graph.t

(** [product_all gs] — left fold of {!product} over a non-empty list. With
    factor sizes [a_1 … a_d], node [(c_1, …, c_d)] gets the row-major
    index [Σ c_i · Π_{j>i} a_j] (the last factor varies fastest). *)
val product_all : Graph.t list -> Graph.t

(** [mesh ~dims] — the d-dimensional mesh [P_{a_1} × … × P_{a_d}]
    (product of paths), row-major numbering per {!product_all}.
    [mesh ~dims:[r; c]] equals [grid ~rows:r ~cols:c]. *)
val mesh : dims:int list -> Graph.t

(** [torus_nd ~dims] — the d-dimensional torus [C_{a_1} × … × C_{a_d}]
    (product of cycles); every dimension must be ≥ 3. *)
val torus_nd : dims:int list -> Graph.t

(** [hamming ~dims ~alphabet] — the Hamming graph [H(d, q)], the d-fold
    product of [K_q]: nodes are length-[d] strings over [q] symbols,
    adjacent iff they differ in exactly one position. [H(d, 2)] is the
    hypercube [Q_d]; [H(d, q)] is the BCube-style switchless core of a
    q-port, d-level data-center fabric. *)
val hamming : dims:int -> alphabet:int -> Graph.t

(** [random_regular ~simple ~rng ~n ~degree] — a random [degree]-regular
    graph by the configuration model ([n·degree] even, [degree < n]).
    Self-loops are always re-drawn. With [~simple:false] parallel edges
    may remain (they are legal in {!Graph}), so the result can be a
    multigraph. With [~simple:true] the whole pairing is rejection-sampled
    until it is a simple graph, so the degree histogram is exactly
    [degree] on every node {e and} adjacency is honest. *)
val random_regular :
  simple:bool -> rng:Random.State.t -> n:int -> degree:int -> Graph.t

(** [gnp ~rng ~n ~p] — Erdős–Rényi G(n,p). *)
val gnp : rng:Random.State.t -> n:int -> p:float -> Graph.t

(** [binary_tree depth] — complete binary tree with [2^(depth+1) - 1]
    nodes; bisection width... the tree's bisection width is [O(1)]-ish but
    not 1; provided as a low-connectivity stress case. *)
val binary_tree : int -> Graph.t
