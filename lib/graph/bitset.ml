type t = { n : int; words : int array }

let bits_per_word = 63 (* OCaml native ints: use 63 low bits, portable *)

let create n =
  assert (n >= 0);
  { n; words = Array.make ((n + bits_per_word - 1) / bits_per_word + 1) 0 }

let capacity s = s.n
let word_count s = Array.length s.words
let unsafe_words s = s.words
let index i = (i / bits_per_word, i mod bits_per_word)

(* Division by 63 as a multiply-shift: ocamlopt does not strength-reduce
   division by a non-power-of-two constant, and the partitioner flip loops
   pay that latency once per neighbor. With M = ceil(2^36 / 63) the excess
   M*63 - 2^36 = 62, so floor(i*M / 2^36) = i/63 for all
   0 <= i <= 2^36/62 > 2^30 (Granlund–Montgomery), and i*M stays well
   under 2^62 — verified exhaustively over the low and high ten million
   ids of the domain. Graph node ids are capped at [Graph.max_packed_n]
   = 2^30 - 1, inside the proven range. *)
let word_index i = (i * 1090785346) lsr 36
let bit_index i = i - (bits_per_word * word_index i)

let check s i =
  assert (i >= 0 && i < s.n)

let mem s i =
  check s i;
  let w, b = index i in
  s.words.(w) land (1 lsl b) <> 0

let add s i =
  check s i;
  let w, b = index i in
  s.words.(w) <- s.words.(w) lor (1 lsl b)

let remove s i =
  check s i;
  let w, b = index i in
  s.words.(w) <- s.words.(w) land lnot (1 lsl b)

let set s i b = if b then add s i else remove s i

let flip s i =
  check s i;
  let w, b = index i in
  s.words.(w) <- s.words.(w) lxor (1 lsl b)

(* SWAR popcount over one 63-bit word. Bit 62 is the native sign bit, so the
   0x5555… mask does not fit as a literal (max_int = 0x3FFF…); it is built by
   shifting. All steps are carry-free within their fields, and the final
   byte-sum multiply needs only 7 product bits (count <= 63 < 128), so the
   mod-2^63 arithmetic is exact. *)
let m1 = (0x2AAAAAAAAAAAAAAA lsl 1) lor 1 (* 0x5555555555555555, 63-bit *)
let m2 = 0x3333333333333333
let m4 = 0x0F0F0F0F0F0F0F0F
let h01 = 0x0101010101010101

let popcount_word x =
  let x = x - ((x lsr 1) land m1) in
  let x = (x land m2) + ((x lsr 2) land m2) in
  let x = (x + (x lsr 4)) land m4 in
  (x * h01) lsr 56

let cardinal s =
  let words = s.words in
  let acc = ref 0 in
  for i = 0 to Array.length words - 1 do
    acc := !acc + popcount_word (Array.unsafe_get words i)
  done;
  !acc

let inter_cardinal a b =
  assert (a.n = b.n);
  let wa = a.words and wb = b.words in
  let acc = ref 0 in
  for i = 0 to Array.length wa - 1 do
    acc := !acc + popcount_word (Array.unsafe_get wa i land Array.unsafe_get wb i)
  done;
  !acc

let copy s = { s with words = Array.copy s.words }
let clear s = Array.fill s.words 0 (Array.length s.words) 0

(* Restore [dst] to the contents of [src] without allocating; capacities must
   match. Used by the kernel scratch arenas. *)
let blit ~src ~dst =
  assert (src.n = dst.n);
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let fill s =
  let wlast = s.n / bits_per_word and r = s.n mod bits_per_word in
  Array.fill s.words 0 wlast (-1);
  if r > 0 then s.words.(wlast) <- (1 lsl r) - 1

let complement s =
  let c = create s.n in
  let wn = Array.length s.words in
  for i = 0 to wn - 1 do
    c.words.(i) <- lnot s.words.(i)
  done;
  (* re-establish the invariant that bits >= n are zero *)
  let wlast = s.n / bits_per_word and r = s.n mod bits_per_word in
  for i = wlast to wn - 1 do
    c.words.(i) <- 0
  done;
  if r > 0 then c.words.(wlast) <- lnot s.words.(wlast) land ((1 lsl r) - 1);
  c

let zip_words op a b =
  assert (a.n = b.n);
  let r = create a.n in
  Array.iteri (fun i w -> r.words.(i) <- op w b.words.(i)) a.words;
  r

let union a b = zip_words ( lor ) a b
let inter a b = zip_words ( land ) a b
let diff a b = zip_words (fun x y -> x land lnot y) a b

let equal a b =
  assert (a.n = b.n);
  a.words = b.words

let subset a b =
  assert (a.n = b.n);
  let ok = ref true in
  Array.iteri (fun i w -> if w land lnot b.words.(i) <> 0 then ok := false) a.words;
  !ok

let is_empty s = Array.for_all (fun w -> w = 0) s.words

(* Number of trailing zeros of a nonzero word: isolate the lowest set bit and
   popcount the run of ones below it. Branch-free; works for bit 62 because
   [min_int - 1] wraps to [max_int]. *)
let ntz x = popcount_word ((x land -x) - 1)

let iter s f =
  let words = s.words in
  for w = 0 to Array.length words - 1 do
    let word = ref (Array.unsafe_get words w) in
    let base = w * bits_per_word in
    while !word <> 0 do
      let x = !word in
      f (base + ntz x);
      word := x land (x - 1)
    done
  done

let fold s init f =
  let acc = ref init in
  iter s (fun i -> acc := f !acc i);
  !acc

let elements s = List.rev (fold s [] (fun acc i -> i :: acc))

let of_list n l =
  let s = create n in
  List.iter (add s) l;
  s

let choose s =
  let r = ref (-1) in
  (try
     iter s (fun i ->
         r := i;
         raise Exit)
   with Exit -> ());
  if !r < 0 then raise Not_found else !r

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (elements s)
