(** Domain-pool data parallelism for OCaml 5.

    The exact bisection search ({!Bfly_cuts.Exact}), the expansion
    enumerations ({!Bfly_expansion.Expansion}) and the heuristic restart
    loops ({!Bfly_cuts.Heuristics}) are embarrassingly parallel over index
    ranges or restart counts. This module runs such work on a {e reusable}
    pool of worker domains: domains are spawned once on first use, fed
    through a mutex/condition work queue, and joined at process exit —
    callers never pay a [Domain.spawn] per invocation, which matters when
    a kernel is called thousands of times (the QCheck suites, the
    reproduction experiments, the bench harness).

    {2 Determinism}

    All combinators deliver results in range order, and every documented
    tie is broken toward the {e lowest index}, so results are identical
    whatever the domain count — [BFLY_DOMAINS=1] and [BFLY_DOMAINS=64]
    must agree bit-for-bit whenever the supplied functions are pure and
    the [combine] arguments are associative. The test suite enforces this
    for the cut heuristics.

    {2 Environment}

    [BFLY_DOMAINS] overrides the worker count: [1] forces fully inline
    sequential execution (no pool traffic at all, e.g. for profiling);
    unset or empty defaults to [Domain.recommended_domain_count], capped
    at 8. A value that is not a positive integer (e.g. ["abc"], ["0"]) is
    ignored in favor of that same default, with a one-time warning on
    stderr and a [parallel.bad_domains_env] counter tick. The pool grows
    if a later call requests more domains than have been spawned; it
    never shrinks before exit.

    Do not set [BFLY_DOMAINS] above the physical core count: OCaml 5
    minor collections synchronize every running domain, so an
    oversubscribed pool can be markedly {e slower} than the sequential
    path (results stay identical either way). The default never
    oversubscribes.

    {2 Supervision}

    Tasks that raise never kill their worker domain: the exception is
    recorded as the batch's failure (re-raised to the submitter once the
    batch completes) and the worker survives to serve the next batch, so
    the pool cannot silently shrink. {!run_tasks} additionally accepts a
    {!Bfly_resil.Cancel} token: jobs not yet started when it triggers are
    skipped (counted in [parallel.tasks_skipped]) and the call raises
    [Cancel.Cancelled] once the batch has drained. In chaos runs,
    {!Bfly_resil.Fault.Worker} faults surface here as per-task
    exceptions, exercising exactly that recovery path.

    {2 Observability}

    The pool reports through {!Bfly_obs.Metrics}: counters
    [parallel.domains_spawned], [parallel.batches], [parallel.tasks],
    [parallel.tasks_skipped], [parallel.workers_rescued],
    [parallel.bad_domains_env] and gauge [parallel.pool_size]. *)

val domain_count : unit -> int
(** Number of domains (including the calling one) the combinators below
    will use for the next call. At least 1. *)

val pool_size : unit -> int
(** Worker domains currently alive in the pool (excludes the caller).
    [0] until the first parallel call with [domain_count () > 1]. *)

val map_range : lo:int -> hi:int -> (int -> 'a) -> 'a array
(** [map_range ~lo ~hi f] computes [[| f lo; …; f (hi-1) |]] with the
    range split in contiguous chunks across domains. [f] must be safe to
    run concurrently. Returns [[||]] when [hi <= lo]. *)

val reduce_range :
  lo:int -> hi:int -> init:'a -> f:(int -> 'a) -> combine:('a -> 'a -> 'a) -> 'a
(** [reduce_range ~lo ~hi ~init ~f ~combine] is
    [combine init (f lo ⊕ f (lo+1) ⊕ … ⊕ f (hi-1))] with [⊕ = combine]
    applied left-to-right, chunked across domains; [init] when the range
    is empty. [combine] must be associative; [init] is incorporated
    {e exactly once}, so it need not be a neutral element (a sum seeded
    with [~init:5] comes out exactly 5 larger than the plain sum, at any
    domain count). *)

val min_over : lo:int -> hi:int -> (int -> 'a) -> 'a option
(** [min_over ~lo ~hi f] is the minimum of [f i] over the range with
    respect to [compare], or [None] for an empty range. Ties keep the
    lowest [i]. *)

val best_of : ?compare:('a -> 'a -> int) -> restarts:int -> (int -> 'a) -> 'a
(** [best_of ~restarts f] runs [f 0 … f (restarts-1)] across the pool and
    returns the smallest result under [compare] (default
    [Stdlib.compare]); ties keep the lowest restart index, matching what a
    sequential first-wins restart loop would select. This is the engine
    under the parallel restarts of [Bfly_cuts.Heuristics]. Raises
    [Invalid_argument] when [restarts < 1]. *)

val run_tasks : ?cancel:Bfly_resil.Cancel.t -> (unit -> unit) array -> unit
(** [run_tasks ?cancel tasks] runs every task to completion on the pool
    (the caller helps drain the queue; nested submissions are safe). If a
    task raises, the first such exception is re-raised to the caller
    {e after} the batch drains — the worker domains survive. If [cancel]
    triggers mid-batch, tasks that have not yet started are skipped and
    [Bfly_resil.Cancel.Cancelled] is raised once the batch drains (a
    recorded task failure takes precedence). Tasks already running are
    never interrupted — cancellation within a task is the task's own,
    cooperative, business. *)

val async : (unit -> unit) -> unit
(** [async job] enqueues [job] on the pool and returns immediately: the
    caller neither participates in nor waits for its execution. This is
    the primitive under the serve dispatcher — batches become detached
    jobs, each of which may itself call {!run_tasks} (nested submissions
    drain like any other). With [domain_count () = 1] the job runs
    {e inline} before [async] returns, so single-domain runs keep the
    sequential semantics of the rest of this module. Unlike {!run_tasks},
    the pool is grown to the full [domain_count ()] (a detached job has
    no submitting domain to borrow). Exceptions escaping [job] are
    swallowed by the worker loop (counted in [parallel.workers_rescued]);
    callers that must observe failure wrap [job] themselves. Completion
    is the caller's protocol too — the dispatcher counts jobs in flight
    under its own lock. Counted in [parallel.async_jobs]. *)

val run_chunks : lo:int -> hi:int -> (lo:int -> hi:int -> 'a) -> 'a list
(** [run_chunks ~lo ~hi work] splits [lo, hi) into one contiguous chunk
    per domain and runs [work ~lo:chunk_lo ~hi:chunk_hi] on each,
    returning the per-chunk results in range order. Lower-level than
    {!map_range}: the worker sees the whole chunk, enabling e.g.
    {!Subset.iter_range}-based enumeration without per-index unranking.
    Nested calls are safe — a worker that submits a batch helps drain the
    queue instead of blocking it. *)
