type t = {
  n : int;
  offsets : int array; (* length n+1 *)
  adj : int array; (* length 2m; adj.(offsets.(u)..offsets.(u+1)-1) = nbrs of u *)
  edge_list : (int * int) array; (* normalized u <= v, with multiplicity *)
  ep_u : int array; (* per edge: (word lsl 6) lor bit of the u endpoint *)
  ep_v : int array; (* per edge: same packing for the v endpoint *)
}

let bpw = Bitset.bits_per_word
let pack_pos i = ((i / bpw) lsl 6) lor (i mod bpw)

(* Largest n for which the packed edge key u*n + v stays within a native int
   (n^2 - 1 <= max_int). Above it we fall back to the tuple sort. *)
let max_packed_n = 0x3FFFFFFF

(* Sort normalized (u <= v) edges lexicographically. Packing each edge as the
   int key u*n + v gives exactly the order of polymorphic compare on the
   tuples (v < n, so key order is lexicographic order) while sorting with the
   monomorphic int comparison — no polymorphic-compare calls, no per-element
   indirection. *)
let sort_edges ~n edge_list =
  if n > 1 && n <= max_packed_n then begin
    let m = Array.length edge_list in
    let keys = Array.make m 0 in
    for i = 0 to m - 1 do
      let u, v = Array.unsafe_get edge_list i in
      Array.unsafe_set keys i ((u * n) + v)
    done;
    Array.sort (fun (a : int) b -> compare a b) keys;
    for i = 0 to m - 1 do
      let k = Array.unsafe_get keys i in
      Array.unsafe_set edge_list i (k / n, k mod n)
    done
  end
  else Array.sort compare edge_list

(* Build the CSR structure and packed endpoint arrays from an already
   normalized and sorted edge list (ownership of the array is taken). *)
let of_sorted_edge_list ~n edge_list =
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edge_list;
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + deg.(u)
  done;
  let adj = Array.make offsets.(n) 0 in
  let cursor = Array.copy offsets in
  Array.iter
    (fun (u, v) ->
      adj.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      adj.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1)
    edge_list;
  let m = Array.length edge_list in
  let ep_u = Array.make m 0 and ep_v = Array.make m 0 in
  Array.iteri
    (fun e (u, v) ->
      ep_u.(e) <- pack_pos u;
      ep_v.(e) <- pack_pos v)
    edge_list;
  { n; offsets; adj; edge_list; ep_u; ep_v }

let of_edges ~n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative node count";
  let check (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg "Graph.of_edges: endpoint out of range";
    if u = v then invalid_arg "Graph.of_edges: self-loop"
  in
  Array.iter check edges;
  let edge_list = Array.map (fun (u, v) -> if u <= v then (u, v) else (v, u)) edges in
  sort_edges ~n edge_list;
  of_sorted_edge_list ~n edge_list

let of_edge_list ~n edges = of_edges ~n (Array.of_list edges)

(* Endpoint-array constructor: same graph as [of_edges] on the zipped pairs,
   but skips the intermediate tuple array until after the (int-keyed) sort.
   Used by the multilevel coarsener, which accumulates coarse edges in two
   flat int stacks. *)
let of_endpoints ~n ~m us vs =
  if n < 0 then invalid_arg "Graph.of_endpoints: negative node count";
  if m < 0 || m > Array.length us || m > Array.length vs then
    invalid_arg "Graph.of_endpoints: bad edge count";
  if n > 1 && n <= max_packed_n then begin
    let keys = Array.make m 0 in
    for i = 0 to m - 1 do
      let u = us.(i) and v = vs.(i) in
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_endpoints: endpoint out of range";
      if u = v then invalid_arg "Graph.of_endpoints: self-loop";
      let u, v = if u <= v then (u, v) else (v, u) in
      Array.unsafe_set keys i ((u * n) + v)
    done;
    Array.sort (fun (a : int) b -> compare a b) keys;
    let edge_list = Array.map (fun k -> (k / n, k mod n)) keys in
    of_sorted_edge_list ~n edge_list
  end
  else of_edges ~n (Array.init m (fun i -> (us.(i), vs.(i))))

let n_nodes g = g.n
let n_edges g = Array.length g.edge_list
let degree g u = g.offsets.(u + 1) - g.offsets.(u)

let max_degree g =
  let m = ref 0 in
  for u = 0 to g.n - 1 do
    m := max !m (degree g u)
  done;
  !m

let csr_offsets g = g.offsets
let csr_adj g = g.adj

let iter_neighbors g u f =
  for i = g.offsets.(u) to g.offsets.(u + 1) - 1 do
    f g.adj.(i)
  done

let fold_neighbors g u init f =
  let acc = ref init in
  iter_neighbors g u (fun v -> acc := f !acc v);
  !acc

let neighbors g u =
  Array.sub g.adj g.offsets.(u) (degree g u)

let iter_edges g f = Array.iter (fun (u, v) -> f u v) g.edge_list
let edges g = Array.copy g.edge_list

(* Word-indexed cut capacity: one branch-free test per edge against the
   side's backing words. The packed endpoint arrays cache each endpoint's
   (word, bit) so the loop is two loads, two shifts and an xor per edge. *)
let cut_size g side =
  if Bitset.capacity side <> g.n then
    invalid_arg "Graph.cut_size: side capacity mismatch";
  let w = Bitset.unsafe_words side in
  let eu = g.ep_u and ev = g.ep_v in
  let acc = ref 0 in
  for e = 0 to Array.length eu - 1 do
    let pu = Array.unsafe_get eu e and pv = Array.unsafe_get ev e in
    let bu = Array.unsafe_get w (pu lsr 6) lsr (pu land 63) in
    let bv = Array.unsafe_get w (pv lsr 6) lsr (pv land 63) in
    acc := !acc + ((bu lxor bv) land 1)
  done;
  !acc

let mem_edge g u v =
  (* adjacency slices are sorted by construction (edge list sorted, then
     scattered in order), so binary search would be possible; degrees here
     are tiny (<= 4 for butterflies) so a scan is simpler. *)
  let found = ref false in
  iter_neighbors g u (fun w -> if w = v then found := true);
  !found

let is_simple g =
  let m = Array.length g.edge_list in
  let rec go i = i >= m - 1 || (g.edge_list.(i) <> g.edge_list.(i + 1) && go (i + 1)) in
  go 0

let induced g nodes =
  let ids = Array.of_list (Bitset.elements nodes) in
  let new_of_old = Hashtbl.create (Array.length ids) in
  Array.iteri (fun i id -> Hashtbl.replace new_of_old id i) ids;
  let edges = ref [] in
  iter_edges g (fun u v ->
      match (Hashtbl.find_opt new_of_old u, Hashtbl.find_opt new_of_old v) with
      | Some u', Some v' -> edges := (u', v') :: !edges
      | _ -> ());
  (of_edge_list ~n:(Array.length ids) !edges, ids)

let relabel g p =
  assert (Perm.size p = g.n);
  of_edges ~n:g.n
    (Array.map (fun (u, v) -> (Perm.apply p u, Perm.apply p v)) g.edge_list)

let union_disjoint a b =
  let shift = a.n in
  let eb = Array.map (fun (u, v) -> (u + shift, v + shift)) b.edge_list in
  of_edges ~n:(a.n + b.n) (Array.append a.edge_list eb)

let equal a b = a.n = b.n && a.edge_list = b.edge_list

let degree_histogram g =
  let h = Array.make (max_degree g + 1) 0 in
  for u = 0 to g.n - 1 do
    let d = degree g u in
    h.(d) <- h.(d) + 1
  done;
  h
