let bfs_multi g srcs =
  let n = Graph.n_nodes g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if dist.(s) < 0 then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    srcs;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

let bfs_distances g src = bfs_multi g [ src ]

let shortest_path g u v =
  let n = Graph.n_nodes g in
  let parent = Array.make n (-1) in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(u) <- 0;
  Queue.add u queue;
  while (not (Queue.is_empty queue)) && dist.(v) < 0 do
    let x = Queue.pop queue in
    Graph.iter_neighbors g x (fun y ->
        if dist.(y) < 0 then begin
          dist.(y) <- dist.(x) + 1;
          parent.(y) <- x;
          Queue.add y queue
        end)
  done;
  if dist.(v) < 0 then None
  else begin
    let rec build node acc =
      if node = u then u :: acc else build parent.(node) (node :: acc)
    in
    Some (build v [])
  end

let components g =
  let uf = Union_find.create (Graph.n_nodes g) in
  Graph.iter_edges g (fun u v -> ignore (Union_find.union uf u v));
  uf

let component_count g = Union_find.count (components g)
let is_connected g = Graph.n_nodes g = 0 || component_count g = 1

let eccentricity g u =
  Array.fold_left max 0 (bfs_distances g u)

let diameter g =
  if Graph.n_nodes g = 0 then invalid_arg "Traverse.diameter: empty graph";
  if not (is_connected g) then invalid_arg "Traverse.diameter: disconnected";
  let d = ref 0 in
  for u = 0 to Graph.n_nodes g - 1 do
    d := max !d (eccentricity g u)
  done;
  !d

let all_pairs_distances g =
  Array.init (Graph.n_nodes g) (fun v -> bfs_distances g v)

let average_distance g =
  let n = Graph.n_nodes g in
  if n < 2 then invalid_arg "Traverse.average_distance: need two nodes";
  let sum = ref 0 and pairs = ref 0 in
  for v = 0 to n - 1 do
    Array.iteri
      (fun w d ->
        if w <> v && d > 0 then begin
          sum := !sum + d;
          incr pairs
        end)
      (bfs_distances g v)
  done;
  if !pairs = 0 then 0. else float_of_int !sum /. float_of_int !pairs

let radius g =
  if Graph.n_nodes g = 0 then invalid_arg "Traverse.radius: empty graph";
  if not (is_connected g) then invalid_arg "Traverse.radius: disconnected";
  let r = ref max_int in
  for v = 0 to Graph.n_nodes g - 1 do
    r := min !r (eccentricity g v)
  done;
  !r

let neighbors_of_set g s =
  let out = Bitset.create (Graph.n_nodes g) in
  Bitset.iter s (fun u ->
      Graph.iter_neighbors g u (fun v -> if not (Bitset.mem s v) then Bitset.add out v));
  out

let c_recounts = Bfly_obs.Metrics.counter "cuts.kernel.recounts"

let boundary_edges g s =
  Bfly_obs.Metrics.incr c_recounts;
  Graph.cut_size g s
