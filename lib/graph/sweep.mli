(** Seeded size × seed grid sweeps over the domain pool.

    The campaign driver under [bfly_tool campaign]: a grid point is one
    seeded instance of a parameterized family ([n = 64, seed 7], …), and
    a sweep evaluates a user function on every point, fanned out through
    {!Parallel.run_tasks}. The grid order — size-major, seeds ascending
    from 1 — is part of the contract: results come back indexed exactly
    like {!points}, whatever the domain count, so a sweep whose point
    function is deterministic is deterministic end to end (the
    {!Parallel} determinism contract, lifted to grids).

    Cancellation follows {!Parallel.run_tasks}: when the token fires,
    points that have not started are skipped and
    [Bfly_resil.Cancel.Cancelled] is raised after the batch drains — a
    sweep never returns a partially-filled grid. Point functions may
    themselves fan out through the pool (nested submissions are safe);
    they must not rely on an ambient cancel token, which is domain-local
    — pass the resolved token into the closure instead.

    Metrics: counter [sweep.points] (completed points), timer span
    [graph.sweep]. *)

type point = { n : int; seed : int }

val points : sizes:int list -> seeds:int -> point list
(** [points ~sizes ~seeds] — the grid, size-major, seeds [1 … seeds]
    within each size, in the order [run] returns results. *)

val run :
  ?cancel:Bfly_resil.Cancel.t ->
  sizes:int list ->
  seeds:int ->
  (n:int -> seed:int -> 'a) ->
  'a array
(** [run ?cancel ~sizes ~seeds f] evaluates [f] on every grid point on
    the domain pool and returns the results in {!points} order.
    @raise Invalid_argument when [seeds < 0].
    @raise Bfly_resil.Cancel.Cancelled when [cancel] fires mid-sweep. *)
