module Metrics = Bfly_obs.Metrics
module Cancel = Bfly_resil.Cancel
module Fault = Bfly_resil.Fault

let c_spawned = Metrics.counter "parallel.domains_spawned"
let c_async = Metrics.counter "parallel.async_jobs"
let c_batches = Metrics.counter "parallel.batches"
let c_tasks = Metrics.counter "parallel.tasks"
let c_rescued = Metrics.counter "parallel.workers_rescued"
let c_skipped = Metrics.counter "parallel.tasks_skipped"
let c_bad_env = Metrics.counter "parallel.bad_domains_env"
let g_pool = Metrics.gauge "parallel.pool_size"

let default_domain_count () = max 1 (min 8 (Domain.recommended_domain_count ()))

let warned_bad_env = Atomic.make false

let domain_count () =
  match Sys.getenv_opt "BFLY_DOMAINS" with
  | Some "" | None -> default_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> d
      | _ ->
          (* garbage (or a non-positive count) must not silently degrade to
             a sequential run: fall back to the documented default, telling
             the user once *)
          if Atomic.compare_and_set warned_bad_env false true then begin
            Metrics.incr c_bad_env;
            Printf.eprintf
              "bfly: ignoring invalid BFLY_DOMAINS=%S (want a positive \
               integer); using %d domains\n\
               %!"
              s
              (default_domain_count ())
          end;
          default_domain_count ())

(* ------------------------------------------------------------------ *)
(* The pool: spawned once, fed through a mutex/condition queue,        *)
(* joined at exit.                                                     *)
(* ------------------------------------------------------------------ *)

type batch = {
  mutable remaining : int; (* guarded by [pool.mutex] *)
  finished : Condition.t; (* broadcast when [remaining] hits 0 *)
  mutable failure : exn option; (* first exception raised by a task *)
  cancel : Cancel.t option; (* not-yet-started jobs are skipped once triggered *)
  mutable skipped : int; (* guarded by [pool.mutex] *)
}

type pool = {
  mutex : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t list;
  mutable size : int;
  mutable stopping : bool;
}

let pool =
  {
    mutex = Mutex.create ();
    work_available = Condition.create ();
    queue = Queue.create ();
    workers = [];
    size = 0;
    stopping = false;
  }

let rec worker_loop () =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.stopping do
    Condition.wait pool.work_available pool.mutex
  done;
  match Queue.take_opt pool.queue with
  | None ->
      (* stopping with an empty queue *)
      Mutex.unlock pool.mutex
  | Some job ->
      Mutex.unlock pool.mutex;
      (* a raising job must not kill the domain: the pool would silently
         shrink until nothing drains the queue. Batch jobs record their own
         failures before re-raising is even possible, so anything caught
         here is rescued bookkeeping, not a lost error. *)
      (try job () with _ -> Metrics.incr c_rescued);
      worker_loop ()

let shutdown () =
  Mutex.lock pool.mutex;
  pool.stopping <- true;
  Condition.broadcast pool.work_available;
  let workers = pool.workers in
  pool.workers <- [];
  pool.size <- 0;
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers;
  Mutex.lock pool.mutex;
  pool.stopping <- false;
  Mutex.unlock pool.mutex

let () = at_exit shutdown

let pool_size () =
  Mutex.lock pool.mutex;
  let s = pool.size in
  Mutex.unlock pool.mutex;
  s

(* must be called with [pool.mutex] held *)
let ensure_workers target =
  while pool.size < target do
    pool.size <- pool.size + 1;
    Metrics.incr c_spawned;
    pool.workers <- Domain.spawn worker_loop :: pool.workers
  done;
  Metrics.set g_pool (float_of_int pool.size)

(* Detached execution: enqueue [job] on the pool and return immediately —
   unlike [run_tasks] the caller neither helps drain nor waits. With one
   configured domain there are no workers, so the job runs inline before
   returning (the sequential fallback everything else in this module
   honours). The full [domain_count ()] is spawned, not one less: a
   detached job has no submitting domain participating, so N concurrent
   jobs need N workers. [job] owns its exceptions — one that escapes is
   swallowed by the worker loop (counted in [parallel.workers_rescued]),
   so wrap anything whose failure must be observed. *)
let async job =
  Metrics.incr c_async;
  if domain_count () = 1 then job ()
  else begin
    Mutex.lock pool.mutex;
    ensure_workers (domain_count ());
    Queue.push job pool.queue;
    Condition.signal pool.work_available;
    Mutex.unlock pool.mutex
  end

(* Run every task to completion. The calling domain submits the batch and
   then helps drain the queue; it only sleeps (on [batch.finished]) when
   the queue is empty and its stragglers are running on other domains.
   A task may itself call [run_tasks]: the nested submitter drains like
   any other, so nesting cannot deadlock. *)
let run_tasks ?cancel tasks =
  let n = Array.length tasks in
  if n = 0 then ()
  else if n = 1 then begin
    if Cancel.stop cancel then begin
      Metrics.incr c_skipped;
      raise
        (Cancel.Cancelled
           (Option.value ~default:"cancelled"
              (Option.bind cancel Cancel.reason)))
    end;
    tasks.(0) ()
  end
  else begin
    let batch =
      {
        remaining = n;
        finished = Condition.create ();
        failure = None;
        cancel;
        skipped = 0;
      }
    in
    let wrap job () =
      if Cancel.stop batch.cancel then begin
        (* the batch was cancelled before this job started: skip the work
           but keep the bookkeeping, so the batch still completes *)
        Metrics.incr c_skipped;
        Mutex.lock pool.mutex;
        batch.skipped <- batch.skipped + 1;
        batch.remaining <- batch.remaining - 1;
        if batch.remaining = 0 then Condition.broadcast batch.finished;
        Mutex.unlock pool.mutex
      end
      else begin
        (try
           Fault.maybe_raise Fault.Worker;
           job ()
         with e ->
           Mutex.lock pool.mutex;
           if batch.failure = None then batch.failure <- Some e;
           Mutex.unlock pool.mutex);
        Mutex.lock pool.mutex;
        batch.remaining <- batch.remaining - 1;
        if batch.remaining = 0 then Condition.broadcast batch.finished;
        Mutex.unlock pool.mutex
      end
    in
    Metrics.incr c_batches;
    Metrics.add c_tasks n;
    Mutex.lock pool.mutex;
    ensure_workers (min (n - 1) (domain_count () - 1));
    Array.iter (fun job -> Queue.push (wrap job) pool.queue) tasks;
    Condition.broadcast pool.work_available;
    let rec drive () =
      if batch.remaining > 0 then
        match Queue.take_opt pool.queue with
        | Some job ->
            Mutex.unlock pool.mutex;
            (* wrapped jobs are total — they record failures instead of
               raising — but the lock discipline must survive even if that
               ever changes *)
            (try job () with _ -> Metrics.incr c_rescued);
            Mutex.lock pool.mutex;
            drive ()
        | None ->
            Condition.wait batch.finished pool.mutex;
            drive ()
    in
    drive ();
    Mutex.unlock pool.mutex;
    match batch.failure with
    | Some e -> raise e
    | None ->
        if batch.skipped > 0 then
          raise
            (Cancel.Cancelled
               (Option.value ~default:"cancelled"
                  (Option.bind cancel Cancel.reason)))
  end

(* ------------------------------------------------------------------ *)
(* Range combinators                                                   *)
(* ------------------------------------------------------------------ *)

let run_chunks ~lo ~hi work =
  let len = hi - lo in
  if len <= 0 then []
  else begin
    let d = min (domain_count ()) len in
    if d = 1 then [ work ~lo ~hi ]
    else begin
      let chunk = (len + d - 1) / d in
      let bounds =
        List.init d (fun i ->
            let clo = lo + (i * chunk) in
            let chi = min hi (clo + chunk) in
            (clo, chi))
        |> List.filter (fun (clo, chi) -> chi > clo)
        |> Array.of_list
      in
      let k = Array.length bounds in
      let results = Array.make k None in
      let tasks =
        Array.init k (fun i () ->
            let clo, chi = bounds.(i) in
            results.(i) <- Some (work ~lo:clo ~hi:chi))
      in
      run_tasks tasks;
      Array.to_list results |> List.map Option.get
    end
  end

let map_range ~lo ~hi f =
  let chunks =
    run_chunks ~lo ~hi (fun ~lo ~hi -> Array.init (hi - lo) (fun i -> f (lo + i)))
  in
  Array.concat chunks

let reduce_range ~lo ~hi ~init ~f ~combine =
  if hi <= lo then init
  else begin
    (* each chunk folds its injected values with [combine] alone — [init]
       enters exactly once, in the final fold over the ordered chunks *)
    let chunks =
      run_chunks ~lo ~hi (fun ~lo ~hi ->
          let acc = ref (f lo) in
          for i = lo + 1 to hi - 1 do
            acc := combine !acc (f i)
          done;
          !acc)
    in
    List.fold_left combine init chunks
  end

let min_over ~lo ~hi f =
  let best a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some x, Some y -> Some (if compare y x < 0 then y else x)
  in
  reduce_range ~lo ~hi ~init:None ~f:(fun i -> Some (f i)) ~combine:best

let best_of ?(compare = Stdlib.compare) ~restarts f =
  if restarts < 1 then invalid_arg "Parallel.best_of: restarts must be >= 1";
  let results = map_range ~lo:0 ~hi:restarts f in
  let best = ref results.(0) in
  for i = 1 to restarts - 1 do
    if compare results.(i) !best < 0 then best := results.(i)
  done;
  !best
