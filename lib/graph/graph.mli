(** Immutable undirected multigraphs in compressed sparse row form.

    Nodes are the integers [0, n). Parallel edges are allowed (needed for the
    [2K_N] multigraph of Section 1.4); self-loops are rejected. The edge list
    is retained alongside the CSR adjacency so that cut capacities can be
    computed with correct multiplicity in O(m). *)

type t

(** [of_edges ~n edges] builds the graph. Each pair is one undirected edge;
    orientation of the pairs is irrelevant. Duplicate pairs create parallel
    edges. @raise Invalid_argument on out-of-range endpoints or self-loops. *)
val of_edges : n:int -> (int * int) array -> t

(** [of_edge_list ~n edges] is {!of_edges} on a list. *)
val of_edge_list : n:int -> (int * int) list -> t

(** [of_endpoints ~n ~m us vs] is {!of_edges} on the [m] edges
    [(us.(i), vs.(i))], without materializing the tuple array before the
    sort. The coarsener's fast path: endpoints accumulate in two flat int
    stacks and are packed straight into sort keys. Only the first [m] cells
    of each array are read. *)
val of_endpoints : n:int -> m:int -> int array -> int array -> t

(** Number of nodes. *)
val n_nodes : t -> int

(** Number of undirected edges, counting multiplicity. *)
val n_edges : t -> int

(** Degree of a node (parallel edges counted with multiplicity). *)
val degree : t -> int -> int

(** Largest degree over all nodes (0 for the empty graph). *)
val max_degree : t -> int

(** The CSR offset array itself (length [n + 1]) — not a copy. Neighbors of
    [u] occupy [csr_adj g].(o.(u) .. o.(u+1) - 1). Borrowed and read-only:
    mutating it corrupts the graph. Escape hatch for the partitioner inner
    loops, which cannot afford a closure per neighbor. *)
val csr_offsets : t -> int array

(** The CSR adjacency array itself (length [2 * n_edges g]) — not a copy.
    Same borrowing contract as {!csr_offsets}. *)
val csr_adj : t -> int array

(** [cut_size g side] is the number of edges (with multiplicity) with exactly
    one endpoint in [side]: the capacity of the cut [(side, V - side)].
    Branch-free word-indexed test per edge against the bitset's backing
    words; equals the naive {!iter_edges} membership count exactly. O(m). *)
val cut_size : t -> Bitset.t -> int

(** [iter_neighbors g u f] applies [f] to each neighbor of [u], with
    multiplicity, in unspecified order. *)
val iter_neighbors : t -> int -> (int -> unit) -> unit

(** [fold_neighbors g u init f]. *)
val fold_neighbors : t -> int -> 'a -> ('a -> int -> 'a) -> 'a

(** Neighbors of [u] as a fresh array (with multiplicity). *)
val neighbors : t -> int -> int array

(** [iter_edges g f] applies [f u v] once per undirected edge (with
    multiplicity), with [u <= v]. *)
val iter_edges : t -> (int -> int -> unit) -> unit

(** The edges as a fresh array of normalized pairs [(u, v)], [u <= v]. *)
val edges : t -> (int * int) array

(** [mem_edge g u v] is [true] when at least one [u]–[v] edge exists. *)
val mem_edge : t -> int -> int -> bool

(** [true] when the graph has no parallel edges. *)
val is_simple : t -> bool

(** [induced g nodes] is the subgraph induced by the node set, together with
    the map from new indices to original node ids. *)
val induced : t -> Bitset.t -> t * int array

(** [relabel g p] renames node [i] to [Perm.apply p i]. The result is
    isomorphic to [g]; used to realize automorphisms concretely. *)
val relabel : t -> Perm.t -> t

(** [union_disjoint a b] is the disjoint union, [b]'s nodes shifted by
    [n_nodes a]. *)
val union_disjoint : t -> t -> t

(** Structural equality: same node count and same multiset of normalized
    edges. *)
val equal : t -> t -> bool

(** [degree_histogram g] maps degree [d] to the number of nodes of degree
    [d], as an array of length [max_degree g + 1]. *)
val degree_histogram : t -> int array
