module Metrics = Bfly_obs.Metrics
module Span = Bfly_obs.Span

type point = { n : int; seed : int }

let points ~sizes ~seeds =
  List.concat_map
    (fun n -> List.init seeds (fun i -> { n; seed = i + 1 }))
    sizes

let c_points = Metrics.counter "sweep.points"

let run ?cancel ~sizes ~seeds f =
  if seeds < 0 then invalid_arg "Sweep.run: seeds must be >= 0";
  let pts = Array.of_list (points ~sizes ~seeds) in
  let out = Array.make (Array.length pts) None in
  let tasks =
    Array.mapi
      (fun i { n; seed } () ->
        out.(i) <- Some (f ~n ~seed);
        Metrics.incr c_points)
      pts
  in
  Span.time ~name:"graph.sweep" (fun () -> Parallel.run_tasks ?cancel tasks);
  Array.map
    (function
      | Some v -> v
      | None ->
          (* unreachable: run_tasks either completes every task or raises *)
          invalid_arg "Sweep.run: task produced no result")
    out
