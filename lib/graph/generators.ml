let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: n >= 3";
  Graph.of_edge_list ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let path n =
  if n < 1 then invalid_arg "Generators.path: n >= 1";
  Graph.of_edge_list ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Generators.grid: need positive dims";
  let node r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (node r c, node r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (node r c, node (r + 1) c) :: !edges
    done
  done;
  Graph.of_edge_list ~n:(rows * cols) !edges

let torus ~rows ~cols =
  if rows < 3 || cols < 3 then invalid_arg "Generators.torus: need dims >= 3";
  let node r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      edges := (node r c, node r ((c + 1) mod cols)) :: !edges;
      edges := (node r c, node ((r + 1) mod rows) c) :: !edges
    done
  done;
  Graph.of_edge_list ~n:(rows * cols) !edges

let complete n =
  if n < 1 then invalid_arg "Generators.complete: n >= 1";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edge_list ~n !edges

let product g h =
  let ng = Graph.n_nodes g and nh = Graph.n_nodes h in
  if ng = 0 || nh = 0 then invalid_arg "Generators.product: factors must be non-empty";
  let node a b = (a * nh) + b in
  let m = (Graph.n_edges g * nh) + (ng * Graph.n_edges h) in
  let edges = Array.make (max m 1) (0, 1) in
  let k = ref 0 in
  Graph.iter_edges g (fun a a' ->
      for b = 0 to nh - 1 do
        edges.(!k) <- (node a b, node a' b);
        incr k
      done);
  Graph.iter_edges h (fun b b' ->
      for a = 0 to ng - 1 do
        edges.(!k) <- (node a b, node a b');
        incr k
      done);
  Graph.of_edges ~n:(ng * nh) (Array.sub edges 0 m)

let product_all = function
  | [] -> invalid_arg "Generators.product_all: need at least one factor"
  | g :: gs -> List.fold_left product g gs

let mesh ~dims =
  if dims = [] then invalid_arg "Generators.mesh: need at least one dimension";
  product_all (List.map path dims)

let torus_nd ~dims =
  if dims = [] then invalid_arg "Generators.torus_nd: need at least one dimension";
  product_all (List.map cycle dims)

let hamming ~dims ~alphabet =
  if dims < 1 then invalid_arg "Generators.hamming: dims >= 1";
  product_all (List.init dims (fun _ -> complete alphabet))

let random_regular ~simple ~rng ~n ~degree =
  if n * degree mod 2 <> 0 then
    invalid_arg "Generators.random_regular: n*degree must be even";
  if degree >= n then invalid_arg "Generators.random_regular: degree < n required";
  (* configuration model: shuffle stubs, pair consecutive; re-shuffle a few
     times to clear self-loops, then patch the stragglers by swapping *)
  let stubs = Array.concat (List.init degree (fun _ -> Array.init n (fun i -> i))) in
  let shuffle () =
    for i = Array.length stubs - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = stubs.(i) in
      stubs.(i) <- stubs.(j);
      stubs.(j) <- t
    done
  in
  let m = Array.length stubs / 2 in
  let has_self_loop () =
    let rec go i = i < m && (stubs.(2 * i) = stubs.((2 * i) + 1) || go (i + 1)) in
    go 0
  in
  let draw () =
    shuffle ();
    let attempts = ref 0 in
    while has_self_loop () && !attempts < 50 do
      shuffle ();
      incr attempts
    done;
    (* patch remaining self-loops by swapping with a random other endpoint *)
    for i = 0 to m - 1 do
      if stubs.(2 * i) = stubs.((2 * i) + 1) then begin
        let rec try_swap () =
          let j = Random.State.int rng m in
          if
            j <> i
            && stubs.(2 * j) <> stubs.(2 * i)
            && stubs.((2 * j) + 1) <> stubs.(2 * i)
          then begin
            let t = stubs.((2 * i) + 1) in
            stubs.((2 * i) + 1) <- stubs.(2 * j);
            stubs.(2 * j) <- t
          end
          else try_swap ()
        in
        try_swap ()
      end
    done;
    Graph.of_edges ~n (Array.init m (fun i -> (stubs.(2 * i), stubs.((2 * i) + 1))))
  in
  if not simple then draw ()
  else
    (* rejection sampling: redraw until the pairing is a simple graph. The
       success probability per draw tends to exp(-(d^2-1)/4) > 0, so the cap
       is a safety net, not a realistic exit. *)
    let rec go k =
      if k >= 10_000 then
        invalid_arg "Generators.random_regular: failed to sample a simple graph";
      let g = draw () in
      if Graph.is_simple g then g else go (k + 1)
    in
    go 0

let gnp ~rng ~n ~p =
  if p < 0. || p > 1. then invalid_arg "Generators.gnp: p in [0,1]";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edge_list ~n !edges

let binary_tree depth =
  if depth < 0 then invalid_arg "Generators.binary_tree: depth >= 0";
  let n = (1 lsl (depth + 1)) - 1 in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (v, (v - 1) / 2) :: !edges
  done;
  Graph.of_edge_list ~n !edges
