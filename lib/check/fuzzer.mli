(** Seeded random-instance fuzzing with counterexample shrinking.

    Each round derives an independent RNG from [(seed, round)], draws one
    instance from a mix of generator families (connected random graphs,
    random 3-regular multigraphs, G(n,p), cycles, grids, binary trees) and
    runs the whole {!Oracle} battery on it, each oracle on its own RNG
    derived from [(seed, round, oracle index)]. A failing oracle's
    instance is then {e shrunk}: single-node and single-edge deletions are
    retried greedily (re-running the oracle with its original seed) until
    no smaller instance still fails, and the minimized instance is
    reported with enough seed information to replay it.

    Determinism: same [seed] and [rounds] — same instances, same oracle
    randomness, same summary, at any [BFLY_DOMAINS] setting.

    Metrics: counters [check.fuzz.rounds], [check.fuzz.oracle_runs],
    [check.fuzz.skips], [check.fuzz.failures], [check.fuzz.shrink_attempts],
    [check.fuzz.shrink_steps]; timer [check.fuzz]. *)

(** A minimized failing instance. [seed]/[round]/[oracle] replay it;
    [n]/[edges] are the shrunk graph; [shrink_steps] counts accepted
    shrinking moves from the original instance. *)
type counterexample = {
  oracle : string;
  seed : int;
  round : int;
  instance : string;  (** generator family of the original instance *)
  n : int;
  edges : (int * int) list;
  message : string;
  shrink_steps : int;
}

type summary = {
  seed : int;
  rounds : int;
  oracle_runs : int;
  passed : int;
  skipped : int;
  failed : int;
  chaos : bool;  (** whether this run injected faults *)
  faults_injected : int;  (** faults fired during the run (chaos mode) *)
  crashes_survived : int;
      (** oracle runs that raised an injected fault and were absorbed *)
  pool_stable : bool;
      (** the {!Bfly_graph.Parallel} pool did not shrink across the run *)
  counterexamples : counterexample list;
}

(** JSON renderings of the report types, as embedded in the
    [bfly_tool check] summary document. *)

val counterexample_json : counterexample -> Bfly_obs.Json.t
val summary_json : summary -> Bfly_obs.Json.t

(** [run ?oracles ?chaos ~seed ~rounds ()] — [oracles] defaults to
    {!Oracle.all}; the parameter exists so tests can aim the machinery at
    a deliberately broken solver and watch it get caught.

    With [chaos] (default [false]) the caller is expected to have armed
    {!Bfly_resil.Fault} (see {!Run.execute}); each oracle invocation then
    runs under a fresh ambient {!Bfly_resil.Cancel} token, and an injected
    fault escaping an oracle is counted in [crashes_survived] (the run
    carries on) instead of failing. Oracle verdicts reached despite
    injected disk errors, cache corruption, worker crashes and deadline
    expiries must still all pass: faults may cost work, never
    correctness. *)
val run :
  ?oracles:Oracle.t list ->
  ?chaos:bool ->
  seed:int ->
  rounds:int ->
  unit ->
  summary
