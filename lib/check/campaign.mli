(** Seeded random-regular bisection campaigns with statistical oracles.

    A campaign sweeps the configuration-model family
    [random_regular ~simple:true ~degree] over a size × seed grid
    ({!Bfly_graph.Sweep}) and records, per instance, the triple

    - certified lower bound — {!Bfly_cuts.Certificate.kn_bound},
    - [ml] — the {!Bfly_cuts.Multilevel.bisect} heuristic (the repo's
      [bw ml] path), and
    - [spectral] — {!Bfly_cuts.Heuristics.spectral},

    both heuristic witnesses re-validated through
    {!Invariants.bisection_cut}. Per size it aggregates mean/min/max
    cut-per-[n] ratios and judges them against literature brackets:
    arXiv:2009.00598 proves the minimum bisection of a random cubic
    graph is a.a.s. in [[0.10300, 0.13932]·n], so at the pinned window
    sizes the mean [ml] ratio must land inside a committed bracket whose
    lower edge is the theorem's lower constant and whose upper edge is
    the committed campaign mean plus a seed-noise margin (EXPERIMENTS.md
    chapter C1 derives the widths). Every instance additionally passes a
    broad sanity oracle ([lb <= ml], [lb <= spectral], heuristics no
    worse than the expected random cut [degree·n/4]).

    Determinism contract: instance graphs and solver restarts draw from
    disjoint seed streams keyed only by [(degree, n, seed)] (prefixes
    [0xca9a]/[0xca9b]), the certificate and both heuristics are
    deterministic, and the sweep returns grid order — so a campaign
    document is byte-identical at any [BFLY_DOMAINS] and across warm
    cache hits, which is what lets CI diff a smoke sub-grid against the
    committed [CAMPAIGN_*.json] baseline.

    Metrics: counters [campaign.instances] and [campaign.oracle.checks]
    (both in the bench gate snapshot). *)

(** {1 Literature constants and pinned windows} *)

val mb_lower : float
(** [0.10300] — lower constant of arXiv:2009.00598. *)

val mb_upper : float
(** [0.13932] — upper constant of arXiv:2009.00598. *)

val window : n:int -> (float * float) option
(** The pinned oracle bracket for the mean [ml] ratio at size [n] of the
    degree-3 campaign; [None] for sizes too small for the asymptotic
    bracket to bind (windows are committed for [n >= 1024] only). *)

val default_sizes : int list
val default_seeds : int
val default_restarts : int

(** {1 Results} *)

type instance = {
  n : int;
  seed : int;
  edges : int;  (** edge count of the sampled simple graph *)
  lb : int;  (** certified lower bound *)
  ml : int;  (** multilevel heuristic cut *)
  spectral : int;  (** spectral heuristic cut *)
}

type summary = {
  s_n : int;
  count : int;  (** instances aggregated at this size *)
  mean_lb : float;  (** mean certified-LB/[n] ratio *)
  mean_ml : float;
  min_ml : float;
  max_ml : float;
  mean_spectral : float;
}

type t = {
  degree : int;
  sizes : int list;  (** sorted, deduplicated *)
  seeds : int;
  restarts : int;
  instances : instance list;  (** grid order: size-major, seed ascending *)
  summaries : summary list;
  checks : Bounds.check list;  (** sanity first, then per-window oracles *)
  ok : bool;
}

(** {1 Running} *)

val run :
  ?cancel:Bfly_resil.Cancel.t ->
  ?restarts:int ->
  degree:int ->
  sizes:int list ->
  seeds:int ->
  unit ->
  (t, string) result
(** [run ?cancel ?restarts ~degree ~sizes ~seeds ()] executes the
    campaign on the domain pool. [Error] on invalid parameters (degree
    outside [[2, 16]], a size outside [[2·degree, 16384]], odd [n·degree],
    [seeds < 1]…). Honors [?cancel] or the ambient token
    ({!Bfly_resil.Cancel.resolve}) — cancellation raises
    {!Bfly_resil.Cancel.Cancelled}, never returns a partial grid. *)

val instance_graph : degree:int -> n:int -> seed:int -> Bfly_graph.Graph.t
(** The exact graph the campaign names [(degree, n, seed)] — exposed so
    tests can pin small instances against the exact solver. *)

(** {1 Oracles} (exposed for the synthetic pass/fail tests) *)

val sanity :
  degree:int -> ?witness_faults:string list -> instance list -> Bounds.check

val aggregate : degree:int -> summary list -> Bounds.check list
(** Window and certified-LB oracles; empty unless [degree = 3]. *)

val summarize : sizes:int list -> instance list -> summary list

(** {1 Documents} *)

val schema : string
(** ["bfly-campaign/1"]. *)

val to_json : t -> Bfly_obs.Json.t
(** The [bfly-campaign/1] document: schema, grid parameters, literature
    constants, per-instance triples, per-size summaries (with their
    window or [null]) and the oracle verdict. Byte-stable. *)

val compare_docs : baseline:Bfly_obs.Json.t -> Bfly_obs.Json.t -> string list
(** [compare_docs ~baseline current] — drift messages, [[]] when clean.
    Every instance of [current] must reproduce the baseline triple
    exactly (the current grid may be a sub-grid of the baseline's, which
    is how the CI smoke stage diffs against the committed full run);
    when the grids coincide, summaries and the oracle verdict are also
    compared. Schema, degree and restarts must always match. *)

val render : t -> string
(** Human-readable report: the E1-style convergence table (cut/[n]
    ratios per size), the oracle verdicts, and a one-line summary. *)

val c1 : unit -> string
(** Experiment C1 (EXPERIMENTS.md): a reduced campaign — degree 3,
    sizes 64…512, 5 seeds — rendered through {!render}. *)
