module G = Bfly_graph.Graph
module Gen = Bfly_graph.Generators
module Parallel = Bfly_graph.Parallel
module Metrics = Bfly_obs.Metrics
module Json = Bfly_obs.Json
module Cancel = Bfly_resil.Cancel
module Fault = Bfly_resil.Fault

type counterexample = {
  oracle : string;
  seed : int;
  round : int;
  instance : string;
  n : int;
  edges : (int * int) list;
  message : string;
  shrink_steps : int;
}

type summary = {
  seed : int;
  rounds : int;
  oracle_runs : int;
  passed : int;
  skipped : int;
  failed : int;
  chaos : bool;
  faults_injected : int;
  crashes_survived : int;
  pool_stable : bool;
  counterexamples : counterexample list;
}

let counterexample_json c =
  Json.Obj
    [
      ("oracle", Json.Str c.oracle);
      ("seed", Json.Int c.seed);
      ("round", Json.Int c.round);
      ("instance", Json.Str c.instance);
      ("n", Json.Int c.n);
      ( "edges",
        Json.List
          (List.map (fun (u, v) -> Json.List [ Json.Int u; Json.Int v ]) c.edges)
      );
      ("message", Json.Str c.message);
      ("shrink_steps", Json.Int c.shrink_steps);
    ]

let summary_json s =
  Json.Obj
    [
      ("seed", Json.Int s.seed);
      ("rounds", Json.Int s.rounds);
      ("oracle_runs", Json.Int s.oracle_runs);
      ("passed", Json.Int s.passed);
      ("skipped", Json.Int s.skipped);
      ("failed", Json.Int s.failed);
      ("chaos", Json.Bool s.chaos);
      ("faults_injected", Json.Int s.faults_injected);
      ("crashes_survived", Json.Int s.crashes_survived);
      ("pool_stable", Json.Bool s.pool_stable);
      ("counterexamples", Json.List (List.map counterexample_json s.counterexamples));
    ]

(* ---- instances ---- *)

(* Instances carry their raw edge list so the shrinker can edit them. *)
type instance = { desc : string; n : int; edges : (int * int) list }

let graph_of inst = G.of_edge_list ~n:inst.n inst.edges

let instance_of_graph desc g =
  { desc; n = G.n_nodes g; edges = Array.to_list (G.edges g) }

(* Connected random graph: random spanning path plus random extra edges
   (the test suite's historical workload). *)
let connected_random ~rng n ~extra_edges =
  let edges = ref [] in
  let perm = Bfly_graph.Perm.random ~rng n in
  for i = 0 to n - 2 do
    edges :=
      (Bfly_graph.Perm.apply perm i, Bfly_graph.Perm.apply perm (i + 1))
      :: !edges
  done;
  for _ = 1 to extra_edges do
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if u <> v then edges := (u, v) :: !edges
  done;
  G.of_edge_list ~n !edges

let gen_instance ~rng =
  let n = 4 + Random.State.int rng 11 in
  match Random.State.int rng 7 with
  | 0 ->
      let extra = Random.State.int rng (2 * n) in
      instance_of_graph
        (Printf.sprintf "connected-random n=%d extra=%d" n extra)
        (connected_random ~rng n ~extra_edges:extra)
  | 1 ->
      let n = if n mod 2 = 1 then n + 1 else n in
      instance_of_graph
        (Printf.sprintf "random-3-regular n=%d" n)
        (Gen.random_regular ~simple:true ~rng ~n ~degree:3)
  | 2 ->
      instance_of_graph
        (Printf.sprintf "gnp n=%d p=0.3" n)
        (Gen.gnp ~rng ~n ~p:0.3)
  | 3 -> instance_of_graph (Printf.sprintf "cycle n=%d" n) (Gen.cycle n)
  | 4 ->
      let rows = 2 + Random.State.int rng 2 in
      let cols = 2 + Random.State.int rng 4 in
      instance_of_graph
        (Printf.sprintf "grid %dx%d" rows cols)
        (Gen.grid ~rows ~cols)
  | 5 ->
      let depth = 2 + Random.State.int rng 2 in
      instance_of_graph
        (Printf.sprintf "binary-tree depth=%d" depth)
        (Gen.binary_tree depth)
  | _ ->
      let a = 2 + Random.State.int rng 3 in
      let b = 3 + Random.State.int rng 2 in
      instance_of_graph
        (Printf.sprintf "product path%d x cycle%d" a b)
        (Gen.product (Gen.path a) (Gen.cycle b))

(* ---- shrinking ---- *)

(* Remove node [v]: drop incident edges, shift higher indices down. *)
let remove_node inst v =
  let edges =
    List.filter_map
      (fun (a, b) ->
        if a = v || b = v then None
        else
          Some ((if a > v then a - 1 else a), if b > v then b - 1 else b))
      inst.edges
  in
  { inst with n = inst.n - 1; edges }

let remove_edge inst i =
  { inst with edges = List.filteri (fun j _ -> j <> i) inst.edges }

(* Smaller-first candidate order: node deletions shrink harder than edge
   deletions, so try them first. *)
let candidates inst =
  let nodes =
    if inst.n <= 2 then []
    else List.init inst.n (fun v -> remove_node inst (inst.n - 1 - v))
  in
  let edges = List.mapi (fun i _ -> remove_edge inst i) inst.edges in
  nodes @ edges

let shrink_attempts = Metrics.counter "check.fuzz.shrink_attempts"
let shrink_steps_counter = Metrics.counter "check.fuzz.shrink_steps"

(* Greedily minimize a failing instance. [rerun] re-executes the failing
   oracle with its original RNG seed, so a candidate either reproduces the
   discrepancy deterministically or is discarded. *)
let shrink ~rerun ~budget inst0 message0 =
  let budget = ref budget in
  let rec improve inst message steps =
    let rec first = function
      | [] -> (inst, message, steps)
      | cand :: rest ->
          if !budget <= 0 then (inst, message, steps)
          else begin
            decr budget;
            Metrics.incr shrink_attempts;
            match rerun cand with
            | Oracle.Fail m ->
                Metrics.incr shrink_steps_counter;
                improve cand m (steps + 1)
            | _ -> first rest
          end
    in
    first (candidates inst)
  in
  improve inst0 message0 0

(* ---- driver ---- *)

let rounds_counter = Metrics.counter "check.fuzz.rounds"
let runs_counter = Metrics.counter "check.fuzz.oracle_runs"
let skips_counter = Metrics.counter "check.fuzz.skips"
let failures_counter = Metrics.counter "check.fuzz.failures"

let oracle_rng ~seed ~round ~index =
  Random.State.make [| seed; round; index; 0x0b5e55ed |]

let crashes_counter = Metrics.counter "check.fuzz.crashes_survived"

let run ?(oracles = Oracle.all) ?(chaos = false) ~seed ~rounds () =
  Bfly_obs.Span.time ~name:"check.fuzz" @@ fun () ->
  let pool_before = Parallel.pool_size () in
  let faults_before = Fault.injected_total () in
  let oracle_runs = ref 0
  and passed = ref 0
  and skipped = ref 0
  and failed = ref 0
  and crashes = ref 0
  and counterexamples = ref [] in
  (* In chaos mode each oracle invocation runs under its own fresh ambient
     cancel token (so an injected deadline expiry latches a token and
     exercises graceful degradation in the heuristics) and an escaped
     injected fault counts as a survived crash, not a discrepancy — the
     property under test is that the process, the domain pool and the
     cache all outlive the fault. *)
  let invoke oracle ~rng g =
    if not chaos then oracle.Oracle.run ~rng g
    else
      Cancel.with_ambient (Cancel.create ()) @@ fun () ->
      try oracle.Oracle.run ~rng g with
      | Fault.Injected m | Cancel.Cancelled m ->
          incr crashes;
          Metrics.incr crashes_counter;
          Oracle.Skip (Printf.sprintf "survived injected fault: %s" m)
  in
  for round = 1 to rounds do
    Metrics.incr rounds_counter;
    let inst_rng = Random.State.make [| seed; round |] in
    let inst = gen_instance ~rng:inst_rng in
    let g = graph_of inst in
    List.iteri
      (fun index oracle ->
        incr oracle_runs;
        Metrics.incr runs_counter;
        let fresh_rng () = oracle_rng ~seed ~round ~index in
        match invoke oracle ~rng:(fresh_rng ()) g with
        | Oracle.Pass -> incr passed
        | Oracle.Skip _ ->
            incr skipped;
            Metrics.incr skips_counter
        | Oracle.Fail message ->
            incr failed;
            Metrics.incr failures_counter;
            let rerun cand = invoke oracle ~rng:(fresh_rng ()) (graph_of cand) in
            let min_inst, min_msg, shrink_steps =
              shrink ~rerun ~budget:500 inst message
            in
            counterexamples :=
              {
                oracle = oracle.Oracle.name;
                seed;
                round;
                instance = inst.desc;
                n = min_inst.n;
                edges = min_inst.edges;
                message = min_msg;
                shrink_steps;
              }
              :: !counterexamples)
      oracles
  done;
  {
    seed;
    rounds;
    oracle_runs = !oracle_runs;
    passed = !passed;
    skipped = !skipped;
    failed = !failed;
    chaos;
    faults_injected = Fault.injected_total () - faults_before;
    crashes_survived = !crashes;
    (* the pool never legitimately shrinks: rescued workers stay alive *)
    pool_stable = Parallel.pool_size () >= pool_before;
    counterexamples = List.rev !counterexamples;
  }
