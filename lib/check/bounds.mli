(** The paper's theorems as executable sanity oracles.

    Each check recomputes a proven statement on a concrete instance —
    [BW(W_n) = n] (Lemma 3.2), [BW(CCC_n) = n/2] (Lemma 3.3), the
    Lemma 2.12 level-cut / Lemma 2.13 mesh-of-stars sandwich around
    [BW(B_n)], and the Section 4 [Θ(k/log k)] expansion envelopes — and
    reports a named pass/fail with a human-readable detail string. A
    failure here means a solver and a theorem disagree: one of them is
    wrong, and it is not the theorem. *)

type check = { name : string; ok : bool; detail : string }
(** One named theorem check with a human-readable account of what was
    compared. *)

(** [check_json c] is the [{"name":..,"ok":..,"detail":..}] rendering used
    by [bfly_tool check]. *)
val check_json : check -> Bfly_obs.Json.t

(** Lemma 3.2 on [W_n], [n = 2^log_n]: the {!Bfly_core.Bw.wrapped} bracket
    pins [n] exactly and its witness is a valid bisection of that
    capacity. *)
val wrapped_law : log_n:int -> check

(** Lemma 3.3 on [CCC_n]: bracket pins [n/2], witness valid. *)
val ccc_law : log_n:int -> check

(** The [BW(B_n)] sandwich: bracket consistent ([lower <= upper], witness
    achieves [upper]), Lemma 2.13 mesh-of-stars bound below the bracket,
    and — for [log_n <= 2], where the level solvers are cheap — the exact
    value inside the bracket with [min_i BW(B_n, L_i) <= BW(B_n)]
    (Lemma 2.12). *)
val butterfly_sandwich : log_n:int -> check list

(** Section 4 envelopes at the witness sizes [k = (d+1)·2^d] (and sibling
    pairs [2k]): closed-form lower bounds below the measured witness
    values, witness values equal to the Lemma 4.1/4.4/4.7/4.10 formulas,
    credit certificates sound, and (small instances) the exact minimum
    inside the envelope. [smoke] skips the exponential exact parts. *)
val expansion_envelopes : smoke:bool -> check list

(** {2 Product-network bounds (arXiv:1202.6291)}

    Certified bisection bounds for the data-center fabrics of
    {!Bfly_networks.Fabric}: Cartesian products of paths (meshes), rings
    (tori), and complete graphs (BCube-style Hamming graphs). Each
    function is {e parity-aware}: the even-side formulas are only claimed
    exact when the largest side is even, the all-odd closed forms only
    when every side is odd, and anything uncovered is reported as a lower
    bound with [exact = None] — never as an asserted equality. *)

(** The arithmetic itself lives in {!Bfly_networks.Fabric.bounds} (pure
    spec arithmetic, so the experiment harness can use it below this
    library in the dependency order); this is the same type, re-exported
    where the oracle battery checks it. *)
type product_bound = Bfly_networks.Fabric.bound = {
  lower : int;  (** Certified lower bound on the bisection width. *)
  exact : int option;
      (** The exact bisection width when a theorem covers the instance;
          [None] when only the lower bound is certified. *)
  method_ : string;  (** Which theorem produced the bound. *)
}

(** Bounds for the mesh [P_{a_1} × … × P_{a_d}]. Largest side even:
    exactly [N/a_max] (the planar cut across the longest side is
    optimal). All sides odd: exactly [Σ_{i<d} Π_{j<=i} a_j] with dims
    ascending — e.g. [BW = n + 1] for the odd n×n grid, 13 for the 3×3×3
    mesh (Azizoğlu–Eğecioğlu). Mixed parity with the longest side odd:
    [N/a_max] as a lower bound only (mesh 2×3×3 has BW 9 > 6).
    @raise Invalid_argument on empty dims or sides < 1. *)
val mesh_bounds : dims:int list -> product_bound

(** Bounds for the torus [C_{a_1} × … × C_{a_d}]: exactly twice the mesh
    bound in every covered case ([2N/a_max] even-side, twice the all-odd
    form otherwise — e.g. 26 for the 3×3×3 torus).
    @raise Invalid_argument on empty dims or sides < 3. *)
val torus_bounds : dims:int list -> product_bound

(** Bounds for the Hamming graph [H(levels, ports)] = [K_ports^levels]
    (the BCube-style core). Even [ports]: exactly
    [(ports²/4)·ports^(levels-1)]. [ports = 3]: exactly
    [3^levels - 1] (it {e is} the all-odd torus). Other odd [ports]:
    the spanning-torus lower bound [2·(ports^levels - 1)/(ports - 1)]
    only. *)
val hamming_bounds : ports:int -> levels:int -> product_bound

(** Dispatch on a fabric spec. [Product] specs that are not purely paths
    or purely rings fall back to the spanning-mesh lower bound (every
    factor has a Hamiltonian path, so the same-size mesh is a spanning
    subgraph). *)
val fabric_bounds : Bfly_networks.Fabric.spec -> product_bound

(** The sandwich oracle on one fabric: certified LB ≤ multilevel
    heuristic ≤ best dimension-aligned cut, both witnesses re-validated
    by {!Invariants.bisection_cut}; when a closed form covers the
    instance, additionally LB = constructed = formula; with
    [~with_exact:true] (small instances only) the exact solver must land
    inside the sandwich and match the formula. Records the
    [product.sandwich.checks] counter. *)
val product_sandwich : ?with_exact:bool -> Bfly_networks.Fabric.spec -> check

(** [BW(G × K_2) <= min(2·BW(G), |V(G)|)] for even [|V(G)|], and
    [<= |V(G)|] in general (the doubled bisection is unbalanced when
    [|V(G)|] is odd), checked with the exact solver on a small [G]. *)
val product_k2_identity : name:string -> Bfly_graph.Graph.t -> check

(** The product-network battery: sandwiches over representative
    mesh/torus/BCube/mixed-product instances plus the [G × K_2]
    identities; [smoke] keeps only the small instances. *)
val product_networks : smoke:bool -> check list

(** All of the above on the standard small instances; [smoke] restricts to
    the cheapest sizes. Records the [check.bounds] timer. *)
val all : smoke:bool -> check list
