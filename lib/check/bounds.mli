(** The paper's theorems as executable sanity oracles.

    Each check recomputes a proven statement on a concrete instance —
    [BW(W_n) = n] (Lemma 3.2), [BW(CCC_n) = n/2] (Lemma 3.3), the
    Lemma 2.12 level-cut / Lemma 2.13 mesh-of-stars sandwich around
    [BW(B_n)], and the Section 4 [Θ(k/log k)] expansion envelopes — and
    reports a named pass/fail with a human-readable detail string. A
    failure here means a solver and a theorem disagree: one of them is
    wrong, and it is not the theorem. *)

type check = { name : string; ok : bool; detail : string }
(** One named theorem check with a human-readable account of what was
    compared. *)

(** [check_json c] is the [{"name":..,"ok":..,"detail":..}] rendering used
    by [bfly_tool check]. *)
val check_json : check -> Bfly_obs.Json.t

(** Lemma 3.2 on [W_n], [n = 2^log_n]: the {!Bfly_core.Bw.wrapped} bracket
    pins [n] exactly and its witness is a valid bisection of that
    capacity. *)
val wrapped_law : log_n:int -> check

(** Lemma 3.3 on [CCC_n]: bracket pins [n/2], witness valid. *)
val ccc_law : log_n:int -> check

(** The [BW(B_n)] sandwich: bracket consistent ([lower <= upper], witness
    achieves [upper]), Lemma 2.13 mesh-of-stars bound below the bracket,
    and — for [log_n <= 2], where the level solvers are cheap — the exact
    value inside the bracket with [min_i BW(B_n, L_i) <= BW(B_n)]
    (Lemma 2.12). *)
val butterfly_sandwich : log_n:int -> check list

(** Section 4 envelopes at the witness sizes [k = (d+1)·2^d] (and sibling
    pairs [2k]): closed-form lower bounds below the measured witness
    values, witness values equal to the Lemma 4.1/4.4/4.7/4.10 formulas,
    credit certificates sound, and (small instances) the exact minimum
    inside the envelope. [smoke] skips the exponential exact parts. *)
val expansion_envelopes : smoke:bool -> check list

(** All of the above on the standard small instances; [smoke] restricts to
    the cheapest sizes. Records the [check.bounds] timer. *)
val all : smoke:bool -> check list
