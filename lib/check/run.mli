(** The [bfly_tool check] entry point: theorem oracles ({!Bounds}), family
    agreement checks (heuristics vs. exact and embedding revalidation on
    the B/W/CCC families), and the random-instance {!Fuzzer}, folded into
    one machine-readable summary.

    The summary is a single JSON object:
    [{"tool":"bfly_check","seed":..,"rounds":..,"smoke":..,
      "families":[{"name":..,"ok":..,"detail":..},...],
      "fuzz":{...,"counterexamples":[...]},"ok":true}]
    and is deterministic for a fixed [(seed, rounds, smoke)]. *)

(** Heuristic portfolio ≥ exact with valid witnesses on the B/W/CCC
    families ([log_n = 2], plus [3] when not [smoke]), and the classic
    embeddings revalidated path by path. Uses [seed] for the heuristics'
    restarts. *)
val family_agreement : smoke:bool -> seed:int -> Bounds.check list

(** [execute ?chaos ~seed ~rounds ~smoke ()] runs everything. [smoke]
    restricts the bound and family checks to the cheapest instances and
    caps fuzz rounds at 5. With [chaos] (default [false]) the fuzzing
    stage — and only it; the theorem checks stay fault-free — runs inside
    {!Bfly_resil.Fault.scope} with every fault class armed at rate 0.05,
    seeded by [seed]: injected disk errors, cache corruption, worker
    crashes and deadline expiries must not change any oracle verdict nor
    shrink the domain pool. Returns the summary JSON and whether every
    check passed. *)
val execute :
  ?chaos:bool ->
  seed:int ->
  rounds:int ->
  smoke:bool ->
  unit ->
  Bfly_obs.Json.t * bool
