(** The [bfly_tool check] entry point: theorem oracles ({!Bounds}), family
    agreement checks (heuristics vs. exact and embedding revalidation on
    the B/W/CCC families), and the random-instance {!Fuzzer}, folded into
    one machine-readable summary.

    The summary is a single JSON object:
    [{"tool":"bfly_check","seed":..,"rounds":..,"smoke":..,
      "families":[{"name":..,"ok":..,"detail":..},...],
      "fuzz":{...,"counterexamples":[...]},"ok":true}]
    and is deterministic for a fixed [(seed, rounds, smoke)]. *)

(** Heuristic portfolio ≥ exact with valid witnesses on the B/W/CCC
    families ([log_n = 2], plus [3] when not [smoke]), and the classic
    embeddings revalidated path by path. Uses [seed] for the heuristics'
    restarts. *)
val family_agreement : smoke:bool -> seed:int -> Bounds.check list

(** [execute ~seed ~rounds ~smoke] runs everything. [smoke] restricts the
    bound and family checks to the cheapest instances and caps fuzz rounds
    at 5. Returns the summary JSON and whether every check passed. *)
val execute : seed:int -> rounds:int -> smoke:bool -> Bfly_obs.Json.t * bool
