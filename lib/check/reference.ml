(* Reference oracles: definitional, sequential, edge-list based. Kept
   deliberately naive — no pruning, no incrementality, no sharing with the
   solvers under test — so that a bug would have to be reinvented here to
   go unnoticed. *)

module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset

let cut_capacity g side =
  Array.fold_left
    (fun acc (u, v) ->
      if Bitset.mem side u <> Bitset.mem side v then acc + 1 else acc)
    0 (G.edges g)

let neighborhood_size g s =
  let n = G.n_nodes g in
  let seen = Array.make n false in
  let count = ref 0 in
  Array.iter
    (fun (u, v) ->
      if Bitset.mem s u && (not (Bitset.mem s v)) && not seen.(v) then begin
        seen.(v) <- true;
        incr count
      end;
      if Bitset.mem s v && (not (Bitset.mem s u)) && not seen.(u) then begin
        seen.(u) <- true;
        incr count
      end)
    (G.edges g);
  !count

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go m 0

let bisection_width ?u g =
  let n = G.n_nodes g in
  if n > 20 then invalid_arg "Reference.bisection_width: more than 20 nodes";
  if n = 0 then invalid_arg "Reference.bisection_width: empty graph";
  let u_mask =
    match u with
    | None -> (1 lsl n) - 1
    | Some s -> Bitset.fold s 0 (fun acc i -> acc lor (1 lsl i))
  in
  if u_mask = 0 then invalid_arg "Reference.bisection_width: empty U";
  let u_size = popcount u_mask in
  let edges = G.edges g in
  let best = ref max_int and best_mask = ref 0 in
  for m = 0 to (1 lsl n) - 1 do
    let k = popcount (m land u_mask) in
    if k = u_size / 2 || k = (u_size + 1) / 2 then begin
      let c =
        Array.fold_left
          (fun acc (a, b) ->
            if (m lsr a) land 1 <> (m lsr b) land 1 then acc + 1 else acc)
          0 edges
      in
      if c < !best then begin
        best := c;
        best_mask := m
      end
    end
  done;
  let side = Bitset.create n in
  for i = 0 to n - 1 do
    if (!best_mask lsr i) land 1 = 1 then Bitset.add side i
  done;
  (!best, side)

(* n choose k without the library's Subset module, saturating well above
   the guard threshold. *)
let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    for i = 1 to k do
      if !acc < 1_000_000_000 then acc := !acc * (n - k + i) / i
    done;
    !acc
  end

let enumeration_limit = 10_000_000

(* Enumerate k-subsets of [0, n) in lexicographic order, maintaining a
   membership array incrementally; [eval] scores the current subset. *)
let minimize_over_ksubsets ~n ~k ~eval =
  let mem = Array.make n false in
  let chosen = Array.make k 0 in
  let best = ref max_int and best_set = ref [||] in
  let rec go start idx =
    if idx = k then begin
      let c = eval mem in
      if c < !best then begin
        best := c;
        best_set := Array.copy chosen
      end
    end
    else
      for v = start to n - (k - idx) do
        mem.(v) <- true;
        chosen.(idx) <- v;
        go (v + 1) (idx + 1);
        mem.(v) <- false
      done
  in
  go 0 0;
  let side = Bitset.create n in
  Array.iter (Bitset.add side) !best_set;
  (!best, side)

let guard_expansion name g ~k =
  let n = G.n_nodes g in
  if k < 1 || k >= n then invalid_arg (name ^ ": k out of range");
  if binomial n k > enumeration_limit then
    invalid_arg (name ^ ": C(n,k) too large for the reference enumeration")

let edge_expansion g ~k =
  guard_expansion "Reference.edge_expansion" g ~k;
  let edges = G.edges g in
  minimize_over_ksubsets ~n:(G.n_nodes g) ~k ~eval:(fun mem ->
      Array.fold_left
        (fun acc (u, v) -> if mem.(u) <> mem.(v) then acc + 1 else acc)
        0 edges)

let node_expansion g ~k =
  guard_expansion "Reference.node_expansion" g ~k;
  let n = G.n_nodes g in
  let edges = G.edges g in
  let seen = Array.make n 0 in
  let stamp = ref 0 in
  minimize_over_ksubsets ~n ~k ~eval:(fun mem ->
      incr stamp;
      let c = ref 0 in
      Array.iter
        (fun (u, v) ->
          if mem.(u) && (not mem.(v)) && seen.(v) <> !stamp then begin
            seen.(v) <- !stamp;
            incr c
          end;
          if mem.(v) && (not mem.(u)) && seen.(u) <> !stamp then begin
            seen.(u) <- !stamp;
            incr c
          end)
        edges;
      !c)

let embedding_measures e =
  let module E = Bfly_embed.Embedding in
  let host = E.host e in
  let node_map = E.node_map e in
  let paths = E.edge_paths e in
  (* load: guest nodes per host node *)
  let counts = Array.make (G.n_nodes host) 0 in
  Array.iter (fun h -> counts.(h) <- counts.(h) + 1) node_map;
  let load = Array.fold_left max 0 counts in
  (* parallel-edge multiplicity per host pair *)
  let mult = Hashtbl.create 256 in
  G.iter_edges host (fun u v ->
      let key = (min u v, max u v) in
      Hashtbl.replace mult key
        (1 + Option.value ~default:0 (Hashtbl.find_opt mult key)));
  (* congestion: walk every path, count usage per unordered pair, divide by
     multiplicity rounding up *)
  let usage = Hashtbl.create 256 in
  let dilation = ref 0 in
  Array.iter
    (fun path ->
      dilation := max !dilation (List.length path - 1);
      let rec walk = function
        | a :: (b :: _ as rest) ->
            let key = (min a b, max a b) in
            Hashtbl.replace usage key
              (1 + Option.value ~default:0 (Hashtbl.find_opt usage key));
            walk rest
        | [ _ ] | [] -> ()
      in
      walk path)
    paths;
  let congestion =
    Hashtbl.fold
      (fun key count acc ->
        let m = Option.value ~default:1 (Hashtbl.find_opt mult key) in
        max acc ((count + m - 1) / m))
      usage 0
  in
  (load, congestion, max 0 !dilation)
