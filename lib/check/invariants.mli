(** Output validators: every claim a solver returns alongside a value — a
    witness cut, a witness subset, an embedding — is re-verified here from
    first principles (via {!Reference}, never via the code path that
    produced it).

    A failed invariant means the solver's {e reported} value and its
    {e actual} output disagree, which a pure value-vs-value differential
    test cannot see. *)

type result = Pass | Fail of string
(** A validation verdict; [Fail] carries the first-principles discrepancy. *)

(** [is_pass r] is [true] iff [r] is [Pass]. *)
val is_pass : result -> bool

(** [message r] is [Some m] for failures. *)
val message : result -> string option

(** First failure wins; [Pass] when all pass. *)
val all : result list -> result

(** [bisection_cut ?u g ~value ~witness] checks that [witness] is a side
    set over [g]'s nodes, that it splits [u] (default: all nodes) as evenly
    as possible, and that its recounted capacity equals [value]. *)
val bisection_cut :
  ?u:Bfly_graph.Bitset.t ->
  Bfly_graph.Graph.t ->
  value:int ->
  witness:Bfly_graph.Bitset.t ->
  result

(** [bisection_interval ?u g ~lower ~upper ~witness] validates a certified
    interval from an interrupted supervised search: the interval is
    non-empty and non-negative, and [witness] is a real cut bisecting [u]
    whose recounted capacity is exactly [upper] — so [BW <= upper] holds by
    construction. (The lower end is the solver's pruning certificate and
    cannot be recomputed cheaply; the complementary soundness check —
    [lower <= BW] — is exercised by the differential oracles on instances
    small enough to solve exactly.) *)
val bisection_interval :
  ?u:Bfly_graph.Bitset.t ->
  Bfly_graph.Graph.t ->
  lower:int ->
  upper:int ->
  witness:Bfly_graph.Bitset.t ->
  result

(** [outcome_of_supervised ?u g outcome] dispatches a
    {!Bfly_cuts.Exact.outcome} to {!bisection_cut} ([Complete]) or
    {!bisection_interval} ([Interval]). *)
val outcome_of_supervised :
  ?u:Bfly_graph.Bitset.t ->
  Bfly_graph.Graph.t ->
  Bfly_cuts.Exact.outcome ->
  result

(** [expansion_witness ~kind g ~k ~value ~witness] checks [|witness| = k]
    and that its recounted edge boundary ([`Edge]) or neighborhood size
    ([`Node]) equals [value]. *)
val expansion_witness :
  kind:[ `Edge | `Node ] ->
  Bfly_graph.Graph.t ->
  k:int ->
  value:int ->
  witness:Bfly_graph.Bitset.t ->
  result

(** [paths_are_walks g paths] checks every path is a non-empty walk in [g]
    (consecutive nodes adjacent, all nodes in range). *)
val paths_are_walks : Bfly_graph.Graph.t -> int list array -> result

(** [embedding e] re-validates an embedding end to end: node map in host
    range, each edge path a host walk connecting the images of its guest
    edge's endpoints, and the measured load/congestion/dilation equal to
    {!Reference.embedding_measures}. *)
val embedding : Bfly_embed.Embedding.t -> result
