module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module Exact = Bfly_cuts.Exact
module Heuristics = Bfly_cuts.Heuristics
module E = Bfly_expansion.Expansion
module Metrics = Bfly_obs.Metrics

type verdict = Pass | Skip of string | Fail of string

type t = {
  name : string;
  run : rng:Random.State.t -> Bfly_graph.Graph.t -> verdict;
}

let fail fmt = Printf.ksprintf (fun m -> Fail m) fmt

let of_invariant = function
  | Invariants.Pass -> Pass
  | Invariants.Fail m -> Fail m

let seq = function
  | (Fail _ | Skip _) as v -> fun _ -> v
  | Pass -> fun next -> next ()

(* Wrap an oracle body with the size guard and the metrics counters. *)
let make name ~max_nodes body =
  let runs = Metrics.counter (Printf.sprintf "check.oracle.%s.runs" name) in
  let failures =
    Metrics.counter (Printf.sprintf "check.oracle.%s.failures" name)
  in
  let run ~rng g =
    let n = G.n_nodes g in
    if n < 2 then Skip "fewer than 2 nodes"
    else if n > max_nodes then
      Skip (Printf.sprintf "%d nodes exceeds oracle limit %d" n max_nodes)
    else begin
      Metrics.incr runs;
      match body ~rng g with
      | Fail _ as f ->
          Metrics.incr failures;
          f
      | v -> v
    end
  in
  { name; run }

let exact_vs_reference =
  make "exact_vs_reference" ~max_nodes:14 (fun ~rng:_ g ->
      let v_ref, _ = Reference.bisection_width g in
      let v, witness = Exact.bisection_width g in
      if v <> v_ref then fail "branch and bound %d, reference %d" v v_ref
      else of_invariant (Invariants.bisection_cut g ~value:v ~witness))

let bb_vs_exhaustive =
  make "bb_vs_exhaustive" ~max_nodes:16 (fun ~rng:_ g ->
      let v_ex, w_ex = Exact.bisection_width_exhaustive g in
      let v, _ = Exact.bisection_width g in
      if v <> v_ex then fail "branch and bound %d, exhaustive %d" v v_ex
      else of_invariant (Invariants.bisection_cut g ~value:v_ex ~witness:w_ex))

let parallel_vs_sequential =
  make "parallel_vs_sequential" ~max_nodes:16 (fun ~rng:_ g ->
      let v_par, w_par = Exact.bisection_width g in
      let v_seq, w_seq, _visited = Exact.bisection_width_instrumented g in
      if v_par <> v_seq then
        fail "parallel engine %d, sequential engine %d" v_par v_seq
      else
        of_invariant
          (Invariants.all
             [
               Invariants.bisection_cut g ~value:v_par ~witness:w_par;
               Invariants.bisection_cut g ~value:v_seq ~witness:w_seq;
             ]))

let u_bisection_vs_reference =
  make "u_bisection_vs_reference" ~max_nodes:12 (fun ~rng g ->
      let n = G.n_nodes g in
      let u = Bitset.create n in
      let size = 2 + Random.State.int rng (n - 1) in
      let p = Bfly_graph.Perm.random ~rng n in
      for i = 0 to size - 1 do
        Bitset.add u (Bfly_graph.Perm.apply p i)
      done;
      let v_ref, _ = Reference.bisection_width ~u g in
      let v, witness = Exact.bisection_width ~u g in
      if v <> v_ref then
        fail "U-bisection: branch and bound %d, reference %d (|U| = %d)" v
          v_ref (Bitset.cardinal u)
      else of_invariant (Invariants.bisection_cut ~u g ~value:v ~witness))

let heuristics_respect_exact =
  make "heuristics_respect_exact" ~max_nodes:14 (fun ~rng g ->
      let exact, _ = Exact.bisection_width g in
      let solvers =
        [
          ("kernighan_lin", fun () -> Heuristics.kernighan_lin ~rng g);
          ("fiduccia_mattheyses", fun () -> Heuristics.fiduccia_mattheyses ~rng g);
          ("spectral", fun () -> Heuristics.spectral g);
          ("annealing", fun () -> Heuristics.annealing ~rng ~steps:2_000 g);
          ( "best_of",
            fun () ->
              let c, side, _ = Heuristics.best_of ~rng g in
              (c, side) );
        ]
      in
      List.fold_left
        (fun acc (name, solve) ->
          seq acc @@ fun () ->
          let c, side = solve () in
          if c < exact then
            fail "%s reports %d below the exact optimum %d" name c exact
          else
            match Invariants.bisection_cut g ~value:c ~witness:side with
            | Invariants.Pass -> Pass
            | Invariants.Fail m -> fail "%s: %s" name m)
        Pass solvers)

(* The multilevel partitioner collapses to a single refinement level on
   oracle-sized graphs, but the whole contract still holds: the returned
   capacity is an upper bound on the exact optimum and the witness is a
   valid bisection at tolerance 1. *)
let multilevel_vs_exact =
  make "multilevel_vs_exact" ~max_nodes:14 (fun ~rng g ->
      let exact, _ = Exact.bisection_width g in
      let c, side = Bfly_cuts.Multilevel.bisect ~rng ~restarts:2 g in
      if c < exact then
        fail "multilevel reports %d below the exact optimum %d" c exact
      else of_invariant (Invariants.bisection_cut g ~value:c ~witness:side))

(* The supervised engine under an artificially tiny step budget must (a)
   certify only intervals that really contain the exact answer, with a
   witness achieving the upper end, and (b) once resumed to completion,
   agree with the unsupervised engine exactly. The budget doubles each
   attempt so the loop terminates even when checkpoints cannot persist
   (cache disabled) or an injected deadline keeps firing (chaos mode). *)
let supervised_vs_exact =
  let module Cancel = Bfly_resil.Cancel in
  let module Budget = Bfly_resil.Budget in
  make "supervised_vs_exact" ~max_nodes:12 (fun ~rng g ->
      let n = G.n_nodes g in
      (* a random U gives this oracle its own cache key, so the supervised
         engine actually searches under the tiny budget instead of being
         served whatever a sibling oracle already cached for the plain
         bisection of [g] *)
      let u = Bitset.create n in
      let size = 2 + Random.State.int rng (n - 1) in
      let p = Bfly_graph.Perm.random ~rng n in
      for i = 0 to size - 1 do
        Bitset.add u (Bfly_graph.Perm.apply p i)
      done;
      (* brute force, cache-free ground truth *)
      let v_exact, _ = Reference.bisection_width ~u g in
      let rec attempt steps tries =
        if tries = 0 then Skip "budget never sufficed (chaos?)"
        else
          let cancel = Cancel.create ~budget:(Budget.make ~steps ()) () in
          match Exact.bisection_width_supervised ~u ~cancel ~resume:true g with
          | Exact.Complete (v, witness) ->
              if v <> v_exact then
                fail "supervised completed at %d, reference %d" v v_exact
              else
                of_invariant (Invariants.bisection_cut ~u g ~value:v ~witness)
          | Exact.Interval { lower; upper; witness; reason = _ } ->
              if not (lower <= v_exact && v_exact <= upper) then
                fail "certified interval [%d, %d] misses the exact value %d"
                  lower upper v_exact
              else
                seq
                  (of_invariant
                     (Invariants.bisection_interval ~u g ~lower ~upper ~witness))
                  (fun () -> attempt (2 * steps) (tries - 1))
      in
      attempt 64 24)

let expansion_vs_reference =
  make "expansion_vs_reference" ~max_nodes:12 (fun ~rng g ->
      let n = G.n_nodes g in
      let k = 1 + Random.State.int rng (min 4 (n - 1)) in
      let ee_ref, _ = Reference.edge_expansion g ~k in
      let ee, ee_w = E.ee_exact g ~k in
      let ne_ref, _ = Reference.node_expansion g ~k in
      let ne, ne_w = E.ne_exact g ~k in
      if ee <> ee_ref then
        fail "EE(G, %d): parallel enumeration %d, reference %d" k ee ee_ref
      else if ne <> ne_ref then
        fail "NE(G, %d): parallel enumeration %d, reference %d" k ne ne_ref
      else
        of_invariant
          (Invariants.all
             [
               Invariants.expansion_witness ~kind:`Edge g ~k ~value:ee
                 ~witness:ee_w;
               Invariants.expansion_witness ~kind:`Node g ~k ~value:ne
                 ~witness:ne_w;
             ]))

let anneal_vs_exact =
  make "anneal_vs_exact" ~max_nodes:12 (fun ~rng g ->
      let n = G.n_nodes g in
      let k = 1 + Random.State.int rng (min 4 (n - 1)) in
      let exact, _ = E.ee_exact g ~k in
      let ub, witness = E.ee_anneal ~rng ~steps:2_000 g ~k in
      if ub < exact then
        fail "EE annealing reports %d below the exact minimum %d" ub exact
      else
        of_invariant
          (Invariants.expansion_witness ~kind:`Edge g ~k ~value:ub ~witness))

let all =
  [
    exact_vs_reference;
    bb_vs_exhaustive;
    parallel_vs_sequential;
    u_bisection_vs_reference;
    supervised_vs_exact;
    heuristics_respect_exact;
    multilevel_vs_exact;
    expansion_vs_reference;
    anneal_vs_exact;
  ]
