(** Naive reference implementations used as differential-testing oracles.

    Everything here is written against the {e specification} — sequential,
    enumeration-based, one obvious pass over the raw edge list — and shares
    no code with the optimized solvers it cross-checks ({!Bfly_cuts.Exact}'s
    branch and bound, the parallel k-subset enumerations of
    {!Bfly_expansion.Expansion}, the incremental gain structures of
    {!Bfly_cuts.Cut.State}). The module grew out of the test suite's
    [brute_bw] helper, which it supersedes.

    All functions are exponential and guarded: they are meant for the
    random instances of {!Fuzzer} (≤ ~16 nodes), not production use. *)

(** [cut_capacity g side] is [C(S, S̄)] recounted from the raw edge list,
    with multiplicity. *)
val cut_capacity : Bfly_graph.Graph.t -> Bfly_graph.Bitset.t -> int

(** [neighborhood_size g s] is [|N(S)|] recounted from the raw edge list. *)
val neighborhood_size : Bfly_graph.Graph.t -> Bfly_graph.Bitset.t -> int

(** [bisection_width ?u g] enumerates all [2^n] side sets and keeps the
    cheapest that bisects [u] (default: all nodes): the definitional
    minimum bisection / U-bisection. Ties go to the lowest bit mask.
    @raise Invalid_argument when [n_nodes g > 20] or [u] is empty. *)
val bisection_width :
  ?u:Bfly_graph.Bitset.t -> Bfly_graph.Graph.t -> int * Bfly_graph.Bitset.t

(** [edge_expansion g ~k] is [EE(G,k)] with a minimizing witness, by
    sequential recursive enumeration of all k-subsets.
    @raise Invalid_argument when [C(n,k)] exceeds ~10 million or [k] is out
    of [1, n-1]. *)
val edge_expansion : Bfly_graph.Graph.t -> k:int -> int * Bfly_graph.Bitset.t

(** [node_expansion g ~k] is [NE(G,k)] with a witness; same limits. *)
val node_expansion : Bfly_graph.Graph.t -> k:int -> int * Bfly_graph.Bitset.t

(** [embedding_measures e] recomputes [(load, congestion, dilation)] of an
    embedding by walking its raw node map and edge paths — independent of
    {!Bfly_embed.Embedding}'s own accounting, including the
    multiplicity-adjusted congestion rule on multigraph hosts. *)
val embedding_measures : Bfly_embed.Embedding.t -> int * int * int
