module G = Bfly_graph.Graph
module Generators = Bfly_graph.Generators
module Sweep = Bfly_graph.Sweep
module Cancel = Bfly_resil.Cancel
module Multilevel = Bfly_cuts.Multilevel
module Heuristics = Bfly_cuts.Heuristics
module Certificate = Bfly_cuts.Certificate
module Json = Bfly_obs.Json
module Metrics = Bfly_obs.Metrics

(* arXiv:2009.00598: the minimum bisection of a random cubic graph is
   asymptotically almost surely between these two constants times n. *)
let mb_lower = 0.10300
let mb_upper = 0.13932

(* The pinned statistical-oracle windows for the degree-3 campaign: the
   mean ml-heuristic cut ratio at each of the largest sizes must land
   inside [lo, hi]. The lower edge is the arXiv constant itself — the
   heuristic upper-bounds the true minimum bisection, which a.a.s.
   exceeds mb_lower·n — and the upper edge is the committed campaign's
   measured mean (0.13584 / 0.13418 / 0.13625) plus at least six
   standard errors of the 20-seed mean (EXPERIMENTS.md, chapter C1,
   derives the widths from the committed seed spread); it sits just
   above mb_upper, so passing certifies the heuristic tracks the
   theorem's upper constant to within noise. *)
let windows =
  [ (1024, (mb_lower, 0.140)); (2048, (mb_lower, 0.140)); (4096, (mb_lower, 0.140)) ]

let window ~n = List.assoc_opt n windows

let default_sizes = [ 64; 128; 256; 512; 1024; 2048; 4096 ]
let default_seeds = 20
let default_restarts = 4

type instance = {
  n : int;
  seed : int;
  edges : int;
  lb : int;
  ml : int;
  spectral : int;
}

type summary = {
  s_n : int;
  count : int;
  mean_lb : float;
  mean_ml : float;
  min_ml : float;
  max_ml : float;
  mean_spectral : float;
}

type t = {
  degree : int;
  sizes : int list;
  seeds : int;
  restarts : int;
  instances : instance list;
  summaries : summary list;
  checks : Bounds.check list;
  ok : bool;
}

let c_instances = Metrics.counter "campaign.instances"
let c_oracle = Metrics.counter "campaign.oracle.checks"

(* Seed prefixes keep the campaign's rng streams disjoint from every
   other seeded stream in the repo (tests 0x7e57, jobs 0x5e4e/0x5e4a);
   instance wiring and solver restarts draw from separate streams so a
   different restart count cannot change which graph seed k names. *)
let instance_rng ~degree ~n ~seed = Random.State.make [| 0xca9a; degree; n; seed |]
let solver_rng ~degree ~n ~seed = Random.State.make [| 0xca9b; degree; n; seed |]

let instance_graph ~degree ~n ~seed =
  Generators.random_regular ~simple:true
    ~rng:(instance_rng ~degree ~n ~seed)
    ~n ~degree

let validate what g ~value ~witness =
  match Invariants.bisection_cut g ~value ~witness with
  | Invariants.Pass -> None
  | Invariants.Fail m -> Some (Printf.sprintf "%s witness invalid: %s" what m)

let run_instance ?cancel ~degree ~restarts ~n ~seed () =
  let g = instance_graph ~degree ~n ~seed in
  let lb = Certificate.kn_bound g in
  let ml, ml_witness =
    Multilevel.bisect ~rng:(solver_rng ~degree ~n ~seed) ~restarts ?cancel g
  in
  let spectral, sp_witness = Heuristics.spectral g in
  let faults =
    List.filter_map
      (Option.map (Printf.sprintf "n=%d seed=%d: %s" n seed))
      [
        validate "multilevel" g ~value:ml ~witness:ml_witness;
        validate "spectral" g ~value:spectral ~witness:sp_witness;
      ]
  in
  Metrics.incr c_instances;
  ({ n; seed; edges = G.n_edges g; lb; ml; spectral }, faults)

(* ---- statistical oracles ---- *)

let ratio v n = float_of_int v /. float_of_int n

(* Per-instance sanity: the certified LB must not exceed either
   heuristic (both are upper bounds on the true bisection width), and
   the heuristics must beat the expected random balanced cut,
   degree·n/4 — a broad hard bound that still catches a partitioner
   reduced to coin flipping. [witness_faults] carries any failed
   Invariants re-validation from the sweep. *)
let sanity ~degree ?(witness_faults = []) instances =
  let violation i =
    if i.lb < 0 then Some "certified LB negative"
    else if i.lb > i.ml then Some "certified LB exceeds the ml heuristic"
    else if i.lb > i.spectral then Some "certified LB exceeds the spectral cut"
    else if 4 * i.ml > degree * i.n then
      Some "ml heuristic worse than the expected random cut degree*n/4"
    else if 4 * i.spectral > degree * i.n then
      Some "spectral cut worse than the expected random cut degree*n/4"
    else None
  in
  let bad =
    List.filter_map
      (fun i ->
        Option.map
          (fun m -> Printf.sprintf "n=%d seed=%d: %s" i.n i.seed m)
          (violation i))
      instances
    @ witness_faults
  in
  {
    Bounds.name = "campaign/sanity";
    ok = bad = [];
    detail =
      (match bad with
      | [] ->
          Printf.sprintf "%d instances, 0 violations" (List.length instances)
      | first :: _ ->
          Printf.sprintf "%d violation(s), first: %s" (List.length bad) first);
  }

(* Aggregate oracles, defined only for the cubic campaign at the pinned
   window sizes: the mean ml ratio must land inside the committed
   bracket around the arXiv:2009.00598 constants, and the mean certified
   LB ratio must stay inside (0, mb_upper] — a lower bound that crossed
   the upper constant would contradict the theorem it certifies against. *)
let aggregate ~degree summaries =
  if degree <> 3 then []
  else
    List.concat_map
      (fun s ->
        match window ~n:s.s_n with
        | None -> []
        | Some (lo, hi) ->
            [
              {
                Bounds.name = Printf.sprintf "campaign/lb/n=%d" s.s_n;
                ok = s.mean_lb > 0. && s.mean_lb <= mb_upper;
                detail =
                  Printf.sprintf "mean lb ratio %.5f in (0, %.5f]" s.mean_lb
                    mb_upper;
              };
              {
                Bounds.name = Printf.sprintf "campaign/window/n=%d" s.s_n;
                ok = s.mean_ml >= lo && s.mean_ml <= hi;
                detail =
                  Printf.sprintf "mean ml ratio %.5f, window [%.5f, %.5f]"
                    s.mean_ml lo hi;
              };
            ])
      summaries

let summarize ~sizes instances =
  List.map
    (fun n ->
      let xs = List.filter (fun i -> i.n = n) instances in
      let k = float_of_int (List.length xs) in
      let mean f =
        List.fold_left (fun acc i -> acc +. ratio (f i) i.n) 0. xs /. k
      in
      {
        s_n = n;
        count = List.length xs;
        mean_lb = mean (fun i -> i.lb);
        mean_ml = mean (fun i -> i.ml);
        min_ml =
          List.fold_left (fun acc i -> min acc (ratio i.ml i.n)) infinity xs;
        max_ml =
          List.fold_left
            (fun acc i -> max acc (ratio i.ml i.n))
            neg_infinity xs;
        mean_spectral = mean (fun i -> i.spectral);
      })
    sizes

(* ---- the campaign ---- *)

let run ?cancel ?(restarts = default_restarts) ~degree ~sizes ~seeds () =
  let sizes = List.sort_uniq compare sizes in
  if degree < 2 || degree > 16 then Error "degree must be in [2, 16]"
  else if seeds < 1 then Error "seeds must be >= 1"
  else if restarts < 1 then Error "restarts must be >= 1"
  else if sizes = [] then Error "sizes must be non-empty"
  else if List.exists (fun n -> n < 2 * degree || n > 16384) sizes then
    Error "every size must satisfy 2*degree <= n <= 16384"
  else if List.exists (fun n -> n * degree mod 2 <> 0) sizes then
    Error "n*degree must be even for every size (no odd-degree pairing)"
  else begin
    (* resolve the ambient token once, on this domain: sweep tasks run on
       pool workers, whose ambient slots are their own *)
    let cancel = Cancel.resolve cancel in
    let results =
      Sweep.run ?cancel ~sizes ~seeds (fun ~n ~seed ->
          run_instance ?cancel ~degree ~restarts ~n ~seed ())
    in
    let instances = List.map fst (Array.to_list results) in
    let witness_faults = List.concat_map snd (Array.to_list results) in
    let summaries = summarize ~sizes instances in
    let checks =
      sanity ~degree ~witness_faults instances :: aggregate ~degree summaries
    in
    Metrics.add c_oracle (List.length checks);
    let ok = List.for_all (fun c -> c.Bounds.ok) checks in
    Ok { degree; sizes; seeds; restarts; instances; summaries; checks; ok }
  end

(* ---- bfly-campaign/1 document ---- *)

let schema = "bfly-campaign/1"

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("degree", Json.Int t.degree);
      ("seeds", Json.Int t.seeds);
      ("restarts", Json.Int t.restarts);
      ("sizes", Json.List (List.map (fun n -> Json.Int n) t.sizes));
      ( "constants",
        Json.Obj
          [
            ("mb_lower", Json.Float mb_lower);
            ("mb_upper", Json.Float mb_upper);
            ("source", Json.Str "arXiv:2009.00598");
          ] );
      ( "instances",
        Json.List
          (List.map
             (fun i ->
               Json.Obj
                 [
                   ("n", Json.Int i.n);
                   ("seed", Json.Int i.seed);
                   ("edges", Json.Int i.edges);
                   ("lb", Json.Int i.lb);
                   ("ml", Json.Int i.ml);
                   ("spectral", Json.Int i.spectral);
                 ])
             t.instances) );
      ( "summary",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("n", Json.Int s.s_n);
                   ("instances", Json.Int s.count);
                   ("mean_lb", Json.Float s.mean_lb);
                   ("mean_ml", Json.Float s.mean_ml);
                   ("min_ml", Json.Float s.min_ml);
                   ("max_ml", Json.Float s.max_ml);
                   ("mean_spectral", Json.Float s.mean_spectral);
                   ( "window",
                     match
                       if t.degree = 3 then window ~n:s.s_n else None
                     with
                     | None -> Json.Null
                     | Some (lo, hi) ->
                         Json.List [ Json.Float lo; Json.Float hi ] );
                 ])
             t.summaries) );
      ( "oracle",
        Json.Obj
          [
            ("ok", Json.Bool t.ok);
            ("checks", Json.List (List.map Bounds.check_json t.checks));
          ] );
    ]

let render t =
  let buf = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf
    "random-regular bisection campaign: degree %d, seeds 1..%d per size, ml \
     restarts %d\n"
    t.degree t.seeds t.restarts;
  pf
    "columns are cut/n ratios; LB is the certified K_N-embedding congestion \
     bound;\n\
     min bisection of random cubic graphs lies in [%.5f, %.5f]*n a.a.s.\n\
     (arXiv:2009.00598)\n\n"
    mb_lower mb_upper;
  pf "%6s %5s %9s %9s %9s %9s %9s  %s\n" "n" "inst" "mean lb" "mean ml"
    "min ml" "max ml" "mean sp" "window";
  List.iter
    (fun s ->
      pf "%6d %5d %9.5f %9.5f %9.5f %9.5f %9.5f  %s\n" s.s_n s.count s.mean_lb
        s.mean_ml s.min_ml s.max_ml s.mean_spectral
        (match if t.degree = 3 then window ~n:s.s_n else None with
        | None -> "-"
        | Some (lo, hi) -> Printf.sprintf "[%.5f, %.5f]" lo hi))
    t.summaries;
  pf "\noracle:\n";
  List.iter
    (fun c ->
      pf "  %-26s %-4s %s\n" c.Bounds.name
        (if c.Bounds.ok then "ok" else "FAIL")
        c.Bounds.detail)
    t.checks;
  pf "campaign: %d instances, %d oracle checks, %s\n"
    (List.length t.instances) (List.length t.checks)
    (if t.ok then "all passed" else "FAILURES");
  Buffer.contents buf

(* ---- drift comparison against a committed document ---- *)

let geti doc k = Option.bind (Json.member k doc) Json.to_int_opt
let gets doc k = Option.bind (Json.member k doc) Json.to_string_opt

let doc_instances doc =
  match Json.member "instances" doc with
  | Some (Json.List l) ->
      List.filter_map
        (fun e ->
          match
            ( geti e "n",
              geti e "seed",
              geti e "edges",
              geti e "lb",
              geti e "ml",
              geti e "spectral" )
          with
          | Some n, Some seed, Some edges, Some lb, Some ml, Some spectral ->
              Some { n; seed; edges; lb; ml; spectral }
          | _ -> None)
        l
  | _ -> []

(* [compare_docs ~baseline current] — drift messages, empty when every
   instance of [current] reproduces the committed triple exactly. The
   current document may cover a sub-grid of the baseline (the CI smoke
   sweep does); summaries and the oracle verdict are additionally
   compared when the grids coincide. *)
let compare_docs ~baseline current =
  match (gets baseline "schema", gets current "schema") with
  | Some b, _ when b <> schema ->
      [ Printf.sprintf "baseline schema is %s, need %s" b schema ]
  | None, _ -> [ "baseline has no schema field" ]
  | _, Some c when c <> schema ->
      [ Printf.sprintf "document schema is %s, need %s" c schema ]
  | _, None -> [ "document has no schema field" ]
  | Some _, Some _ ->
      let drifts = ref [] in
      let drift fmt = Printf.ksprintf (fun m -> drifts := m :: !drifts) fmt in
      List.iter
        (fun k ->
          match (geti baseline k, geti current k) with
          | Some b, Some c when b <> c -> drift "%s = %d, baseline %d" k c b
          | _ -> ())
        [ "degree"; "restarts" ];
      let base_instances = doc_instances baseline in
      List.iter
        (fun c ->
          match
            List.find_opt
              (fun b -> b.n = c.n && b.seed = c.seed)
              base_instances
          with
          | None -> drift "instance n=%d seed=%d not in baseline" c.n c.seed
          | Some b ->
              List.iter
                (fun (what, cv, bv) ->
                  if cv <> bv then
                    drift "instance n=%d seed=%d: %s %d, baseline %d" c.n
                      c.seed what cv bv)
                [
                  ("edges", c.edges, b.edges);
                  ("lb", c.lb, b.lb);
                  ("ml", c.ml, b.ml);
                  ("spectral", c.spectral, b.spectral);
                ])
        (doc_instances current);
      let same_grid =
        Json.member "sizes" baseline = Json.member "sizes" current
        && geti baseline "seeds" = geti current "seeds"
      in
      if same_grid then begin
        (match (Json.member "summary" baseline, Json.member "summary" current) with
        | Some b, Some c when Json.to_string b <> Json.to_string c ->
            drift "summary drifted (diff the summary fields of the two documents)"
        | _ -> ());
        match
          ( Option.bind (Json.member "oracle" baseline) (Json.member "ok"),
            Option.bind (Json.member "oracle" current) (Json.member "ok") )
        with
        | Some b, Some c when b <> c ->
            drift "oracle verdict %s, baseline %s" (Json.to_string c)
              (Json.to_string b)
        | _ -> ()
      end;
      List.rev !drifts

(* ---- the registered experiment (chapter C1 of EXPERIMENTS.md) ---- *)

let c1 () =
  match run ~degree:3 ~sizes:[ 64; 128; 256; 512 ] ~seeds:5 () with
  | Ok t -> render t
  | Error e -> Printf.sprintf "campaign error: %s\n" e
