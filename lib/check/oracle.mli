(** Solver-pair oracles: each runs two independent routes to the same
    quantity on one instance — optimized vs. {!Reference}, parallel vs. the
    sequential engine, heuristic upper bound vs. exact — and validates
    every returned witness through {!Invariants}.

    Oracles are size-guarded: on an instance too large for their reference
    side they return [Skip] rather than burn exponential time, so the
    {!Fuzzer} can throw arbitrary instances at the whole battery.

    Randomized oracles draw {e only} from the supplied [rng]; a fixed seed
    therefore reproduces a run exactly (including at any [BFLY_DOMAINS]
    setting — the solvers are deterministic by construction). Each oracle
    counts its runs and failures under
    [check.oracle.<name>.{runs,failures}] in {!Bfly_obs.Metrics}. *)

type verdict = Pass | Skip of string | Fail of string

type t = {
  name : string;
  run : rng:Random.State.t -> Bfly_graph.Graph.t -> verdict;
}

(** [Exact.bisection_width] (parallel branch and bound) against the
    definitional {!Reference.bisection_width}; witness validated. *)
val exact_vs_reference : t

(** Branch and bound against the pruning-free exhaustive enumerator. *)
val bb_vs_exhaustive : t

(** The parallel branch and bound against the sequential instrumented
    engine — the in-process equivalent of a [BFLY_DOMAINS=1] rerun. *)
val parallel_vs_sequential : t

(** U-bisection: exact solver vs. reference on a random node subset [U]. *)
val u_bisection_vs_reference : t

(** Every heuristic (KL, FM, spectral, annealing, portfolio) returns a
    valid bisection whose capacity is at least the exact optimum. *)
val heuristics_respect_exact : t

(** [Expansion.ee_exact]/[ne_exact] (parallel subset enumeration) against
    the sequential {!Reference} enumerators at a random [k]. *)
val expansion_vs_reference : t

(** Expansion annealing upper-bounds the exact minimum and its witness
    achieves the claimed value. *)
val anneal_vs_exact : t

(** The full battery, in a fixed order. *)
val all : t list
