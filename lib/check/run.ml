module G = Bfly_graph.Graph
module B = Bfly_networks.Butterfly
module W = Bfly_networks.Wrapped
module Ccc = Bfly_networks.Ccc
module Exact = Bfly_cuts.Exact
module Heuristics = Bfly_cuts.Heuristics
module Classic = Bfly_embed.Classic
module Json = Bfly_obs.Json

let agreement_on ~seed name g ~known_bw =
  let rng = Random.State.make [| seed; Hashtbl.hash name |] in
  let exact, witness =
    match known_bw with
    | Some bw -> Exact.bisection_width ~upper_bound:bw g
    | None -> Exact.bisection_width g
  in
  let inv = Invariants.bisection_cut g ~value:exact ~witness in
  let c, side, method_name = Heuristics.best_of ~rng g in
  let heur_inv = Invariants.bisection_cut g ~value:c ~witness:side in
  let law_ok = match known_bw with Some bw -> exact = bw | None -> true in
  let ok =
    law_ok && c >= exact && Invariants.is_pass inv
    && Invariants.is_pass heur_inv
  in
  {
    Bounds.name = Printf.sprintf "agreement/%s" name;
    ok;
    detail =
      Printf.sprintf "exact %d%s, portfolio %d (%s)%s" exact
        (match known_bw with
        | Some bw when exact <> bw -> Printf.sprintf " (law says %d!)" bw
        | _ -> "")
        c method_name
        (match
           ( Invariants.message inv,
             Invariants.message heur_inv )
         with
        | None, None -> ""
        | Some m, _ | _, Some m -> "; witness: " ^ m);
  }

let embedding_check name e =
  let inv = Invariants.embedding e in
  {
    Bounds.name = Printf.sprintf "embedding/%s" name;
    ok = Invariants.is_pass inv;
    detail =
      (match Invariants.message inv with
      | None ->
          let load, congestion, dilation = Reference.embedding_measures e in
          Printf.sprintf "load %d, congestion %d, dilation %d" load congestion
            dilation
      | Some m -> m);
  }

let family_agreement ~smoke ~seed =
  let log_ns = if smoke then [ 2 ] else [ 2; 3 ] in
  let agreements =
    List.concat_map
      (fun log_n ->
        let n = 1 lsl log_n in
        [
          agreement_on ~seed
            (Printf.sprintf "B_%d" n)
            (B.graph (B.create ~log_n))
            ~known_bw:None;
          agreement_on ~seed
            (Printf.sprintf "W_%d" n)
            (W.graph (W.create ~log_n))
            ~known_bw:(Some n);
          agreement_on ~seed
            (Printf.sprintf "CCC_%d" n)
            (Ccc.graph (Ccc.create ~log_n))
            ~known_bw:(Some (n / 2));
        ])
      log_ns
  in
  let embeddings =
    let b3 = B.create ~log_n:3 in
    let w3 = W.create ~log_n:3 in
    [
      embedding_check "K_{8,8}->B_8" (Classic.knn_into_butterfly b3);
      embedding_check "K_N->W_8" (Classic.kn_into_wrapped w3);
      embedding_check "W_8->CCC_8" (fst (Classic.wrapped_into_ccc w3));
    ]
    @
    if smoke then []
    else
      [
        embedding_check "B_16->B_8 (Lemma 2.10)"
          (fst (Classic.butterfly_into_butterfly ~i:1 ~j:1 b3));
        embedding_check "B_8->hypercube"
          (fst (Classic.butterfly_into_hypercube b3));
      ]
  in
  agreements @ embeddings

(* A miniature random-regular campaign folded into the battery: its
   grid is tiny and fixed (the battery must stay cheap and its check
   count stable), and at these sizes only the sanity oracle fires, so
   this contributes exactly one check — but that one check exercises the
   whole sweep → certificate → multilevel → spectral → invariants
   pipeline on every [bfly_tool check] and bench run. *)
let campaign_family ~smoke =
  let sizes = if smoke then [ 16 ] else [ 16; 32 ] in
  match
    Campaign.run ~degree:3 ~sizes ~seeds:2 ~restarts:2 ()
  with
  | Ok t -> t.Campaign.checks
  | Error e ->
      [ { Bounds.name = "campaign/sanity"; ok = false; detail = e } ]

let execute ?(chaos = false) ~seed ~rounds ~smoke () =
  let rounds = if smoke then min rounds 5 else rounds in
  (* the family/bound checks always run fault-free: they are exactness
     claims about the paper, not resilience claims about the machinery *)
  let families =
    Bounds.all ~smoke @ family_agreement ~smoke ~seed @ campaign_family ~smoke
  in
  let fuzz =
    if chaos then
      Bfly_resil.Fault.scope ~rate:0.05 ~seed Bfly_resil.Fault.all (fun () ->
          Fuzzer.run ~chaos ~seed ~rounds ())
    else Fuzzer.run ~seed ~rounds ()
  in
  let families_ok = List.for_all (fun c -> c.Bounds.ok) families in
  let ok = families_ok && fuzz.Fuzzer.failed = 0 && fuzz.Fuzzer.pool_stable in
  let json =
    Json.Obj
      [
        ("tool", Json.Str "bfly_check");
        ("seed", Json.Int seed);
        ("rounds", Json.Int rounds);
        ("smoke", Json.Bool smoke);
        ("chaos", Json.Bool chaos);
        ("families", Json.List (List.map Bounds.check_json families));
        ("fuzz", Fuzzer.summary_json fuzz);
        ("ok", Json.Bool ok);
      ]
  in
  (json, ok)
