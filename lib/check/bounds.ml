module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module B = Bfly_networks.Butterfly
module W = Bfly_networks.Wrapped
module Ccc = Bfly_networks.Ccc
module Bw = Bfly_core.Bw
module E = Bfly_expansion.Expansion
module Witness = Bfly_expansion.Witness
module Credit = Bfly_expansion.Credit
module Json = Bfly_obs.Json

type check = { name : string; ok : bool; detail : string }

let check_json c =
  Json.Obj
    [ ("name", Json.Str c.name); ("ok", Json.Bool c.ok);
      ("detail", Json.Str c.detail) ]

let mk name ok detail = { name; ok; detail }

let witness_ok g (br : Bw.bracket) =
  Invariants.bisection_cut g ~value:br.Bw.upper ~witness:br.Bw.witness

let law_check ~name ~expected g br =
  let inv = witness_ok g br in
  let ok =
    br.Bw.lower = expected && br.Bw.upper = expected && Invariants.is_pass inv
  in
  let detail =
    Printf.sprintf "bracket [%d, %d], law value %d%s" br.Bw.lower br.Bw.upper
      expected
      (match Invariants.message inv with
      | None -> ""
      | Some m -> "; witness: " ^ m)
  in
  mk name ok detail

let wrapped_law ~log_n =
  let n = 1 lsl log_n in
  let w = W.create ~log_n in
  law_check
    ~name:(Printf.sprintf "lemma-3.2/BW(W_%d)=%d" n n)
    ~expected:n (W.graph w) (Bw.wrapped n)

let ccc_law ~log_n =
  let n = 1 lsl log_n in
  let c = Ccc.create ~log_n in
  law_check
    ~name:(Printf.sprintf "lemma-3.3/BW(CCC_%d)=%d" n (n / 2))
    ~expected:(n / 2) (Ccc.graph c) (Bw.ccc n)

let butterfly_sandwich ~log_n =
  let n = 1 lsl log_n in
  let b = B.create ~log_n in
  let g = B.graph b in
  let br = Bw.butterfly n in
  let inv = witness_ok g br in
  let bracket_check =
    mk
      (Printf.sprintf "bracket/BW(B_%d)" n)
      (br.Bw.lower <= br.Bw.upper && Invariants.is_pass inv)
      (Printf.sprintf "[%d, %d] by %s / %s%s" br.Bw.lower br.Bw.upper
         br.Bw.lower_method br.Bw.upper_method
         (match Invariants.message inv with
         | None -> ""
         | Some m -> "; witness: " ^ m))
  in
  let mos_lb = Bfly_mos.Mos_analysis.butterfly_lower_bound n in
  let mos_check =
    mk
      (Printf.sprintf "lemma-2.13/mos-bound(B_%d)" n)
      (mos_lb <= br.Bw.upper)
      (Printf.sprintf "2 BW(MOS)/n = %d <= upper %d" mos_lb br.Bw.upper)
  in
  let level_checks =
    if log_n > 2 then []
    else begin
      let exact, _ = Bfly_cuts.Exact.bisection_width ~upper_bound:br.Bw.upper g in
      let min_level =
        List.fold_left
          (fun acc level ->
            let v, _ = Bfly_cuts.Level_cut.level_bisection_width b ~level () in
            min acc v)
          max_int
          (List.init (B.levels b) Fun.id)
      in
      [
        mk
          (Printf.sprintf "exact-in-bracket/BW(B_%d)" n)
          (br.Bw.lower <= exact && exact <= br.Bw.upper)
          (Printf.sprintf "exact %d in [%d, %d]" exact br.Bw.lower br.Bw.upper);
        mk
          (Printf.sprintf "lemma-2.12/level-cut(B_%d)" n)
          (min_level <= exact)
          (Printf.sprintf "min_i BW(B_n, L_i) = %d <= BW = %d" min_level exact);
      ]
    end
  in
  (bracket_check :: mos_check :: level_checks)

(* Section 4 envelopes. At the witness sizes the closed-form lower bounds,
   the measured witness values and (when enumerable) the exact minima must
   nest: lower <= exact <= witness = lemma formula. *)

let envelope_ee_wrapped ~log_n ~dim ~with_exact =
  let w = W.create ~log_n in
  let g = W.graph w in
  let s = Witness.wn_ee ~dim w in
  let k = Bitset.cardinal s in
  let witness_value = Reference.cut_capacity g s in
  let lemma_value = 4 * (1 lsl dim) in
  let lower = Credit.Bounds.ee_wn_lower k in
  let credit = Credit.wn_edge w s in
  let exact_ok, exact_detail =
    if with_exact then begin
      let exact, ws = E.ee_exact g ~k in
      ( exact <= witness_value
        && lower <= float_of_int exact +. 1e-9
        && Invariants.is_pass
             (Invariants.expansion_witness ~kind:`Edge g ~k ~value:exact
                ~witness:ws),
        Printf.sprintf "; exact %d" exact )
    end
    else (true, "")
  in
  mk
    (Printf.sprintf "lemma-4.1/EE(W_%d, %d)" (1 lsl log_n) k)
    (witness_value = lemma_value
    && lower <= float_of_int witness_value +. 1e-9
    && credit.Credit.certified <= credit.Credit.actual
    && exact_ok)
    (Printf.sprintf "lower %.2f <= witness %d = 4*2^%d, credit %d/%d%s" lower
       witness_value dim credit.Credit.certified credit.Credit.actual
       exact_detail)

let envelope_ee_butterfly ~log_n ~dim ~with_exact =
  let b = B.create ~log_n in
  let g = B.graph b in
  let s = Witness.bn_ee ~dim b in
  let k = Bitset.cardinal s in
  let witness_value = Reference.cut_capacity g s in
  let lemma_value = 2 * (1 lsl dim) in
  let lower = Credit.Bounds.ee_bn_lower k in
  let credit = Credit.bn_edge b s in
  let exact_ok, exact_detail =
    if with_exact then begin
      let exact, _ = E.ee_exact g ~k in
      ( exact <= witness_value && lower <= float_of_int exact +. 1e-9,
        Printf.sprintf "; exact %d" exact )
    end
    else (true, "")
  in
  mk
    (Printf.sprintf "lemma-4.7/EE(B_%d, %d)" (1 lsl log_n) k)
    (witness_value = lemma_value
    && lower <= float_of_int witness_value +. 1e-9
    && credit.Credit.certified <= credit.Credit.actual
    && exact_ok)
    (Printf.sprintf "lower %.2f <= witness %d = 2*2^%d, credit %d/%d%s" lower
       witness_value dim credit.Credit.certified credit.Credit.actual
       exact_detail)

let envelope_ne_wrapped ~log_n ~dim =
  let w = W.create ~log_n in
  let g = W.graph w in
  let s = Witness.wn_ne ~dim w in
  let k = Bitset.cardinal s in
  let witness_value = Reference.neighborhood_size g s in
  let lemma_value = 3 * (1 lsl (dim + 1)) in
  let lower = Credit.Bounds.ne_wn_lower k in
  let credit = Credit.wn_node w s in
  mk
    (Printf.sprintf "lemma-4.4/NE(W_%d, %d)" (1 lsl log_n) k)
    (witness_value = lemma_value
    && lower <= float_of_int witness_value +. 1e-9
    && credit.Credit.certified <= credit.Credit.actual)
    (Printf.sprintf "lower %.2f <= witness %d = 3*2^%d, credit %d/%d" lower
       witness_value (dim + 1) credit.Credit.certified credit.Credit.actual)

let envelope_ne_butterfly ~log_n ~dim ~with_exact =
  let b = B.create ~log_n in
  let g = B.graph b in
  let s = Witness.bn_ne ~dim b in
  let k = Bitset.cardinal s in
  let witness_value = Reference.neighborhood_size g s in
  let lemma_value = 1 lsl (dim + 1) in
  let lower = Credit.Bounds.ne_bn_lower k in
  let exact_ok, exact_detail =
    if with_exact then begin
      let exact, _ = E.ne_exact g ~k in
      ( exact <= witness_value && lower <= float_of_int exact +. 1e-9,
        Printf.sprintf "; exact %d" exact )
    end
    else (true, "")
  in
  mk
    (Printf.sprintf "lemma-4.10/NE(B_%d, %d)" (1 lsl log_n) k)
    (witness_value = lemma_value
    && lower <= float_of_int witness_value +. 1e-9
    && exact_ok)
    (Printf.sprintf "lower %.2f <= witness %d = 2^%d%s" lower witness_value
       (dim + 1) exact_detail)

let expansion_envelopes ~smoke =
  let base =
    [
      (* W_8, dim 1, k = 4: C(24,4) subsets — exact is cheap *)
      envelope_ee_wrapped ~log_n:3 ~dim:1 ~with_exact:true;
      (* B_8, dim 1, k = 4 *)
      envelope_ee_butterfly ~log_n:3 ~dim:1 ~with_exact:true;
      (* W_16 NE needs dim + 2 < log_n; credit-certified only (C(64,8) is
         out of enumeration reach) *)
      envelope_ne_wrapped ~log_n:4 ~dim:1;
    ]
  in
  if smoke then base
  else
    base
    @ [
        (* B_8 sibling pair, k = 8: C(32,8) ≈ 10.5M, parallel enumeration *)
        envelope_ne_butterfly ~log_n:3 ~dim:1 ~with_exact:true;
        envelope_ee_wrapped ~log_n:4 ~dim:2 ~with_exact:false;
        envelope_ee_butterfly ~log_n:4 ~dim:2 ~with_exact:false;
      ]

(* ------------------------------------------------------------------ *)
(* Product networks (arXiv:1202.6291)                                  *)
(* ------------------------------------------------------------------ *)

module Gen = Bfly_graph.Generators
module Fabric = Bfly_networks.Fabric
module Constructions = Bfly_cuts.Constructions
module Multilevel = Bfly_cuts.Multilevel

(* The closed-form arithmetic lives in {!Fabric} (pure spec arithmetic,
   usable by the experiment harness below bfly_check in the dependency
   order); the oracles here re-export and *check* it against constructed
   cuts and solver outputs. *)
type product_bound = Fabric.bound = {
  lower : int;
  exact : int option;
  method_ : string;
}

let mesh_bounds = Fabric.mesh_bounds
let torus_bounds = Fabric.torus_bounds
let hamming_bounds = Fabric.hamming_bounds
let fabric_bounds = Fabric.bounds

let c_sandwich = Bfly_obs.Metrics.counter "product.sandwich.checks"

let product_rng () = Random.State.make [| 0xfab; 0x5eed |]

let product_sandwich ?(with_exact = false) spec =
  let fab = Fabric.create spec in
  let g = Fabric.graph fab in
  let name = Fabric.name spec in
  let b = fabric_bounds spec in
  let axis, constructed, side =
    Constructions.best_dimension_cut ~dims:(Fabric.dims spec) g
  in
  let side_inv = Invariants.bisection_cut g ~value:constructed ~witness:side in
  let heur, hside = Multilevel.bisect ~rng:(product_rng ()) g in
  let heur_inv = Invariants.bisection_cut g ~value:heur ~witness:hside in
  Bfly_obs.Metrics.incr c_sandwich;
  let closed_ok, closed_detail =
    match b.exact with
    | Some v -> (b.lower = v && constructed = v, Printf.sprintf "; closed form %d" v)
    | None -> (true, "")
  in
  let exact_ok, exact_detail =
    if with_exact then begin
      let exact, _ = Bfly_cuts.Exact.bisection_width g in
      ( b.lower <= exact && exact <= heur
        && (match b.exact with Some v -> exact = v | None -> true),
        Printf.sprintf "; exact %d" exact )
    end
    else (true, "")
  in
  mk
    (Printf.sprintf "product-sandwich/%s" name)
    (Invariants.is_pass side_inv && Invariants.is_pass heur_inv
    && b.lower <= heur && heur <= constructed && closed_ok && exact_ok)
    (Printf.sprintf "LB %d (%s) <= ml %d <= constructed %d (axis %d)%s%s%s"
       b.lower b.method_ heur constructed axis closed_detail exact_detail
       (match
          ( Invariants.message side_inv,
            Invariants.message heur_inv )
        with
       | None, None -> ""
       | Some m, _ | _, Some m -> "; witness: " ^ m))

(* BW(G × K_2) identities, checked exactly on small instances: the cut
   between the two copies of G is always a bisection of capacity |V(G)|,
   and when |V(G)| is even a doubled bisection of G is balanced too, so
   BW(G × K_2) <= min(2·BW(G), |V(G)|); with odd |V(G)| only the copy cut
   survives (the doubled cut is unbalanced — mesh 2x3x3 realizes
   BW = |V(G)| = 9 > 2·BW(3x3) = 8). *)
let product_k2_identity ~name g =
  let nv = G.n_nodes g in
  let bw_g, _ = Bfly_cuts.Exact.bisection_width g in
  let prod = Gen.product g (Gen.complete 2) in
  let bw_p, _ = Bfly_cuts.Exact.bisection_width prod in
  let ub = if nv mod 2 = 0 then min (2 * bw_g) nv else nv in
  mk
    (Printf.sprintf "product-identity/BW(%s x K2)" name)
    (bw_p <= ub)
    (Printf.sprintf "BW(G x K2) = %d <= %d (BW(G) = %d, |V| = %d)" bw_p ub
       bw_g nv)

let product_networks ~smoke =
  let base =
    [
      (* even closed forms: LB = construction = exact formula *)
      product_sandwich ~with_exact:true (Fabric.Mesh [ 4; 4 ]);
      product_sandwich ~with_exact:true (Fabric.Torus [ 4; 4 ]);
      (* all-odd closed form *)
      product_sandwich ~with_exact:true (Fabric.Mesh [ 3; 3 ]);
      (* BCube-style: H(3,2) is the hypercube Q_3 *)
      product_sandwich ~with_exact:true
        (Fabric.Bcube { ports = 2; levels = 3 });
      (* 3-D all-odd torus, heuristic + construction only (27 nodes) *)
      product_sandwich (Fabric.Torus [ 3; 3; 3 ]);
      (* mixed product: certified spanning-mesh LB only *)
      product_sandwich ~with_exact:true
        (Fabric.Product [ Fabric.Fpath 2; Fabric.Fclique 4 ]);
      product_k2_identity ~name:"P5" (Gen.path 5);
    ]
  in
  if smoke then base
  else
    base
    @ [
        product_sandwich ~with_exact:true (Fabric.Mesh [ 3; 5 ]);
        product_sandwich ~with_exact:true (Fabric.Mesh [ 2; 3; 3 ]);
        product_sandwich ~with_exact:true (Fabric.Torus [ 3; 5 ]);
        product_sandwich ~with_exact:true
          (Fabric.Bcube { ports = 4; levels = 2 });
        product_sandwich (Fabric.Mesh [ 2; 4; 8 ]);
        product_sandwich (Fabric.Torus [ 4; 4; 4 ]);
        product_sandwich (Fabric.Bcube { ports = 4; levels = 3 });
        product_sandwich
          (Fabric.Product [ Fabric.Fring 4; Fabric.Fclique 3; Fabric.Fpath 2 ]);
        product_k2_identity ~name:"grid3x3" (Gen.grid ~rows:3 ~cols:3);
        product_k2_identity ~name:"C6" (Gen.cycle 6);
      ]

let all ~smoke =
  Bfly_obs.Span.time ~name:"check.bounds" @@ fun () ->
  let laws =
    if smoke then
      [ wrapped_law ~log_n:2; ccc_law ~log_n:2 ] @ butterfly_sandwich ~log_n:2
    else
      [ wrapped_law ~log_n:2; wrapped_law ~log_n:3;
        ccc_law ~log_n:2; ccc_law ~log_n:3 ]
      @ butterfly_sandwich ~log_n:2
      @ butterfly_sandwich ~log_n:3
  in
  laws @ expansion_envelopes ~smoke @ product_networks ~smoke
