module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset

type result = Pass | Fail of string

let is_pass = function Pass -> true | Fail _ -> false
let message = function Pass -> None | Fail m -> Some m
let fail fmt = Printf.ksprintf (fun m -> Fail m) fmt

let rec all = function
  | [] -> Pass
  | Pass :: rest -> all rest
  | (Fail _ as f) :: _ -> f

let bisection_cut ?u g ~value ~witness =
  let n = G.n_nodes g in
  if Bitset.capacity witness <> n then
    fail "witness universe %d does not match node count %d"
      (Bitset.capacity witness) n
  else begin
    let u_size, in_side =
      match u with
      | None -> (n, Bitset.cardinal witness)
      | Some u -> (Bitset.cardinal u, Bitset.cardinal (Bitset.inter witness u))
    in
    if in_side <> u_size / 2 && in_side <> (u_size + 1) / 2 then
      fail "witness does not bisect U: |S∩U| = %d of |U| = %d" in_side u_size
    else
      let c = Reference.cut_capacity g witness in
      if c <> value then
        fail "witness capacity %d differs from reported value %d" c value
      else Pass
  end

let bisection_interval ?u g ~lower ~upper ~witness =
  if lower > upper then fail "empty interval: lower %d > upper %d" lower upper
  else if lower < 0 then fail "negative lower bound %d" lower
  else
    (* the upper end must be realized: the witness is a real bisecting cut
       of exactly that capacity, so BW <= upper holds unconditionally *)
    bisection_cut ?u g ~value:upper ~witness

let outcome_of_supervised ?u g = function
  | Bfly_cuts.Exact.Complete (value, witness) ->
      bisection_cut ?u g ~value ~witness
  | Bfly_cuts.Exact.Interval { lower; upper; witness; reason = _ } ->
      bisection_interval ?u g ~lower ~upper ~witness

let expansion_witness ~kind g ~k ~value ~witness =
  if Bitset.capacity witness <> G.n_nodes g then
    fail "witness universe %d does not match node count %d"
      (Bitset.capacity witness) (G.n_nodes g)
  else if Bitset.cardinal witness <> k then
    fail "witness has %d nodes, expected k = %d" (Bitset.cardinal witness) k
  else
    let measured, what =
      match kind with
      | `Edge -> (Reference.cut_capacity g witness, "EE")
      | `Node -> (Reference.neighborhood_size g witness, "NE")
    in
    if measured <> value then
      fail "%s witness achieves %d, reported %d" what measured value
    else Pass

let paths_are_walks g paths =
  let n = G.n_nodes g in
  let bad = ref Pass in
  Array.iteri
    (fun i path ->
      if is_pass !bad then
        match path with
        | [] -> bad := fail "path %d is empty" i
        | path ->
            let rec walk = function
              | a :: (b :: _ as rest) ->
                  if a < 0 || a >= n || b < 0 || b >= n then
                    bad := fail "path %d leaves the node range" i
                  else if not (G.mem_edge g a b) then
                    bad := fail "path %d uses non-edge (%d, %d)" i a b
                  else walk rest
              | [ last ] ->
                  if last < 0 || last >= n then
                    bad := fail "path %d leaves the node range" i
              | [] -> ()
            in
            walk path)
    paths;
  !bad

let embedding e =
  let module E = Bfly_embed.Embedding in
  let guest = E.guest e and host = E.host e in
  let node_map = E.node_map e in
  let paths = E.edge_paths e in
  let guest_edges = G.edges guest in
  if Array.length node_map <> G.n_nodes guest then
    fail "node map size %d differs from guest node count %d"
      (Array.length node_map) (G.n_nodes guest)
  else if Array.exists (fun h -> h < 0 || h >= G.n_nodes host) node_map then
    Fail "node map leaves the host node range"
  else if Array.length paths <> Array.length guest_edges then
    fail "edge path count %d differs from guest edge count %d"
      (Array.length paths) (Array.length guest_edges)
  else begin
    let endpoint_check =
      let bad = ref Pass in
      Array.iteri
        (fun i path ->
          if is_pass !bad then
            let u, v = guest_edges.(i) in
            let mu = node_map.(u) and mv = node_map.(v) in
            match path with
            | [] -> bad := fail "path %d is empty" i
            | first :: _ ->
                let last = List.nth path (List.length path - 1) in
                if not ((first = mu && last = mv) || (first = mv && last = mu))
                then
                  bad :=
                    fail
                      "path %d connects hosts (%d, %d), guest edge maps to \
                       (%d, %d)"
                      i first last mu mv)
        paths;
      !bad
    in
    all
      [
        endpoint_check;
        paths_are_walks host paths;
        (let load, congestion, dilation = Reference.embedding_measures e in
         all
           [
             (if E.load e <> load then
                fail "measured load %d, recomputed %d" (E.load e) load
              else Pass);
             (if E.congestion e <> congestion then
                fail "measured congestion %d, recomputed %d" (E.congestion e)
                  congestion
              else Pass);
             (if E.dilation e <> dilation then
                fail "measured dilation %d, recomputed %d" (E.dilation e)
                  dilation
              else Pass);
           ]);
      ]
  end
