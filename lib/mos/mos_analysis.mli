(** Analysis of the mesh-of-stars M2-bisection width (Section 2.2).

    Lemma 2.17 reduces [BW(MOS_{j,j}, M2)] to minimizing
    [f(x,y) = x + y − min(1, 2xy)] over the grid [x = a/j], [y = b/j];
    Lemma 2.18 locates the continuous minimum [√2 − 1] at [x = y = √½];
    Lemma 2.19 concludes [BW(MOS_{j,j}, M2)/j² → √2 − 1] from above. *)

(** [f x y = x + y − min(1, 2xy)], Lemma 2.17's capacity density. *)
val f : float -> float -> float

(** The continuous minimum value [√2 − 1] (Lemma 2.18). *)
val f_min : float

(** The minimizer coordinate [√½]. *)
val f_argmin : float

(** [capacity_at ~j ~a ~b ~m2_in_a] is the minimum capacity of a cut of
    [MOS_{j,j}] with [a = |S∩M1|], [b = |S∩M3|] and exactly [m2_in_a]
    middle nodes in [S], in closed form (exact, integer). *)
val capacity_at : j:int -> a:int -> b:int -> m2_in_a:int -> int

(** [bw_m2 j] is the exact [BW(MOS_{j,j}, M2)]: the minimum of
    {!capacity_at} over all [(a, b)] and both balanced middle counts.
    The scan's argmin persists in the {!Bfly_cache} store keyed on [j];
    a cached entry is served only after {!capacity_at} re-derives its
    value from the cached [(a, b, m2_in_a)] witness. *)
val bw_m2 : int -> int

(** [bw_m2_brute j] computes the same by exhaustive search over all cuts of
    the 2j + j² nodes (only for [j <= 4]); test oracle. *)
val bw_m2_brute : int -> int

(** [lemma_2_17_value j a b] is [f(a/j, b/j) · j²] rounded to nearest — the
    value Lemma 2.17 assigns when [j] is even and [(a/j, b/j)] lies in the
    domain [D = {x+y >= 1}]. Used in tests against {!capacity_at} with the
    balanced middle count. *)
val lemma_2_17_value : int -> int -> int -> int

(** [butterfly_lower_bound n] is the certified lower bound on [BW(B_n)]
    from Lemma 2.13: [BW(B_n) >= 2·BW(MOS_{n,n}, M2)/n], rounded up.
    [n] must be a power of two, [n >= 2]. *)
val butterfly_lower_bound : int -> int

(** [convergence_row j] is [(bw_m2 j, bw_m2 j /. j², ratio to √2−1)] for
    the E2 table. *)
val convergence_row : int -> int * float * float
