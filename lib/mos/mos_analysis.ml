let f x y = x +. y -. Float.min 1.0 (2.0 *. x *. y)
let f_min = sqrt 2.0 -. 1.0
let f_argmin = sqrt 0.5

(* Minimum capacity with |S∩M1| = a, |S∩M3| = b and m2_in_a middle nodes in
   S. Mixed paths (one endpoint class in S) cost 1 regardless of where the
   middle sits; an S–S path with its middle outside S costs 2, as does an
   S̄–S̄ path with its middle in S. Greedy placement: S middles go on S–S
   paths first, then mixed, then S̄–S̄. *)
let capacity_at ~j ~a ~b ~m2_in_a =
  assert (0 <= a && a <= j && 0 <= b && b <= j);
  assert (0 <= m2_in_a && m2_in_a <= j * j);
  let n_ss = a * b in
  let n_mix = (a * (j - b)) + ((j - a) * b) in
  n_mix + (2 * max 0 (n_ss - m2_in_a)) + (2 * max 0 (m2_in_a - n_ss - n_mix))

let balanced_middles m2 =
  if m2 mod 2 = 0 then [ m2 / 2 ] else [ m2 / 2; (m2 / 2) + 1 ]

(* The scan returns its argmin so a cached entry carries a witness:
   on a hit, [capacity_at] re-derives the value from the witness before
   it is served. *)
let bw_m2_scan j =
  let m2 = j * j in
  let best = ref (max_int, 0, 0, 0) in
  for a = 0 to j do
    for b = 0 to j do
      List.iter
        (fun m2_in_a ->
          let c = capacity_at ~j ~a ~b ~m2_in_a in
          let bc, _, _, _ = !best in
          if c < bc then best := (c, a, b, m2_in_a))
        (balanced_middles m2)
    done
  done;
  !best

let bw_m2_verify j (v, a, b, m2_in_a) =
  0 <= a && a <= j && 0 <= b && b <= j
  && List.mem m2_in_a (balanced_middles (j * j))
  && capacity_at ~j ~a ~b ~m2_in_a = v

let bw_m2 j =
  if j < 1 then invalid_arg "Mos_analysis.bw_m2: j must be >= 1";
  let open Bfly_cache in
  let key =
    Key.make ~solver:"mos.bw_m2" ~salt:"bw_m2/1"
      ~params:[ ("j", string_of_int j) ]
      ~fingerprint:(Fingerprint.int Fingerprint.seed j)
  in
  let encode (v, a, b, m2_in_a) =
    [
      ("value", Codec.Int v);
      ("a", Codec.Int a);
      ("b", Codec.Int b);
      ("m2_in_a", Codec.Int m2_in_a);
    ]
  in
  let decode payload =
    match
      ( Codec.get_int payload "value",
        Codec.get_int payload "a",
        Codec.get_int payload "b",
        Codec.get_int payload "m2_in_a" )
    with
    | Some v, Some a, Some b, Some m -> Some (v, a, b, m)
    | _ -> None
  in
  let v, _, _, _ =
    Store.memoize ~key ~encode ~decode ~verify:(bw_m2_verify j)
      ~compute:(fun () -> bw_m2_scan j)
  in
  v

let bw_m2_brute j =
  if j > 4 then invalid_arg "Mos_analysis.bw_m2_brute: j too large";
  let mos = Bfly_networks.Mesh_of_stars.create ~j ~k:j in
  let g = Bfly_networks.Mesh_of_stars.graph mos in
  let u = Bfly_networks.Mesh_of_stars.m2_set mos in
  let c, _ = Bfly_cuts.Exact.bisection_width_exhaustive ~u g in
  c

let lemma_2_17_value j a b =
  let x = float_of_int a /. float_of_int j and y = float_of_int b /. float_of_int j in
  int_of_float (Float.round (f x y *. float_of_int (j * j)))

let butterfly_lower_bound n =
  if n < 2 || n land (n - 1) <> 0 then
    invalid_arg "Mos_analysis.butterfly_lower_bound: n must be a power of two >= 2";
  (* Lemma 2.13: BW(B_n)/n >= 2·BW(MOS_{n,n}, M2)/n² *)
  let bw = bw_m2 n in
  ((2 * bw) + n - 1) / n

let convergence_row j =
  let bw = bw_m2 j in
  let density = float_of_int bw /. float_of_int (j * j) in
  (bw, density, density /. f_min)
