module Metrics = Bfly_obs.Metrics

type kind = Disk_io | Corrupt | Worker | Deadline

exception Injected of string

let kind_name = function
  | Disk_io -> "disk_io"
  | Corrupt -> "corrupt"
  | Worker -> "worker"
  | Deadline -> "deadline"

let all = [ Disk_io; Corrupt; Worker; Deadline ]

type config = {
  seed : int;
  rate : float;
  disk_io : bool;
  corrupt : bool;
  worker : bool;
  deadline : bool;
}

let config : config option Atomic.t = Atomic.make None
let draws = Atomic.make 0
let injected = Atomic.make 0

let configure ?(rate = 0.05) ~seed kinds =
  if rate < 0. || rate > 1. then
    invalid_arg "Fault.configure: rate must be in [0, 1]";
  Atomic.set draws 0;
  Atomic.set config
    (Some
       {
         seed;
         rate;
         disk_io = List.mem Disk_io kinds;
         corrupt = List.mem Corrupt kinds;
         worker = List.mem Worker kinds;
         deadline = List.mem Deadline kinds;
       })

let disable () = Atomic.set config None
let enabled () = Atomic.get config <> None

let kind_active cfg = function
  | Disk_io -> cfg.disk_io
  | Corrupt -> cfg.corrupt
  | Worker -> cfg.worker
  | Deadline -> cfg.deadline

let active kind =
  match Atomic.get config with
  | None -> false
  | Some cfg -> kind_active cfg kind

let c_injected kind = Metrics.counter ("resil.fault.injected." ^ kind_name kind)

let fire kind =
  match Atomic.get config with
  | None -> false
  | Some cfg ->
      kind_active cfg kind
      && begin
           (* each armed decision consumes one draw from a seeded stream, so
              a fixed seed produces a reproducible firing pattern (up to
              domain interleaving of the shared draw counter) *)
           let i = Atomic.fetch_and_add draws 1 in
           let h = Hashtbl.hash (cfg.seed, i, kind_name kind) in
           let u = float_of_int (h land 0x3FFFFFFF) /. 1073741824.0 in
           u < cfg.rate
           && begin
                Atomic.incr injected;
                Metrics.incr (c_injected kind);
                true
              end
         end

let maybe_raise kind =
  if fire kind then raise (Injected ("injected " ^ kind_name kind ^ " fault"))

let injected_total () = Atomic.get injected

let scope ?rate ~seed kinds f =
  let saved = Atomic.get config in
  configure ?rate ~seed kinds;
  Fun.protect ~finally:(fun () -> Atomic.set config saved) f

let corrupt s =
  if String.length s = 0 then "x"
  else begin
    let b = Bytes.of_string s in
    let i = String.length s / 2 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
    Bytes.to_string b
  end
