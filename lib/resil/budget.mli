(** Resource budgets for supervised solver runs.

    A budget limits how much a single solver invocation may consume: a
    wall-clock allowance, a step allowance (search nodes visited,
    heuristic passes — whatever the solver counts through
    {!Cancel.add_steps}), or both. The budget itself is inert data;
    {!Cancel.create} turns it into a live token whose deadline starts
    ticking at creation. *)

type t

val unlimited : t
(** No wall-clock limit, no step limit. *)

val is_unlimited : t -> bool

(** [make ?wall_s ?steps ()] — a budget of [wall_s] seconds and/or
    [steps] solver steps. Raises [Invalid_argument] on non-positive
    values. *)
val make : ?wall_s:float -> ?steps:int -> unit -> t

val wall_ns : t -> int option
(** Wall-clock allowance in nanoseconds, if any. *)

val steps : t -> int option
(** Step allowance, if any. *)

(** [of_string s] parses a human deadline: ["250ms"], ["1.5s"], ["2m"],
    ["1h"]; a bare number means seconds. *)
val of_string : string -> (t, string) result

val to_string : t -> string
