module Metrics = Bfly_obs.Metrics
module Span = Bfly_obs.Span

type t = {
  state : string option Atomic.t; (* Some reason once cancelled; latched *)
  deadline_ns : int option; (* absolute, on the monotonic clock *)
  max_steps : int option;
  steps : int Atomic.t;
}

exception Cancelled of string

let c_cancelled = Metrics.counter "resil.cancel.cancelled"
let c_deadline = Metrics.counter "resil.cancel.deadline_expired"
let c_steps = Metrics.counter "resil.cancel.steps_exhausted"
let c_injected = Metrics.counter "resil.cancel.injected"

let create ?(budget = Budget.unlimited) () =
  {
    state = Atomic.make None;
    deadline_ns =
      (match Budget.wall_ns budget with
      | None -> None
      | Some w -> Some (Span.now_ns () + w));
    max_steps = Budget.steps budget;
    steps = Atomic.make 0;
  }

let latch t reason counter =
  if Atomic.compare_and_set t.state None (Some reason) then
    Metrics.incr counter

let cancel ?(reason = "cancelled") t = latch t reason c_cancelled

let triggered t =
  match Atomic.get t.state with
  | Some _ -> true
  | None -> (
      match t.deadline_ns with
      | Some d when Span.now_ns () > d ->
          latch t "deadline expired" c_deadline;
          true
      | _ -> (
          match t.max_steps with
          | Some m when Atomic.get t.steps >= m ->
              latch t "step budget exhausted" c_steps;
              true
          | _ ->
              Fault.fire Fault.Deadline
              && begin
                   latch t "injected deadline expiry" c_injected;
                   true
                 end))

let reason t = Atomic.get t.state
let add_steps t n = ignore (Atomic.fetch_and_add t.steps n)
let steps t = Atomic.get t.steps

let check t =
  if triggered t then
    raise (Cancelled (Option.value ~default:"cancelled" (Atomic.get t.state)))

(* ---- ambient token ----
   One slot per domain, so a CLI-level --deadline can reach every
   cooperating solver without threading a token through each signature.
   Domain-local (not process-global) storage is what lets the serve
   dispatcher run batches with different deadlines concurrently: each
   solve installs its own ambient token on the pool domain executing it,
   and solvers resolve the ambient token once at entry before fanning
   work out with explicit tokens, so sibling batches never clobber each
   other's supervision. *)

let ambient_slot : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let ambient () = Domain.DLS.get ambient_slot
let set_ambient t = Domain.DLS.set ambient_slot t

let with_ambient t f =
  let saved = Domain.DLS.get ambient_slot in
  Domain.DLS.set ambient_slot (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_slot saved) f

let resolve = function Some t -> Some t | None -> Domain.DLS.get ambient_slot
let stop = function None -> false | Some t -> triggered t
