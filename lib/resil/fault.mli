(** Deterministic fault injection for chaos testing.

    When configured, cooperating subsystems ask {!fire} at their hazard
    points — the disk cache before I/O ({!Disk_io}, {!Corrupt}), the
    domain pool before running a task ({!Worker}), a {!Cancel} token at
    its poll sites ({!Deadline}) — and simulate the corresponding failure
    when it returns [true]. Firing decisions are drawn from a stream
    seeded by [configure ~seed], so a chaos run is reproducible up to
    domain interleaving of the shared draw counter.

    Injection is process-global and {e off by default}; production code
    pays one atomic read per hazard point when disabled. Each injected
    fault increments [resil.fault.injected.<kind>] in
    {!Bfly_obs.Metrics}. *)

type kind =
  | Disk_io  (** cache store/load raises a filesystem error *)
  | Corrupt  (** a loaded cache entry has its bytes mangled *)
  | Worker  (** a pool task raises {!Injected} mid-batch *)
  | Deadline  (** a cancel token reports spurious deadline expiry *)

exception Injected of string
(** Raised by {!maybe_raise} (and by subsystems simulating a crash). *)

val kind_name : kind -> string
val all : kind list

(** [configure ?rate ~seed kinds] arms injection for [kinds] at the given
    firing probability per hazard point (default [0.05]). Resets the draw
    stream. Raises [Invalid_argument] unless [0 <= rate <= 1]. *)
val configure : ?rate:float -> seed:int -> kind list -> unit

val disable : unit -> unit
val enabled : unit -> bool

val active : kind -> bool
(** Is this kind armed? (Cheap; does not consume a draw.) *)

val fire : kind -> bool
(** Consume one draw and report whether the fault fires. Always [false]
    for unarmed kinds. *)

val maybe_raise : kind -> unit
(** Raise [Injected] if {!fire} does. *)

(** [scope ?rate ~seed kinds f] runs [f] with injection armed, restoring
    the previous configuration afterwards (even on raise). *)
val scope : ?rate:float -> seed:int -> kind list -> (unit -> 'a) -> 'a

val injected_total : unit -> int
(** Faults injected since process start (all kinds). *)

val corrupt : string -> string
(** Deterministically mangle one byte — what a {!Corrupt} fault does to a
    cache entry's contents. The result always differs from the input. *)
