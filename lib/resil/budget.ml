type t = { wall_ns : int option; steps : int option }

let unlimited = { wall_ns = None; steps = None }
let is_unlimited b = b.wall_ns = None && b.steps = None

let make ?wall_s ?steps () =
  let wall_ns =
    match wall_s with
    | None -> None
    | Some s when s > 0. -> Some (int_of_float (s *. 1e9))
    | Some _ -> invalid_arg "Budget.make: wall_s must be positive"
  in
  let steps =
    match steps with
    | None -> None
    | Some k when k > 0 -> Some k
    | Some _ -> invalid_arg "Budget.make: steps must be positive"
  in
  { wall_ns; steps }

let wall_ns b = b.wall_ns
let steps b = b.steps

let of_string s =
  let s = String.trim s in
  let split_suffix suffix =
    if Filename.check_suffix s suffix then
      Some (String.sub s 0 (String.length s - String.length suffix))
    else None
  in
  let scaled num scale =
    match float_of_string_opt (String.trim num) with
    | Some v when v > 0. -> Ok (make ~wall_s:(v *. scale) ())
    | _ -> Error (Printf.sprintf "cannot parse deadline %S" s)
  in
  if s = "" then Error "empty deadline"
  else
    match split_suffix "ms" with
    | Some num -> scaled num 1e-3
    | None -> (
        match split_suffix "s" with
        | Some num -> scaled num 1.
        | None -> (
            match split_suffix "m" with
            | Some num -> scaled num 60.
            | None -> (
                match split_suffix "h" with
                | Some num -> scaled num 3600.
                | None -> scaled s 1.)))

let to_string b =
  match (b.wall_ns, b.steps) with
  | None, None -> "unlimited"
  | wall, steps ->
      let parts =
        (match wall with
        | Some ns -> [ Printf.sprintf "%gs" (float_of_int ns /. 1e9) ]
        | None -> [])
        @
        match steps with
        | Some k -> [ Printf.sprintf "%d steps" k ]
        | None -> []
      in
      String.concat ", " parts
