(** Cooperative cancellation tokens.

    A token is created from a {!Budget} (its wall-clock deadline starts
    ticking immediately) and handed to a solver, which {e polls}
    {!triggered} at safe points and winds down when it fires — releasing
    its invariants, reporting whatever certified partial result it has.
    Nothing is ever interrupted asynchronously.

    Tokens latch: once triggered — by an explicit {!cancel}, an expired
    deadline, an exhausted step budget, or an injected {!Fault.Deadline}
    fault — they stay triggered, and {!reason} says why.

    All operations are lock-free and safe from any domain; one token is
    routinely shared by every worker of a parallel solve.

    Metrics: counters [resil.cancel.cancelled],
    [resil.cancel.deadline_expired], [resil.cancel.steps_exhausted],
    [resil.cancel.injected] count the first trigger of each token by
    cause. *)

type t

exception Cancelled of string
(** Raised by {!check}, and by batch combinators that abandoned work
    because a token fired. The payload is the {!reason}. *)

(** [create ?budget ()] — a live token; [budget] defaults to
    {!Budget.unlimited} (the token then only triggers via {!cancel} or
    fault injection). *)
val create : ?budget:Budget.t -> unit -> t

val cancel : ?reason:string -> t -> unit
(** Trigger the token explicitly. Idempotent; the first reason wins. *)

val triggered : t -> bool
(** Poll the token. Checks, in order: the latch, the wall-clock deadline,
    the step budget, and (in chaos runs) injected deadline expiry. *)

val reason : t -> string option
(** Why the token triggered, once it has. *)

val add_steps : t -> int -> unit
(** Charge [n] units of work against the step budget. Solvers batch this
    (e.g. every 256 search nodes) to keep the shared counter cool. *)

val steps : t -> int

val check : t -> unit
(** [check t] raises {!Cancelled} iff the token has triggered. *)

(** {2 Ambient token}

    A {e domain-local} slot so [bfly_tool --deadline] can supervise every
    cooperating solver a subcommand reaches without new parameters on
    each call chain. Solvers resolve their [?cancel] argument with
    {!resolve}: an explicit token wins, otherwise the ambient one (if
    any) applies.

    Domain-locality is a concurrency contract, not an implementation
    detail: the serve dispatcher executes batches with {e different}
    deadlines on different pool domains at once, each under its own
    [with_ambient]. Solvers therefore resolve the ambient token once at
    entry (on the domain that installed it) and pass the resolved token
    {e explicitly} to any work they fan out through
    [Bfly_graph.Parallel] — an ambient slot read from inside a pool task
    would see that worker domain's slot, not the submitter's. *)

val ambient : unit -> t option
val set_ambient : t option -> unit

(** [with_ambient t f] runs [f] with [t] as the ambient token, restoring
    the previous one afterwards (even on raise). *)
val with_ambient : t -> (unit -> 'a) -> 'a

val resolve : t option -> t option
(** [resolve explicit] is [explicit] if given, else {!ambient}. *)

val stop : t option -> bool
(** [stop c] is [false] for [None], else [triggered]. The poll most
    solver loops want. *)
