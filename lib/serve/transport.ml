(* Single-threaded [select] loops: no reader thread to synchronize with,
   no domain stolen from the solver pool — batching falls out of reading
   greedily before each solve. *)

let install_drain_handlers server =
  let drain _ = Server.drain server in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle drain)
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle drain)
   with Invalid_argument _ | Sys_error _ -> ());
  (* a dropped client must cost a write error, not the process *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

(* split off complete lines, feeding each to [submit]; returns the
   unterminated remainder *)
let feed_lines ~submit partial chunk =
  let data = partial ^ chunk in
  let n = String.length data in
  let start = ref 0 in
  (try
     while !start < n do
       match String.index_from data !start '\n' with
       | exception Not_found -> raise Exit
       | nl ->
           let line = String.sub data !start (nl - !start) in
           if String.trim line <> "" then submit line;
           start := nl + 1
     done
   with Exit -> ());
  String.sub data !start (n - !start)

let readable ?(timeout = 0.0) fds =
  match Unix.select fds [] [] timeout with
  | ready, _, _ -> ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write fd b !pos (len - !pos) with
    | 0 -> raise Exit
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* ---- stdin/stdout ---- *)

let stdio ?(block_timeout = 0.5) server =
  install_drain_handlers server;
  let eof = ref false in
  let partial = ref "" in
  let reply line =
    (* the client owns the pipe; if it went away there is nobody left to
       answer, so fail the write silently and keep draining *)
    try write_all Unix.stdout (line ^ "\n") with _ -> ()
  in
  let submit line = Server.submit server ~reply line in
  let buf = Bytes.create 65536 in
  let read_chunk () =
    match Unix.read Unix.stdin buf 0 (Bytes.length buf) with
    | 0 ->
        eof := true;
        if !partial <> "" then begin
          if String.trim !partial <> "" then submit !partial;
          partial := ""
        end
    | n -> partial := feed_lines ~submit !partial (Bytes.sub_string buf 0 n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let accepting () = (not !eof) && not (Server.draining server) in
  while accepting () || Server.pending server > 0 do
    (* drain the readable side completely before solving anything: a
       burst of duplicate requests then costs one solve, not many *)
    while accepting () && readable [ Unix.stdin ] <> [] do
      read_chunk ()
    done;
    if Server.pending server > 0 then ignore (Server.run_next server)
    else if accepting () then
      ignore (readable ~timeout:block_timeout [ Unix.stdin ])
  done

(* ---- Unix-domain socket ---- *)

type client = { fd : Unix.file_descr; mutable partial : string }

let socket ?(block_timeout = 0.5) server ~path =
  install_drain_handlers server;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 16 in
  let drop c =
    Hashtbl.remove clients c.fd;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let reply_to c line =
    try write_all c.fd (line ^ "\n") with _ -> drop c
  in
  let buf = Bytes.create 65536 in
  let read_client c =
    let submit line = Server.submit server ~reply:(reply_to c) line in
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 ->
        if String.trim c.partial <> "" then submit c.partial;
        drop c
    | n -> c.partial <- feed_lines ~submit c.partial (Bytes.sub_string buf 0 n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        drop c
  in
  Fun.protect
    ~finally:(fun () ->
      Hashtbl.iter (fun _ c -> try Unix.close c.fd with _ -> ()) clients;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind listen_fd (Unix.ADDR_UNIX path);
      Unix.listen listen_fd 64;
      while (not (Server.draining server)) || Server.pending server > 0 do
        let fds =
          if Server.draining server then []
          else
            listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients []
        in
        let timeout = if Server.pending server > 0 then 0.0 else block_timeout in
        let ready = if fds = [] then [] else readable ~timeout fds in
        List.iter
          (fun fd ->
            if fd = listen_fd then (
              match Unix.accept listen_fd with
              | cfd, _ -> Hashtbl.replace clients cfd { fd = cfd; partial = "" }
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
            else
              match Hashtbl.find_opt clients fd with
              | Some c -> read_client c
              | None -> ())
          ready;
        if Server.pending server > 0 then ignore (Server.run_next server)
      done)
