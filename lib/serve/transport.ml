(* One single-threaded [select] loop owns every file descriptor: it
   accepts, reads, and reaps. Solves run elsewhere — Dispatch puts
   batches on the domain pool — and deliver their responses through
   per-connection sequence numbers, so the loop never blocks on a solver
   and a client never observes responses out of request order. *)

module Metrics = Bfly_obs.Metrics

let c_accepted = Metrics.counter "serve.accepted"
let c_disconnects = Metrics.counter "serve.disconnects"
let c_write_fail = Metrics.counter "serve.write_fail"
let c_write_drop = Metrics.counter "serve.write_drop"
let c_oversized = Metrics.counter "serve.oversized"

let default_max_line = 262144

let install_drain_handlers server =
  let drain _ = Server.drain server in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle drain)
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle drain)
   with Invalid_argument _ | Sys_error _ -> ());
  (* a dropped client must cost a write error, not the process *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let readable ?(timeout = 0.0) fds =
  match Unix.select fds [] [] timeout with
  | ready, _, _ -> ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write fd b !pos (len - !pos) with
    | 0 -> raise Exit
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* ---- connections ---- *)

type conn = {
  rfd : Unix.file_descr;  (* read side; the select key *)
  wfd : Unix.file_descr;  (* write side; same fd except for stdio *)
  is_stdio : bool;
  peer : string;
  admission : Server.client;
  (* write-side state, shared with the pool domains delivering
     responses; guarded by [wlock] *)
  wlock : Mutex.t;
  mutable closed : bool; (* latches; the loop reaps closed conns *)
  mutable deliver_seq : int; (* next sequence number to write *)
  out : (int, string) Hashtbl.t; (* completed out-of-order responses *)
  (* read-side state, touched only by the transport thread *)
  mutable partial : string;
  mutable discarding : bool; (* inside an oversized line, until '\n' *)
  mutable next_seq : int; (* sequence numbers assigned at submit *)
  mutable read_eof : bool; (* client half-closed; responses still owed *)
}

let make_conn ?(is_stdio = false) ~server ~peer ~rfd ~wfd () =
  {
    rfd;
    wfd;
    is_stdio;
    peer;
    admission = Server.client ~name:peer server;
    wlock = Mutex.create ();
    closed = false;
    deliver_seq = 0;
    out = Hashtbl.create 8;
    partial = "";
    discarding = false;
    next_seq = 0;
    read_eof = false;
  }

let is_closed c =
  Mutex.lock c.wlock;
  let v = c.closed in
  Mutex.unlock c.wlock;
  v

(* after a half-close: has every submitted request been answered? *)
let settled c =
  Mutex.lock c.wlock;
  let v = c.deliver_seq = c.next_seq && Hashtbl.length c.out = 0 in
  Mutex.unlock c.wlock;
  v

(* latch [closed] from the read side (EOF, connection reset); the loop
   closes the fd on its next reap pass *)
let mark_closed c =
  Mutex.lock c.wlock;
  c.closed <- true;
  Hashtbl.reset c.out;
  Mutex.unlock c.wlock

(* Deliver the response with per-connection sequence number [seq],
   writing it — and any buffered successors — once every earlier
   response is out. Responses therefore reach each client in its own
   request order no matter which domain finishes first. Thread-safe;
   called from pool domains and from the transport thread.

   A failing write is never swallowed silently: it counts in
   [serve.write_fail], the connection latches closed (buffered responses
   dropped, counted in [serve.write_drop]) and its socket is shut down so
   the select loop reaps it. *)
let deliver c seq line =
  Mutex.lock c.wlock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.wlock) @@ fun () ->
  if c.closed then Metrics.incr c_write_drop
  else begin
    Hashtbl.replace c.out seq line;
    try
      while Hashtbl.mem c.out c.deliver_seq do
        let l = Hashtbl.find c.out c.deliver_seq in
        write_all c.wfd (l ^ "\n");
        Hashtbl.remove c.out c.deliver_seq;
        c.deliver_seq <- c.deliver_seq + 1
      done
    with _ ->
      Metrics.incr c_write_fail;
      c.closed <- true;
      Hashtbl.reset c.out;
      if not c.is_stdio then (
        try Unix.shutdown c.rfd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
  end

let submit_line server c line =
  let seq = c.next_seq in
  c.next_seq <- c.next_seq + 1;
  Server.submit server ~client:c.admission ~reply:(deliver c seq) line

let reject_oversized ~max_line c () =
  Metrics.incr c_oversized;
  let seq = c.next_seq in
  c.next_seq <- c.next_seq + 1;
  deliver c seq
    (Protocol.error_response ~id:"oversized"
       (Printf.sprintf "request line exceeds %d bytes" max_line))

(* Split [chunk] (appended to the connection's buffered partial) into
   complete lines for [submit]. The read is bounded: a line longer than
   [max_line] is rejected once (via [reject]) without ever being
   buffered, and the connection discards until the next newline — a
   client streaming an endless unterminated line cannot balloon
   memory. *)
let feed ~max_line ~submit ~reject c chunk =
  let data = if c.partial = "" then chunk else c.partial ^ chunk in
  c.partial <- "";
  let n = String.length data in
  let start = ref 0 in
  let continue = ref true in
  while !continue && !start < n do
    match String.index_from data !start '\n' with
    | exception Not_found ->
        let rem = n - !start in
        if c.discarding then () (* stay in discard mode, buffer nothing *)
        else if rem > max_line then begin
          reject ();
          c.discarding <- true
        end
        else c.partial <- String.sub data !start rem;
        continue := false
    | nl ->
        (if c.discarding then c.discarding <- false
         else
           let line = String.sub data !start (nl - !start) in
           if String.length line > max_line then reject ()
           else if String.trim line <> "" then submit line);
        start := nl + 1
  done

(* ---- listeners ---- *)

type listener = {
  lfd : Unix.file_descr;
  unlink_on_close : string option;
}

let unix_listener ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { lfd = fd; unlink_on_close = Some path }

let tcp_listener ?port_file ~host ~port () =
  let inet =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
      | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (inet, port));
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let shost, sport =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (a, p) -> (Unix.string_of_inet_addr a, p)
    | _ -> (host, port)
  in
  (* with port 0 the kernel picked an ephemeral port; the port file is
     how a supervisor (or ci.sh) learns the actual address *)
  (match port_file with
  | Some file ->
      Out_channel.with_open_text file (fun oc ->
          Printf.fprintf oc "%s:%d\n" shost sport)
  | None -> ());
  Printf.eprintf "bfly_serve: listening on tcp:%s:%d\n%!" shost sport;
  { lfd = fd; unlink_on_close = None }

let peer_name = function
  | Unix.ADDR_UNIX _ -> "unix"
  | Unix.ADDR_INET (a, p) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p

(* ---- the loop ---- *)

let run ?(block_timeout = 0.5) ?workers ?(max_line = default_max_line) server
    ~listeners ~with_stdio =
  install_drain_handlers server;
  let dispatch = Dispatch.create ?cap:workers server in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let stdin_eof = ref false in
  let stdio_conn =
    if with_stdio then begin
      let c =
        make_conn ~is_stdio:true ~server ~peer:"stdio" ~rfd:Unix.stdin
          ~wfd:Unix.stdout ()
      in
      Hashtbl.replace conns c.rfd c;
      Some c
    end
    else None
  in
  let listener_fds = List.map (fun l -> l.lfd) listeners in
  let reap () =
    let dead =
      Hashtbl.fold
        (fun _ c acc ->
          if is_closed c || (c.read_eof && settled c) then c :: acc else acc)
        conns []
    in
    List.iter
      (fun c ->
        Hashtbl.remove conns c.rfd;
        Metrics.incr c_disconnects;
        (* stdio fds are the process's own; only sockets are ours to
           close, and only here — pool domains never close an fd the
           select loop might still be watching *)
        if not c.is_stdio then
          try Unix.close c.rfd with Unix.Unix_error _ -> ())
      dead
  in
  let accepting () =
    (not (Server.draining server))
    && ((match stdio_conn with
        | Some c -> (not !stdin_eof) && not (is_closed c)
        | None -> false)
       || listeners <> [])
  in
  let watch_fds () =
    if Server.draining server then []
    else
      let conn_fds =
        Hashtbl.fold
          (fun fd c acc ->
            if is_closed c || c.read_eof || (c.is_stdio && !stdin_eof) then acc
            else fd :: acc)
          conns []
      in
      listener_fds @ conn_fds
  in
  let buf = Bytes.create 65536 in
  let read_conn c =
    let submit = submit_line server c in
    let reject = reject_oversized ~max_line c in
    match Unix.read c.rfd buf 0 (Bytes.length buf) with
    | 0 ->
        (* EOF: an unterminated trailing line still counts as a final
           request (the stdio contract since PR 5). A socket EOF is a
           half-close, not a disconnect — the client may have pipelined
           requests and shut down its send side; responses it is owed
           still flow, and the connection is reaped once settled *)
        if (not c.discarding) && String.trim c.partial <> "" then
          submit c.partial;
        c.partial <- "";
        if c.is_stdio then stdin_eof := true else c.read_eof <- true
    | n -> feed ~max_line ~submit ~reject c (Bytes.sub_string buf 0 n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        mark_closed c
  in
  let accept_conn l =
    match Unix.accept l.lfd with
    | fd, addr ->
        Metrics.incr c_accepted;
        (* batch replies are latency-sensitive single lines *)
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ | Invalid_argument _ -> ());
        let c = make_conn ~server ~peer:(peer_name addr) ~rfd:fd ~wfd:fd () in
        Hashtbl.replace conns fd c
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
        ()
  in
  let handle_ready fd =
    match List.find_opt (fun l -> l.lfd = fd) listeners with
    | Some l -> accept_conn l
    | None -> (
        match Hashtbl.find_opt conns fd with
        | Some c when not (is_closed c) -> read_conn c
        | _ -> ())
  in
  let cleanup () =
    Hashtbl.iter
      (fun _ c ->
        if not c.is_stdio then
          try Unix.close c.rfd with Unix.Unix_error _ -> ())
      conns;
    List.iter
      (fun l ->
        (try Unix.close l.lfd with Unix.Unix_error _ -> ());
        match l.unlink_on_close with
        | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
        | None -> ())
      listeners
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  while accepting () || Server.pending server > 0 || Dispatch.busy dispatch do
    reap ();
    match watch_fds () with
    | [] ->
        (* no input left (drain, or every source gone): finish what is
           queued and wait for in-flight batches to answer *)
        Dispatch.pump dispatch;
        Dispatch.wait_idle dispatch
    | fds ->
        (* block only when idle: while batches solve elsewhere, keep the
           loop responsive so new arrivals still coalesce and pump *)
        let timeout =
          if Server.pending server > 0 || Dispatch.busy dispatch then 0.05
          else block_timeout
        in
        List.iter handle_ready (readable ~timeout fds);
        (* greedily drain everything already readable before dispatching:
           a burst of duplicates then costs one solve, not many *)
        let rec drain_burst () =
          reap ();
          match watch_fds () with
          | [] -> ()
          | fds -> (
              match readable ~timeout:0.0 fds with
              | [] -> ()
              | ready ->
                  List.iter handle_ready ready;
                  drain_burst ())
        in
        drain_burst ();
        Dispatch.pump dispatch
  done;
  (* loop exit still needs a final settle: pending work admitted in the
     last iteration, or in-flight batches during a drain *)
  Dispatch.pump dispatch;
  Dispatch.wait_idle dispatch;
  while Server.run_next server do () done;
  reap ()

(* ---- public entry points ---- *)

let serve ?block_timeout ?workers ?max_line ?(stdio = false) ?unix_path ?tcp
    ?port_file server =
  let listeners =
    (match unix_path with Some path -> [ unix_listener ~path ] | None -> [])
    @
    match tcp with
    | Some (host, port) -> [ tcp_listener ?port_file ~host ~port () ]
    | None -> []
  in
  if listeners = [] && not stdio then
    invalid_arg "Transport.serve: no transport selected";
  run ?block_timeout ?workers ?max_line server ~listeners ~with_stdio:stdio

let stdio ?block_timeout ?workers ?max_line server =
  serve ?block_timeout ?workers ?max_line ~stdio:true server

let socket ?block_timeout ?workers ?max_line server ~path =
  serve ?block_timeout ?workers ?max_line ~unix_path:path server
