(** Transports: NDJSON request/response framing over stdio, Unix-domain
    sockets and TCP, in any combination, with concurrent batch execution.

    One single-threaded [select] loop owns every file descriptor: it
    accepts connections, reads request lines, and reaps dead clients.
    Solving happens elsewhere — each read burst is followed by
    {!Dispatch.pump}, which runs queued batches on the
    {!Bfly_graph.Parallel} domain pool — so a slow solve never blocks
    accepting or reading, and concurrent clients genuinely overlap.
    Reads stay greedy: everything already readable is consumed before
    dispatching, so a burst of duplicate requests coalesces into one
    solve exactly as in the sequential loop.

    {2 Ordering}

    Responses are delivered per connection in {e request order}: every
    submitted line gets a connection-local sequence number, and a pool
    domain finishing out of turn buffers its response until all earlier
    ones are written. Clients may therefore pipeline requests and match
    responses positionally, whatever the worker count.

    {2 Bounded reads}

    A request line longer than [max_line] (default {!default_max_line})
    is never buffered: the client gets one structured error response
    ([id "oversized"]) and the transport discards input until the next
    newline. Counted in [serve.oversized].

    A socket EOF is treated as a half-close, mirroring the stdio
    contract: the client may pipeline requests, shut down its send side,
    and still read every response it is owed; the connection is closed
    once the last one is written.

    {2 Failure accounting}

    A client that disconnects abruptly mid-batch costs nothing but
    counters: a
    failed response write increments [serve.write_fail], latches the
    connection closed and shuts its socket down; responses already in
    flight for a closed connection are dropped and counted in
    [serve.write_drop]. Accepts and disconnects appear as
    [serve.accepted] / [serve.disconnects]. No write failure is ever
    silently swallowed, and only the select loop ever closes a file
    descriptor, so a reused fd can never be written by a stale solver.

    {2 Drain}

    SIGTERM/SIGINT switch the server to draining: the loop stops
    watching every input fd, new submissions are rejected, already
    queued and in-flight batches complete and their responses are
    written, then the loop returns. SIGPIPE is ignored (write errors
    surface as [serve.write_fail] instead). The caller is expected to
    log {!Server.summary} afterwards. *)

val default_max_line : int
(** 262144 bytes. *)

val serve :
  ?block_timeout:float ->
  ?workers:int ->
  ?max_line:int ->
  ?stdio:bool ->
  ?unix_path:string ->
  ?tcp:string * int ->
  ?port_file:string ->
  Server.t ->
  unit
(** Serve on every selected transport at once and return when done:
    after EOF / last disconnect with an empty queue, or after a drain
    completes. [stdio] reads stdin and writes stdout (a trailing
    unterminated line counts as a final request); [unix_path] binds a
    Unix-domain socket, replacing any existing file and unlinking it on
    the way out; [tcp] binds [(host, port)] — port [0] asks the kernel
    for an ephemeral port, and the actual ["host:port"] is printed to
    stderr and, when [port_file] is given, written there for a
    supervisor (or CI script) to read. Raises [Invalid_argument] when no
    transport is selected.

    [workers] caps concurrently-executing batches (default
    [Bfly_graph.Parallel.domain_count ()]; [1] reproduces the sequential
    loop exactly); [block_timeout] is the idle [select] granularity in
    seconds (default 0.5), which bounds drain-signal reaction time. *)

val stdio :
  ?block_timeout:float -> ?workers:int -> ?max_line:int -> Server.t -> unit
(** [serve ~stdio:true]: one NDJSON session over stdin/stdout (stderr
    stays free for logs). *)

val socket :
  ?block_timeout:float ->
  ?workers:int ->
  ?max_line:int ->
  Server.t ->
  path:string ->
  unit
(** [serve ~unix_path:path]: accept any number of concurrent clients on
    a Unix-domain socket. *)
