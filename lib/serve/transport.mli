(** Transports for {!Server}: a stdin/stdout pipe and a Unix-domain
    socket, both single-threaded [select] loops.

    Both loops follow the same discipline: greedily read every request
    line already available (so a burst coalesces before anything solves),
    then execute {e one} batch, then look at the file descriptors again —
    requests arriving while a batch solves are picked up before the next
    batch and can still coalesce with queued work. SIGTERM and SIGINT
    trigger a graceful drain: no further requests are accepted (job
    submissions are answered with ["draining"]), queued batches run to
    completion and are answered, then the loop returns. The caller is
    expected to log {!Server.summary} afterwards. *)

val stdio : ?block_timeout:float -> Server.t -> unit
(** Serve newline-delimited requests from stdin, answering on stdout
    (stderr stays free for logs). Returns when stdin reaches EOF — a
    trailing unterminated line is treated as a final request — or on
    drain, once the queue is empty. [block_timeout] (default 0.5s) is the
    idle [select] granularity, which bounds drain-signal reaction time. *)

val socket : ?block_timeout:float -> Server.t -> path:string -> unit
(** Listen on a Unix-domain socket at [path] (an existing file there is
    replaced), serving any number of concurrent connections; each gets
    its responses in its own arrival order. Returns after a drain signal
    once queued work is answered; the socket file is unlinked on the way
    out. *)
