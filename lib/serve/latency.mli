(** Latency quantiles for the serve loop.

    {!Bfly_obs.Metrics} timers keep (count, total, max) — enough for
    throughput accounting, not for tail latency. This reservoir keeps the
    most recent [capacity] request latencies in a ring and reports exact
    order statistics over that window (all samples, while fewer than
    [capacity] have been recorded). Quantiles use the nearest-rank method
    on the sorted window, so [p ~q:0.5] of a single sample is that
    sample. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 4096 samples. *)

val record : t -> ns:int -> unit

val count : t -> int
(** Samples recorded since creation (not capped by the window). *)

val p : t -> q:float -> int
(** Nearest-rank quantile of the current window in nanoseconds; [0] while
    empty. [q] is clamped to [0,1]. *)

val max_ns : t -> int
(** Maximum over the whole lifetime (not just the window). *)
