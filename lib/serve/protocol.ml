module Json = Bfly_obs.Json
module Budget = Bfly_resil.Budget

type payload =
  | Job of { spec : Job.spec; deadline : Budget.t option }
  | Stats

type request = { id : string; payload : payload }

(* ---- request parsing ---- *)

let field obj k = Json.member k obj

let int_field obj k ~default =
  match field obj k with
  | None -> Ok default
  | Some v -> (
      match Json.to_int_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %S must be an integer" k))

let bool_field obj k ~default =
  match field obj k with
  | None -> Ok default
  | Some v -> (
      match Json.to_bool_opt v with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "field %S must be a boolean" k))

let string_field obj k =
  match field obj k with
  | None -> Ok None
  | Some v -> (
      match Json.to_string_opt v with
      | Some s -> Ok (Some s)
      | None -> Error (Printf.sprintf "field %S must be a string" k))

let ( let* ) = Result.bind

let net_field obj =
  let* net = string_field obj "network" in
  match net with
  | None -> Error "field \"network\" is required"
  | Some s -> Job.net_of_string s

let required_int obj k =
  match field obj k with
  | None -> Error (Printf.sprintf "field %S is required" k)
  | Some v -> (
      match Json.to_int_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %S must be an integer" k))

(* Fabric specs fix the instance size themselves; [n] is pinned to 0 so
   equal jobs coalesce under one fingerprint, and a contradictory explicit
   [n] is rejected rather than ignored. *)
let n_for_net obj net =
  if Job.is_fabric net then
    match field obj "n" with
    | None -> Ok 0
    | Some _ ->
        Error
          "field \"n\" must be omitted for fabric networks (the spec fixes \
           the size)"
  else required_int obj "n"

let parse_bw obj =
  let* solver =
    let* s = string_field obj "solver" in
    Job.solver_of_string (Option.value s ~default:"exact")
  in
  let* net = net_field obj in
  let* n = n_for_net obj net in
  let* seed = int_field obj "seed" ~default:1 in
  let* restarts = int_field obj "restarts" ~default:4 in
  let* max_nodes =
    match field obj "max_nodes" with
    | None -> Ok None
    | Some v -> (
        match Json.to_int_opt v with
        | Some i -> Ok (Some i)
        | None -> Error "field \"max_nodes\" must be an integer")
  in
  let* resume = bool_field obj "resume" ~default:false in
  Ok (Job.Bw { solver; net; n; seed; restarts; max_nodes; resume })

let parse_expansion kind obj =
  let* net = net_field obj in
  let* n = n_for_net obj net in
  let* k = required_int obj "k" in
  let* exact = bool_field obj "exact" ~default:false in
  let* seed = int_field obj "seed" ~default:1 in
  Ok (Job.Expansion { kind; net; n; k; exact; seed })

let parse_spec job obj =
  match job with
  | "bw" -> parse_bw obj
  | "mos" ->
      let* j = required_int obj "j" in
      Ok (Job.Mos { j })
  | "ee" -> parse_expansion `Ee obj
  | "ne" -> parse_expansion `Ne obj
  | "expansion" -> parse_expansion `Both obj
  | "check" ->
      let* seed = int_field obj "seed" ~default:42 in
      let* rounds = int_field obj "rounds" ~default:5 in
      Ok (Job.Check { seed; rounds })
  | "campaign" ->
      let* degree = int_field obj "degree" ~default:3 in
      let* seeds = int_field obj "seeds" ~default:3 in
      let* sizes =
        match field obj "sizes" with
        | None -> Ok [ 32; 64 ]
        | Some (Json.List l) -> (
            match
              List.fold_right
                (fun v acc ->
                  Option.bind acc (fun tl ->
                      Option.map (fun i -> i :: tl) (Json.to_int_opt v)))
                l (Some [])
            with
            | Some sizes -> Ok sizes
            | None -> Error "field \"sizes\" must be a list of integers")
        | Some _ -> Error "field \"sizes\" must be a list of integers"
      in
      (* serve-side grid caps: a campaign is the most expensive job in
         the vocabulary, and a shared endpoint must bound what one
         request can pin the pool with (Campaign.run validates the rest) *)
      if seeds > 16 then Error "field \"seeds\" is capped at 16 when serving"
      else if List.length sizes > 8 then
        Error "field \"sizes\" is capped at 8 sizes when serving"
      else if List.exists (fun n -> n > 1024) sizes then
        Error "served campaign sizes are capped at n <= 1024"
      else Ok (Job.Campaign { degree; sizes; seeds })
  | s ->
      Error
        (Printf.sprintf
           "unknown job %S (bw|mos|ee|ne|expansion|check|campaign|stats)" s)

let parse_request ~default_id line =
  match Json.of_string line with
  | Error m -> Error ("request is not valid JSON: " ^ m, default_id)
  | Ok obj when Json.duplicate_key obj <> None ->
      (* first-key-wins lookup would silently ignore the later value; an
         ambiguous request is malformed, not a preference *)
      let k = Option.get (Json.duplicate_key obj) in
      Error (Printf.sprintf "duplicate key %S in request object" k, default_id)
  | Ok (Json.Obj _ as obj) -> (
      let id =
        match field obj "id" with
        | Some (Json.Str s) -> s
        | Some (Json.Int i) -> string_of_int i
        | _ -> default_id
      in
      match string_field obj "job" with
      | Error m -> Error (m, id)
      | Ok None -> Error ("field \"job\" is required", id)
      | Ok (Some "stats") -> Ok { id; payload = Stats }
      | Ok (Some job) -> (
          let deadline =
            match field obj "deadline" with
            | None -> Ok None
            | Some (Json.Str s) -> (
                match Budget.of_string s with
                | Ok b -> Ok (Some b)
                | Error e -> Error ("bad deadline: " ^ e))
            | Some _ -> Error "field \"deadline\" must be a string"
          in
          match deadline with
          | Error m -> Error (m, id)
          | Ok deadline -> (
              match parse_spec job obj with
              | Error m -> Error (m, id)
              | Ok spec -> Ok { id; payload = Job { spec; deadline } })))
  | Ok _ -> Error ("request must be a JSON object", default_id)

(* ---- responses ---- *)

let ok_response ~id ~batch ~output =
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Str id);
         ("ok", Json.Bool true);
         ("batch", Json.Int batch);
         ("output", Json.Str output);
       ])

let error_response ~id msg =
  Json.to_string
    (Json.Obj
       [ ("id", Json.Str id); ("ok", Json.Bool false); ("error", Json.Str msg) ])

let stats_response ~id stats =
  let fields = match stats with Json.Obj f -> f | v -> [ ("stats", v) ] in
  Json.to_string
    (Json.Obj ([ ("id", Json.Str id); ("ok", Json.Bool true) ] @ fields))
