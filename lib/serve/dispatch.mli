(** Concurrent batch dispatch: runs {!Server} batches on the
    {!Bfly_graph.Parallel} domain pool.

    A dispatcher turns queued batches into detached pool jobs
    ({!Bfly_graph.Parallel.async}); each job claims batches with
    {!Server.take_batch}, executes them with {!Server.execute_batch}, and
    retires when the queue is empty. At most [cap] jobs are alive at
    once, so [cap] batches solve concurrently while admission control
    still bounds what queues up behind them. The transport calls {!pump}
    after every read burst (cheap and idempotent) and {!wait_idle} before
    shutting down.

    {2 Determinism}

    Concurrency changes {e scheduling}, never {e answers}: batches run
    the same {!Job.run} as the sequential path, the single-flight
    {!Batcher} keeps duplicate fingerprints on one solve even mid-flight,
    and the content-addressed cache dedups across batches, so per-request
    response bytes — and, for traces of cache-disjoint jobs, the cold-run
    solve and [cache.miss] counts — match the sequential replay exactly.
    With [BFLY_DOMAINS=1], {!pump} runs every batch inline before
    returning, which {e is} the sequential path.

    Each batch may itself fan out on the pool ({!Job.run} solvers are
    internally parallel); nested submissions drain like any other pool
    work. A worker domain that steals a sibling's dispatch job while
    draining merely reorders which domain answers — answers themselves
    are fixed. *)

type t

val create : ?cap:int -> Server.t -> t
(** [cap] bounds concurrently-executing batches; defaults to
    [Bfly_graph.Parallel.domain_count ()]. Raises [Invalid_argument] when
    [< 1]. *)

val cap : t -> int

val pump : t -> unit
(** Spawn enough detached workers (up to [cap]) to cover the currently
    queued batches. Non-blocking on a multi-domain pool; with one
    configured domain the work runs inline here. Idempotent — extra
    calls find nothing to do. *)

val busy : t -> bool
(** Whether any worker job is still alive (executing or retiring). *)

val wait_idle : t -> unit
(** Block until every worker job has retired. Since workers keep claiming
    batches until the queue is empty, once the transport stops submitting
    this means: every admitted request has been answered. *)
