(** Solver jobs: the one vocabulary shared by the one-shot CLI and the
    batch query service.

    A {!spec} names a deterministic solver invocation — the same set the
    paper's quantities need at serving time: bisection-width solvers
    (exact branch and bound, the KL/FM/SA/spectral heuristics, the
    multilevel partitioner), the
    mesh-of-stars closed form (Lemmas 2.17–2.19), the Section 4 expansion
    enumerations/annealers, and the differential-oracle battery. {!run}
    executes one and returns {e exactly} the text the corresponding
    [bfly_tool] subcommand prints — [bfly_tool bw], [bfly_tool expansion]
    and [bfly_tool mos] are themselves implemented on top of this module,
    so a served response is byte-identical to a one-shot invocation by
    construction, warm or cold cache.

    {!fingerprint} canonically names a [(spec, deadline)] pair; the server
    coalesces concurrent requests with equal fingerprints into one solve.
    Every solver underneath already persists through {!Bfly_cache.Store},
    so warm fingerprints never re-search. *)

type net =
  | Butterfly
  | Wrapped
  | Ccc
  | Fabric of Bfly_networks.Fabric.spec
      (** A data-center product network; the spec fixes the instance size,
          so the [n] field of jobs on fabrics is pinned to [0]. *)

type solver = Exact | Kl | Fm | Sa | Spectral | Ml

(** What a bisection-width job runs. [max_nodes]/[resume] only affect
    [Exact] (step budget / checkpoint continuation); [seed]/[restarts]
    only the seeded heuristics ([Spectral] is deterministic). *)
type bw = {
  solver : solver;
  net : net;
  n : int;
  seed : int;
  restarts : int;
  max_nodes : int option;
  resume : bool;
}

(** Which expansion lines to print: [`Ee], [`Ne], or both (the classic
    [bfly_tool expansion] output). *)
type expansion_kind = [ `Ee | `Ne | `Both ]

type spec =
  | Bw of bw
  | Mos of { j : int }
  | Expansion of {
      kind : expansion_kind;
      net : net;
      n : int;
      k : int;
      exact : bool;
      seed : int;
    }
  | Check of { seed : int; rounds : int }
  | Campaign of { degree : int; sizes : int list; seeds : int }
      (** A random-regular bisection sweep rendered through
          {!Bfly_check.Campaign.render}; deterministic for a given grid,
          so equal grids coalesce like any other fingerprint. *)

val net_name : net -> string
(** ["butterfly"] | ["wrapped"] | ["ccc"]. *)

val net_of_string : string -> (net, string) result
(** Accepts the same spellings as the CLI ([butterfly|b|bn], [wrapped|w|wn],
    [ccc]) plus the {!Bfly_networks.Fabric} specs ([mesh:2x4x8],
    [torus:4x4x4], [torus3d:4x4x4], [bcube:4x2],
    [product:path2xring3xk4]); fabric validation errors are reported
    here. *)

val is_fabric : net -> bool

val solver_name : solver -> string

val solver_of_string : string -> (solver, string) result
(** [exact|kl|fm|sa|spectral|ml] ([annealing] is accepted for [sa],
    [multilevel] for [ml]). *)

val graph_of : net -> int -> (Bfly_graph.Graph.t * string, string) result
(** The instance graph and its display name ([B_16], [W_16], [CCC_16], or
    the canonical fabric spec such as [mesh:2x4x8]); errors match the
    CLI's ("n must be a power of two", …). Fabric nets ignore [n] — the
    spec already fixes the size. *)

val fingerprint : ?deadline:Bfly_resil.Budget.t -> spec -> string
(** Canonical one-line identity of a [(spec, deadline)] pair. Equal
    fingerprints mean equal requests — same solver, same parameters, same
    deadline — which is the coalescing criterion: batching a request onto
    an in-flight twin must not change its answer, and a deadline is part
    of the answer (it decides whether an exact search may degrade to an
    interval). *)

val run : ?deadline:Bfly_resil.Budget.t -> spec -> (string, string) result
(** Execute the job. [Ok text] is the bytes the matching one-shot
    [bfly_tool] subcommand writes to stdout (trailing newline included);
    [Error msg] the message it prints to stderr. [deadline] supervises the
    run the way [bfly_tool --deadline] does: an ambient
    {!Bfly_resil.Cancel} token for heuristics and annealers, a direct
    token (combined with [max_nodes]) for the exact search — which then
    degrades to a certified, validated interval instead of completing.
    Every witness-carrying result is re-validated through
    {!Bfly_check.Invariants} before the text is produced. *)
