module G = Bfly_graph.Graph
module B = Bfly_networks.Butterfly
module W = Bfly_networks.Wrapped
module Ccc_net = Bfly_networks.Ccc
module Budget = Bfly_resil.Budget
module Cancel = Bfly_resil.Cancel
module Invariants = Bfly_check.Invariants

module Fabric = Bfly_networks.Fabric

type net = Butterfly | Wrapped | Ccc | Fabric of Fabric.spec

type solver = Exact | Kl | Fm | Sa | Spectral | Ml

type bw = {
  solver : solver;
  net : net;
  n : int;
  seed : int;
  restarts : int;
  max_nodes : int option;
  resume : bool;
}

type expansion_kind = [ `Ee | `Ne | `Both ]

type spec =
  | Bw of bw
  | Mos of { j : int }
  | Expansion of {
      kind : expansion_kind;
      net : net;
      n : int;
      k : int;
      exact : bool;
      seed : int;
    }
  | Check of { seed : int; rounds : int }
  | Campaign of { degree : int; sizes : int list; seeds : int }

let net_name = function
  | Butterfly -> "butterfly"
  | Wrapped -> "wrapped"
  | Ccc -> "ccc"
  | Fabric spec -> Fabric.name spec

let is_fabric = function Fabric _ -> true | _ -> false

let net_of_string s =
  match s with
  | "butterfly" | "b" | "bn" -> Ok Butterfly
  | "wrapped" | "w" | "wn" -> Ok Wrapped
  | "ccc" -> Ok Ccc
  | s when Fabric.is_spec s ->
      Result.map (fun spec -> Fabric spec) (Fabric.spec_of_string s)
  | s ->
      Error
        (Printf.sprintf
           "unknown network %S (butterfly|wrapped|ccc, or a fabric spec \
            mesh:|torus:|torus3d:|bcube:|product:)"
           s)

let solver_name = function
  | Exact -> "exact"
  | Kl -> "kl"
  | Fm -> "fm"
  | Sa -> "sa"
  | Spectral -> "spectral"
  | Ml -> "ml"

let solver_of_string = function
  | "exact" -> Ok Exact
  | "kl" -> Ok Kl
  | "fm" -> Ok Fm
  | "sa" | "annealing" -> Ok Sa
  | "spectral" -> Ok Spectral
  | "ml" | "multilevel" -> Ok Ml
  | s ->
      Error (Printf.sprintf "unknown solver %S (exact|kl|fm|sa|spectral|ml)" s)

let log2_exact n =
  let rec go l v =
    if v = n then Some l else if v > n then None else go (l + 1) (2 * v)
  in
  if n < 1 then None else go 0 1

let graph_of net n =
  match net with
  | Fabric spec -> (
      (* the spec fixes the size; [n] is pinned to 0 by the parsers so the
         fingerprint stays canonical *)
      match Fabric.create spec with
      | fab -> Ok (Fabric.graph fab, Fabric.name_of fab)
      | exception Invalid_argument m -> Error m)
  | _ -> (
      match log2_exact n with
      | None -> Error "n must be a power of two"
      | Some log_n -> (
          match net with
          | Fabric _ -> assert false
          | Butterfly -> Ok (B.graph (B.create ~log_n), Printf.sprintf "B_%d" n)
          | Wrapped ->
              if log_n < 2 then Error "wrapped butterfly needs n >= 4"
              else Ok (W.graph (W.create ~log_n), Printf.sprintf "W_%d" n)
          | Ccc ->
              if log_n < 2 then Error "CCC needs n >= 4"
              else
                Ok
                  (Ccc_net.graph (Ccc_net.create ~log_n), Printf.sprintf "CCC_%d" n)))

(* ---- fingerprints ---- *)

let kind_name = function `Ee -> "ee" | `Ne -> "ne" | `Both -> "both"

let fingerprint ?deadline spec =
  let body =
    match spec with
    | Bw { solver; net; n; seed; restarts; max_nodes; resume } ->
        Printf.sprintf "bw.%s/%s/%d?seed=%d&restarts=%d&max_nodes=%s&resume=%b"
          (solver_name solver) (net_name net) n seed restarts
          (match max_nodes with None -> "-" | Some k -> string_of_int k)
          resume
    | Mos { j } -> Printf.sprintf "mos/%d" j
    | Expansion { kind; net; n; k; exact; seed } ->
        Printf.sprintf "exp.%s/%s/%d?k=%d&exact=%b&seed=%d" (kind_name kind)
          (net_name net) n k exact seed
    | Check { seed; rounds } ->
        Printf.sprintf "check?seed=%d&rounds=%d" seed rounds
    | Campaign { degree; sizes; seeds } ->
        Printf.sprintf "campaign/%d?sizes=%s&seeds=%d" degree
          (String.concat "," (List.map string_of_int sizes))
          seeds
  in
  match deadline with
  | None -> body
  | Some b -> body ^ "@" ^ Budget.to_string b

(* ---- execution ---- *)

(* Seed prefixes keep the job-level rng streams disjoint from every other
   seeded stream in the repo (tests use 0x7e57, heuristics use their
   kernel tags): the same [seed] field can safely appear in a bw job and
   an expansion job without correlating their instances. *)
let bw_rng seed = Random.State.make [| 0x5e4e; seed |]
let expansion_rng seed = Random.State.make [| 0x5e4a; seed |]

let run_bw_exact ?deadline { net; n; max_nodes; resume; _ } =
  match graph_of net n with
  | Error e -> Error e
  | Ok (g, name) -> (
      if match max_nodes with Some k -> k < 1 | None -> false then
        Error "max-nodes must be >= 1"
      else
        let budget =
          match (deadline, max_nodes) with
          | None, None -> None
          | _ ->
              let wall_s =
                Option.bind deadline (fun b ->
                    Option.map
                      (fun ns -> float_of_int ns /. 1e9)
                      (Budget.wall_ns b))
              in
              Some (Budget.make ?wall_s ?steps:max_nodes ())
        in
        let cancel = Option.map (fun budget -> Cancel.create ~budget ()) budget in
        match Bfly_cuts.Exact.bisection_width_supervised ?cancel ~resume g with
        | Bfly_cuts.Exact.Complete (v, witness) -> (
            match Invariants.bisection_cut g ~value:v ~witness with
            | Invariants.Fail m ->
                Error (Printf.sprintf "result failed validation: %s" m)
            | Invariants.Pass -> Ok (Printf.sprintf "%s: BW = %d\n" name v))
        | Bfly_cuts.Exact.Interval { lower; upper; witness; reason } -> (
            match Invariants.bisection_interval g ~lower ~upper ~witness with
            | Invariants.Fail m ->
                Error
                  (Printf.sprintf "certified interval failed validation: %s" m)
            | Invariants.Pass ->
                Ok
                  (Printf.sprintf "%s: BW in [%d, %d] (interrupted: %s%s)\n"
                     name lower upper reason
                     (if Bfly_cache.Config.enabled () then
                        "; checkpoint saved, rerun with --resume to continue"
                      else ""))))

let run_bw_heuristic { solver; net; n; seed; restarts; _ } =
  match graph_of net n with
  | Error e -> Error e
  | Ok (g, name) ->
      if restarts < 1 then Error "restarts must be >= 1"
      else
        let rng = bw_rng seed in
        let value, witness, label =
          match solver with
          | Kl ->
              let v, w = Bfly_cuts.Heuristics.kernighan_lin ~rng ~restarts g in
              (v, w, Printf.sprintf "kl, restarts %d, seed %d" restarts seed)
          | Fm ->
              let v, w =
                Bfly_cuts.Heuristics.fiduccia_mattheyses ~rng ~restarts g
              in
              (v, w, Printf.sprintf "fm, restarts %d, seed %d" restarts seed)
          | Sa ->
              let v, w = Bfly_cuts.Heuristics.annealing ~rng ~restarts g in
              (v, w, Printf.sprintf "sa, restarts %d, seed %d" restarts seed)
          | Spectral ->
              let v, w = Bfly_cuts.Heuristics.spectral g in (v, w, "spectral")
          | Ml ->
              let v, w = Bfly_cuts.Multilevel.bisect ~rng ~restarts g in
              (v, w, Printf.sprintf "ml, restarts %d, seed %d" restarts seed)
          | Exact -> assert false
        in
        (match Invariants.bisection_cut g ~value ~witness with
        | Invariants.Fail m ->
            Error (Printf.sprintf "result failed validation: %s" m)
        | Invariants.Pass ->
            Ok (Printf.sprintf "%s: BW <= %d (%s)\n" name value label))

let run_mos ~j =
  if j < 1 then Error "j must be >= 1"
  else
    let bw, density, ratio = Bfly_mos.Mos_analysis.convergence_row j in
    Ok
      (Printf.sprintf
         "BW(MOS_{%d,%d}, M2) = %d; density %.5f; sqrt(2)-1 = %.5f; ratio \
          %.4f\n"
         j j bw density Bfly_mos.Mos_analysis.f_min ratio)

let run_expansion ~kind ~net ~n ~k ~exact ~seed =
  match graph_of net n with
  | Error e -> Error e
  | Ok (g, name) ->
      if k < 1 || k >= G.n_nodes g then Error "k out of range"
      else begin
        let rel = if exact then "=" else "<=" in
        let measure which =
          if exact then
            match which with
            | `Ee -> fst (Bfly_expansion.Expansion.ee_exact g ~k)
            | `Ne -> fst (Bfly_expansion.Expansion.ne_exact g ~k)
          else
            let rng = expansion_rng seed in
            match which with
            | `Ee -> fst (Bfly_expansion.Expansion.ee_anneal ~rng g ~k)
            | `Ne -> fst (Bfly_expansion.Expansion.ne_anneal ~rng g ~k)
        in
        match kind with
        | `Ee ->
            Ok (Printf.sprintf "%s, k=%d: EE %s %d\n" name k rel (measure `Ee))
        | `Ne ->
            Ok (Printf.sprintf "%s, k=%d: NE %s %d\n" name k rel (measure `Ne))
        | `Both ->
            let ee = measure `Ee in
            let ne = measure `Ne in
            Ok
              (Printf.sprintf "%s, k=%d: EE %s %d, NE %s %d\n" name k rel ee
                 rel ne)
      end

let run_campaign ~degree ~sizes ~seeds =
  Result.map Bfly_check.Campaign.render
    (Bfly_check.Campaign.run ~degree ~sizes ~seeds ())

let run_check ~seed ~rounds =
  if rounds < 1 then Error "rounds must be >= 1"
  else
    let json, _ok = Bfly_check.Run.execute ~seed ~rounds ~smoke:true () in
    Ok (Bfly_obs.Json.to_string json ^ "\n")

let run ?deadline spec =
  match spec with
  (* the exact search takes a direct token so [max_nodes] and the wall
     deadline combine into one budget, exactly as [bfly_tool bw exact] does *)
  | Bw ({ solver = Exact; _ } as b) -> run_bw_exact ?deadline b
  | _ -> (
      let f () =
        match spec with
        | Bw b -> run_bw_heuristic b
        | Mos { j } -> run_mos ~j
        | Expansion { kind; net; n; k; exact; seed } ->
            run_expansion ~kind ~net ~n ~k ~exact ~seed
        | Check { seed; rounds } -> run_check ~seed ~rounds
        | Campaign { degree; sizes; seeds } ->
            run_campaign ~degree ~sizes ~seeds
      in
      match deadline with
      | None -> f ()
      | Some budget -> Cancel.with_ambient (Cancel.create ~budget ()) f)
