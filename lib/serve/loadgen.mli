(** Deterministic load generation and the [bfly-loadgen/1] latency
    document.

    A load run replays a request trace against a server — in-process
    (sequentially or through {!Dispatch} on the domain pool) or over a
    live socket — on a schedule that is a {e pure function} of
    [(trace, seed, clients, repeat)]: each round is a seeded permutation
    of the trace and every event is assigned to a seeded client. Two
    runs with the same parameters issue byte-identical request streams
    in the same order, so their response payloads must match too;
    everything timing-dependent (latency quantiles, achieved QPS, batch
    widths) is quarantined in fields a determinism comparison ignores.

    The resulting JSON document separates the two worlds:

    - deterministic fields — [seed], [clients], [repeat],
      [trace_fingerprint], [schedule_fingerprint], [requests],
      [responses], [ok], [errors], and [outputs_fingerprint], a 64-bit
      FNV-1a digest over each response's [output]/[error] payload (never
      the whole line: the [batch] width reflects scheduling). These must
      be bit-equal across worker counts, modes and machines.
    - [timing] — [wall_ns], [achieved_qps], [p50_ns]/[p90_ns]/[p99_ns]/
      [max_ns] — compared only against a slack factor, and [server], the
      server's stats object, kept for inspection only.

    {!compare_docs} is the CI gate: deterministic drift always fails;
    timing drift fails only beyond [slack], and can be disabled entirely
    ([timing:false]) when comparing against a baseline recorded on
    different hardware. *)

type target = [ `Unix of string | `Tcp of string * int ]

type mode =
  | Concurrent  (** in-process, batches on the domain pool via {!Dispatch} *)
  | Sequential  (** in-process, every batch solved inline at submit *)
  | Connect of target
      (** against a live [bfly_tool serve] process: one real connection
          per client, a writer pacing the schedule and a reader matching
          responses positionally (the transport's per-connection
          ordering guarantee) *)

type event = { client : int; line : string }

val schedule :
  seed:int -> clients:int -> repeat:int -> trace:string list -> event array
(** The full request schedule, deterministically derived. Raises
    [Invalid_argument] when [clients] or [repeat] is [< 1]. *)

val schedule_fingerprint : event array -> string

val run :
  ?seed:int ->
  ?clients:int ->
  ?repeat:int ->
  ?qps:float ->
  ?workers:int ->
  ?queue_bound:int ->
  ?mode:mode ->
  trace:string list ->
  unit ->
  (Bfly_obs.Json.t, string) result
(** Execute one load run and return its [bfly-loadgen/1] document.
    Defaults: [seed 1], [clients 4], [repeat 10], [qps 0.] (unpaced —
    issue as fast as possible; positive values pace the global schedule
    at that rate), [workers] the configured domain count, [mode]
    [Concurrent]. [queue_bound] defaults to comfortably above the
    request count so admission control stays out of throughput runs;
    pass a small bound to exercise overload. Blank trace lines are
    dropped; an empty trace is an [Error]. Also publishes the achieved
    rate as the [serve.qps] gauge. *)

val deterministic_view : Bfly_obs.Json.t -> Bfly_obs.Json.t
(** The document minus its [timing] and [server] fields — what must be
    identical across repeated runs of the same parameters. *)

val compare_docs :
  ?slack:float ->
  ?timing:bool ->
  baseline:Bfly_obs.Json.t ->
  Bfly_obs.Json.t ->
  string list
(** Drift messages, empty when [current] is acceptable against
    [baseline]. Deterministic fields must match exactly. When [timing]
    (default [true]), [p99_ns] may not exceed baseline by more than
    [slack] (default 3.0) and [achieved_qps] may not fall below baseline
    by more than [slack]. *)

(**/**)

val fnv64 : string -> string
val fingerprint_lines : string list -> string
