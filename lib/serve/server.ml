module Json = Bfly_obs.Json
module Metrics = Bfly_obs.Metrics
module Span = Bfly_obs.Span

(* process-wide metrics (shared across servers in one process) *)
let c_requests = Metrics.counter "serve.requests"
let c_responses = Metrics.counter "serve.responses"
let c_batches = Metrics.counter "serve.batches"
let c_coalesced = Metrics.counter "serve.coalesced"
let c_joined = Metrics.counter "serve.joined_inflight"
let c_rejected_overload = Metrics.counter "serve.rejected.overload"
let c_rejected_client = Metrics.counter "serve.rejected.client"
let c_rejected_drain = Metrics.counter "serve.rejected.drain"
let c_parse_error = Metrics.counter "serve.parse_error"
let c_errors = Metrics.counter "serve.errors"
let g_queue_depth = Metrics.gauge "serve.queue_depth"
let g_batch_width = Metrics.gauge "serve.batch_width"
let g_inflight = Metrics.gauge "serve.concurrency"
let g_inflight_max = Metrics.gauge "serve.concurrency.max"
let g_p50 = Metrics.gauge "serve.latency.p50_ns"
let g_p99 = Metrics.gauge "serve.latency.p99_ns"
let t_latency = Metrics.timer "serve.latency"

type client = {
  cname : string;
  climit : int;
  mutable active : int; (* admitted, unanswered job requests; under lock *)
}

type t = {
  queue_bound : int;
  client_bound : int;
  batcher : Batcher.t;
  latency : Latency.t;
  lock : Mutex.t;
  (* per-server tallies, reported by [stats_json]; all guarded by [lock]
     — [execute_batch] mutates them from pool domains *)
  mutable requests : int;
  mutable responses : int;
  mutable batches : int;
  mutable coalesced : int;
  mutable joined : int;
  mutable inflight : int;
  mutable rejected_overload : int;
  mutable rejected_client : int;
  mutable rejected_drain : int;
  mutable parse_errors : int;
  mutable errors : int;
  mutable seq : int;  (** source of default request ids *)
  mutable draining : bool;  (** written from signal handlers; latches *)
}

let env_bound var default =
  match Sys.getenv_opt var with
  | Some s when String.trim s <> "" -> (
      match int_of_string_opt (String.trim s) with
      | Some k when k > 0 -> k
      | _ -> default)
  | _ -> default

let default_queue_bound () = env_bound "BFLY_SERVE_QUEUE" 128

let create ?queue_bound ?client_bound () =
  let queue_bound =
    match queue_bound with Some k -> k | None -> default_queue_bound ()
  in
  if queue_bound < 1 then
    invalid_arg "Server.create: queue_bound must be >= 1";
  let client_bound =
    match client_bound with
    | Some k -> k
    | None -> env_bound "BFLY_SERVE_CLIENT_QUEUE" queue_bound
  in
  if client_bound < 1 then
    invalid_arg "Server.create: client_bound must be >= 1";
  {
    queue_bound;
    client_bound;
    batcher = Batcher.create ();
    latency = Latency.create ();
    lock = Mutex.create ();
    requests = 0;
    responses = 0;
    batches = 0;
    coalesced = 0;
    joined = 0;
    inflight = 0;
    rejected_overload = 0;
    rejected_client = 0;
    rejected_drain = 0;
    parse_errors = 0;
    errors = 0;
    seq = 0;
    draining = false;
  }

let queue_bound t = t.queue_bound
let client_bound t = t.client_bound

let client ?name ?limit t =
  {
    cname = Option.value name ~default:"client";
    climit =
      (match limit with
      | Some k when k >= 1 -> k
      | Some _ -> invalid_arg "Server.client: limit must be >= 1"
      | None -> t.client_bound);
    active = 0;
  }

let client_name c = c.cname

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* [drain] must stay callable from a signal handler, where taking a mutex
   the interrupted code may already hold would self-deadlock; a latching
   boolean write is atomic enough for a flag that only ever goes up. *)
let drain t = t.draining <- true
let draining t = t.draining

let pending t = locked t (fun () -> Batcher.pending_requests t.batcher)
let queued_batches t = locked t (fun () -> Batcher.pending_batches t.batcher)

let stats_json t =
  let ( requests, responses, batches, coalesced, joined, inflight,
        rejected_overload, rejected_client, rejected_drain, parse_errors,
        errors, q, b, lat_count, lat_max, p50, p99 ) =
    locked t (fun () ->
        ( t.requests,
          t.responses,
          t.batches,
          t.coalesced,
          t.joined,
          t.inflight,
          t.rejected_overload,
          t.rejected_client,
          t.rejected_drain,
          t.parse_errors,
          t.errors,
          Batcher.pending_requests t.batcher,
          Batcher.pending_batches t.batcher,
          Latency.count t.latency,
          Latency.max_ns t.latency,
          Latency.p t.latency ~q:0.5,
          Latency.p t.latency ~q:0.99 ))
  in
  Metrics.set g_p50 (float_of_int p50);
  Metrics.set g_p99 (float_of_int p99);
  Json.Obj
    [
      ("requests", Json.Int requests);
      ("responses", Json.Int responses);
      ("batches", Json.Int batches);
      ("coalesced", Json.Int coalesced);
      ("joined", Json.Int joined);
      ("inflight", Json.Int inflight);
      ( "rejected",
        Json.Obj
          [
            ("overload", Json.Int rejected_overload);
            ("client", Json.Int rejected_client);
            ("drain", Json.Int rejected_drain);
          ] );
      ("parse_errors", Json.Int parse_errors);
      ("errors", Json.Int errors);
      ("queue_depth", Json.Int q);
      ("pending_batches", Json.Int b);
      ("queue_bound", Json.Int t.queue_bound);
      ("client_bound", Json.Int t.client_bound);
      ("draining", Json.Bool t.draining);
      ( "latency",
        Json.Obj
          [
            ("count", Json.Int lat_count);
            ("p50_ns", Json.Int p50);
            ("p99_ns", Json.Int p99);
            ("max_ns", Json.Int lat_max);
          ] );
      ( "cache",
        Json.Obj
          [
            ( "hit",
              Json.Int (Metrics.counter_value (Metrics.counter "cache.hit")) );
            ( "miss",
              Json.Int (Metrics.counter_value (Metrics.counter "cache.miss")) );
          ] );
    ]

let submit t ?client ~reply line =
  Metrics.incr c_requests;
  let default_id =
    locked t (fun () ->
        t.requests <- t.requests + 1;
        t.seq <- t.seq + 1;
        Printf.sprintf "r%d" t.seq)
  in
  let answered_with line ~tally =
    locked t (fun () ->
        t.responses <- t.responses + 1;
        tally ());
    Metrics.incr c_responses;
    reply line
  in
  match Protocol.parse_request ~default_id line with
  | Error (msg, id) ->
      Metrics.incr c_parse_error;
      answered_with
        (Protocol.error_response ~id msg)
        ~tally:(fun () -> t.parse_errors <- t.parse_errors + 1)
  | Ok { id; payload = Protocol.Stats } ->
      (* build the stats object before touching the lock again:
         [stats_json] takes it itself *)
      let stats = stats_json t in
      answered_with (Protocol.stats_response ~id stats) ~tally:(fun () -> ())
  | Ok { id; payload = Protocol.Job { spec; deadline } } -> (
      let verdict =
        locked t (fun () ->
            if t.draining then `Draining
            else if Batcher.pending_requests t.batcher >= t.queue_bound then
              `Overloaded
            else
              match client with
              | Some c when c.active >= c.climit -> `Client_overloaded
              | _ ->
                  let release =
                    match client with
                    | None -> fun () -> ()
                    | Some c ->
                        c.active <- c.active + 1;
                        fun () -> c.active <- c.active - 1
                  in
                  let fp = Job.fingerprint ?deadline spec in
                  let how =
                    Batcher.add t.batcher ~fp ~spec ~deadline
                      { Batcher.id; reply; t0 = Span.now_ns (); release }
                  in
                  Metrics.set g_queue_depth
                    (float_of_int (Batcher.pending_requests t.batcher));
                  `Queued how)
      in
      match verdict with
      | `Draining ->
          Metrics.incr c_rejected_drain;
          answered_with
            (Protocol.error_response ~id "draining")
            ~tally:(fun () -> t.rejected_drain <- t.rejected_drain + 1)
      | `Overloaded ->
          Metrics.incr c_rejected_overload;
          answered_with
            (Protocol.error_response ~id "overloaded")
            ~tally:(fun () ->
              t.rejected_overload <- t.rejected_overload + 1)
      | `Client_overloaded ->
          (* same wire verdict as the global bound — the client's remedy
             (back off and retry) is the same — but tallied separately,
             because one client at its bound must not look like server
             saturation *)
          Metrics.incr c_rejected_client;
          answered_with
            (Protocol.error_response ~id "overloaded")
            ~tally:(fun () -> t.rejected_client <- t.rejected_client + 1)
      | `Queued `Coalesced ->
          Metrics.incr c_coalesced;
          locked t (fun () -> t.coalesced <- t.coalesced + 1)
      | `Queued `Joined ->
          Metrics.incr c_coalesced;
          Metrics.incr c_joined;
          locked t (fun () ->
              t.coalesced <- t.coalesced + 1;
              t.joined <- t.joined + 1)
      | `Queued `New -> ())

let take_batch t =
  locked t (fun () ->
      match Batcher.next t.batcher with
      | None -> None
      | Some b ->
          t.batches <- t.batches + 1;
          Metrics.incr c_batches;
          t.inflight <- t.inflight + 1;
          Metrics.set g_inflight (float_of_int t.inflight);
          Metrics.set_max g_inflight_max (float_of_int t.inflight);
          Metrics.set g_queue_depth
            (float_of_int (Batcher.pending_requests t.batcher));
          Some b)

let execute_batch t (batch : Batcher.batch) =
  let result =
    Span.time ~name:"serve.solve" (fun () ->
        try Job.run ?deadline:batch.Batcher.deadline batch.Batcher.spec
        with exn ->
          (* a solver bug must cost one response, not the server *)
          Error ("solver raised: " ^ Printexc.to_string exn))
  in
  let finish_ns = Span.now_ns () in
  (* close the batch out under the lock: collect the waiters (joiners
     included), release their admission slots, and account the tallies
     and latencies — then answer outside the lock, since [reply] may
     block on a slow client socket *)
  let waiters =
    locked t (fun () ->
        let ws = Batcher.finish t.batcher batch in
        t.inflight <- t.inflight - 1;
        Metrics.set g_inflight (float_of_int t.inflight);
        Metrics.set g_batch_width (float_of_int (List.length ws));
        Metrics.set g_queue_depth
          (float_of_int (Batcher.pending_requests t.batcher));
        List.iter
          (fun (w : Batcher.waiter) ->
            w.release ();
            t.responses <- t.responses + 1;
            (match result with
            | Error _ -> t.errors <- t.errors + 1
            | Ok _ -> ());
            let ns = finish_ns - w.t0 in
            Latency.record t.latency ~ns;
            Metrics.record t_latency ~ns)
          ws;
        ws)
  in
  let width = List.length waiters in
  List.iter
    (fun { Batcher.id; reply; _ } ->
      Metrics.incr c_responses;
      let line =
        match result with
        | Ok output -> Protocol.ok_response ~id ~batch:width ~output
        | Error msg ->
            Metrics.incr c_errors;
            Protocol.error_response ~id msg
      in
      reply line)
    waiters

let run_next t =
  match take_batch t with
  | None -> false
  | Some batch ->
      execute_batch t batch;
      true

let run_pending t =
  let n = ref 0 in
  while run_next t do incr n done;
  !n

let summary t =
  let requests, batches, coalesced, rejected, errors, p50, p99 =
    locked t (fun () ->
        ( t.requests,
          t.batches,
          t.coalesced,
          t.rejected_overload + t.rejected_client + t.rejected_drain,
          t.errors,
          Latency.p t.latency ~q:0.5,
          Latency.p t.latency ~q:0.99 ))
  in
  let ms ns = float_of_int ns /. 1e6 in
  Printf.sprintf
    "served %d requests in %d batches (%d coalesced, %d rejected, %d errors, \
     p50 %.1fms, p99 %.1fms)"
    requests batches coalesced rejected errors (ms p50) (ms p99)
