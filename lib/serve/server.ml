module Json = Bfly_obs.Json
module Metrics = Bfly_obs.Metrics
module Span = Bfly_obs.Span

(* process-wide metrics (shared across servers in one process) *)
let c_requests = Metrics.counter "serve.requests"
let c_responses = Metrics.counter "serve.responses"
let c_batches = Metrics.counter "serve.batches"
let c_coalesced = Metrics.counter "serve.coalesced"
let c_rejected_overload = Metrics.counter "serve.rejected.overload"
let c_rejected_drain = Metrics.counter "serve.rejected.drain"
let c_parse_error = Metrics.counter "serve.parse_error"
let c_errors = Metrics.counter "serve.errors"
let g_queue_depth = Metrics.gauge "serve.queue_depth"
let g_batch_width = Metrics.gauge "serve.batch_width"
let g_p50 = Metrics.gauge "serve.latency.p50_ns"
let g_p99 = Metrics.gauge "serve.latency.p99_ns"
let t_latency = Metrics.timer "serve.latency"

type t = {
  queue_bound : int;
  batcher : Batcher.t;
  latency : Latency.t;
  lock : Mutex.t;
  (* per-server tallies, reported by [stats_json] *)
  mutable requests : int;
  mutable responses : int;
  mutable batches : int;
  mutable coalesced : int;
  mutable rejected_overload : int;
  mutable rejected_drain : int;
  mutable parse_errors : int;
  mutable errors : int;
  mutable seq : int;  (** source of default request ids *)
  mutable draining : bool;  (** written from signal handlers; latches *)
}

let default_queue_bound () =
  match Sys.getenv_opt "BFLY_SERVE_QUEUE" with
  | Some s when String.trim s <> "" -> (
      match int_of_string_opt (String.trim s) with
      | Some k when k > 0 -> k
      | _ -> 128)
  | _ -> 128

let create ?queue_bound () =
  let queue_bound =
    match queue_bound with Some k -> k | None -> default_queue_bound ()
  in
  if queue_bound < 1 then
    invalid_arg "Server.create: queue_bound must be >= 1";
  {
    queue_bound;
    batcher = Batcher.create ();
    latency = Latency.create ();
    lock = Mutex.create ();
    requests = 0;
    responses = 0;
    batches = 0;
    coalesced = 0;
    rejected_overload = 0;
    rejected_drain = 0;
    parse_errors = 0;
    errors = 0;
    seq = 0;
    draining = false;
  }

let queue_bound t = t.queue_bound

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* [drain] must stay callable from a signal handler, where taking a mutex
   the interrupted code may already hold would self-deadlock; a latching
   boolean write is atomic enough for a flag that only ever goes up. *)
let drain t = t.draining <- true
let draining t = t.draining

let pending t = locked t (fun () -> Batcher.pending_requests t.batcher)

let stats_json t =
  let q, b =
    locked t (fun () ->
        (Batcher.pending_requests t.batcher, Batcher.pending_batches t.batcher))
  in
  let p50 = Latency.p t.latency ~q:0.5 in
  let p99 = Latency.p t.latency ~q:0.99 in
  Metrics.set g_p50 (float_of_int p50);
  Metrics.set g_p99 (float_of_int p99);
  Json.Obj
    [
      ("requests", Json.Int t.requests);
      ("responses", Json.Int t.responses);
      ("batches", Json.Int t.batches);
      ("coalesced", Json.Int t.coalesced);
      ( "rejected",
        Json.Obj
          [
            ("overload", Json.Int t.rejected_overload);
            ("drain", Json.Int t.rejected_drain);
          ] );
      ("parse_errors", Json.Int t.parse_errors);
      ("errors", Json.Int t.errors);
      ("queue_depth", Json.Int q);
      ("pending_batches", Json.Int b);
      ("queue_bound", Json.Int t.queue_bound);
      ("draining", Json.Bool t.draining);
      ( "latency",
        Json.Obj
          [
            ("count", Json.Int (Latency.count t.latency));
            ("p50_ns", Json.Int p50);
            ("p99_ns", Json.Int p99);
            ("max_ns", Json.Int (Latency.max_ns t.latency));
          ] );
      ( "cache",
        Json.Obj
          [
            ( "hit",
              Json.Int (Metrics.counter_value (Metrics.counter "cache.hit")) );
            ( "miss",
              Json.Int (Metrics.counter_value (Metrics.counter "cache.miss")) );
          ] );
    ]

let submit t ~reply line =
  t.requests <- t.requests + 1;
  Metrics.incr c_requests;
  let default_id =
    t.seq <- t.seq + 1;
    Printf.sprintf "r%d" t.seq
  in
  match Protocol.parse_request ~default_id line with
  | Error (msg, id) ->
      t.parse_errors <- t.parse_errors + 1;
      Metrics.incr c_parse_error;
      t.responses <- t.responses + 1;
      Metrics.incr c_responses;
      reply (Protocol.error_response ~id msg)
  | Ok { id; payload = Protocol.Stats } ->
      t.responses <- t.responses + 1;
      Metrics.incr c_responses;
      reply (Protocol.stats_response ~id (stats_json t))
  | Ok { id; payload = Protocol.Job { spec; deadline } } ->
      let verdict =
        locked t (fun () ->
            if t.draining then `Draining
            else if Batcher.pending_requests t.batcher >= t.queue_bound then
              `Overloaded
            else begin
              let fp = Job.fingerprint ?deadline spec in
              let how =
                Batcher.add t.batcher ~fp ~spec ~deadline
                  { Batcher.id; reply; t0 = Span.now_ns () }
              in
              Metrics.set g_queue_depth
                (float_of_int (Batcher.pending_requests t.batcher));
              `Queued how
            end)
      in
      (match verdict with
      | `Draining ->
          t.rejected_drain <- t.rejected_drain + 1;
          Metrics.incr c_rejected_drain;
          t.responses <- t.responses + 1;
          Metrics.incr c_responses;
          reply (Protocol.error_response ~id "draining")
      | `Overloaded ->
          t.rejected_overload <- t.rejected_overload + 1;
          Metrics.incr c_rejected_overload;
          t.responses <- t.responses + 1;
          Metrics.incr c_responses;
          reply (Protocol.error_response ~id "overloaded")
      | `Queued `Coalesced ->
          t.coalesced <- t.coalesced + 1;
          Metrics.incr c_coalesced
      | `Queued `New -> ())

let run_next t =
  match locked t (fun () -> Batcher.next t.batcher) with
  | None -> false
  | Some batch ->
      t.batches <- t.batches + 1;
      Metrics.incr c_batches;
      let width = List.length batch.Batcher.waiters in
      Metrics.set g_batch_width (float_of_int width);
      let result =
        Span.time ~name:"serve.solve" (fun () ->
            try Job.run ?deadline:batch.Batcher.deadline batch.Batcher.spec
            with exn ->
              (* a solver bug must cost one response, not the server *)
              Error ("solver raised: " ^ Printexc.to_string exn))
      in
      let finish = Span.now_ns () in
      List.iter
        (fun { Batcher.id; reply; t0 } ->
          let line =
            match result with
            | Ok output -> Protocol.ok_response ~id ~batch:width ~output
            | Error msg ->
                t.errors <- t.errors + 1;
                Metrics.incr c_errors;
                Protocol.error_response ~id msg
          in
          reply line;
          t.responses <- t.responses + 1;
          Metrics.incr c_responses;
          let ns = finish - t0 in
          Latency.record t.latency ~ns;
          Metrics.record t_latency ~ns)
        batch.Batcher.waiters;
      locked t (fun () ->
          Metrics.set g_queue_depth
            (float_of_int (Batcher.pending_requests t.batcher)));
      true

let run_pending t =
  let n = ref 0 in
  while run_next t do incr n done;
  !n

let summary t =
  let ms ns = float_of_int ns /. 1e6 in
  Printf.sprintf
    "served %d requests in %d batches (%d coalesced, %d rejected, %d errors, \
     p50 %.1fms, p99 %.1fms)"
    t.requests t.batches t.coalesced
    (t.rejected_overload + t.rejected_drain)
    t.errors
    (ms (Latency.p t.latency ~q:0.5))
    (ms (Latency.p t.latency ~q:0.99))
