type t = {
  ring : int array;
  mutable filled : int;  (** entries of [ring] holding samples *)
  mutable cursor : int;
  mutable total : int;
  mutable max_ns : int;
}

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Latency.create: capacity must be >= 1";
  { ring = Array.make capacity 0; filled = 0; cursor = 0; total = 0; max_ns = 0 }

let record t ~ns =
  let ns = max 0 ns in
  t.ring.(t.cursor) <- ns;
  t.cursor <- (t.cursor + 1) mod Array.length t.ring;
  if t.filled < Array.length t.ring then t.filled <- t.filled + 1;
  t.total <- t.total + 1;
  if ns > t.max_ns then t.max_ns <- ns

let count t = t.total
let max_ns t = t.max_ns

let p t ~q =
  if t.filled = 0 then 0
  else begin
    let window = Array.sub t.ring 0 t.filled in
    Array.sort compare window;
    let q = Float.min 1.0 (Float.max 0.0 q) in
    (* nearest rank: smallest index i with (i+1)/filled >= q *)
    let rank =
      int_of_float (Float.round ((q *. float_of_int t.filled) -. 0.5))
    in
    window.(max 0 (min (t.filled - 1) rank))
  end
