module Json = Bfly_obs.Json
module Metrics = Bfly_obs.Metrics
module Span = Bfly_obs.Span

let g_qps = Metrics.gauge "serve.qps"

type target = [ `Unix of string | `Tcp of string * int ]
type mode = Concurrent | Sequential | Connect of target

let mode_name = function
  | Concurrent -> "concurrent"
  | Sequential -> "sequential"
  | Connect _ -> "connect"

(* ---- deterministic schedule ---- *)

type event = { client : int; line : string }

(* FNV-1a, 64-bit: a stable, dependency-free content fingerprint for
   traces, schedules and output streams (not cryptographic — a drift
   detector, like bench value documents) *)
let fnv_fold h s =
  let h = ref h in
  String.iter
    (fun ch ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch)))
             0x100000001b3L)
    s;
  !h

let fnv_init = 0xcbf29ce484222325L
let fnv_hex h = Printf.sprintf "%016Lx" h
let fnv64 s = fnv_hex (fnv_fold fnv_init s)

let fingerprint_lines lines =
  fnv_hex (List.fold_left (fun h l -> fnv_fold h (l ^ "\n")) fnv_init lines)

(* [repeat] rounds over the trace; each round is a seeded permutation of
   the trace lines, and every event is assigned to a seeded client — so
   duplicates of one request interleave across rounds and clients the way
   real concurrent callers look, yet the whole schedule is a pure
   function of (trace, seed, clients, repeat). *)
let schedule ~seed ~clients ~repeat ~trace =
  if clients < 1 then invalid_arg "Loadgen.schedule: clients must be >= 1";
  if repeat < 1 then invalid_arg "Loadgen.schedule: repeat must be >= 1";
  let rng = Random.State.make [| 0x10adee; seed; clients; repeat |] in
  let lines = Array.of_list trace in
  let n = Array.length lines in
  let events = ref [] in
  for _round = 1 to repeat do
    let order = Array.init n Fun.id in
    for i = n - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
    Array.iter
      (fun ix ->
        events :=
          { client = Random.State.int rng clients; line = lines.(ix) }
          :: !events)
      order
  done;
  Array.of_list (List.rev !events)

let schedule_fingerprint events =
  fnv_hex
    (Array.fold_left
       (fun h ev -> fnv_fold h (Printf.sprintf "%d:%s\n" ev.client ev.line))
       fnv_init events)

(* responses are fingerprinted by their payload only — the [output] or
   [error] field — never the whole line: the [batch] width field reflects
   timing-dependent coalescing and must not enter a determinism gate *)
let response_payload = function
  | None -> "none"
  | Some line -> (
      match Json.of_string line with
      | Error _ -> "raw:" ^ line
      | Ok obj -> (
          match Option.bind (Json.member "output" obj) Json.to_string_opt with
          | Some out -> "o:" ^ out
          | None -> (
              match
                Option.bind (Json.member "error" obj) Json.to_string_opt
              with
              | Some err -> "e:" ^ err
              | None -> "s:stats")))

let outputs_fingerprint responses =
  fnv_hex
    (Array.fold_left
       (fun h r -> fnv_fold h (response_payload r ^ "\n"))
       fnv_init responses)

let response_ok = function
  | None -> false
  | Some line -> (
      match Json.of_string line with
      | Error _ -> false
      | Ok obj ->
          Option.value ~default:false
            (Option.bind (Json.member "ok" obj) Json.to_bool_opt))

(* ---- pacing and quantiles ---- *)

let pace ~t_start ~qps i =
  if qps > 0. then begin
    let due = t_start + int_of_float (float_of_int i *. 1e9 /. qps) in
    let now = Span.now_ns () in
    if due > now then Unix.sleepf (float_of_int (due - now) /. 1e9)
  end

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let q = Float.max 0. (Float.min 1. q) in
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

(* ---- in-process execution (Concurrent / Sequential) ---- *)

let run_in_process ~mode ~events ~clients ~qps ~workers ~queue_bound =
  let n = Array.length events in
  let queue_bound =
    match queue_bound with Some b -> b | None -> max 128 (n + 1)
  in
  let server = Server.create ~queue_bound () in
  let handles =
    Array.init clients (fun i ->
        Server.client ~name:(Printf.sprintf "c%d" i) server)
  in
  let dispatch =
    match mode with
    | Concurrent -> Some (Dispatch.create ~cap:workers server)
    | _ -> None
  in
  let responses = Array.make n None in
  let lat = Array.make n 0 in
  let t_start = Span.now_ns () in
  Array.iteri
    (fun i ev ->
      pace ~t_start ~qps i;
      let t0 = Span.now_ns () in
      Server.submit server
        ~client:handles.(ev.client)
        ~reply:(fun line ->
          lat.(i) <- Span.now_ns () - t0;
          responses.(i) <- Some line)
        ev.line;
      match dispatch with
      | Some d -> Dispatch.pump d
      | None -> ignore (Server.run_pending server))
    events;
  (match dispatch with
  | Some d ->
      Dispatch.pump d;
      Dispatch.wait_idle d
  | None -> ignore (Server.run_pending server));
  let wall_ns = Span.now_ns () - t_start in
  (responses, lat, wall_ns, Some (Server.stats_json server))

(* ---- external-server execution (Connect) ---- *)

let connect_fd target =
  match target with
  | `Unix path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
  | `Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.connect fd (Unix.ADDR_INET (inet, port));
         Unix.setsockopt fd Unix.TCP_NODELAY true
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd

let write_line fd line =
  let s = line ^ "\n" in
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write fd b !pos (len - !pos) with
    | 0 -> raise Exit
    | k -> pos := !pos + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* One real connection per client: a writer (the client thread itself,
   pacing its events against the global schedule clock) plus a reader
   thread relying on the transport's per-connection ordering guarantee —
   response k on a connection answers that connection's request k. *)
let run_connect ~target ~events ~clients ~qps =
  let n = Array.length events in
  let per = Array.make clients [] in
  Array.iteri (fun i ev -> per.(ev.client) <- (i, ev.line) :: per.(ev.client))
    events;
  let per = Array.map List.rev per in
  let responses = Array.make n None in
  let send_ns = Array.make n 0 in
  let recv_ns = Array.make n 0 in
  let failures = Atomic.make 0 in
  let t_start = Span.now_ns () in
  let client_thread ci () =
    match per.(ci) with
    | [] -> ()
    | evs -> (
        match connect_fd target with
        | exception _ -> Atomic.incr failures
        | fd ->
            let reader =
              Thread.create
                (fun () ->
                  let ic = Unix.in_channel_of_descr fd in
                  List.iter
                    (fun (i, _) ->
                      match In_channel.input_line ic with
                      | Some line ->
                          recv_ns.(i) <- Span.now_ns ();
                          responses.(i) <- Some line
                      | None -> ())
                    evs)
                ()
            in
            (try
               List.iter
                 (fun (i, line) ->
                   pace ~t_start ~qps i;
                   send_ns.(i) <- Span.now_ns ();
                   write_line fd line)
                 evs
             with _ -> Atomic.incr failures);
            (try Unix.shutdown fd Unix.SHUTDOWN_SEND
             with Unix.Unix_error _ -> ());
            Thread.join reader;
            (try Unix.close fd with Unix.Unix_error _ -> ()))
  in
  let threads = List.init clients (fun ci -> Thread.create (client_thread ci) ()) in
  List.iter Thread.join threads;
  let wall_ns = Span.now_ns () - t_start in
  let lat =
    Array.init n (fun i ->
        if responses.(i) = None then 0 else max 0 (recv_ns.(i) - send_ns.(i)))
  in
  (* a best-effort stats fetch over one extra connection, embedded for
     inspection (excluded from the deterministic view) *)
  let server_stats =
    match connect_fd target with
    | exception _ -> None
    | fd ->
        let stats =
          try
            write_line fd {|{"id":"loadgen-stats","job":"stats"}|};
            let ic = Unix.in_channel_of_descr fd in
            match In_channel.input_line ic with
            | Some line -> (
                match Json.of_string line with Ok j -> Some j | Error _ -> None)
            | None -> None
          with _ -> None
        in
        (try Unix.close fd with Unix.Unix_error _ -> ());
        stats
  in
  ignore (Atomic.get failures);
  (responses, lat, wall_ns, server_stats)

(* ---- the document ---- *)

let schema = "bfly-loadgen/1"

let document ~mode ~seed ~clients ~repeat ~qps ~workers ~trace ~events
    ~responses ~lat ~wall_ns ~server_stats =
  let n = Array.length events in
  let answered = Array.fold_left (fun a r -> if r <> None then a + 1 else a) 0 responses in
  let ok = Array.fold_left (fun a r -> if response_ok r then a + 1 else a) 0 responses in
  let sorted = Array.copy lat in
  Array.sort compare sorted;
  let achieved_qps =
    if wall_ns <= 0 then 0.
    else float_of_int n /. (float_of_int wall_ns /. 1e9)
  in
  Metrics.set g_qps achieved_qps;
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("mode", Json.Str (mode_name mode));
      ("seed", Json.Int seed);
      ("clients", Json.Int clients);
      ("repeat", Json.Int repeat);
      ("qps_target", Json.Float qps);
      ("workers", Json.Int workers);
      ("trace_fingerprint", Json.Str (fingerprint_lines trace));
      ("schedule_fingerprint", Json.Str (schedule_fingerprint events));
      ("requests", Json.Int n);
      ("responses", Json.Int answered);
      ("ok", Json.Int ok);
      ("errors", Json.Int (n - ok));
      ("outputs_fingerprint", Json.Str (outputs_fingerprint responses));
      ( "timing",
        Json.Obj
          [
            ("wall_ns", Json.Int wall_ns);
            ("achieved_qps", Json.Float achieved_qps);
            ("p50_ns", Json.Int (quantile sorted 0.5));
            ("p90_ns", Json.Int (quantile sorted 0.9));
            ("p99_ns", Json.Int (quantile sorted 0.99));
            ("max_ns", Json.Int (if Array.length sorted = 0 then 0 else sorted.(Array.length sorted - 1)));
          ] );
      ( "server",
        match server_stats with Some s -> s | None -> Json.Null );
    ]

let run ?(seed = 1) ?(clients = 4) ?(repeat = 10) ?(qps = 0.) ?workers
    ?queue_bound ?(mode = Concurrent) ~trace () =
  let trace = List.filter (fun l -> String.trim l <> "") trace in
  if trace = [] then Error "loadgen: empty trace"
  else begin
    let workers =
      match workers with
      | Some w when w >= 1 -> w
      | Some _ -> 1
      | None -> Bfly_graph.Parallel.domain_count ()
    in
    let events = schedule ~seed ~clients ~repeat ~trace in
    match
      match mode with
      | Connect target -> run_connect ~target ~events ~clients ~qps
      | _ -> run_in_process ~mode ~events ~clients ~qps ~workers ~queue_bound
    with
    | exception e -> Error ("loadgen: " ^ Printexc.to_string e)
    | responses, lat, wall_ns, server_stats ->
        Ok
          (document ~mode ~seed ~clients ~repeat ~qps ~workers ~trace ~events
             ~responses ~lat ~wall_ns ~server_stats)
  end

(* ---- views and comparison ---- *)

let deterministic_view doc =
  match doc with
  | Json.Obj fields ->
      Json.Obj
        (List.filter
           (fun (k, _) -> k <> "timing" && k <> "server")
           fields)
  | other -> other

(* the fields two runs of one (trace, seed, clients, repeat) must agree
   on whatever the mode, worker count or machine: the schedule and the
   response payloads. [workers]/[mode] are intentionally absent — output
   bytes not depending on them is the concurrency contract. *)
let deterministic_fields =
  [
    "schema";
    "seed";
    "clients";
    "repeat";
    "trace_fingerprint";
    "schedule_fingerprint";
    "requests";
    "responses";
    "ok";
    "errors";
    "outputs_fingerprint";
  ]

let field_str doc k =
  match Json.member k doc with
  | Some (Json.Str s) -> Some s
  | Some (Json.Int i) -> Some (string_of_int i)
  | Some (Json.Float f) -> Some (string_of_float f)
  | Some (Json.Bool b) -> Some (string_of_bool b)
  | _ -> None

let timing_field doc k =
  match Json.member "timing" doc with
  | Some t -> (
      match Json.member k t with
      | Some (Json.Int i) -> Some (float_of_int i)
      | Some (Json.Float f) -> Some f
      | _ -> None)
  | None -> None

let compare_docs ?(slack = 3.0) ?(timing = true) ~baseline current =
  let drifts = ref [] in
  let drift fmt = Printf.ksprintf (fun m -> drifts := m :: !drifts) fmt in
  List.iter
    (fun k ->
      match (field_str baseline k, field_str current k) with
      | Some b, Some c when b = c -> ()
      | Some b, Some c -> drift "%s: baseline %s, current %s" k b c
      | None, _ -> drift "%s: missing from baseline" k
      | _, None -> drift "%s: missing from current document" k)
    deterministic_fields;
  if timing then begin
    (match (timing_field baseline "p99_ns", timing_field current "p99_ns") with
    | Some b, Some c when b > 0. && c > b *. slack ->
        drift "p99_ns: %.0f exceeds baseline %.0f by more than %.1fx" c b slack
    | _ -> ());
    match
      (timing_field baseline "achieved_qps", timing_field current "achieved_qps")
    with
    | Some b, Some c when b > 0. && c < b /. slack ->
        drift "achieved_qps: %.1f is below baseline %.1f by more than %.1fx" c
          b slack
    | _ -> ()
  end;
  List.rev !drifts
