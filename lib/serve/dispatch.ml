module Parallel = Bfly_graph.Parallel

type t = {
  server : Server.t;
  cap : int;
  m : Mutex.t;
  idle : Condition.t;
  mutable spawned : int; (* detached worker jobs alive; under [m] *)
}

let create ?cap server =
  let cap =
    match cap with
    | Some k when k >= 1 -> k
    | Some _ -> invalid_arg "Dispatch.create: cap must be >= 1"
    | None -> Parallel.domain_count ()
  in
  { server; cap; m = Mutex.create (); idle = Condition.create (); spawned = 0 }

let cap t = t.cap

(* One detached pool job: execute batches until the server's queue is
   empty, then retire. The retire path rechecks the queue under [m] —
   [pump] counts a retiring worker as alive, so a batch submitted in the
   gap between our empty [take_batch] and here may have been left to us;
   the recheck picks it up instead of stranding it. *)
let rec work t =
  match Server.take_batch t.server with
  | Some b ->
      Server.execute_batch t.server b;
      work t
  | None ->
      Mutex.lock t.m;
      if Server.queued_batches t.server > 0 then begin
        Mutex.unlock t.m;
        work t
      end
      else begin
        t.spawned <- t.spawned - 1;
        if t.spawned = 0 then Condition.broadcast t.idle;
        Mutex.unlock t.m
      end

let pump t =
  Mutex.lock t.m;
  let n = max 0 (min (t.cap - t.spawned) (Server.queued_batches t.server)) in
  t.spawned <- t.spawned + n;
  Mutex.unlock t.m;
  (* [m] must be released first: with one configured domain
     [Parallel.async] runs the job inline, and [work]'s retire path takes
     [m] itself *)
  for _ = 1 to n do
    Parallel.async (fun () -> work t)
  done

let busy t =
  Mutex.lock t.m;
  let b = t.spawned > 0 in
  Mutex.unlock t.m;
  b

let wait_idle t =
  Mutex.lock t.m;
  while t.spawned > 0 do
    Condition.wait t.idle t.m
  done;
  Mutex.unlock t.m
