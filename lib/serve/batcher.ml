type waiter = { id : string; reply : string -> unit; t0 : int }

type batch = {
  fp : string;
  spec : Job.spec;
  deadline : Bfly_resil.Budget.t option;
  mutable waiters : waiter list;
}

type t = {
  fifo : batch Queue.t;
  by_fp : (string, batch) Hashtbl.t;
  mutable requests : int;
}

let create () = { fifo = Queue.create (); by_fp = Hashtbl.create 64; requests = 0 }

let add t ~fp ~spec ~deadline waiter =
  t.requests <- t.requests + 1;
  match Hashtbl.find_opt t.by_fp fp with
  | Some b ->
      b.waiters <- waiter :: b.waiters;
      `Coalesced
  | None ->
      let b = { fp; spec; deadline; waiters = [ waiter ] } in
      Hashtbl.add t.by_fp fp b;
      Queue.add b t.fifo;
      `New

let next t =
  match Queue.take_opt t.fifo with
  | None -> None
  | Some b ->
      Hashtbl.remove t.by_fp b.fp;
      b.waiters <- List.rev b.waiters;
      t.requests <- t.requests - List.length b.waiters;
      Some b

let pending_requests t = t.requests
let pending_batches t = Queue.length t.fifo
