type waiter = {
  id : string;
  reply : string -> unit;
  t0 : int;
  release : unit -> unit;
}

type batch = {
  fp : string;
  spec : Job.spec;
  deadline : Bfly_resil.Budget.t option;
  mutable waiters : waiter list;
  mutable running : bool;
}

type t = {
  fifo : batch Queue.t;
  by_fp : (string, batch) Hashtbl.t;
  mutable requests : int; (* queued + running waiters *)
  mutable running_batches : int;
}

let create () =
  {
    fifo = Queue.create ();
    by_fp = Hashtbl.create 64;
    requests = 0;
    running_batches = 0;
  }

let add t ~fp ~spec ~deadline waiter =
  t.requests <- t.requests + 1;
  match Hashtbl.find_opt t.by_fp fp with
  | Some b ->
      b.waiters <- waiter :: b.waiters;
      if b.running then `Joined else `Coalesced
  | None ->
      let b = { fp; spec; deadline; waiters = [ waiter ]; running = false } in
      Hashtbl.add t.by_fp fp b;
      Queue.add b t.fifo;
      `New

let next t =
  match Queue.take_opt t.fifo with
  | None -> None
  | Some b ->
      (* the fingerprint stays mapped while the batch runs: a duplicate
         arriving mid-solve joins the in-flight batch (single-flight)
         instead of opening a second solve of the same instance *)
      b.running <- true;
      t.running_batches <- t.running_batches + 1;
      Some b

let finish t b =
  (* only [finish] unmaps a fingerprint, and only [next] marks batches
     running, so the table entry is necessarily this batch *)
  Hashtbl.remove t.by_fp b.fp;
  b.running <- false;
  t.running_batches <- t.running_batches - 1;
  let waiters = List.rev b.waiters in
  b.waiters <- [];
  t.requests <- t.requests - List.length waiters;
  waiters

let pending_requests t = t.requests
let pending_batches t = Queue.length t.fifo
let running_batches t = t.running_batches
