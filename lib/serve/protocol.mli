(** The newline-delimited JSON wire protocol of [bfly_tool serve].

    One request per line, one response line per request, in arrival order
    per connection. A request is a JSON object:

    {v
    {"id":"r1","job":"bw","solver":"kl","network":"butterfly","n":64,
     "seed":7,"restarts":4}
    {"id":"r2","job":"mos","j":64}
    {"id":"r3","job":"ee","network":"wrapped","n":8,"k":6,"exact":true}
    {"id":"r4","job":"check","seed":42,"rounds":2}
    {"id":"r5","job":"campaign","degree":3,"sizes":[32,64],"seeds":3}
    {"id":"r6","job":"stats"}
    v}

    [job] selects the solver family: [bw] (with [solver] one of
    [exact|kl|fm|sa|spectral], plus [max_nodes]/[resume] for [exact]),
    [mos], [ee]/[ne]/[expansion], [check], [campaign] (a random-regular
    bisection sweep; served grids are capped at 16 seeds, 8 sizes and
    [n <= 1024] so one request cannot pin the pool), or [stats] (live
    server introspection, answered immediately, never queued). [id] is any string
    (echoed verbatim in the response; assigned [r<N>] when omitted);
    [deadline] is a per-request budget in [Bfly_resil.Budget.of_string]
    syntax (["250ms"], ["1.5s"]). Unknown fields are ignored.

    Responses:

    {v
    {"id":"r1","ok":true,"batch":3,"output":"B_64: BW <= 64 (kl, ...)\n"}
    {"id":"r9","ok":false,"error":"overloaded"}
    v}

    [output] is byte-identical to the matching one-shot [bfly_tool]
    subcommand's stdout; [batch] counts how many requests were coalesced
    into the solve that produced it. [error] is the admission verdict
    (["overloaded"], ["draining"]), a parse diagnostic, or the solver
    error the one-shot CLI would print. *)

type payload =
  | Job of { spec : Job.spec; deadline : Bfly_resil.Budget.t option }
  | Stats

type request = { id : string; payload : payload }

val parse_request : default_id:string -> string -> (request, string * string) result
(** [parse_request ~default_id line] parses one request line. Errors carry
    [(message, id)] — the request's [id] when the line parsed far enough
    to have one, else [default_id] — so a malformed line still gets an
    addressable response. *)

val ok_response : id:string -> batch:int -> output:string -> string
(** One response line (no trailing newline). *)

val error_response : id:string -> string -> string

val stats_response : id:string -> Bfly_obs.Json.t -> string
(** [{"id":..,"ok":true, <fields of the stats object>}]. *)
