(** Request batching: a FIFO of solver batches, coalescing by fingerprint
    with single-flight semantics.

    A {e batch} is one pending solve plus every request waiting on it.
    {!add} either opens a new batch (the fingerprint was not pending or
    in flight) or attaches the request to the existing one — N concurrent
    requests for one instance trigger one solve. The fingerprint stays
    mapped from {!add} until {!finish}, {e through} the running phase:
    under the concurrent dispatcher a duplicate arriving while its twin
    solves joins that in-flight batch ([`Joined]) rather than opening a
    second solve, which is what keeps cold-run solve counts equal to the
    sequential replay's whatever the dispatch interleaving.

    Batches leave in arrival order of their {e first} request; waiters
    within a batch keep their own arrival order, so responses can be
    written deterministically.

    Not thread-safe: the owning {!Server} serializes every call under its
    lock. *)

type waiter = {
  id : string;  (** request id, echoed in the response *)
  reply : string -> unit;  (** response sink for this request's origin *)
  t0 : int;  (** submit timestamp ([Span.now_ns]) for latency accounting *)
  release : unit -> unit;
      (** per-client admission release, called (under the server lock)
          exactly once when the waiter is answered *)
}

type batch = {
  fp : string;
  spec : Job.spec;
  deadline : Bfly_resil.Budget.t option;
  mutable waiters : waiter list;  (** reverse arrival order *)
  mutable running : bool;  (** popped by {!next}, not yet {!finish}ed *)
}

type t

val create : unit -> t

val add :
  t ->
  fp:string ->
  spec:Job.spec ->
  deadline:Bfly_resil.Budget.t option ->
  waiter ->
  [ `New | `Coalesced | `Joined ]
(** Queue a request under its fingerprint. [`Coalesced] means a
    still-queued batch absorbed it, [`Joined] an already-running one. *)

val next : t -> batch option
(** Pop the oldest pending batch and mark it running. Its fingerprint
    remains mapped (accepting joiners) until {!finish}. *)

val finish : t -> batch -> waiter list
(** Close out a batch {!next} returned: unmap its fingerprint and return
    its waiters in arrival order — including any that joined while it
    ran. The caller answers them and calls each [release]. *)

val pending_requests : t -> int
(** Requests waiting or in flight (coalesced and joined ones included) —
    the depth admission control bounds. *)

val pending_batches : t -> int
(** Batches queued and not yet picked up by {!next}. *)

val running_batches : t -> int
(** Batches picked up by {!next} and not yet {!finish}ed. *)
