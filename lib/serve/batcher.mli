(** Request batching: a FIFO of solver batches, coalescing by fingerprint.

    A {e batch} is one pending solve plus every request waiting on it.
    {!add} either opens a new batch (the fingerprint was not pending) or
    attaches the request to the existing one — N concurrent requests for
    one instance trigger one solve. Batches leave in arrival order of
    their {e first} request; waiters within a batch keep their own arrival
    order, so responses can be written deterministically. *)

type waiter = {
  id : string;  (** request id, echoed in the response *)
  reply : string -> unit;  (** response sink for this request's origin *)
  t0 : int;  (** submit timestamp ([Span.now_ns]) for latency accounting *)
}

type batch = {
  fp : string;
  spec : Job.spec;
  deadline : Bfly_resil.Budget.t option;
  mutable waiters : waiter list;  (** reverse arrival order *)
}

type t

val create : unit -> t

val add :
  t ->
  fp:string ->
  spec:Job.spec ->
  deadline:Bfly_resil.Budget.t option ->
  waiter ->
  [ `New | `Coalesced ]
(** Queue a request under its fingerprint. [`Coalesced] means an
    already-pending batch absorbed it. *)

val next : t -> batch option
(** Pop the oldest pending batch (its waiters in arrival order). *)

val pending_requests : t -> int
(** Total requests waiting (coalesced ones included) — the queue depth
    admission control bounds. *)

val pending_batches : t -> int
