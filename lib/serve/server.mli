(** The query-service engine: admission control, batching, scheduling and
    introspection, independent of any transport.

    A server owns a bounded queue of {!Batcher} batches. Transports (or
    tests) push raw request lines in with {!submit} — which parses,
    admits or rejects, and coalesces — and turn the crank with
    {!run_next}/{!run_pending}, which execute one batch at a time through
    {!Job.run} on the calling domain. Each solve is internally parallel
    on the {!Bfly_graph.Parallel} pool; serializing the batches keeps the
    pool fully owned by one solve at a time, so served and one-shot runs
    traverse identical code paths and return identical bytes.

    {2 Admission}

    [queue_bound] caps the number of {e requests} waiting (coalesced ones
    included). A request arriving at a full queue is answered immediately
    with [{"ok":false,"error":"overloaded"}] — an explicit, cheap verdict
    the caller can retry on, instead of unbounded buffering. After
    {!drain} the verdict is ["draining"]. [stats] requests are answered
    inline and never count against the bound.

    {2 Metrics}

    Counters [serve.requests], [serve.responses], [serve.batches],
    [serve.coalesced], [serve.rejected.overload], [serve.rejected.drain],
    [serve.parse_error], [serve.errors]; gauges [serve.queue_depth],
    [serve.batch_width], [serve.latency.p50_ns], [serve.latency.p99_ns]
    (updated per response batch); timers [serve.solve] (per batch) and
    [serve.latency] (per request, submit to response). The same numbers
    are visible per-server through {!stats_json} / the [stats] request. *)

type t

val create : ?queue_bound:int -> unit -> t
(** [queue_bound] defaults to [BFLY_SERVE_QUEUE] when set to a positive
    integer, else 128. *)

val queue_bound : t -> int

val submit : t -> reply:(string -> unit) -> string -> unit
(** Parse and enqueue one request line. [reply] receives every response
    line addressed to this request (rejections and parse errors
    immediately, solver output when its batch completes). Never raises on
    bad input — malformed lines get an error response. *)

val pending : t -> int
(** Requests currently queued. *)

val run_next : t -> bool
(** Execute the oldest pending batch and answer its waiters; [false] when
    the queue is empty. *)

val run_pending : t -> int
(** Drain the queue; returns the number of batches executed. *)

val drain : t -> unit
(** Switch to draining: every later job submission is rejected with
    ["draining"]. Already-queued work still runs. Idempotent, and safe to
    call from a signal handler. *)

val draining : t -> bool

val stats_json : t -> Bfly_obs.Json.t
(** The live introspection object served to [stats] requests: this
    server's request/response/batch/rejection tallies, queue depth and
    bound, draining flag, latency quantiles, and the process-wide
    [cache.hit]/[cache.miss] counters. *)

val summary : t -> string
(** One human line for the drain log, e.g.
    ["served 120 requests in 17 batches (103 coalesced, 0 rejected, p50 1.2ms, p99 210ms)"]. *)
