(** The query-service engine: admission control, batching, scheduling and
    introspection, independent of any transport.

    A server owns a bounded queue of {!Batcher} batches. Transports (or
    tests) push raw request lines in with {!submit} — which parses,
    admits or rejects, and coalesces — and execute batches either
    sequentially with {!run_next}/{!run_pending} on the calling domain,
    or concurrently through {!Dispatch}, which pairs {!take_batch} with
    {!execute_batch} on the {!Bfly_graph.Parallel} pool. Every batch runs
    through {!Job.run}, so served and one-shot runs traverse identical
    code paths and return identical bytes; the single-flight batcher and
    the shared content-addressed result cache together keep the solve
    count of a cold trace equal to the sequential replay's, whatever the
    dispatch interleaving.

    All state is guarded by one internal mutex: {!submit} (transport
    thread) and {!execute_batch} (pool domains) may run concurrently.

    {2 Admission}

    [queue_bound] caps the number of {e requests} waiting or in flight
    (coalesced ones included). A request arriving at a full queue is
    answered immediately with [{"ok":false,"error":"overloaded"}] — an
    explicit, cheap verdict the caller can retry on, instead of unbounded
    buffering. Per-client fairness rides on top: a {!client} handle caps
    one connection's outstanding requests at [client_bound], so a single
    flooding client is rejected (same ["overloaded"] verdict, separate
    [serve.rejected.client] tally) while others keep their quality of
    service. After {!drain} the verdict is ["draining"]. [stats] requests
    are answered inline and never count against either bound.

    {2 Metrics}

    Counters [serve.requests], [serve.responses], [serve.batches],
    [serve.coalesced], [serve.joined_inflight] (duplicates that joined a
    batch already solving), [serve.rejected.overload],
    [serve.rejected.client], [serve.rejected.drain], [serve.parse_error],
    [serve.errors]; gauges [serve.queue_depth], [serve.batch_width],
    [serve.concurrency] (batches in flight) and [serve.concurrency.max]
    (its high-water mark), [serve.latency.p50_ns], [serve.latency.p99_ns];
    timers [serve.solve] (per batch) and [serve.latency] (per request,
    submit to response). The same numbers are visible per-server through
    {!stats_json} / the [stats] request. *)

type t

type client
(** Per-connection admission handle: counts that connection's admitted,
    not-yet-answered requests against its bound. *)

val create : ?queue_bound:int -> ?client_bound:int -> unit -> t
(** [queue_bound] defaults to [BFLY_SERVE_QUEUE] when set to a positive
    integer, else 128. [client_bound] defaults to
    [BFLY_SERVE_CLIENT_QUEUE], else to [queue_bound] (i.e. no extra
    per-client restriction until configured). *)

val queue_bound : t -> int
val client_bound : t -> int

val client : ?name:string -> ?limit:int -> t -> client
(** A fresh admission handle for one connection ([limit] overrides the
    server's [client_bound]). Handles are cheap and need no teardown: a
    disconnected client's in-flight requests release their slots when
    their batches complete. *)

val client_name : client -> string

val submit : t -> ?client:client -> reply:(string -> unit) -> string -> unit
(** Parse and enqueue one request line. [reply] receives every response
    line addressed to this request (rejections and parse errors
    immediately on the calling thread, solver output from whichever
    domain completes its batch). Never raises on bad input — malformed
    lines get an error response. [client] enables per-client admission
    control and should be one handle per connection. *)

val pending : t -> int
(** Requests currently queued or in flight. *)

val queued_batches : t -> int
(** Batches waiting to be taken (excludes running ones) — what a
    dispatcher sizes its worker fleet against. *)

val take_batch : t -> Batcher.batch option
(** Claim the oldest pending batch for execution, marking it in flight
    (its fingerprint keeps absorbing duplicates until it completes).
    Callers must pass every claimed batch to {!execute_batch}. *)

val execute_batch : t -> Batcher.batch -> unit
(** Solve a claimed batch on the calling domain and answer every waiter
    — including any that joined mid-solve. Safe to call concurrently
    from several domains (each with its own batch); solver exceptions
    become per-request error responses. *)

val run_next : t -> bool
(** [take_batch] + [execute_batch] on the calling domain; [false] when
    the queue is empty. The sequential path — and the semantics
    {!Dispatch} preserves observably when concurrency is 1. *)

val run_pending : t -> int
(** Drain the queue sequentially; returns the number of batches run. *)

val drain : t -> unit
(** Switch to draining: every later job submission is rejected with
    ["draining"]. Already-queued work still runs. Idempotent, and safe to
    call from a signal handler. *)

val draining : t -> bool

val stats_json : t -> Bfly_obs.Json.t
(** The live introspection object served to [stats] requests: this
    server's request/response/batch/rejection tallies, queue depth and
    bounds, batches in flight, draining flag, latency quantiles, and the
    process-wide [cache.hit]/[cache.miss] counters. *)

val summary : t -> string
(** One human line for the drain log, e.g.
    ["served 120 requests in 17 batches (103 coalesced, 0 rejected, p50 1.2ms, p99 210ms)"]. *)
