let now_ns () = Int64.to_int (Monotonic_clock.now ())

type t = { timer : Metrics.timer; t0 : int }

let start name = { timer = Metrics.timer name; t0 = now_ns () }

let finish span =
  let elapsed = now_ns () - span.t0 in
  Metrics.record span.timer ~ns:elapsed;
  elapsed

let time ~name f =
  let span = start name in
  Fun.protect ~finally:(fun () -> ignore (finish span)) f
