type counter = int Atomic.t

type gauge = float Atomic.t

type timer = {
  t_count : int Atomic.t;
  t_total : int Atomic.t;
  t_max : int Atomic.t;
}

(* The registry: one table per metric kind, guarded by a single mutex.
   Lookups take the lock; updates through a handle are lock-free. *)
let lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32
let timers : (string, timer) Hashtbl.t = Hashtbl.create 32

let registered tbl name make =
  Mutex.lock lock;
  let v =
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None ->
        let v = make () in
        Hashtbl.add tbl name v;
        v
  in
  Mutex.unlock lock;
  v

let counter name = registered counters name (fun () -> Atomic.make 0)
let gauge name = registered gauges name (fun () -> Atomic.make 0.)

let timer name =
  registered timers name (fun () ->
      { t_count = Atomic.make 0; t_total = Atomic.make 0; t_max = Atomic.make 0 })

let incr c = ignore (Atomic.fetch_and_add c 1)
let add c n = ignore (Atomic.fetch_and_add c n)
let set g v = Atomic.set g v

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

(* high-water marks (e.g. serve.concurrency) raced by many domains: keep
   the maximum, atomically, instead of last-writer-wins *)
let rec set_max g v =
  let cur = Atomic.get g in
  if v > cur && not (Atomic.compare_and_set g cur v) then set_max g v

let record t ~ns =
  let ns = max 0 ns in
  ignore (Atomic.fetch_and_add t.t_count 1);
  ignore (Atomic.fetch_and_add t.t_total ns);
  atomic_max t.t_max ns

let counter_value = Atomic.get
let gauge_value = Atomic.get

type timer_stat = { count : int; total_ns : int; max_ns : int }

let timer_stat t =
  {
    count = Atomic.get t.t_count;
    total_ns = Atomic.get t.t_total;
    max_ns = Atomic.get t.t_max;
  }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  timers : (string * timer_stat) list;
}

let sorted_bindings tbl read =
  Mutex.lock lock;
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  Mutex.unlock lock;
  rows
  |> List.map (fun (k, v) -> (k, read v))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () =
  {
    counters = sorted_bindings counters Atomic.get;
    gauges = sorted_bindings gauges Atomic.get;
    timers = sorted_bindings timers timer_stat;
  }

let reset () =
  Mutex.lock lock;
  Hashtbl.iter (fun _ c -> Atomic.set c 0) counters;
  Hashtbl.iter (fun _ g -> Atomic.set g 0.) gauges;
  Hashtbl.iter
    (fun _ t ->
      Atomic.set t.t_count 0;
      Atomic.set t.t_total 0;
      Atomic.set t.t_max 0)
    timers;
  Mutex.unlock lock

let to_json () =
  let s = snapshot () in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.gauges));
      ( "timers",
        Json.Obj
          (List.map
             (fun (k, st) ->
               ( k,
                 Json.Obj
                   [
                     ("count", Json.Int st.count);
                     ("total_ns", Json.Int st.total_ns);
                     ("max_ns", Json.Int st.max_ns);
                   ] ))
             s.timers) );
    ]

let to_json_string () = Json.to_string (to_json ())
