type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then
        (* %.17g is lossless for doubles; trim the common integral case *)
        let s = Printf.sprintf "%.17g" f in
        let s =
          let short = Printf.sprintf "%.12g" f in
          if float_of_string short = f then short else s
        in
        Buffer.add_string buf s
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Parse_error of string

let max_depth = 512

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error fmt =
    Printf.ksprintf (fun m -> raise (Parse_error m)) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> error "expected '%c' at byte %d, found '%c'" c !pos c'
    | None -> error "expected '%c' at byte %d, found end of input" c !pos
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else error "invalid literal at byte %d" !pos
  in
  (* add one Unicode scalar value to [buf] as UTF-8 *)
  let add_utf8 buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape at byte %d" !pos;
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | c -> error "bad hex digit '%c' at byte %d" c !pos
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string at byte %d" n;
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then error "unterminated escape at byte %d" n;
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'u' ->
               advance ();
               let u = hex4 () in
               (* high surrogate must pair with a following \uDC00-\uDFFF *)
               if u >= 0xd800 && u <= 0xdbff then begin
                 if
                   !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                 then begin
                   pos := !pos + 2;
                   let lo = hex4 () in
                   if lo < 0xdc00 || lo > 0xdfff then
                     error "unpaired surrogate at byte %d" !pos;
                   add_utf8 buf
                     (0x10000 + ((u - 0xd800) lsl 10) + (lo - 0xdc00))
                 end
                 else error "unpaired surrogate at byte %d" !pos
               end
               else if u >= 0xdc00 && u <= 0xdfff then
                 error "unpaired surrogate at byte %d" !pos
               else add_utf8 buf u
           | c -> error "bad escape '\\%c' at byte %d" c !pos);
          go ()
      | c when Char.code c < 0x20 ->
          error "unescaped control character at byte %d" !pos
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = d0 then error "expected digit at byte %d" !pos
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value depth =
    if depth > max_depth then error "nesting deeper than %d at byte %d" max_depth !pos;
    skip_ws ();
    match peek () with
    | None -> error "expected a value at byte %d, found end of input" !pos
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields_loop ()
            | Some '}' -> advance ()
            | _ -> error "expected ',' or '}' at byte %d" !pos
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value (depth + 1) in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items_loop ()
            | Some ']' -> advance ()
            | _ -> error "expected ',' or ']' at byte %d" !pos
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error "unexpected character '%c' at byte %d" c !pos
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then error "trailing garbage at byte %d" !pos;
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

(* ---- accessors ---- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 2. ** 52. ->
      Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List l -> Some l | _ -> None

let rec duplicate_key t =
  let first f xs =
    List.fold_left
      (fun acc x -> match acc with Some _ -> acc | None -> f x)
      None xs
  in
  match t with
  | Obj fields ->
      let rec dup seen = function
        | [] -> None
        | (k, _) :: rest -> if List.mem k seen then Some k else dup (k :: seen) rest
      in
      (match dup [] fields with
      | Some k -> Some k
      | None -> first (fun (_, v) -> duplicate_key v) fields)
  | List xs -> first duplicate_key xs
  | _ -> None
