type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then
        (* %.17g is lossless for doubles; trim the common integral case *)
        let s = Printf.sprintf "%.17g" f in
        let s =
          let short = Printf.sprintf "%.12g" f in
          if float_of_string short = f then short else s
        in
        Buffer.add_string buf s
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf
