(** Process-wide, thread-safe metrics: counters, gauges and timers.

    Every hot kernel in the repo (the {!Bfly_graph.Parallel} domain pool,
    the restart loops of [Bfly_cuts.Heuristics], the branch-and-bound of
    [Bfly_cuts.Exact]) records what it did through this registry, so that
    [bench/main.exe --json] and [bfly_tool --metrics] can report a
    machine-readable account of a run. Handles are registered by name on
    first use and live for the whole process; all updates are lock-free
    ([Atomic]) and safe to call concurrently from any domain.

    Naming scheme (see ARCHITECTURE.md): [<area>.<kernel>.<metric>], e.g.
    [parallel.tasks], [heuristics.kl.restarts], [exact.bb.nodes]. Timer
    names omit the trailing [.<metric>] since a timer is itself a
    (count, total, max) triple. *)

type counter
(** A monotonically increasing integer (e.g. nodes explored, tasks run). *)

type gauge
(** A last-write-wins float (e.g. best capacity found, pool size). *)

type timer
(** An accumulator of timed spans: invocation count, total and max
    duration in nanoseconds. Fed by {!Span}. *)

(** {1 Registration}

    All three are idempotent: the same name always returns the same
    handle, from any domain. *)

val counter : string -> counter
val gauge : string -> gauge
val timer : string -> timer

(** {1 Updates} *)

val incr : counter -> unit
(** [incr c] adds 1 to [c]. *)

val add : counter -> int -> unit
(** [add c n] adds [n] (which must be non-negative) to [c]. *)

val set : gauge -> float -> unit
(** [set g v] overwrites [g] with [v]. *)

val set_max : gauge -> float -> unit
(** [set_max g v] raises [g] to [v] if [v] is larger, atomically even
    against concurrent writers — the update a high-water mark (e.g.
    [serve.concurrency.max]) needs where {!set} would let a lower
    last-writer win. *)

val record : timer -> ns:int -> unit
(** [record t ~ns] folds one span of [ns] nanoseconds into [t]. Negative
    durations are clamped to 0 (a monotonic clock should never produce
    one, but a metrics layer must not crash if it does). *)

(** {1 Reads} *)

val counter_value : counter -> int
(** Current value of a counter (atomic read). *)

val gauge_value : gauge -> float
(** Last value written to a gauge. *)

type timer_stat = { count : int; total_ns : int; max_ns : int }
(** Aggregate of every span recorded into one timer. *)

val timer_stat : timer -> timer_stat
(** Current aggregate of a timer. *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  timers : (string * timer_stat) list;
}
(** A consistent-enough point-in-time copy of the registry, each section
    sorted by name. ("Consistent enough": each cell is read atomically,
    but the snapshot as a whole is not a global atomic cut — fine for
    reporting.) *)

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every registered metric, keeping registrations. Used by tests and
    by [bfly_tool --metrics] to scope metrics to one subcommand. *)

(** {1 Serialization} *)

val to_json : unit -> Json.t
(** The snapshot as
    [{"counters":{...},"gauges":{...},"timers":{name:{"count":..,"total_ns":..,"max_ns":..}}}]. *)

val to_json_string : unit -> string
