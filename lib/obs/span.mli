(** Monotonic-clock timer spans feeding {!Metrics} timers.

    The clock is [CLOCK_MONOTONIC] (via the Bechamel stubs already used by
    the bench harness), so spans are immune to wall-clock adjustments and
    are the same time base the micro-benchmarks report in. *)

val now_ns : unit -> int
(** Nanoseconds on the monotonic clock. Only differences are meaningful. *)

type t
(** An open span: a start timestamp bound to a {!Metrics.timer}. *)

val start : string -> t
(** [start name] opens a span recording into [Metrics.timer name]. *)

val finish : t -> int
(** [finish span] closes the span, records its duration into the timer it
    was started against, and returns the elapsed nanoseconds. Finishing
    the same span twice records two (increasingly long) durations — don't. *)

val time : name:string -> (unit -> 'a) -> 'a
(** [time ~name f] runs [f ()] inside a span, recording its duration into
    [Metrics.timer name] even if [f] raises. *)
