(** Minimal hand-rolled JSON values, serialization and parsing.

    The observability layer ({!Metrics}, the bench harness's [--json] mode)
    emits machine-readable output without pulling in a JSON dependency; this
    module is the single shared emitter. It covers exactly the subset of
    JSON the repo produces: finite numbers, escaped strings, arrays and
    objects.

    {!of_string} is the matching parser. It exists for the two places the
    repo {e consumes} JSON it produced itself: the [bfly_serve] request
    protocol (newline-delimited request objects) and the bench harness's
    [--compare] regression gate (reading a committed [BENCH_<date>.json]
    baseline back in). It accepts standard JSON — numbers without a
    fraction or exponent parse as {!Int}, everything else as {!Float} —
    and rejects trailing garbage, so one request line is one value. *)

(** A JSON value. Objects preserve the field order they were built with. *)
type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** Non-finite floats serialize as [null]. *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** [escape s] is the JSON string-literal body for [s]: quotes, backslashes
    and control characters are escaped; everything else passes through
    byte-for-byte (valid UTF-8 in, valid UTF-8 out). The result does not
    include the surrounding quotes. *)

val to_buffer : Buffer.t -> t -> unit
(** [to_buffer buf v] appends the compact serialization of [v] to [buf]. *)

val to_string : t -> string
(** [to_string v] is the compact (single-line) serialization of [v]. *)

val of_string : string -> (t, string) result
(** [of_string s] parses one JSON value (surrounding whitespace allowed;
    anything after the value is an error). Objects keep their field order;
    duplicate keys are kept as-is (lookups see the first — callers that
    must not silently drop the later values screen with {!duplicate_key}
    and reject). [\uXXXX] escapes
    decode to UTF-8, surrogate pairs included. Errors carry a byte offset,
    e.g. ["trailing garbage at byte 12"]. Nesting is capped (512 levels) so
    hostile request lines cannot overflow the stack. *)

(** {1 Accessors}

    Small total helpers for picking values out of parsed documents —
    [None] on shape mismatch, never an exception. *)

val member : string -> t -> t option
(** [member k v] is the first [k] field of object [v]. Note the parser
    {e keeps} duplicate keys ({!of_string}), so on a malformed document
    this silently ignores every later duplicate — consumers that must not
    do that (the serve request protocol) screen with {!duplicate_key}
    first. *)

val duplicate_key : t -> string option
(** [duplicate_key v] is the first object key that occurs more than once
    in the same object anywhere inside [v] (depth-first), or [None] when
    every object has distinct keys. Used to {e reject} ambiguous request
    documents instead of resolving them first-key-wins. *)

val to_int_opt : t -> int option
(** [Int n] (and integral [Float]) as [Some n]. *)

val to_float_opt : t -> float option
val to_string_opt : t -> string option
val to_bool_opt : t -> bool option

val to_list_opt : t -> t list option
(** [List items] as [Some items]. *)
