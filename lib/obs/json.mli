(** Minimal hand-rolled JSON values and serialization.

    The observability layer ({!Metrics}, the bench harness's [--json] mode)
    emits machine-readable output without pulling in a JSON dependency; this
    module is the single shared emitter. It covers exactly the subset of
    JSON the repo produces: finite numbers, escaped strings, arrays and
    objects. There is deliberately no parser — consumers of
    [BENCH_<date>.json] files are external tooling. *)

(** A JSON value. Objects preserve the field order they were built with. *)
type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** Non-finite floats serialize as [null]. *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** [escape s] is the JSON string-literal body for [s]: quotes, backslashes
    and control characters are escaped; everything else passes through
    byte-for-byte (valid UTF-8 in, valid UTF-8 out). The result does not
    include the surrounding quotes. *)

val to_buffer : Buffer.t -> t -> unit
(** [to_buffer buf v] appends the compact serialization of [v] to [buf]. *)

val to_string : t -> string
(** [to_string v] is the compact (single-line) serialization of [v]. *)
