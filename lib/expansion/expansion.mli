(** Edge- and node-expansion functions (Section 1.3):
    [EE(G,k)] is the least [C(S,S̄)] and [NE(G,k)] the least [|N(S)|]
    over all node sets [S] of size [k].

    Exact values come from (parallel) enumeration of all k-subsets —
    exponential, intended for the small instances of experiments E5–E8;
    an annealing minimizer provides upper-bound witnesses beyond that.

    The exact minimizers persist their results in the {!Bfly_cache} store
    keyed on [(graph, k)]; cached witnesses are re-verified (cardinality
    and re-measured expansion) before being served. The annealing
    minimizers are not cached: they consume [rng] throughout their run, so
    serving a stored result would desynchronize the caller's rng stream. *)

(** [edge_expansion g s] is [C(S, S̄)]. *)
val edge_expansion : Bfly_graph.Graph.t -> Bfly_graph.Bitset.t -> int

(** [node_expansion g s] is [|N(S)|]. *)
val node_expansion : Bfly_graph.Graph.t -> Bfly_graph.Bitset.t -> int

(** [ee_exact g ~k] is [EE(G,k)] with a minimizing witness. Enumerates all
    [C(n,k)] subsets in parallel.
    @raise Invalid_argument when [C(n,k)] exceeds ~200 million. *)
val ee_exact : Bfly_graph.Graph.t -> k:int -> int * Bfly_graph.Bitset.t

(** [ne_exact g ~k] is [NE(G,k)] with a witness; same limits. *)
val ne_exact : Bfly_graph.Graph.t -> k:int -> int * Bfly_graph.Bitset.t

(** [ee_anneal ?rng ?steps g ~k] minimizes edge expansion over k-sets by
    simulated annealing (swap moves); an upper bound on [EE(G,k)]. *)
val ee_anneal :
  ?rng:Random.State.t -> ?steps:int -> Bfly_graph.Graph.t -> k:int ->
  int * Bfly_graph.Bitset.t

(** [ne_anneal ?rng ?steps g ~k] likewise for node expansion. *)
val ne_anneal :
  ?rng:Random.State.t -> ?steps:int -> Bfly_graph.Graph.t -> k:int ->
  int * Bfly_graph.Bitset.t
