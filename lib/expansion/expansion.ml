module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module Subset = Bfly_graph.Subset
module Parallel = Bfly_graph.Parallel

let edge_expansion = Bfly_graph.Traverse.boundary_edges

let node_expansion g s =
  Bitset.cardinal (Bfly_graph.Traverse.neighbors_of_set g s)

(* Enumerate k-subsets in parallel chunks; [score] evaluates a subset given
   a membership array and the member list. *)
let exact_min g ~k score =
  let n = G.n_nodes g in
  if k < 0 || k > n then invalid_arg "Expansion: k out of range";
  let total = Subset.binomial n k in
  if total > 200_000_000 then
    invalid_arg "Expansion: subset space too large for exact enumeration";
  let chunk_best ~lo ~hi =
    let member = Array.make n false in
    let best = ref None in
    Subset.iter_range ~n ~k ~lo ~hi (fun subset ->
        Array.iter (fun v -> member.(v) <- true) subset;
        let c = score member subset in
        (match !best with
        | Some (bc, _) when bc <= c -> ()
        | _ -> best := Some (c, Array.copy subset));
        Array.iter (fun v -> member.(v) <- false) subset);
    !best
  in
  let results = Parallel.run_chunks ~lo:0 ~hi:total (fun ~lo ~hi -> chunk_best ~lo ~hi) in
  let best =
    List.fold_left
      (fun acc r ->
        match (acc, r) with
        | None, x | x, None -> x
        | (Some (c, _) as a), (Some (c', _) as b) -> if c' < c then b else a)
      None results
  in
  match best with
  | None -> invalid_arg "Expansion: empty subset space"
  | Some (c, subset) ->
      let side = Bitset.create n in
      Array.iter (Bitset.add side) subset;
      (c, side)

(* ---- result cache for the exact minimizers ----
   Exhaustive enumeration is deterministic in (graph, k), so entries are
   keyed on exactly that. Hits are re-verified from first principles: the
   cached witness must have cardinality [k] and its expansion — recounted
   with the same definitional measure the solver minimizes — must equal
   the cached optimum. The annealing minimizers below are deliberately
   not cached: they consume the caller's rng throughout their loop, so a
   served hit could not leave the rng stream in the computed-run state. *)

let cached_exact ~measure ~salt ~recount g ~k compute =
  let open Bfly_cache in
  let key =
    Key.make
      ~solver:("expansion." ^ measure)
      ~salt
      ~params:[ ("k", string_of_int k) ]
      ~fingerprint:(Fingerprint.graph Fingerprint.seed g)
  in
  let encode (c, side) =
    [ ("value", Codec.Int c); ("witness", Codec.bits side) ]
  in
  let decode payload =
    match
      ( Codec.get_int payload "value",
        Codec.get_bits payload "witness" ~capacity:(G.n_nodes g) )
    with
    | Some c, Some side -> Some (c, side)
    | _ -> None
  in
  let verify (c, side) = Bitset.cardinal side = k && recount g side = c in
  Store.memoize ~key ~encode ~decode ~verify ~compute

let ee_exact g ~k =
  cached_exact ~measure:"ee_exact" ~salt:"ee/1" ~recount:edge_expansion g ~k
  @@ fun () ->
  exact_min g ~k (fun member subset ->
      Array.fold_left
        (fun acc v ->
          G.fold_neighbors g v acc (fun a w -> if member.(w) then a else a + 1))
        0 subset)

let ne_exact g ~k =
  cached_exact ~measure:"ne_exact" ~salt:"ne/1" ~recount:node_expansion g ~k
  @@ fun () ->
  exact_min g ~k (fun member subset ->
      let seen = Hashtbl.create 16 in
      Array.iter
        (fun v ->
          G.iter_neighbors g v (fun w ->
              if not member.(w) then Hashtbl.replace seen w ()))
        subset;
      Hashtbl.length seen)

(* ------------------------------------------------------------------ *)
(* Annealing minimizer over fixed-size sets                            *)
(* ------------------------------------------------------------------ *)

let anneal_min ?rng ?steps g ~k score =
  let rng = match rng with Some r -> r | None -> Random.State.make [| 0xacc |] in
  let n = G.n_nodes g in
  if k <= 0 || k >= n then invalid_arg "Expansion: k out of range for annealing";
  let steps = match steps with Some s -> s | None -> min 400_000 (2000 * n) in
  let perm = Bfly_graph.Perm.random ~rng n in
  let inside = Array.init k (fun i -> Bfly_graph.Perm.apply perm i) in
  let outside = Array.init (n - k) (fun i -> Bfly_graph.Perm.apply perm (k + i)) in
  let member = Array.make n false in
  Array.iter (fun v -> member.(v) <- true) inside;
  let current = ref (score member) in
  let best = ref !current in
  let best_set = ref (Array.copy inside) in
  let t0 = 3.0 and t1 = 0.02 in
  for step = 0 to steps - 1 do
    let temp = t0 *. ((t1 /. t0) ** (float_of_int step /. float_of_int steps)) in
    let ii = Random.State.int rng k and oi = Random.State.int rng (n - k) in
    let v_out = inside.(ii) and v_in = outside.(oi) in
    member.(v_out) <- false;
    member.(v_in) <- true;
    let c = score member in
    let delta = c - !current in
    if
      delta <= 0
      || Random.State.float rng 1.0 < exp (-.float_of_int delta /. temp)
    then begin
      inside.(ii) <- v_in;
      outside.(oi) <- v_out;
      current := c;
      if c < !best then begin
        best := c;
        best_set := Array.copy inside
      end
    end
    else begin
      member.(v_out) <- true;
      member.(v_in) <- false
    end
  done;
  let side = Bitset.create n in
  Array.iter (Bitset.add side) !best_set;
  (!best, side)

let ee_anneal ?rng ?steps g ~k =
  let score member =
    let c = ref 0 in
    G.iter_edges g (fun u v -> if member.(u) <> member.(v) then incr c);
    !c
  in
  anneal_min ?rng ?steps g ~k score

let ne_anneal ?rng ?steps g ~k =
  let n = G.n_nodes g in
  let seen = Array.make n (-1) in
  let stamp = ref 0 in
  let score member =
    incr stamp;
    let count = ref 0 in
    for v = 0 to n - 1 do
      if member.(v) then
        G.iter_neighbors g v (fun w ->
            if (not member.(w)) && seen.(w) <> !stamp then begin
              seen.(w) <- !stamp;
              incr count
            end)
    done;
    !count
  in
  anneal_min ?rng ?steps g ~k score
