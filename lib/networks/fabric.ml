module G = Bfly_graph.Graph
module Gen = Bfly_graph.Generators

type factor = Fpath of int | Fring of int | Fclique of int

type spec =
  | Mesh of int list
  | Torus of int list
  | Bcube of { ports : int; levels : int }
  | Product of factor list

type t = { spec : spec; dims : int list; graph : G.t }

let c_builds = Bfly_obs.Metrics.counter "fabric.builds"

(* Serve accepts fabric specs from the wire; cap the node count so a single
   request cannot ask for a multi-gigabyte CSR. *)
let max_nodes = 1 lsl 22

let factor_size = function Fpath a | Fring a | Fclique a -> a

let dims = function
  | Mesh ds | Torus ds -> ds
  | Bcube { ports; levels } -> List.init levels (fun _ -> ports)
  | Product fs -> List.map factor_size fs

let validate spec =
  let ds = dims spec in
  if ds = [] then invalid_arg "Fabric: need at least one dimension";
  if List.length ds > 16 then invalid_arg "Fabric: too many dimensions (> 16)";
  let check_ring a =
    if a < 3 then invalid_arg "Fabric: ring dimensions must be >= 3"
  in
  (match spec with
  | Mesh ds -> List.iter (fun a -> if a < 1 then invalid_arg "Fabric: mesh dimensions must be >= 1") ds
  | Torus ds -> List.iter check_ring ds
  | Bcube { ports; levels } ->
      if ports < 2 then invalid_arg "Fabric: bcube needs ports >= 2";
      if levels < 1 then invalid_arg "Fabric: bcube needs levels >= 1"
  | Product fs ->
      List.iter
        (function
          | Fpath a -> if a < 1 then invalid_arg "Fabric: path factors must be >= 1"
          | Fring a -> check_ring a
          | Fclique a -> if a < 2 then invalid_arg "Fabric: clique factors must be >= 2")
        fs);
  let n =
    List.fold_left
      (fun acc a ->
        if acc > max_nodes / a then invalid_arg "Fabric: too many nodes (> 2^22)"
        else acc * a)
      1 ds
  in
  if n < 2 then invalid_arg "Fabric: need at least two nodes"

let name spec =
  let join ds = String.concat "x" (List.map string_of_int ds) in
  match spec with
  | Mesh ds -> "mesh:" ^ join ds
  | Torus ds -> "torus:" ^ join ds
  | Bcube { ports; levels } -> Printf.sprintf "bcube:%dx%d" ports levels
  | Product fs ->
      "product:"
      ^ String.concat "x"
          (List.map
             (function
               | Fpath a -> Printf.sprintf "path%d" a
               | Fring a -> Printf.sprintf "ring%d" a
               | Fclique a -> Printf.sprintf "k%d" a)
             fs)

let graph_of_factor = function
  | Fpath a -> Gen.path a
  | Fring a -> Gen.cycle a
  | Fclique a -> Gen.complete a

let create spec =
  validate spec;
  Bfly_obs.Metrics.incr c_builds;
  let graph =
    match spec with
    | Mesh ds -> Gen.mesh ~dims:ds
    | Torus ds -> Gen.torus_nd ~dims:ds
    | Bcube { ports; levels } -> Gen.hamming ~dims:levels ~alphabet:ports
    | Product fs -> Gen.product_all (List.map graph_of_factor fs)
  in
  { spec; dims = dims spec; graph }

let spec t = t.spec
let dims_of t = t.dims

(* ---- certified bisection bounds (arXiv:1202.6291) ---- *)

type bound = { lower : int; exact : int option; method_ : string }

(* dims ascending, all odd: Σ_{i=1..d} Π_{j<i} a_j — the all-odd mesh
   closed form (Azizoğlu–Eğecioğlu; arXiv:1202.6291). *)
let odd_prefix_sum dims =
  fst
    (List.fold_left
       (fun (acc, prefix) a -> (acc + prefix, prefix * a))
       (0, 1) dims)

let check_dims ~who ~floor dims =
  if dims = [] then invalid_arg (who ^ ": empty dims");
  List.iter
    (fun a ->
      if a < floor then
        invalid_arg (Printf.sprintf "%s: dims >= %d required" who floor))
    dims

let mesh_bounds ~dims =
  check_dims ~who:"Fabric.mesh_bounds" ~floor:1 dims;
  let ds = List.sort compare dims in
  let n = List.fold_left ( * ) 1 ds in
  let amax = List.nth ds (List.length ds - 1) in
  let r = n / amax in
  if amax mod 2 = 0 then
    { lower = r; exact = Some r; method_ = "even-side planar cut" }
  else if List.for_all (fun a -> a mod 2 = 1) ds then begin
    let v = odd_prefix_sum ds in
    { lower = v; exact = Some v; method_ = "all-odd mesh closed form" }
  end
  else { lower = r; exact = None; method_ = "longest-side layer bound" }

let torus_bounds ~dims =
  check_dims ~who:"Fabric.torus_bounds" ~floor:3 dims;
  let m = mesh_bounds ~dims in
  {
    lower = 2 * m.lower;
    exact = Option.map (fun v -> 2 * v) m.exact;
    method_ = "torus " ^ m.method_;
  }

let hamming_bounds ~ports ~levels =
  if ports < 2 || levels < 1 then
    invalid_arg "Fabric.hamming_bounds: ports >= 2, levels >= 1";
  let q = ports and d = levels in
  let pow b e =
    let r = ref 1 in
    for _ = 1 to e do
      r := !r * b
    done;
    !r
  in
  if q mod 2 = 0 then
    let v = q * q / 4 * pow q (d - 1) in
    { lower = v; exact = Some v; method_ = "even-alphabet Hamming closed form" }
  else if q = 3 then
    (* K_3 = C_3, so H(d,3) is the all-odd torus C_3^d: BW = 3^d - 1 *)
    let v = pow 3 d - 1 in
    { lower = v; exact = Some v; method_ = "H(d,3) = all-odd torus closed form" }
  else
    (* K_q contains a spanning Hamiltonian cycle, so C_q^d is a spanning
       subgraph of H(d,q) and the all-odd torus bound transfers as a lower
       bound. *)
    {
      lower = 2 * ((pow q d - 1) / (q - 1));
      exact = None;
      method_ = "spanning-torus lower bound";
    }

let bounds = function
  | Mesh ds -> mesh_bounds ~dims:ds
  | Torus ds -> torus_bounds ~dims:ds
  | Bcube { ports; levels } -> hamming_bounds ~ports ~levels
  | Product fs as spec ->
      let ds = dims spec in
      if List.for_all (function Fpath _ -> true | _ -> false) fs then
        mesh_bounds ~dims:ds
      else if List.for_all (function Fring _ -> true | _ -> false) fs then
        torus_bounds ~dims:ds
      else
        (* every factor (path, ring, clique) has a Hamiltonian path, so the
           same-size mesh is a spanning subgraph and its lower bound
           transfers *)
        {
          lower = (mesh_bounds ~dims:ds).lower;
          exact = None;
          method_ = "spanning-mesh lower bound";
        }
let graph t = t.graph
let size t = G.n_nodes t.graph
let name_of t = name t.spec

(* ---- parsing ---- *)

let parse_dims s =
  let parts = String.split_on_char 'x' s in
  if parts = [] || List.exists (fun p -> p = "") parts then None
  else
    try Some (List.map int_of_string parts) with Failure _ -> None

let parse_factor s =
  let strip prefix =
    let lp = String.length prefix and ls = String.length s in
    if ls > lp && String.sub s 0 lp = prefix then
      match int_of_string_opt (String.sub s lp (ls - lp)) with
      | Some a -> Some a
      | None -> None
    else None
  in
  match strip "path" with
  | Some a -> Some (Fpath a)
  | None -> (
      match strip "ring" with
      | Some a -> Some (Fring a)
      | None -> (
          match strip "k" with Some a -> Some (Fclique a) | None -> None))

let spec_of_string s =
  let fail () =
    Error
      (Printf.sprintf
         "bad fabric spec %S (expected mesh:AxBx.., torus:AxBx.., \
          torus3d:AxBxC, bcube:PORTSxLEVELS, or product:path2xring3xk4)"
         s)
  in
  match String.index_opt s ':' with
  | None -> fail ()
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let checked spec =
        match validate spec with () -> Ok spec | exception Invalid_argument m -> Error m
      in
      match kind with
      | "mesh" -> (
          match parse_dims rest with Some ds -> checked (Mesh ds) | None -> fail ())
      | "torus" -> (
          match parse_dims rest with Some ds -> checked (Torus ds) | None -> fail ())
      | "torus3d" -> (
          match parse_dims rest with
          | Some [ a; b; c ] -> checked (Torus [ a; b; c ])
          | Some _ -> Error "torus3d: expected exactly three dimensions"
          | None -> fail ())
      | "bcube" -> (
          match parse_dims rest with
          | Some [ ports; levels ] -> checked (Bcube { ports; levels })
          | Some _ -> Error "bcube: expected PORTSxLEVELS"
          | None -> fail ())
      | "product" -> (
          let parts = String.split_on_char 'x' rest in
          let factors = List.filter_map parse_factor parts in
          if List.length factors = List.length parts && parts <> [] then
            checked (Product factors)
          else fail ())
      | _ -> fail ())

let is_spec s =
  match String.index_opt s ':' with
  | None -> false
  | Some i ->
      List.mem (String.sub s 0 i) [ "mesh"; "torus"; "torus3d"; "bcube"; "product" ]
