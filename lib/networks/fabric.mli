(** Named data-center fabrics as Cartesian product networks.

    The capacity-planning families of arXiv:1202.6291 ("Bisection
    (Band)Width of Product Networks with Application to Data Centers"),
    realized over {!Bfly_graph.Generators.product_all}:

    - [mesh:AxBx..] — d-dimensional mesh, the product of paths;
    - [torus:AxBx..] (alias [torus3d:AxBxC]) — d-dimensional torus, the
      product of rings (every side ≥ 3);
    - [bcube:PORTSxLEVELS] — BCube-style switchless core: the Hamming
      graph [H(levels, ports)], a product of complete graphs [K_ports];
    - [product:path2xring3xk4] — an arbitrary product of path/ring/clique
      factors.

    Node numbering is row-major (last factor fastest), matching the
    dimension-aligned cuts of [Bfly_cuts.Constructions.dimension_cut];
    certified bisection bounds are the {!bound} functions below, checked
    end-to-end by the [Bfly_check.Bounds] oracle battery. *)

type factor = Fpath of int | Fring of int | Fclique of int

type spec =
  | Mesh of int list
  | Torus of int list
  | Bcube of { ports : int; levels : int }
  | Product of factor list

type t

(** Node-count cap enforced by {!validate} ([2^22]): fabric specs arrive
    over the serve wire, and a single request must not allocate a
    multi-gigabyte CSR. *)
val max_nodes : int

(** Factor sizes of the spec, in product order — the [~dims] argument for
    {!Bfly_cuts.Constructions.dimension_cut}. *)
val dims : spec -> int list

(** Validate a spec without building it: dimension ranges (paths ≥ 1,
    rings ≥ 3, cliques ≥ 2, bcube ports ≥ 2 / levels ≥ 1), at most 16
    dimensions, at least 2 and at most {!max_nodes} total nodes.
    @raise Invalid_argument when violated. *)
val validate : spec -> unit

(** Canonical name, parseable back by {!spec_of_string} — e.g.
    [mesh:2x4x8], [torus:4x4x4], [bcube:4x2], [product:path2xring3].
    Used verbatim in job fingerprints and CLI output. *)
val name : spec -> string

(** Build the fabric ({!validate} first). Records the [fabric.builds]
    counter in {!Bfly_obs.Metrics}. *)
val create : spec -> t

val spec : t -> spec
val dims_of : t -> int list
val graph : t -> Bfly_graph.Graph.t
val size : t -> int
val name_of : t -> string

(** {2 Certified bisection bounds}

    The closed forms and transfer bounds of arXiv:1202.6291, as pure
    arithmetic on the spec. [lower] is always a certified lower bound on
    [BW]; [exact = Some v] when the formula is known tight (then
    [lower = v]); [method_] names the theorem used. The differential
    oracles in [Bfly_check.Bounds] re-export these and check them against
    constructed cuts and solver outputs. *)

type bound = { lower : int; exact : int option; method_ : string }

(** Mesh (product of paths), dims sorted internally. Largest side even:
    [BW = N/amax] exactly (planar mid-cut). All sides odd:
    [BW = Σ_i Π_{j<i} a_j] exactly (dims ascending). Mixed parity with odd
    largest side: [N/amax] is only a lower bound (e.g. the 2×3×3 mesh has
    [BW = 9 > 6]). @raise Invalid_argument on empty or non-positive dims. *)
val mesh_bounds : dims:int list -> bound

(** Torus (product of rings, sides ≥ 3): exactly twice {!mesh_bounds} in
    both certified parities, and twice the mesh lower bound otherwise. *)
val torus_bounds : dims:int list -> bound

(** Hamming graph [H(levels, ports)] = [K_ports^levels] (BCube core).
    Even [ports]: [BW = (q²/4)·q^(d−1)] exactly. [ports = 3]: [K_3 = C_3],
    so the all-odd torus form gives [BW = 3^d − 1] exactly. Odd
    [ports > 3]: the spanning-torus transfer [2(q^d−1)/(q−1)] is a lower
    bound only. *)
val hamming_bounds : ports:int -> levels:int -> bound

(** Bounds for any spec: meshes/tori/bcubes dispatch to the closed forms
    above; mixed products fall back to the spanning-mesh transfer bound
    (every factor has a Hamiltonian path). *)
val bounds : spec -> bound

(** Parse a spec string ([mesh:..], [torus:..], [torus3d:..], [bcube:..],
    [product:..]); validation errors are reported as [Error]. *)
val spec_of_string : string -> (spec, string) result

(** [true] when the string has the shape of a fabric spec (a known kind
    before a colon) — used to route CLI/serve network arguments between
    the classic butterfly families and fabrics without guessing. *)
val is_spec : string -> bool
