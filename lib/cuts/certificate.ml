module G = Bfly_graph.Graph
module Parallel = Bfly_graph.Parallel
module Metrics = Bfly_obs.Metrics
module Span = Bfly_obs.Span

let c_bounds = Metrics.counter "cuts.certificate.kn"

(* Map every CSR arc to the index of its undirected endpoint pair in
   [G.edges g] (parallel edges share the first matching index: the
   congestion argument is per endpoint pair — per "bundle" — and a cut
   that contains a bundle has at least one unit of capacity per bundle,
   so bundle-granular congestion keeps the bound sound on multigraphs). *)
let arc_bundles g =
  let n = G.n_nodes g in
  let offsets = G.csr_offsets g and adj = G.csr_adj g in
  let edges = G.edges g in
  let bundle_of = Hashtbl.create (Array.length edges) in
  Array.iteri
    (fun i e -> if not (Hashtbl.mem bundle_of e) then Hashtbl.add bundle_of e i)
    edges;
  let arc_bundle = Array.make (Array.length adj) 0 in
  for u = 0 to n - 1 do
    for k = offsets.(u) to offsets.(u + 1) - 1 do
      let v = adj.(k) in
      arc_bundle.(k) <- Hashtbl.find bundle_of (if u <= v then (u, v) else (v, u))
    done
  done;
  (arc_bundle, Array.length edges)

(* Congestion of the BFS-tree all-pairs routing, accumulated for sources
   [lo, hi): every node [v] of the tree rooted at [s] routes the ordered
   pairs (s, t) for all t in v's subtree through its parent edge, so the
   parent edge's congestion grows by the subtree size. Subtree sizes fall
   out of one reverse scan of the BFS order. Deterministic: BFS scans
   adjacency in CSR order, and the per-bundle totals are sums of
   per-source integers, associative at any chunking. *)
let chunk_congestion g ~arc_bundle ~n_bundles ~lo ~hi =
  let n = G.n_nodes g in
  let offsets = G.csr_offsets g and adj = G.csr_adj g in
  let dist = Array.make n (-1)
  and parent = Array.make n (-1)
  and via = Array.make n (-1)
  and queue = Array.make n 0
  and cnt = Array.make n 0 in
  let cong = Array.make n_bundles 0 in
  let disconnected = ref false in
  for s = lo to hi - 1 do
    Array.fill dist 0 n (-1);
    dist.(s) <- 0;
    queue.(0) <- s;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      for k = offsets.(u) to offsets.(u + 1) - 1 do
        let v = adj.(k) in
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          via.(v) <- k;
          queue.(!tail) <- v;
          incr tail
        end
      done
    done;
    if !tail < n then disconnected := true
    else begin
      Array.fill cnt 0 n 1;
      for i = !tail - 1 downto 1 do
        let v = queue.(i) in
        cong.(arc_bundle.(via.(v))) <- cong.(arc_bundle.(via.(v))) + cnt.(v);
        cnt.(parent.(v)) <- cnt.(parent.(v)) + cnt.(v)
      done
    end
  done;
  (cong, !disconnected)

let kn_congestion g =
  let n = G.n_nodes g in
  if n <= 1 then Some 0
  else if G.n_edges g = 0 then None
  else
    Span.time ~name:"cuts.certificate" @@ fun () ->
    let arc_bundle, n_bundles = arc_bundles g in
    let chunks =
      Parallel.run_chunks ~lo:0 ~hi:n (fun ~lo ~hi ->
          chunk_congestion g ~arc_bundle ~n_bundles ~lo ~hi)
    in
    let total = Array.make n_bundles 0 in
    let disconnected = ref false in
    List.iter
      (fun (cong, disc) ->
        if disc then disconnected := true;
        Array.iteri (fun i c -> total.(i) <- total.(i) + c) cong)
      chunks;
    if !disconnected then None
    else Some (Array.fold_left max 0 total)

let kn_bound g =
  let n = G.n_nodes g in
  Metrics.incr c_bounds;
  if n < 2 then 0
  else
    match kn_congestion g with
    | None | Some 0 -> 0
    | Some c ->
        (* a bisection separates 2·⌈n/2⌉·⌊n/2⌋ ordered pairs; each
           separated pair's tree route crosses the cut, and a cut of
           capacity w contains at most w bundles, each carrying <= c *)
        let pairs = 2 * ((n / 2) * ((n + 1) / 2)) in
        (pairs + c - 1) / c
