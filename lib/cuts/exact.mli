(** Exact minimum-bisection solvers.

    Minimum bisection is NP-hard; these solvers are exact but exponential,
    practical for graphs of up to roughly 40 nodes (e.g. [B_8] with 32
    nodes, [W_8] and [CCC_8] with 24). Both enumerate only sides containing
    node 0 (complement symmetry) and the branch-and-bound solver prunes with
    a per-node lower bound: an unassigned node will eventually pay
    [min(edges to S, edges to S̄)].

    All solvers support {e U-bisection} (Section 2.1): minimizing capacity
    over cuts that split a given node subset [U] evenly, which is how
    [BW(MOS, M2)] and [BW(B_n, L_i)] (Lemma 2.12) are computed. *)

(** [bisection_width ?u ?upper_bound g] is the minimum capacity and a
    witness side over all cuts bisecting [u] (default: all nodes, i.e. the
    ordinary bisection width). [upper_bound] primes the search with a known
    cut value (exclusive pruning threshold is the bound itself, so the
    returned value may equal it only if a witness of that capacity exists
    below it... the witness returned always achieves the returned value).
    Uses branch and bound, parallelized over the top of the search tree:
    the first [p] assignment decisions are enumerated into [2^p] subtree
    roots which are explored concurrently on the {!Bfly_graph.Parallel}
    pool, sharing the incumbent through an atomic so every subtree prunes
    against the globally best cut found so far. The returned value is
    independent of [BFLY_DOMAINS]. Records [exact.bb.nodes] (search nodes
    visited) and [exact.bb.prefixes] counters, the [exact.bb.best_capacity]
    gauge and the [exact.bisection_width] timer in {!Bfly_obs.Metrics}.

    Results persist in the {!Bfly_cache} result store, keyed on the
    canonical graph fingerprint and [u] (but {e not} [upper_bound]: a
    successful run always returns the global minimum, so the bound is
    merely re-applied when a cached entry is served — a cached value above
    the bound raises the same [Invalid_argument] a live search would).
    Cached witnesses are re-verified (balance and recounted capacity)
    before being served; on a hit the B&B counters are untouched. *)
val bisection_width :
  ?u:Bfly_graph.Bitset.t ->
  ?upper_bound:int ->
  Bfly_graph.Graph.t ->
  int * Bfly_graph.Bitset.t

(** Result of a supervised run: either the exact answer, or — when the
    {!Bfly_resil.Cancel} token fired mid-search — a {e certified}
    interval: [witness] is a real cut of capacity [upper] (so
    [BW <= upper]), and no cut anywhere has capacity below [lower]
    (completed subtrees are covered by the incumbent's pruning threshold,
    pending subtrees by their recomputed root bounds). [reason] is the
    token's trigger reason. *)
type outcome =
  | Complete of int * Bfly_graph.Bitset.t
  | Interval of {
      lower : int;
      upper : int;
      witness : Bfly_graph.Bitset.t;
      reason : string;
    }

(** [bisection_width_supervised ?u ?upper_bound ?cancel ?resume g] is
    {!bisection_width} under a {!Bfly_resil.Cancel} token ([?cancel],
    falling back to the ambient token): the search polls every 256
    visited nodes, charges them to the token's step budget, and on
    trigger degrades to a certified {!Interval} instead of running to
    completion.

    Interrupted unbounded runs {e checkpoint}: the open frontier (the
    top-level prefix codes not yet fully explored) and the incumbent are
    stored through {!Bfly_cache} under a separate solver id
    ([cuts.exact.checkpoint]). With [resume] (default [false]) a later
    call reloads that frontier and explores only what remains; because
    the search's answer is independent of exploration order, a resumed
    run completes to the {e identical} value an uninterrupted run
    returns, and the checkpoint is retired on completion. Runs primed
    with [upper_bound] never checkpoint (their pruning is relative to the
    bound, which a resume could not soundly reuse).

    The frontier shrinks monotonically across resumes (a subtree, once
    completed, never reappears) and cancellation is honored everywhere —
    including inside the first pending subtree, which on large instances
    can by itself dwarf any budget — so a single run never promises to
    complete a subtree. A resume loop therefore terminates once its
    budget suffices to finish at least one pending subtree per run;
    growing the budget between resumes (as the differential oracles do)
    always reaches that point. A [Complete] is returned (and cached) even
    under an expired token when the interval closes ([lower >= upper]).
    Counters: [exact.bb.interrupted], [resil.checkpoint.stored],
    [resil.checkpoint.resumed]. *)
val bisection_width_supervised :
  ?u:Bfly_graph.Bitset.t ->
  ?upper_bound:int ->
  ?cancel:Bfly_resil.Cancel.t ->
  ?resume:bool ->
  Bfly_graph.Graph.t ->
  outcome

(** [bisection_width_exhaustive ?u g] enumerates every side set of the
    required balance. Exponential without pruning; only for graphs of at
    most ~26 nodes. Used in tests as an oracle for {!bisection_width}. *)
val bisection_width_exhaustive :
  ?u:Bfly_graph.Bitset.t -> Bfly_graph.Graph.t -> int * Bfly_graph.Bitset.t

(** [bisection_width_instrumented ?u ?upper_bound ?degree_bound g] is
    {!bisection_width} run {e sequentially} with a search-node counter,
    for ablating the per-node lower bound ([degree_bound], default
    [true]): returns [(value, witness, nodes_visited)]. *)
val bisection_width_instrumented :
  ?u:Bfly_graph.Bitset.t ->
  ?upper_bound:int ->
  ?degree_bound:bool ->
  Bfly_graph.Graph.t ->
  int * Bfly_graph.Bitset.t * int
