(** Flat gain buckets over [Bigarray] storage: the O(1) best-move selector
    behind the multilevel FM refinement ({!Multilevel}).

    The classical Fiduccia–Mattheyses bucket structure, laid out as four
    flat unboxed integer vectors ([Bigarray.Array1] of native ints): a
    node's current gain indexes it into a bucket, the nodes of one bucket
    form a doubly-linked list threaded through two [n]-sized vectors
    ([next]/[prev] by node id), and a monotonically repaired max-bucket
    pointer makes {!peek}/{!pop} amortized O(1). Compared with the binary
    heap used by {!Heuristics.fiduccia_mattheyses} there are no stale
    entries to lapse: {!update} relinks the node in place, so the structure
    always holds each enqueued node exactly once at its true gain.

    A structure is reusable: {!reset} re-dimensions it logically (growing
    the physical vectors only when needed) and clears it in O(max_gain + n),
    which lets the refinement arena keep one pair of structures per domain
    instead of allocating two per pass. A reset structure is observationally
    identical to a fresh {!create}.

    Gains must stay within [[-max_gain, +max_gain]] — for cut refinement
    the maximum (multiplicity-counted) degree of the graph is a safe
    bound, since a node's gain is its external minus its internal degree.
    Out-of-range gains and double inserts raise [Invalid_argument]: they
    indicate a broken caller invariant, never data.

    Determinism: within a bucket, nodes are kept in LIFO order of
    insertion, so {!peek} and {!pop} are deterministic functions of the
    operation history — a property the multilevel refinement relies on to
    stay independent of [BFLY_DOMAINS]. *)

type t

val create : max_gain:int -> int -> t
(** [create ~max_gain n] — an empty structure for nodes [0..n-1] holding
    gains in [[-max_gain, +max_gain]]. O(max_gain + n) space. *)

val reset : t -> max_gain:int -> int -> unit
(** [reset t ~max_gain n] makes [t] equivalent to a fresh
    [create ~max_gain n], reusing (and growing geometrically when
    necessary) the existing vectors. The caller owns the structure
    exclusively between resets — see {!Arena} for the per-domain ownership
    discipline. *)

val insert : t -> int -> int -> unit
(** [insert t v g] enqueues node [v] with gain [g] at the head of its
    bucket. @raise Invalid_argument if [v] is already enqueued or [g] is
    out of range. *)

val remove : t -> int -> unit
(** [remove t v] unlinks [v]. O(1).
    @raise Invalid_argument if [v] is not enqueued. *)

val update : t -> int -> int -> unit
(** [update t v g] moves an enqueued [v] to the bucket for gain [g]
    (no-op when unchanged). O(1). *)

val mem : t -> int -> bool
(** Whether the node is currently enqueued. *)

val gain : t -> int -> int
(** Current gain of an enqueued node.
    @raise Invalid_argument if [v] is not enqueued. *)

val cardinal : t -> int
(** Number of enqueued nodes. *)

val peek : t -> (int * int) option
(** [peek t] is [Some (v, g)] where [v] is the head of the highest
    non-empty bucket, i.e. a node of maximum gain [g] — or [None] when
    empty. Amortized O(1): the max pointer only walks down over pops. *)

val pop : t -> (int * int) option
(** {!peek} followed by {!remove} of the returned node. *)
