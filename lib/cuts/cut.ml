module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset

type t = { graph : G.t; side : Bitset.t }

let make graph side =
  if Bitset.capacity side <> G.n_nodes graph then
    invalid_arg "Cut.make: side set capacity must match node count";
  { graph; side }

let graph c = c.graph
let side c = c.side
let capacity c = Bfly_graph.Traverse.boundary_edges c.graph c.side
let recount c = G.cut_size c.graph c.side
let side_size c = Bitset.cardinal c.side

let is_bisection c =
  let n = G.n_nodes c.graph in
  let s = side_size c in
  let half = (n + 1) / 2 in
  s <= half && n - s <= half

let bisects c u =
  let total = Bitset.cardinal u in
  let a = Bitset.cardinal (Bitset.inter c.side u) in
  let b = total - a in
  abs (a - b) <= 1

let cut_edges c =
  let acc = ref [] in
  G.iter_edges c.graph (fun u v ->
      if Bitset.mem c.side u <> Bitset.mem c.side v then acc := (u, v) :: !acc);
  List.rev !acc

module State = struct
  type state = {
    g : G.t;
    offsets : int array; (* borrowed CSR offsets of g *)
    adj : int array; (* borrowed CSR adjacency of g *)
    in_a : Bitset.t;
    words : int array; (* backing words of in_a, cached *)
    gains : int array;
    mutable cap : int;
    mutable size_a : int;
  }

  let create g side =
    if Bitset.capacity side <> G.n_nodes g then
      invalid_arg "Cut.State.create: side set capacity must match node count";
    let in_a = Bitset.copy side in
    let words = Bitset.unsafe_words in_a in
    let offsets = G.csr_offsets g and adj = G.csr_adj g in
    let n = G.n_nodes g in
    let gains = Array.make n 0 in
    let cap = ref 0 in
    for v = 0 to n - 1 do
      let mv = (Array.unsafe_get words (Bitset.word_index v) lsr (Bitset.bit_index v)) land 1 in
      let gv = ref 0 in
      for i = Array.unsafe_get offsets v to Array.unsafe_get offsets (v + 1) - 1
      do
        let w = Array.unsafe_get adj i in
        let mw = (Array.unsafe_get words (Bitset.word_index w) lsr (Bitset.bit_index w)) land 1 in
        if mw = mv then decr gv
        else begin
          incr gv;
          incr cap
        end
      done;
      gains.(v) <- !gv
    done;
    { g; offsets; adj; in_a; words; gains;
      cap = !cap / 2; size_a = Bitset.cardinal in_a }

  let capacity st = st.cap
  let side_size st = st.size_a

  let in_side st v =
    (Array.unsafe_get st.words (Bitset.word_index v) lsr (Bitset.bit_index v)) land 1 = 1

  let gain st v = st.gains.(v)
  let side_words st = st.words
  let gains_array st = st.gains

  let flip st v =
    let words = st.words and gains = st.gains in
    let wv = Bitset.word_index v and bv = Bitset.bit_index v in
    let old_word = Array.unsafe_get words wv in
    (* 1 when v was in A, else 0 *)
    let wa = (old_word lsr bv) land 1 in
    st.cap <- st.cap - Array.unsafe_get gains v;
    Array.unsafe_set gains v (-Array.unsafe_get gains v);
    Array.unsafe_set words wv (old_word lxor (1 lsl bv));
    st.size_a <- st.size_a + 1 - (2 * wa);
    (* edge v-w: if w was on v's old side the edge becomes external for w
       (+2 to w's gain: gain counts ext - int), else internal (-2). The
       membership test is branch-free: delta = 2 - 4 * (bit(w) lxor wa). *)
    let offsets = st.offsets and adj = st.adj in
    for i = Array.unsafe_get offsets v to Array.unsafe_get offsets (v + 1) - 1
    do
      let w = Array.unsafe_get adj i in
      let mw = (Array.unsafe_get words (Bitset.word_index w) lsr (Bitset.bit_index w)) land 1 in
      Array.unsafe_set gains w
        (Array.unsafe_get gains w + 2 - (4 * (mw lxor wa)))
    done

  let side st = Bitset.copy st.in_a
end
