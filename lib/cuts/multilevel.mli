(** Multilevel minimum-bisection heuristic: heavy-edge-matching coarsening,
    gain-bucket FM refinement per level, parallel V-cycle restarts.

    This is the scale tier of the heuristic family ({!Heuristics} covers
    the flat kernels): it produces balanced cuts of butterflies far beyond
    exact reach, giving the E1 convergence table a heuristic upper-bound
    column that tracks Theorem 2.20's [2(√2−1)n ≈ 0.8284n] at [n = 4096]
    and beyond, where flat KL/FM no longer converge in useful time.

    {1 The V-cycle}

    Each restart runs one V-cycle. {e Coarsening} repeatedly contracts a
    heavy-edge matching ({!Coarsen.step}): nodes are visited in a seeded
    random order and merged with the unmatched neighbor sharing the
    heaviest edge bundle. Edge weights are represented as parallel edges
    of the coarse multigraph — {!Bfly_graph.Graph} counts multiplicity
    everywhere, so the weighted cut of a coarse side {e equals} the cut of
    its projection (contracted pairs sit on one side; only their external
    edges survive, with multiplicity preserved), and total edge weight
    never exceeds the original edge count. Vertex weights are carried
    explicitly and conserved: the weight of a coarse node is the number
    of original nodes inside it, so weighted balance at any level is
    exactly the balance of the projected cut.

    Coarsening stops at [coarsening_threshold] nodes, or when a round
    leaves more than [matching_ratio · n] coarse nodes (the matching
    stalled). The coarsest graph is bisected from a seeded greedy start,
    then each level is {e refined}: the side is first rebalanced to the
    level's tolerance (the maximum vertex weight — a single move cannot
    do better), then Fiduccia–Mattheyses passes run on two {!Gain} bucket
    structures (one per side) with O(1) best-move selection, each pass
    hill-climbing through infeasible territory and rolling back to its
    best balanced prefix. At the finest level all weights are 1, the
    tolerance is 1, and the result is a true bisection.

    {1 Determinism, caching, degradation}

    Restart seeds are drawn sequentially from [rng] before any restart
    runs and the best cut ties toward the earliest restart
    ({!Bfly_graph.Parallel.best_of}), so results are identical at any
    [BFLY_DOMAINS]. Results are cached in {!Bfly_cache} keyed on (graph,
    parameters, derived seeds) under solver [cuts.heuristics.ml] with the
    same contract as the flat kernels: seeds are drawn {e before} the
    lookup, so a hit returns the identical cut and leaves the rng stream
    in the identical state, and entries are re-verified (balance,
    recounted capacity) before being served. A triggered
    {!Bfly_resil.Cancel} token stops coarsening between rounds and
    refinement between moves; the degraded result is still projected to
    the finest level and rebalanced — a valid bisection, just not
    converged — and is not written to the cache.

    Metrics: [ml.levels] (hierarchy levels built, summed over restarts),
    [ml.refine.moves] (accepted refinement moves), and the standard
    kernel pair [heuristics.ml.restarts] / [heuristics.ml.best_capacity],
    all advancing only on actual compute; timer span [heuristics.ml]. *)

type config = {
  matching_ratio : float;
      (** Stop coarsening when a matching round leaves more than
          [matching_ratio · n] coarse nodes. In [(0, 1]]; default [0.9]. *)
  coarsening_threshold : int;
      (** Stop coarsening at or below this many nodes; the coarsest graph
          is partitioned directly. Default [64]. *)
}

val default_config : config

val bisect :
  ?rng:Random.State.t ->
  ?restarts:int ->
  ?config:config ->
  ?cancel:Bfly_resil.Cancel.t ->
  Bfly_graph.Graph.t ->
  int * Bfly_graph.Bitset.t
(** [bisect ?rng ?restarts ?config ?cancel g] — the best balanced cut over
    [restarts] (default 4) independent V-cycles run concurrently on the
    domain pool. Returns the capacity and the witness side (sizes within
    one of [N/2]). Near-linear per restart: O(levels · (N + M)). *)

(** {1 Internal surfaces}

    The coarsening and refinement stages, exposed so the differential
    tests can drive a V-cycle one level at a time and check the
    invariants (cut preservation under projection, vertex-weight
    conservation, per-level balance) that {!bisect} relies on. *)

module Coarsen : sig
  type level = {
    graph : Bfly_graph.Graph.t;
        (** The coarse multigraph; parallel edges encode edge weight. *)
    vwgt : int array;  (** Coarse vertex weights. *)
    map : int array;  (** Fine node to coarse node. *)
  }

  val unit_weights : Bfly_graph.Graph.t -> int array
  (** All-ones weights for the finest level. *)

  val step :
    ?side:Bfly_graph.Bitset.t ->
    matching_ratio:float ->
    rng:Random.State.t ->
    vwgt:int array ->
    Bfly_graph.Graph.t ->
    level option
  (** One heavy-edge-matching contraction, or [None] when the graph is
      already tiny or the matching stalled (see {!config}). With [?side],
      only same-side pairs are matched, so the side survives contraction
      with its exact cut capacity — the guided rounds of {!bisect} iterate
      on this to lift an incumbent cut out of local optima. *)

  val project :
    map:int array -> n_fine:int -> Bfly_graph.Bitset.t -> Bfly_graph.Bitset.t
  (** Pull a coarse side back to the finer level: a fine node is in the
      projected side iff its coarse node is in the given side. *)
end

module Refine : sig
  val tolerance : vwgt:int array -> int
  (** The level's balance tolerance: [max 1 (max vertex weight)]. *)

  val imbalance : vwgt:int array -> Bfly_graph.Bitset.t -> int
  (** [|2·w(S) − w(V)|] — the quantity {!refine} bounds by the
      tolerance. [0] or [1] exactly when the side is a weighted
      bisection. *)

  val initial :
    rng:Random.State.t -> vwgt:int array -> Bfly_graph.Graph.t -> Bfly_graph.Bitset.t
  (** Seeded greedy weighted half-fill, the coarsest-level start. *)

  val refine :
    ?cancel:Bfly_resil.Cancel.t ->
    vwgt:int array ->
    tolerance:int ->
    Bfly_graph.Graph.t ->
    Bfly_graph.Bitset.t ->
    Bfly_graph.Bitset.t
  (** Rebalance the side to within [tolerance], then run gain-bucket FM
      passes to a fixpoint (or until [cancel] fires). The input side is
      not mutated; the returned side always satisfies the tolerance. *)
end
