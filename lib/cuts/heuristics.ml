module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module Parallel = Bfly_graph.Parallel
module Metrics = Bfly_obs.Metrics
module Span = Bfly_obs.Span
module State = Cut.State
module Cancel = Bfly_resil.Cancel

let default_rng () = Random.State.make [| 0x5eed |]

(* Restart seeds are drawn sequentially from the caller's rng so the work
   list is fixed before any domain runs: results depend on the seed, never
   on the domain count or completion order. *)
let derive_seeds rng k =
  let seeds = Array.make k 0 in
  for i = 0 to k - 1 do
    seeds.(i) <- Random.State.bits rng
  done;
  seeds

(* Lowest capacity wins; equal capacities keep the earliest restart, like a
   sequential first-wins loop. *)
let by_capacity (c1, _) (c2, _) = Stdlib.compare c1 c2

let record_kernel ~kernel ~restarts ~capacity =
  Metrics.add (Metrics.counter ("heuristics." ^ kernel ^ ".restarts")) restarts;
  Metrics.set
    (Metrics.gauge ("heuristics." ^ kernel ^ ".best_capacity"))
    (float_of_int capacity)

(* ---- result cache ----
   Heuristic results are deterministic in (graph, params, restart seeds):
   the seeds are drawn from the caller's rng *before* the cache is
   consulted — exactly as they are drawn before dispatch — so a hit leaves
   the rng stream in the same state as a computed run and returns the same
   cut that run would have produced. The seeds are part of the key, never
   guessed. Entries are re-verified on hit: balanced side, recounted
   capacity. *)

module Cache = Bfly_cache.Store
module Key = Bfly_cache.Key
module Codec = Bfly_cache.Codec
module Fp = Bfly_cache.Fingerprint

let cut_encode (c, side) =
  [ ("value", Codec.Int c); ("witness", Codec.bits side) ]

let cut_decode n payload =
  match
    (Codec.get_int payload "value", Codec.get_bits payload "witness" ~capacity:n)
  with
  | Some c, Some side -> Some (c, side)
  | _ -> None

let cut_verify g (c, side) =
  let n = G.n_nodes g in
  let card = Bitset.cardinal side in
  card >= n / 2
  && card <= (n + 1) / 2
  && Bfly_graph.Traverse.boundary_edges g side = c

let cached_kernel ~kernel ~salt ~params ~seeds ~cancel g compute =
  let key =
    Key.make ~solver:("cuts.heuristics." ^ kernel) ~salt ~params
      ~fingerprint:(Fp.int_array (Fp.graph Fp.seed g) seeds)
  in
  match
    Cache.lookup ~key ~decode:(cut_decode (G.n_nodes g)) ~verify:(cut_verify g)
  with
  | Some v -> v
  | None ->
      let v = compute () in
      (* a result degraded by cancellation is still a valid cut, but it must
         not poison the cache: a later uninterrupted run would be served the
         degraded value as if it were the converged one *)
      if not (Cancel.stop cancel) then Cache.put ~key ~encode:cut_encode v;
      v

let random_balanced_side ~rng n =
  let perm = Bfly_graph.Perm.random ~rng n in
  let side = Bitset.create n in
  for i = 0 to (n / 2) - 1 do
    Bitset.add side (Bfly_graph.Perm.apply perm i)
  done;
  side

let edge_multiplicity g a b =
  G.fold_neighbors g a 0 (fun acc w -> if w = b then acc + 1 else acc)

(* ------------------------------------------------------------------ *)
(* Kernighan–Lin                                                       *)
(* ------------------------------------------------------------------ *)

let kl_pass g st =
  let n = G.n_nodes g in
  let locked = Array.make n false in
  let start_cap = State.capacity st in
  let best_cap = ref start_cap in
  let best_len = ref 0 in
  let swaps = ref [] in
  let n_swaps = n / 2 in
  (try
     for step = 1 to n_swaps do
       (* best unlocked node of A by gain *)
       let pick in_a exclude =
         let best = ref (-1) and bg = ref min_int in
         for v = 0 to n - 1 do
           if (not locked.(v)) && State.in_side st v = in_a then begin
             let adj = match exclude with
               | Some a -> 2 * edge_multiplicity g a v
               | None -> 0
             in
             let gv = State.gain st v - adj in
             if gv > !bg then begin
               bg := gv;
               best := v
             end
           end
         done;
         !best
       in
       let a = pick true None in
       if a < 0 then raise Exit;
       let b = pick false (Some a) in
       if b < 0 then raise Exit;
       State.flip st a;
       State.flip st b;
       locked.(a) <- true;
       locked.(b) <- true;
       swaps := (a, b) :: !swaps;
       if State.capacity st < !best_cap then begin
         best_cap := State.capacity st;
         best_len := step
       end
     done
   with Exit -> ());
  (* roll back to the best prefix *)
  let total = List.length !swaps in
  List.iteri
    (fun i (a, b) ->
      if total - i > !best_len then begin
        State.flip st a;
        State.flip st b
      end)
    !swaps;
  !best_cap < start_cap

let kernighan_lin ?rng ?(restarts = 4) ?cancel g =
  let rng = match rng with Some r -> r | None -> default_rng () in
  let cancel = Cancel.resolve cancel in
  Span.time ~name:"heuristics.kl" @@ fun () ->
  let n = G.n_nodes g in
  let seeds = derive_seeds rng restarts in
  cached_kernel ~kernel:"kl" ~salt:"kl/1"
    ~params:[ ("restarts", string_of_int restarts) ]
    ~seeds ~cancel g
  @@ fun () ->
  let restart i =
    let rng = Random.State.make [| 0x6b6c; seeds.(i) |] in
    let st = State.create g (random_balanced_side ~rng n) in
    let improving = ref true in
    while !improving && not (Cancel.stop cancel) do
      improving := kl_pass g st
    done;
    (State.capacity st, State.side st)
  in
  let c, side = Parallel.best_of ~compare:by_capacity ~restarts restart in
  record_kernel ~kernel:"kl" ~restarts ~capacity:c;
  (c, side)

(* ------------------------------------------------------------------ *)
(* Fiduccia–Mattheyses (heap-based single-node moves, tolerance 1)     *)
(* ------------------------------------------------------------------ *)

module Heap = struct
  (* max-heap of (key, payload) on int keys *)
  type 'a t = { mutable a : (int * 'a) array; mutable len : int }

  let create dummy = { a = Array.make 16 (min_int, dummy); len = 0 }

  let push h k v =
    if h.len = Array.length h.a then begin
      let a' = Array.make (2 * h.len) h.a.(0) in
      Array.blit h.a 0 a' 0 h.len;
      h.a <- a'
    end;
    h.a.(h.len) <- (k, v);
    let i = ref h.len in
    h.len <- h.len + 1;
    while !i > 0 && fst h.a.((!i - 1) / 2) < fst h.a.(!i) do
      let p = (!i - 1) / 2 in
      let t = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- t;
      i := p
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.a.(0) in
      h.len <- h.len - 1;
      h.a.(0) <- h.a.(h.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < h.len && fst h.a.(l) > fst h.a.(!m) then m := l;
        if r < h.len && fst h.a.(r) > fst h.a.(!m) then m := r;
        if !m = !i then continue := false
        else begin
          let t = h.a.(!m) in
          h.a.(!m) <- h.a.(!i);
          h.a.(!i) <- t;
          i := !m
        end
      done;
      Some top
    end
end

let fm_pass g st =
  let n = G.n_nodes g in
  let start_cap = State.capacity st in
  let locked = Array.make n false in
  let stamp = Array.make n 0 in
  let heap = Heap.create (0, 0) in
  let push v = Heap.push heap (State.gain st v) (v, stamp.(v)) in
  for v = 0 to n - 1 do
    push v
  done;
  let half = n / 2 in
  let moves = ref [] in
  let best_cap = ref start_cap in
  let best_len = ref 0 in
  let steps = ref 0 in
  let continue = ref true in
  while !continue do
    match Heap.pop heap with
    | None -> continue := false
    | Some (_, (v, s)) ->
        if (not locked.(v)) && s = stamp.(v) then begin
          (* balance: after moving v, side sizes must stay within one of n/2 *)
          let sa = State.side_size st in
          let sa' = if State.in_side st v then sa - 1 else sa + 1 in
          if abs (sa' - half) <= 1 then begin
            State.flip st v;
            locked.(v) <- true;
            incr steps;
            moves := v :: !moves;
            G.iter_neighbors g v (fun w ->
                if not locked.(w) then begin
                  stamp.(w) <- stamp.(w) + 1;
                  push w
                end);
            (* only prefixes with bisection sizes (⌊n/2⌋ or ⌈n/2⌉) are
               candidates for rollback *)
            if State.capacity st < !best_cap && sa' >= half && sa' <= n - half
            then begin
              best_cap := State.capacity st;
              best_len := !steps
            end
          end
        end
  done;
  let total = List.length !moves in
  List.iteri (fun i v -> if total - i > !best_len then State.flip st v) !moves;
  !best_cap < start_cap

let fm_descend ?cancel g st =
  let improving = ref true in
  while !improving && not (Cancel.stop cancel) do
    improving := fm_pass g st
  done

let fiduccia_mattheyses ?rng ?(restarts = 4) ?cancel g =
  let rng = match rng with Some r -> r | None -> default_rng () in
  let cancel = Cancel.resolve cancel in
  Span.time ~name:"heuristics.fm" @@ fun () ->
  let n = G.n_nodes g in
  let seeds = derive_seeds rng restarts in
  cached_kernel ~kernel:"fm" ~salt:"fm/1"
    ~params:[ ("restarts", string_of_int restarts) ]
    ~seeds ~cancel g
  @@ fun () ->
  let restart i =
    let rng = Random.State.make [| 0x666d; seeds.(i) |] in
    let st = State.create g (random_balanced_side ~rng n) in
    fm_descend ?cancel g st;
    (State.capacity st, State.side st)
  in
  let c, side = Parallel.best_of ~compare:by_capacity ~restarts restart in
  record_kernel ~kernel:"fm" ~restarts ~capacity:c;
  (c, side)

(* ------------------------------------------------------------------ *)
(* Spectral                                                            *)
(* ------------------------------------------------------------------ *)

let spectral g =
  (* fully deterministic (fixed start vector, fixed iteration count):
     keyed on the graph alone. Deliberately not cancellable — it is cheap
     and its determinism anchors the portfolio even under tight budgets. *)
  cached_kernel ~kernel:"spectral" ~salt:"spectral/1" ~params:[] ~seeds:[||]
    ~cancel:None g
  @@ fun () ->
  let n = G.n_nodes g in
  let c = float_of_int (G.max_degree g + 1) in
  let v = Array.init n (fun i -> Float.of_int ((i * 2654435761) land 0xffff) -. 32768.) in
  let tmp = Array.make n 0. in
  let deflate x =
    let mean = Array.fold_left ( +. ) 0. x /. float_of_int n in
    Array.iteri (fun i xi -> x.(i) <- xi -. mean) x
  in
  let normalize x =
    let norm = sqrt (Array.fold_left (fun a xi -> a +. (xi *. xi)) 0. x) in
    if norm > 0. then Array.iteri (fun i xi -> x.(i) <- xi /. norm) x
  in
  deflate v;
  normalize v;
  for _ = 1 to 200 + (4 * int_of_float (sqrt (float_of_int n))) do
    (* tmp <- (cI - L) v = (c - deg) v + sum of neighbors *)
    for i = 0 to n - 1 do
      tmp.(i) <- (c -. float_of_int (G.degree g i)) *. v.(i)
    done;
    G.iter_edges g (fun a b ->
        tmp.(a) <- tmp.(a) +. v.(b);
        tmp.(b) <- tmp.(b) +. v.(a));
    Array.blit tmp 0 v 0 n;
    deflate v;
    normalize v
  done;
  (* median split: the n/2 smallest coordinates form side A *)
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare v.(i) v.(j)) idx;
  let side = Bitset.create n in
  for r = 0 to (n / 2) - 1 do
    Bitset.add side idx.(r)
  done;
  let st = State.create g side in
  fm_descend g st;
  (State.capacity st, State.side st)

(* ------------------------------------------------------------------ *)
(* Simulated annealing                                                 *)
(* ------------------------------------------------------------------ *)

let anneal_once ?cancel ~rng ~steps g =
  let n = G.n_nodes g in
  let side = random_balanced_side ~rng n in
  let st = State.create g side in
  let a_nodes = ref [] and b_nodes = ref [] in
  for v = 0 to n - 1 do
    if State.in_side st v then a_nodes := v :: !a_nodes else b_nodes := v :: !b_nodes
  done;
  let a_arr = Array.of_list !a_nodes and b_arr = Array.of_list !b_nodes in
  (* a_arr.(i) is some node currently in A; maintained as we swap *)
  let best_cap = ref (State.capacity st) in
  let best_side = ref (State.side st) in
  let t0 = 3.0 and t1 = 0.05 in
  (try
  for step = 0 to steps - 1 do
    if step land 1023 = 1023 && Cancel.stop cancel then raise Exit;
    let temp = t0 *. ((t1 /. t0) ** (float_of_int step /. float_of_int steps)) in
    let ia = Random.State.int rng (Array.length a_arr) in
    let ib = Random.State.int rng (Array.length b_arr) in
    let a = a_arr.(ia) and b = b_arr.(ib) in
    let delta =
      -(State.gain st a + State.gain st b - (2 * edge_multiplicity g a b))
    in
    if delta <= 0 || Random.State.float rng 1.0 < exp (-.float_of_int delta /. temp)
    then begin
      State.flip st a;
      State.flip st b;
      a_arr.(ia) <- b;
      b_arr.(ib) <- a;
      if State.capacity st < !best_cap then begin
        best_cap := State.capacity st;
        best_side := State.side st
      end
    end
  done
  with Exit -> ());
  (!best_cap, !best_side)

let annealing ?rng ?steps ?(restarts = 1) ?cancel g =
  let rng = match rng with Some r -> r | None -> default_rng () in
  let cancel = Cancel.resolve cancel in
  Span.time ~name:"heuristics.sa" @@ fun () ->
  let n = G.n_nodes g in
  let steps = match steps with Some s -> s | None -> min 2_000_000 (400 * n) in
  let seeds = derive_seeds rng restarts in
  cached_kernel ~kernel:"sa" ~salt:"sa/1"
    ~params:
      [ ("restarts", string_of_int restarts); ("steps", string_of_int steps) ]
    ~seeds ~cancel g
  @@ fun () ->
  let restart i =
    anneal_once ?cancel ~rng:(Random.State.make [| 0x5a5a; seeds.(i) |]) ~steps g
  in
  let c, side = Parallel.best_of ~compare:by_capacity ~restarts restart in
  record_kernel ~kernel:"sa" ~restarts ~capacity:c;
  (c, side)

let best_of ?rng ?cancel g =
  let rng = match rng with Some r -> r | None -> default_rng () in
  (* resolve the ambient token once, here, so every member sees the same
     token even when run on pool domains (the ambient slot is global, but
     resolving eagerly keeps the portfolio's behavior independent of when
     each member happens to start) *)
  let cancel = Cancel.resolve cancel in
  Span.time ~name:"heuristics.portfolio" @@ fun () ->
  let n = G.n_nodes g in
  (* each method gets its own rng seeded up front, so the portfolio can run
     its members concurrently (each member also parallelizes its restarts
     internally — the pool handles nested batches) without the shared-rng
     sequencing the sequential loop used to impose *)
  let seeds = derive_seeds rng 4 in
  let seeded i = Random.State.make [| 0xbe57; seeds.(i) |] in
  let candidates =
    if n <= 2000 then
      [|
        ("kernighan-lin", fun () -> kernighan_lin ~rng:(seeded 0) ?cancel g);
        ( "fiduccia-mattheyses",
          fun () -> fiduccia_mattheyses ~rng:(seeded 1) ?cancel g );
        ("spectral", fun () -> spectral g);
        ("annealing", fun () -> annealing ~rng:(seeded 3) ?cancel g);
      |]
    else
      [|
        ( "fiduccia-mattheyses",
          fun () -> fiduccia_mattheyses ~rng:(seeded 1) ~restarts:2 ?cancel g );
        ("spectral", fun () -> spectral g);
      |]
  in
  let c, side, name =
    Parallel.best_of
      ~compare:(fun (c1, _, _) (c2, _, _) -> Stdlib.compare c1 c2)
      ~restarts:(Array.length candidates)
      (fun i ->
        let name, run = candidates.(i) in
        let c, side = run () in
        (c, side, name))
  in
  Metrics.set (Metrics.gauge "heuristics.portfolio.best_capacity")
    (float_of_int c);
  (c, side, name)
