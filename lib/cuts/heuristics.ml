module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module Parallel = Bfly_graph.Parallel
module Metrics = Bfly_obs.Metrics
module Span = Bfly_obs.Span
module State = Cut.State
module Cancel = Bfly_resil.Cancel

let default_rng () = Random.State.make [| 0x5eed |]

(* Restart seeds are drawn sequentially from the caller's rng so the work
   list is fixed before any domain runs: results depend on the seed, never
   on the domain count or completion order. *)
let derive_seeds rng k =
  let seeds = Array.make k 0 in
  for i = 0 to k - 1 do
    seeds.(i) <- Random.State.bits rng
  done;
  seeds

(* Lowest capacity wins; equal capacities keep the earliest restart, like a
   sequential first-wins loop. *)
let by_capacity (c1, _) (c2, _) = Stdlib.compare c1 c2

let record_kernel ~kernel ~restarts ~capacity =
  Metrics.add (Metrics.counter ("heuristics." ^ kernel ^ ".restarts")) restarts;
  Metrics.set
    (Metrics.gauge ("heuristics." ^ kernel ^ ".best_capacity"))
    (float_of_int capacity)

(* ---- result cache ----
   Heuristic results are deterministic in (graph, params, restart seeds):
   the seeds are drawn from the caller's rng *before* the cache is
   consulted — exactly as they are drawn before dispatch — so a hit leaves
   the rng stream in the same state as a computed run and returns the same
   cut that run would have produced. The seeds are part of the key, never
   guessed. Entries are re-verified on hit: balanced side, recounted
   capacity. *)

module Cache = Bfly_cache.Store
module Key = Bfly_cache.Key
module Codec = Bfly_cache.Codec
module Fp = Bfly_cache.Fingerprint

let cut_encode (c, side) =
  [ ("value", Codec.Int c); ("witness", Codec.bits side) ]

let cut_decode n payload =
  match
    (Codec.get_int payload "value", Codec.get_bits payload "witness" ~capacity:n)
  with
  | Some c, Some side -> Some (c, side)
  | _ -> None

let cut_verify g (c, side) =
  let n = G.n_nodes g in
  let card = Bitset.cardinal side in
  card >= n / 2
  && card <= (n + 1) / 2
  && Bfly_graph.Traverse.boundary_edges g side = c

let cached_kernel ~kernel ~salt ~params ~seeds ~cancel g compute =
  let key =
    Key.make ~solver:("cuts.heuristics." ^ kernel) ~salt ~params
      ~fingerprint:(Fp.int_array (Fp.graph Fp.seed g) seeds)
  in
  match
    Cache.lookup ~key ~decode:(cut_decode (G.n_nodes g)) ~verify:(cut_verify g)
  with
  | Some v -> v
  | None ->
      let v = compute () in
      (* a result degraded by cancellation is still a valid cut, but it must
         not poison the cache: a later uninterrupted run would be served the
         degraded value as if it were the converged one *)
      if not (Cancel.stop cancel) then Cache.put ~key ~encode:cut_encode v;
      v

let random_balanced_side ~rng n =
  let perm = Bfly_graph.Perm.random ~rng n in
  let side = Bitset.create n in
  for i = 0 to (n / 2) - 1 do
    Bitset.add side (Bfly_graph.Perm.apply perm i)
  done;
  side

(* ------------------------------------------------------------------ *)
(* Kernighan–Lin                                                       *)
(* ------------------------------------------------------------------ *)

let bpw = Bitset.bits_per_word
let kl_arena = Arena.create ()

(* One KL improvement pass: n/2 best-gain swap steps, rolled back to the
   cheapest prefix. The candidate picks are word-parallel scans: eligible
   movers of a side are the bits of (side-words, complemented for B) masked
   by the negated lock words, extracted lowest-first so index order — and
   therefore first-wins tie-breaking — matches the naive ascending scan
   exactly. The second pick subtracts twice the multiplicity of edges to
   the first node; those multiplicities are scattered into a scratch array
   from the CSR row once per step instead of being recounted per
   candidate. *)
let kl_pass g st =
  let n = G.n_nodes g in
  let offsets = G.csr_offsets g and adj = G.csr_adj g in
  let locked = Arena.set kl_arena ~slot:0 n in
  let lw = Bitset.unsafe_words locked in
  let sw = State.side_words st in
  let gains = State.gains_array st in
  let amult = Arena.ints kl_arena ~slot:0 n in
  let n_swaps = n / 2 in
  let swap_a = Arena.raw_ints kl_arena ~slot:1 (n_swaps + 1) in
  let swap_b = Arena.raw_ints kl_arena ~slot:2 (n_swaps + 1) in
  let nw = (n + bpw - 1) / bpw in
  let last_mask =
    let r = n mod bpw in
    if r = 0 then -1 else (1 lsl r) - 1
  in
  let start_cap = State.capacity st in
  let best_cap = ref start_cap in
  let best_len = ref 0 in
  let count = ref 0 in
  (* best unlocked node of A by gain (first index wins ties) *)
  let pick_a () =
    let best = ref (-1) and bg = ref min_int in
    for w = 0 to nw - 1 do
      let valid = if w = nw - 1 then last_mask else -1 in
      let bits =
        ref (Array.unsafe_get sw w land lnot (Array.unsafe_get lw w) land valid)
      in
      while !bits <> 0 do
        let x = !bits in
        let v = (w * bpw) + Bitset.popcount_word ((x land -x) - 1) in
        let gv = Array.unsafe_get gains v in
        if gv > !bg then begin
          bg := gv;
          best := v
        end;
        bits := x land (x - 1)
      done
    done;
    !best
  in
  (* best unlocked node of B by gain adjusted for edges to [a] (already
     scattered, doubled, into [amult]) *)
  let pick_b () =
    let best = ref (-1) and bg = ref min_int in
    for w = 0 to nw - 1 do
      let valid = if w = nw - 1 then last_mask else -1 in
      let bits =
        ref
          (lnot (Array.unsafe_get sw w)
          land lnot (Array.unsafe_get lw w)
          land valid)
      in
      while !bits <> 0 do
        let x = !bits in
        let v = (w * bpw) + Bitset.popcount_word ((x land -x) - 1) in
        let gv = Array.unsafe_get gains v - Array.unsafe_get amult v in
        if gv > !bg then begin
          bg := gv;
          best := v
        end;
        bits := x land (x - 1)
      done
    done;
    !best
  in
  (try
     for step = 1 to n_swaps do
       let a = pick_a () in
       if a < 0 then raise Exit;
       for i = offsets.(a) to offsets.(a + 1) - 1 do
         let u = Array.unsafe_get adj i in
         amult.(u) <- amult.(u) + 2
       done;
       let b = pick_b () in
       for i = offsets.(a) to offsets.(a + 1) - 1 do
         amult.(Array.unsafe_get adj i) <- 0
       done;
       if b < 0 then raise Exit;
       State.flip st a;
       State.flip st b;
       Bitset.add locked a;
       Bitset.add locked b;
       swap_a.(!count) <- a;
       swap_b.(!count) <- b;
       incr count;
       if State.capacity st < !best_cap then begin
         best_cap := State.capacity st;
         best_len := step
       end
     done
   with Exit -> ());
  (* roll back to the best prefix *)
  for s = !count - 1 downto !best_len do
    State.flip st swap_a.(s);
    State.flip st swap_b.(s)
  done;
  !best_cap < start_cap

let kernighan_lin ?rng ?(restarts = 4) ?cancel g =
  let rng = match rng with Some r -> r | None -> default_rng () in
  let cancel = Cancel.resolve cancel in
  Span.time ~name:"heuristics.kl" @@ fun () ->
  let n = G.n_nodes g in
  let seeds = derive_seeds rng restarts in
  cached_kernel ~kernel:"kl" ~salt:"kl/1"
    ~params:[ ("restarts", string_of_int restarts) ]
    ~seeds ~cancel g
  @@ fun () ->
  let restart i =
    let rng = Random.State.make [| 0x6b6c; seeds.(i) |] in
    let st = State.create g (random_balanced_side ~rng n) in
    let improving = ref true in
    while !improving && not (Cancel.stop cancel) do
      improving := kl_pass g st
    done;
    (State.capacity st, State.side st)
  in
  let c, side = Parallel.best_of ~compare:by_capacity ~restarts restart in
  record_kernel ~kernel:"kl" ~restarts ~capacity:c;
  (c, side)

(* ------------------------------------------------------------------ *)
(* Fiduccia–Mattheyses (heap-based single-node moves, tolerance 1)     *)
(* ------------------------------------------------------------------ *)

let fm_arena = Arena.create ()

(* One FM pass: single-node moves popped from a flat three-array binary
   max-heap (keys / nodes / stamps in parallel arrays — no tuple boxing),
   stale entries lapsed by stamp, rolled back to the best balanced prefix.
   The sift logic mirrors the boxed heap this replaces comparison for
   comparison, so the pop order — including ties — is unchanged. Heap
   storage is arena scratch pre-sized to the worst case (n initial pushes
   plus one per adjacency arc), so a pass never reallocates. *)
let fm_pass g st =
  let n = G.n_nodes g in
  let offsets = G.csr_offsets g and adj = G.csr_adj g in
  let start_cap = State.capacity st in
  let locked = Arena.ints fm_arena ~slot:0 n in
  let stamp = Arena.ints fm_arena ~slot:1 n in
  let moves = Arena.raw_ints fm_arena ~slot:2 (n + 1) in
  let heap_cap = n + (2 * G.n_edges g) + 1 in
  let hk = Arena.raw_ints fm_arena ~slot:3 heap_cap in
  let hv = Arena.raw_ints fm_arena ~slot:4 heap_cap in
  let hs = Arena.raw_ints fm_arena ~slot:5 heap_cap in
  let hlen = ref 0 in
  let gains = State.gains_array st in
  let push v =
    let i = ref !hlen in
    hk.(!i) <- Array.unsafe_get gains v;
    hv.(!i) <- v;
    hs.(!i) <- Array.unsafe_get stamp v;
    incr hlen;
    while
      !i > 0 && Array.unsafe_get hk ((!i - 1) / 2) < Array.unsafe_get hk !i
    do
      let p = (!i - 1) / 2 and c = !i in
      let tk = hk.(p) and tv = hv.(p) and ts = hs.(p) in
      hk.(p) <- hk.(c);
      hv.(p) <- hv.(c);
      hs.(p) <- hs.(c);
      hk.(c) <- tk;
      hv.(c) <- tv;
      hs.(c) <- ts;
      i := p
    done
  in
  for v = 0 to n - 1 do
    push v
  done;
  let half = n / 2 in
  let best_cap = ref start_cap in
  let best_len = ref 0 in
  let steps = ref 0 in
  let continue = ref true in
  while !continue do
    if !hlen = 0 then continue := false
    else begin
      let v = hv.(0) and s = hs.(0) in
      let len = !hlen - 1 in
      hlen := len;
      hk.(0) <- hk.(len);
      hv.(0) <- hv.(len);
      hs.(0) <- hs.(len);
      let i = ref 0 in
      let sifting = ref true in
      while !sifting do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < len && Array.unsafe_get hk l > Array.unsafe_get hk !m then
          m := l;
        if r < len && Array.unsafe_get hk r > Array.unsafe_get hk !m then
          m := r;
        if !m = !i then sifting := false
        else begin
          let a = !m and b = !i in
          let tk = hk.(a) and tv = hv.(a) and ts = hs.(a) in
          hk.(a) <- hk.(b);
          hv.(a) <- hv.(b);
          hs.(a) <- hs.(b);
          hk.(b) <- tk;
          hv.(b) <- tv;
          hs.(b) <- ts;
          i := !m
        end
      done;
      if Array.unsafe_get locked v = 0 && s = Array.unsafe_get stamp v then begin
        (* balance: after moving v, side sizes must stay within one of n/2 *)
        let sa = State.side_size st in
        let sa' = if State.in_side st v then sa - 1 else sa + 1 in
        if abs (sa' - half) <= 1 then begin
          State.flip st v;
          Array.unsafe_set locked v 1;
          moves.(!steps) <- v;
          incr steps;
          for i = offsets.(v) to offsets.(v + 1) - 1 do
            let w = Array.unsafe_get adj i in
            if Array.unsafe_get locked w = 0 then begin
              Array.unsafe_set stamp w (Array.unsafe_get stamp w + 1);
              push w
            end
          done;
          (* only prefixes with bisection sizes (⌊n/2⌋ or ⌈n/2⌉) are
             candidates for rollback *)
          if State.capacity st < !best_cap && sa' >= half && sa' <= n - half
          then begin
            best_cap := State.capacity st;
            best_len := !steps
          end
        end
      end
    end
  done;
  for s = !steps - 1 downto !best_len do
    State.flip st moves.(s)
  done;
  !best_cap < start_cap

let fm_descend ?cancel g st =
  let improving = ref true in
  while !improving && not (Cancel.stop cancel) do
    improving := fm_pass g st
  done

let fiduccia_mattheyses ?rng ?(restarts = 4) ?cancel g =
  let rng = match rng with Some r -> r | None -> default_rng () in
  let cancel = Cancel.resolve cancel in
  Span.time ~name:"heuristics.fm" @@ fun () ->
  let n = G.n_nodes g in
  let seeds = derive_seeds rng restarts in
  cached_kernel ~kernel:"fm" ~salt:"fm/1"
    ~params:[ ("restarts", string_of_int restarts) ]
    ~seeds ~cancel g
  @@ fun () ->
  let restart i =
    let rng = Random.State.make [| 0x666d; seeds.(i) |] in
    let st = State.create g (random_balanced_side ~rng n) in
    fm_descend ?cancel g st;
    (State.capacity st, State.side st)
  in
  let c, side = Parallel.best_of ~compare:by_capacity ~restarts restart in
  record_kernel ~kernel:"fm" ~restarts ~capacity:c;
  (c, side)

(* ------------------------------------------------------------------ *)
(* Spectral                                                            *)
(* ------------------------------------------------------------------ *)

let spectral g =
  (* fully deterministic (fixed start vector, fixed iteration count):
     keyed on the graph alone. Deliberately not cancellable — it is cheap
     and its determinism anchors the portfolio even under tight budgets. *)
  cached_kernel ~kernel:"spectral" ~salt:"spectral/1" ~params:[] ~seeds:[||]
    ~cancel:None g
  @@ fun () ->
  let n = G.n_nodes g in
  let c = float_of_int (G.max_degree g + 1) in
  let v = Array.init n (fun i -> Float.of_int ((i * 2654435761) land 0xffff) -. 32768.) in
  let tmp = Array.make n 0. in
  let deflate x =
    let mean = Array.fold_left ( +. ) 0. x /. float_of_int n in
    Array.iteri (fun i xi -> x.(i) <- xi -. mean) x
  in
  let normalize x =
    let norm = sqrt (Array.fold_left (fun a xi -> a +. (xi *. xi)) 0. x) in
    if norm > 0. then Array.iteri (fun i xi -> x.(i) <- xi /. norm) x
  in
  deflate v;
  normalize v;
  for _ = 1 to 200 + (4 * int_of_float (sqrt (float_of_int n))) do
    (* tmp <- (cI - L) v = (c - deg) v + sum of neighbors *)
    for i = 0 to n - 1 do
      tmp.(i) <- (c -. float_of_int (G.degree g i)) *. v.(i)
    done;
    G.iter_edges g (fun a b ->
        tmp.(a) <- tmp.(a) +. v.(b);
        tmp.(b) <- tmp.(b) +. v.(a));
    Array.blit tmp 0 v 0 n;
    deflate v;
    normalize v
  done;
  (* median split: the n/2 smallest coordinates form side A *)
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare v.(i) v.(j)) idx;
  let side = Bitset.create n in
  for r = 0 to (n / 2) - 1 do
    Bitset.add side idx.(r)
  done;
  let st = State.create g side in
  fm_descend g st;
  (State.capacity st, State.side st)

(* ------------------------------------------------------------------ *)
(* Simulated annealing                                                 *)
(* ------------------------------------------------------------------ *)

(* The cooling schedule is a pure function of the step budget: temperature
   at step k is t0 * (t1/t0)^(k/steps), and it only gates uphill proposals.
   Each restart used to evaluate that pow on every step; instead a
   per-(domain, steps) table caches each step's temperature the first time
   an uphill proposal needs it (0.0 marks an unfilled entry — real
   temperatures are strictly positive). One-shot runs skip the pow on every
   downhill step; restarts and repeated runs reuse the filled table.
   Entries are computed by the exact expression the inline code used, so
   every acceptance test sees bit-identical temperatures. *)
let sa_t0 = 3.0
let sa_t1 = 0.05

let sa_schedule_slot : (int * float array) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let sa_schedule steps =
  let slot = Domain.DLS.get sa_schedule_slot in
  match !slot with
  | Some (s, temps) when s = steps -> temps
  | _ ->
      let temps = Array.make steps 0.0 in
      slot := Some (steps, temps);
      temps

let anneal_once ?cancel ~rng ~steps g =
  let n = G.n_nodes g in
  let offsets = G.csr_offsets g and adj = G.csr_adj g in
  let temps = sa_schedule steps in
  let side = random_balanced_side ~rng n in
  let st = State.create g side in
  let gains = State.gains_array st in
  (* populated in descending node order (matching the reversed accumulation
     lists this replaces), so a given rng draw picks the same node *)
  let na = State.side_size st in
  let a_arr = Array.make (max na 1) 0 and b_arr = Array.make (max (n - na) 1) 0 in
  let ai = ref 0 and bi = ref 0 in
  for v = n - 1 downto 0 do
    if State.in_side st v then begin
      a_arr.(!ai) <- v;
      incr ai
    end
    else begin
      b_arr.(!bi) <- v;
      incr bi
    end
  done;
  (* a_arr.(i) is some node currently in A; maintained as we swap *)
  let cap = ref (State.capacity st) in
  let best_cap = ref !cap in
  let best_side = ref (State.side st) in
  let la = na and lb = n - na in
  let fsteps = float_of_int steps in
  let sw = State.side_words st in
  (* move node v to the other side: the word-and-gain half of State.flip,
     inlined; the swap's capacity change is [delta], accounted by the
     caller, and a swap never changes the side sizes *)
  let flip v =
    let wv = Bitset.word_index v and bv = Bitset.bit_index v in
    let old_word = Array.unsafe_get sw wv in
    let wa = (old_word lsr bv) land 1 in
    Array.unsafe_set gains v (-Array.unsafe_get gains v);
    Array.unsafe_set sw wv (old_word lxor (1 lsl bv));
    for i = Array.unsafe_get offsets v to Array.unsafe_get offsets (v + 1) - 1
    do
      let w = Array.unsafe_get adj i in
      let mw = (Array.unsafe_get sw (Bitset.word_index w) lsr (Bitset.bit_index w)) land 1 in
      Array.unsafe_set gains w
        (Array.unsafe_get gains w + 2 - (4 * (mw lxor wa)))
    done
  in
  (try
  for step = 0 to steps - 1 do
    if step land 1023 = 1023 && Cancel.stop cancel then raise Exit;
    let ia = Random.State.int rng la in
    let ib = Random.State.int rng lb in
    let a = Array.unsafe_get a_arr ia and b = Array.unsafe_get b_arr ib in
    let mult = ref 0 in
    for i = Array.unsafe_get offsets a to Array.unsafe_get offsets (a + 1) - 1
    do
      if Array.unsafe_get adj i = b then incr mult
    done;
    let delta =
      -(Array.unsafe_get gains a + Array.unsafe_get gains b - (2 * !mult))
    in
    (* the rng draw happens iff delta > 0, exactly as the short-circuit
       always ordered it *)
    if
      delta <= 0
      ||
      let temp =
        let t = Array.unsafe_get temps step in
        if t > 0.0 then t
        else begin
          let t =
            sa_t0 *. ((sa_t1 /. sa_t0) ** (float_of_int step /. fsteps))
          in
          Array.unsafe_set temps step t;
          t
        end
      in
      Random.State.float rng 1.0 < exp (-.float_of_int delta /. temp)
    then begin
      flip a;
      flip b;
      Array.unsafe_set a_arr ia b;
      Array.unsafe_set b_arr ib a;
      cap := !cap + delta;
      if !cap < !best_cap then begin
        best_cap := !cap;
        best_side := State.side st
      end
    end
  done
  with Exit -> ());
  (!best_cap, !best_side)

let annealing ?rng ?steps ?(restarts = 1) ?cancel g =
  let rng = match rng with Some r -> r | None -> default_rng () in
  let cancel = Cancel.resolve cancel in
  Span.time ~name:"heuristics.sa" @@ fun () ->
  let n = G.n_nodes g in
  let steps = match steps with Some s -> s | None -> min 2_000_000 (400 * n) in
  let seeds = derive_seeds rng restarts in
  cached_kernel ~kernel:"sa" ~salt:"sa/1"
    ~params:
      [ ("restarts", string_of_int restarts); ("steps", string_of_int steps) ]
    ~seeds ~cancel g
  @@ fun () ->
  let restart i =
    anneal_once ?cancel ~rng:(Random.State.make [| 0x5a5a; seeds.(i) |]) ~steps g
  in
  let c, side = Parallel.best_of ~compare:by_capacity ~restarts restart in
  record_kernel ~kernel:"sa" ~restarts ~capacity:c;
  (c, side)

let best_of ?rng ?cancel g =
  let rng = match rng with Some r -> r | None -> default_rng () in
  (* resolve the ambient token once, here, so every member sees the same
     token even when run on pool domains (the ambient slot is global, but
     resolving eagerly keeps the portfolio's behavior independent of when
     each member happens to start) *)
  let cancel = Cancel.resolve cancel in
  Span.time ~name:"heuristics.portfolio" @@ fun () ->
  let n = G.n_nodes g in
  (* each method gets its own rng seeded up front, so the portfolio can run
     its members concurrently (each member also parallelizes its restarts
     internally — the pool handles nested batches) without the shared-rng
     sequencing the sequential loop used to impose *)
  let seeds = derive_seeds rng 4 in
  let seeded i = Random.State.make [| 0xbe57; seeds.(i) |] in
  let candidates =
    if n <= 2000 then
      [|
        ("kernighan-lin", fun () -> kernighan_lin ~rng:(seeded 0) ?cancel g);
        ( "fiduccia-mattheyses",
          fun () -> fiduccia_mattheyses ~rng:(seeded 1) ?cancel g );
        ("spectral", fun () -> spectral g);
        ("annealing", fun () -> annealing ~rng:(seeded 3) ?cancel g);
      |]
    else
      [|
        ( "fiduccia-mattheyses",
          fun () -> fiduccia_mattheyses ~rng:(seeded 1) ~restarts:2 ?cancel g );
        ("spectral", fun () -> spectral g);
      |]
  in
  let c, side, name =
    Parallel.best_of
      ~compare:(fun (c1, _, _) (c2, _, _) -> Stdlib.compare c1 c2)
      ~restarts:(Array.length candidates)
      (fun i ->
        let name, run = candidates.(i) in
        let c, side = run () in
        (c, side, name))
  in
  Metrics.set (Metrics.gauge "heuristics.portfolio.best_capacity")
    (float_of_int c);
  (c, side, name)
