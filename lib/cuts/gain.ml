type t = {
  offset : int; (* bucket index of gain 0; buckets span 2*offset+1 slots *)
  head : int array; (* bucket -> first node, or -1 *)
  next : int array; (* node -> successor in its bucket, or -1 *)
  prev : int array; (* node -> predecessor, or -1 when it is the head *)
  bucket : int array; (* node -> its bucket, or -1 when not enqueued *)
  mutable best : int; (* upper bound on the highest non-empty bucket *)
  mutable size : int;
}

let create ~max_gain n =
  if max_gain < 0 then invalid_arg "Gain.create: max_gain must be >= 0";
  if n < 0 then invalid_arg "Gain.create: negative capacity";
  {
    offset = max_gain;
    head = Array.make ((2 * max_gain) + 1) (-1);
    next = Array.make (max n 1) (-1);
    prev = Array.make (max n 1) (-1);
    bucket = Array.make (max n 1) (-1);
    best = -1;
    size = 0;
  }

let mem t v = t.bucket.(v) >= 0

let gain t v =
  let b = t.bucket.(v) in
  if b < 0 then invalid_arg "Gain.gain: node not enqueued";
  b - t.offset

let cardinal t = t.size

let insert t v g =
  if mem t v then invalid_arg "Gain.insert: node already enqueued";
  let b = g + t.offset in
  if b < 0 || b >= Array.length t.head then
    invalid_arg "Gain.insert: gain out of range";
  let h = t.head.(b) in
  t.next.(v) <- h;
  t.prev.(v) <- -1;
  if h >= 0 then t.prev.(h) <- v;
  t.head.(b) <- v;
  t.bucket.(v) <- b;
  if b > t.best then t.best <- b;
  t.size <- t.size + 1

let remove t v =
  let b = t.bucket.(v) in
  if b < 0 then invalid_arg "Gain.remove: node not enqueued";
  let p = t.prev.(v) and n = t.next.(v) in
  if p >= 0 then t.next.(p) <- n else t.head.(b) <- n;
  if n >= 0 then t.prev.(n) <- p;
  t.bucket.(v) <- -1;
  t.size <- t.size - 1

let update t v g =
  let b = t.bucket.(v) in
  if b < 0 then invalid_arg "Gain.update: node not enqueued";
  if b - t.offset <> g then begin
    remove t v;
    insert t v g
  end

let peek t =
  if t.size = 0 then None
  else begin
    (* size > 0 guarantees a non-empty bucket at or below [best] *)
    while t.head.(t.best) < 0 do
      t.best <- t.best - 1
    done;
    Some (t.head.(t.best), t.best - t.offset)
  end

let pop t =
  match peek t with
  | None -> None
  | Some (v, _) as r ->
      remove t v;
      r
