type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let make_ints len : ints = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len

type t = {
  mutable offset : int; (* bucket index of gain 0; buckets span 2*offset+1 slots *)
  mutable nbuckets : int; (* logical bucket count, <= dim head *)
  mutable n : int; (* logical node capacity, <= dim next/prev/bucket *)
  mutable head : ints; (* bucket -> first node, or -1 *)
  mutable next : ints; (* node -> successor in its bucket, or -1 *)
  mutable prev : ints; (* node -> predecessor, or -1 when it is the head *)
  mutable bucket : ints; (* node -> its bucket, or -1 when not enqueued *)
  mutable best : int; (* upper bound on the highest non-empty bucket *)
  mutable size : int;
}

let fill_neg (a : ints) len =
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set a i (-1)
  done

let create ~max_gain n =
  if max_gain < 0 then invalid_arg "Gain.create: max_gain must be >= 0";
  if n < 0 then invalid_arg "Gain.create: negative capacity";
  let nbuckets = (2 * max_gain) + 1 in
  let nn = max n 1 in
  let t =
    {
      offset = max_gain;
      nbuckets;
      n = nn;
      head = make_ints nbuckets;
      next = make_ints nn;
      prev = make_ints nn;
      bucket = make_ints nn;
      best = -1;
      size = 0;
    }
  in
  fill_neg t.head nbuckets;
  fill_neg t.next nn;
  fill_neg t.prev nn;
  fill_neg t.bucket nn;
  t

let reset t ~max_gain n =
  if max_gain < 0 then invalid_arg "Gain.reset: max_gain must be >= 0";
  if n < 0 then invalid_arg "Gain.reset: negative capacity";
  let nbuckets = (2 * max_gain) + 1 in
  let nn = max n 1 in
  if nbuckets > Bigarray.Array1.dim t.head then
    t.head <- make_ints (max nbuckets (2 * Bigarray.Array1.dim t.head));
  if nn > Bigarray.Array1.dim t.next then begin
    let cap = max nn (2 * Bigarray.Array1.dim t.next) in
    t.next <- make_ints cap;
    t.prev <- make_ints cap;
    t.bucket <- make_ints cap
  end;
  t.offset <- max_gain;
  t.nbuckets <- nbuckets;
  t.n <- nn;
  (* next/prev need no reset: they are only read for enqueued nodes, and
     insert writes them first *)
  fill_neg t.head nbuckets;
  fill_neg t.bucket nn;
  t.best <- -1;
  t.size <- 0

(* The first read of [bucket.(v)] in each entry point is bounds-checked, so
   an out-of-range node raises Invalid_argument as the boxed structure did;
   interior links (heads, prev/next chains) hold validated node ids and are
   accessed unchecked. *)
let mem t v = Bigarray.Array1.get t.bucket v >= 0

let gain t v =
  let b = Bigarray.Array1.get t.bucket v in
  if b < 0 then invalid_arg "Gain.gain: node not enqueued";
  b - t.offset

let cardinal t = t.size

let insert t v g =
  if mem t v then invalid_arg "Gain.insert: node already enqueued";
  let b = g + t.offset in
  if b < 0 || b >= t.nbuckets then invalid_arg "Gain.insert: gain out of range";
  let h = Bigarray.Array1.unsafe_get t.head b in
  Bigarray.Array1.unsafe_set t.next v h;
  Bigarray.Array1.unsafe_set t.prev v (-1);
  if h >= 0 then Bigarray.Array1.unsafe_set t.prev h v;
  Bigarray.Array1.unsafe_set t.head b v;
  Bigarray.Array1.unsafe_set t.bucket v b;
  if b > t.best then t.best <- b;
  t.size <- t.size + 1

let remove t v =
  let b = Bigarray.Array1.get t.bucket v in
  if b < 0 then invalid_arg "Gain.remove: node not enqueued";
  let p = Bigarray.Array1.unsafe_get t.prev v
  and n = Bigarray.Array1.unsafe_get t.next v in
  if p >= 0 then Bigarray.Array1.unsafe_set t.next p n
  else Bigarray.Array1.unsafe_set t.head b n;
  if n >= 0 then Bigarray.Array1.unsafe_set t.prev n p;
  Bigarray.Array1.unsafe_set t.bucket v (-1);
  t.size <- t.size - 1

let update t v g =
  let b = Bigarray.Array1.get t.bucket v in
  if b < 0 then invalid_arg "Gain.update: node not enqueued";
  if b - t.offset <> g then begin
    remove t v;
    insert t v g
  end

let peek t =
  if t.size = 0 then None
  else begin
    (* size > 0 guarantees a non-empty bucket at or below [best] *)
    while Bigarray.Array1.unsafe_get t.head t.best < 0 do
      t.best <- t.best - 1
    done;
    Some (Bigarray.Array1.unsafe_get t.head t.best, t.best - t.offset)
  end

let pop t =
  match peek t with
  | None -> None
  | Some (v, _) as r ->
      remove t v;
      r
