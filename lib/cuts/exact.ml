module G = Bfly_graph.Graph
module Bitset = Bfly_graph.Bitset
module Traverse = Bfly_graph.Traverse
module Parallel = Bfly_graph.Parallel
module Metrics = Bfly_obs.Metrics
module Span = Bfly_obs.Span
module Cancel = Bfly_resil.Cancel

(* ------------------------------------------------------------------ *)
(* Exhaustive enumeration (oracle for tests; n <= ~26)                 *)
(* ------------------------------------------------------------------ *)

let bisection_width_exhaustive ?u g =
  let n = G.n_nodes g in
  if n = 0 then invalid_arg "Exact: empty graph";
  if n > 62 then invalid_arg "Exact.bisection_width_exhaustive: too many nodes";
  let u_mask =
    match u with
    | None -> (1 lsl n) - 1
    | Some s -> Bitset.fold s 0 (fun m i -> m lor (1 lsl i))
  in
  let u_tot =
    let rec pop x acc = if x = 0 then acc else pop (x land (x - 1)) (acc + 1) in
    pop u_mask 0
  in
  let lo_bal = u_tot / 2 and hi_bal = (u_tot + 1) / 2 in
  let edges = G.edges g in
  let capacity m =
    Array.fold_left
      (fun acc (a, b) ->
        if (m lsr a) land 1 <> (m lsr b) land 1 then acc + 1 else acc)
      0 edges
  in
  (* node 0 is fixed in S; enumerate the other n-1 nodes *)
  let eval mask_rest =
    let m = (mask_rest lsl 1) lor 1 in
    let in_u =
      let rec pop x acc = if x = 0 then acc else pop (x land (x - 1)) (acc + 1) in
      pop (m land u_mask) 0
    in
    if in_u >= lo_bal && in_u <= hi_bal then Some (capacity m, m) else None
  in
  let best =
    Parallel.reduce_range ~lo:0 ~hi:(1 lsl (n - 1)) ~init:None ~f:eval
      ~combine:(fun a b ->
        match (a, b) with
        | None, x | x, None -> x
        | (Some (c, _) as a), (Some (c', _) as b) -> if c' < c then b else a)
  in
  match best with
  | None -> invalid_arg "Exact: infeasible balance constraint"
  | Some (c, m) ->
      let side = Bitset.create n in
      for i = 0 to n - 1 do
        if (m lsr i) land 1 = 1 then Bitset.add side i
      done;
      (c, side)

(* ------------------------------------------------------------------ *)
(* Branch and bound                                                    *)
(* ------------------------------------------------------------------ *)

type bb = {
  g : G.t;
  order : int array; (* assignment order (BFS) *)
  in_u : bool array;
  u_tot : int;
  lo_bal : int;
  hi_bal : int;
  (* mutable search state *)
  assigned : int array; (* -1 unassigned, 0 = A, 1 = B *)
  cnt : int array array; (* cnt.(side).(v): edges from v to assigned side *)
  mutable cap : int;
  mutable sum_min : int; (* sum over unassigned of min cntA cntB *)
  mutable na : int; (* |A| among assigned *)
  mutable ua : int; (* |A ∩ U| among assigned *)
  mutable ub : int;
  mutable visits : int; (* search nodes entered (domain-local) *)
  best : int Atomic.t;
  witness : (int * Bitset.t) option ref;
  witness_lock : Mutex.t;
  (* cooperative supervision: polled every 256 visits; [stopped] is the
     domain-local latch that unwinds the recursion once the token fires *)
  mutable cancel : Cancel.t option;
  mutable stopped : bool;
}

let bfs_order g =
  let n = G.n_nodes g in
  let order = Array.make n 0 in
  let seen = Array.make n false in
  let idx = ref 0 in
  let q = Queue.create () in
  for s = 0 to n - 1 do
    if not seen.(s) then begin
      seen.(s) <- true;
      Queue.add s q;
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        order.(!idx) <- v;
        incr idx;
        G.iter_neighbors g v (fun w ->
            if not seen.(w) then begin
              seen.(w) <- true;
              Queue.add w q
            end)
      done
    end
  done;
  order

let make_bb g u best_init =
  let n = G.n_nodes g in
  let in_u =
    match u with
    | None -> Array.make n true
    | Some s -> Array.init n (Bitset.mem s)
  in
  let u_tot = Array.fold_left (fun a b -> if b then a + 1 else a) 0 in_u in
  {
    g;
    order = bfs_order g;
    in_u;
    u_tot;
    lo_bal = u_tot / 2;
    hi_bal = (u_tot + 1) / 2;
    assigned = Array.make n (-1);
    cnt = [| Array.make n 0; Array.make n 0 |];
    cap = 0;
    sum_min = 0;
    na = 0;
    ua = 0;
    ub = 0;
    visits = 0;
    best = Atomic.make best_init;
    witness = ref None;
    witness_lock = Mutex.create ();
    cancel = None;
    stopped = false;
  }

(* clone the mutable parts for use in another domain *)
let clone_bb bb =
  {
    bb with
    assigned = Array.copy bb.assigned;
    cnt = [| Array.copy bb.cnt.(0); Array.copy bb.cnt.(1) |];
    visits = 0;
    stopped = false;
  }

let assign bb v side =
  let other = 1 - side in
  bb.cap <- bb.cap + bb.cnt.(other).(v);
  bb.sum_min <- bb.sum_min - min bb.cnt.(0).(v) bb.cnt.(1).(v);
  bb.assigned.(v) <- side;
  if side = 0 then bb.na <- bb.na + 1;
  if bb.in_u.(v) then
    if side = 0 then bb.ua <- bb.ua + 1 else bb.ub <- bb.ub + 1;
  G.iter_neighbors bb.g v (fun w ->
      if bb.assigned.(w) < 0 then begin
        bb.sum_min <- bb.sum_min - min bb.cnt.(0).(w) bb.cnt.(1).(w);
        bb.cnt.(side).(w) <- bb.cnt.(side).(w) + 1;
        bb.sum_min <- bb.sum_min + min bb.cnt.(0).(w) bb.cnt.(1).(w)
      end)

let unassign bb v =
  let side = bb.assigned.(v) in
  let other = 1 - side in
  G.iter_neighbors bb.g v (fun w ->
      if bb.assigned.(w) < 0 then begin
        bb.sum_min <- bb.sum_min - min bb.cnt.(0).(w) bb.cnt.(1).(w);
        bb.cnt.(side).(w) <- bb.cnt.(side).(w) - 1;
        bb.sum_min <- bb.sum_min + min bb.cnt.(0).(w) bb.cnt.(1).(w)
      end);
  bb.assigned.(v) <- -1;
  if side = 0 then bb.na <- bb.na - 1;
  if bb.in_u.(v) then
    if side = 0 then bb.ua <- bb.ua - 1 else bb.ub <- bb.ub - 1;
  bb.sum_min <- bb.sum_min + min bb.cnt.(0).(v) bb.cnt.(1).(v);
  bb.cap <- bb.cap - bb.cnt.(other).(v)

let record_if_better bb =
  let cap = bb.cap in
  let rec try_update () =
    let cur = Atomic.get bb.best in
    if cap < cur then
      if Atomic.compare_and_set bb.best cur cap then begin
        let n = G.n_nodes bb.g in
        let side = Bitset.create n in
        for v = 0 to n - 1 do
          if bb.assigned.(v) = 0 then Bitset.add side v
        done;
        Mutex.lock bb.witness_lock;
        (match !(bb.witness) with
        | Some (c, _) when c <= cap -> ()
        | _ -> bb.witness := Some (cap, side));
        Mutex.unlock bb.witness_lock
      end
      else try_update ()
  in
  try_update ()

let feasible bb depth =
  let n = G.n_nodes bb.g in
  let remaining_u =
    (* U-nodes not yet assigned: u_tot - ua - ub *)
    bb.u_tot - bb.ua - bb.ub
  in
  bb.ua <= bb.hi_bal && bb.ub <= bb.hi_bal
  && bb.ua + remaining_u >= bb.lo_bal
  && bb.ub + remaining_u >= bb.u_tot - bb.hi_bal
  && depth <= n

let rec dfs bb depth =
  if not bb.stopped then begin
    bb.visits <- bb.visits + 1;
    (match bb.cancel with
    | Some c when bb.visits land 255 = 0 ->
        Cancel.add_steps c 256;
        if Cancel.triggered c then bb.stopped <- true
    | _ -> ());
    if bb.stopped then ()
    else if bb.cap + bb.sum_min >= Atomic.get bb.best then ()
    else if depth = Array.length bb.order then record_if_better bb
    else begin
      let v = bb.order.(depth) in
      (* try the side with more attraction first *)
      let first = if bb.cnt.(0).(v) >= bb.cnt.(1).(v) then 0 else 1 in
      List.iter
        (fun side ->
          assign bb v side;
          if feasible bb (depth + 1) then dfs bb (depth + 1);
          unassign bb v)
        [ first; 1 - first ]
    end
  end

(* sequential DFS counting into [bb.visits]; [degree_bound] toggles the
   sum-of-minima lower bound for ablation *)
let rec dfs_counted bb ~degree_bound depth =
  bb.visits <- bb.visits + 1;
  let bound = bb.cap + if degree_bound then bb.sum_min else 0 in
  if bound >= Atomic.get bb.best then ()
  else if depth = Array.length bb.order then record_if_better bb
  else begin
    let v = bb.order.(depth) in
    let first = if bb.cnt.(0).(v) >= bb.cnt.(1).(v) then 0 else 1 in
    List.iter
      (fun side ->
        assign bb v side;
        if feasible bb (depth + 1) then dfs_counted bb ~degree_bound (depth + 1);
        unassign bb v)
      [ first; 1 - first ]
  end

let bisection_width_instrumented ?u ?upper_bound ?(degree_bound = true) g =
  let n = G.n_nodes g in
  if n = 0 then invalid_arg "Exact: empty graph";
  let init = match upper_bound with Some b -> b + 1 | None -> max_int in
  let bb = make_bb g u init in
  assign bb bb.order.(0) 0;
  dfs_counted bb ~degree_bound 1;
  match !(bb.witness) with
  | Some (c, side) -> (c, side, bb.visits)
  | None -> invalid_arg "Exact.bisection_width_instrumented: infeasible"

let c_nodes = Metrics.counter "exact.bb.nodes"
let c_prefixes = Metrics.counter "exact.bb.prefixes"
let g_best = Metrics.gauge "exact.bb.best_capacity"

(* ---- result cache ----
   A successful run — bounded or not — returns the global minimum over the
   feasible cuts (a bounded run that finds nothing raises instead), so
   entries are keyed on (graph, u) only and the [upper_bound] constraint is
   re-applied at serve time. Only successful runs are stored. *)

module Cache = Bfly_cache.Store
module Key = Bfly_cache.Key
module Codec = Bfly_cache.Codec
module Fp = Bfly_cache.Fingerprint

let make_key ~solver ~salt ?u g =
  let fp = Fp.graph Fp.seed g in
  let fp, u_param =
    match u with
    | None -> (Fp.string fp "all", "all")
    | Some s -> (Fp.bitset fp s, Printf.sprintf "k%d" (Bitset.cardinal s))
  in
  Key.make ~solver ~salt ~params:[ ("u", u_param) ] ~fingerprint:fp

let cache_key ?u g =
  make_key ~solver:"cuts.exact.bisection_width" ~salt:"exact/1" ?u g

let ckpt_key ?u g = make_key ~solver:"cuts.exact.checkpoint" ~salt:"ckpt/1" ?u g

let cache_encode (c, side) =
  [ ("value", Codec.Int c); ("witness", Codec.bits side) ]

let cache_decode n payload =
  match
    (Codec.get_int payload "value", Codec.get_bits payload "witness" ~capacity:n)
  with
  | Some c, Some side -> Some (c, side)
  | _ -> None

(* verify-on-hit: recount the witness from first principles — balanced
   split of [u] and capacity equal to the stored value *)
let cache_verify ?u g (c, side) =
  let n = G.n_nodes g in
  let u_tot, in_u =
    match u with
    | None -> (n, Bitset.cardinal side)
    | Some s -> (Bitset.cardinal s, Bitset.cardinal (Bitset.inter side s))
  in
  in_u >= u_tot / 2
  && in_u <= (u_tot + 1) / 2
  && Traverse.boundary_edges g side = c

(* ---- checkpoints ----
   When a supervised run is interrupted, the open frontier — the top-level
   prefix codes whose subtrees were not fully explored — plus the incumbent
   are serialized through the cache store under a separate solver id, so a
   later run can resume. The search is order-independent (any interleaving
   of subtree explorations yields the same minimum), so a resumed run
   completes to the identical answer an uninterrupted run returns. *)

type checkpoint = {
  ck_p : int;
  ck_pending : Bitset.t; (* capacity 2^p; codes not yet fully explored *)
  ck_incumbent : (int * Bitset.t) option;
}

let ckpt_encode ~n ck =
  let best, wit =
    match ck.ck_incumbent with
    | Some (c, side) -> (c, side)
    | None -> (-1, Bitset.create n)
  in
  [
    ("p", Codec.Int ck.ck_p);
    ("pending", Codec.bits ck.ck_pending);
    ("best", Codec.Int best);
    ("witness", Codec.bits wit);
  ]

let ckpt_decode ~n ~prefixes payload =
  match
    ( Codec.get_int payload "p",
      Codec.get_bits payload "pending" ~capacity:prefixes,
      Codec.get_int payload "best",
      Codec.get_bits payload "witness" ~capacity:n )
  with
  | Some p, Some pending, Some best, Some wit ->
      Some
        {
          ck_p = p;
          ck_pending = pending;
          ck_incumbent = (if best < 0 then None else Some (best, wit));
        }
  | _ -> None

(* verify-on-hit: the prefix depth must match what this build would search
   with, and a stored incumbent must recount exactly like a final result *)
let ckpt_verify ?u g ~p ck =
  ck.ck_p = p
  &&
  match ck.ck_incumbent with
  | None -> true
  | Some (c, side) -> cache_verify ?u g (c, side)

let c_interrupted = Metrics.counter "exact.bb.interrupted"
let c_ckpt_stored = Metrics.counter "resil.checkpoint.stored"
let c_ckpt_resumed = Metrics.counter "resil.checkpoint.resumed"

(* deterministic fallback witness when a run is interrupted before any leaf
   was reached: lowest-index half of [u] (node 0 included for [u = None],
   matching the search's fixed side for node 0 — either way the cut is a
   valid certified upper bound) *)
let trivial_cut ?u g =
  let n = G.n_nodes g in
  let side = Bitset.create n in
  (match u with
  | None ->
      for v = 0 to (n / 2) - 1 do
        Bitset.add side v
      done
  | Some s ->
      let want = Bitset.cardinal s / 2 in
      let count = ref 0 in
      Bitset.iter s (fun v ->
          if !count < want then begin
            Bitset.add side v;
            incr count
          end));
  (Traverse.boundary_edges g side, side)

type outcome =
  | Complete of int * Bitset.t
  | Interval of { lower : int; upper : int; witness : Bitset.t; reason : string }

(* Explore the given prefix codes; [completed.(i)] records whether code
   [codes.(i)]'s subtree was fully explored (or soundly pruned/infeasible).
   Cancellation is honored everywhere — even the first code's subtree can
   dwarf any budget on large instances — so a single run promises only
   that the set of completed codes is sound, never that it is non-empty.
   The checkpoint frontier therefore shrinks monotonically across resumes
   but is not guaranteed to shrink per run: terminating a resume loop
   needs a budget generous enough to finish at least one subtree (growing
   budgets, as the oracles use, always get there). *)
let run_codes bb ~p ~codes =
  let k = Array.length codes in
  let completed = Array.make k false in
  ignore
    (Parallel.run_chunks ~lo:0 ~hi:k (fun ~lo ~hi ->
         let local = clone_bb bb in
         for i = lo to hi - 1 do
           let code = codes.(i) in
           if not local.stopped then begin
             (* replay prefix *)
             let ok = ref true in
             let d = ref 1 in
             while !ok && !d <= p do
               let v = local.order.(!d) in
               let side = (code lsr (!d - 1)) land 1 in
               assign local v side;
               incr d;
               if not (feasible local !d) then ok := false
             done;
             if !ok && local.cap + local.sum_min < Atomic.get local.best then
               dfs local (p + 1);
             (* undo prefix *)
             for dd = !d - 1 downto 1 do
               unassign local local.order.(dd)
             done;
             completed.(i) <- not local.stopped
           end
         done;
         Metrics.add c_nodes local.visits;
         Metrics.add c_prefixes (hi - lo)));
  completed

(* root lower bound of one prefix subtree, replayed on the master bb;
   [max_int] when the prefix is infeasible (no cuts below it at all) *)
let prefix_bound bb ~p code =
  let ok = ref true in
  let d = ref 1 in
  while !ok && !d <= p do
    let v = bb.order.(!d) in
    let side = (code lsr (!d - 1)) land 1 in
    assign bb v side;
    incr d;
    if not (feasible bb !d) then ok := false
  done;
  let bound = if !ok then bb.cap + bb.sum_min else max_int in
  for dd = !d - 1 downto 1 do
    unassign bb bb.order.(dd)
  done;
  bound

let search ?u ?upper_bound ~cancel ~resume g =
  let n = G.n_nodes g in
  if n = 0 then invalid_arg "Exact: empty graph";
  Span.time ~name:"exact.bisection_width" @@ fun () ->
  let key = cache_key ?u g in
  match
    Cache.lookup ~key ~decode:(cache_decode n) ~verify:(cache_verify ?u g)
  with
  | Some (c, side) -> (
      match upper_bound with
      | Some b when c > b ->
          invalid_arg
            "Exact.bisection_width: no cut at or below the given upper bound"
      | _ -> Complete (c, side))
  | None ->
      let init = match upper_bound with Some b -> b + 1 | None -> max_int in
      let bb = make_bb g u init in
      bb.cancel <- cancel;
      (* initialize sum_min: all zero counts -> 0; fix node order.(0) to A *)
      assign bb bb.order.(0) 0;
      (* parallel top-level branch split: the branch-and-bound tree is
         forked at every assignment of the next [p] nodes, and the 2^p
         subtree roots are spread across the domain pool; the shared atomic
         incumbent keeps pruning global *)
      let p = min 10 (n - 1) in
      let prefixes = 1 lsl p in
      (* checkpoints only make sense for unbounded searches: a search primed
         with an upper bound prunes subtrees that a later unbounded resume
         would still need *)
      let use_ckpt = upper_bound = None in
      let ckey = ckpt_key ?u g in
      let loaded =
        if resume && use_ckpt then
          Cache.lookup ~key:ckey
            ~decode:(ckpt_decode ~n ~prefixes)
            ~verify:(ckpt_verify ?u g ~p)
        else None
      in
      let codes =
        match loaded with
        | None -> Array.init prefixes (fun i -> i)
        | Some ck ->
            Metrics.incr c_ckpt_resumed;
            (match ck.ck_incumbent with
            | Some (c, side) when c < Atomic.get bb.best ->
                Atomic.set bb.best c;
                bb.witness := Some (c, side)
            | _ -> ());
            Array.of_list (Bitset.elements ck.ck_pending)
      in
      let completed =
        if Array.length codes = 0 then [||] else run_codes bb ~p ~codes
      in
      let pending = ref [] in
      Array.iteri
        (fun i code -> if not completed.(i) then pending := code :: !pending)
        codes;
      let pending = List.rev !pending in
      (match !(bb.witness) with
      | Some (c, _) -> Metrics.set g_best (float_of_int c)
      | None -> ());
      if pending = [] then begin
        if use_ckpt then Cache.drop ~key:ckey;
        match !(bb.witness) with
        | Some (c, side) ->
            Cache.put ~key ~encode:cache_encode (c, side);
            Complete (c, side)
        | None -> (
            match upper_bound with
            | Some _ ->
                invalid_arg
                  "Exact.bisection_width: no cut at or below the given upper \
                   bound"
            | None -> invalid_arg "Exact.bisection_width: infeasible constraint")
      end
      else begin
        Metrics.incr c_interrupted;
        (* certified interval: every cut in a completed subtree is >= the
           pruning threshold at its pruning time >= the final incumbent;
           every cut in a pending subtree is >= that subtree's root bound *)
        let best_now = Atomic.get bb.best in
        let pending_bound =
          List.fold_left
            (fun acc code -> min acc (prefix_bound bb ~p code))
            max_int pending
        in
        let upper, witness =
          match !(bb.witness) with
          | Some (c, side) -> (c, side)
          | None -> trivial_cut ?u g
        in
        let lower = min (min best_now pending_bound) upper in
        if lower >= upper && use_ckpt then begin
          (* squeezed: every pending subtree is provably >= the reported
             upper witness, so the answer is already exact *)
          Cache.drop ~key:ckey;
          Cache.put ~key ~encode:cache_encode (upper, witness);
          Complete (upper, witness)
        end
        else begin
          if use_ckpt then begin
            let pend = Bitset.create prefixes in
            List.iter (Bitset.add pend) pending;
            Cache.put ~key:ckey ~encode:(ckpt_encode ~n)
              { ck_p = p; ck_pending = pend; ck_incumbent = !(bb.witness) };
            Metrics.incr c_ckpt_stored
          end;
          let reason =
            match cancel with
            | Some c -> Option.value ~default:"cancelled" (Cancel.reason c)
            | None -> "cancelled"
          in
          Interval { lower; upper; witness; reason }
        end
      end

let bisection_width_supervised ?u ?upper_bound ?cancel ?(resume = false) g =
  search ?u ?upper_bound ~cancel:(Cancel.resolve cancel) ~resume g

let bisection_width ?u ?upper_bound g =
  (* no token — deliberately ignores the ambient one too: this entry point
     promises exactness, so it cannot be allowed to degrade silently *)
  match search ?u ?upper_bound ~cancel:None ~resume:false g with
  | Complete (c, side) -> (c, side)
  | Interval _ -> assert false (* unreachable without a token *)
