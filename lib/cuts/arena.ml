module Bitset = Bfly_graph.Bitset
module Metrics = Bfly_obs.Metrics

let c_hits = Metrics.counter "cuts.kernel.scratch.hits"
let c_allocs = Metrics.counter "cuts.kernel.scratch.allocs"

(* Per-domain storage: a growable vector of int buffers indexed by slot, and
   bitsets keyed by (slot, capacity). One arena value is shared by every
   domain; Domain.DLS keeps each domain's buffers private, so kernels running
   as pool tasks never contend or alias across domains. *)
type store = {
  mutable bufs : int array array; (* slot -> buffer (length >= last request) *)
  sets : (int * int, Bitset.t) Hashtbl.t; (* (slot, capacity) -> bitset *)
}

type t = store Domain.DLS.key

let create () =
  Domain.DLS.new_key (fun () -> { bufs = [||]; sets = Hashtbl.create 7 })

let store a = Domain.DLS.get a

let ensure_slot d slot =
  if slot >= Array.length d.bufs then begin
    let bufs = Array.make (slot + 4) [||] in
    Array.blit d.bufs 0 bufs 0 (Array.length d.bufs);
    d.bufs <- bufs
  end

let raw_ints a ~slot n =
  let d = store a in
  ensure_slot d slot;
  let b = d.bufs.(slot) in
  if Array.length b >= n then begin
    Metrics.incr c_hits;
    b
  end
  else begin
    Metrics.incr c_allocs;
    (* grow geometrically so alternating sizes don't thrash *)
    let b = Array.make (max n (2 * Array.length b)) 0 in
    d.bufs.(slot) <- b;
    b
  end

let ints a ~slot n =
  let b = raw_ints a ~slot n in
  Array.fill b 0 n 0;
  b

let set a ~slot n =
  let d = store a in
  match Hashtbl.find_opt d.sets (slot, n) with
  | Some s ->
      Metrics.incr c_hits;
      Bitset.clear s;
      s
  | None ->
      Metrics.incr c_allocs;
      let s = Bitset.create n in
      Hashtbl.replace d.sets (slot, n) s;
      s
