(** Per-domain scratch arenas for the partition kernels.

    The KL/FM/SA/multilevel inner loops need the same few scratch buffers on
    every pass of every restart (locked masks, rollback logs, gain buckets,
    coarsening stacks). Allocating them fresh each time made the domain-pool
    dispatch of restarts GC-bound; an arena hands each domain a private,
    reusable copy instead.

    {2 Ownership rules}

    - One arena value is created per kernel module at top level and shared
      by all domains; the backing buffers live in {!Domain.DLS}, so each
      domain sees its own storage and no locking is involved.
    - A [slot] is a small static integer naming one logical buffer within
      the kernel. Two acquisitions of the same slot on the same domain
      return the {e same} buffer — callers must finish with a slot before
      re-acquiring it, and must not hold arena buffers across a
      {!Bfly_graph.Parallel} dispatch (the task may run on another domain
      with a different copy, and a pool task sharing this domain would
      clobber the buffer).
    - Buffers are reset on acquisition ({!ints} zero-fills, {!set} clears),
      so a kernel using arena scratch behaves exactly as if it had
      allocated fresh — the byte-identity contract of the bench gates does
      not observe the reuse.
    - Returned int buffers may be {e longer} than requested; only the first
      [n] cells are reset. Never use [Array.length] on them.

    Reuse is observable in the [cuts.kernel.scratch.hits] /
    [cuts.kernel.scratch.allocs] counters. *)

type t

(** A fresh arena handle (cheap; storage materializes per domain on first
    use). Create once per module, not per call. *)
val create : unit -> t

(** [ints a ~slot n] is this domain's buffer for [slot], at least [n] long,
    with cells [0..n-1] zeroed. *)
val ints : t -> slot:int -> int -> int array

(** [raw_ints a ~slot n] is {!ints} without the zero-fill — for buffers
    whose live region is tracked explicitly (heap storage, rollback logs).
    Contents beyond any previously written cells are zeros on first use and
    stale otherwise. *)
val raw_ints : t -> slot:int -> int -> int array

(** [set a ~slot n] is this domain's cleared bitset of capacity exactly [n]
    for [slot] (one bitset is kept per (slot, capacity) pair, so multilevel
    kernels touching many sizes reuse each level's set). *)
val set : t -> slot:int -> int -> Bfly_graph.Bitset.t
