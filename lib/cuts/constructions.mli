(** Explicit cuts from the paper.

    {2 Folklore column cuts}

    Splitting the columns by their leading bit bisects [B_n], [W_n] and
    [CCC_n] with capacities [n], [n] and [n/2] (Sections 1.4 and 3) — the
    upper bounds that are tight for [W_n] and [CCC_n] but {e not} for
    [B_n].

    {2 The mesh-of-stars pullback (Theorem 2.20)}

    The sub-[n] bisection of [B_n] follows Lemmas 2.11–2.16: quotient [B_n]
    onto a mesh of stars, cut the mesh optimally (Lemma 2.17), pull the cut
    back, and restore exact balance by sliding node thresholds inside
    {e amenable} middle blocks (Lemma 2.15) — which never changes the
    capacity. Parameters: the first [t1] levels form the M1 part (classed
    by the low [t3] column bits into [2^t3] classes), the last [t3] levels
    the M3 part (classed by the high [t1] bits into [2^t1] classes), and
    levels [t1..log n − t3] form [2^(t1+t3)] middle blocks. [r1] input
    classes and [r3] output classes are placed in [S]; middle blocks follow
    Lemma 2.17's optimal placement. The capacity is computed in closed form
    ({!mos_predicted_cost}) and realized exactly by {!mos_pullback_cut}.

    {2 Dimension-aligned planar cuts}

    For Cartesian product networks built by
    {!Bfly_graph.Generators.product_all} (row-major node numbering, the
    last factor varying fastest), slicing perpendicular to one coordinate
    axis gives the canonical upper-bound constructions of arXiv:1202.6291:
    on even axes the cut is the half-space between two layers, on odd
    axes the middle layer is split deterministically to restore exact
    balance. *)

type mos_params = { t1 : int; t3 : int; r1 : int; r3 : int }

val pp_mos_params : Format.formatter -> mos_params -> unit

(** Side = columns whose number starts with 0, all levels. Capacity [n]. *)
val butterfly_column_cut : Bfly_networks.Butterfly.t -> Bfly_graph.Bitset.t

(** Same for [W_n]. Capacity [n]. *)
val wrapped_column_cut : Bfly_networks.Wrapped.t -> Bfly_graph.Bitset.t

(** Side = cycles whose label starts with 0. Capacity [n/2] (Lemma 3.3). *)
val ccc_dimension_cut : Bfly_networks.Ccc.t -> Bfly_graph.Bitset.t

(** Split on the top address bit. Capacity [2^(d-1)]. *)
val hypercube_cut : Bfly_networks.Hypercube.t -> Bfly_graph.Bitset.t

(** [dimension_cut ~dims ~axis] — the planar cut perpendicular to
    coordinate [axis] (0-based) of the product network with factor sizes
    [dims] (row-major numbering per {!Bfly_graph.Generators.product_all}):
    the side holds the [⌊N/2⌋] nodes with the smallest [axis]-coordinate,
    ties within the boundary layer broken by node id. On an even axis this
    is exactly the half-space between layers [a/2 - 1] and [a/2]; on an
    odd axis the middle layer is split, so the cut additionally pays the
    layer's internal boundary. Always an exact bisection of the [N]
    nodes. Records the [constructions.dimension.cuts] counter.
    @raise Invalid_argument on empty/invalid [dims], a bad [axis], or a
    single-node product. *)
val dimension_cut : dims:int list -> axis:int -> Bfly_graph.Bitset.t

(** [best_dimension_cut ~dims g] materializes the cut of every axis,
    counts capacities on [g], and returns the cheapest
    [(axis, capacity, side)] (ties toward the lowest axis). This is the
    constructed upper bound bracketing the certified lower bounds of
    {!Bfly_check.Bounds} — tight on even-sided meshes and tori.
    @raise Invalid_argument when the product of [dims] is not
    [n_nodes g]. *)
val best_dimension_cut :
  dims:int list -> Bfly_graph.Graph.t -> int * int * Bfly_graph.Bitset.t

(** Closed-form capacity of the pullback cut for the given parameters, or
    [None] when the parameters cannot be balanced (converting every middle
    block still leaves the sides uneven). Exact: {!mos_pullback_cut}
    realizes exactly this capacity. *)
val mos_predicted_cost : Bfly_networks.Butterfly.t -> mos_params -> int option

(** Materialize the cut. The result is an exact bisection of [B_n].
    @raise Invalid_argument when {!mos_predicted_cost} is [None] or the
    parameters are out of range ([1 <= t1], [1 <= t3], [t1+t3 <= log n],
    [0 <= r1 <= 2^t3], [0 <= r3 <= 2^t1]). *)
val mos_pullback_cut : Bfly_networks.Butterfly.t -> mos_params -> Bfly_graph.Bitset.t

(** Search all parameters (class counts capped at [max_classes], default
    256) by predicted cost and return the best parameters with their cut —
    the constructive side of Lemmas 2.17–2.19: the optimal mesh-of-stars
    cut (Lemma 2.17) pulled back through the quotient (Lemmas 2.18–2.19)
    gives the [2√2·√n + o(√n)] upper bound of Theorem 2.20.

    The [(t1, t3)] windows are scanned concurrently on the
    {!Bfly_graph.Parallel} pool; ties between equal-cost parameters are
    broken toward the earliest window in sequential enumeration order, so
    the result is independent of [BFLY_DOMAINS]. Records the
    [constructions.mos.candidates] counter and the
    [constructions.mos_pullback] timer in {!Bfly_obs.Metrics}. The sweep
    result persists in the {!Bfly_cache} store keyed on
    [(log n, max_classes)]; a cached entry is only served after its
    closed-form cost is re-derived from the cached parameters and its
    witness side re-checked (exact bisection, recounted boundary).

    Under a triggered {!Bfly_resil.Cancel} token ([?cancel], falling back
    to the ambient token) the sweep degrades gracefully: window 0 is
    always scanned, remaining windows are skipped, and the (possibly
    sub-optimal but still exactly-realized) best of the scanned windows
    is returned without being written to the cache.
    @raise Invalid_argument when [log n < 2] (no valid parameters). *)
val best_mos_pullback :
  ?max_classes:int ->
  ?cancel:Bfly_resil.Cancel.t ->
  Bfly_networks.Butterfly.t ->
  mos_params * int * Bfly_graph.Bitset.t
